// Expected EM-damage-free lifetime of a conductor ARRAY (paper Sec. 3.3).
//
// Every element of a C4-pad or TSV array is subject to wearout; the array's
// failure CDF is P(t) = 1 - prod_i (1 - F_i(t)), and the paper's lifetime
// metric is the t at which P(t) = 0.5 (expected time to the FIRST failure).
#pragma once

#include <vector>

#include "em/black.h"

namespace vstack::em {

struct ArrayMttfOptions {
  double sigma = 0.5;              // lognormal shape parameter
  double probability_target = 0.5; // paper uses the P(t) = 0.5 crossing
  double relative_tolerance = 1e-9;
};

/// Failure probability of the whole array at time t, given each conductor's
/// current and the Black model.  Computed in log space for robustness with
/// thousands of conductors.
double array_failure_probability(double time,
                                 const std::vector<double>& currents,
                                 const BlackModel& black, double sigma);

/// Expected EM-damage-free lifetime: solves P(t) = probability_target by
/// bisection in log-time.  Returns +infinity if no conductor is stressed.
double array_mttf(const std::vector<double>& currents, const BlackModel& black,
                  const ArrayMttfOptions& options = {});

/// Thermal-aware variant: per-conductor temperatures [K] override the Black
/// model's default (thermal-EM coupling).  `temperatures` must match
/// `currents` in size.
double array_mttf_at_temperatures(const std::vector<double>& currents,
                                  const std::vector<double>& temperatures,
                                  const BlackModel& black,
                                  const ArrayMttfOptions& options = {});

}  // namespace vstack::em
