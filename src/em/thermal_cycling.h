// Thermal-cycling (Coffin-Manson) fatigue of C4 solder bumps -- the other
// classic pad wearout mechanism, complementing the paper's EM study.
//
//   N_f = C * (dT)^{-q}
//
// where dT is the junction temperature swing of a power cycle and q ~ 2-2.5
// for solder.  Combined with Black EM as independent competing risks, this
// lets the library answer which mechanism actually limits a design: V-S
// extends EM life so far that fatigue becomes the binding constraint.
#pragma once

#include <vector>

#include "em/array_mttf.h"

namespace vstack::em {

struct ThermalCyclingModel {
  /// Cycles to failure at a 1 K swing (sets the absolute scale; lifetimes
  /// are reported normalized, like the EM results).
  double prefactor = 1e10;
  double exponent = 2.2;       // q
  double cycle_period = 60.0;  // [s] wall-clock per power cycle

  void validate() const;

  /// Median cycles to failure for a bump seeing a dT swing [K].
  /// Returns +infinity for a zero swing.
  double cycles_to_failure(double delta_t) const;

  /// Median wall-clock time to failure (cycles * period).
  double time_to_failure(double delta_t) const;
};

/// Expected fatigue-free lifetime of a bump array under per-bump
/// temperature swings, with lognormal cycle-life spread (same first-failure
/// statistics as the EM arrays).
double cycling_array_lifetime(const std::vector<double>& delta_ts,
                              const ThermalCyclingModel& model,
                              const ArrayMttfOptions& options = {});

/// Combined lifetime under two independent competing risks, each summarised
/// as a lognormal with the given median and shape: solves
/// 1 - S_a(t) * S_b(t) = target.
double competing_risk_lifetime(double median_a, double sigma_a,
                               double median_b, double sigma_b,
                               double probability_target = 0.5);

}  // namespace vstack::em
