// Electromigration wearout of a single conductor: Black's equation with a
// lognormal time-to-failure distribution (paper Sec. 3.3).
//
//   MTTF = A * J^{-n} * exp(Ea / (k T))
//
// Because every conductor of a given class (C4 pad, TSV) shares its
// geometry, current density J is proportional to current I and the geometry
// factor folds into the prefactor A.  The paper reports all lifetimes
// normalized to a reference design, so A is a free scale and defaults to 1.
#pragma once

namespace vstack::em {

struct BlackModel {
  double prefactor = 1.0;          // A (arbitrary lifetime units)
  double current_exponent = 2.0;   // n; 2 is Black's classic value
  double activation_energy = 0.9;  // Ea [eV] for Cu interconnect
  double temperature = 378.15;     // [K] (105 C stressed operating point)

  void validate() const;

  /// Median time to failure of a conductor carrying |current| amperes.
  /// Returns +infinity for zero current (no EM stress).
  double median_ttf(double current) const;

  /// Same, at an explicit conductor temperature [K] (thermal-EM coupling);
  /// overrides the model's default temperature.
  double median_ttf(double current, double temperature_kelvin) const;
};

/// Lognormal failure CDF: F(t) = Phi((ln t - ln t50) / sigma).
/// `sigma` is the lognormal shape parameter (typ. 0.3-0.7 for EM).
double lognormal_failure_cdf(double time, double median_ttf, double sigma);

}  // namespace vstack::em
