#include "em/array_mttf.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace vstack::em {

namespace {

/// Shared solver: P(t) = target over per-conductor median TTFs.
double solve_array_mttf(const std::vector<double>& median_ttfs,
                        const ArrayMttfOptions& options) {
  VS_REQUIRE(options.probability_target > 0.0 &&
                 options.probability_target < 1.0,
             "probability target must be in (0, 1)");
  VS_REQUIRE(options.sigma > 0.0, "sigma must be positive");
  VS_REQUIRE(!median_ttfs.empty(),
             "array must contain at least one conductor");

  double min_ttf = std::numeric_limits<double>::infinity();
  for (const double t : median_ttfs) min_ttf = std::min(min_ttf, t);
  if (std::isinf(min_ttf)) {
    return std::numeric_limits<double>::infinity();  // no EM stress at all
  }

  const auto p_at = [&](double log_t) {
    const double t = std::exp(log_t);
    double log_survive = 0.0;
    for (const double t50 : median_ttfs) {
      const double f = lognormal_failure_cdf(t, t50, options.sigma);
      if (f >= 1.0) return 1.0;
      log_survive += std::log1p(-f);
    }
    return 1.0 - std::exp(log_survive);
  };

  // Bracket in log-time around the strongest conductor's median: the array
  // fails no later than ~min_ttf and no earlier than many sigma before it.
  double lo = std::log(min_ttf) - 20.0 * options.sigma;
  double hi = std::log(min_ttf) + 20.0 * options.sigma;
  VS_REQUIRE(p_at(lo) < options.probability_target,
             "bracket lower bound already failed");
  for (int k = 0; k < 60 && p_at(hi) < options.probability_target; ++k) {
    hi += 5.0 * options.sigma;
  }
  VS_REQUIRE(p_at(hi) >= options.probability_target,
             "failed to bracket the target probability");

  while (hi - lo > options.relative_tolerance) {
    const double mid = 0.5 * (lo + hi);
    if (p_at(mid) < options.probability_target) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace

double array_failure_probability(double time,
                                 const std::vector<double>& currents,
                                 const BlackModel& black, double sigma) {
  VS_REQUIRE(!currents.empty(), "array must contain at least one conductor");
  double log_survive = 0.0;
  for (const double i : currents) {
    const double f = lognormal_failure_cdf(time, black.median_ttf(i), sigma);
    if (f >= 1.0) return 1.0;
    log_survive += std::log1p(-f);
  }
  return 1.0 - std::exp(log_survive);
}

double array_mttf(const std::vector<double>& currents, const BlackModel& black,
                  const ArrayMttfOptions& options) {
  VS_REQUIRE(!currents.empty(), "array must contain at least one conductor");
  std::vector<double> ttfs;
  ttfs.reserve(currents.size());
  for (const double i : currents) ttfs.push_back(black.median_ttf(i));
  return solve_array_mttf(ttfs, options);
}

double array_mttf_at_temperatures(const std::vector<double>& currents,
                                  const std::vector<double>& temperatures,
                                  const BlackModel& black,
                                  const ArrayMttfOptions& options) {
  VS_REQUIRE(!currents.empty(), "array must contain at least one conductor");
  VS_REQUIRE(currents.size() == temperatures.size(),
             "temperature vector must match current vector");
  std::vector<double> ttfs;
  ttfs.reserve(currents.size());
  for (std::size_t k = 0; k < currents.size(); ++k) {
    ttfs.push_back(black.median_ttf(currents[k], temperatures[k]));
  }
  return solve_array_mttf(ttfs, options);
}

}  // namespace vstack::em
