#include "em/thermal_cycling.h"

#include <cmath>
#include <limits>

#include "common/error.h"

namespace vstack::em {

void ThermalCyclingModel::validate() const {
  VS_REQUIRE(prefactor > 0.0, "Coffin-Manson prefactor must be positive");
  VS_REQUIRE(exponent > 0.0, "Coffin-Manson exponent must be positive");
  VS_REQUIRE(cycle_period > 0.0, "cycle period must be positive");
}

double ThermalCyclingModel::cycles_to_failure(double delta_t) const {
  validate();
  VS_REQUIRE(delta_t >= 0.0, "temperature swing must be non-negative");
  if (delta_t == 0.0) return std::numeric_limits<double>::infinity();
  return prefactor * std::pow(delta_t, -exponent);
}

double ThermalCyclingModel::time_to_failure(double delta_t) const {
  return cycles_to_failure(delta_t) * cycle_period;
}

double cycling_array_lifetime(const std::vector<double>& delta_ts,
                              const ThermalCyclingModel& model,
                              const ArrayMttfOptions& options) {
  VS_REQUIRE(!delta_ts.empty(), "array must contain at least one bump");
  // Reuse the EM array solver by expressing each bump's fatigue life as a
  // lognormal median: map it through a Black model with unit current (the
  // solver only consumes medians).
  // Simplest faithful path: bisection over the group CDF, as in array_mttf.
  double min_ttf = std::numeric_limits<double>::infinity();
  std::vector<double> medians;
  medians.reserve(delta_ts.size());
  for (const double dt : delta_ts) {
    const double t = model.time_to_failure(dt);
    medians.push_back(t);
    min_ttf = std::min(min_ttf, t);
  }
  if (std::isinf(min_ttf)) return min_ttf;

  const auto p_at = [&](double log_t) {
    const double t = std::exp(log_t);
    double log_survive = 0.0;
    for (const double t50 : medians) {
      const double f = lognormal_failure_cdf(t, t50, options.sigma);
      if (f >= 1.0) return 1.0;
      log_survive += std::log1p(-f);
    }
    return 1.0 - std::exp(log_survive);
  };

  double lo = std::log(min_ttf) - 20.0 * options.sigma;
  double hi = std::log(min_ttf) + 20.0 * options.sigma;
  VS_REQUIRE(p_at(lo) < options.probability_target,
             "bracket lower bound already failed");
  for (int k = 0; k < 60 && p_at(hi) < options.probability_target; ++k) {
    hi += 5.0 * options.sigma;
  }
  while (hi - lo > options.relative_tolerance) {
    const double mid = 0.5 * (lo + hi);
    (p_at(mid) < options.probability_target ? lo : hi) = mid;
  }
  return std::exp(0.5 * (lo + hi));
}

double competing_risk_lifetime(double median_a, double sigma_a,
                               double median_b, double sigma_b,
                               double probability_target) {
  VS_REQUIRE(probability_target > 0.0 && probability_target < 1.0,
             "probability target must be in (0, 1)");
  if (std::isinf(median_a) && std::isinf(median_b)) {
    return std::numeric_limits<double>::infinity();
  }
  const double anchor = std::min(median_a, median_b);
  const double sigma = std::max(sigma_a, sigma_b);

  const auto p_at = [&](double log_t) {
    const double t = std::exp(log_t);
    const double fa = lognormal_failure_cdf(t, median_a, sigma_a);
    const double fb = lognormal_failure_cdf(t, median_b, sigma_b);
    return 1.0 - (1.0 - fa) * (1.0 - fb);
  };

  double lo = std::log(anchor) - 20.0 * sigma;
  double hi = std::log(anchor) + 20.0 * sigma;
  VS_REQUIRE(p_at(lo) < probability_target,
             "bracket lower bound already failed");
  for (int k = 0; k < 60 && p_at(hi) < probability_target; ++k) {
    hi += 5.0 * sigma;
  }
  while (hi - lo > 1e-9) {
    const double mid = 0.5 * (lo + hi);
    (p_at(mid) < probability_target ? lo : hi) = mid;
  }
  return std::exp(0.5 * (lo + hi));
}

}  // namespace vstack::em
