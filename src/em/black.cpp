#include "em/black.h"

#include <cmath>
#include <limits>

#include "common/error.h"
#include "common/units.h"

namespace vstack::em {

void BlackModel::validate() const {
  VS_REQUIRE(prefactor > 0.0, "Black prefactor must be positive");
  VS_REQUIRE(current_exponent > 0.0, "current exponent must be positive");
  VS_REQUIRE(activation_energy > 0.0, "activation energy must be positive");
  VS_REQUIRE(temperature > 0.0, "temperature must be positive (kelvin)");
}

double BlackModel::median_ttf(double current) const {
  return median_ttf(current, temperature);
}

double BlackModel::median_ttf(double current,
                              double temperature_kelvin) const {
  validate();
  VS_REQUIRE(temperature_kelvin > 0.0,
             "conductor temperature must be positive (kelvin)");
  const double magnitude = std::abs(current);
  if (magnitude == 0.0) return std::numeric_limits<double>::infinity();
  return prefactor * std::pow(magnitude, -current_exponent) *
         std::exp(activation_energy /
                  (constants::kBoltzmannEv * temperature_kelvin));
}

double lognormal_failure_cdf(double time, double median_ttf, double sigma) {
  VS_REQUIRE(sigma > 0.0, "lognormal sigma must be positive");
  VS_REQUIRE(time >= 0.0, "time must be non-negative");
  if (time == 0.0) return 0.0;
  if (std::isinf(median_ttf)) return 0.0;  // unstressed conductor
  VS_REQUIRE(median_ttf > 0.0, "median TTF must be positive");
  const double z = (std::log(time) - std::log(median_ttf)) / sigma;
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

}  // namespace vstack::em
