// Supervisory controller for a voltage-stacked converter bank (robustness
// layer): watches per-layer rail droop and walks an escalation ladder when a
// fault drives a rail out of regulation.
//
// The supervisor is deliberately PDN-agnostic: it sees only a vector of
// per-layer worst droop fractions sampled at a fixed cadence (the sensing
// interval of the on-die voltage monitors) and emits ABSTRACT actions.  The
// ride-through driver (pdn/ride_through.h) translates those actions into
// network mutations -- rebalanced phase strengths, retargeted switching
// frequency through the SC compact model, an engaged bypass linear
// regulator, or a controlled layer shutdown -- so the sc library never
// depends on pdn.
//
// Detection mirrors a realistic monitor chain: a droop above trip_fraction
// ARMS detection; only after it persists for detection_latency does the
// supervisor declare a fault and fire the first rung.  Recovery uses a
// hysteresis band (recovery_fraction < trip_fraction) so a rail hovering at
// the threshold does not chatter between states.  Each rung gets
// action_dwell to take effect before the next fires; a watchdog jumps
// straight to layer shutdown when the rail has been out of regulation for
// watchdog_timeout regardless of ladder position.  The action trail is
// bounded by max_actions (the watchdog still fires), so a pathological run
// cannot balloon the report.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace vstack::sc {

enum class SupervisorState {
  Nominal,     // all rails inside the trip band
  Armed,       // a rail tripped; waiting out the detection latency
  Mitigating,  // fault declared; escalation ladder active
  Recovered,   // droop back inside the recovery band after mitigation
  Shutdown,    // a layer was shut down; re-arms if another rail trips
};

const char* to_string(SupervisorState state);

/// Escalation ladder, mildest first.  The supervisor fires them in order,
/// one rung per dwell window, while the rail stays out of regulation.
enum class SupervisorActionKind {
  PhaseRebalance,     // strengthen surviving interleaved phases
  FrequencyRetarget,  // raise the bank's switching frequency
  BypassEngage,       // switch in the bypass linear regulator
  LayerShutdown,      // controlled shutdown of the afflicted layer
};

const char* to_string(SupervisorActionKind kind);

struct SupervisorAction {
  double time = 0.0;      // [s] when it fired
  SupervisorActionKind kind = SupervisorActionKind::PhaseRebalance;
  std::size_t layer = 0;  // afflicted layer (worst droop at fire time)
  /// FrequencyRetarget: switching-frequency multiplier to apply.
  double factor = 1.0;

  std::string describe() const;
};

struct SupervisorConfig {
  double trip_fraction = 0.10;      // droop fraction that arms detection
  double recovery_fraction = 0.05;  // hysteresis: at or below = recovered
  double detection_latency = 50e-9;  // [s] trip must persist this long
  double sense_interval = 10e-9;     // [s] monitor sampling cadence
  double action_dwell = 100e-9;      // [s] settle time between rungs
  double watchdog_timeout = 1e-6;    // [s] out-of-regulation -> shutdown
  double frequency_boost = 2.0;      // FrequencyRetarget multiplier
  std::size_t max_actions = 16;      // action-trail bound (watchdog exempt)

  void validate() const;
};

class StackSupervisor {
 public:
  StackSupervisor(SupervisorConfig config, std::size_t layer_count);

  const SupervisorConfig& config() const { return config_; }

  /// Feed one sensing sample: per-layer worst droop fractions (of vdd) at
  /// time `t`.  Samples must arrive in nondecreasing time order.  Returns
  /// the actions fired at this tick (usually empty); they are also appended
  /// to actions().
  std::vector<SupervisorAction> observe(double t,
                                        const std::vector<double>& layer_droop);

  SupervisorState state() const { return state_; }
  /// When the fault was declared (armed trip persisted through the
  /// detection latency); negative when never detected.
  double detected_at() const { return detected_at_; }
  /// When the droop first re-entered the recovery band after mitigation;
  /// negative when it never did.
  double recovered_at() const { return recovered_at_; }
  /// Full action trail, in firing order (bounded by config().max_actions
  /// plus any watchdog shutdowns).
  const std::vector<SupervisorAction>& actions() const { return actions_; }
  /// Worst droop fraction seen across all samples.
  double worst_droop() const { return worst_droop_; }

 private:
  SupervisorAction fire(double t, std::size_t layer);

  SupervisorConfig config_;
  std::size_t layer_count_ = 0;
  SupervisorState state_ = SupervisorState::Nominal;
  int rung_ = 0;  // next ladder rung to fire (index into the enum)
  double armed_at_ = -1.0;
  double detected_at_ = -1.0;
  double recovered_at_ = -1.0;
  double last_action_at_ = -1.0;
  double mitigating_since_ = -1.0;
  double worst_droop_ = 0.0;
  double last_sample_time_ = -1.0;
  std::vector<SupervisorAction> actions_;
};

}  // namespace vstack::sc
