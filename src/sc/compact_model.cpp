#include "sc/compact_model.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vstack::sc {

void ScConverterDesign::validate() const {
  topology.validate();
  VS_REQUIRE(total_fly_capacitance > 0.0, "fly capacitance must be positive");
  VS_REQUIRE(total_switch_conductance > 0.0,
             "switch conductance must be positive");
  VS_REQUIRE(nominal_switching_frequency > 0.0,
             "switching frequency must be positive");
  VS_REQUIRE(duty_cycle > 0.0 && duty_cycle < 1.0, "duty cycle in (0, 1)");
  VS_REQUIRE(bottom_plate_ratio >= 0.0, "bottom-plate ratio must be >= 0");
  VS_REQUIRE(gate_capacitance_total >= 0.0, "gate capacitance must be >= 0");
  VS_REQUIRE(max_load_current > 0.0, "current limit must be positive");
  VS_REQUIRE(min_switching_frequency > 0.0 &&
                 min_switching_frequency <= nominal_switching_frequency,
             "frequency floor must be in (0, f_nominal]");
}

ScCompactModel::ScCompactModel(ScConverterDesign design)
    : design_(std::move(design)) {
  design_.validate();
}

double ScCompactModel::r_ssl(double switching_frequency) const {
  VS_REQUIRE(switching_frequency > 0.0, "frequency must be positive");
  const double ac_sum = design_.topology.cap_multiplier_sum();
  return ac_sum * ac_sum /
         (design_.total_fly_capacitance * switching_frequency);
}

double ScCompactModel::r_fsl() const {
  const double ar_sum = design_.topology.switch_multiplier_sum();
  return ar_sum * ar_sum /
         (design_.total_switch_conductance * design_.duty_cycle);
}

double ScCompactModel::r_series(double switching_frequency) const {
  const double ssl = r_ssl(switching_frequency);
  const double fsl = r_fsl();
  return std::sqrt(ssl * ssl + fsl * fsl);
}

double ScCompactModel::switching_frequency(double load_current) const {
  const double magnitude = std::abs(load_current);
  if (design_.control == ControlPolicy::OpenLoop) {
    return design_.nominal_switching_frequency;
  }
  // Closed loop: proportional frequency modulation keeps the charge moved
  // per cycle (and hence conduction/parasitic balance) roughly constant.
  const double scaled = design_.nominal_switching_frequency * magnitude /
                        design_.max_load_current;
  return std::clamp(scaled, design_.min_switching_frequency,
                    design_.nominal_switching_frequency);
}

double ScCompactModel::parasitic_power(double switching_frequency,
                                       double local_vdd) const {
  VS_REQUIRE(switching_frequency > 0.0, "frequency must be positive");
  VS_REQUIRE(local_vdd >= 0.0, "local Vdd must be non-negative");
  // Bottom plates swing by the per-layer supply once per period.
  const double bottom_plate =
      design_.bottom_plate_ratio * design_.total_fly_capacitance * local_vdd *
      local_vdd * switching_frequency;
  const double gate = design_.gate_capacitance_total *
                      design_.gate_drive_voltage *
                      design_.gate_drive_voltage * switching_frequency;
  return bottom_plate + gate;
}

ScOperatingPoint ScCompactModel::evaluate(double v_top, double v_bottom,
                                          double load_current) const {
  VS_REQUIRE(v_top > v_bottom, "V_top must exceed V_bottom");

  ScOperatingPoint op;
  op.switching_frequency = switching_frequency(load_current);
  op.r_ssl = r_ssl(op.switching_frequency);
  op.r_fsl = r_fsl();
  op.r_series = std::sqrt(op.r_ssl * op.r_ssl + op.r_fsl * op.r_fsl);
  op.ideal_output_voltage =
      v_bottom + design_.topology.ideal_ratio * (v_top - v_bottom);

  const double magnitude = std::abs(load_current);
  op.voltage_drop = magnitude * op.r_series;
  // Sourcing pulls the output below the midpoint; sinking pushes it above.
  op.output_voltage = (load_current >= 0.0)
                          ? op.ideal_output_voltage - op.voltage_drop
                          : op.ideal_output_voltage + op.voltage_drop;

  const double local_vdd = 0.5 * (v_top - v_bottom);
  op.output_power = magnitude * op.ideal_output_voltage -
                    magnitude * magnitude * op.r_series;
  op.conduction_loss = magnitude * magnitude * op.r_series;
  op.parasitic_loss = parasitic_power(op.switching_frequency, local_vdd);
  op.input_power = op.output_power + op.conduction_loss + op.parasitic_loss;
  op.efficiency =
      (op.input_power > 0.0 && magnitude > 0.0)
          ? op.output_power / op.input_power
          : 0.0;
  op.within_current_limit = magnitude <= design_.max_load_current;
  return op;
}

}  // namespace vstack::sc
