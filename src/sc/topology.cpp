#include "sc/topology.h"

#include <numeric>

#include "common/error.h"

namespace vstack::sc {

double ScTopology::cap_multiplier_sum() const {
  return std::accumulate(cap_charge_multipliers.begin(),
                         cap_charge_multipliers.end(), 0.0);
}

double ScTopology::switch_multiplier_sum() const {
  return std::accumulate(switch_charge_multipliers.begin(),
                         switch_charge_multipliers.end(), 0.0);
}

void ScTopology::validate() const {
  VS_REQUIRE(!cap_charge_multipliers.empty(),
             "topology needs at least one fly capacitor");
  VS_REQUIRE(!switch_charge_multipliers.empty(),
             "topology needs at least one switch");
  for (double a : cap_charge_multipliers) {
    VS_REQUIRE(a > 0.0, "capacitor charge multipliers must be positive");
  }
  for (double a : switch_charge_multipliers) {
    VS_REQUIRE(a > 0.0, "switch charge multipliers must be positive");
  }
  VS_REQUIRE(ideal_ratio > 0.0 && ideal_ratio < 1.0,
             "ideal conversion ratio must be in (0, 1)");
}

ScTopology push_pull_2to1() {
  ScTopology t;
  t.name = "push-pull-2:1";
  t.ideal_ratio = 0.5;
  t.cap_charge_multipliers = {0.25, 0.25};
  t.switch_charge_multipliers = std::vector<double>(8, 0.25);
  t.validate();
  return t;
}

ScTopology series_parallel_2to1() {
  ScTopology t;
  t.name = "series-parallel-2:1";
  t.ideal_ratio = 0.5;
  t.cap_charge_multipliers = {0.5};
  t.switch_charge_multipliers = std::vector<double>(4, 0.5);
  t.validate();
  return t;
}

ScTopology series_parallel_step_down(std::size_t n) {
  VS_REQUIRE(n >= 2, "step-down ratio needs n >= 2");
  ScTopology t;
  t.name = "series-parallel-" + std::to_string(n) + ":1";
  t.ideal_ratio = 1.0 / static_cast<double>(n);
  const double a = 1.0 / static_cast<double>(n);
  t.cap_charge_multipliers = std::vector<double>(n - 1, a);
  t.switch_charge_multipliers = std::vector<double>(3 * n - 2, a);
  t.validate();
  return t;
}

}  // namespace vstack::sc
