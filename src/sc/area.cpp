#include "sc/area.h"

#include "common/error.h"

namespace vstack::sc {

// Densities back-solved from the paper's converter areas with 8 nF of fly
// capacitance and kSwitchAndControlArea of fixed overhead.
CapacitorTechnology mim_capacitor() {
  return {"MIM", 8e-9 / (0.472e-6 - kSwitchAndControlArea)};
}

CapacitorTechnology ferroelectric_capacitor() {
  return {"ferroelectric", 8e-9 / (0.102e-6 - kSwitchAndControlArea)};
}

CapacitorTechnology deep_trench_capacitor() {
  return {"deep-trench", 8e-9 / (0.082e-6 - kSwitchAndControlArea)};
}

std::vector<CapacitorTechnology> standard_capacitor_technologies() {
  return {mim_capacitor(), ferroelectric_capacitor(),
          deep_trench_capacitor()};
}

double converter_area(const ScConverterDesign& design,
                      const CapacitorTechnology& technology) {
  VS_REQUIRE(technology.density > 0.0, "capacitor density must be positive");
  return design.total_fly_capacitance / technology.density +
         kSwitchAndControlArea;
}

}  // namespace vstack::sc
