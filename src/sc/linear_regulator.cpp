#include "sc/linear_regulator.h"

#include <cmath>

#include "common/error.h"

namespace vstack::sc {

void LinearRegulatorDesign::validate() const {
  VS_REQUIRE(output_resistance > 0.0, "output resistance must be positive");
  VS_REQUIRE(quiescent_current >= 0.0, "quiescent current must be >= 0");
  VS_REQUIRE(max_load_current > 0.0, "current limit must be positive");
  VS_REQUIRE(area > 0.0, "area must be positive");
}

LinearRegulatorModel::LinearRegulatorModel(LinearRegulatorDesign design)
    : design_(design) {
  design_.validate();
}

LinearRegulatorOperatingPoint LinearRegulatorModel::evaluate(
    double v_top, double v_bottom, double load_current) const {
  VS_REQUIRE(v_top > v_bottom, "V_top must exceed V_bottom");

  LinearRegulatorOperatingPoint op;
  const double midpoint = 0.5 * (v_top + v_bottom);
  const double magnitude = std::abs(load_current);
  op.voltage_drop = magnitude * design_.output_resistance;
  op.output_voltage = (load_current >= 0.0) ? midpoint - op.voltage_drop
                                            : midpoint + op.voltage_drop;
  op.output_power = magnitude * op.output_voltage;

  // Sourcing burns (v_top - v_out) across the pass device; sinking burns
  // (v_out - v_bottom).  Both are ~half the spanned voltage.
  const double headroom = (load_current >= 0.0) ? v_top - op.output_voltage
                                                : op.output_voltage - v_bottom;
  op.pass_device_loss = magnitude * headroom;
  op.quiescent_loss = design_.quiescent_current * (v_top - v_bottom);
  op.input_power = op.output_power + op.pass_device_loss + op.quiescent_loss;
  op.efficiency = (op.input_power > 0.0 && magnitude > 0.0)
                      ? op.output_power / op.input_power
                      : 0.0;
  op.within_current_limit = magnitude <= design_.max_load_current;
  return op;
}

}  // namespace vstack::sc
