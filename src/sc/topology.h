// Switched-capacitor topology descriptions via charge-multiplier vectors
// (Seeman's design methodology, the paper's Sec. 3.1).
//
// A topology is characterised, per unit of output charge and switching
// period, by how much charge flows through each fly capacitor (a_c) and each
// switch (a_r).  These two vectors determine the slow- and fast-switching
// asymptotic output impedances:
//
//   R_SSL = (sum |a_c,i|)^2 / (C_tot * f_sw)            (paper eq. 1)
//   R_FSL = (sum |a_r,i|)^2 / (G_tot * D_cyc)           (paper eq. 2)
#pragma once

#include <string>
#include <vector>

namespace vstack::sc {

struct ScTopology {
  std::string name;
  /// Ideal conversion ratio V_out / V_in (input = top-to-bottom span).
  double ideal_ratio = 0.5;
  /// Per-capacitor charge multipliers |a_c,i|.
  std::vector<double> cap_charge_multipliers;
  /// Per-switch charge multipliers |a_r,i|.
  std::vector<double> switch_charge_multipliers;

  double cap_multiplier_sum() const;
  double switch_multiplier_sum() const;
  std::size_t capacitor_count() const { return cap_charge_multipliers.size(); }
  std::size_t switch_count() const { return switch_charge_multipliers.size(); }

  /// Validate invariants (non-empty, positive multipliers, ratio in (0,1)).
  void validate() const;
};

/// The paper's converter: 2:1 push-pull cell (Fig. 1).  Both phases deliver
/// output charge through complementary cap positions, so each of the two fly
/// capacitors carries only 1/4 of the output charge per period
/// (sum |a_c| = 1/2, giving R_SSL = 1/(4 C_tot f) -- the classic 2:1 value).
/// Each of the 8 switches conducts 1/4 of the output charge in its phase.
ScTopology push_pull_2to1();

/// Conventional single-capacitor 2:1 divider (one phase charges, the other
/// discharges): each coulomb of output charge passes through the single fly
/// capacitor twice per period in halves (sum |a_c| = 1/2), and through the
/// 4 switches in 1/2-sized shares.
ScTopology series_parallel_2to1();

/// General series-parallel 1/n step-down (n >= 2).  Phase A charges the
/// n-1 fly caps in series with the output; phase B discharges them all in
/// parallel into the output.  Charge balance gives a_c,i = 1/n for each of
/// the n-1 caps and a_r,i = 1/n for each of the 3n-2 switches:
///   sum |a_c| = (n-1)/n,    sum |a_r| = (3n-2)/n.
/// Higher ratios could let one converter span several stack rails -- an
/// exploration the library supports beyond the paper's 2:1 cells.
ScTopology series_parallel_step_down(std::size_t n);

}  // namespace vstack::sc
