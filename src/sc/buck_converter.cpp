#include "sc/buck_converter.h"

#include <cmath>

#include "common/error.h"

namespace vstack::sc {

void BuckConverterDesign::validate() const {
  VS_REQUIRE(inductance > 0.0, "inductance must be positive");
  VS_REQUIRE(inductor_dcr >= 0.0, "inductor DCR must be >= 0");
  VS_REQUIRE(switch_on_resistance > 0.0, "switch resistance must be positive");
  VS_REQUIRE(switching_frequency > 0.0, "frequency must be positive");
  VS_REQUIRE(max_load_current > 0.0, "current limit must be positive");
  VS_REQUIRE(inductor_density > 0.0, "inductor density must be positive");
}

double BuckConverterDesign::area() const {
  return inductance / inductor_density + control_area;
}

BuckConverterModel::BuckConverterModel(BuckConverterDesign design)
    : design_(design) {
  design_.validate();
}

BuckOperatingPoint BuckConverterModel::evaluate(double v_top, double v_bottom,
                                                double load_current) const {
  VS_REQUIRE(v_top > v_bottom, "V_top must exceed V_bottom");

  BuckOperatingPoint op;
  const double v_in = v_top - v_bottom;
  const double duty = 0.5;
  const double midpoint = 0.5 * (v_top + v_bottom);
  const double magnitude = std::abs(load_current);

  // Inductor ripple at D = 0.5: dI = V_in * D * (1 - D) / (L * f).
  op.ripple_current = v_in * duty * (1.0 - duty) /
                      (design_.inductance * design_.switching_frequency);

  // Effective series resistance: one switch conducting at a time + DCR.
  const double r_eff = design_.switch_on_resistance + design_.inductor_dcr;
  op.voltage_drop = magnitude * r_eff;
  op.output_voltage = (load_current >= 0.0) ? midpoint - op.voltage_drop
                                            : midpoint + op.voltage_drop;
  op.output_power = magnitude * op.output_voltage;

  // RMS current includes the triangular ripple: I_rms^2 = I^2 + dI^2/12.
  const double i_rms_sq =
      magnitude * magnitude +
      op.ripple_current * op.ripple_current / 12.0;
  op.conduction_loss = i_rms_sq * r_eff;
  op.switching_loss =
      (2.0 * design_.switch_output_capacitance * v_in * v_in +
       design_.gate_charge_power_per_hz) *
      design_.switching_frequency;

  op.input_power = op.output_power + op.conduction_loss + op.switching_loss;
  op.efficiency = (op.input_power > 0.0 && magnitude > 0.0)
                      ? op.output_power / op.input_power
                      : 0.0;
  op.within_current_limit = magnitude <= design_.max_load_current;
  return op;
}

}  // namespace vstack::sc
