// Multi-output ladder composition of 2:1 push-pull cells (the paper's
// extension of the two-load converter of [9] to many-layer stacks, Fig. 1).
//
// In an N-layer voltage stack, a converter cell at intermediate rail k
// (k = 1..N-1) spans rails k-1 and k+1 and regulates rail k toward their
// midpoint.  Sourcing a net current c_k into rail k draws c_k/2 from each
// adjoining rail (2:1 charge balance), so the rail KCL forms a tridiagonal
// system:
//
//   c_k - (c_{k-1} + c_{k+1})/2 = I_k - I_{k+1},  c_0 = c_N = 0
//
// where I_l is layer l's load current.  This module solves that system and
// aggregates per-converter losses; the full spatial treatment (grid IR drop)
// lives in src/pdn, which stamps each cell into the MNA matrix instead.
#pragma once

#include <cstddef>
#include <vector>

#include "sc/compact_model.h"

namespace vstack::sc {

struct LadderCurrentSolution {
  /// Net converter output current per intermediate rail; index k-1 holds
  /// c_k.  Positive = sourcing into the rail, negative = sinking.
  std::vector<double> level_net_currents;
  /// Current drawn from the off-chip supply at the top rail.
  double supply_current = 0.0;
};

/// Solve the ladder KCL for per-level converter currents.
/// `layer_currents[l-1]` is layer l's load current; size must be >= 2.
LadderCurrentSolution solve_ladder_currents(
    const std::vector<double>& layer_currents);

/// A voltage-stacked ladder: N layers, a bank of identical converters at
/// every intermediate rail.
struct LadderStackDesign {
  std::size_t layer_count = 2;
  std::size_t converters_per_level = 1;  // per whatever unit the currents use
  ScConverterDesign converter;

  void validate() const;
};

struct LadderPowerBreakdown {
  double load_power = 0.0;       // sum of per-layer load powers [W]
  double conduction_loss = 0.0;  // all converters' I^2 R [W]
  double parasitic_loss = 0.0;   // all converters' bottom-plate + gate [W]
  double input_power = 0.0;      // load + losses [W]
  double efficiency = 0.0;       // load / input
  double max_converter_current = 0.0;  // worst per-converter load [A]
  bool within_current_limits = true;
  LadderCurrentSolution currents;
};

/// Aggregate power bookkeeping for a stack under given per-layer currents.
/// `vdd` is the per-layer supply; rail k sits at nominal k * vdd.
LadderPowerBreakdown evaluate_ladder_power(
    const LadderStackDesign& design, const std::vector<double>& layer_currents,
    double vdd);

}  // namespace vstack::sc
