#include "sc/supervisor.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace vstack::sc {

namespace {

constexpr int kShutdownRung =
    static_cast<int>(SupervisorActionKind::LayerShutdown);

}  // namespace

const char* to_string(SupervisorState state) {
  switch (state) {
    case SupervisorState::Nominal: return "nominal";
    case SupervisorState::Armed: return "armed";
    case SupervisorState::Mitigating: return "mitigating";
    case SupervisorState::Recovered: return "recovered";
    case SupervisorState::Shutdown: return "shutdown";
  }
  return "unknown";
}

const char* to_string(SupervisorActionKind kind) {
  switch (kind) {
    case SupervisorActionKind::PhaseRebalance: return "phase-rebalance";
    case SupervisorActionKind::FrequencyRetarget: return "frequency-retarget";
    case SupervisorActionKind::BypassEngage: return "bypass-engage";
    case SupervisorActionKind::LayerShutdown: return "layer-shutdown";
  }
  return "unknown";
}

std::string SupervisorAction::describe() const {
  std::ostringstream oss;
  oss << to_string(kind) << " layer " << layer << " at " << time << " s";
  if (kind == SupervisorActionKind::FrequencyRetarget) {
    oss << " (fsw x" << factor << ")";
  }
  return oss.str();
}

void SupervisorConfig::validate() const {
  VS_REQUIRE(trip_fraction > 0.0, "trip fraction must be positive");
  VS_REQUIRE(recovery_fraction > 0.0 && recovery_fraction < trip_fraction,
             "recovery fraction must be positive and below the trip "
             "fraction (hysteresis)");
  VS_REQUIRE(detection_latency >= 0.0, "detection latency must be >= 0");
  VS_REQUIRE(sense_interval > 0.0, "sense interval must be positive");
  VS_REQUIRE(action_dwell >= 0.0, "action dwell must be >= 0");
  VS_REQUIRE(watchdog_timeout > detection_latency,
             "watchdog timeout must exceed the detection latency");
  VS_REQUIRE(frequency_boost > 1.0, "frequency boost must exceed 1");
  VS_REQUIRE(max_actions >= 1, "need room for at least one action");
}

StackSupervisor::StackSupervisor(SupervisorConfig config,
                                 std::size_t layer_count)
    : config_(config), layer_count_(layer_count) {
  config_.validate();
  VS_REQUIRE(layer_count >= 1, "supervisor needs at least one layer");
}

SupervisorAction StackSupervisor::fire(double t, std::size_t layer) {
  SupervisorAction action;
  action.time = t;
  action.kind = static_cast<SupervisorActionKind>(rung_);
  action.layer = layer;
  if (action.kind == SupervisorActionKind::FrequencyRetarget) {
    action.factor = config_.frequency_boost;
  }
  last_action_at_ = t;
  if (rung_ < kShutdownRung) ++rung_;
  actions_.push_back(action);
  return action;
}

std::vector<SupervisorAction> StackSupervisor::observe(
    double t, const std::vector<double>& layer_droop) {
  VS_REQUIRE(layer_droop.size() == layer_count_,
             "droop sample size must match layer count");
  VS_REQUIRE(t >= last_sample_time_, "samples must arrive in time order");
  last_sample_time_ = t;

  double worst = 0.0;
  std::size_t worst_layer = 0;
  for (std::size_t l = 0; l < layer_droop.size(); ++l) {
    VS_REQUIRE(std::isfinite(layer_droop[l]), "droop sample must be finite");
    if (layer_droop[l] > worst) {
      worst = layer_droop[l];
      worst_layer = l;
    }
  }
  worst_droop_ = std::max(worst_droop_, worst);

  std::vector<SupervisorAction> fired;

  // Arming / disarming transitions first; Mitigating logic runs below so a
  // trip that just cleared the detection latency fires its first rung at
  // the SAME tick it is declared (detection latency already covers it).
  switch (state_) {
    case SupervisorState::Nominal:
    case SupervisorState::Recovered:
    case SupervisorState::Shutdown:
      if (worst >= config_.trip_fraction) {
        state_ = SupervisorState::Armed;
        armed_at_ = t;
      }
      break;
    case SupervisorState::Armed:
      if (worst < config_.trip_fraction) {
        // Transient glitch shorter than the detection latency.
        state_ = detected_at_ >= 0.0 ? SupervisorState::Recovered
                                     : SupervisorState::Nominal;
        break;
      }
      if (t - armed_at_ >= config_.detection_latency) {
        if (detected_at_ < 0.0) detected_at_ = t;
        mitigating_since_ = t;
        state_ = SupervisorState::Mitigating;
      }
      break;
    case SupervisorState::Mitigating:
      break;
  }

  if (state_ != SupervisorState::Mitigating) return fired;

  if (worst <= config_.recovery_fraction) {
    state_ = SupervisorState::Recovered;
    if (recovered_at_ < 0.0) recovered_at_ = t;
    return fired;
  }

  // Watchdog: out of regulation too long -> jump straight to shutdown,
  // regardless of ladder position or the action-trail bound.
  const bool watchdog = t - mitigating_since_ >= config_.watchdog_timeout;
  if (watchdog) rung_ = kShutdownRung;
  // Action-trail bound: once full, only the watchdog shutdown may fire.
  if (!watchdog && actions_.size() >= config_.max_actions) return fired;

  const bool first_rung = last_action_at_ < mitigating_since_;
  if (first_rung || watchdog ||
      t - last_action_at_ >= config_.action_dwell) {
    fired.push_back(fire(t, worst_layer));
    if (fired.back().kind == SupervisorActionKind::LayerShutdown) {
      // Terminal for this episode; another rail tripping re-arms with a
      // fresh ladder.
      state_ = SupervisorState::Shutdown;
      rung_ = 0;
      mitigating_since_ = -1.0;
    }
  }
  return fired;
}

}  // namespace vstack::sc
