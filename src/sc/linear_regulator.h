// Push-pull linear regulator model -- the paper's cited alternative to SC
// conversion (Rajapandian et al. [13], "implicit DC-DC downconversion
// through charge-recycling").
//
// A linear pass device sources mismatch current from the rail above the
// output (or sinks it to the rail below), burning the full Vdd headroom
// across itself: P_loss ~ |I| * (rail spacing).  Low area, no switching
// parasitics, but efficiency collapses as the differential current grows --
// the paper's motivation for switched-capacitor regulation.
#pragma once

namespace vstack::sc {

struct LinearRegulatorDesign {
  /// Output (pass-device) resistance in the active region [Ohm]; sets the
  /// regulator's contribution to output voltage droop.
  double output_resistance = 0.05;
  /// Bias current drawn continuously from the spanned rails [A].
  double quiescent_current = 50e-6;
  /// Maximum source/sink current [A].
  double max_load_current = 100e-3;
  /// Silicon area [m^2]; linear regulators are tiny next to SC converters.
  double area = 0.01e-6;

  void validate() const;
};

struct LinearRegulatorOperatingPoint {
  double output_voltage = 0.0;   // ideal midpoint - I * R_out (signed)
  double voltage_drop = 0.0;     // |I| * R_out
  double output_power = 0.0;     // |I| * V_out
  double pass_device_loss = 0.0; // |I| * headroom burned in the pass device
  double quiescent_loss = 0.0;   // bias burn across the spanned rails
  double input_power = 0.0;
  double efficiency = 0.0;
  bool within_current_limit = true;
};

class LinearRegulatorModel {
 public:
  explicit LinearRegulatorModel(LinearRegulatorDesign design);

  const LinearRegulatorDesign& design() const { return design_; }

  /// Evaluate at a signed load current (positive = sourcing into the
  /// output rail from the top rail; negative = sinking to the bottom rail).
  LinearRegulatorOperatingPoint evaluate(double v_top, double v_bottom,
                                         double load_current) const;

 private:
  LinearRegulatorDesign design_;
};

}  // namespace vstack::sc
