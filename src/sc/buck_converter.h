// Inductive (buck) converter model -- the alternative the paper explicitly
// defers ("leave the study of inductive converters for future work",
// Sec. 2.1), implemented here as an extension.
//
// A synchronous buck halving V_in to V_out = D * V_in (D = 0.5 for the
// stacking use case) with losses split into:
//   conduction: I^2 * (R_dson + R_dcr)     (switches + inductor winding)
//   switching:  (C_oss V^2 + Q_g V_g) f    (output and gate charge)
//   core/ripple: fixed fraction of the inductor's VA at the ripple current
// On-chip inductors have poor quality and density, which is what makes SC
// converters the favoured integrated option (Steyaert et al. [17]).
#pragma once

namespace vstack::sc {

struct BuckConverterDesign {
  double inductance = 50e-9;          // [H] integrated inductor
  double inductor_dcr = 0.15;         // [Ohm] winding resistance
  double switch_on_resistance = 0.1;  // [Ohm] per active switch (2 conduct)
  double switching_frequency = 100e6; // [Hz]
  double output_capacitance = 2e-9;   // [F]
  double switch_output_capacitance = 50e-12;  // [F] C_oss per switch
  double gate_charge_power_per_hz = 4e-12;    // [W/Hz] total gate drive
  double max_load_current = 100e-3;   // [A]
  /// Integrated inductor area density is poor: ~20 nH/mm^2 achievable with
  /// on-chip spirals, so a 50 nH buck costs ~2.5 mm^2.
  double inductor_density = 20e-9 / 1e-6;  // [H/m^2]
  double control_area = 0.02e-6;           // [m^2] switches + compensation

  void validate() const;
  double area() const;  // inductor + control [m^2]
};

struct BuckOperatingPoint {
  double output_voltage = 0.0;
  double voltage_drop = 0.0;
  double ripple_current = 0.0;  // peak-to-peak inductor ripple [A]
  double output_power = 0.0;
  double conduction_loss = 0.0;
  double switching_loss = 0.0;
  double input_power = 0.0;
  double efficiency = 0.0;
  bool within_current_limit = true;
};

class BuckConverterModel {
 public:
  explicit BuckConverterModel(BuckConverterDesign design);

  const BuckConverterDesign& design() const { return design_; }

  /// Evaluate a 2:1 (D = 0.5) conversion spanning v_top..v_bottom with a
  /// signed load current at the midpoint output.
  BuckOperatingPoint evaluate(double v_top, double v_bottom,
                              double load_current) const;

 private:
  BuckConverterDesign design_;
};

}  // namespace vstack::sc
