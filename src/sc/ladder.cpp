#include "sc/ladder.h"

#include <cmath>

#include "common/error.h"

namespace vstack::sc {

LadderCurrentSolution solve_ladder_currents(
    const std::vector<double>& layer_currents) {
  const std::size_t n = layer_currents.size();
  VS_REQUIRE(n >= 2, "a voltage stack needs at least two layers");
  for (double i : layer_currents) {
    VS_REQUIRE(i >= 0.0, "layer load currents must be non-negative");
  }

  const std::size_t levels = n - 1;
  // Thomas algorithm on the tridiagonal system
  //   -1/2 * c_{k-1} + c_k - 1/2 * c_{k+1} = d_k.
  std::vector<double> d(levels);
  for (std::size_t k = 1; k <= levels; ++k) {
    d[k - 1] = layer_currents[k - 1] - layer_currents[k];
  }

  std::vector<double> c_prime(levels, 0.0);
  std::vector<double> d_prime(levels, 0.0);
  const double lower = -0.5, diag = 1.0, upper = -0.5;

  c_prime[0] = upper / diag;
  d_prime[0] = d[0] / diag;
  for (std::size_t k = 1; k < levels; ++k) {
    const double denom = diag - lower * c_prime[k - 1];
    c_prime[k] = upper / denom;
    d_prime[k] = (d[k] - lower * d_prime[k - 1]) / denom;
  }

  LadderCurrentSolution sol;
  sol.level_net_currents.assign(levels, 0.0);
  sol.level_net_currents[levels - 1] = d_prime[levels - 1];
  for (std::size_t k = levels - 1; k-- > 0;) {
    sol.level_net_currents[k] =
        d_prime[k] - c_prime[k] * sol.level_net_currents[k + 1];
  }

  sol.supply_current =
      layer_currents.back() + 0.5 * sol.level_net_currents.back();
  return sol;
}

void LadderStackDesign::validate() const {
  VS_REQUIRE(layer_count >= 2, "stack needs at least two layers");
  VS_REQUIRE(converters_per_level >= 1, "need at least one converter");
  converter.validate();
}

LadderPowerBreakdown evaluate_ladder_power(
    const LadderStackDesign& design, const std::vector<double>& layer_currents,
    double vdd) {
  design.validate();
  VS_REQUIRE(layer_currents.size() == design.layer_count,
             "layer current vector must match layer count");
  VS_REQUIRE(vdd > 0.0, "vdd must be positive");

  LadderPowerBreakdown out;
  out.currents = solve_ladder_currents(layer_currents);

  for (double i : layer_currents) out.load_power += i * vdd;

  const ScCompactModel model(design.converter);
  const double n_conv = static_cast<double>(design.converters_per_level);

  for (std::size_t level = 1; level < design.layer_count; ++level) {
    const double net = out.currents.level_net_currents[level - 1];
    const double per_converter = std::abs(net) / n_conv;
    out.max_converter_current =
        std::max(out.max_converter_current, per_converter);
    if (per_converter > design.converter.max_load_current) {
      out.within_current_limits = false;
    }
    // Rails k-1 and k+1 bracket the cell.
    const double v_top = static_cast<double>(level + 1) * vdd;
    const double v_bottom = static_cast<double>(level - 1) * vdd;
    const auto op = model.evaluate(v_top, v_bottom, per_converter);
    out.conduction_loss += n_conv * op.conduction_loss;
    out.parasitic_loss += n_conv * op.parasitic_loss;
  }

  out.input_power = out.load_power + out.conduction_loss + out.parasitic_loss;
  out.efficiency =
      out.input_power > 0.0 ? out.load_power / out.input_power : 0.0;
  return out;
}

}  // namespace vstack::sc
