// Area model for integrated SC converters (paper Sec. 3.1).
//
// Fly capacitors dominate converter area, so the area is driven by the
// integrated-capacitor technology.  Densities are calibrated so an 8 nF
// converter reproduces the paper's reported areas: 0.472 mm^2 (MIM),
// 0.102 mm^2 (ferroelectric [17]), 0.082 mm^2 (deep trench [12]).
#pragma once

#include <string>
#include <vector>

#include "sc/compact_model.h"

namespace vstack::sc {

struct CapacitorTechnology {
  std::string name;
  double density = 0.0;  // [F/m^2]
};

/// MIM capacitors: paper's default implementation (0.472 mm^2 @ 8 nF).
CapacitorTechnology mim_capacitor();

/// Ferroelectric high-density capacitors (0.102 mm^2 @ 8 nF).
CapacitorTechnology ferroelectric_capacitor();

/// Deep-trench capacitors (0.082 mm^2 @ 8 nF).
CapacitorTechnology deep_trench_capacitor();

/// All three technologies, in the paper's order.
std::vector<CapacitorTechnology> standard_capacitor_technologies();

/// Fixed non-capacitor area per converter (switches, drivers, clocking).
inline constexpr double kSwitchAndControlArea = 0.01e-6;  // [m^2]

/// Total silicon area of one converter instance.
double converter_area(const ScConverterDesign& design,
                      const CapacitorTechnology& technology);

}  // namespace vstack::sc
