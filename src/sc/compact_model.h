// Compact (resistive) model of the switched-capacitor converter — the
// paper's Fig. 2 and Sec. 3.1.
//
// The converter is modeled as an ideal source at (V_top + V_bottom)/2 in
// series with R_SERIES = sqrt(R_SSL^2 + R_FSL^2), plus a parasitic loss term
// (bottom-plate and gate-drive charge, the role of R_PAR in the paper's
// figure).  Both open-loop (fixed f_sw) and closed-loop (f_sw modulated with
// load) control policies are supported; the paper evaluates open-loop and
// leaves closed-loop as future work, which we implement as an extension.
#pragma once

#include "sc/topology.h"

namespace vstack::sc {

enum class ControlPolicy {
  OpenLoop,   // constant switching frequency
  ClosedLoop  // f_sw scaled proportionally to load current, with a floor
};

/// Electrical design of one converter instance.
struct ScConverterDesign {
  ScTopology topology = push_pull_2to1();

  double total_fly_capacitance = 8e-9;   // C_tot [F]
  double total_switch_conductance = 71.1;  // G_tot [S] (32 switches @ 0.45 Ohm)
  double nominal_switching_frequency = 50e6;  // [Hz]
  double duty_cycle = 0.5;                    // D_cyc

  // Parasitics (R_PAR in the paper's compact model).
  double bottom_plate_ratio = 0.015;  // parasitic / fly capacitance
  double gate_capacitance_total = 64e-12;  // [F] all switch gates combined
  double gate_drive_voltage = 1.0;         // [V]

  double max_load_current = 100e-3;  // [A] per converter (paper: 100 mA)

  ControlPolicy control = ControlPolicy::OpenLoop;
  double min_switching_frequency = 1e6;  // closed-loop floor [Hz]

  void validate() const;
};

/// Converter state at one (V_top, V_bottom, I_load) operating point.
struct ScOperatingPoint {
  double switching_frequency = 0.0;  // [Hz] chosen by the control policy
  double r_ssl = 0.0;                // [Ohm]
  double r_fsl = 0.0;                // [Ohm]
  double r_series = 0.0;             // [Ohm]
  double ideal_output_voltage = 0.0;  // (V_top + V_bottom)/2 [V]
  double output_voltage = 0.0;        // ideal - |I| * R_series (push or pull)
  double voltage_drop = 0.0;          // |I| * R_series [V]
  double output_power = 0.0;          // |I| * output_voltage [W]
  double conduction_loss = 0.0;       // I^2 * R_series [W]
  double parasitic_loss = 0.0;        // bottom-plate + gate drive [W]
  double input_power = 0.0;           // output + losses [W]
  double efficiency = 0.0;            // output / input; 0 at zero load
  bool within_current_limit = true;   // |I| <= max_load_current
};

class ScCompactModel {
 public:
  explicit ScCompactModel(ScConverterDesign design);

  const ScConverterDesign& design() const { return design_; }

  /// Slow-switching-limit impedance at a given frequency (paper eq. 1).
  double r_ssl(double switching_frequency) const;

  /// Fast-switching-limit impedance (paper eq. 2); frequency independent.
  double r_fsl() const;

  /// Combined series resistance sqrt(R_SSL^2 + R_FSL^2).
  double r_series(double switching_frequency) const;

  /// Frequency the control policy selects for a load current magnitude.
  double switching_frequency(double load_current) const;

  /// Parasitic power at a switching frequency and local Vdd (the swing the
  /// bottom plates see is the per-layer supply, (V_top - V_bottom)/2).
  double parasitic_power(double switching_frequency, double local_vdd) const;

  /// Full operating-point evaluation.  `load_current` is signed: positive
  /// when the converter sources current into the output rail, negative when
  /// it sinks.  Both directions traverse the same R_series (push-pull).
  ScOperatingPoint evaluate(double v_top, double v_bottom,
                            double load_current) const;

 private:
  ScConverterDesign design_;
};

}  // namespace vstack::sc
