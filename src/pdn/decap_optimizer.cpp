#include "pdn/decap_optimizer.h"

#include "common/error.h"

namespace vstack::pdn {

double peak_noise_for_allocation(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const std::vector<double>& layer_density,
    const PdnTransientOptions& options) {
  PdnTransientOptions local = options;
  local.layer_decap_density = layer_density;
  return simulate_load_step(model, core_model, activities_before,
                            activities_after, local)
      .peak_noise;
}

DecapAllocation optimize_layer_decap(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const DecapOptimizerOptions& options) {
  const std::size_t layers = model.config().layer_count;
  VS_REQUIRE(options.shift_fraction > 0.0 && options.shift_fraction < 1.0,
             "shift fraction must be in (0, 1)");

  DecapAllocation result;
  result.layer_density.assign(layers, options.transient.decap_density);
  result.uniform_noise = peak_noise_for_allocation(
      model, core_model, activities_before, activities_after,
      result.layer_density, options.transient);
  result.peak_noise = result.uniform_noise;

  // Coordinate descent: for each donor layer, try shifting part of its
  // share to each other layer and keep the best improving move.
  for (std::size_t round = 0; round < options.rounds; ++round) {
    bool improved = false;
    for (std::size_t donor = 0; donor < layers; ++donor) {
      std::size_t best_receiver = donor;
      double best_noise = result.peak_noise;
      std::vector<double> best_profile;
      for (std::size_t receiver = 0; receiver < layers; ++receiver) {
        if (receiver == donor) continue;
        auto candidate = result.layer_density;
        const double moved = options.shift_fraction * candidate[donor];
        if (candidate[donor] - moved <= 0.0) continue;
        candidate[donor] -= moved;
        candidate[receiver] += moved;
        const double noise = peak_noise_for_allocation(
            model, core_model, activities_before, activities_after,
            candidate, options.transient);
        if (noise < best_noise) {
          best_noise = noise;
          best_receiver = receiver;
          best_profile = std::move(candidate);
        }
      }
      if (best_receiver != donor) {
        result.layer_density = std::move(best_profile);
        result.peak_noise = best_noise;
        improved = true;
      }
    }
    if (!improved) break;
  }
  return result;
}

}  // namespace vstack::pdn
