#include "pdn/fault.h"

#include <numeric>
#include <sstream>

#include "common/error.h"

namespace vstack::pdn {

FaultSet& FaultSet::open_conductor(std::size_t index, std::size_t units) {
  VS_REQUIRE(units > 0, "open_conductor: units must be positive");
  faults_.push_back({FaultKind::OpenConductor, index, units, 1.0});
  return *this;
}

FaultSet& FaultSet::degrade_conductor(std::size_t index, double factor) {
  VS_REQUIRE(factor > 0.0, "degrade_conductor: factor must be positive");
  faults_.push_back({FaultKind::DegradeConductor, index, 0, factor});
  return *this;
}

FaultSet& FaultSet::converter_stuck_off(std::size_t index) {
  faults_.push_back({FaultKind::ConverterStuckOff, index, 0, 1.0});
  return *this;
}

FaultSet& FaultSet::leakage_to_ground(std::size_t node, double resistance) {
  VS_REQUIRE(resistance > 0.0, "leakage resistance must be positive");
  faults_.push_back({FaultKind::LeakageToGround, node, 0, resistance});
  return *this;
}

void FaultSet::apply_to(PdnNetwork& network) const {
  for (const Fault& f : faults_) {
    switch (f.kind) {
      case FaultKind::OpenConductor:
        network.remove_conductor_units(f.index, f.units);
        break;
      case FaultKind::DegradeConductor:
        network.scale_conductor_resistance(f.index, f.severity);
        break;
      case FaultKind::ConverterStuckOff:
        network.disable_converter(f.index);
        break;
      case FaultKind::LeakageToGround:
        network.add_leakage_to_ground(f.index, f.severity);
        break;
    }
  }
}

const char* conductor_kind_name(ConductorKind kind) {
  switch (kind) {
    case ConductorKind::GridStrap:    return "strap";
    case ConductorKind::PackageVdd:   return "pkg-vdd";
    case ConductorKind::PackageGnd:   return "pkg-gnd";
    case ConductorKind::C4Vdd:        return "c4-vdd";
    case ConductorKind::C4Gnd:        return "c4-gnd";
    case ConductorKind::TsvVdd:       return "tsv-vdd";
    case ConductorKind::TsvGnd:       return "tsv-gnd";
    case ConductorKind::RecyclingTsv: return "tsv-recycle";
    case ConductorKind::ThroughVia:   return "via";
    case ConductorKind::Leakage:      return "leak";
  }
  return "?";
}

std::string FaultSet::describe(const PdnNetwork& network) const {
  std::ostringstream oss;
  bool first = true;
  for (const Fault& f : faults_) {
    if (!first) oss << " ";
    first = false;
    switch (f.kind) {
      case FaultKind::OpenConductor: {
        const char* kind =
            f.index < network.conductors().size()
                ? conductor_kind_name(network.conductors()[f.index].kind)
                : "?";
        oss << "open[" << kind << "#" << f.index << "]";
        break;
      }
      case FaultKind::DegradeConductor:
        oss << "degrade[#" << f.index << " x" << f.severity << "]";
        break;
      case FaultKind::ConverterStuckOff:
        oss << "conv-off[" << f.index << "]";
        break;
      case FaultKind::LeakageToGround:
        oss << "leak[n" << f.index << " " << f.severity << "ohm]";
        break;
    }
  }
  return oss.str();
}

std::size_t IslandReport::floating_node_count() const {
  std::size_t n = 0;
  for (const auto& island : islands) n += island.size();
  return n;
}

namespace {

/// Union-find over the free nodes plus one virtual "anchored" slot that
/// stands in for every fixed potential.
class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t i) {
    while (parent_[i] != i) {
      parent_[i] = parent_[parent_[i]];
      i = parent_[i];
    }
    return i;
  }

  void unite(std::size_t a, std::size_t b) { parent_[find(a)] = find(b); }

 private:
  std::vector<std::size_t> parent_;
};

}  // namespace

IslandReport find_floating_islands(const PdnNetwork& network) {
  const std::size_t n = network.node_count();
  const std::size_t anchor = n;
  UnionFind uf(n + 1);

  const auto slot = [&](std::size_t node) {
    return (node == kFixedSupply || node == kFixedGround) ? anchor : node;
  };

  for (const auto& group : network.conductors()) {
    if (group.count == 0) continue;  // fully opened by a fault
    uf.unite(slot(group.node_a), slot(group.node_b));
  }

  const bool ideal_reference =
      network.config().converter_reference == ConverterReference::IdealRails;
  for (const auto& conv : network.converters()) {
    if (!conv.enabled) continue;
    if (ideal_reference) {
      // The stiff reference ties the output to its nominal level.
      uf.unite(conv.out, anchor);
    } else {
      // The midpoint element conducts between all three terminals.
      uf.unite(conv.top, conv.bottom);
      uf.unite(conv.top, conv.out);
    }
  }

  // Group non-anchored nodes by representative.
  const std::size_t anchored_root = uf.find(anchor);
  std::vector<std::vector<std::size_t>> by_root(n + 1);
  for (std::size_t node = 0; node < n; ++node) {
    const std::size_t root = uf.find(node);
    if (root != anchored_root) by_root[root].push_back(node);
  }

  IslandReport report;
  for (auto& group : by_root) {
    if (!group.empty()) report.islands.push_back(std::move(group));
  }
  return report;
}

}  // namespace vstack::pdn
