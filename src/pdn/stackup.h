// Design description of a full 3D-IC power delivery network.
#pragma once

#include <cstddef>

#include "pdn/params.h"
#include "sc/compact_model.h"

namespace vstack::pdn {

enum class PdnTopology {
  Regular3d,      // all layers' Vdd/Gnd nets in parallel through TSV stacks
  VoltageStacked  // layers in series; SC converters regulate mid rails
};

/// What the converter's "(V_top + V_bottom)/2" refers to.
///
/// `IdealRails` regulates each intermediate rail toward its NOMINAL
/// potential (level * vdd) through R_SERIES -- the converter bank acts as a
/// stiff reference, and per-level drops do not accumulate across the stack.
/// The paper's Fig. 6 noise levels are only reproducible in this mode.
///
/// `AdjacentRails` uses the SOLVED neighbouring rail voltages (a literal
/// reading of the paper's compact model).  Because the interleaved high-low
/// pattern loads every other level with same-sign mismatch current, the
/// per-level droop then accumulates quadratically with layer count -- a
/// property of midpoint-referenced ladder stacks this library exposes as an
/// ablation (see EXPERIMENTS.md).
enum class ConverterReference { IdealRails, AdjacentRails };

/// Complete scenario description consumed by PdnModel.
struct StackupConfig {
  PdnTopology topology = PdnTopology::Regular3d;
  std::size_t layer_count = 2;
  double vdd = 1.0;  // per-layer supply [V]

  PdnParameters params;
  TsvConfig tsv = TsvConfig::few();

  /// Fraction of C4 pad sites allocated to power delivery (split evenly
  /// between Vdd and Gnd).  Regular topology draws all current through
  /// these; the voltage-stacked topology uses `vdd_pads_per_core` instead.
  double power_c4_fraction = 0.25;

  /// Voltage-stacked topology: Vdd pads per core, each feeding exactly one
  /// through-via to the top rail (paper: 32 per core); an equal number of
  /// ground pads serves the bottom rail.
  std::size_t vdd_pads_per_core = 32;

  /// Voltage-stacked topology: SC converters per core at EVERY intermediate
  /// rail (the paper's "converters per core").
  std::size_t converters_per_core = 8;
  sc::ScConverterDesign converter;
  ConverterReference converter_reference = ConverterReference::IdealRails;

  /// Electrical grid resolution per layer (cells per edge).
  std::size_t grid_nx = 32;
  std::size_t grid_ny = 32;

  void validate() const;

  bool is_voltage_stacked() const {
    return topology == PdnTopology::VoltageStacked;
  }

  /// Nominal off-chip supply: vdd for regular, layer_count * vdd stacked.
  double supply_voltage() const;
};

}  // namespace vstack::pdn
