#include "pdn/transient.h"

#include <cmath>

#include "common/error.h"
#include "la/cg.h"
#include "la/preconditioner.h"
#include "la/skyline_cholesky.h"

namespace vstack::pdn {

namespace {

bool is_fixed(std::size_t node) {
  return node == kFixedSupply || node == kFixedGround;
}

}  // namespace

void PdnTransientOptions::validate() const {
  VS_REQUIRE(decap_density > 0.0, "decap density must be positive");
  VS_REQUIRE(package_inductance > 0.0, "package inductance must be positive");
  VS_REQUIRE(time_step > 0.0, "time step must be positive");
  VS_REQUIRE(duration > time_step, "duration must exceed the time step");
  VS_REQUIRE(step_time >= 0.0 && step_time < duration,
             "step time must lie within the run");
}

PdnTransientResult simulate_load_step(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const PdnTransientOptions& options) {
  options.validate();
  const PdnNetwork& net = model.network();
  const StackupConfig& cfg = model.config();
  const double v_supply = cfg.supply_voltage();
  const double h = options.time_step;

  // Two extra unknowns split the package resistors so the loop inductance
  // can sit between the ideal source and the package node.
  const std::size_t n = net.node_count() + 2;
  const std::size_t lvdd_mid = net.node_count();
  const std::size_t lgnd_mid = net.node_count() + 1;

  // --- Static + companion matrix (constant over the run). -------------
  la::CooBuilder builder(n);
  const double g_l = h / (2.0 * options.package_inductance);

  for (const auto& group : net.conductors()) {
    if (group.count == 0) continue;  // fully opened by a fault
    const double g = static_cast<double>(group.count) / group.unit_resistance;
    std::size_t a = group.node_a;
    std::size_t b = group.node_b;
    // Reroute package resistors through the inductor mid nodes.
    if (group.kind == ConductorKind::PackageVdd) a = lvdd_mid;
    if (group.kind == ConductorKind::PackageGnd) b = lgnd_mid;

    const bool a_fixed = is_fixed(a);
    const bool b_fixed = is_fixed(b);
    VS_REQUIRE(!(a_fixed && b_fixed), "conductor between two fixed rails");
    if (!a_fixed && !b_fixed) {
      builder.add(a, a, g);
      builder.add(b, b, g);
      builder.add(a, b, -g);
      builder.add(b, a, -g);
    } else {
      const std::size_t free_node = a_fixed ? b : a;
      builder.add(free_node, free_node, g);
      // No static fixed-rail injections remain: both package paths now go
      // through the inductor companions below.
    }
  }

  // Converters (quasi-static: regulation bandwidth assumed above the step).
  const bool ideal_reference =
      cfg.converter_reference == ConverterReference::IdealRails;
  for (const auto& conv : net.converters()) {
    if (!conv.enabled) continue;  // stuck-off fault
    const double g = 1.0 / conv.r_series;
    if (ideal_reference) {
      builder.add(conv.out, conv.out, g);
    } else {
      const std::size_t idx[3] = {conv.top, conv.bottom, conv.out};
      const double v[3] = {0.5, 0.5, -1.0};
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          builder.add(idx[i], idx[j], g * v[i] * v[j]);
        }
      }
    }
  }

  // Decap companions: one per (layer, cell); density may vary per layer.
  VS_REQUIRE(options.layer_decap_density.empty() ||
                 options.layer_decap_density.size() == cfg.layer_count,
             "per-layer decap vector must match layer count");
  const std::size_t cells = cfg.grid_nx * cfg.grid_ny;
  const double cell_area = net.floorplan().width * net.floorplan().height /
                           static_cast<double>(cells);
  std::vector<double> layer_g_c(cfg.layer_count);
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    const double density = options.layer_decap_density.empty()
                               ? options.decap_density
                               : options.layer_decap_density[l];
    VS_REQUIRE(density > 0.0, "decap density must be positive");
    layer_g_c[l] = 2.0 * density * cell_area / h;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const std::size_t a = net.vdd_node(l, cell);
      const std::size_t b = net.gnd_node(l, cell);
      builder.add(a, a, layer_g_c[l]);
      builder.add(b, b, layer_g_c[l]);
      builder.add(a, b, -layer_g_c[l]);
      builder.add(b, a, -layer_g_c[l]);
    }
  }

  // Inductor companions: supply -> lvdd_mid, lgnd_mid -> ground.
  builder.add(lvdd_mid, lvdd_mid, g_l);
  builder.add(lgnd_mid, lgnd_mid, g_l);

  const la::CsrMatrix matrix = builder.build();
  std::unique_ptr<la::ReorderedCholesky> direct;
  std::unique_ptr<la::Preconditioner> precond;
  if (n <= options.direct_solver_node_limit) {
    direct = std::make_unique<la::ReorderedCholesky>(matrix);
  } else {
    precond = la::make_ilu0(matrix);
  }

  // --- Initial condition: DC solve before the step. --------------------
  const auto loads_before = net.build_loads(core_model, activities_before);
  const auto loads_after = net.build_loads(core_model, activities_after);
  const PdnSolution dc = model.solve(loads_before);

  la::Vector x(n, 0.0);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    x[i] = dc.node_voltages[i];
  }
  x[lvdd_mid] = v_supply;  // inductors are shorts at DC
  x[lgnd_mid] = 0.0;

  // Capacitor states.
  std::vector<double> cap_v(cfg.layer_count * cells, 0.0);
  std::vector<double> cap_i(cfg.layer_count * cells, 0.0);
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      cap_v[l * cells + cell] = x[net.vdd_node(l, cell)] -
                                x[net.gnd_node(l, cell)];
    }
  }
  // Inductor states (current flowing from the fixed rail into the chip on
  // the Vdd side, and from the chip into ground on the return side).
  double lvdd_i = dc.supply_current;
  double lgnd_i = dc.supply_current;
  double lvdd_v = 0.0, lgnd_v = 0.0;  // DC inductor voltage is zero

  // Nominal rail potentials for the noise metric.
  const auto nominal = [&](std::size_t l, bool vdd_net) {
    const double gnd = cfg.is_voltage_stacked()
                           ? static_cast<double>(l) * cfg.vdd
                           : 0.0;
    return vdd_net ? gnd + cfg.vdd : gnd;
  };
  const auto worst_noise_of = [&](const la::Vector& sol) {
    double worst = 0.0;
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        worst = std::max(worst, std::abs(sol[net.vdd_node(l, cell)] -
                                         nominal(l, true)));
        worst = std::max(worst, std::abs(sol[net.gnd_node(l, cell)] -
                                         nominal(l, false)));
      }
    }
    return worst / cfg.vdd;
  };

  PdnTransientResult result;
  result.initial_noise = worst_noise_of(x);

  const auto n_steps = static_cast<std::size_t>(
      std::llround(options.duration / h));
  result.time.reserve(n_steps);
  result.worst_noise.reserve(n_steps);
  result.supply_current.reserve(n_steps);
  result.peak_noise = result.initial_noise;
  result.peak_time = 0.0;

  la::Vector rhs(n, 0.0);
  for (std::size_t step = 0; step < n_steps; ++step) {
    const double t_new = static_cast<double>(step + 1) * h;
    const auto& loads = (t_new >= options.step_time) ? loads_after
                                                     : loads_before;

    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (const auto& load : loads) {
      rhs[load.vdd_node] -= load.current;
      rhs[load.gnd_node] += load.current;
    }
    if (ideal_reference) {
      for (const auto& conv : net.converters()) {
        rhs[conv.out] += (1.0 / conv.r_series) *
                         static_cast<double>(conv.level) * cfg.vdd;
      }
    }
    // Capacitor histories.
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const std::size_t k = l * cells + cell;
        const double j_c = layer_g_c[l] * cap_v[k] + cap_i[k];
        rhs[net.vdd_node(l, cell)] += j_c;
        rhs[net.gnd_node(l, cell)] -= j_c;
      }
    }
    // Inductor histories (fixed-rail side folded into the RHS).
    const double j_lvdd = lvdd_i + g_l * lvdd_v;
    rhs[lvdd_mid] += g_l * v_supply + j_lvdd;
    const double j_lgnd = lgnd_i + g_l * lgnd_v;
    rhs[lgnd_mid] += -j_lgnd;  // current leaves the mid node into ground

    if (direct) {
      x = direct->solve(rhs);
    } else {
      const auto report =
          la::conjugate_gradient(matrix, rhs, x, *precond, options.iterative);
      VS_REQUIRE(report.converged, "transient PDN step failed to converge");
    }

    // Update states.
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const std::size_t k = l * cells + cell;
        const double v_new =
            x[net.vdd_node(l, cell)] - x[net.gnd_node(l, cell)];
        cap_i[k] =
            layer_g_c[l] * v_new - (layer_g_c[l] * cap_v[k] + cap_i[k]);
        cap_v[k] = v_new;
      }
    }
    lvdd_v = v_supply - x[lvdd_mid];
    lvdd_i = j_lvdd + g_l * lvdd_v;
    lgnd_v = x[lgnd_mid];  // mid node minus ground
    lgnd_i = j_lgnd + g_l * lgnd_v;

    const double noise = worst_noise_of(x);
    result.time.push_back(t_new);
    result.worst_noise.push_back(noise);
    result.supply_current.push_back(lvdd_i);
    if (noise > result.peak_noise) {
      result.peak_noise = noise;
      result.peak_time = t_new;
    }
  }
  result.final_noise = result.worst_noise.back();
  return result;
}

}  // namespace vstack::pdn
