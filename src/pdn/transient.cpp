#include "pdn/transient.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <string>
#include <utility>

#include "common/error.h"
#include "pdn/transient_core.h"
#include "telemetry/telemetry.h"

namespace vstack::pdn {

namespace {

using telemetry::monotonic_seconds;

/// One pending one-shot event on the run's timeline: the built-in load step
/// or an injected TimedFaultEvent (with its loads pre-built).
struct PendingEvent {
  double time = 0.0;
  const FaultSet* faults = nullptr;  // null for the built-in load step
  std::vector<LoadInjection> loads;
  bool has_loads = false;
  std::string label;
};

}  // namespace

void PdnTransientOptions::validate() const {
  VS_REQUIRE(decap_density > 0.0, "decap density must be positive");
  VS_REQUIRE(package_inductance > 0.0, "package inductance must be positive");
  VS_REQUIRE(time_step > 0.0, "time step must be positive");
  VS_REQUIRE(duration > time_step, "duration must exceed the time step");
  VS_REQUIRE(step_time >= 0.0 && step_time < duration,
             "step time must lie within the run");
  for (const auto& ev : fault_events) {
    VS_REQUIRE(std::isfinite(ev.time), "fault-event time must be finite");
    VS_REQUIRE(ev.time < duration, "fault-event time must precede the end");
  }
  control.validate();
}

PdnTransientResult simulate_load_step(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const PdnTransientOptions& options) {
  VS_SPAN("pdn.transient.load_step");
  options.validate();
  const StackupConfig& cfg = model.config();

  // Private copy of the network: mid-run fault events mutate the topology,
  // and the caller's model (with its DC caches) must stay pristine.
  PdnNetwork net = model.network();
  detail::TransientWorkspace ws(net, options);
  detail::StepSolver solver(ws.system(), options);
  const std::size_t n = ws.n();

  // --- Initial condition: DC solve before the step. --------------------
  const auto loads_before = net.build_loads(core_model, activities_before);
  const auto loads_after = net.build_loads(core_model, activities_after);
  const PdnSolution dc = model.solve(loads_before);

  PdnTransientResult result;
  if (!dc.solve_ok) {
    result.report.status = sim::TransientStatus::SolverFailure;
    result.report.diagnostic =
        "pre-step DC operating point failed: " + dc.diagnostic;
    return result;
  }

  la::Vector x(n, 0.0);
  ws.init_states(dc, x);

  result.initial_noise = ws.worst_noise_of(x);
  result.peak_noise = result.initial_noise;
  result.peak_time = 0.0;

  // --- Unified one-shot timeline: load step + injected fault events. ---
  std::vector<PendingEvent> pending;
  {
    PendingEvent step_event;
    step_event.time = options.step_time;
    step_event.loads = loads_after;
    step_event.has_loads = true;
    step_event.label = "load step";
    pending.push_back(std::move(step_event));
  }
  for (const auto& ev : options.fault_events) {
    PendingEvent p;
    p.time = ev.time;
    p.faults = &ev.faults;
    if (!ev.activities.empty()) {
      VS_REQUIRE(ev.activities.size() == cfg.layer_count,
                 "fault-event activities must match layer count");
      p.loads = net.build_loads(core_model, ev.activities);
      p.has_loads = true;
    }
    p.label = ev.label.empty() ? "fault event" : ev.label;
    pending.push_back(std::move(p));
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const PendingEvent& a, const PendingEvent& b) {
                     return a.time < b.time;
                   });

  const std::vector<LoadInjection>* live_loads = &loads_before;
  std::size_t next_pending = 0;
  // Apply every event with time <= t (+tol); returns whether the topology
  // changed (requiring an integration restart in adaptive mode).  The
  // epoch-keyed solver cache rebuilds factorizations on its own.
  const auto apply_events_through = [&](double t, double tol,
                                        sim::TransientReport& report) {
    bool topology_changed = false;
    while (next_pending < pending.size() &&
           pending[next_pending].time <= t + tol) {
      const PendingEvent& ev = pending[next_pending++];
      if (ev.has_loads) live_loads = &ev.loads;
      if (ev.faults == nullptr) continue;  // built-in load step: no trail
      if (ev.has_loads) {
        report.record_event(t, "load surge '" + ev.label + "' applied");
      }
      if (!ev.faults->empty()) {
        ev.faults->apply_to(net);
        ws.rebuild_topology();
        topology_changed = true;
        report.record_event(
            t, "fault event '" + ev.label + "' applied (" +
                   std::to_string(ev.faults->size()) +
                   " faults, topology epoch " +
                   std::to_string(net.topology_epoch()) + ")");
      }
    }
    return topology_changed;
  };

  la::Vector rhs(n, 0.0);

  const auto record_sample = [&](double t, const la::Vector& sol) {
    const double noise = ws.worst_noise_of(sol);
    result.time.push_back(t);
    result.worst_noise.push_back(noise);
    result.supply_current.push_back(ws.supply_inductor_current());
    if (noise > result.peak_noise) {
      result.peak_noise = noise;
      result.peak_time = t;
    }
  };

  std::string diagnostic;

  if (!options.adaptive) {
    // --- Legacy uniform grid (bit-compatible waveforms when no fault
    // events are scheduled) under the shared guard/budget/report
    // discipline.  Events fire at the first grid point t >= event time,
    // mirroring the historical load-step rule. -----------------------------
    const double h = options.time_step;
    const auto n_steps = static_cast<std::size_t>(
        std::llround(options.duration / h));
    result.time.reserve(n_steps);
    result.worst_noise.reserve(n_steps);
    result.supply_current.reserve(n_steps);

    sim::TransientReport& report = result.report;
    const double wall_start = monotonic_seconds();

    for (std::size_t step = 0; step < n_steps; ++step) {
      const double t_new = static_cast<double>(step + 1) * h;
      if (options.control.max_steps > 0 &&
          report.accepted_steps >= options.control.max_steps) {
        report.status = sim::TransientStatus::BudgetExhausted;
        report.diagnostic = "step budget of " +
                            std::to_string(options.control.max_steps) +
                            " exhausted at t = " + std::to_string(t_new) +
                            " s; result truncated";
        break;
      }
      if (options.control.wall_clock_budget_s > 0.0 &&
          monotonic_seconds() - wall_start >
              options.control.wall_clock_budget_s) {
        report.status = sim::TransientStatus::BudgetExhausted;
        report.diagnostic = "wall-clock budget exhausted at t = " +
                            std::to_string(t_new) + " s; result truncated";
        break;
      }
      apply_events_through(t_new, 0.0, report);
      ws.build_rhs(*live_loads, h, /*be=*/false, rhs);
      if (!solver.solve(h, /*be=*/false, rhs, x, t_new, report, diagnostic)) {
        report.status = sim::TransientStatus::SolverFailure;
        report.diagnostic = "transient PDN step failed at t = " +
                            std::to_string(t_new) + " s: " + diagnostic;
        break;
      }
      ws.commit_states(x, h, /*be=*/false);
      record_sample(t_new, x);
      ++report.accepted_steps;
      report.end_time = t_new;
    }
    report.min_dt = result.time.empty() ? 0.0 : h;
    report.max_dt = report.min_dt;
    report.last_dt = report.min_dt;
    report.wall_seconds = monotonic_seconds() - wall_start;
    sim::record_transient_telemetry(report, wall_start);
  } else {
    // --- Adaptive LTE-controlled stepping; the load-step instant and every
    // fault event are schedule entries the controller lands on exactly. ----
    const double dt_max = std::min(options.time_step, options.duration);
    sim::StepController ctl(options.control, 0.0, options.duration,
                            dt_max / 8.0, dt_max);
    constexpr int kBeStartupSteps = 2;
    int be_left = kBeStartupSteps;
    const double event_tol = 1e-12 * options.duration;

    sim::EventSchedule schedule(options.duration);
    schedule.add_time(options.step_time);
    for (const auto& ev : options.fault_events) schedule.add_time(ev.time);

    std::vector<double> cap_slope(ws.cap_voltages().size(), 0.0);
    std::vector<double> v_new(cap_slope.size(), 0.0);
    std::vector<double> v_pred(cap_slope.size(), 0.0);
    la::Vector candidate = x;

    while (!ctl.done() && !ctl.failed()) {
      const double t = ctl.time();
      // Events whose instant the controller just landed on (or, on the
      // first iteration, events at t <= 0) fire before the step that
      // starts here; a topology change restarts the integration history.
      if (apply_events_through(t, event_tol, ctl.report())) {
        be_left = kBeStartupSteps;
        ctl.reset_dt(dt_max / 16.0);
      }
      const double dt = ctl.begin_step(schedule.next_after(t));
      if (ctl.failed()) break;
      const bool be = be_left > 0;
      // The step uses the loads in force at its START, so each
      // discontinuity begins exactly at its snapped boundary.
      ws.build_rhs(*live_loads, dt, be, rhs);
      candidate = x;  // warm start; x stays the last accepted solution
      if (!solver.solve(dt, be, rhs, candidate, t, ctl.report(),
                        diagnostic)) {
        ctl.reject_step("linear solve failure");
        continue;
      }
      if (!sim::finite_and_bounded(candidate,
                                   options.control.overflow_limit)) {
        ctl.reject_step("NaN/overflow guard");
        continue;
      }
      const auto& cap_v = ws.cap_voltages();
      for (std::size_t l = 0; l < ws.layer_count(); ++l) {
        for (std::size_t cell = 0; cell < ws.cells(); ++cell) {
          const std::size_t k = l * ws.cells() + cell;
          v_new[k] = candidate[net.vdd_node(l, cell)] -
                     candidate[net.gnd_node(l, cell)];
        }
      }
      double err = 0.0;
      if (!be) {
        for (std::size_t k = 0; k < cap_v.size(); ++k) {
          v_pred[k] = cap_v[k] + cap_slope[k] * dt;
        }
        err = sim::error_norm(v_new, v_pred, options.control.rel_tol,
                              options.control.abs_tol);
      }
      const bool on_edge = ctl.ends_on_event();
      if (!ctl.finish_step(err, be ? 1 : 2)) continue;

      for (std::size_t k = 0; k < cap_v.size(); ++k) {
        cap_slope[k] = (v_new[k] - cap_v[k]) / dt;
      }
      ws.commit_states(candidate, dt, be);
      x = candidate;
      record_sample(ctl.time(), x);
      if (on_edge) {
        be_left = kBeStartupSteps;
        ctl.reset_dt(dt_max / 16.0);
      } else if (be_left > 0) {
        --be_left;
      }
    }
    ctl.finalize();
    result.report = ctl.report();
  }

  result.final_noise =
      result.worst_noise.empty() ? result.initial_noise
                                 : result.worst_noise.back();
  return result;
}

}  // namespace vstack::pdn
