#include "pdn/transient.h"

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <map>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "la/cg.h"
#include "la/preconditioner.h"
#include "la/skyline_cholesky.h"
#include "la/solve.h"

namespace vstack::pdn {

namespace {

bool is_fixed(std::size_t node) {
  return node == kFixedSupply || node == kFixedGround;
}

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

struct Trip {
  std::size_t i = 0;
  std::size_t j = 0;
  double v = 0.0;
};

/// The transient matrix split into timestep-independent parts so adaptive
/// stepping can reassemble it for any (dt, scheme) in O(nnz):
///
///   A(h) = static + cap_coeff * s/h + ind_coeff * h/s,   s = 1 (BE), 2 (trap)
///
/// where cap_coeff holds raw capacitances [F] and ind_coeff raw reciprocal
/// inductances [1/H] with the companion stamp signs baked in.
struct SplitSystem {
  std::size_t n = 0;
  std::vector<Trip> static_part;
  std::vector<Trip> cap_part;
  std::vector<Trip> ind_part;

  la::CsrMatrix assemble(double h, bool backward_euler) const {
    const double s = backward_euler ? 1.0 : 2.0;
    la::CooBuilder builder(n);
    for (const auto& t : static_part) builder.add(t.i, t.j, t.v);
    for (const auto& t : cap_part) builder.add(t.i, t.j, t.v * s / h);
    for (const auto& t : ind_part) builder.add(t.i, t.j, t.v * h / s);
    return builder.build();
  }
};

/// Per-(dt, scheme) cached factorization / preconditioner with a solve that
/// escalates instead of throwing: skyline Cholesky (small systems) -> warm-
/// started CG -> la::solve's full degradation ladder.
class StepSolver {
 public:
  StepSolver(const SplitSystem& sys, const PdnTransientOptions& options)
      : sys_(sys), options_(options) {}

  /// Solve A(h) x = rhs.  `x` carries the warm start and receives the
  /// solution only on success; returns false (with a diagnostic) when every
  /// rung failed.  Fallback activity is recorded into `report`.
  bool solve(double h, bool backward_euler, const la::Vector& rhs,
             la::Vector& x, double t, sim::TransientReport& report,
             std::string& diagnostic) {
    Cached& c = cached(h, backward_euler, t, report);
    if (c.direct) {
      la::Vector sol = c.direct->solve(rhs);
      if (sim::finite_and_bounded(sol, options_.control.overflow_limit)) {
        x = std::move(sol);
        return true;
      }
      report.record_event(t, "direct back-substitution produced non-finite "
                             "values; escalating to the iterative ladder");
    }
    if (c.precond) {
      la::Vector iterate = x;
      const auto r = la::conjugate_gradient(c.matrix, rhs, iterate,
                                            *c.precond, options_.iterative);
      if (r.converged &&
          sim::finite_and_bounded(iterate, options_.control.overflow_limit)) {
        x = std::move(iterate);
        return true;
      }
      report.record_event(t, "warm-started CG stalled (residual " +
                                 std::to_string(r.residual_norm) +
                                 "); escalating through la::solve");
    }
    // Final rung: the full non-throwing escalation ladder from PR 1.
    la::Vector iterate = x;
    la::SolveOptions ladder;
    ladder.iterative = options_.iterative;
    const auto r = la::solve(c.matrix, rhs, iterate, ladder);
    if (r.converged &&
        sim::finite_and_bounded(iterate, options_.control.overflow_limit)) {
      x = std::move(iterate);
      return true;
    }
    diagnostic = r.diagnostic.empty() ? "transient solve failed"
                                      : r.diagnostic;
    return false;
  }

 private:
  struct Cached {
    la::CsrMatrix matrix;
    std::unique_ptr<la::ReorderedCholesky> direct;
    std::unique_ptr<la::Preconditioner> precond;
  };

  Cached& cached(double h, bool backward_euler, double t,
                 sim::TransientReport& report) {
    const auto key = std::make_pair(bits_of(h), backward_euler);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
    if (cache_.size() > 16) cache_.clear();  // bound adaptive-dt growth

    Cached c;
    c.matrix = sys_.assemble(h, backward_euler);
    if (sys_.n <= options_.direct_solver_node_limit) {
      try {
        c.direct = std::make_unique<la::ReorderedCholesky>(c.matrix);
      } catch (const Error&) {
        report.record_event(t, "skyline Cholesky factorization failed for "
                               "dt = " + std::to_string(h) +
                               " s; using the iterative ladder");
      }
    }
    if (!c.direct) {
      try {
        c.precond = la::make_ilu0(c.matrix);
      } catch (const Error&) {
        c.precond = la::make_jacobi(c.matrix);
      }
    }
    return cache_.emplace(key, std::move(c)).first->second;
  }

  const SplitSystem& sys_;
  const PdnTransientOptions& options_;
  std::map<std::pair<std::uint64_t, bool>, Cached> cache_;
};

}  // namespace

void PdnTransientOptions::validate() const {
  VS_REQUIRE(decap_density > 0.0, "decap density must be positive");
  VS_REQUIRE(package_inductance > 0.0, "package inductance must be positive");
  VS_REQUIRE(time_step > 0.0, "time step must be positive");
  VS_REQUIRE(duration > time_step, "duration must exceed the time step");
  VS_REQUIRE(step_time >= 0.0 && step_time < duration,
             "step time must lie within the run");
  control.validate();
}

PdnTransientResult simulate_load_step(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const PdnTransientOptions& options) {
  options.validate();
  const PdnNetwork& net = model.network();
  const StackupConfig& cfg = model.config();
  const double v_supply = cfg.supply_voltage();

  // Two extra unknowns split the package resistors so the loop inductance
  // can sit between the ideal source and the package node.
  const std::size_t n = net.node_count() + 2;
  const std::size_t lvdd_mid = net.node_count();
  const std::size_t lgnd_mid = net.node_count() + 1;

  // --- Timestep-independent system parts. -----------------------------
  SplitSystem sys;
  sys.n = n;

  for (const auto& group : net.conductors()) {
    if (group.count == 0) continue;  // fully opened by a fault
    const double g = static_cast<double>(group.count) / group.unit_resistance;
    std::size_t a = group.node_a;
    std::size_t b = group.node_b;
    // Reroute package resistors through the inductor mid nodes.
    if (group.kind == ConductorKind::PackageVdd) a = lvdd_mid;
    if (group.kind == ConductorKind::PackageGnd) b = lgnd_mid;

    const bool a_fixed = is_fixed(a);
    const bool b_fixed = is_fixed(b);
    VS_REQUIRE(!(a_fixed && b_fixed), "conductor between two fixed rails");
    if (!a_fixed && !b_fixed) {
      sys.static_part.push_back({a, a, g});
      sys.static_part.push_back({b, b, g});
      sys.static_part.push_back({a, b, -g});
      sys.static_part.push_back({b, a, -g});
    } else {
      const std::size_t free_node = a_fixed ? b : a;
      sys.static_part.push_back({free_node, free_node, g});
      // No static fixed-rail injections remain: both package paths now go
      // through the inductor companions below.
    }
  }

  // Converters (quasi-static: regulation bandwidth assumed above the step).
  const bool ideal_reference =
      cfg.converter_reference == ConverterReference::IdealRails;
  for (const auto& conv : net.converters()) {
    if (!conv.enabled) continue;  // stuck-off fault
    const double g = 1.0 / conv.r_series;
    if (ideal_reference) {
      sys.static_part.push_back({conv.out, conv.out, g});
    } else {
      const std::size_t idx[3] = {conv.top, conv.bottom, conv.out};
      const double v[3] = {0.5, 0.5, -1.0};
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          sys.static_part.push_back({idx[i], idx[j], g * v[i] * v[j]});
        }
      }
    }
  }

  // Decap companions: one per (layer, cell); density may vary per layer.
  VS_REQUIRE(options.layer_decap_density.empty() ||
                 options.layer_decap_density.size() == cfg.layer_count,
             "per-layer decap vector must match layer count");
  const std::size_t cells = cfg.grid_nx * cfg.grid_ny;
  const double cell_area = net.floorplan().width * net.floorplan().height /
                           static_cast<double>(cells);
  std::vector<double> layer_cap(cfg.layer_count);  // per-cell capacitance [F]
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    const double density = options.layer_decap_density.empty()
                               ? options.decap_density
                               : options.layer_decap_density[l];
    VS_REQUIRE(density > 0.0, "decap density must be positive");
    layer_cap[l] = density * cell_area;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const std::size_t a = net.vdd_node(l, cell);
      const std::size_t b = net.gnd_node(l, cell);
      sys.cap_part.push_back({a, a, layer_cap[l]});
      sys.cap_part.push_back({b, b, layer_cap[l]});
      sys.cap_part.push_back({a, b, -layer_cap[l]});
      sys.cap_part.push_back({b, a, -layer_cap[l]});
    }
  }

  // Inductor companions: supply -> lvdd_mid, lgnd_mid -> ground.
  const double inv_l = 1.0 / options.package_inductance;
  sys.ind_part.push_back({lvdd_mid, lvdd_mid, inv_l});
  sys.ind_part.push_back({lgnd_mid, lgnd_mid, inv_l});

  StepSolver solver(sys, options);

  // --- Initial condition: DC solve before the step. --------------------
  const auto loads_before = net.build_loads(core_model, activities_before);
  const auto loads_after = net.build_loads(core_model, activities_after);
  const PdnSolution dc = model.solve(loads_before);

  PdnTransientResult result;
  if (!dc.solve_ok) {
    result.report.status = sim::TransientStatus::SolverFailure;
    result.report.diagnostic =
        "pre-step DC operating point failed: " + dc.diagnostic;
    return result;
  }

  la::Vector x(n, 0.0);
  for (std::size_t i = 0; i < net.node_count(); ++i) {
    x[i] = dc.node_voltages[i];
  }
  x[lvdd_mid] = v_supply;  // inductors are shorts at DC
  x[lgnd_mid] = 0.0;

  // Capacitor states.
  std::vector<double> cap_v(cfg.layer_count * cells, 0.0);
  std::vector<double> cap_i(cfg.layer_count * cells, 0.0);
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    for (std::size_t cell = 0; cell < cells; ++cell) {
      cap_v[l * cells + cell] = x[net.vdd_node(l, cell)] -
                                x[net.gnd_node(l, cell)];
    }
  }
  // Inductor states (current flowing from the fixed rail into the chip on
  // the Vdd side, and from the chip into ground on the return side).
  double lvdd_i = dc.supply_current;
  double lgnd_i = dc.supply_current;
  double lvdd_v = 0.0, lgnd_v = 0.0;  // DC inductor voltage is zero

  // Nominal rail potentials for the noise metric.
  const auto nominal = [&](std::size_t l, bool vdd_net) {
    const double gnd = cfg.is_voltage_stacked()
                           ? static_cast<double>(l) * cfg.vdd
                           : 0.0;
    return vdd_net ? gnd + cfg.vdd : gnd;
  };
  const auto worst_noise_of = [&](const la::Vector& sol) {
    double worst = 0.0;
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      for (std::size_t cell = 0; cell < cells; ++cell) {
        worst = std::max(worst, std::abs(sol[net.vdd_node(l, cell)] -
                                         nominal(l, true)));
        worst = std::max(worst, std::abs(sol[net.gnd_node(l, cell)] -
                                         nominal(l, false)));
      }
    }
    return worst / cfg.vdd;
  };

  result.initial_noise = worst_noise_of(x);
  result.peak_noise = result.initial_noise;
  result.peak_time = 0.0;

  la::Vector rhs(n, 0.0);

  /// Companion right-hand side for one step of size h at scheme `be`.
  const auto build_rhs = [&](const std::vector<LoadInjection>& loads,
                             double h, bool be) {
    const double s = be ? 1.0 : 2.0;
    const double g_l = h / (s * options.package_inductance);
    std::fill(rhs.begin(), rhs.end(), 0.0);
    for (const auto& load : loads) {
      rhs[load.vdd_node] -= load.current;
      rhs[load.gnd_node] += load.current;
    }
    if (ideal_reference) {
      for (const auto& conv : net.converters()) {
        if (!conv.enabled) continue;
        rhs[conv.out] += (1.0 / conv.r_series) *
                         static_cast<double>(conv.level) * cfg.vdd;
      }
    }
    // Capacitor histories.
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      const double g_c = s * layer_cap[l] / h;
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const std::size_t k = l * cells + cell;
        const double j_c = g_c * cap_v[k] + (be ? 0.0 : cap_i[k]);
        rhs[net.vdd_node(l, cell)] += j_c;
        rhs[net.gnd_node(l, cell)] -= j_c;
      }
    }
    // Inductor histories (fixed-rail side folded into the RHS).
    const double j_lvdd = lvdd_i + (be ? 0.0 : g_l * lvdd_v);
    rhs[lvdd_mid] += g_l * v_supply + j_lvdd;
    const double j_lgnd = lgnd_i + (be ? 0.0 : g_l * lgnd_v);
    rhs[lgnd_mid] += -j_lgnd;  // current leaves the mid node into ground
  };

  /// Advance companion states to the accepted solution `sol`.
  const auto commit_states = [&](const la::Vector& sol, double h, bool be) {
    const double s = be ? 1.0 : 2.0;
    const double g_l = h / (s * options.package_inductance);
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      const double g_c = s * layer_cap[l] / h;
      for (std::size_t cell = 0; cell < cells; ++cell) {
        const std::size_t k = l * cells + cell;
        const double v_new =
            sol[net.vdd_node(l, cell)] - sol[net.gnd_node(l, cell)];
        const double j_c = g_c * cap_v[k] + (be ? 0.0 : cap_i[k]);
        cap_i[k] = g_c * v_new - j_c;
        cap_v[k] = v_new;
      }
    }
    const double j_lvdd = lvdd_i + (be ? 0.0 : g_l * lvdd_v);
    lvdd_v = v_supply - sol[lvdd_mid];
    lvdd_i = j_lvdd + g_l * lvdd_v;
    const double j_lgnd = lgnd_i + (be ? 0.0 : g_l * lgnd_v);
    lgnd_v = sol[lgnd_mid];  // mid node minus ground
    lgnd_i = j_lgnd + g_l * lgnd_v;
  };

  const auto record_sample = [&](double t, const la::Vector& sol) {
    const double noise = worst_noise_of(sol);
    result.time.push_back(t);
    result.worst_noise.push_back(noise);
    result.supply_current.push_back(lvdd_i);
    if (noise > result.peak_noise) {
      result.peak_noise = noise;
      result.peak_time = t;
    }
  };

  std::string diagnostic;

  if (!options.adaptive) {
    // --- Legacy uniform grid (bit-compatible waveforms) under the shared
    // guard/budget/report discipline. ------------------------------------
    const double h = options.time_step;
    const auto n_steps = static_cast<std::size_t>(
        std::llround(options.duration / h));
    result.time.reserve(n_steps);
    result.worst_noise.reserve(n_steps);
    result.supply_current.reserve(n_steps);

    sim::TransientReport& report = result.report;
    const double wall_start = monotonic_seconds();

    for (std::size_t step = 0; step < n_steps; ++step) {
      const double t_new = static_cast<double>(step + 1) * h;
      if (options.control.max_steps > 0 &&
          report.accepted_steps >= options.control.max_steps) {
        report.status = sim::TransientStatus::BudgetExhausted;
        report.diagnostic = "step budget of " +
                            std::to_string(options.control.max_steps) +
                            " exhausted at t = " + std::to_string(t_new) +
                            " s; result truncated";
        break;
      }
      if (options.control.wall_clock_budget_s > 0.0 &&
          monotonic_seconds() - wall_start >
              options.control.wall_clock_budget_s) {
        report.status = sim::TransientStatus::BudgetExhausted;
        report.diagnostic = "wall-clock budget exhausted at t = " +
                            std::to_string(t_new) + " s; result truncated";
        break;
      }
      const auto& loads = (t_new >= options.step_time) ? loads_after
                                                       : loads_before;
      build_rhs(loads, h, /*be=*/false);
      if (!solver.solve(h, /*be=*/false, rhs, x, t_new, report, diagnostic)) {
        report.status = sim::TransientStatus::SolverFailure;
        report.diagnostic = "transient PDN step failed at t = " +
                            std::to_string(t_new) + " s: " + diagnostic;
        break;
      }
      commit_states(x, h, /*be=*/false);
      record_sample(t_new, x);
      ++report.accepted_steps;
      report.end_time = t_new;
    }
    report.min_dt = result.time.empty() ? 0.0 : h;
    report.max_dt = report.min_dt;
    report.last_dt = report.min_dt;
    report.wall_seconds = monotonic_seconds() - wall_start;
  } else {
    // --- Adaptive LTE-controlled stepping; the load-step instant is an
    // event the controller lands on exactly. ------------------------------
    const double dt_max = std::min(options.time_step, options.duration);
    sim::StepController ctl(options.control, 0.0, options.duration,
                            dt_max / 8.0, dt_max);
    constexpr int kBeStartupSteps = 2;
    int be_left = kBeStartupSteps;
    const double event_tol = 1e-12 * options.duration;

    std::vector<double> cap_slope(cap_v.size(), 0.0);
    std::vector<double> v_new(cap_v.size(), 0.0);
    std::vector<double> v_pred(cap_v.size(), 0.0);
    la::Vector candidate = x;

    while (!ctl.done() && !ctl.failed()) {
      const double t = ctl.time();
      const double next_event =
          (t < options.step_time - event_tol)
              ? options.step_time
              : std::numeric_limits<double>::infinity();
      const double dt = ctl.begin_step(next_event);
      if (ctl.failed()) break;
      const bool be = be_left > 0;
      // The step uses the loads in force at its START, so the discontinuity
      // begins exactly at the snapped step_time boundary.
      const auto& loads = (t >= options.step_time - event_tol) ? loads_after
                                                               : loads_before;
      build_rhs(loads, dt, be);
      candidate = x;  // warm start; x stays the last accepted solution
      if (!solver.solve(dt, be, rhs, candidate, t, ctl.report(),
                        diagnostic)) {
        ctl.reject_step("linear solve failure");
        continue;
      }
      if (!sim::finite_and_bounded(candidate,
                                   options.control.overflow_limit)) {
        ctl.reject_step("NaN/overflow guard");
        continue;
      }
      for (std::size_t l = 0; l < cfg.layer_count; ++l) {
        for (std::size_t cell = 0; cell < cells; ++cell) {
          const std::size_t k = l * cells + cell;
          v_new[k] = candidate[net.vdd_node(l, cell)] -
                     candidate[net.gnd_node(l, cell)];
        }
      }
      double err = 0.0;
      if (!be) {
        for (std::size_t k = 0; k < cap_v.size(); ++k) {
          v_pred[k] = cap_v[k] + cap_slope[k] * dt;
        }
        err = sim::error_norm(v_new, v_pred, options.control.rel_tol,
                              options.control.abs_tol);
      }
      const bool on_edge = ctl.ends_on_event();
      if (!ctl.finish_step(err, be ? 1 : 2)) continue;

      for (std::size_t k = 0; k < cap_v.size(); ++k) {
        cap_slope[k] = (v_new[k] - cap_v[k]) / dt;
      }
      commit_states(candidate, dt, be);
      x = candidate;
      record_sample(ctl.time(), x);
      if (on_edge) {
        be_left = kBeStartupSteps;
        ctl.reset_dt(dt_max / 16.0);
      } else if (be_left > 0) {
        --be_left;
      }
    }
    ctl.finalize();
    result.report = ctl.report();
  }

  result.final_noise =
      result.worst_noise.empty() ? result.initial_noise
                                 : result.worst_noise.back();
  return result;
}

}  // namespace vstack::pdn
