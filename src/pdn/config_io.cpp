#include "pdn/config_io.h"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "common/error.h"

namespace vstack::pdn {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

double to_number(const std::string& key, const std::string& value) {
  try {
    std::size_t used = 0;
    const double v = std::stod(value, &used);
    VS_REQUIRE(used == value.size(), "trailing characters");
    return v;
  } catch (const std::exception&) {
    VS_FAIL("config key '" + key + "' expects a number, got '" + value +
            "'");
  }
}

TsvConfig tsv_by_name(const std::string& name) {
  const std::string n = lower(name);
  if (n == "dense") return TsvConfig::dense();
  if (n == "sparse") return TsvConfig::sparse();
  if (n == "few") return TsvConfig::few();
  VS_FAIL("unknown tsv config '" + name + "' (dense|sparse|few)");
}

}  // namespace

StackupConfig parse_stackup_config(const std::string& text,
                                   const StackupConfig& base) {
  StackupConfig cfg = base;
  std::istringstream stream(text);
  std::string raw;
  std::size_t line_no = 0;
  while (std::getline(stream, raw)) {
    ++line_no;
    std::string line = raw;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    VS_REQUIRE(eq != std::string::npos,
               "config line " + std::to_string(line_no) +
                   " is not 'key = value'");
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    VS_REQUIRE(!value.empty(), "config key '" + key + "' has no value");

    if (key == "topology") {
      const std::string v = lower(value);
      if (v == "regular") {
        cfg.topology = PdnTopology::Regular3d;
      } else if (v == "stacked" || v == "voltage-stacked") {
        cfg.topology = PdnTopology::VoltageStacked;
      } else {
        VS_FAIL("unknown topology '" + value + "' (regular|stacked)");
      }
    } else if (key == "layers") {
      cfg.layer_count = static_cast<std::size_t>(to_number(key, value));
    } else if (key == "vdd") {
      cfg.vdd = to_number(key, value);
    } else if (key == "tsv") {
      cfg.tsv = tsv_by_name(value);
    } else if (key == "power_c4_fraction") {
      cfg.power_c4_fraction = to_number(key, value);
    } else if (key == "vdd_pads_per_core") {
      cfg.vdd_pads_per_core = static_cast<std::size_t>(to_number(key, value));
    } else if (key == "converters_per_core") {
      cfg.converters_per_core =
          static_cast<std::size_t>(to_number(key, value));
    } else if (key == "converter_reference") {
      const std::string v = lower(value);
      if (v == "ideal") {
        cfg.converter_reference = ConverterReference::IdealRails;
      } else if (v == "adjacent") {
        cfg.converter_reference = ConverterReference::AdjacentRails;
      } else {
        VS_FAIL("unknown converter_reference '" + value +
                "' (ideal|adjacent)");
      }
    } else if (key == "control") {
      const std::string v = lower(value);
      if (v == "open") {
        cfg.converter.control = sc::ControlPolicy::OpenLoop;
      } else if (v == "closed") {
        cfg.converter.control = sc::ControlPolicy::ClosedLoop;
      } else {
        VS_FAIL("unknown control '" + value + "' (open|closed)");
      }
    } else if (key == "grid") {
      const auto n = static_cast<std::size_t>(to_number(key, value));
      cfg.grid_nx = cfg.grid_ny = n;
    } else {
      VS_FAIL("unknown config key '" + key + "' at line " +
              std::to_string(line_no));
    }
  }
  cfg.validate();
  return cfg;
}

std::string write_stackup_config(const StackupConfig& config) {
  std::ostringstream oss;
  oss << "topology = "
      << (config.is_voltage_stacked() ? "stacked" : "regular") << "\n";
  oss << "layers = " << config.layer_count << "\n";
  oss << "vdd = " << config.vdd << "\n";
  const std::string tsv = config.tsv.name == "Dense TSV"    ? "dense"
                          : config.tsv.name == "Sparse TSV" ? "sparse"
                                                            : "few";
  oss << "tsv = " << tsv << "\n";
  oss << "power_c4_fraction = " << config.power_c4_fraction << "\n";
  oss << "vdd_pads_per_core = " << config.vdd_pads_per_core << "\n";
  oss << "converters_per_core = " << config.converters_per_core << "\n";
  oss << "converter_reference = "
      << (config.converter_reference == ConverterReference::IdealRails
              ? "ideal"
              : "adjacent")
      << "\n";
  oss << "control = "
      << (config.converter.control == sc::ControlPolicy::OpenLoop ? "open"
                                                                  : "closed")
      << "\n";
  oss << "grid = " << config.grid_nx << "\n";
  return oss.str();
}

}  // namespace vstack::pdn
