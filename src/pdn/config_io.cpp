#include "pdn/config_io.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.h"

namespace vstack::pdn {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Carries the location through the key handlers so every rejection reads
/// "stackup config line N: ..." with the offending key and value.
struct LineContext {
  std::size_t line_no = 0;

  [[noreturn]] void fail(const std::string& message) const {
    VS_FAIL("stackup config line " + std::to_string(line_no) + ": " +
            message);
  }

  double number(const std::string& key, const std::string& value) const {
    double v = 0.0;
    try {
      std::size_t used = 0;
      v = std::stod(value, &used);
      if (used != value.size()) throw Error("trailing characters");
    } catch (const std::exception&) {
      fail("key '" + key + "' expects a number, got '" + value + "'");
    }
    if (!std::isfinite(v)) {
      fail("key '" + key + "' must be finite, got '" + value + "'");
    }
    return v;
  }

  /// Non-negative whole number (layer counts, pad counts, grid sizes):
  /// rejects fractions and negatives instead of silently truncating.
  std::size_t integer(const std::string& key, const std::string& value,
                      std::size_t min, std::size_t max) const {
    const double v = number(key, value);
    if (v < 0.0 || v != std::floor(v)) {
      fail("key '" + key + "' expects a non-negative integer, got '" +
           value + "'");
    }
    const auto n = static_cast<std::size_t>(v);
    if (n < min || n > max) {
      fail("key '" + key + "' must lie in [" + std::to_string(min) + ", " +
           std::to_string(max) + "], got '" + value + "'");
    }
    return n;
  }

  TsvConfig tsv_by_name(const std::string& name) const {
    const std::string n = lower(name);
    if (n == "dense") return TsvConfig::dense();
    if (n == "sparse") return TsvConfig::sparse();
    if (n == "few") return TsvConfig::few();
    fail("unknown tsv config '" + name + "' (dense|sparse|few)");
  }
};

}  // namespace

StackupConfig parse_stackup_config(const std::string& text,
                                   const StackupConfig& base) {
  StackupConfig cfg = base;
  std::istringstream stream(text);
  std::string raw;
  LineContext ctx;
  std::set<std::string> seen_keys;
  while (std::getline(stream, raw)) {
    ++ctx.line_no;
    std::string line = raw;
    const auto comment = line.find_first_of("#;");
    if (comment != std::string::npos) line.erase(comment);
    line = trim(line);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      ctx.fail("'" + line + "' is not 'key = value'");
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) ctx.fail("missing key before '='");
    if (value.empty()) ctx.fail("key '" + key + "' has no value");
    if (!seen_keys.insert(key).second) {
      ctx.fail("duplicate key '" + key +
               "' (each key may be set at most once)");
    }

    if (key == "topology") {
      const std::string v = lower(value);
      if (v == "regular") {
        cfg.topology = PdnTopology::Regular3d;
      } else if (v == "stacked" || v == "voltage-stacked") {
        cfg.topology = PdnTopology::VoltageStacked;
      } else {
        ctx.fail("unknown topology '" + value + "' (regular|stacked)");
      }
    } else if (key == "layers") {
      cfg.layer_count = ctx.integer(key, value, 1, 1024);
    } else if (key == "vdd") {
      cfg.vdd = ctx.number(key, value);
      if (cfg.vdd <= 0.0 || cfg.vdd > 100.0) {
        ctx.fail("vdd must lie in (0, 100] volts, got '" + value + "'");
      }
    } else if (key == "tsv") {
      cfg.tsv = ctx.tsv_by_name(value);
    } else if (key == "power_c4_fraction") {
      cfg.power_c4_fraction = ctx.number(key, value);
      if (cfg.power_c4_fraction <= 0.0 || cfg.power_c4_fraction > 1.0) {
        ctx.fail("power_c4_fraction is the fraction of C4 bumps carrying "
                 "power and must lie in (0, 1], got '" + value + "'");
      }
    } else if (key == "vdd_pads_per_core") {
      cfg.vdd_pads_per_core = ctx.integer(key, value, 1, 1'000'000);
    } else if (key == "converters_per_core") {
      cfg.converters_per_core = ctx.integer(key, value, 0, 1'000'000);
    } else if (key == "converter_reference") {
      const std::string v = lower(value);
      if (v == "ideal") {
        cfg.converter_reference = ConverterReference::IdealRails;
      } else if (v == "adjacent") {
        cfg.converter_reference = ConverterReference::AdjacentRails;
      } else {
        ctx.fail("unknown converter_reference '" + value +
                 "' (ideal|adjacent)");
      }
    } else if (key == "control") {
      const std::string v = lower(value);
      if (v == "open") {
        cfg.converter.control = sc::ControlPolicy::OpenLoop;
      } else if (v == "closed") {
        cfg.converter.control = sc::ControlPolicy::ClosedLoop;
      } else {
        ctx.fail("unknown control '" + value + "' (open|closed)");
      }
    } else if (key == "grid") {
      // An NxN per-layer grid: bound N so a typo ("grid = 1e6") fails here
      // instead of exhausting memory building the network.
      const auto n = ctx.integer(key, value, 2, 1024);
      cfg.grid_nx = cfg.grid_ny = n;
    } else {
      ctx.fail("unknown config key '" + key + "'");
    }
  }
  cfg.validate();
  return cfg;
}

std::string write_stackup_config(const StackupConfig& config) {
  std::ostringstream oss;
  oss << "topology = "
      << (config.is_voltage_stacked() ? "stacked" : "regular") << "\n";
  oss << "layers = " << config.layer_count << "\n";
  oss << "vdd = " << config.vdd << "\n";
  const std::string tsv = config.tsv.name == "Dense TSV"    ? "dense"
                          : config.tsv.name == "Sparse TSV" ? "sparse"
                                                            : "few";
  oss << "tsv = " << tsv << "\n";
  oss << "power_c4_fraction = " << config.power_c4_fraction << "\n";
  oss << "vdd_pads_per_core = " << config.vdd_pads_per_core << "\n";
  oss << "converters_per_core = " << config.converters_per_core << "\n";
  oss << "converter_reference = "
      << (config.converter_reference == ConverterReference::IdealRails
              ? "ideal"
              : "adjacent")
      << "\n";
  oss << "control = "
      << (config.converter.control == sc::ControlPolicy::OpenLoop ? "open"
                                                                  : "closed")
      << "\n";
  oss << "grid = " << config.grid_nx << "\n";
  return oss.str();
}

}  // namespace vstack::pdn
