// Live fault ride-through: a transient PDN run with mid-run fault events
// and the sc::StackSupervisor in the loop.
//
// The engine integrates the stacked (or regular) PDN exactly like
// pdn::simulate_load_step's adaptive mode -- same companion models, same
// epoch-keyed step solver, same guard/budget discipline -- but adds a
// sensing plane: every supervisor sense_interval the per-layer worst droop
// is sampled from the live solution and fed to the supervisor, whose
// abstract actions are translated into network mutations:
//
//   PhaseRebalance    -> surviving converter phases at the afflicted rails
//                        are strengthened (R_series lowered by up to the
//                        lost-phase ratio, capped by max_rebalance_boost)
//   FrequencyRetarget -> R_series rescaled by the SC compact model's
//                        r_series ratio at the boosted switching frequency
//                        (SSL shrinks, FSL does not); without a compact
//                        model, 1/boost is used as the SSL-dominated limit
//   BypassEngage      -> a bypass linear regulator (add_converter_clone
//                        with bypass_resistance) is switched in at the
//                        faulted converter's site
//   LayerShutdown     -> the layer's load activity is zeroed and the layer
//                        is excluded from further droop sensing
//
// Every mutation bumps the network's topology epoch (invalidating the
// factorization cache) and restarts integration across the discontinuity.
// The run never throws on numerical or fault trouble: the structured
// RideThroughReport carries the detection time, the bounded action trail,
// the worst droop, and a Recovered / Degraded / Lost classification.
#pragma once

#include <string>
#include <vector>

#include "pdn/transient.h"
#include "sc/compact_model.h"
#include "sc/supervisor.h"

namespace vstack::pdn {

enum class RideThroughOutcome {
  Recovered,  // droop back inside the recovery band on every live layer
  Degraded,   // out of the recovery band but inside the trip band
  Lost,       // a layer shut down, droop still tripped, or run truncated
};

const char* to_string(RideThroughOutcome outcome);

struct RideThroughOptions {
  /// Transient engine configuration.  `fault_events` carries the mid-run
  /// faults / load surges; `step_time` and `adaptive` are ignored (the
  /// ride-through engine has no built-in load step and always runs the
  /// adaptive, event-snapping integrator).
  PdnTransientOptions transient;

  /// Detection / escalation policy (sensing window = detection latency +
  /// hysteresis band + watchdog timeout).
  sc::SupervisorConfig supervisor;

  /// Output resistance of the bypass linear regulator switched in by
  /// BypassEngage [Ohm] (sc::LinearRegulatorDesign's default).
  double bypass_resistance = 0.05;

  /// Cap on how much PhaseRebalance may strengthen a surviving phase
  /// (R_series never drops below its design value / this factor).
  double max_rebalance_boost = 4.0;

  /// Closed-loop compact model used to translate FrequencyRetarget into an
  /// R_series ratio; null falls back to the SSL-dominated 1/boost scaling.
  const sc::ScCompactModel* compact_model = nullptr;

  void validate() const;
};

/// Structured outcome of a ride-through run -- returned, never thrown.
struct RideThroughReport {
  /// Engine-level outcome (step statistics, recovery events, truncation).
  sim::TransientReport transient;

  RideThroughOutcome outcome = RideThroughOutcome::Recovered;
  double detected_at = -1.0;   // [s]; negative = supervisor never tripped
  double recovered_at = -1.0;  // [s]; negative = never re-entered the band
  double worst_droop = 0.0;    // worst sensed droop fraction (live layers)
  double final_droop = 0.0;    // last sensed droop fraction (live layers)

  /// Supervisor action trail, in firing order (bounded by the supervisor's
  /// max_actions).
  std::vector<sc::SupervisorAction> actions;
  /// Layers taken down by LayerShutdown, in shutdown order.
  std::vector<std::size_t> shutdown_layers;

  /// True when the transient engine completed the full horizon (says
  /// nothing about the outcome classification).
  bool ok() const { return transient.ok(); }

  /// One-line digest: outcome, detection time, action count, droops.
  std::string summary() const;
};

struct RideThroughResult {
  std::vector<double> time;            // [s] per accepted step
  std::vector<double> worst_noise;     // global max deviation fraction
  std::vector<double> supply_current;  // off-chip current [A]
  RideThroughReport report;
};

/// Run the fault ride-through scenario: steady per-layer `activities`, the
/// fault events from options.transient.fault_events, and the supervisor in
/// the loop.  Throws only on precondition violations; numerical trouble
/// truncates the waveform and is classified in the report.
RideThroughResult simulate_ride_through(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities, const RideThroughOptions& options);

}  // namespace vstack::pdn
