#include "pdn/solver.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "pdn/fault.h"
#include "telemetry/telemetry.h"

namespace vstack::pdn {

namespace {

bool is_fixed(std::size_t node) {
  return node == kFixedSupply || node == kFixedGround;
}

double fixed_potential(std::size_t node, double supply_voltage) {
  return node == kFixedSupply ? supply_voltage : 0.0;
}

/// Weak pin [S] grounding each floating-island node to its nominal rail
/// potential.  Strong enough to keep the matrix comfortably nonsingular;
/// weak enough that any load current strayed onto an island produces a
/// glaring (and flagged) voltage deviation rather than hiding.
constexpr double kIslandPinConductance = 1.0;

}  // namespace

PdnModel::PdnModel(const StackupConfig& config,
                   const floorplan::Floorplan& floorplan)
    : network_(config, floorplan) {}

PdnSolution PdnModel::solve(const std::vector<LoadInjection>& loads,
                            const PdnSolveOptions& options) const {
  VS_SPAN("pdn.dc.solve");
  static const telemetry::Counter t_dc_solves("pdn.dc.solves");
  t_dc_solves.add();
  const auto& cfg = config();
  std::vector<double> r_series(network_.converters().size());
  for (std::size_t c = 0; c < r_series.size(); ++c) {
    r_series[c] = network_.converters()[c].r_series;
  }

  PdnSolution solution = solve_once(loads, r_series, options);

  if (solution.solve_ok && cfg.is_voltage_stacked() &&
      cfg.converter.control == sc::ControlPolicy::ClosedLoop) {
    // Closed-loop converters modulate f_sw (and hence R_SSL) with load:
    // iterate the series resistances to a fixed point.
    const sc::ScCompactModel model(cfg.converter);
    for (std::size_t it = 0; it < options.control_iterations; ++it) {
      for (std::size_t c = 0; c < r_series.size(); ++c) {
        if (!network_.converters()[c].enabled) continue;
        const double f =
            model.switching_frequency(solution.converter_currents[c]);
        r_series[c] = model.r_series(f);
      }
      PdnSolution refined = solve_once(loads, r_series, options);
      if (!refined.solve_ok) break;  // keep the last good fixed-point iterate
      solution = std::move(refined);
    }
  }
  return solution;
}

PdnSolution PdnModel::solve_activities(
    const power::CorePowerModel& model,
    const std::vector<double>& layer_activities,
    const PdnSolveOptions& options) const {
  return solve(network_.build_loads(model, layer_activities), options);
}

PdnSolution PdnModel::solve_once(const std::vector<LoadInjection>& loads,
                                 const std::vector<double>& converter_r_series,
                                 const PdnSolveOptions& options) const {
  const auto& cfg = config();
  const std::size_t n = network_.node_count();
  const double v_supply = cfg.supply_voltage();
  const bool ideal_reference =
      cfg.converter_reference == ConverterReference::IdealRails;
  VS_REQUIRE(converter_r_series.size() == network_.converters().size(),
             "converter resistance vector size mismatch");

  // (Re)assemble when the topology epoch, converter resistances, or the
  // requested preconditioner tier changed.
  if (!cache_ || cache_->epoch != network_.topology_epoch() ||
      cache_->r_series != converter_r_series ||
      cache_->precond_kind != options.preconditioner) {
    la::CooBuilder builder(n);
    la::Vector base_rhs(n, 0.0);

    for (const auto& group : network_.conductors()) {
      if (group.count == 0) continue;  // fully opened by a fault
      const double g =
          static_cast<double>(group.count) / group.unit_resistance;
      const bool a_fixed = is_fixed(group.node_a);
      const bool b_fixed = is_fixed(group.node_b);
      VS_REQUIRE(!(a_fixed && b_fixed), "conductor between two fixed rails");
      if (!a_fixed && !b_fixed) {
        builder.add(group.node_a, group.node_a, g);
        builder.add(group.node_b, group.node_b, g);
        builder.add(group.node_a, group.node_b, -g);
        builder.add(group.node_b, group.node_a, -g);
      } else {
        const std::size_t free_node = a_fixed ? group.node_b : group.node_a;
        const std::size_t fixed_node = a_fixed ? group.node_a : group.node_b;
        builder.add(free_node, free_node, g);
        base_rhs[free_node] += g * fixed_potential(fixed_node, v_supply);
      }
    }

    for (std::size_t c = 0; c < network_.converters().size(); ++c) {
      const auto& conv = network_.converters()[c];
      if (!conv.enabled) continue;  // stuck-off fault
      const double g = 1.0 / converter_r_series[c];
      if (ideal_reference) {
        // Stiff reference: resistor R_SERIES from the output rail to its
        // nominal potential level * vdd.
        builder.add(conv.out, conv.out, g);
        base_rhs[conv.out] += g * static_cast<double>(conv.level) * cfg.vdd;
      } else {
        // Coupled midpoint: (1/R) v v^T with v = (1/2, 1/2, -1) on
        // (top, bottom, out).
        const std::size_t idx[3] = {conv.top, conv.bottom, conv.out};
        const double v[3] = {0.5, 0.5, -1.0};
        for (int i = 0; i < 3; ++i) {
          for (int j = 0; j < 3; ++j) {
            builder.add(idx[i], idx[j], g * v[i] * v[j]);
          }
        }
      }
    }

    auto cache = std::make_unique<CachedSystem>();

    // Ground any subgraph that fault application cut off from every fixed
    // potential: a weak pin to the nominal rail level keeps the matrix
    // nonsingular, and the island map feeds the feasibility diagnostic.
    const IslandReport islands = find_floating_islands(network_);
    cache->node_floating.assign(n, 0);
    cache->island_count = islands.islands.size();
    cache->floating_node_count = islands.floating_node_count();
    for (const auto& island : islands.islands) {
      for (const std::size_t node : island) {
        builder.add(node, node, kIslandPinConductance);
        base_rhs[node] +=
            kIslandPinConductance * network_.nominal_potential(node);
        cache->node_floating[node] = 1;
      }
    }
    if (cache->island_count > 0) {
      VS_LOG_WARN("PDN has " << cache->island_count << " floating island(s) ("
                  << cache->floating_node_count
                  << " nodes); grounding to nominal rails");
    }

    cache->epoch = network_.topology_epoch();
    cache->r_series = converter_r_series;
    cache->precond_kind = options.preconditioner;
    cache->matrix = builder.build();
    cache->base_rhs = std::move(base_rhs);
    // Bind the solver handle once the matrix has reached its final address
    // (inside the heap-allocated CachedSystem); it owns the preconditioner,
    // backend preparation, and Krylov workspace for every solve below.
    la::SolveOptions solver_options;
    solver_options.iterative = options.iterative;
    solver_options.preconditioner = options.preconditioner;
    cache->solver =
        std::make_unique<la::Solver>(cache->matrix, solver_options);
    cache_ = std::move(cache);
    last_solution_.clear();
  }
  // Staleness assertion: a topology mutation that failed to bump the epoch
  // (or a cache bypassing the key) would silently reuse a wrong matrix.
  VS_REQUIRE(cache_->epoch == network_.topology_epoch() &&
                 cache_->matrix.size() == n,
             "stale PDN system cache (topology mutated without epoch bump)");

  la::Vector rhs = cache_->base_rhs;
  PdnSolution sol;
  sol.supply_voltage = v_supply;
  sol.floating_island_count = cache_->island_count;
  sol.floating_node_count = cache_->floating_node_count;
  for (const auto& load : loads) {
    rhs[load.vdd_node] -= load.current;
    rhs[load.gnd_node] += load.current;
    if (cache_->node_floating[load.vdd_node] ||
        cache_->node_floating[load.gnd_node]) {
      sol.floating_load_current += load.current;
    }
  }

  // Fast path: warm-started CG with the cached preconditioner.  On a stall
  // (damaged network), escalate through the solver handle's degradation
  // ladder from a cold start and keep the full attempt trail.
  sol.node_voltages =
      (last_solution_.size() == n) ? last_solution_ : la::Vector(n, 0.0);
  sol.report = cache_->solver->iterate_once(rhs, sol.node_voltages,
                                            options.iterative);
  if (!sol.report.converged) {
    la::SolveAttempt first{"cg+cached-precond", false, sol.report.iterations,
                           sol.report.residual_norm};
    sol.node_voltages.assign(n, 0.0);
    sol.report =
        cache_->solver->solve(rhs, sol.node_voltages, options.iterative);
    sol.report.attempts.insert(sol.report.attempts.begin(), first);
  }
  if (!sol.report.converged) {
    sol.solve_ok = false;
    sol.diagnostic =
        "PDN solve failed: " + (sol.report.diagnostic.empty()
                                    ? std::string("did not converge")
                                    : sol.report.diagnostic);
    last_solution_.clear();
    return sol;  // metrics stay zeroed; node_voltages are finite
  }
  sol.solve_ok = true;
  if (sol.floating_load_current > 0.0) {
    sol.diagnostic = "structurally infeasible: loads inject " +
                     std::to_string(sol.floating_load_current) +
                     " A into floating island(s) with no return path";
  }
  last_solution_ = sol.node_voltages;

  const auto voltage = [&](std::size_t node) {
    return is_fixed(node) ? fixed_potential(node, v_supply)
                          : sol.node_voltages[node];
  };

  // Per-layer droop maps and extrema.
  const std::size_t cells = cfg.grid_nx * cfg.grid_ny;
  sol.layer_droop.resize(cfg.layer_count);
  double worst_droop = -1e300, worst_overshoot = -1e300;
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    auto& map = sol.layer_droop[l];
    map.nx = cfg.grid_nx;
    map.ny = cfg.grid_ny;
    map.values.assign(cells, 0.0);
    for (std::size_t cell = 0; cell < cells; ++cell) {
      const double span = voltage(network_.vdd_node(l, cell)) -
                          voltage(network_.gnd_node(l, cell));
      const double droop = cfg.vdd - span;
      map.values[cell] = droop;
      worst_droop = std::max(worst_droop, droop);
      worst_overshoot = std::max(worst_overshoot, -droop);
    }
  }
  sol.max_ir_drop = std::max(worst_droop, 0.0);
  sol.max_ir_drop_fraction = sol.max_ir_drop / cfg.vdd;
  sol.max_overshoot_fraction = std::max(worst_overshoot, 0.0) / cfg.vdd;

  // VoltSpot's voltage-noise metric: worst deviation of any grid node from
  // its nominal rail potential.  Nominal rails: regular topology has every
  // Vdd net at vdd and every Gnd net at 0; the stack has layer l's Gnd net
  // at l * vdd and its Vdd net at (l+1) * vdd.
  double worst_deviation = 0.0;
  for (std::size_t l = 0; l < cfg.layer_count; ++l) {
    const double nominal_gnd =
        cfg.is_voltage_stacked() ? static_cast<double>(l) * cfg.vdd : 0.0;
    const double nominal_vdd = nominal_gnd + cfg.vdd;
    for (std::size_t cell = 0; cell < cells; ++cell) {
      worst_deviation = std::max(
          worst_deviation,
          std::abs(voltage(network_.vdd_node(l, cell)) - nominal_vdd));
      worst_deviation = std::max(
          worst_deviation,
          std::abs(voltage(network_.gnd_node(l, cell)) - nominal_gnd));
    }
  }
  sol.max_node_deviation_fraction = worst_deviation / cfg.vdd;

  // Per-conductor currents for the EM study.
  const std::size_t grid_cells = cfg.grid_nx * cfg.grid_ny;
  const auto layer_of = [&](std::size_t node) -> unsigned {
    // Grid nodes start at index 2, ordered (layer, net, cell).
    return static_cast<unsigned>((node - 2) / (2 * grid_cells));
  };
  for (const auto& group : network_.conductors()) {
    if (group.count == 0) continue;  // fully opened by a fault
    const double per_unit = std::abs(
        (voltage(group.node_a) - voltage(group.node_b)) /
        group.unit_resistance);
    switch (group.kind) {
      case ConductorKind::C4Vdd:
      case ConductorKind::C4Gnd:
        for (std::size_t k = 0; k < group.count; ++k) {
          sol.c4_pad_currents.push_back(per_unit);
        }
        break;
      case ConductorKind::TsvVdd:
      case ConductorKind::TsvGnd:
      case ConductorKind::RecyclingTsv: {
        // Current crowding within the lumped cell: only ~tsv_crowding_share
        // TSVs effectively share the group's current; the rest are nearly
        // unstressed (they remain in the array as zero-current elements).
        const std::size_t sharing =
            std::min(group.count, cfg.params.tsv_crowding_share);
        const double hot_current =
            per_unit * static_cast<double>(group.count) /
            static_cast<double>(sharing);
        const unsigned interface = layer_of(group.node_a);
        for (std::size_t k = 0; k < group.count; ++k) {
          sol.tsv_currents.push_back(k < sharing ? hot_current : 0.0);
          sol.tsv_interface_of.push_back(interface);
        }
        break;
      }
      case ConductorKind::ThroughVia:
        // One bump plus (layer_count - 1) TSV segments per via, all at the
        // via's current; segment s crosses interface s.
        for (std::size_t k = 0; k < group.count; ++k) {
          sol.c4_pad_currents.push_back(per_unit);
          for (std::size_t s = 0; s < group.em_segments; ++s) {
            sol.tsv_currents.push_back(per_unit);
            sol.tsv_interface_of.push_back(static_cast<unsigned>(s));
          }
        }
        break;
      case ConductorKind::GridStrap:
      case ConductorKind::PackageVdd:
      case ConductorKind::PackageGnd:
      case ConductorKind::Leakage:
        break;  // not part of the pad/TSV EM arrays
    }
    if (group.kind == ConductorKind::PackageVdd) {
      sol.supply_current = per_unit;
    }
  }
  sol.supply_power = sol.supply_current * v_supply;

  // Converter currents: j = (reference - V_out) / R, where the reference is
  // either the nominal rail potential or the solved adjacent-rail midpoint.
  sol.converter_currents.reserve(network_.converters().size());
  for (std::size_t c = 0; c < network_.converters().size(); ++c) {
    const auto& conv = network_.converters()[c];
    if (!conv.enabled) {
      sol.converter_currents.push_back(0.0);  // stuck-off phase
      continue;
    }
    const double reference =
        ideal_reference
            ? static_cast<double>(conv.level) * cfg.vdd
            : 0.5 * (voltage(conv.top) + voltage(conv.bottom));
    const double j = (reference - voltage(conv.out)) / converter_r_series[c];
    sol.converter_currents.push_back(j);
    sol.max_converter_current =
        std::max(sol.max_converter_current, std::abs(j));
  }
  sol.converter_limit_ok = sol.max_converter_current <=
                           cfg.converter.max_load_current + 1e-12;

  for (const auto& load : loads) {
    sol.load_power +=
        load.current * (voltage(load.vdd_node) - voltage(load.gnd_node));
  }
  sol.resistive_efficiency =
      sol.supply_power > 0.0 ? sol.load_power / sol.supply_power : 0.0;
  return sol;
}

}  // namespace vstack::pdn
