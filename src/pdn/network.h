// Structural builder for the 3D PDN resistive network.
//
// Translates a StackupConfig plus a layer floorplan into nodes, lumped
// conductor groups, load injections and converter elements.  Layer 0 is the
// package (C4) side.  In the voltage-stacked topology, "rail r" (r = 0..N)
// denotes the series chain: rail 0 is the board ground (layer 0's Gnd net),
// rail l+1 is layer l's Vdd net (stitched to layer l+1's Gnd net by
// recycling TSVs), rail N is fed by through-vias at N * Vdd.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"
#include "pdn/stackup.h"

namespace vstack::pdn {

enum class ConductorKind {
  GridStrap,     // on-chip metal segment
  PackageVdd,    // lumped package resistance, supply side
  PackageGnd,    // lumped package resistance, ground side
  C4Vdd,         // Vdd bump (regular topology)
  C4Gnd,         // ground bump (both topologies)
  TsvVdd,        // inter-layer Vdd TSV (regular)
  TsvGnd,        // inter-layer ground TSV (regular)
  RecyclingTsv,  // rail-stitching TSV (voltage-stacked)
  ThroughVia,    // pad + through-via chain to the top rail (voltage-stacked)
  Leakage        // injected fault: resistive short from a node to ground
};

/// `count` identical conductors in parallel between two nodes, stamped as a
/// single lumped resistance.  For EM accounting, each physical conductor
/// additionally consists of `em_segments` series segments that all carry the
/// per-conductor current (through-vias cross layer_count-1 interfaces).
struct ConductorGroup {
  ConductorKind kind = ConductorKind::GridStrap;
  std::size_t node_a = 0;
  std::size_t node_b = 0;
  double unit_resistance = 0.0;
  std::size_t count = 1;
  std::size_t em_segments = 1;
};

/// Ideal current-source load drawing `current` from a Vdd node into the
/// layer's ground node (VoltSpot's load model).
struct LoadInjection {
  std::size_t vdd_node = 0;
  std::size_t gnd_node = 0;
  double current = 0.0;
};

/// One push-pull SC converter instance: regulates `out` toward the midpoint
/// of `top` and `bottom` through r_series (stamped as the symmetric PSD
/// block (1/r) * v v^T with v = (1/2, 1/2, -1) on (top, bottom, out)).
struct ConverterInstance {
  std::size_t top = 0;
  std::size_t bottom = 0;
  std::size_t out = 0;
  double r_series = 0.0;
  std::size_t core = 0;
  std::size_t level = 0;  // intermediate rail index (1..N-1)
  bool enabled = true;    // false = stuck-off fault: not stamped, no current
};

/// Fixed-potential sentinels used in ConductorGroup node slots.
inline constexpr std::size_t kFixedSupply = static_cast<std::size_t>(-1);
inline constexpr std::size_t kFixedGround = static_cast<std::size_t>(-2);

class PdnNetwork {
 public:
  PdnNetwork(const StackupConfig& config,
             const floorplan::Floorplan& floorplan);

  const StackupConfig& config() const { return config_; }
  const floorplan::Floorplan& floorplan() const { return floorplan_; }

  std::size_t node_count() const { return node_count_; }
  std::size_t package_vdd_node() const { return 0; }
  std::size_t package_gnd_node() const { return 1; }

  /// Grid node indices; layer in [0, N), cell in [0, nx*ny).
  std::size_t vdd_node(std::size_t layer, std::size_t cell) const;
  std::size_t gnd_node(std::size_t layer, std::size_t cell) const;

  const std::vector<ConductorGroup>& conductors() const { return conductors_; }
  const std::vector<ConverterInstance>& converters() const {
    return converters_;
  }

  /// Monotone counter bumped by every topology mutation below.  Consumers
  /// that cache anything derived from the conductor/converter lists (the
  /// assembled MNA matrix, ILU factors, island maps) must key their cache on
  /// this and rebuild on mismatch.
  std::size_t topology_epoch() const { return topology_epoch_; }

  /// Nominal (unloaded) potential of a node [V].  Accepts grid and package
  /// node indices plus the kFixedSupply/kFixedGround sentinels.  Regular
  /// topology: Vdd nets at vdd, Gnd nets at 0.  Stacked: layer l's Gnd net
  /// at l*vdd, its Vdd net at (l+1)*vdd.
  double nominal_potential(std::size_t node) const;

  // --- Fault-injection mutators (see pdn/fault.h) --------------------------
  // All bump the topology epoch.  Conductor indices refer to conductors();
  // groups reduced to count 0 stay in the list as inert placeholders so
  // indices remain stable across fault application.

  /// Remove `units` parallel conductors from group `index` (the whole group
  /// when units >= count).
  void remove_conductor_units(std::size_t index, std::size_t units);

  /// Multiply group `index`'s per-unit resistance by `factor` (> 0); models
  /// EM-thinned or partially-voided conductors.
  void scale_conductor_resistance(std::size_t index, double factor);

  /// Stuck-off converter phase: converter `index` stops stamping and sources
  /// no current.  Its converter_currents slot reads 0.
  void disable_converter(std::size_t index);

  /// Overwrite converter `index`'s series resistance (supervisor actions:
  /// interleaved-phase rebalancing and switching-frequency retargeting model
  /// a stronger phase as a lower R_series).
  void set_converter_r_series(std::size_t index, double r_series);

  /// Append a new enabled converter at the same terminals/level as converter
  /// `index` with the given series resistance; models a bypass linear
  /// regulator engaged at a (possibly stuck-off) phase's site.  Returns the
  /// new converter's index.
  std::size_t add_converter_clone(std::size_t index, double r_series);

  /// Add a resistive leakage path from `node` to board ground (defect
  /// short); appends a ConductorKind::Leakage group.
  void add_leakage_to_ground(std::size_t node, double resistance);

  /// Build per-cell loads for the given per-layer core activities.
  /// activities[l] applies to every core of layer l.
  std::vector<LoadInjection> build_loads(
      const power::CorePowerModel& model,
      const std::vector<double>& layer_activities) const;

  /// Build loads from explicit per-layer, per-core activity factors
  /// (activities[l][c]); used for workload-schedule studies.
  std::vector<LoadInjection> build_loads_per_core(
      const power::CorePowerModel& model,
      const std::vector<std::vector<double>>& core_activities) const;

  /// Heterogeneous stacks (e.g. memory-on-logic): each layer has its own
  /// power model and floorplan (all floorplans must share the die
  /// footprint).  activities[l] applies to every tile of layer l.
  std::vector<LoadInjection> build_loads_layered(
      const std::vector<const power::CorePowerModel*>& models,
      const std::vector<const floorplan::Floorplan*>& floorplans,
      const std::vector<double>& layer_activities) const;

  /// Deterministically distribute `count` items over `slots` slots; slot j
  /// receives floor((j+1)k/m) - floor(jk/m) items.  Exposed for tests.
  static std::vector<std::size_t> distribute(std::size_t count,
                                             std::size_t slots);

 private:
  void build_grid_straps();
  void build_package();
  void build_regular_topology();
  void build_stacked_topology();
  std::vector<std::size_t> core_cells(std::size_t core) const;

  StackupConfig config_;
  const floorplan::Floorplan& floorplan_;
  std::size_t node_count_ = 0;
  std::size_t topology_epoch_ = 0;
  std::vector<ConductorGroup> conductors_;
  std::vector<ConverterInstance> converters_;
};

}  // namespace vstack::pdn
