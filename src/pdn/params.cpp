#include "pdn/params.h"

#include "common/error.h"

namespace vstack::pdn {

void PdnParameters::validate() const {
  VS_REQUIRE(c4_pitch > 0.0 && c4_resistance > 0.0,
             "C4 parameters must be positive");
  VS_REQUIRE(tsv_min_pitch > 0.0 && tsv_diameter > 0.0 &&
                 tsv_resistance > 0.0 && tsv_koz_side > 0.0,
             "TSV parameters must be positive");
  VS_REQUIRE(tsv_diameter < tsv_koz_side,
             "keep-out zone must enclose the TSV");
  VS_REQUIRE(grid_pitch > 0.0 && grid_width > 0.0 && grid_thickness > 0.0,
             "grid strap parameters must be positive");
  VS_REQUIRE(grid_width < grid_pitch, "strap width must fit within the pitch");
  VS_REQUIRE(package_resistance > 0.0, "package resistance must be positive");
  VS_REQUIRE(copper_resistivity > 0.0, "resistivity must be positive");
}

double PdnParameters::sheet_resistance() const {
  return copper_resistivity * grid_pitch / (grid_width * grid_thickness);
}

double PdnParameters::tsv_koz_area() const {
  return tsv_koz_side * tsv_koz_side;
}

void TsvConfig::validate() const {
  VS_REQUIRE(effective_pitch > 0.0, "effective pitch must be positive");
  VS_REQUIRE(tsvs_per_core >= 2, "need at least one TSV per net per core");
}

double TsvConfig::area_overhead(const PdnParameters& params,
                                double core_area) const {
  VS_REQUIRE(core_area > 0.0, "core area must be positive");
  return static_cast<double>(tsvs_per_core) * params.tsv_koz_area() /
         core_area;
}

TsvConfig TsvConfig::dense() {
  return {"Dense TSV", 20 * units::um, 6650};
}

TsvConfig TsvConfig::sparse() {
  return {"Sparse TSV", 40 * units::um, 1675};
}

TsvConfig TsvConfig::few() {
  return {"Few TSV", 240 * units::um, 110};
}

std::vector<TsvConfig> TsvConfig::paper_configs() {
  return {dense(), sparse(), few()};
}

}  // namespace vstack::pdn
