// Shared internals of the PDN transient engines (pdn/transient.cpp and
// pdn/ride_through.cpp): the timestep-independent split system, the
// epoch-keyed per-(dt, scheme) step solver, and the companion-state
// workspace.
//
// Everything here operates on a PdnNetwork the caller owns (the engines copy
// the model's network so mid-run fault events never mutate caller state).
// After any topology mutation -- an injected fault, a supervisor action --
// the caller invokes TransientWorkspace::rebuild_topology(), which
// reassembles the split system and advances its epoch stamp; StepSolver
// keys its factorization/preconditioner cache on that epoch, so a stale
// factorization of the pre-fault topology can never be reused (see
// docs/fault_model.md section on dynamic faults).
//
// This header is an implementation detail of vstack_pdn; it is not part of
// the public modeling API.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "la/skyline_cholesky.h"
#include "la/solver.h"
#include "pdn/transient.h"

namespace vstack::pdn::detail {

struct Trip {
  std::size_t i = 0;
  std::size_t j = 0;
  double v = 0.0;
};

/// The transient matrix split into timestep-independent parts so adaptive
/// stepping can reassemble it for any (dt, scheme) in O(nnz):
///
///   A(h) = static + cap_coeff * s/h + ind_coeff * h/s,   s = 1 (BE), 2 (trap)
///
/// where cap_coeff holds raw capacitances [F] and ind_coeff raw reciprocal
/// inductances [1/H] with the companion stamp signs baked in.
struct SplitSystem {
  std::size_t n = 0;
  /// Topology epoch of the network this split was assembled from; bumped by
  /// every rebuild so downstream caches can detect staleness.
  std::size_t epoch = 0;
  std::vector<Trip> static_part;
  std::vector<Trip> cap_part;
  std::vector<Trip> ind_part;

  la::CsrMatrix assemble(double h, bool backward_euler) const;
};

/// Per-(dt, scheme, topology epoch) cached factorization / solver handle
/// with a solve that escalates instead of throwing: skyline Cholesky (small
/// systems) -> warm-started CG -> la::Solver's full degradation ladder.
class StepSolver {
 public:
  StepSolver(const SplitSystem& sys, const PdnTransientOptions& options)
      : sys_(sys), options_(options) {}

  /// Solve A(h) x = rhs.  `x` carries the warm start and receives the
  /// solution only on success; returns false (with a diagnostic) when every
  /// rung failed.  Fallback activity is recorded into `report`.
  bool solve(double h, bool backward_euler, const la::Vector& rhs,
             la::Vector& x, double t, sim::TransientReport& report,
             std::string& diagnostic);

 private:
  struct Key {
    std::uint64_t dt_bits = 0;
    bool backward_euler = false;
    std::size_t epoch = 0;
    bool operator<(const Key& o) const {
      if (epoch != o.epoch) return epoch < o.epoch;
      if (dt_bits != o.dt_bits) return dt_bits < o.dt_bits;
      return backward_euler < o.backward_euler;
    }
  };

  struct Cached {
    la::CsrMatrix matrix;
    std::unique_ptr<la::ReorderedCholesky> direct;
    /// Iterative-rung handle bound to `matrix` (owns the preconditioner,
    /// backend preparation, and Krylov workspace).  Built when the direct
    /// factorization is skipped or fails; otherwise created lazily the
    /// first time a direct solve goes non-finite.  Always constructed
    /// AFTER the Cached slot reaches its final address in the cache map --
    /// the handle stores a pointer to `matrix`.
    std::unique_ptr<la::Solver> solver;
  };

  Cached& cached(double h, bool backward_euler, double t,
                 sim::TransientReport& report);

  const SplitSystem& sys_;
  const PdnTransientOptions& options_;
  std::map<Key, Cached> cache_;
  // Last epoch a lookup saw; a change means a topology mutation invalidated
  // every cached factorization (telemetry: pdn.step_solver.cache.*).
  std::size_t last_seen_epoch_ = static_cast<std::size_t>(-1);
};

/// Companion-state workspace shared by the load-step and ride-through
/// engines: owns the split system, the capacitor/inductor states, and the
/// RHS/commit/noise machinery.  The network reference must outlive the
/// workspace; rebuild_topology() must be called after every mutation.
class TransientWorkspace {
 public:
  TransientWorkspace(const PdnNetwork& net,
                     const PdnTransientOptions& options);

  const PdnNetwork& network() const { return net_; }
  const SplitSystem& system() const { return sys_; }
  std::size_t n() const { return sys_.n; }
  std::size_t lvdd_mid() const { return lvdd_mid_; }
  std::size_t lgnd_mid() const { return lgnd_mid_; }
  std::size_t layer_count() const { return layer_count_; }
  std::size_t cells() const { return cells_; }

  /// Reassemble the split system from the network's CURRENT conductor and
  /// converter lists and stamp it with the network's topology epoch.  Cheap
  /// (O(nnz) triplet rebuild); called once at construction and after every
  /// mid-run fault event or supervisor action.
  void rebuild_topology();

  /// Initialize companion states and the unknown vector from the pre-event
  /// DC operating point (inductors are shorts, capacitors hold the local
  /// rail span).
  void init_states(const PdnSolution& dc, la::Vector& x);

  /// Companion right-hand side for one step of size h at scheme `be`.
  void build_rhs(const std::vector<LoadInjection>& loads, double h, bool be,
                 la::Vector& rhs) const;

  /// Advance companion states to the accepted solution `sol`.
  void commit_states(const la::Vector& sol, double h, bool be);

  /// Max node deviation from nominal as a fraction of vdd; when `per_layer`
  /// is non-null it receives each layer's own maximum (size layer_count).
  double worst_noise_of(const la::Vector& sol,
                        std::vector<double>* per_layer = nullptr) const;

  /// Current through the supply-side package inductor [A].
  double supply_inductor_current() const { return lvdd_i_; }

  /// Capacitor voltage states (one per (layer, cell)); read by the adaptive
  /// engines' LTE predictor.
  const std::vector<double>& cap_voltages() const { return cap_v_; }

 private:
  double nominal(std::size_t layer, bool vdd_net) const;

  const PdnNetwork& net_;
  const PdnTransientOptions& options_;
  SplitSystem sys_;
  std::size_t lvdd_mid_ = 0;
  std::size_t lgnd_mid_ = 0;
  std::size_t layer_count_ = 0;
  std::size_t cells_ = 0;
  std::vector<double> layer_cap_;  // per-cell capacitance per layer [F]
  std::vector<double> cap_v_;
  std::vector<double> cap_i_;
  double lvdd_i_ = 0.0;
  double lgnd_i_ = 0.0;
  double lvdd_v_ = 0.0;
  double lgnd_v_ = 0.0;
};

}  // namespace vstack::pdn::detail
