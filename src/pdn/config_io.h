// Plain-text (key = value) serialization of StackupConfig, so experiments
// can be described in version-controlled files and replayed by the CLI.
//
//   # 8-layer voltage stack
//   topology = stacked          ; or "regular"
//   layers = 8
//   vdd = 1.0
//   tsv = few                   ; dense | sparse | few
//   power_c4_fraction = 0.25
//   vdd_pads_per_core = 32
//   converters_per_core = 8
//   converter_reference = ideal ; ideal | adjacent
//   control = open              ; open | closed
//   grid = 32
//
// Unknown keys are errors; omitted keys keep their defaults.
#pragma once

#include <string>

#include "pdn/stackup.h"

namespace vstack::pdn {

/// Parse a configuration from text, starting from `base` defaults.
StackupConfig parse_stackup_config(const std::string& text,
                                   const StackupConfig& base = {});

/// Serialize a configuration to the same format (round-trip capable).
std::string write_stackup_config(const StackupConfig& config);

}  // namespace vstack::pdn
