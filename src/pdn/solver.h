// IR-drop solver for the 3D PDN and the paper's per-conductor current
// reports.
//
// The MNA system is assembled without branch unknowns: loads are current
// injections, the package supply is folded into the right-hand side, and
// each push-pull converter stamps the symmetric PSD block (1/R) v v^T with
// v = (1/2, 1/2, -1) on (top, bottom, out) -- algebraically identical to a
// resistor R between the output and the virtual midpoint (V_top+V_bottom)/2.
// The full system therefore stays SPD for both topologies and is solved
// with ILU(0)-preconditioned CG.  Fault-damaged networks (pdn/fault.h) may
// break that structure; when the cached-CG fast path stalls, the solve
// escalates through the la::Solver degradation ladder and reports the attempt
// trail instead of throwing (see docs/fault_model.md).
#pragma once

#include "floorplan/power_map.h"
#include "la/solver.h"
#include "pdn/network.h"

namespace vstack::pdn {

struct PdnSolution {
  /// Solved potentials for every unknown node.
  la::Vector node_voltages;
  double supply_voltage = 0.0;

  /// Per-layer droop maps: nominal per-layer Vdd minus the local supply
  /// span (positive = droop) [V].
  std::vector<floorplan::GridMap> layer_droop;
  double max_ir_drop = 0.0;            // [V], worst droop across all layers
  double max_ir_drop_fraction = 0.0;   // / vdd
  double max_overshoot_fraction = 0.0; // worst span ABOVE nominal / vdd

  /// Maximum deviation of ANY grid node from its nominal rail potential,
  /// as a fraction of vdd.  This is VoltSpot's voltage-noise metric and the
  /// quantity the paper's Fig. 6 reports as "maximum on-chip IR drop".
  double max_node_deviation_fraction = 0.0;

  /// Per-physical-conductor current magnitudes for the EM study.
  std::vector<double> c4_pad_currents;   // every power bump (incl. via pads)
  std::vector<double> tsv_currents;      // every TSV / via segment

  /// Layer interface (lower layer index) of each tsv_currents entry;
  /// enables thermal-EM coupling (per-conductor temperatures).
  std::vector<unsigned> tsv_interface_of;

  /// Signed converter output currents (positive = sourcing into the rail).
  std::vector<double> converter_currents;
  double max_converter_current = 0.0;
  bool converter_limit_ok = true;

  double supply_current = 0.0;  // drawn from the off-chip source [A]
  double supply_power = 0.0;    // supply_voltage * supply_current [W]
  double load_power = 0.0;      // actually delivered to the loads [W]

  /// Resistive-path efficiency (grid + converter conduction only; switching
  /// parasitics are accounted by sc::evaluate_ladder_power / core layer).
  double resistive_efficiency = 0.0;

  la::SolveReport report;

  /// True when the solve converged and the metrics above are valid.  A
  /// failed solve does NOT throw (fault-damaged networks are expected to be
  /// hard); it returns solve_ok == false with zeroed metrics and a
  /// diagnostic, and `report.attempts` shows the escalation trail.
  bool solve_ok = false;
  std::string diagnostic;  // nonempty on failure or structural infeasibility

  /// Floating-subgraph accounting: islands cut off from every fixed
  /// potential by fault application are grounded with a weak pin to their
  /// nominal rail level so the matrix stays nonsingular.  Load current
  /// injected into such an island has no physical return path, so any
  /// nonzero floating_load_current marks the case structurally infeasible.
  std::size_t floating_island_count = 0;
  std::size_t floating_node_count = 0;
  double floating_load_current = 0.0;  // [A]
};

struct PdnSolveOptions {
  la::IterativeOptions iterative{.max_iterations = 20000,
                                 .relative_tolerance = 1e-9};
  /// Fixed-point refinements of the per-converter series resistance for
  /// closed-loop converter control (ignored for open loop).
  std::size_t control_iterations = 3;
  /// Preconditioner tier for the cached system.  Auto keeps the historic
  /// ILU(0); Ic0 opts the SPD PDN matrices into incomplete Cholesky (half
  /// the factor memory/solve work, falls back to ILU(0) on breakdown).
  la::PrecondKind preconditioner = la::PrecondKind::Auto;
};

class PdnModel {
 public:
  PdnModel(const StackupConfig& config,
           const floorplan::Floorplan& floorplan);

  const PdnNetwork& network() const { return network_; }
  const StackupConfig& config() const { return network_.config(); }

  /// Mutable access for fault injection (pdn/fault.h).  Mutations bump the
  /// network's topology epoch; the cached system is keyed on it and
  /// reassembles automatically on the next solve.
  PdnNetwork& network_mutable() { return network_; }

  /// Solve for explicit load injections.
  ///
  /// The assembled matrix and its ILU(0) factorization depend only on the
  /// topology and the converter resistances, so they are cached across
  /// calls and the previous solution warm-starts the next CG run -- Monte
  /// Carlo noise sampling re-solves the same system with new right-hand
  /// sides two orders of magnitude faster than a cold solve.
  /// (Consequently a PdnModel is not safe for concurrent use.)
  PdnSolution solve(const std::vector<LoadInjection>& loads,
                    const PdnSolveOptions& options = {}) const;

  /// Convenience: build loads from per-layer activities and solve.
  PdnSolution solve_activities(const power::CorePowerModel& model,
                               const std::vector<double>& layer_activities,
                               const PdnSolveOptions& options = {}) const;

 private:
  PdnSolution solve_once(const std::vector<LoadInjection>& loads,
                         const std::vector<double>& converter_r_series,
                         const PdnSolveOptions& options) const;

  PdnNetwork network_;

  /// Cached system keyed by (topology epoch, converter resistance vector).
  /// Any network mutation bumps the epoch, so a fault application can never
  /// reuse a stale matrix.
  struct CachedSystem {
    std::size_t epoch = 0;
    std::vector<double> r_series;
    la::PrecondKind precond_kind = la::PrecondKind::Auto;
    la::CsrMatrix matrix;
    la::Vector base_rhs;  // fixed-rail + ideal-reference injections
    /// Bound to `matrix` (stable: this struct lives behind a unique_ptr
    /// and the solver is created after the matrix reaches its final
    /// address).  Owns the preconditioner, the backend-prepared matrix
    /// form, and the reusable Krylov workspace.
    std::unique_ptr<la::Solver> solver;
    /// Floating-island map from fault application (islands are grounded
    /// with weak pins during assembly).
    std::vector<char> node_floating;
    std::size_t island_count = 0;
    std::size_t floating_node_count = 0;
  };
  mutable std::unique_ptr<CachedSystem> cache_;
  mutable la::Vector last_solution_;
};

}  // namespace vstack::pdn
