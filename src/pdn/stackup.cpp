#include "pdn/stackup.h"

#include "common/error.h"

namespace vstack::pdn {

void StackupConfig::validate() const {
  VS_REQUIRE(layer_count >= 1, "need at least one layer");
  VS_REQUIRE(vdd > 0.0, "vdd must be positive");
  params.validate();
  tsv.validate();
  VS_REQUIRE(power_c4_fraction > 0.0 && power_c4_fraction <= 1.0,
             "power C4 fraction must be in (0, 1]");
  VS_REQUIRE(grid_nx >= 4 && grid_ny >= 4, "grid must be at least 4x4");
  if (is_voltage_stacked()) {
    VS_REQUIRE(layer_count >= 2, "voltage stacking needs at least two layers");
    VS_REQUIRE(vdd_pads_per_core >= 1, "need at least one Vdd pad per core");
    VS_REQUIRE(converters_per_core >= 1,
               "voltage stacking requires explicit regulators");
    converter.validate();
  }
}

double StackupConfig::supply_voltage() const {
  return is_voltage_stacked() ? static_cast<double>(layer_count) * vdd : vdd;
}

}  // namespace vstack::pdn
