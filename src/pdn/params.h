// PDN modeling parameters (the paper's Table 1) and TSV allocation
// topologies (Table 2).
#pragma once

#include <string>
#include <vector>

#include "common/units.h"

namespace vstack::pdn {

/// Table 1: major PDN modeling parameters.  SI units throughout.
struct PdnParameters {
  double c4_pitch = 200 * units::um;
  double c4_resistance = 10 * units::mOhm;
  double tsv_min_pitch = 10 * units::um;
  double tsv_diameter = 5 * units::um;
  double tsv_resistance = 44.539 * units::mOhm;
  double tsv_koz_side = 9.88 * units::um;
  double grid_pitch = 810 * units::um;      // per-net strap pitch
  double grid_width = 400 * units::um;      // strap width
  double grid_thickness = 0.72 * units::um; // strap thickness

  /// Lumped package resistance per supply net (beyond Table 1; VoltSpot's
  /// package model reduced to its resistive part).
  double package_resistance = 0.05 * units::mOhm;

  /// EM current-crowding limit: at a localized current entry point, only
  /// about (2*lambda+1)^2 TSVs effectively share the current, where
  /// lambda = sqrt(R_tsv / R_sheet) ~ 0.85 is the current spreading length
  /// in TSV pitches -- independent of TSV density.  This is why allocating
  /// more TSVs "only marginally increases MTTF" (paper Sec. 5.1): the
  /// hottest TSVs' current barely drops.  Within each lumped grid cell, at
  /// most this many TSVs share the cell's vertical current for EM purposes.
  std::size_t tsv_crowding_share = 9;

  double copper_resistivity = 2.2e-8;  // [Ohm m] at operating temperature

  void validate() const;

  /// Effective sheet resistance of one net's strap array in one routing
  /// direction [Ohm/square]: rho * pitch / (width * thickness).
  double sheet_resistance() const;

  /// Keep-out-zone area of a single TSV [m^2].
  double tsv_koz_area() const;
};

/// Table 2: a TSV allocation topology.
struct TsvConfig {
  std::string name;
  double effective_pitch = 0.0;   // [m] as quoted by the paper
  std::size_t tsvs_per_core = 0;  // total per core per layer interface
                                  // (split evenly between Vdd and Gnd)

  /// Fraction of a core's area consumed by keep-out zones.
  double area_overhead(const PdnParameters& params, double core_area) const;

  std::size_t vdd_tsvs_per_core() const { return tsvs_per_core / 2; }

  void validate() const;

  /// The paper's three design points.
  static TsvConfig dense();   // conservative: 20 um pitch, 6650 TSVs/core
  static TsvConfig sparse();  // average:      40 um pitch, 1675 TSVs/core
  static TsvConfig few();     // aggressive:  240 um pitch,  110 TSVs/core
  static std::vector<TsvConfig> paper_configs();
};

}  // namespace vstack::pdn
