// Decap budget allocation across the stack's layers.
//
// On-chip decoupling capacitance is a silicon budget like pads and TSVs.
// Given a fixed total (expressed as an average density), this optimizer
// redistributes it across layers to minimize the peak transient excursion
// of a load step -- coordinate descent on the per-layer shares, evaluated
// with the RLC transient engine.
#pragma once

#include "pdn/transient.h"

namespace vstack::pdn {

struct DecapAllocation {
  /// Per-layer decap density [F/m^2]; averages to the configured budget.
  std::vector<double> layer_density;
  double peak_noise = 0.0;     // of the optimized allocation
  double uniform_noise = 0.0;  // of the uniform baseline
};

struct DecapOptimizerOptions {
  PdnTransientOptions transient;
  std::size_t rounds = 2;       // coordinate-descent sweeps over the layers
  double shift_fraction = 0.5;  // how much of a layer's share a move shifts
};

/// Optimize the per-layer split of the transient option's decap budget for
/// the given load step.  The total capacitance is conserved.
DecapAllocation optimize_layer_decap(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const DecapOptimizerOptions& options = {});

/// Transient peak for an explicit per-layer decap profile (used by the
/// optimizer and exposed for studies).
double peak_noise_for_allocation(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const std::vector<double>& layer_density,
    const PdnTransientOptions& options);

}  // namespace vstack::pdn
