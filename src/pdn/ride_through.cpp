#include "pdn/ride_through.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "common/error.h"
#include "pdn/transient_core.h"
#include "telemetry/telemetry.h"

namespace vstack::pdn {

const char* to_string(RideThroughOutcome outcome) {
  switch (outcome) {
    case RideThroughOutcome::Recovered: return "recovered";
    case RideThroughOutcome::Degraded: return "degraded";
    case RideThroughOutcome::Lost: return "lost";
  }
  return "unknown";
}

void RideThroughOptions::validate() const {
  // step_time / adaptive are ignored by the ride-through engine; validate
  // the rest of the transient options without tripping on them.
  PdnTransientOptions t = transient;
  t.step_time = 0.0;
  t.validate();
  supervisor.validate();
  VS_REQUIRE(bypass_resistance > 0.0, "bypass resistance must be positive");
  VS_REQUIRE(max_rebalance_boost >= 1.0,
             "rebalance boost cap must be at least 1");
  VS_REQUIRE(supervisor.sense_interval < transient.duration,
             "sensing cadence must fit inside the run");
}

std::string RideThroughReport::summary() const {
  std::ostringstream oss;
  oss << to_string(outcome);
  if (detected_at >= 0.0) {
    oss << ": detected at " << detected_at << " s";
  } else {
    oss << ": no trip";
  }
  oss << ", " << actions.size() << " actions"
      << ", worst droop " << worst_droop * 100.0 << "%"
      << ", final " << final_droop * 100.0 << "%";
  if (!shutdown_layers.empty()) {
    oss << ", shutdown layers [";
    for (std::size_t i = 0; i < shutdown_layers.size(); ++i) {
      oss << (i ? " " : "") << shutdown_layers[i];
    }
    oss << "]";
  }
  if (!transient.ok()) oss << " -- " << transient.summary();
  return oss.str();
}

namespace {

/// Converter levels (intermediate rails 1..N-1) adjacent to a layer: the
/// rails bounding it from below and above.
std::vector<std::size_t> adjacent_levels(std::size_t layer,
                                         std::size_t layer_count) {
  std::vector<std::size_t> levels;
  for (const std::size_t level : {layer, layer + 1}) {
    if (level >= 1 && level + 1 <= layer_count) levels.push_back(level);
  }
  return levels;
}

/// Translates abstract supervisor actions into PdnNetwork mutations (and,
/// for LayerShutdown, load changes).  Holds the design-point R_series of
/// every converter so repeated rebalances never compound past the cap.
class ActionTranslator {
 public:
  ActionTranslator(PdnNetwork& net, const RideThroughOptions& options)
      : net_(net), options_(options) {
    base_r_.reserve(net.converters().size());
    for (const auto& conv : net.converters()) {
      base_r_.push_back(conv.r_series);
    }
  }

  /// Apply one action.  Returns true when the network topology (hence the
  /// step matrix) changed; LayerShutdown instead zeroes the layer's
  /// activity and records it in `shutdown_layers`.
  bool apply(const sc::SupervisorAction& action,
             std::vector<double>& live_activities,
             std::vector<std::size_t>& shutdown_layers) {
    switch (action.kind) {
      case sc::SupervisorActionKind::PhaseRebalance:
        return rebalance(action.layer);
      case sc::SupervisorActionKind::FrequencyRetarget:
        return retarget(action.layer, action.factor);
      case sc::SupervisorActionKind::BypassEngage:
        return bypass(action.layer);
      case sc::SupervisorActionKind::LayerShutdown:
        if (std::find(shutdown_layers.begin(), shutdown_layers.end(),
                      action.layer) == shutdown_layers.end()) {
          live_activities[action.layer] = 0.0;
          shutdown_layers.push_back(action.layer);
        }
        return false;
    }
    return false;
  }

 private:
  /// Design-point R_series; bypass clones appended after construction
  /// already regulate at their configured resistance.
  double base_r(std::size_t index) const {
    return index < base_r_.size() ? base_r_[index]
                                  : net_.converters()[index].r_series;
  }

  bool rebalance(std::size_t layer) {
    bool changed = false;
    const std::size_t layer_count = net_.config().layer_count;
    for (const std::size_t level : adjacent_levels(layer, layer_count)) {
      std::size_t total = 0;
      std::size_t enabled = 0;
      for (const auto& conv : net_.converters()) {
        if (conv.level != level) continue;
        ++total;
        if (conv.enabled) ++enabled;
      }
      if (enabled == 0 || enabled == total) continue;  // nothing to shift
      const double boost =
          std::min(static_cast<double>(total) / static_cast<double>(enabled),
                   options_.max_rebalance_boost);
      for (std::size_t i = 0; i < net_.converters().size(); ++i) {
        const auto& conv = net_.converters()[i];
        if (conv.level != level || !conv.enabled) continue;
        const double target = base_r(i) / boost;
        if (target < conv.r_series * (1.0 - 1e-12)) {
          net_.set_converter_r_series(i, target);
          changed = true;
        }
      }
    }
    return changed;
  }

  bool retarget(std::size_t layer, double factor) {
    // R_series ratio at the boosted switching frequency: SSL shrinks with
    // frequency, FSL does not; the compact model captures the crossover.
    double ratio = 1.0 / factor;  // SSL-dominated limit
    if (options_.compact_model != nullptr) {
      const double f0 = options_.compact_model->design()
                            .nominal_switching_frequency;
      ratio = options_.compact_model->r_series(f0 * factor) /
              options_.compact_model->r_series(f0);
    }
    if (ratio >= 1.0) return false;  // FSL-dominated: retarget cannot help
    bool changed = false;
    const std::size_t layer_count = net_.config().layer_count;
    for (const std::size_t level : adjacent_levels(layer, layer_count)) {
      if (std::find(retargeted_levels_.begin(), retargeted_levels_.end(),
                    level) != retargeted_levels_.end()) {
        continue;  // a bank retargets once
      }
      retargeted_levels_.push_back(level);
      for (std::size_t i = 0; i < net_.converters().size(); ++i) {
        const auto& conv = net_.converters()[i];
        if (conv.level != level || !conv.enabled) continue;
        net_.set_converter_r_series(i, conv.r_series * ratio);
        changed = true;
      }
    }
    return changed;
  }

  bool bypass(std::size_t layer) {
    bool changed = false;
    const std::size_t layer_count = net_.config().layer_count;
    for (const std::size_t level : adjacent_levels(layer, layer_count)) {
      if (std::find(bypassed_levels_.begin(), bypassed_levels_.end(),
                    level) != bypassed_levels_.end()) {
        continue;  // one bypass regulator per rail
      }
      // Prefer the faulted (stuck-off) site; else shadow the first phase.
      std::size_t site = static_cast<std::size_t>(-1);
      for (std::size_t i = 0; i < net_.converters().size(); ++i) {
        const auto& conv = net_.converters()[i];
        if (conv.level != level) continue;
        if (!conv.enabled) {
          site = i;
          break;
        }
        if (site == static_cast<std::size_t>(-1)) site = i;
      }
      if (site == static_cast<std::size_t>(-1)) continue;
      bypassed_levels_.push_back(level);
      net_.add_converter_clone(site, options_.bypass_resistance);
      changed = true;
    }
    return changed;
  }

  PdnNetwork& net_;
  const RideThroughOptions& options_;
  std::vector<double> base_r_;
  std::vector<std::size_t> retargeted_levels_;
  std::vector<std::size_t> bypassed_levels_;
};

}  // namespace

RideThroughResult simulate_ride_through(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities,
    const RideThroughOptions& options) {
  VS_SPAN("pdn.ride_through.run");
  static const telemetry::Counter t_runs("pdn.ride_through.runs");
  t_runs.add();
  options.validate();
  const StackupConfig& cfg = model.config();
  VS_REQUIRE(activities.size() == cfg.layer_count,
             "activities must match layer count");
  const PdnTransientOptions& topt = options.transient;

  // Private copy of the network; faults and supervisor actions mutate it.
  PdnNetwork net = model.network();
  detail::TransientWorkspace ws(net, topt);
  detail::StepSolver solver(ws.system(), topt);
  const std::size_t n = ws.n();

  std::vector<double> live_activities = activities;
  std::vector<LoadInjection> live_loads =
      net.build_loads(core_model, live_activities);

  RideThroughResult result;
  RideThroughReport& rep = result.report;

  // Pre-fault DC operating point (the HEALTHY stack).
  const PdnSolution dc = model.solve(live_loads);
  if (!dc.solve_ok) {
    rep.transient.status = sim::TransientStatus::SolverFailure;
    rep.transient.diagnostic =
        "pre-fault DC operating point failed: " + dc.diagnostic;
    rep.outcome = RideThroughOutcome::Lost;
    return result;
  }

  la::Vector x(n, 0.0);
  ws.init_states(dc, x);

  sc::StackSupervisor supervisor(options.supervisor, cfg.layer_count);
  ActionTranslator translator(net, options);

  // Injected fault events, sorted by strike time.
  std::vector<const TimedFaultEvent*> pending;
  pending.reserve(topt.fault_events.size());
  for (const auto& ev : topt.fault_events) {
    if (!ev.activities.empty()) {
      VS_REQUIRE(ev.activities.size() == cfg.layer_count,
                 "fault-event activities must match layer count");
    }
    pending.push_back(&ev);
  }
  std::stable_sort(pending.begin(), pending.end(),
                   [](const TimedFaultEvent* a, const TimedFaultEvent* b) {
                     return a->time < b->time;
                   });

  const double dt_max = std::min(topt.time_step, topt.duration);
  sim::StepController ctl(topt.control, 0.0, topt.duration, dt_max / 8.0,
                          dt_max);
  constexpr int kBeStartupSteps = 2;
  int be_left = kBeStartupSteps;
  const double event_tol = 1e-12 * topt.duration;

  // Timeline: every fault instant plus the supervisor's sensing ticks, all
  // landed on exactly by the step controller.
  sim::EventSchedule schedule(topt.duration);
  for (const auto* ev : pending) schedule.add_time(ev->time);
  schedule.add_periodic(
      sim::PeriodicEvents(options.supervisor.sense_interval, {0.0}));

  std::size_t next_pending = 0;
  double next_sense = options.supervisor.sense_interval;
  std::vector<double> layer_droop(cfg.layer_count, 0.0);
  std::vector<bool> layer_down(cfg.layer_count, false);

  std::vector<double> cap_slope(ws.cap_voltages().size(), 0.0);
  std::vector<double> v_new(cap_slope.size(), 0.0);
  std::vector<double> v_pred(cap_slope.size(), 0.0);
  la::Vector rhs(n, 0.0);
  la::Vector candidate = x;
  std::string diagnostic;

  const auto record_sample = [&](double t, const la::Vector& sol) {
    result.time.push_back(t);
    result.worst_noise.push_back(ws.worst_noise_of(sol));
    result.supply_current.push_back(ws.supply_inductor_current());
  };

  // Integration history is invalid across any discontinuity (fault, load
  // change, supervisor mutation): BE restart at a reduced step.
  const auto restart_integration = [&] {
    be_left = kBeStartupSteps;
    ctl.reset_dt(dt_max / 16.0);
  };

  while (!ctl.done() && !ctl.failed()) {
    const double t = ctl.time();
    bool discontinuity = false;

    // 1. Injected fault events whose instant this boundary landed on.
    while (next_pending < pending.size() &&
           pending[next_pending]->time <= t + event_tol) {
      const TimedFaultEvent& ev = *pending[next_pending++];
      const std::string label = ev.label.empty() ? "fault event" : ev.label;
      if (!ev.activities.empty()) {
        live_activities = ev.activities;
        for (std::size_t l = 0; l < layer_down.size(); ++l) {
          if (layer_down[l]) live_activities[l] = 0.0;
        }
        live_loads = net.build_loads(core_model, live_activities);
        discontinuity = true;
        ctl.report().record_event(t, "load surge '" + label + "' applied");
      }
      if (!ev.faults.empty()) {
        ev.faults.apply_to(net);
        ws.rebuild_topology();
        discontinuity = true;
        ctl.report().record_event(
            t, "fault event '" + label + "' applied (" +
                   std::to_string(ev.faults.size()) +
                   " faults, topology epoch " +
                   std::to_string(net.topology_epoch()) + ")");
      }
    }

    // 2. Sensing plane: the supervisor samples the live solution at every
    // elapsed sense tick; its actions mutate the network / loads.
    while (t >= next_sense - event_tol) {
      ws.worst_noise_of(x, &layer_droop);
      for (std::size_t l = 0; l < layer_down.size(); ++l) {
        if (layer_down[l]) layer_droop[l] = 0.0;  // off rails are not sensed
      }
      const auto fired = supervisor.observe(t, layer_droop);
      for (const auto& action : fired) {
        rep.actions.push_back(action);
        ctl.report().record_event(t, "supervisor: " + action.describe());
        const std::size_t down_before = rep.shutdown_layers.size();
        if (translator.apply(action, live_activities, rep.shutdown_layers)) {
          ws.rebuild_topology();
          discontinuity = true;
        }
        if (rep.shutdown_layers.size() != down_before) {
          layer_down[action.layer] = true;
          live_loads = net.build_loads(core_model, live_activities);
          discontinuity = true;
        }
      }
      next_sense += options.supervisor.sense_interval;
    }
    if (discontinuity) restart_integration();

    // 3. One integration step (same discipline as simulate_load_step's
    // adaptive mode; sense ticks are passive boundaries, no restart).
    const double dt = ctl.begin_step(schedule.next_after(t));
    if (ctl.failed()) break;
    const bool be = be_left > 0;
    ws.build_rhs(live_loads, dt, be, rhs);
    candidate = x;  // warm start; x stays the last accepted solution
    if (!solver.solve(dt, be, rhs, candidate, t, ctl.report(), diagnostic)) {
      ctl.reject_step("linear solve failure");
      continue;
    }
    if (!sim::finite_and_bounded(candidate, topt.control.overflow_limit)) {
      ctl.reject_step("NaN/overflow guard");
      continue;
    }
    const auto& cap_v = ws.cap_voltages();
    for (std::size_t l = 0; l < ws.layer_count(); ++l) {
      for (std::size_t cell = 0; cell < ws.cells(); ++cell) {
        const std::size_t k = l * ws.cells() + cell;
        v_new[k] = candidate[net.vdd_node(l, cell)] -
                   candidate[net.gnd_node(l, cell)];
      }
    }
    double err = 0.0;
    if (!be) {
      for (std::size_t k = 0; k < cap_v.size(); ++k) {
        v_pred[k] = cap_v[k] + cap_slope[k] * dt;
      }
      err = sim::error_norm(v_new, v_pred, topt.control.rel_tol,
                            topt.control.abs_tol);
    }
    if (!ctl.finish_step(err, be ? 1 : 2)) continue;

    for (std::size_t k = 0; k < cap_v.size(); ++k) {
      cap_slope[k] = (v_new[k] - cap_v[k]) / dt;
    }
    ws.commit_states(candidate, dt, be);
    x = candidate;
    record_sample(ctl.time(), x);
    if (be_left > 0) --be_left;
  }
  ctl.finalize();
  rep.transient = ctl.report();

  // Final droop over the rails still alive.
  ws.worst_noise_of(x, &layer_droop);
  double final_droop = 0.0;
  for (std::size_t l = 0; l < layer_droop.size(); ++l) {
    if (!layer_down[l]) final_droop = std::max(final_droop, layer_droop[l]);
  }
  rep.final_droop = final_droop;
  rep.worst_droop = supervisor.worst_droop();
  rep.detected_at = supervisor.detected_at();
  rep.recovered_at = supervisor.recovered_at();

  if (!rep.transient.ok()) {
    rep.outcome = RideThroughOutcome::Lost;
  } else if (!rep.shutdown_layers.empty()) {
    rep.outcome = RideThroughOutcome::Lost;
  } else if (final_droop <= options.supervisor.recovery_fraction) {
    rep.outcome = RideThroughOutcome::Recovered;
  } else if (final_droop < options.supervisor.trip_fraction) {
    rep.outcome = RideThroughOutcome::Degraded;
  } else {
    rep.outcome = RideThroughOutcome::Lost;
  }
  return result;
}

}  // namespace vstack::pdn
