#include "pdn/network.h"

#include <cmath>

#include "common/error.h"
#include "floorplan/power_map.h"

namespace vstack::pdn {

PdnNetwork::PdnNetwork(const StackupConfig& config,
                       const floorplan::Floorplan& floorplan)
    : config_(config), floorplan_(floorplan) {
  config_.validate();
  VS_REQUIRE(floorplan_.core_count() >= 1, "floorplan has no cores");
  node_count_ =
      2 + 2 * config_.layer_count * config_.grid_nx * config_.grid_ny;

  build_grid_straps();
  build_package();
  if (config_.is_voltage_stacked()) {
    build_stacked_topology();
  } else {
    build_regular_topology();
  }
}

std::size_t PdnNetwork::vdd_node(std::size_t layer, std::size_t cell) const {
  VS_REQUIRE(layer < config_.layer_count, "layer out of range");
  VS_REQUIRE(cell < config_.grid_nx * config_.grid_ny, "cell out of range");
  return 2 + (layer * 2 + 0) * config_.grid_nx * config_.grid_ny + cell;
}

std::size_t PdnNetwork::gnd_node(std::size_t layer, std::size_t cell) const {
  VS_REQUIRE(layer < config_.layer_count, "layer out of range");
  VS_REQUIRE(cell < config_.grid_nx * config_.grid_ny, "cell out of range");
  return 2 + (layer * 2 + 1) * config_.grid_nx * config_.grid_ny + cell;
}

double PdnNetwork::nominal_potential(std::size_t node) const {
  if (node == kFixedSupply) return config_.supply_voltage();
  if (node == kFixedGround) return 0.0;
  VS_REQUIRE(node < node_count_, "node out of range");
  if (node == package_vdd_node()) return config_.supply_voltage();
  if (node == package_gnd_node()) return 0.0;
  const std::size_t cells = config_.grid_nx * config_.grid_ny;
  const std::size_t rel = node - 2;
  const std::size_t layer = rel / (2 * cells);
  const bool is_vdd = (rel / cells) % 2 == 0;
  if (!config_.is_voltage_stacked()) return is_vdd ? config_.vdd : 0.0;
  const double rail_base = static_cast<double>(layer) * config_.vdd;
  return is_vdd ? rail_base + config_.vdd : rail_base;
}

void PdnNetwork::remove_conductor_units(std::size_t index, std::size_t units) {
  VS_REQUIRE(index < conductors_.size(), "conductor index out of range");
  auto& group = conductors_[index];
  group.count -= std::min(units, group.count);
  ++topology_epoch_;
}

void PdnNetwork::scale_conductor_resistance(std::size_t index, double factor) {
  VS_REQUIRE(index < conductors_.size(), "conductor index out of range");
  VS_REQUIRE(factor > 0.0, "resistance factor must be positive");
  conductors_[index].unit_resistance *= factor;
  ++topology_epoch_;
}

void PdnNetwork::disable_converter(std::size_t index) {
  VS_REQUIRE(index < converters_.size(), "converter index out of range");
  converters_[index].enabled = false;
  ++topology_epoch_;
}

void PdnNetwork::set_converter_r_series(std::size_t index, double r_series) {
  VS_REQUIRE(index < converters_.size(), "converter index out of range");
  VS_REQUIRE(r_series > 0.0, "converter r_series must be positive");
  converters_[index].r_series = r_series;
  ++topology_epoch_;
}

std::size_t PdnNetwork::add_converter_clone(std::size_t index,
                                            double r_series) {
  VS_REQUIRE(index < converters_.size(), "converter index out of range");
  VS_REQUIRE(r_series > 0.0, "converter r_series must be positive");
  ConverterInstance clone = converters_[index];
  clone.r_series = r_series;
  clone.enabled = true;
  converters_.push_back(clone);
  ++topology_epoch_;
  return converters_.size() - 1;
}

void PdnNetwork::add_leakage_to_ground(std::size_t node, double resistance) {
  VS_REQUIRE(node < node_count_, "leakage node out of range");
  VS_REQUIRE(resistance > 0.0, "leakage resistance must be positive");
  conductors_.push_back(
      {ConductorKind::Leakage, node, kFixedGround, resistance, 1, 1});
  ++topology_epoch_;
}

std::vector<std::size_t> PdnNetwork::distribute(std::size_t count,
                                                std::size_t slots) {
  VS_REQUIRE(slots > 0, "cannot distribute over zero slots");
  std::vector<std::size_t> out(slots);
  for (std::size_t j = 0; j < slots; ++j) {
    out[j] = (j + 1) * count / slots - j * count / slots;
  }
  return out;
}

void PdnNetwork::build_grid_straps() {
  const std::size_t nx = config_.grid_nx, ny = config_.grid_ny;
  const double sheet = config_.params.sheet_resistance();
  const double dx = floorplan_.width / static_cast<double>(nx);
  const double dy = floorplan_.height / static_cast<double>(ny);
  const double r_horizontal = sheet * dx / dy;
  const double r_vertical = sheet * dy / dx;

  for (std::size_t l = 0; l < config_.layer_count; ++l) {
    for (int net = 0; net < 2; ++net) {
      const auto node = [&](std::size_t ix, std::size_t iy) {
        const std::size_t cell = iy * nx + ix;
        return net == 0 ? vdd_node(l, cell) : gnd_node(l, cell);
      };
      for (std::size_t iy = 0; iy < ny; ++iy) {
        for (std::size_t ix = 0; ix < nx; ++ix) {
          if (ix + 1 < nx) {
            conductors_.push_back({ConductorKind::GridStrap, node(ix, iy),
                                   node(ix + 1, iy), r_horizontal, 1, 1});
          }
          if (iy + 1 < ny) {
            conductors_.push_back({ConductorKind::GridStrap, node(ix, iy),
                                   node(ix, iy + 1), r_vertical, 1, 1});
          }
        }
      }
    }
  }
}

void PdnNetwork::build_package() {
  conductors_.push_back({ConductorKind::PackageVdd, kFixedSupply,
                         package_vdd_node(), config_.params.package_resistance,
                         1, 1});
  conductors_.push_back({ConductorKind::PackageGnd, package_gnd_node(),
                         kFixedGround, config_.params.package_resistance, 1,
                         1});
}

namespace {

/// C4 pad site description: position plus owning grid cell.
struct PadSite {
  std::size_t cell = 0;
  std::size_t core = 0;
};

std::vector<PadSite> enumerate_pad_sites(const StackupConfig& config,
                                         const floorplan::Floorplan& fp) {
  const double pitch = config.params.c4_pitch;
  const auto count_x = static_cast<std::size_t>(fp.width / pitch);
  const auto count_y = static_cast<std::size_t>(fp.height / pitch);
  VS_REQUIRE(count_x >= 1 && count_y >= 1,
             "die too small for a single C4 pad");
  const double off_x = 0.5 * (fp.width - static_cast<double>(count_x - 1) * pitch);
  const double off_y = 0.5 * (fp.height - static_cast<double>(count_y - 1) * pitch);

  const double tile_w = fp.width / static_cast<double>(fp.cores_x);
  const double tile_h = fp.height / static_cast<double>(fp.cores_y);

  std::vector<PadSite> sites;
  sites.reserve(count_x * count_y);
  for (std::size_t iy = 0; iy < count_y; ++iy) {
    for (std::size_t ix = 0; ix < count_x; ++ix) {
      const double x = off_x + static_cast<double>(ix) * pitch;
      const double y = off_y + static_cast<double>(iy) * pitch;
      PadSite s;
      s.cell = floorplan::cell_of(fp, config.grid_nx, config.grid_ny, x, y);
      const auto cx = std::min(static_cast<std::size_t>(x / tile_w),
                               fp.cores_x - 1);
      const auto cy = std::min(static_cast<std::size_t>(y / tile_h),
                               fp.cores_y - 1);
      s.core = cy * fp.cores_x + cx;
      sites.push_back(s);
    }
  }
  return sites;
}

/// Select `count` indices from [0, total) with uniform stride.
std::vector<std::size_t> stride_select(std::size_t count, std::size_t total) {
  VS_REQUIRE(count <= total, "cannot select more sites than available");
  std::vector<std::size_t> picked;
  picked.reserve(count);
  for (std::size_t j = 0; j < total; ++j) {
    if ((j + 1) * count / total > j * count / total) picked.push_back(j);
  }
  return picked;
}

}  // namespace

std::vector<std::size_t> PdnNetwork::core_cells(std::size_t core) const {
  const std::size_t nx = config_.grid_nx, ny = config_.grid_ny;
  const floorplan::Rect tile = floorplan_.core_rect(core);
  const double dx = floorplan_.width / static_cast<double>(nx);
  const double dy = floorplan_.height / static_cast<double>(ny);
  std::vector<std::size_t> cells;
  for (std::size_t iy = 0; iy < ny; ++iy) {
    for (std::size_t ix = 0; ix < nx; ++ix) {
      const double cx = (static_cast<double>(ix) + 0.5) * dx;
      const double cy = (static_cast<double>(iy) + 0.5) * dy;
      if (tile.contains(cx, cy)) cells.push_back(iy * nx + ix);
    }
  }
  VS_REQUIRE(!cells.empty(), "core tile contains no grid cells");
  return cells;
}

void PdnNetwork::build_regular_topology() {
  const auto sites = enumerate_pad_sites(config_, floorplan_);
  const auto n_power = static_cast<std::size_t>(
      std::llround(config_.power_c4_fraction *
                   static_cast<double>(sites.size())));
  VS_REQUIRE(n_power >= 2, "power C4 allocation leaves no pads");
  const auto picked = stride_select(n_power, sites.size());

  // Alternate Vdd / ground among the selected power sites.
  for (std::size_t k = 0; k < picked.size(); ++k) {
    const PadSite& s = sites[picked[k]];
    if (k % 2 == 0) {
      conductors_.push_back({ConductorKind::C4Vdd, package_vdd_node(),
                             vdd_node(0, s.cell),
                             config_.params.c4_resistance, 1, 1});
    } else {
      conductors_.push_back({ConductorKind::C4Gnd, gnd_node(0, s.cell),
                             package_gnd_node(),
                             config_.params.c4_resistance, 1, 1});
    }
  }

  // TSV stacks: per interface, per core, per net.
  for (std::size_t core = 0; core < floorplan_.core_count(); ++core) {
    const auto cells = core_cells(core);
    const auto counts =
        distribute(config_.tsv.vdd_tsvs_per_core(), cells.size());
    for (std::size_t l = 0; l + 1 < config_.layer_count; ++l) {
      for (std::size_t j = 0; j < cells.size(); ++j) {
        if (counts[j] == 0) continue;
        conductors_.push_back({ConductorKind::TsvVdd, vdd_node(l, cells[j]),
                               vdd_node(l + 1, cells[j]),
                               config_.params.tsv_resistance, counts[j], 1});
        conductors_.push_back({ConductorKind::TsvGnd, gnd_node(l, cells[j]),
                               gnd_node(l + 1, cells[j]),
                               config_.params.tsv_resistance, counts[j], 1});
      }
    }
  }
}

void PdnNetwork::build_stacked_topology() {
  const std::size_t layers = config_.layer_count;
  const auto sites = enumerate_pad_sites(config_, floorplan_);

  // Bucket pad sites per core.
  std::vector<std::vector<std::size_t>> per_core(floorplan_.core_count());
  for (std::size_t i = 0; i < sites.size(); ++i) {
    per_core[sites[i].core].push_back(i);
  }

  // Through-vias (Vdd pads) and ground pads, per core.
  const sc::ScCompactModel model(config_.converter);
  const double r_chain =
      config_.params.c4_resistance +
      static_cast<double>(layers - 1) * config_.params.tsv_resistance;
  for (std::size_t core = 0; core < floorplan_.core_count(); ++core) {
    const std::size_t want = 2 * config_.vdd_pads_per_core;
    VS_REQUIRE(want <= per_core[core].size(),
               "not enough C4 sites in the core tile for the requested "
               "Vdd pad allocation");
    const auto picked = stride_select(want, per_core[core].size());
    for (std::size_t k = 0; k < picked.size(); ++k) {
      const PadSite& s = sites[per_core[core][picked[k]]];
      if (k % 2 == 0) {
        // Pad + through-via chain to the top rail; the chain crosses
        // layers-1 interfaces, each an EM-relevant TSV segment.
        conductors_.push_back({ConductorKind::ThroughVia, package_vdd_node(),
                               vdd_node(layers - 1, s.cell), r_chain, 1,
                               layers - 1});
      } else {
        conductors_.push_back({ConductorKind::C4Gnd, gnd_node(0, s.cell),
                               package_gnd_node(),
                               config_.params.c4_resistance, 1, 1});
      }
    }
  }

  // Recycling TSVs stitch rail l+1: layer l's Vdd net to layer l+1's Gnd
  // net.  The per-net TSV budget of the regular topology serves the single
  // rail here.
  for (std::size_t core = 0; core < floorplan_.core_count(); ++core) {
    const auto cells = core_cells(core);
    const auto counts =
        distribute(config_.tsv.vdd_tsvs_per_core(), cells.size());
    for (std::size_t l = 0; l + 1 < layers; ++l) {
      for (std::size_t j = 0; j < cells.size(); ++j) {
        if (counts[j] == 0) continue;
        conductors_.push_back({ConductorKind::RecyclingTsv,
                               vdd_node(l, cells[j]),
                               gnd_node(l + 1, cells[j]),
                               config_.params.tsv_resistance, counts[j], 1});
      }
    }
  }

  // SC converters: per core, per intermediate rail r = 1..layers-1,
  // uniformly spread in two dimensions over the core tile ("we uniformly
  // distribute them within each core").
  const double r_series =
      model.r_series(config_.converter.nominal_switching_frequency);
  for (std::size_t core = 0; core < floorplan_.core_count(); ++core) {
    const floorplan::Rect tile = floorplan_.core_rect(core);
    const std::size_t k_total = config_.converters_per_core;
    const auto kx = static_cast<std::size_t>(
        std::ceil(std::sqrt(static_cast<double>(k_total))));
    const std::size_t ky = (k_total + kx - 1) / kx;
    std::vector<std::size_t> conv_cells;
    for (std::size_t p = 0; p < k_total; ++p) {
      const double fx =
          (static_cast<double>(p % kx) + 0.5) / static_cast<double>(kx);
      const double fy =
          (static_cast<double>(p / kx) + 0.5) / static_cast<double>(ky);
      conv_cells.push_back(floorplan::cell_of(
          floorplan_, config_.grid_nx, config_.grid_ny,
          tile.x + fx * tile.width, tile.y + fy * tile.height));
    }
    for (std::size_t r = 1; r < layers; ++r) {
      for (const std::size_t cell : conv_cells) {
        ConverterInstance conv;
        conv.out = vdd_node(r - 1, cell);
        conv.top = vdd_node(r, cell);
        conv.bottom = (r == 1) ? gnd_node(0, cell) : vdd_node(r - 2, cell);
        conv.r_series = r_series;
        conv.core = core;
        conv.level = r;
        converters_.push_back(conv);
      }
    }
  }
}

std::vector<LoadInjection> PdnNetwork::build_loads(
    const power::CorePowerModel& model,
    const std::vector<double>& layer_activities) const {
  VS_REQUIRE(layer_activities.size() == config_.layer_count,
             "activity vector must match layer count");
  std::vector<std::vector<double>> per_core(config_.layer_count);
  for (std::size_t l = 0; l < config_.layer_count; ++l) {
    per_core[l].assign(floorplan_.core_count(), layer_activities[l]);
  }
  return build_loads_per_core(model, per_core);
}

std::vector<LoadInjection> PdnNetwork::build_loads_layered(
    const std::vector<const power::CorePowerModel*>& models,
    const std::vector<const floorplan::Floorplan*>& floorplans,
    const std::vector<double>& layer_activities) const {
  VS_REQUIRE(models.size() == config_.layer_count &&
                 floorplans.size() == config_.layer_count &&
                 layer_activities.size() == config_.layer_count,
             "per-layer vectors must match layer count");
  std::vector<LoadInjection> loads;
  for (std::size_t l = 0; l < config_.layer_count; ++l) {
    VS_REQUIRE(models[l] != nullptr && floorplans[l] != nullptr,
               "null layer model/floorplan");
    const auto& fp = *floorplans[l];
    VS_REQUIRE(std::abs(fp.width - floorplan_.width) < 1e-9 &&
                   std::abs(fp.height - floorplan_.height) < 1e-9,
               "layer floorplans must share the die footprint");
    const auto map = floorplan::layer_power_map(
        fp, *models[l],
        std::vector<double>(fp.core_count(), layer_activities[l]),
        config_.grid_nx, config_.grid_ny);
    for (std::size_t cell = 0; cell < map.values.size(); ++cell) {
      if (map.values[cell] <= 0.0) continue;
      loads.push_back(LoadInjection{vdd_node(l, cell), gnd_node(l, cell),
                                    map.values[cell] / config_.vdd});
    }
  }
  return loads;
}

std::vector<LoadInjection> PdnNetwork::build_loads_per_core(
    const power::CorePowerModel& model,
    const std::vector<std::vector<double>>& core_activities) const {
  VS_REQUIRE(core_activities.size() == config_.layer_count,
             "activity matrix must match layer count");
  std::vector<LoadInjection> loads;
  for (std::size_t l = 0; l < config_.layer_count; ++l) {
    const auto map = floorplan::layer_power_map(
        floorplan_, model, core_activities[l], config_.grid_nx,
        config_.grid_ny);
    for (std::size_t cell = 0; cell < map.values.size(); ++cell) {
      if (map.values[cell] <= 0.0) continue;
      loads.push_back(LoadInjection{vdd_node(l, cell), gnd_node(l, cell),
                                    map.values[cell] / config_.vdd});
    }
  }
  return loads;
}

}  // namespace vstack::pdn
