// Transient (RLC) analysis of the 3D PDN -- an extension beyond the paper's
// DC (IR-drop) study, restoring the dynamic part of the VoltSpot model the
// paper builds on.
//
// On top of the resistive network, this adds per-cell on-chip decoupling
// capacitance and a package inductance per supply net, then integrates a
// load step with trapezoidal companions (backward-Euler startup and
// post-event stabilization in adaptive mode).  Both companion models are
// pure conductances plus history currents, so the system stays SPD; small
// systems are factorized once per distinct (dt, scheme) with the
// RCM-reordered skyline Cholesky, larger ones use warm-started CG.
//
// Robustness (shared sim::StepController core, same discipline as
// circuit/transient.h): optional LTE-controlled adaptive stepping that hits
// the load-step instant exactly, NaN/overflow guards on every candidate
// solution, linear solves that escalate through la::Solver's degradation
// ladder instead of throwing, and hard step / wall-clock budgets.  Callers
// check PdnTransientResult::report instead of catching exceptions.
//
// The headline result it enables: voltage stacking draws ~N times less
// off-chip current, so the L*di/dt droop of a full-power step is far
// smaller than in the regular PDN with the same package.
#pragma once

#include <string>
#include <vector>

#include "pdn/fault.h"
#include "pdn/solver.h"
#include "sim/step_control.h"

namespace vstack::pdn {

/// A fault (or load surge) scheduled to strike DURING a transient run.
///
/// Timing semantics: in adaptive mode the step controller snaps a step
/// boundary exactly onto `time` and the event is applied at that boundary
/// (the step starting at `time` already integrates the post-event topology
/// and loads).  In fixed mode the event is applied at the first grid point
/// t >= time, mirroring the legacy load-step rule, so runs without events
/// reproduce historical waveforms bit-for-bit.  Events at time <= 0 are
/// applied after the DC initial condition is taken but before the first
/// step: the run starts from the HEALTHY operating point and the waveform
/// shows the response from t = 0+.
///
/// Applying the faults bumps the working network's topology epoch, which
/// invalidates every cached factorization/preconditioner; adaptive mode also
/// restarts integration (backward-Euler startup, reduced dt) since the
/// pre-fault history is invalid across the discontinuity.
struct TimedFaultEvent {
  double time = 0.0;  // [s] when the event strikes
  /// Topology perturbations (TSV/C4 opens or degradations, converter
  /// stuck-off, leakage shorts); may be empty for a pure load surge.
  FaultSet faults;
  /// Optional load surge: when non-empty (size = layer count), these
  /// per-layer activities REPLACE the loads in force from `time` onward.
  std::vector<double> activities;
  /// Label recorded in the report's event trail (default "fault event").
  std::string label;
};

struct PdnTransientOptions {
  /// On-chip decoupling capacitance per die area, per layer [F/m^2].
  /// ~5 nF/mm^2 is typical for a logic die's intrinsic + explicit decap.
  double decap_density = 0.005;

  /// Optional per-layer override of decap_density (size = layer count);
  /// empty means uniform.  Used by the decap allocation optimizer.
  std::vector<double> layer_decap_density;

  /// Package + board loop inductance per supply net [H].
  double package_inductance = 50e-12;

  /// Fixed mode: the uniform step.  Adaptive mode: the LARGEST step the
  /// controller may take.
  double time_step = 0.5e-9;  // [s]
  double duration = 200e-9;   // [s] total simulated time
  double step_time = 20e-9;   // [s] when the load step fires

  /// Faults / load surges striking mid-run, applied to a private copy of the
  /// model's network (the caller's model is never mutated).  See
  /// TimedFaultEvent for the timing semantics.
  std::vector<TimedFaultEvent> fault_events;

  /// LTE-controlled adaptive stepping that snaps a step boundary exactly
  /// onto step_time and every fault-event instant.  Off by default (the
  /// fixed grid reproduces historical waveforms bit-for-bit); guards,
  /// budgets and reporting apply either way.
  bool adaptive = false;

  /// Tolerances, budgets and guard thresholds for the shared controller.
  sim::StepControlOptions control;

  la::IterativeOptions iterative{.max_iterations = 20000,
                                 .relative_tolerance = 1e-8};

  /// Systems at or below this many unknowns are factorized per distinct
  /// timestep with the RCM-reordered skyline Cholesky and back-substituted
  /// per step (hundreds of times faster than per-step CG at small sizes);
  /// larger systems use warm-started CG.  Set to 0 to force the iterative
  /// path.
  std::size_t direct_solver_node_limit = 2500;

  void validate() const;
};

struct PdnTransientResult {
  std::vector<double> time;          // [s], one entry per accepted step
  std::vector<double> worst_noise;   // max node deviation fraction per step
  std::vector<double> supply_current;  // off-chip current [A] per step

  double initial_noise = 0.0;  // DC value before the step
  double peak_noise = 0.0;     // worst transient excursion
  double peak_time = 0.0;      // when it occurs [s]
  double final_noise = 0.0;    // settled value at the end of the run

  /// Structured outcome: step statistics, recovery/fallback events, and a
  /// status labeling truncated results.  Check ok() before trusting the
  /// waveform to span the full duration; waveforms never contain NaN.
  sim::TransientReport report;
  bool ok() const { return report.ok(); }
};

/// Simulate a load step from `activities_before` to `activities_after`
/// (per-layer activity factors) on the given PDN.  Throws only on
/// precondition violations; numerical trouble truncates the waveform and is
/// described in the returned report.
PdnTransientResult simulate_load_step(
    const PdnModel& model, const power::CorePowerModel& core_model,
    const std::vector<double>& activities_before,
    const std::vector<double>& activities_after,
    const PdnTransientOptions& options = {});

}  // namespace vstack::pdn
