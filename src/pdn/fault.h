// Fault injection into the 3D PDN (robustness layer).
//
// The EM study (em/array_mttf) predicts WHICH conductors fail first; this
// module closes the loop by actually removing them from the network and
// letting the solver report whether the damaged stack still meets its noise
// budget.  A FaultSet is a recipe of perturbations -- opened or
// resistance-degraded conductor groups, stuck-off converter phases, leakage
// shorts to ground -- applied to a PdnNetwork through its mutator API (every
// application bumps the network's topology epoch, invalidating downstream
// matrix caches).
//
// Opening conductors can strand whole subgraphs: a rail island with no path
// to any fixed potential makes the MNA matrix singular.  The floating-island
// detector finds those components so the solver can ground them (weak pin to
// the nominal rail potential) instead of handing the Krylov solvers a
// singular system.
#pragma once

#include <string>
#include <vector>

#include "pdn/network.h"

namespace vstack::pdn {

enum class FaultKind {
  OpenConductor,     // remove `units` parallel conductors from a group
  DegradeConductor,  // multiply a group's per-unit resistance by `severity`
  ConverterStuckOff, // converter phase stops switching (removed from system)
  LeakageToGround    // resistive short of `severity` ohms from node to ground
};

struct Fault {
  FaultKind kind = FaultKind::OpenConductor;
  /// Conductor-group index, converter index, or node index depending on kind.
  std::size_t index = 0;
  /// OpenConductor: parallel units to remove (whole group when >= count).
  std::size_t units = 1;
  /// DegradeConductor: resistance multiplier; LeakageToGround: ohms.
  double severity = 1.0;
};

/// An ordered recipe of faults.  Building a FaultSet does not touch any
/// network; apply_to() mutates the given PdnNetwork in place.
class FaultSet {
 public:
  /// Open `units` conductors of group `index` (whole group by default).
  FaultSet& open_conductor(std::size_t index,
                           std::size_t units = static_cast<std::size_t>(-1));

  /// Multiply group `index`'s per-unit resistance by `factor` (> 1 degrades).
  FaultSet& degrade_conductor(std::size_t index, double factor);

  /// Stuck-off converter phase.
  FaultSet& converter_stuck_off(std::size_t index);

  /// Resistive short from `node` to board ground.
  FaultSet& leakage_to_ground(std::size_t node, double resistance);

  const std::vector<Fault>& faults() const { return faults_; }
  bool empty() const { return faults_.empty(); }
  std::size_t size() const { return faults_.size(); }

  /// Apply every fault to the network (bumps its topology epoch).
  void apply_to(PdnNetwork& network) const;

  /// One-line human-readable summary, e.g. "open[tsv#1042] conv-off[37]".
  std::string describe(const PdnNetwork& network) const;

 private:
  std::vector<Fault> faults_;
};

/// Free grid/package nodes with no conductive path to any fixed potential
/// (package rails, or an ideal-reference converter output, which is tied to
/// its nominal level through r_series).  Each island is one connected
/// component of such nodes.
struct IslandReport {
  std::vector<std::vector<std::size_t>> islands;
  std::size_t floating_node_count() const;
};

IslandReport find_floating_islands(const PdnNetwork& network);

/// Short label for a conductor kind ("strap", "c4", "tsv", "via", ...).
const char* conductor_kind_name(ConductorKind kind);

}  // namespace vstack::pdn
