#include "pdn/transient_core.h"

#include <cmath>
#include <cstring>
#include <utility>

#include "common/error.h"
#include "la/solver.h"
#include "telemetry/telemetry.h"

namespace vstack::pdn::detail {

namespace {

const telemetry::Counter t_cache_hits("pdn.step_solver.cache.hits");
const telemetry::Counter t_cache_misses("pdn.step_solver.cache.misses");
const telemetry::Counter t_cache_evictions("pdn.step_solver.cache.evictions");
const telemetry::Counter t_cache_epoch_invalidations(
    "pdn.step_solver.cache.epoch_invalidations");
const telemetry::Counter t_rebuilds("pdn.topology.rebuilds");

bool is_fixed(std::size_t node) {
  return node == kFixedSupply || node == kFixedGround;
}

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

}  // namespace

la::CsrMatrix SplitSystem::assemble(double h, bool backward_euler) const {
  const double s = backward_euler ? 1.0 : 2.0;
  la::CooBuilder builder(n);
  for (const auto& t : static_part) builder.add(t.i, t.j, t.v);
  for (const auto& t : cap_part) builder.add(t.i, t.j, t.v * s / h);
  for (const auto& t : ind_part) builder.add(t.i, t.j, t.v * h / s);
  return builder.build();
}

bool StepSolver::solve(double h, bool backward_euler, const la::Vector& rhs,
                       la::Vector& x, double t, sim::TransientReport& report,
                       std::string& diagnostic) {
  Cached& c = cached(h, backward_euler, t, report);
  if (c.direct) {
    la::Vector sol = c.direct->solve(rhs);
    if (sim::finite_and_bounded(sol, options_.control.overflow_limit)) {
      x = std::move(sol);
      return true;
    }
    report.record_event(t, "direct back-substitution produced non-finite "
                           "values; escalating to the iterative ladder");
  }
  if (c.solver) {
    la::Vector iterate = x;
    const auto r = c.solver->iterate_once(rhs, iterate, options_.iterative);
    if (r.converged &&
        sim::finite_and_bounded(iterate, options_.control.overflow_limit)) {
      x = std::move(iterate);
      return true;
    }
    report.record_event(t, "warm-started CG stalled (residual " +
                               std::to_string(r.residual_norm) +
                               "); escalating through the solver ladder");
  }
  // Final rung: the full non-throwing escalation ladder from PR 1.  Slots
  // that went direct-only build their iterative handle on first need.
  if (!c.solver) {
    la::SolveOptions ladder;
    ladder.iterative = options_.iterative;
    c.solver = std::make_unique<la::Solver>(c.matrix, ladder);
  }
  la::Vector iterate = x;
  const auto r = c.solver->solve(rhs, iterate, options_.iterative);
  if (r.converged &&
      sim::finite_and_bounded(iterate, options_.control.overflow_limit)) {
    x = std::move(iterate);
    return true;
  }
  diagnostic = r.diagnostic.empty() ? "transient solve failed" : r.diagnostic;
  return false;
}

StepSolver::Cached& StepSolver::cached(double h, bool backward_euler, double t,
                                       sim::TransientReport& report) {
  // The epoch in the key is what makes mid-run faults safe: applying a
  // FaultSet bumps the network's topology epoch, rebuild_topology() stamps it
  // into the split system, and every pre-fault factorization silently misses.
  const Key key{bits_of(h), backward_euler, sys_.epoch};
  if (last_seen_epoch_ != static_cast<std::size_t>(-1) &&
      sys_.epoch != last_seen_epoch_) {
    t_cache_epoch_invalidations.add();
  }
  last_seen_epoch_ = sys_.epoch;
  auto it = cache_.find(key);
  if (it != cache_.end()) {
    t_cache_hits.add();
    return it->second;
  }
  t_cache_misses.add();
  if (cache_.size() > 16) {  // bound adaptive-dt / epoch growth
    t_cache_evictions.add(static_cast<double>(cache_.size()));
    cache_.clear();
  }

  Cached c;
  c.matrix = sys_.assemble(h, backward_euler);
  if (sys_.n <= options_.direct_solver_node_limit) {
    try {
      c.direct = std::make_unique<la::ReorderedCholesky>(c.matrix);
    } catch (const Error&) {
      report.record_event(t, "skyline Cholesky factorization failed for "
                             "dt = " + std::to_string(h) +
                             " s; using the iterative ladder");
    }
  }
  // Insert first, bind after: the solver handle points at the matrix, so it
  // must be created once the Cached slot has its final map residence.
  Cached& slot = cache_.emplace(key, std::move(c)).first->second;
  if (!slot.direct) {
    la::SolveOptions ladder;
    ladder.iterative = options_.iterative;
    slot.solver = std::make_unique<la::Solver>(slot.matrix, ladder);
  }
  return slot;
}

TransientWorkspace::TransientWorkspace(const PdnNetwork& net,
                                       const PdnTransientOptions& options)
    : net_(net), options_(options) {
  const StackupConfig& cfg = net_.config();
  layer_count_ = cfg.layer_count;
  cells_ = cfg.grid_nx * cfg.grid_ny;
  lvdd_mid_ = net_.node_count();
  lgnd_mid_ = net_.node_count() + 1;

  VS_REQUIRE(options.layer_decap_density.empty() ||
                 options.layer_decap_density.size() == cfg.layer_count,
             "per-layer decap vector must match layer count");
  const double cell_area = net_.floorplan().width * net_.floorplan().height /
                           static_cast<double>(cells_);
  layer_cap_.resize(layer_count_);
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const double density = options.layer_decap_density.empty()
                               ? options.decap_density
                               : options.layer_decap_density[l];
    VS_REQUIRE(density > 0.0, "decap density must be positive");
    layer_cap_[l] = density * cell_area;
  }

  rebuild_topology();
}

void TransientWorkspace::rebuild_topology() {
  t_rebuilds.add();
  const StackupConfig& cfg = net_.config();

  // Two extra unknowns split the package resistors so the loop inductance
  // can sit between the ideal source and the package node.
  sys_.n = net_.node_count() + 2;
  sys_.epoch = net_.topology_epoch();
  sys_.static_part.clear();
  sys_.cap_part.clear();
  sys_.ind_part.clear();

  for (const auto& group : net_.conductors()) {
    if (group.count == 0) continue;  // fully opened by a fault
    const double g = static_cast<double>(group.count) / group.unit_resistance;
    std::size_t a = group.node_a;
    std::size_t b = group.node_b;
    // Reroute package resistors through the inductor mid nodes.
    if (group.kind == ConductorKind::PackageVdd) a = lvdd_mid_;
    if (group.kind == ConductorKind::PackageGnd) b = lgnd_mid_;

    const bool a_fixed = is_fixed(a);
    const bool b_fixed = is_fixed(b);
    VS_REQUIRE(!(a_fixed && b_fixed), "conductor between two fixed rails");
    if (!a_fixed && !b_fixed) {
      sys_.static_part.push_back({a, a, g});
      sys_.static_part.push_back({b, b, g});
      sys_.static_part.push_back({a, b, -g});
      sys_.static_part.push_back({b, a, -g});
    } else {
      const std::size_t free_node = a_fixed ? b : a;
      sys_.static_part.push_back({free_node, free_node, g});
      // No static fixed-rail injections remain: both package paths go
      // through the inductor companions below.
    }
  }

  // Converters (quasi-static: regulation bandwidth assumed above the step).
  const bool ideal_reference =
      cfg.converter_reference == ConverterReference::IdealRails;
  for (const auto& conv : net_.converters()) {
    if (!conv.enabled) continue;  // stuck-off fault
    const double g = 1.0 / conv.r_series;
    if (ideal_reference) {
      sys_.static_part.push_back({conv.out, conv.out, g});
    } else {
      const std::size_t idx[3] = {conv.top, conv.bottom, conv.out};
      const double v[3] = {0.5, 0.5, -1.0};
      for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
          sys_.static_part.push_back({idx[i], idx[j], g * v[i] * v[j]});
        }
      }
    }
  }

  // Decap companions: one per (layer, cell); density may vary per layer.
  for (std::size_t l = 0; l < layer_count_; ++l) {
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const std::size_t a = net_.vdd_node(l, cell);
      const std::size_t b = net_.gnd_node(l, cell);
      sys_.cap_part.push_back({a, a, layer_cap_[l]});
      sys_.cap_part.push_back({b, b, layer_cap_[l]});
      sys_.cap_part.push_back({a, b, -layer_cap_[l]});
      sys_.cap_part.push_back({b, a, -layer_cap_[l]});
    }
  }

  // Inductor companions: supply -> lvdd_mid, lgnd_mid -> ground.
  const double inv_l = 1.0 / options_.package_inductance;
  sys_.ind_part.push_back({lvdd_mid_, lvdd_mid_, inv_l});
  sys_.ind_part.push_back({lgnd_mid_, lgnd_mid_, inv_l});
}

void TransientWorkspace::init_states(const PdnSolution& dc, la::Vector& x) {
  VS_REQUIRE(x.size() == sys_.n, "state vector size mismatch");
  for (std::size_t i = 0; i < net_.node_count(); ++i) {
    x[i] = dc.node_voltages[i];
  }
  x[lvdd_mid_] = net_.config().supply_voltage();  // inductors short at DC
  x[lgnd_mid_] = 0.0;

  cap_v_.assign(layer_count_ * cells_, 0.0);
  cap_i_.assign(layer_count_ * cells_, 0.0);
  for (std::size_t l = 0; l < layer_count_; ++l) {
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      cap_v_[l * cells_ + cell] =
          x[net_.vdd_node(l, cell)] - x[net_.gnd_node(l, cell)];
    }
  }
  // Inductor states (current flowing from the fixed rail into the chip on
  // the Vdd side, and from the chip into ground on the return side).
  lvdd_i_ = dc.supply_current;
  lgnd_i_ = dc.supply_current;
  lvdd_v_ = 0.0;  // DC inductor voltage is zero
  lgnd_v_ = 0.0;
}

void TransientWorkspace::build_rhs(const std::vector<LoadInjection>& loads,
                                   double h, bool be, la::Vector& rhs) const {
  const StackupConfig& cfg = net_.config();
  const bool ideal_reference =
      cfg.converter_reference == ConverterReference::IdealRails;
  const double s = be ? 1.0 : 2.0;
  const double g_l = h / (s * options_.package_inductance);
  std::fill(rhs.begin(), rhs.end(), 0.0);
  for (const auto& load : loads) {
    rhs[load.vdd_node] -= load.current;
    rhs[load.gnd_node] += load.current;
  }
  if (ideal_reference) {
    for (const auto& conv : net_.converters()) {
      if (!conv.enabled) continue;
      rhs[conv.out] += (1.0 / conv.r_series) *
                       static_cast<double>(conv.level) * cfg.vdd;
    }
  }
  // Capacitor histories.
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const double g_c = s * layer_cap_[l] / h;
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const std::size_t k = l * cells_ + cell;
      const double j_c = g_c * cap_v_[k] + (be ? 0.0 : cap_i_[k]);
      rhs[net_.vdd_node(l, cell)] += j_c;
      rhs[net_.gnd_node(l, cell)] -= j_c;
    }
  }
  // Inductor histories (fixed-rail side folded into the RHS).
  const double j_lvdd = lvdd_i_ + (be ? 0.0 : g_l * lvdd_v_);
  rhs[lvdd_mid_] += g_l * cfg.supply_voltage() + j_lvdd;
  const double j_lgnd = lgnd_i_ + (be ? 0.0 : g_l * lgnd_v_);
  rhs[lgnd_mid_] += -j_lgnd;  // current leaves the mid node into ground
}

void TransientWorkspace::commit_states(const la::Vector& sol, double h,
                                       bool be) {
  const double s = be ? 1.0 : 2.0;
  const double g_l = h / (s * options_.package_inductance);
  for (std::size_t l = 0; l < layer_count_; ++l) {
    const double g_c = s * layer_cap_[l] / h;
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      const std::size_t k = l * cells_ + cell;
      const double v_new =
          sol[net_.vdd_node(l, cell)] - sol[net_.gnd_node(l, cell)];
      const double j_c = g_c * cap_v_[k] + (be ? 0.0 : cap_i_[k]);
      cap_i_[k] = g_c * v_new - j_c;
      cap_v_[k] = v_new;
    }
  }
  const double v_supply = net_.config().supply_voltage();
  const double j_lvdd = lvdd_i_ + (be ? 0.0 : g_l * lvdd_v_);
  lvdd_v_ = v_supply - sol[lvdd_mid_];
  lvdd_i_ = j_lvdd + g_l * lvdd_v_;
  const double j_lgnd = lgnd_i_ + (be ? 0.0 : g_l * lgnd_v_);
  lgnd_v_ = sol[lgnd_mid_];  // mid node minus ground
  lgnd_i_ = j_lgnd + g_l * lgnd_v_;
}

double TransientWorkspace::nominal(std::size_t layer, bool vdd_net) const {
  const StackupConfig& cfg = net_.config();
  const double gnd = cfg.is_voltage_stacked()
                         ? static_cast<double>(layer) * cfg.vdd
                         : 0.0;
  return vdd_net ? gnd + cfg.vdd : gnd;
}

double TransientWorkspace::worst_noise_of(const la::Vector& sol,
                                          std::vector<double>* per_layer)
    const {
  const double vdd = net_.config().vdd;
  if (per_layer != nullptr) per_layer->assign(layer_count_, 0.0);
  double worst = 0.0;
  for (std::size_t l = 0; l < layer_count_; ++l) {
    double layer_worst = 0.0;
    for (std::size_t cell = 0; cell < cells_; ++cell) {
      layer_worst = std::max(layer_worst,
                             std::abs(sol[net_.vdd_node(l, cell)] -
                                      nominal(l, true)));
      layer_worst = std::max(layer_worst,
                             std::abs(sol[net_.gnd_node(l, cell)] -
                                      nominal(l, false)));
    }
    if (per_layer != nullptr) (*per_layer)[l] = layer_worst / vdd;
    worst = std::max(worst, layer_worst);
  }
  return worst / vdd;
}

}  // namespace vstack::pdn::detail
