// Exhaustive crash-schedule exploration over the failpoint catalog
// (common/failpoint.h; protocol details in docs/chaos_testing.md).
//
// The random chaos drills (tests/scripts/{shard,serve}_chaos.sh) SIGKILL
// processes at arbitrary moments; this explorer replaces luck with
// enumeration.  For each workload it runs:
//
//   1. Reference -- the workload uninjected, capturing the masked artifact
//      (merged campaign manifest / response ledger) every schedule must
//      reproduce.
//   2. Census -- the workload with VSTACK_FAILPOINT_CENSUS, enumerating
//      every failpoint evaluation.  The resulting (failpoint, hit-index)
//      pairs ARE the crash-schedule space.
//   3. One run per schedule -- VSTACK_FAILPOINTS="<point>=crash@<hit>"
//      crashes the process at exactly that durability window (the once-dir
//      keeps a restarted process from re-crashing); the explorer then
//      restarts the workload uninjected and asserts full recovery:
//      exactly-once results, bit-identical (masked) to the reference.
//   4. Error-injection sweeps -- the same schedule space with
//      err:EIO/err:ENOSPC instead of crash, asserting injected I/O errors
//      either surface as a clean nonzero exit (never a signal, never a
//      corrupt artifact; a restart fully recovers) or are absorbed
//      outright (exit 0 with a reference-identical artifact -- non-fatal
//      health snapshots, EINTR retries).
//
// The explorer shells out to vstack_cli for every run, so each schedule
// exercises the real process-tree (supervisor + forked workers, spool
// server) rather than an in-process simulation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace vstack::chaos {

struct ExplorerOptions {
  std::string cli_path;   // vstack_cli binary to drive (required)
  std::string work_dir;   // scratch root; created, caller owns cleanup
  std::string workload = "both";  // shard | serve | both
  std::string mode = "both";      // crash | err | both
  /// Crash schedules per failpoint: hits 1..max_hits (clamped to the
  /// census count).  Error schedules always use hit 1.
  std::size_t max_hits = 1;
  /// Hard cap on total schedules per workload+mode; 0 = unlimited.
  /// Schedules dropped by the cap are counted and reported, never silent.
  std::size_t max_schedules = 0;
  /// Errnos for the err sweep (failpoint spec names: EIO, ENOSPC, ...).
  std::vector<std::string> errnos = {"EIO", "ENOSPC"};
  /// Progress/narration sink; nullptr = quiet.
  std::ostream* out = nullptr;

  void validate() const;
};

/// Outcome of one (workload, failpoint, hit, action) schedule.
struct ScheduleResult {
  std::string workload;
  std::string point;
  std::uint64_t hit = 1;
  std::string action;  // "crash" or "err:EIO" etc.
  bool fired = false;  // the injection actually triggered (once-marker)
  bool passed = false;
  std::string detail;  // failure reason, or brief pass note
};

struct ExplorerReport {
  std::vector<ScheduleResult> schedules;
  std::size_t census_points = 0;  // distinct failpoints seen in censuses
  std::size_t skipped = 0;        // schedules dropped by max_schedules

  std::size_t passed() const;
  std::size_t failed() const;
  std::size_t fired() const;  // schedules whose injection triggered
  bool ok() const { return failed() == 0; }
  std::string summary() const;
};

/// Run the full exploration.  Throws vstack::Error on setup problems
/// (missing CLI, reference run failure); per-schedule failures are
/// recorded in the report, not thrown.
ExplorerReport run_explorer(const ExplorerOptions& options);

}  // namespace vstack::chaos
