#include "chaos/explorer.h"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <ostream>
#include <regex>
#include <set>
#include <sstream>

#include "common/error.h"

namespace vstack::chaos {

namespace fs = std::filesystem;

namespace {

struct RunResult {
  int exit_code = -1;
  bool signaled = false;
  int signal = 0;

  std::string describe() const {
    return signaled ? "signal " + std::to_string(signal)
                    : "exit " + std::to_string(exit_code);
  }
};

/// One environment override for a child run; empty value = unset.
using EnvSpec = std::vector<std::pair<std::string, std::string>>;

/// Fork/exec one CLI run with stdout+stderr captured to `log_path`.  The
/// three failpoint channels are always cleared first so a schedule's
/// environment never leaks into the next run (or in from the caller).
RunResult run_cli(const std::string& cli,
                  const std::vector<std::string>& args, const EnvSpec& env,
                  const std::string& log_path) {
  const pid_t pid = ::fork();
  VS_REQUIRE(pid >= 0, "chaos explorer: fork failed");
  if (pid == 0) {
    ::unsetenv("VSTACK_FAILPOINTS");
    ::unsetenv("VSTACK_FAILPOINT_CENSUS");
    ::unsetenv("VSTACK_FAILPOINTS_ONCE");
    ::unsetenv("VSTACK_SHARD_CRASH_TRIAL");
    for (const auto& [key, value] : env) {
      if (value.empty()) ::unsetenv(key.c_str());
      else ::setenv(key.c_str(), value.c_str(), 1);
    }
    const int log_fd =
        ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    std::vector<std::string> argv_s;
    argv_s.push_back(cli);
    argv_s.insert(argv_s.end(), args.begin(), args.end());
    std::vector<char*> argv;
    argv.reserve(argv_s.size() + 1);
    for (std::string& s : argv_s) argv.push_back(s.data());
    argv.push_back(nullptr);
    ::execv(cli.c_str(), argv.data());
    ::_exit(126);  // exec failed
  }
  int status = 0;
  pid_t got;
  do {
    got = ::waitpid(pid, &status, 0);
  } while (got < 0 && errno == EINTR);
  RunResult r;
  if (got == pid && WIFEXITED(status)) {
    r.exit_code = WEXITSTATUS(status);
  } else if (got == pid && WIFSIGNALED(status)) {
    r.signaled = true;
    r.signal = WTERMSIG(status);
  }
  return r;
}

std::string read_file(const fs::path& path) {
  std::ifstream in(path);
  VS_REQUIRE(static_cast<bool>(in),
             "chaos explorer: cannot read '" + path.string() + "'");
  std::ostringstream oss;
  oss << in.rdbuf();
  return oss.str();
}

/// Manifest masking (same convention as tests/scripts/shard_chaos.sh):
/// wall_seconds is the one field measuring real time, not physics.
std::string mask_manifest(const std::string& text) {
  static const std::regex kMask(R"(,"wall_seconds":[^,}]*)");
  return std::regex_replace(text, kMask, "");
}

/// Response masking (same convention as tests/scripts/serve_chaos.sh):
/// wall time, retry bookkeeping, and resume counters legitimately depend
/// on where an injection landed; the physics fields must not.
std::string mask_response(const std::string& line) {
  static const std::regex kMask(
      R"re("(wall_seconds|attempts|resumed|evaluated)":[^,}]*|"detail":"[^"]*")re");
  return std::regex_replace(line, kMask, "");
}

/// Per-process hit counts from a census file (one point name per line).
std::map<std::string, std::uint64_t> parse_census(const fs::path& path) {
  std::map<std::string, std::uint64_t> counts;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++counts[line];
  }
  return counts;
}

/// One explorable workload: how to set up its inputs, run it, and reduce
/// its on-disk outcome to a canonical artifact string (masked, ordered,
/// invariant-checked -- an artifact mismatch IS a failed invariant).
struct Workload {
  std::string name;
  std::vector<std::string> (*command)(const fs::path& dir);
  void (*prepare)(const fs::path& dir);
  std::string (*artifact)(const fs::path& dir);
};

// -- shard workload ---------------------------------------------------------
//
// A sharded campaign (supervisor + 2 forked workers, chunk=1) whose merged
// manifest must be bit-identical (masked) to the serial run's -- the
// exactly-once-commit invariant under any crash schedule.

const char* kCampaignArgs[] = {
    "--layers=2",  "--grid=4", "--trials=3", "--faults=1",
    "--seed=7",    "--timeout=0",
};

std::vector<std::string> shard_command(const fs::path& dir) {
  std::vector<std::string> args{"campaign"};
  args.insert(args.end(), std::begin(kCampaignArgs), std::end(kCampaignArgs));
  args.insert(args.end(),
              {"--jobs=1", "--shards=2", "--chunk=1", "--max-attempts=4",
               "--lease-expiry=1", "--heartbeat=0.2",
               "--job-dir=" + (dir / "job").string()});
  return args;
}

void shard_prepare(const fs::path&) {}  // the CLI creates the job dir

std::string shard_artifact(const fs::path& dir) {
  return mask_manifest(read_file(dir / "job" / "merged.jsonl"));
}

// -- serve workload ---------------------------------------------------------
//
// A spool-server drain over a fixed request batch (resumable campaign,
// contingency, one invalid request).  Every request must reach exactly one
// terminal state with masked responses identical to the uninterrupted run.

const char* kServeRequestIds[] = {"a_camp", "b_cont", "d_bad"};

std::vector<std::string> serve_command(const fs::path& dir) {
  return {"serve",     "--spool=" + (dir / "spool").string(),
          "--jobs=1",  "--degrade-divisor=1",
          "--poll=0.05", "--idle-exit=0.4"};
}

void serve_prepare(const fs::path& dir) {
  const fs::path incoming = dir / "spool" / "incoming";
  fs::create_directories(incoming);
  std::ofstream(incoming / "a_camp.req")
      << "id = a_camp\nkind = campaign\ntopology = stacked\nlayers = 2\n"
         "grid = 4\ntrials = 2\nfaults = 1\nseed = 42\n";
  std::ofstream(incoming / "b_cont.req")
      << "id = b_cont\nkind = contingency\ntopology = stacked\nlayers = 2\n"
         "grid = 4\ntrials = 2\nfaults = 1\nseed = 11\n";
  std::ofstream(incoming / "d_bad.req") << "kind = warp\n";
}

std::string serve_artifact(const fs::path& dir) {
  const fs::path spool = dir / "spool";
  std::map<std::string, std::string> by_id;
  std::ifstream in(spool / "results" / "responses.jsonl");
  VS_REQUIRE(static_cast<bool>(in),
             "serve artifact: no responses.jsonl under " + spool.string());
  static const std::regex kId(R"re("id":"([^"]*)")re");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    std::smatch m;
    VS_REQUIRE(std::regex_search(line, m, kId),
               "serve artifact: response line without an id: " + line);
    const auto [it, inserted] = by_id.emplace(m[1], mask_response(line));
    VS_REQUIRE(inserted, "serve artifact: DUPLICATE response for id '" +
                             it->first + "' (answered twice)");
  }
  std::ostringstream out;
  for (const char* id : kServeRequestIds) {
    VS_REQUIRE(by_id.count(id) > 0,
               std::string("serve artifact: no response for '") + id + "'");
    // Exactly-one-terminal-state: the request file sits in done/ or
    // failed/, never both, never still queued.
    std::string stage;
    for (const char* dir_name : {"done", "failed"}) {
      if (fs::exists(spool / dir_name / (std::string(id) + ".req"))) {
        VS_REQUIRE(stage.empty(), std::string("serve artifact: '") + id +
                                      "' present in both done/ and failed/");
        stage = dir_name;
      }
    }
    VS_REQUIRE(!stage.empty(), std::string("serve artifact: '") + id +
                                   "' reached no terminal directory");
    for (const char* dir_name : {"incoming", "active"}) {
      VS_REQUIRE(!fs::exists(spool / dir_name / (std::string(id) + ".req")),
                 std::string("serve artifact: '") + id + "' still in " +
                     dir_name + "/");
    }
    out << id << "\t" << stage << "\t" << by_id[id] << "\n";
  }
  return out.str();
}

// -- schedule machinery -----------------------------------------------------

struct Schedule {
  std::string point;
  std::uint64_t hit = 1;
  std::string action;  // "crash" | "err:EIO" | ...
  bool is_crash = false;
};

std::string sanitize_dir_name(const std::string& s) {
  std::string out = s;
  for (char& c : out) {
    if (c == '/' || c == ':') c = '_';
  }
  return out;
}

void narrate(std::ostream* out, const std::string& line) {
  if (out) *out << line << "\n" << std::flush;
}

/// Run one schedule end to end: inject, observe, recover, compare.
ScheduleResult run_schedule(const ExplorerOptions& opts,
                            const Workload& workload, const Schedule& sched,
                            const fs::path& dir,
                            const std::string& reference) {
  ScheduleResult result;
  result.workload = workload.name;
  result.point = sched.point;
  result.hit = sched.hit;
  result.action = sched.action;

  const fs::path once = dir / "once";
  fs::create_directories(once);
  workload.prepare(dir);

  const std::string spec =
      sched.point + "=" + sched.action + "@" + std::to_string(sched.hit);
  const RunResult injected = run_cli(
      opts.cli_path, workload.command(dir),
      {{"VSTACK_FAILPOINTS", spec}, {"VSTACK_FAILPOINTS_ONCE", once.string()}},
      (dir / "run.log").string());
  result.fired = fs::exists(once / (sched.point + "@" +
                                    std::to_string(sched.hit) + ".fired"));

  const auto fail = [&](const std::string& why) {
    result.passed = false;
    result.detail = why + " [logs: " + dir.string() + "]";
    return result;
  };

  // Injected errors must surface as clean diagnostics (or be absorbed);
  // injected crashes _exit(137) -- neither may die by signal.
  if (injected.signaled) {
    return fail("workload killed by " + injected.describe() +
                " under injection");
  }

  bool recovered = false;
  if (injected.exit_code != 0) {
    if (sched.is_crash) {
      if (!(result.fired && injected.exit_code == 137)) {
        return fail("unexpected " + injected.describe() + " under injection" +
                    (result.fired ? "" : " (schedule never fired)"));
      }
    } else {
      // err actions map onto the CLI's ordinary failure codes (1 usage/
      // I/O error, 2 incomplete, 3 outcome failure) -- anything else
      // means the diagnostic path itself is broken.
      if (!result.fired || injected.exit_code > 3) {
        return fail("unexpected " + injected.describe() + " under injection" +
                    (result.fired ? "" : " (schedule never fired)"));
      }
    }
    // Restart without injection: recovery must complete cleanly.
    const RunResult recovery =
        run_cli(opts.cli_path, workload.command(dir), {},
                (dir / "recovery.log").string());
    if (recovery.signaled || recovery.exit_code != 0) {
      return fail("recovery run failed with " + recovery.describe());
    }
    recovered = true;
  }

  // The artifact must be bit-identical (masked) to the reference whether
  // the injection was absorbed, survived, or recovered from.
  std::string artifact;
  try {
    artifact = workload.artifact(dir);
  } catch (const std::exception& e) {
    return fail(e.what());
  }
  if (artifact != reference) {
    return fail("artifact differs from the uninjected reference");
  }

  result.passed = true;
  result.detail = !result.fired  ? "not fired"
                  : recovered    ? "fired; recovered"
                                 : "fired; absorbed";
  std::error_code ec;
  fs::remove_all(dir, ec);  // keep only failing schedules for post-mortem
  return result;
}

Workload make_workload(const std::string& name) {
  if (name == "shard") {
    return {"shard", shard_command, shard_prepare, shard_artifact};
  }
  return {"serve", serve_command, serve_prepare, serve_artifact};
}

/// Reference + census for one workload.  Returns the reference artifact
/// and fills `counts` with the census totals.
std::string run_baseline(const ExplorerOptions& opts, const Workload& w,
                         const fs::path& root,
                         std::map<std::string, std::uint64_t>& counts) {
  const fs::path ref_dir = root / "reference";
  fs::create_directories(ref_dir);
  w.prepare(ref_dir);
  const RunResult ref = run_cli(opts.cli_path, w.command(ref_dir), {},
                                (ref_dir / "run.log").string());
  VS_REQUIRE(!ref.signaled && ref.exit_code == 0,
             "chaos explorer: " + w.name + " reference run failed with " +
                 ref.describe() + " (log: " +
                 (ref_dir / "run.log").string() + ")");
  const std::string reference = w.artifact(ref_dir);

  const fs::path census_dir = root / "census";
  fs::create_directories(census_dir);
  w.prepare(census_dir);
  const fs::path census_file = census_dir / "census.txt";
  const RunResult census =
      run_cli(opts.cli_path, w.command(census_dir),
              {{"VSTACK_FAILPOINT_CENSUS", census_file.string()}},
              (census_dir / "run.log").string());
  VS_REQUIRE(!census.signaled && census.exit_code == 0,
             "chaos explorer: " + w.name + " census run failed with " +
                 census.describe());
  VS_REQUIRE(w.artifact(census_dir) == reference,
             "chaos explorer: " + w.name +
                 " census run artifact differs from reference -- the census "
                 "channel must be observation-only");
  counts = parse_census(census_file);
  VS_REQUIRE(!counts.empty(),
             "chaos explorer: " + w.name +
                 " census saw no failpoint evaluations -- was the CLI built "
                 "with -DVSTACK_FAILPOINTS=OFF?");
  return reference;
}

}  // namespace

void ExplorerOptions::validate() const {
  VS_REQUIRE(!cli_path.empty(), "chaos explorer needs a CLI path");
  VS_REQUIRE(!work_dir.empty(), "chaos explorer needs a work dir");
  VS_REQUIRE(workload == "shard" || workload == "serve" || workload == "both",
             "workload must be shard|serve|both");
  VS_REQUIRE(mode == "crash" || mode == "err" || mode == "both",
             "mode must be crash|err|both");
  VS_REQUIRE(max_hits >= 1, "max_hits must be >= 1");
}

std::size_t ExplorerReport::passed() const {
  return static_cast<std::size_t>(
      std::count_if(schedules.begin(), schedules.end(),
                    [](const ScheduleResult& s) { return s.passed; }));
}

std::size_t ExplorerReport::failed() const {
  return schedules.size() - passed();
}

std::size_t ExplorerReport::fired() const {
  return static_cast<std::size_t>(
      std::count_if(schedules.begin(), schedules.end(),
                    [](const ScheduleResult& s) { return s.fired; }));
}

std::string ExplorerReport::summary() const {
  std::ostringstream oss;
  oss << schedules.size() << " schedules over " << census_points
      << " failpoints: " << passed() << " passed, " << failed() << " failed ("
      << fired() << " fired";
  if (skipped > 0) oss << "; " << skipped << " dropped by --max-schedules";
  oss << ")";
  return oss.str();
}

ExplorerReport run_explorer(const ExplorerOptions& options) {
  options.validate();
  VS_REQUIRE(fs::exists(options.cli_path),
             "chaos explorer: no CLI at '" + options.cli_path + "'");
  const fs::path root(options.work_dir);
  fs::create_directories(root);

  std::vector<std::string> workloads;
  if (options.workload == "both") workloads = {"shard", "serve"};
  else workloads = {options.workload};

  ExplorerReport report;
  std::set<std::string> all_points;
  for (const std::string& name : workloads) {
    const Workload w = make_workload(name);
    const fs::path wroot = root / name;
    std::map<std::string, std::uint64_t> counts;
    narrate(options.out, name + ": reference + census runs...");
    const std::string reference = run_baseline(options, w, wroot, counts);
    for (const auto& [point, hits] : counts) all_points.insert(point);

    // Build the schedule list: every (point, hit) crash up to max_hits,
    // then every (point, errno) at hit 1.
    std::vector<Schedule> schedules;
    if (options.mode != "err") {
      for (const auto& [point, hits] : counts) {
        const std::uint64_t top = std::min<std::uint64_t>(options.max_hits,
                                                          hits);
        for (std::uint64_t h = 1; h <= top; ++h) {
          schedules.push_back({point, h, "crash", true});
        }
      }
    }
    if (options.mode != "crash") {
      for (const auto& [point, hits] : counts) {
        for (const std::string& e : options.errnos) {
          schedules.push_back({point, 1, "err:" + e, false});
        }
      }
    }
    if (options.max_schedules > 0 &&
        schedules.size() > options.max_schedules) {
      report.skipped += schedules.size() - options.max_schedules;
      narrate(options.out,
              name + ": capping " + std::to_string(schedules.size()) +
                  " schedules at " + std::to_string(options.max_schedules) +
                  " (--max-schedules); dropped coverage is counted, not "
                  "silent");
      schedules.resize(options.max_schedules);
    }

    narrate(options.out, name + ": " + std::to_string(counts.size()) +
                             " failpoints, " +
                             std::to_string(schedules.size()) + " schedules");
    for (std::size_t i = 0; i < schedules.size(); ++i) {
      const Schedule& s = schedules[i];
      const fs::path dir =
          wroot / (std::to_string(i) + "_" + sanitize_dir_name(s.point) +
                   "@" + std::to_string(s.hit) + "_" +
                   sanitize_dir_name(s.action));
      const ScheduleResult r =
          run_schedule(options, w, s, dir, reference);
      narrate(options.out,
              "  [" + std::to_string(i + 1) + "/" +
                  std::to_string(schedules.size()) + "] " + s.point + "@" +
                  std::to_string(s.hit) + " " + s.action + ": " +
                  (r.passed ? "ok (" + r.detail + ")" : "FAIL " + r.detail));
      report.schedules.push_back(r);
    }
  }
  report.census_points = all_points.size();
  return report;
}

}  // namespace vstack::chaos
