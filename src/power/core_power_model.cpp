#include "power/core_power_model.h"

#include "common/error.h"
#include "common/units.h"

namespace vstack::power {

CorePowerModel::CorePowerModel(std::vector<BlockPower> blocks,
                               double nominal_vdd, double nominal_frequency)
    : blocks_(std::move(blocks)),
      nominal_vdd_(nominal_vdd),
      nominal_frequency_(nominal_frequency) {
  VS_REQUIRE(!blocks_.empty(), "power model needs at least one block");
  VS_REQUIRE(nominal_vdd_ > 0.0, "nominal vdd must be positive");
  VS_REQUIRE(nominal_frequency_ > 0.0, "nominal frequency must be positive");
  for (const auto& b : blocks_) {
    VS_REQUIRE(b.peak_dynamic >= 0.0 && b.leakage >= 0.0 && b.area > 0.0,
               "block power/area values must be non-negative (area positive)");
  }
}

CorePowerModel CorePowerModel::cortex_a9_like() {
  using units::mm2;
  using units::W;
  // Calibration targets (paper Sec. 4.1): a 16-core layer peaks at 7.6 W in
  // 44.12 mm^2 at 1 V / 1 GHz => per-core tile 0.475 W / 2.7575 mm^2.
  // Leakage is 10% of peak; the block split follows typical McPAT output
  // for an in-order-width-2 OoO core with NEON and an L2 slice.
  std::vector<BlockPower> blocks{
      {"fetch_l1i", 0.0700 * W, 0.0060 * W, 0.3800 * mm2},
      {"decode_rename", 0.0480 * W, 0.0040 * W, 0.2200 * mm2},
      {"int_alu", 0.0800 * W, 0.0060 * W, 0.3000 * mm2},
      {"fp_neon", 0.0720 * W, 0.0070 * W, 0.4200 * mm2},
      {"lsu_l1d", 0.0775 * W, 0.0070 * W, 0.4000 * mm2},
      {"l2_slice", 0.0500 * W, 0.0125 * W, 0.8600 * mm2},
      {"noc_clock", 0.0300 * W, 0.0050 * W, 0.1775 * mm2},
  };
  return CorePowerModel(std::move(blocks), 1.0, 1e9);
}

CorePowerModel CorePowerModel::dram_like() {
  using units::mm2;
  using units::W;
  // Per-tile: 1.5 W / 16 = 93.75 mW peak, ~40% of it leakage/refresh
  // (DRAM layers burn background power regardless of access activity).
  std::vector<BlockPower> blocks{
      {"banks", 0.0400 * W, 0.0250 * W, 2.2000 * mm2},
      {"row_buffers", 0.0100 * W, 0.0050 * W, 0.3000 * mm2},
      {"io_tsv_if", 0.00625 * W, 0.0075 * W, 0.2575 * mm2},
  };
  return CorePowerModel(std::move(blocks), 1.0, 1e9);
}

double CorePowerModel::peak_dynamic_power() const {
  double p = 0.0;
  for (const auto& b : blocks_) p += b.peak_dynamic;
  return p;
}

double CorePowerModel::leakage_power() const {
  double p = 0.0;
  for (const auto& b : blocks_) p += b.leakage;
  return p;
}

double CorePowerModel::peak_total_power() const {
  return peak_dynamic_power() + leakage_power();
}

double CorePowerModel::area() const {
  double a = 0.0;
  for (const auto& b : blocks_) a += b.area;
  return a;
}

double CorePowerModel::dynamic_power(double activity, double vdd,
                                     double frequency) const {
  VS_REQUIRE(activity >= 0.0 && activity <= 1.0, "activity must be in [0, 1]");
  VS_REQUIRE(vdd > 0.0 && frequency > 0.0, "vdd/frequency must be positive");
  const double v_scale = (vdd / nominal_vdd_) * (vdd / nominal_vdd_);
  const double f_scale = frequency / nominal_frequency_;
  return peak_dynamic_power() * activity * v_scale * f_scale;
}

double CorePowerModel::dynamic_power(double activity) const {
  return dynamic_power(activity, nominal_vdd_, nominal_frequency_);
}

double CorePowerModel::leakage_power(double vdd) const {
  VS_REQUIRE(vdd > 0.0, "vdd must be positive");
  return leakage_power() * (vdd / nominal_vdd_);
}

double CorePowerModel::total_power(double activity) const {
  return dynamic_power(activity) + leakage_power();
}

std::vector<double> CorePowerModel::block_powers(double activity) const {
  VS_REQUIRE(activity >= 0.0 && activity <= 1.0, "activity must be in [0, 1]");
  std::vector<double> out;
  out.reserve(blocks_.size());
  for (const auto& b : blocks_) {
    out.push_back(b.peak_dynamic * activity + b.leakage);
  }
  return out;
}

}  // namespace vstack::power
