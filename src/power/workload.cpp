#include "power/workload.h"

#include <algorithm>

#include "common/error.h"

namespace vstack::power {

void ApplicationProfile::validate() const {
  VS_REQUIRE(activity_lo >= 0.0 && activity_hi <= 1.0,
             "activity bounds must be within [0, 1]");
  VS_REQUIRE(activity_lo < activity_hi, "activity_lo must be < activity_hi");
  VS_REQUIRE(beta_alpha > 0.0 && beta_beta > 0.0,
             "beta parameters must be positive");
}

double ApplicationProfile::support_imbalance() const {
  return 1.0 - activity_lo / activity_hi;
}

std::vector<ApplicationProfile> parsec_profiles() {
  // Activity supports calibrated to the paper's Fig. 7: blackscholes is the
  // tightest (~10% max imbalance), x264 the widest (>90%), and the mean of
  // per-app maxima lands near 65%.  Ordered as a typical PARSEC listing.
  return {
      {"blackscholes", 0.72, 0.80, 1.5, 1.5},
      {"bodytrack", 0.30, 0.80, 1.5, 1.5},
      {"canneal", 0.08, 0.65, 1.5, 1.5},
      {"dedup", 0.12, 0.73, 1.5, 1.5},
      {"facesim", 0.18, 0.70, 1.5, 1.5},
      {"ferret", 0.21, 0.72, 1.5, 1.5},
      {"fluidanimate", 0.25, 0.78, 1.5, 1.5},
      {"freqmine", 0.43, 0.82, 1.5, 1.5},
      {"raytrace", 0.36, 0.78, 1.5, 1.5},
      {"streamcluster", 0.15, 0.68, 1.5, 1.5},
      {"swaptions", 0.55, 0.78, 1.5, 1.5},
      {"vips", 0.28, 0.75, 1.5, 1.5},
      {"x264", 0.06, 0.80, 1.5, 1.5},
  };
}

double sample_activity(const ApplicationProfile& profile, Rng& rng) {
  profile.validate();
  const double x = rng.beta(profile.beta_alpha, profile.beta_beta);
  return profile.activity_lo +
         (profile.activity_hi - profile.activity_lo) * x;
}

std::vector<double> sample_core_powers(const CorePowerModel& model,
                                       const ApplicationProfile& profile,
                                       std::size_t count, Rng& rng) {
  VS_REQUIRE(count > 0, "sample count must be positive");
  std::vector<double> powers;
  powers.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    powers.push_back(model.total_power(sample_activity(profile, rng)));
  }
  return powers;
}

double max_imbalance_ratio(const std::vector<double>& powers,
                           double leakage_power) {
  VS_REQUIRE(powers.size() >= 2, "need at least two samples");
  const auto [lo_it, hi_it] = std::minmax_element(powers.begin(), powers.end());
  const double dyn_lo = *lo_it - leakage_power;
  const double dyn_hi = *hi_it - leakage_power;
  VS_REQUIRE(dyn_lo >= -1e-12 && dyn_hi > 0.0,
             "samples must contain the leakage floor");
  return 1.0 - std::max(dyn_lo, 0.0) / dyn_hi;
}

std::vector<ApplicationPowerSummary> run_sampling_campaign(
    const CorePowerModel& model, std::size_t count, Rng& rng) {
  std::vector<ApplicationPowerSummary> out;
  for (const auto& profile : parsec_profiles()) {
    const auto powers = sample_core_powers(model, profile, count, rng);
    ApplicationPowerSummary s;
    s.name = profile.name;
    s.power = box_plot_stats(powers);
    s.max_imbalance = max_imbalance_ratio(powers, model.leakage_power());
    out.push_back(std::move(s));
  }
  return out;
}

double mean_max_imbalance(const std::vector<ApplicationPowerSummary>& s) {
  VS_REQUIRE(!s.empty(), "no application summaries");
  double sum = 0.0;
  for (const auto& app : s) sum += app.max_imbalance;
  return sum / static_cast<double>(s.size());
}

std::vector<double> interleaved_layer_activities(std::size_t layer_count,
                                                 double imbalance) {
  VS_REQUIRE(layer_count >= 1, "need at least one layer");
  VS_REQUIRE(imbalance >= 0.0 && imbalance <= 1.0,
             "imbalance must be in [0, 1]");
  std::vector<double> activities(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    activities[l] = (l % 2 == 0) ? 1.0 : 1.0 - imbalance;
  }
  return activities;
}

}  // namespace vstack::power
