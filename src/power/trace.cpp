#include "power/trace.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/stats.h"

namespace vstack::power {

double ActivityTrace::mean() const {
  return vstack::mean(activities);
}

double ActivityTrace::min() const {
  VS_REQUIRE(!activities.empty(), "empty trace");
  return *std::min_element(activities.begin(), activities.end());
}

double ActivityTrace::max() const {
  VS_REQUIRE(!activities.empty(), "empty trace");
  return *std::max_element(activities.begin(), activities.end());
}

ActivityTrace generate_trace(const ApplicationProfile& profile,
                             std::size_t samples, double correlation,
                             Rng& rng) {
  profile.validate();
  VS_REQUIRE(samples > 0, "trace needs at least one sample");
  VS_REQUIRE(correlation >= 0.0 && correlation < 1.0,
             "correlation must be in [0, 1)");

  ActivityTrace trace;
  trace.application = profile.name;
  trace.activities.reserve(samples);

  // AR(1) on the underlying Beta draw's latent uniform position: blend the
  // previous normalized position with a fresh draw, then clamp to the
  // support.  Marginals remain inside [lo, hi] with the calibrated spread.
  double position = rng.beta(profile.beta_alpha, profile.beta_beta);
  for (std::size_t s = 0; s < samples; ++s) {
    const double fresh = rng.beta(profile.beta_alpha, profile.beta_beta);
    position = correlation * position + (1.0 - correlation) * fresh;
    position = std::clamp(position, 0.0, 1.0);
    trace.activities.push_back(profile.activity_lo +
                               (profile.activity_hi - profile.activity_lo) *
                                   position);
  }
  return trace;
}

double lag1_autocorrelation(const ActivityTrace& trace) {
  const auto& x = trace.activities;
  VS_REQUIRE(x.size() >= 3, "autocorrelation needs at least three samples");
  const double m = vstack::mean(x);
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    den += (x[i] - m) * (x[i] - m);
    if (i + 1 < x.size()) num += (x[i] - m) * (x[i + 1] - m);
  }
  VS_REQUIRE(den > 0.0, "constant trace has undefined autocorrelation");
  return num / den;
}

}  // namespace vstack::power
