// Synthetic PARSEC-like workload model (the documented substitution for the
// paper's gem5 + PARSEC 2.0 statistical sampling, Sec. 5.2 / Fig. 7).
//
// The paper simulates one thousand 2k-cycle samples per application and
// computes each sample's average power with McPAT.  We do not have gem5
// traces, so each application is modeled as a bounded activity-factor
// distribution whose spread is calibrated to the paper's reported imbalance
// statistics: the best-case application (blackscholes) shows ~10% maximum
// imbalance across its samples, the worst exceeds 90%, and the mean of the
// per-application maxima is ~65%.
#pragma once

#include <string>
#include <vector>

#include "common/rng.h"
#include "common/stats.h"
#include "power/core_power_model.h"

namespace vstack::power {

/// Activity-factor distribution of one application: activity is drawn as
/// lo + (hi - lo) * Beta(alpha, beta).
struct ApplicationProfile {
  std::string name;
  double activity_lo = 0.0;
  double activity_hi = 1.0;
  double beta_alpha = 1.5;
  double beta_beta = 1.5;

  void validate() const;

  /// Worst-case imbalance ratio between two samples of this application,
  /// measured on dynamic power: 1 - lo/hi (the support-bound value).
  double support_imbalance() const;
};

/// The 13 PARSEC 2.0 applications with calibrated activity ranges.
std::vector<ApplicationProfile> parsec_profiles();

/// Number of statistical samples per application used by the paper.
inline constexpr std::size_t kPaperSampleCount = 1000;

/// Draw one activity factor.
double sample_activity(const ApplicationProfile& profile, Rng& rng);

/// Draw `count` per-sample core powers (dynamic + leakage) at nominal V/f.
std::vector<double> sample_core_powers(const CorePowerModel& model,
                                       const ApplicationProfile& profile,
                                       std::size_t count, Rng& rng);

/// Maximum workload-imbalance ratio across a set of power samples, defined
/// on the dynamic component as the paper does: the low-power sample consumes
/// X% less dynamic power than the high-power one.
double max_imbalance_ratio(const std::vector<double>& powers,
                           double leakage_power);

/// Summary of one application's sampling campaign (one Fig. 7 box).
struct ApplicationPowerSummary {
  std::string name;
  BoxPlotStats power;       // distribution of per-sample core power [W]
  double max_imbalance = 0.0;  // worst pairwise imbalance within the app
};

/// Run the full Fig. 7 campaign: every application, `count` samples each.
std::vector<ApplicationPowerSummary> run_sampling_campaign(
    const CorePowerModel& model, std::size_t count, Rng& rng);

/// Mean of the per-application maximum-imbalance ratios (the paper's 65%).
double mean_max_imbalance(const std::vector<ApplicationPowerSummary>& s);

/// Per-layer activity factors for the interleaved high-low pattern used in
/// Fig. 6 / Fig. 8: odd-indexed layers are fully active, even-indexed layers
/// consume `imbalance` lower dynamic power (imbalance = 1 -> idle).
std::vector<double> interleaved_layer_activities(std::size_t layer_count,
                                                 double imbalance);

}  // namespace vstack::power
