// Architecture-level power and area model ("mcpat-lite").
//
// The paper derives per-core power/area with McPAT for a 40 nm dual-core
// ARM Cortex-A9 at 1 GHz and replicates it into a 16-core layer with 7.6 W
// peak power and 44.12 mm^2 of area.  This module provides an analytical
// per-block model calibrated to exactly those published totals; the PDN
// study consumes only the resulting block power map, so matching the totals
// and a plausible block breakdown preserves the experiment.
#pragma once

#include <string>
#include <vector>

namespace vstack::power {

/// One architectural block of a core tile.
struct BlockPower {
  std::string name;
  double peak_dynamic = 0.0;  // [W] at nominal V/f and activity = 1
  double leakage = 0.0;       // [W] at nominal V and reference temperature
  double area = 0.0;          // [m^2]
};

/// Per-core power/area model with simple V/f scaling.
class CorePowerModel {
 public:
  CorePowerModel(std::vector<BlockPower> blocks, double nominal_vdd,
                 double nominal_frequency);

  /// The paper's core: ARM Cortex-A9-like tile (core + L2 slice) calibrated
  /// so a 16-core layer peaks at 7.6 W in 44.12 mm^2 at 1 V / 1 GHz.
  static CorePowerModel cortex_a9_like();

  /// A DRAM-like tile of the same footprint (the Micron HMC the paper cites
  /// as 3D-stacking precedent): same 2.7575 mm^2 area, ~1.5 W per 16-tile
  /// layer at full activity, leakage-dominated.  Used for memory-on-logic
  /// heterogeneous-stack studies.
  static CorePowerModel dram_like();

  const std::vector<BlockPower>& blocks() const { return blocks_; }
  double nominal_vdd() const { return nominal_vdd_; }
  double nominal_frequency() const { return nominal_frequency_; }

  double peak_dynamic_power() const;  // sum of block peaks [W]
  double leakage_power() const;       // at nominal V [W]
  double peak_total_power() const;    // dynamic + leakage [W]
  double area() const;                // [m^2]

  /// Dynamic power at an activity factor in [0, 1] with alpha-C-V^2-f
  /// scaling from the nominal point.
  double dynamic_power(double activity, double vdd, double frequency) const;
  double dynamic_power(double activity) const;

  /// Leakage scales ~linearly with V around the nominal point.
  double leakage_power(double vdd) const;

  /// Total core power at an activity factor (nominal V/f).
  double total_power(double activity) const;

  /// Per-block total power at an activity factor (nominal V/f); same order
  /// as blocks().
  std::vector<double> block_powers(double activity) const;

 private:
  std::vector<BlockPower> blocks_;
  double nominal_vdd_;
  double nominal_frequency_;
};

}  // namespace vstack::power
