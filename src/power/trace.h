// Time-correlated activity traces.
//
// The statistical sampling of Fig. 7 treats samples as independent; real
// applications have phase behaviour, so consecutive 2k-cycle windows are
// correlated.  Traces here follow an AR(1) random walk inside the
// application's activity support, which preserves the marginal spread
// (what Fig. 7 calibrates) while adding a tunable correlation time.
#pragma once

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "power/workload.h"

namespace vstack::power {

struct ActivityTrace {
  std::string application;
  double sample_period = 2e-6;  // [s]; 2k cycles at 1 GHz
  std::vector<double> activities;

  double mean() const;
  double min() const;
  double max() const;
};

/// Generate a trace of `samples` windows.  `correlation` in [0, 1) is the
/// AR(1) coefficient between consecutive windows (0 = the independent
/// sampling of Fig. 7).
ActivityTrace generate_trace(const ApplicationProfile& profile,
                             std::size_t samples, double correlation,
                             Rng& rng);

/// Empirical lag-1 autocorrelation of a trace (for tests/analysis).
double lag1_autocorrelation(const ActivityTrace& trace);

}  // namespace vstack::power
