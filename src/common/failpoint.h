// Deterministic failpoint injection for the durable-I/O protocols.
//
// A failpoint is a named hook compiled into a declared crash/IO-failure
// window (`VS_FAILPOINT("durable_file.atomic.before_rename")`) or wrapped
// around the syscall whose failure the window handles
// (`VS_FAILPOINT_SYSCALL("durable_file.append.fsync", ::fsync(fd))`).
// In a normal run every hook is a relaxed atomic load and nothing else.
// Activated via the environment (or configure() in tests), a hook can
//
//   crash      _exit(137) at the matching hit -- the deterministic stand-in
//              for the random SIGKILLs of the chaos drills,
//   err:ERRNO  make the wrapped syscall fail with an injected errno
//              (EIO, ENOSPC, EINTR, ...) WITHOUT performing it, driving the
//              real error-handling path at the call site, or
//   delay:MS   sleep, widening a race window for stress runs.
//
// Spec grammar (VSTACK_FAILPOINTS, ';'-separated):
//
//   name=action[@N|@N+]
//   VSTACK_FAILPOINTS="lease.claim.before_rename=err:EIO@2;manifest.commit.after_append=crash"
//
// `@N` fires on exactly the Nth evaluation of the point in this process
// (1-based, the default is @1); `@N+` fires on the Nth and every later
// one.  Hit counters are per process.
//
// Two auxiliary environment channels serve the crash-schedule explorer
// (docs/chaos_testing.md):
//
//   VSTACK_FAILPOINT_CENSUS=FILE   append one line (the point name) per
//     evaluation, O_APPEND so concurrent processes interleave whole lines.
//     A census run under a workload enumerates every reachable
//     (failpoint, hit-index) pair -- the schedule space the explorer then
//     covers exhaustively.
//
//   VSTACK_FAILPOINTS_ONCE=DIR     crash/err actions fire at most once per
//     (name, hit) ACROSS every process sharing DIR: the firing process
//     creates `DIR/<name>@<N>.fired` with O_EXCL first, and a process that
//     finds the marker taken skips the action.  Without this, a restarted
//     worker would re-crash at its own Nth hit forever and a crash schedule
//     could never be recovered from.
//
// With CMake -DVSTACK_FAILPOINTS=OFF every macro compiles to nothing (the
// syscall wrapper to the bare call) and results are bit-identical to an
// instrumented build -- the same contract telemetry honours.
#pragma once

#include <string>
#include <vector>

#ifndef VSTACK_FAILPOINTS_ENABLED
#define VSTACK_FAILPOINTS_ENABLED 1
#endif

#if VSTACK_FAILPOINTS_ENABLED
#include <atomic>
#endif

namespace vstack::failpoint {

/// Introspection row for status() -- configured actions plus every point
/// evaluated since the last clear() while injection was active.
struct PointStatus {
  std::string name;
  std::string action;        // original action text ("crash@2"); "" = none
  std::uint64_t hits = 0;    // evaluations in this process
  std::uint64_t fired = 0;   // times the action actually triggered
};

#if VSTACK_FAILPOINTS_ENABLED

/// Replace the active action set with `spec` (the VSTACK_FAILPOINTS
/// grammar; "" deactivates everything).  Throws vstack::Error on a
/// malformed spec.  Counters of surviving points are preserved.
void configure(const std::string& spec);

/// Enable ("" disables) the census channel / the once-marker directory;
/// test-side equivalents of the environment variables.
void configure_census(const std::string& path);
void configure_once_dir(const std::string& dir);

/// Drop every action, counter, census sink, and once-dir (test isolation).
/// The environment is NOT re-read afterwards.
void clear();

/// True when the library was compiled with injection support.
constexpr bool compiled_in() { return true; }

/// Snapshot of every known point, sorted by name.
std::vector<PointStatus> status();

/// Evaluations of `name` in this process (0 when never hit).
std::uint64_t hit_count(const std::string& name);

namespace detail {

// -1 uninitialized (environment not read yet), 0 inactive, 1 active.
// Inactive is the common case and costs one relaxed load per hook.
extern std::atomic<int> g_mode;

/// Slow path: count the hit, census-log it, and return the errno to inject
/// (0 for none).  Crash actions _exit(137) inside; delay actions sleep.
int evaluate(const char* name);

/// VS_FAILPOINT body: throws vstack::Error on an injected errno (a marker
/// site has no syscall to fail, so the error surfaces as an exception).
void trip(const char* name);

/// VS_FAILPOINT_SYSCALL body: when an errno is injected, set errno and
/// return true so the wrapper skips the real syscall and yields -1.
bool fail_errno(const char* name);

}  // namespace detail

#else  // failpoints compiled out: every entry point collapses to a no-op

inline void configure(const std::string&) {}
inline void configure_census(const std::string&) {}
inline void configure_once_dir(const std::string&) {}
inline void clear() {}
constexpr bool compiled_in() { return false; }
inline std::vector<PointStatus> status() { return {}; }
inline std::uint64_t hit_count(const std::string&) { return 0; }

#endif  // VSTACK_FAILPOINTS_ENABLED

}  // namespace vstack::failpoint

/// Marker failpoint: a declared crash window with no syscall of its own.
/// crash/delay act directly; an injected errno surfaces as vstack::Error.
#if VSTACK_FAILPOINTS_ENABLED
#define VS_FAILPOINT(name)                                      \
  do {                                                          \
    if (::vstack::failpoint::detail::g_mode.load(               \
            std::memory_order_relaxed) != 0) {                  \
      ::vstack::failpoint::detail::trip(name);                  \
    }                                                           \
  } while (false)

/// Syscall failpoint: evaluates to `call`'s result normally; with an err
/// action active, skips the real syscall and evaluates to -1 with errno set
/// to the injected value -- driving the call site's genuine error path.
#define VS_FAILPOINT_SYSCALL(name, call)                        \
  ((::vstack::failpoint::detail::g_mode.load(                   \
        std::memory_order_relaxed) != 0 &&                      \
    ::vstack::failpoint::detail::fail_errno(name))              \
       ? -1                                                     \
       : (call))

#else

#define VS_FAILPOINT(name) \
  do {                     \
  } while (false)
#define VS_FAILPOINT_SYSCALL(name, call) (call)

#endif  // VSTACK_FAILPOINTS_ENABLED
