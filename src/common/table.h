// Aligned text tables.
//
// Every bench binary regenerates one of the paper's tables or figures as a
// text table; this helper keeps their output format consistent so
// EXPERIMENTS.md can quote them directly.
#pragma once

#include <ostream>
#include <string>
#include <vector>

namespace vstack {

/// Builds an aligned, pipe-separated text table row by row.
class TextTable {
 public:
  /// Begin a table with the given column headers.
  explicit TextTable(std::vector<std::string> headers);

  /// Append a row of already-formatted cells; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format a double with the given precision.
  static std::string num(double value, int precision = 3);

  /// Convenience: format a percentage ("12.3%") from a fraction.
  static std::string percent(double fraction, int precision = 1);

  /// Render the table with a header separator.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace vstack
