#include "common/error.h"

#include <sstream>

namespace vstack::detail {

void throw_error(const char* expr, const char* file, int line,
                 const std::string& message) {
  std::ostringstream oss;
  oss << "vstack error: " << message << " [" << expr << " at " << file << ":"
      << line << "]";
  throw Error(oss.str());
}

}  // namespace vstack::detail
