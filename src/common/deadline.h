// Cooperative cancellation + wall-clock deadline token, shared by every
// layer that can run away: the la Krylov/dense solvers, the sim step
// controller, the core TaskPool, and the service request executor.
//
// A Deadline is a cheap value type: copies share one state block, so a token
// handed to CampaignOptions.execution propagates by plain options copying
// down into every solver iteration loop.  Checking costs one atomic load
// (plus a steady_clock read when a time limit is armed); cancel() is an
// atomic store and therefore safe to call from a signal handler (the
// shutdown path in common/shutdown.h relies on this).
//
// Three shapes:
//   Deadline()                 -- unlimited: never expires, cancel() no-op.
//   Deadline::cancellable()    -- no time limit, but cancel() fires it.
//   Deadline::after(s)         -- expires `s` seconds from now (and is also
//                                 cancellable).
//   Deadline::limited_by(d, s) -- after(s), but ALSO expired whenever the
//                                 parent `d` is (service stop token + per-
//                                 request deadline composition).
//
// Time base: std::chrono::steady_clock, read directly.  This is a
// control-plane check, not a reported measurement -- every wall_seconds in
// results still comes from telemetry::monotonic_seconds() (which common
// cannot link against; telemetry sits above it).
#pragma once

#include <atomic>
#include <memory>

namespace vstack {

class Deadline {
 public:
  /// Unlimited token: expired() is always false, cancel() does nothing.
  /// This is the default everywhere, so existing call sites pay one null
  /// check and nothing else.
  Deadline() = default;

  /// No time limit, but cancel() (from any thread or a signal handler)
  /// expires it.
  static Deadline cancellable();

  /// Expires `seconds` from now (steady clock); also cancellable.
  /// `seconds` <= 0 creates an already-expired token.
  static Deadline after(double seconds);

  /// after(seconds) that is additionally expired whenever `parent` is:
  /// the sooner of the two.  `seconds` <= 0 means "no own time limit" --
  /// the result simply mirrors the parent.
  static Deadline limited_by(const Deadline& parent, double seconds);

  /// Fire the token.  No-op on an unlimited (default) token.
  void cancel() const;

  /// True when cancel() was called (directly or on the parent chain).
  bool cancelled() const;

  /// True when cancelled or past the time limit.  The hot-path check.
  bool expired() const;

  /// Seconds until the time limit: +inf when unlimited, 0 when expired.
  double remaining_seconds() const;

  /// True for the default-constructed token (no state, never expires).
  bool unlimited() const { return state_ == nullptr; }

 private:
  struct State {
    std::atomic<bool> cancelled{false};
    double deadline_s = 0.0;  // steady-clock stamp; infinity = no limit
    std::shared_ptr<const State> parent;  // expired when the parent is
  };

  static bool state_expired(const State& s);

  std::shared_ptr<State> state_;
};

}  // namespace vstack

namespace vstack::core {
// The runner layer talks about core::Deadline (it rides ExecutionPolicy);
// the token itself lives in common so la/sim can check it too.
using ::vstack::Deadline;
}  // namespace vstack::core
