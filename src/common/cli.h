// Minimal command-line argument parser for the vstack tools.
//
// Grammar: [subcommand] [positional...] [--key=value | --flag]...
// Unknown options are an error (catches typos in experiment scripts).
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace vstack {

class CliArgs {
 public:
  /// Parse argv.  `known_options` lists the accepted --keys (without the
  /// leading dashes); an empty list accepts anything.
  CliArgs(int argc, const char* const* argv,
          std::vector<std::string> known_options = {});

  const std::string& program() const { return program_; }

  /// First positional argument (conventionally the subcommand), or "".
  std::string subcommand() const;

  const std::vector<std::string>& positionals() const { return positionals_; }

  bool has(const std::string& key) const;

  /// Typed getters with defaults; throw vstack::Error on malformed values.
  std::string get_string(const std::string& key,
                         const std::string& fallback) const;
  double get_double(const std::string& key, double fallback) const;
  std::size_t get_size(const std::string& key, std::size_t fallback) const;
  bool get_bool(const std::string& key, bool fallback = false) const;

 private:
  std::string program_;
  std::vector<std::string> positionals_;
  std::map<std::string, std::string> options_;
};

}  // namespace vstack
