// Error handling for the vstack library.
//
// All precondition/postcondition violations throw vstack::Error with a
// message that includes the failing expression and source location.  The
// library never calls abort()/exit(); callers decide how to handle failures.
#pragma once

#include <stdexcept>
#include <string>

namespace vstack {

/// Exception type thrown on any contract violation or model error.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

namespace detail {
[[noreturn]] void throw_error(const char* expr, const char* file, int line,
                              const std::string& message);
}  // namespace detail

}  // namespace vstack

/// Precondition / invariant check.  Always enabled (models are cheap relative
/// to the solves they feed; silent bad inputs are far more expensive).
#define VS_REQUIRE(expr, message)                                         \
  do {                                                                    \
    if (!(expr)) {                                                        \
      ::vstack::detail::throw_error(#expr, __FILE__, __LINE__, (message)); \
    }                                                                     \
  } while (false)

/// Unconditional failure with a message.
#define VS_FAIL(message) \
  ::vstack::detail::throw_error("unreachable", __FILE__, __LINE__, (message))
