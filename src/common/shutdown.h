// Process-wide graceful-shutdown plumbing for the CLI tools and the
// service daemon.
//
// install_shutdown_handlers() registers SIGINT/SIGTERM handlers that do the
// only async-signal-safe thing possible: cancel the process-wide shutdown
// token (an atomic store).  Everything cooperative then unwinds on its own
// -- TaskPool stops claiming chunks, the step controller truncates the
// in-flight transient, the campaign manifest keeps its committed prefix --
// and the command exits with kInterruptExitCode instead of dying mid-write.
//
// The handlers are installed at most once per process; calling
// install_shutdown_handlers() again is a no-op.
#pragma once

#include "common/deadline.h"

namespace vstack {

/// Exit code for a batch command interrupted by SIGINT/SIGTERM (0 ok,
/// 1 usage, 2 truncated, 3 bad outcome are already taken by vstack_cli).
inline constexpr int kInterruptExitCode = 4;

/// Register SIGINT/SIGTERM handlers that cancel shutdown_token().
/// Idempotent; safe to call from multiple subcommands.
void install_shutdown_handlers();

/// The process-wide cancellation token the handlers fire.  Valid (and the
/// same token) whether or not handlers were installed, so runners can take
/// it unconditionally.
Deadline shutdown_token();

/// True once a shutdown signal arrived.
bool shutdown_requested();

/// The signal that arrived (SIGINT/SIGTERM), or 0.
int shutdown_signal();

/// Re-arm with a fresh token and clear the recorded signal.  Test isolation
/// only -- not safe against a concurrently delivered signal.
void reset_shutdown_for_tests();

}  // namespace vstack
