#include "common/rng.h"

#include <cmath>

#include "common/error.h"

namespace vstack {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  // Expand the seed through splitmix64 as recommended by the xoshiro authors;
  // guarantees a nonzero state for any seed.
  std::uint64_t s = seed;
  for (auto& word : state_) word = splitmix64(s);
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  VS_REQUIRE(lo <= hi, "uniform(lo, hi) requires lo <= hi");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  VS_REQUIRE(n > 0, "uniform_index requires n > 0");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = n * (~0ull / n);
  std::uint64_t x;
  do {
    x = next_u64();
  } while (x >= limit);
  return x % n;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; u1 strictly positive so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  VS_REQUIRE(stddev >= 0.0, "normal stddev must be non-negative");
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::gamma(double shape) {
  VS_REQUIRE(shape > 0.0, "gamma shape must be positive");
  // Marsaglia-Tsang for shape >= 1; boost for shape < 1.
  if (shape < 1.0) {
    const double u = uniform();
    return gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = normal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

double Rng::beta(double alpha, double beta_param) {
  VS_REQUIRE(alpha > 0.0 && beta_param > 0.0,
             "beta distribution parameters must be positive");
  const double x = gamma(alpha);
  const double y = gamma(beta_param);
  return x / (x + y);
}

}  // namespace vstack
