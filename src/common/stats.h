// Descriptive statistics used by the workload model and the benches.
#pragma once

#include <cstddef>
#include <vector>

namespace vstack {

/// Five-number summary plus mean; matches the paper's Fig. 7 box plot
/// (whiskers at min/max, box at 25th/75th percentile, center at median).
struct BoxPlotStats {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;
};

/// Linear-interpolated percentile of a sample, q in [0, 100].
/// The input need not be sorted.  Throws on an empty sample.
double percentile(std::vector<double> samples, double q);

/// Arithmetic mean.  Throws on an empty sample.
double mean(const std::vector<double>& samples);

/// Unbiased sample standard deviation; returns 0 for n < 2.
double stddev(const std::vector<double>& samples);

/// Compute the full box-plot summary in one pass over a sorted copy.
BoxPlotStats box_plot_stats(std::vector<double> samples);

/// Root-mean-square of a sample.  Throws on an empty sample.
double rms(const std::vector<double>& samples);

}  // namespace vstack
