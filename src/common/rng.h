// Deterministic random number generation.
//
// All stochastic parts of the library (workload sampling, Monte-Carlo EM
// studies, property tests) draw from this generator so that every run of a
// bench or test is reproducible from a single seed.
#pragma once

#include <cstdint>
#include <vector>

namespace vstack {

/// xoshiro256** PRNG.  Small, fast, high-quality; deterministic across
/// platforms (unlike std::default_random_engine) which matters because the
/// benches print numbers that EXPERIMENTS.md records.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  /// Next raw 64-bit value.
  std::uint64_t next_u64();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal deviate (Box-Muller with caching).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Lognormal deviate: exp(N(mu, sigma)).
  double lognormal(double mu, double sigma);

  /// Beta(alpha, beta) deviate via Johnk/gamma method; used for bounded
  /// activity factors in the workload model.
  double beta(double alpha, double beta);

  /// Shuffle a vector in place (Fisher-Yates).
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_index(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  double gamma(double shape);

  std::uint64_t state_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace vstack
