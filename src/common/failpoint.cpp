#include "common/failpoint.h"

#if VSTACK_FAILPOINTS_ENABLED

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/error.h"

namespace vstack::failpoint {

namespace {

enum class ActionKind { Crash, Err, Delay };

struct Action {
  ActionKind kind = ActionKind::Crash;
  int err = 0;              // errno to inject (Err)
  double delay_ms = 0.0;    // sleep (Delay)
  std::uint64_t at = 1;     // 1-based hit index the action arms on
  bool persistent = false;  // "@N+": fire on hit N and every later one
  std::string text;         // original spec fragment, for status()
};

struct Point {
  std::uint64_t hits = 0;
  std::uint64_t fired = 0;
  bool has_action = false;
  Action action;
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  bool env_loaded = false;
  std::string census_path;
  int census_fd = -1;  // lazily opened O_APPEND sink
  std::string once_dir;
};

Registry& registry() {
  static Registry* r = new Registry();  // leaked: outlives static dtors
  return *r;
}

const struct {
  const char* name;
  int value;
} kErrnoNames[] = {
    {"EIO", EIO},       {"ENOSPC", ENOSPC}, {"EINTR", EINTR},
    {"ENOENT", ENOENT}, {"EACCES", EACCES}, {"EEXIST", EEXIST},
    {"EMFILE", EMFILE}, {"EROFS", EROFS},
};

int parse_errno(const std::string& text, const std::string& spec) {
  for (const auto& e : kErrnoNames) {
    if (text == e.name) return e.value;
  }
  // Numeric fallback for errnos outside the table.
  char* end = nullptr;
  const long v = std::strtol(text.c_str(), &end, 10);
  VS_REQUIRE(end && *end == '\0' && v > 0,
             "failpoint spec '" + spec + "': unknown errno '" + text +
                 "' (use EIO/ENOSPC/EINTR/... or a positive number)");
  return static_cast<int>(v);
}

const char* errno_label(int err) {
  for (const auto& e : kErrnoNames) {
    if (err == e.value) return e.name;
  }
  return nullptr;
}

/// Parse one `name=action[@N|@N+]` fragment.
std::pair<std::string, Action> parse_fragment(const std::string& frag) {
  const auto eq = frag.find('=');
  VS_REQUIRE(eq != std::string::npos && eq > 0,
             "failpoint spec '" + frag + "': expected name=action");
  const std::string name = frag.substr(0, eq);
  std::string rest = frag.substr(eq + 1);

  Action action;
  action.text = rest;
  const auto at = rest.rfind('@');
  if (at != std::string::npos) {
    std::string count = rest.substr(at + 1);
    rest = rest.substr(0, at);
    if (!count.empty() && count.back() == '+') {
      action.persistent = true;
      count.pop_back();
    }
    char* end = nullptr;
    const unsigned long long n = std::strtoull(count.c_str(), &end, 10);
    VS_REQUIRE(!count.empty() && end && *end == '\0' && n >= 1,
               "failpoint spec '" + frag + "': @N needs a hit index >= 1");
    action.at = n;
  }

  std::string arg;
  const auto colon = rest.find(':');
  if (colon != std::string::npos) {
    arg = rest.substr(colon + 1);
    rest = rest.substr(0, colon);
  }
  if (rest == "crash") {
    VS_REQUIRE(arg.empty(), "failpoint spec '" + frag +
                                "': crash takes no ':' argument");
    action.kind = ActionKind::Crash;
  } else if (rest == "err") {
    action.kind = ActionKind::Err;
    action.err = parse_errno(arg, frag);
  } else if (rest == "delay") {
    action.kind = ActionKind::Delay;
    char* end = nullptr;
    action.delay_ms = std::strtod(arg.c_str(), &end);
    VS_REQUIRE(!arg.empty() && end && *end == '\0' && action.delay_ms >= 0.0,
               "failpoint spec '" + frag + "': delay:MS needs a number");
  } else {
    VS_FAIL("failpoint spec '" + frag + "': unknown action '" + rest +
            "' (crash|err:ERRNO|delay:MS)");
  }
  return {name, action};
}

/// Recompute the fast-path gate after any configuration change.  Counters
/// keep accumulating while a census sink is active even with no actions.
void refresh_mode_locked(Registry& r) {
  bool active = !r.census_path.empty();
  for (const auto& [name, p] : r.points) {
    active = active || p.has_action;
  }
  detail::g_mode.store(active ? 1 : 0, std::memory_order_relaxed);
}

void load_env_locked(Registry& r);

/// Record one census line ("name\n") with a single O_APPEND write so lines
/// from concurrent processes interleave whole.  Raw syscalls only -- the
/// census channel must not re-enter the instrumented durable-file layer.
void census_locked(Registry& r, const char* name) {
  if (r.census_path.empty()) return;
  if (r.census_fd < 0) {
    r.census_fd = ::open(r.census_path.c_str(),
                         O_WRONLY | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
    if (r.census_fd < 0) return;  // census is best-effort observability
  }
  std::string line(name);
  line += '\n';
  // A short write can only tear the census (observability), never the
  // workload; ignore it like any other census failure.
  (void)!::write(r.census_fd, line.data(), line.size());
}

/// Cross-process single-fire gate: true when this process owns the
/// (name, hit) marker -- or when no once-dir is configured (always fire).
bool claim_once_locked(Registry& r, const std::string& name,
                       std::uint64_t hit) {
  if (r.once_dir.empty()) return true;
  const std::string marker =
      r.once_dir + "/" + name + "@" + std::to_string(hit) + ".fired";
  const int fd =
      ::open(marker.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) return false;  // taken (or once-dir unusable): do not fire
  ::close(fd);
  return true;
}

void load_env_locked(Registry& r) {
  if (r.env_loaded) return;
  r.env_loaded = true;
  if (const char* census = std::getenv("VSTACK_FAILPOINT_CENSUS")) {
    if (*census) r.census_path = census;
  }
  if (const char* once = std::getenv("VSTACK_FAILPOINTS_ONCE")) {
    if (*once) r.once_dir = once;
  }
  if (const char* spec = std::getenv("VSTACK_FAILPOINTS")) {
    std::string s(spec);
    std::size_t pos = 0;
    while (pos <= s.size()) {
      const auto semi = s.find(';', pos);
      const std::string frag =
          s.substr(pos, semi == std::string::npos ? std::string::npos
                                                  : semi - pos);
      if (!frag.empty()) {
        auto [name, action] = parse_fragment(frag);
        Point& p = r.points[name];
        p.has_action = true;
        p.action = action;
      }
      if (semi == std::string::npos) break;
      pos = semi + 1;
    }
  }
  refresh_mode_locked(r);
}

}  // namespace

namespace detail {

std::atomic<int> g_mode{-1};  // -1 until the environment has been read

int evaluate(const char* name) {
  double delay_ms = -1.0;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    load_env_locked(r);
    if (g_mode.load(std::memory_order_relaxed) == 0) return 0;

    Point& p = r.points[name];
    ++p.hits;
    census_locked(r, name);
    if (!p.has_action) return 0;

    const Action& a = p.action;
    const bool armed =
        a.persistent ? p.hits >= a.at : p.hits == a.at;
    if (!armed) return 0;
    if (!claim_once_locked(r, name, p.hits)) return 0;
    ++p.fired;

    switch (a.kind) {
      case ActionKind::Crash:
        // Flush the census so the fatal hit itself is enumerable, then die
        // the way a SIGKILL would -- no unwinding, no atexit, exit 137.
        if (r.census_fd >= 0) ::fsync(r.census_fd);
        ::_exit(137);
      case ActionKind::Err:
        return a.err;
      case ActionKind::Delay:
        delay_ms = a.delay_ms;
        break;
    }
  }
  // Sleep outside the registry lock so a delay never serializes other
  // threads' failpoint evaluations.
  if (delay_ms > 0.0) {
    std::this_thread::sleep_for(std::chrono::duration<double>(delay_ms * 1e-3));
  }
  return 0;
}

void trip(const char* name) {
  const int err = evaluate(name);
  if (err == 0) return;
  const char* known = errno_label(err);
  const std::string label = known ? known : std::to_string(err);
  std::ostringstream oss;
  oss << "failpoint '" << name << "': injected " << label << " ("
      << std::strerror(err) << ")";
  throw Error(oss.str());
}

bool fail_errno(const char* name) {
  const int err = evaluate(name);
  if (err == 0) return false;
  errno = err;
  return true;
}

}  // namespace detail

void configure(const std::string& spec) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;  // explicit configuration overrides the environment
  for (auto& [name, p] : r.points) p.has_action = false;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const auto semi = spec.find(';', pos);
    const std::string frag =
        spec.substr(pos, semi == std::string::npos ? std::string::npos
                                                   : semi - pos);
    if (!frag.empty()) {
      auto [name, action] = parse_fragment(frag);
      Point& p = r.points[name];
      p.has_action = true;
      p.action = action;
    }
    if (semi == std::string::npos) break;
    pos = semi + 1;
  }
  refresh_mode_locked(r);
}

void configure_census(const std::string& path) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;
  if (r.census_fd >= 0) {
    ::close(r.census_fd);
    r.census_fd = -1;
  }
  r.census_path = path;
  refresh_mode_locked(r);
}

void configure_once_dir(const std::string& dir) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;
  r.once_dir = dir;
}

void clear() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.env_loaded = true;  // a cleared registry stays cleared
  r.points.clear();
  r.census_path.clear();
  r.once_dir.clear();
  if (r.census_fd >= 0) {
    ::close(r.census_fd);
    r.census_fd = -1;
  }
  refresh_mode_locked(r);
}

std::vector<PointStatus> status() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<PointStatus> out;
  out.reserve(r.points.size());
  for (const auto& [name, p] : r.points) {
    PointStatus s;
    s.name = name;
    s.action = p.has_action ? p.action.text : "";
    s.hits = p.hits;
    s.fired = p.fired;
    out.push_back(std::move(s));
  }
  return out;
}

std::uint64_t hit_count(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const auto it = r.points.find(name);
  return it == r.points.end() ? 0 : it->second.hits;
}

}  // namespace vstack::failpoint

#endif  // VSTACK_FAILPOINTS_ENABLED
