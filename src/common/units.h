// Unit helpers and physical constants.
//
// The library works in SI base units throughout: volts, amperes, ohms,
// farads, seconds, meters, watts, kelvin.  These helpers exist so that
// configuration code can say `200 * units::um` instead of `200e-6` and a
// reviewer can check it against the paper's Table 1 at a glance.
#pragma once

namespace vstack::units {

// Length.
inline constexpr double m = 1.0;
inline constexpr double mm = 1e-3;
inline constexpr double um = 1e-6;
inline constexpr double nm = 1e-9;

// Area.
inline constexpr double mm2 = 1e-6;
inline constexpr double um2 = 1e-12;

// Resistance.
inline constexpr double Ohm = 1.0;
inline constexpr double mOhm = 1e-3;

// Capacitance.
inline constexpr double F = 1.0;
inline constexpr double uF = 1e-6;
inline constexpr double nF = 1e-9;
inline constexpr double pF = 1e-12;
inline constexpr double fF = 1e-15;

// Time / frequency.
inline constexpr double s = 1.0;
inline constexpr double ms = 1e-3;
inline constexpr double us = 1e-6;
inline constexpr double ns = 1e-9;
inline constexpr double ps = 1e-12;
inline constexpr double Hz = 1.0;
inline constexpr double kHz = 1e3;
inline constexpr double MHz = 1e6;
inline constexpr double GHz = 1e9;

// Electrical.
inline constexpr double V = 1.0;
inline constexpr double mV = 1e-3;
inline constexpr double A = 1.0;
inline constexpr double mA = 1e-3;
inline constexpr double uA = 1e-6;
inline constexpr double W = 1.0;
inline constexpr double mW = 1e-3;

}  // namespace vstack::units

namespace vstack::constants {

/// Boltzmann constant [eV/K]; Black's equation uses activation energy in eV.
inline constexpr double kBoltzmannEv = 8.617333262e-5;

/// Resistivity of electroplated copper interconnect at operating temperature
/// [Ohm*m].  (Bulk Cu is 1.68e-8 at 20C; on-chip wires run hotter and have
/// surface/grain scattering.)
inline constexpr double kCopperResistivity = 2.2e-8;

/// Thermal conductivity of silicon [W/(m*K)] near 350 K.
inline constexpr double kSiliconThermalConductivity = 120.0;

/// Thermal conductivity of a thermal-interface / bonding layer [W/(m*K)].
inline constexpr double kTimThermalConductivity = 4.0;

/// Celsius <-> Kelvin offset.
inline constexpr double kCelsiusOffset = 273.15;

}  // namespace vstack::constants
