#include "common/cli.h"

#include <algorithm>

#include "common/error.h"

namespace vstack {

CliArgs::CliArgs(int argc, const char* const* argv,
                 std::vector<std::string> known_options) {
  VS_REQUIRE(argc >= 1, "argv must contain the program name");
  program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      const std::string body = arg.substr(2);
      VS_REQUIRE(!body.empty(), "empty option '--'");
      const auto eq = body.find('=');
      const std::string key =
          (eq == std::string::npos) ? body : body.substr(0, eq);
      const std::string value =
          (eq == std::string::npos) ? "true" : body.substr(eq + 1);
      if (!known_options.empty()) {
        VS_REQUIRE(std::find(known_options.begin(), known_options.end(),
                             key) != known_options.end(),
                   "unknown option '--" + key + "'");
      }
      VS_REQUIRE(options_.emplace(key, value).second,
                 "duplicate option '--" + key + "'");
    } else {
      positionals_.push_back(arg);
    }
  }
}

std::string CliArgs::subcommand() const {
  return positionals_.empty() ? "" : positionals_.front();
}

bool CliArgs::has(const std::string& key) const {
  return options_.count(key) > 0;
}

std::string CliArgs::get_string(const std::string& key,
                                const std::string& fallback) const {
  const auto it = options_.find(key);
  return it == options_.end() ? fallback : it->second;
}

double CliArgs::get_double(const std::string& key, double fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  try {
    std::size_t used = 0;
    const double v = std::stod(it->second, &used);
    VS_REQUIRE(used == it->second.size(),
               "trailing characters in numeric option --" + key);
    return v;
  } catch (const Error&) {
    throw;
  } catch (const std::exception&) {
    VS_FAIL("option --" + key + " expects a number, got '" + it->second +
            "'");
  }
}

std::size_t CliArgs::get_size(const std::string& key,
                              std::size_t fallback) const {
  const double v = get_double(key, static_cast<double>(fallback));
  VS_REQUIRE(v >= 0.0 && v == static_cast<double>(static_cast<std::size_t>(v)),
             "option --" + key + " expects a non-negative integer");
  return static_cast<std::size_t>(v);
}

bool CliArgs::get_bool(const std::string& key, bool fallback) const {
  const auto it = options_.find(key);
  if (it == options_.end()) return fallback;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  VS_FAIL("option --" + key + " expects a boolean, got '" + v + "'");
}

}  // namespace vstack
