// Minimal leveled logging to stderr.
//
// The solvers use this to report convergence diagnostics without polluting
// the bench tables printed on stdout.  Off by default above `Warn`.
//
// Thread safety: the level is atomic and every message is assembled into a
// single string, then written under one sink mutex -- concurrent worker
// threads (core::TaskPool) never interleave characters within a line.
// Workers announce themselves with set_log_worker_id(); their messages are
// tagged "[vstack:LEVEL:w<id>]" so a parallel campaign's solver diagnostics
// stay attributable.
#pragma once

#include <sstream>
#include <string>

namespace vstack {

enum class LogLevel { Debug = 0, Info = 1, Warn = 2, Error = 3, Off = 4 };

/// Global threshold; messages below it are dropped.  Atomic: safe to read
/// from worker threads while another thread adjusts it.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Tag this thread's subsequent messages with "w<id>" (id >= 0).  Pass -1
/// (the default for every thread) to remove the tag.  Thread-local, so a
/// pool worker's tag never leaks onto the caller's messages.
void set_log_worker_id(int id);
int log_worker_id();

/// Emit one message (appends a newline).  One atomic line write.
void log_message(LogLevel level, const std::string& message);

namespace detail {
struct LogLine {
  LogLevel level;
  std::ostringstream oss;
  explicit LogLine(LogLevel lvl) : level(lvl) {}
  ~LogLine() { log_message(level, oss.str()); }
};
}  // namespace detail

}  // namespace vstack

#define VS_LOG(level_enum, expr)                                \
  do {                                                          \
    if (static_cast<int>(level_enum) >=                         \
        static_cast<int>(::vstack::log_level())) {              \
      ::vstack::detail::LogLine line(level_enum);               \
      line.oss << expr;                                         \
    }                                                           \
  } while (false)

#define VS_LOG_DEBUG(expr) VS_LOG(::vstack::LogLevel::Debug, expr)
#define VS_LOG_INFO(expr) VS_LOG(::vstack::LogLevel::Info, expr)
#define VS_LOG_WARN(expr) VS_LOG(::vstack::LogLevel::Warn, expr)
#define VS_LOG_ERROR(expr) VS_LOG(::vstack::LogLevel::Error, expr)
