#include "common/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <utility>

#include "common/error.h"
#include "common/failpoint.h"

namespace vstack {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Directory part of `path` ("." when there is none); used to fsync the
/// directory entry after a rename so the new name itself is durable.
std::string directory_of(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

/// fsync with EINTR retry: a signal landing mid-fsync must not abort a
/// durability barrier (the data may not have reached the platter yet, so
/// giving up would silently void the crash-safety guarantee).  `fp` names
/// the injection point wrapped around each attempt.
int fsync_retry(int fd, const char* fp) {
  for (;;) {
    const int rc = VS_FAILPOINT_SYSCALL(fp, ::fsync(fd));
    if (rc == 0 || errno != EINTR) return rc;
  }
}

/// close with EINTR handling: POSIX leaves the descriptor state
/// unspecified after an EINTR'd close, and on Linux the fd IS released --
/// retrying could close a recycled descriptor owned by another thread.
/// Treat EINTR as success (the kernel finishes the close asynchronously);
/// every caller that needs durability has already fsynced.
int close_nointr(int fd, const char* fp) {
  const int rc = VS_FAILPOINT_SYSCALL(fp, ::close(fd));
  if (rc != 0 && errno == EINTR) return 0;
  return rc;
}

void write_all(int fd, const char* data, std::size_t n,
               const std::string& path, const char* fp) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w =
        VS_FAILPOINT_SYSCALL(fp, ::write(fd, data + off, n - off));
    if (w < 0) {
      if (errno == EINTR) continue;
      VS_FAIL("write to '" + path + "' failed: " + errno_text());
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

DurableAppender::~DurableAppender() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

DurableAppender::DurableAppender(DurableAppender&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

DurableAppender& DurableAppender::operator=(DurableAppender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::fsync(fd_);
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void DurableAppender::open(const std::string& path, bool repair_torn_tail) {
  close();
  // O_RDWR (not O_WRONLY): the torn-tail check needs to pread the last
  // byte.  O_APPEND still forces every write to the end of the file.
  fd_ = VS_FAILPOINT_SYSCALL(
      "durable_file.open.open",
      ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644));
  VS_REQUIRE(fd_ >= 0,
             "cannot open '" + path + "' for appending: " + errno_text());
  path_ = path;
  if (!repair_torn_tail) return;

  struct stat st;
  VS_REQUIRE(::fstat(fd_, &st) == 0,
             "fstat of '" + path + "' failed: " + errno_text());
  if (st.st_size == 0) return;
  char last = '\n';
  // pread with EINTR retry (the audit): a signal here would otherwise turn
  // a perfectly healthy reopen into a spurious failure.
  ssize_t got;
  do {
    got = VS_FAILPOINT_SYSCALL("durable_file.open.pread",
                               ::pread(fd_, &last, 1, st.st_size - 1));
  } while (got < 0 && errno == EINTR);
  VS_REQUIRE(got == 1, "pread of '" + path + "' failed: " + errno_text());
  if (last == '\n') return;
  // A crash tore the final line; terminate the fragment so it parses (and
  // is skipped) as its own line instead of swallowing the next append.
  write_all(fd_, "\n", 1, path_, "durable_file.repair.write");
  VS_REQUIRE(fsync_retry(fd_, "durable_file.repair.fsync") == 0,
             "fsync of '" + path_ + "' failed: " + errno_text());
}

void DurableAppender::append_line(const std::string& line) {
  VS_REQUIRE(fd_ >= 0, "DurableAppender: append_line on a closed file");
  // One write(2) for payload + newline: O_APPEND makes the offset atomic,
  // and a single syscall minimizes the torn-line window to the kernel's
  // own copy (which the read side tolerates on the final line).
  std::string buf;
  buf.reserve(line.size() + 1);
  buf += line;
  buf += '\n';
  VS_FAILPOINT("durable_file.append.before_write");
  write_all(fd_, buf.data(), buf.size(), path_, "durable_file.append.write");
  // Crash here: the line is in the page cache but not yet durable -- the
  // reader may see it or a torn prefix of it after a power cut.
  VS_FAILPOINT("durable_file.append.after_write");
  VS_REQUIRE(fsync_retry(fd_, "durable_file.append.fsync") == 0,
             "fsync of '" + path_ + "' failed: " + errno_text());
  // Crash here: the line is fully committed; the caller's next step (a
  // rename, a lease release) has not happened yet.
  VS_FAILPOINT("durable_file.append.after_fsync");
}

void DurableAppender::sync() {
  if (fd_ >= 0) {
    VS_REQUIRE(fsync_retry(fd_, "durable_file.sync.fsync") == 0,
               "fsync of '" + path_ + "' failed: " + errno_text());
  }
}

void DurableAppender::close() {
  if (fd_ < 0) return;
  ::fsync(fd_);
  const int rc = close_nointr(fd_, "durable_file.close.close");
  fd_ = -1;
  VS_REQUIRE(rc == 0, "close of '" + path_ + "' failed: " + errno_text());
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = VS_FAILPOINT_SYSCALL(
      "durable_file.atomic.open",
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644));
  VS_REQUIRE(fd >= 0, "cannot create '" + tmp + "': " + errno_text());
  try {
    write_all(fd, content.data(), content.size(), tmp,
              "durable_file.atomic.write");
    VS_REQUIRE(fsync_retry(fd, "durable_file.atomic.fsync") == 0,
               "fsync of '" + tmp + "' failed: " + errno_text());
    // Crash here: a fully-written orphan `path.tmp.<pid>` survives and the
    // target is untouched -- the window sweep_stale_temp_files exists for.
    VS_FAILPOINT("durable_file.atomic.after_fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  VS_REQUIRE(close_nointr(fd, "durable_file.atomic.close") == 0,
             "close of '" + tmp + "' failed: " + errno_text());
  // Crash here: same orphan window as after_fsync, with the fd closed.
  VS_FAILPOINT("durable_file.atomic.before_rename");
  if (VS_FAILPOINT_SYSCALL("durable_file.atomic.rename",
                           ::rename(tmp.c_str(), path.c_str())) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    VS_FAIL("rename '" + tmp + "' -> '" + path + "' failed: " + why);
  }
  // Crash here: the rename is visible but the directory entry is not yet
  // durable -- a power cut may roll the name back to the old content.
  VS_FAILPOINT("durable_file.atomic.after_rename");
  fsync_directory(directory_of(path));
}

bool create_exclusive_file(const std::string& path,
                           const std::string& content) {
  const int fd = VS_FAILPOINT_SYSCALL(
      "durable_file.exclusive.open",
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644));
  if (fd < 0) {
    if (errno == EEXIST) return false;
    VS_FAIL("cannot create '" + path + "': " + errno_text());
  }
  try {
    write_all(fd, content.data(), content.size(), path,
              "durable_file.exclusive.write");
    VS_REQUIRE(fsync_retry(fd, "durable_file.exclusive.fsync") == 0,
               "fsync of '" + path + "' failed: " + errno_text());
    // Crash here: the claim is won and durable but the winner is dead --
    // for leases, exactly the window expiry-based reclamation covers.
    VS_FAILPOINT("durable_file.exclusive.after_fsync");
  } catch (...) {
    ::close(fd);
    ::unlink(path.c_str());
    throw;
  }
  VS_REQUIRE(close_nointr(fd, "durable_file.exclusive.close") == 0,
             "close of '" + path + "' failed: " + errno_text());
  fsync_directory(directory_of(path));
  return true;
}

bool touch_file(const std::string& path) {
  if (VS_FAILPOINT_SYSCALL("durable_file.touch.utimensat",
                           ::utimensat(AT_FDCWD, path.c_str(), nullptr, 0)) ==
      0) {
    return true;
  }
  if (errno == ENOENT) return false;
  VS_FAIL("touch of '" + path + "' failed: " + errno_text());
}

bool file_age_seconds(const std::string& path, double& age_s) {
  struct stat st;
  if (VS_FAILPOINT_SYSCALL("durable_file.age.stat",
                           ::stat(path.c_str(), &st)) != 0) {
    if (errno == ENOENT) return false;
    VS_FAIL("stat of '" + path + "' failed: " + errno_text());
  }
  struct timespec now;
  VS_REQUIRE(::clock_gettime(CLOCK_REALTIME, &now) == 0,
             "clock_gettime failed: " + errno_text());
  const double age =
      (static_cast<double>(now.tv_sec) - static_cast<double>(st.st_mtim.tv_sec)) +
      (static_cast<double>(now.tv_nsec) -
       static_cast<double>(st.st_mtim.tv_nsec)) *
          1e-9;
  age_s = std::max(0.0, age);
  return true;
}

bool try_rename(const std::string& from, const std::string& to) {
  if (VS_FAILPOINT_SYSCALL("durable_file.try_rename.rename",
                           ::rename(from.c_str(), to.c_str())) == 0) {
    return true;
  }
  if (errno == ENOENT) return false;
  VS_FAIL("rename '" + from + "' -> '" + to + "' failed: " + errno_text());
}

bool remove_file(const std::string& path) {
  if (VS_FAILPOINT_SYSCALL("durable_file.remove.unlink",
                           ::unlink(path.c_str())) == 0) {
    return true;
  }
  if (errno == ENOENT) return false;
  VS_FAIL("unlink of '" + path + "' failed: " + errno_text());
}

std::size_t sweep_stale_temp_files(const std::string& dir, bool recursive) {
  namespace fs = std::filesystem;
  const auto is_stale_temp = [](const fs::path& p) {
    const std::string name = p.filename().string();
    const auto pos = name.rfind(".tmp.");
    if (pos == std::string::npos) return false;
    const std::string pid = name.substr(pos + 5);
    if (pid.empty()) return false;
    return std::all_of(pid.begin(), pid.end(),
                       [](unsigned char c) { return std::isdigit(c); });
  };

  std::size_t removed = 0;
  std::error_code ec;
  const auto sweep_one = [&](const fs::directory_entry& entry) {
    std::error_code entry_ec;
    if (!entry.is_regular_file(entry_ec) || !is_stale_temp(entry.path())) {
      return;
    }
    // Best effort: a vanished or unremovable orphan is not worth failing
    // startup over -- the next start retries.
    std::error_code rm_ec;
    if (fs::remove(entry.path(), rm_ec)) ++removed;
  };
  if (recursive) {
    for (auto it = fs::recursive_directory_iterator(
             dir, fs::directory_options::skip_permission_denied, ec);
         !ec && it != fs::recursive_directory_iterator(); it.increment(ec)) {
      sweep_one(*it);
    }
  } else {
    for (auto it =
             fs::directory_iterator(
                 dir, fs::directory_options::skip_permission_denied, ec);
         !ec && it != fs::directory_iterator(); it.increment(ec)) {
      sweep_one(*it);
    }
  }
  return removed;
}

}  // namespace vstack
