#include "common/durable_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "common/error.h"

namespace vstack {

namespace {

std::string errno_text() { return std::strerror(errno); }

/// Directory part of `path` ("." when there is none); used to fsync the
/// directory entry after a rename so the new name itself is durable.
std::string directory_of(const std::string& path) {
  const auto slash = path.rfind('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

void fsync_directory(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return;  // best effort: some filesystems refuse dir opens
  ::fsync(fd);
  ::close(fd);
}

void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  std::size_t off = 0;
  while (off < n) {
    const ssize_t w = ::write(fd, data + off, n - off);
    if (w < 0) {
      if (errno == EINTR) continue;
      VS_FAIL("write to '" + path + "' failed: " + errno_text());
    }
    off += static_cast<std::size_t>(w);
  }
}

}  // namespace

DurableAppender::~DurableAppender() {
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
  }
}

DurableAppender::DurableAppender(DurableAppender&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
  other.path_.clear();
}

DurableAppender& DurableAppender::operator=(DurableAppender&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) {
      ::fsync(fd_);
      ::close(fd_);
    }
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
    other.path_.clear();
  }
  return *this;
}

void DurableAppender::open(const std::string& path, bool repair_torn_tail) {
  close();
  // O_RDWR (not O_WRONLY): the torn-tail check needs to pread the last
  // byte.  O_APPEND still forces every write to the end of the file.
  fd_ = ::open(path.c_str(), O_RDWR | O_APPEND | O_CREAT | O_CLOEXEC, 0644);
  VS_REQUIRE(fd_ >= 0,
             "cannot open '" + path + "' for appending: " + errno_text());
  path_ = path;
  if (!repair_torn_tail) return;

  struct stat st;
  VS_REQUIRE(::fstat(fd_, &st) == 0,
             "fstat of '" + path + "' failed: " + errno_text());
  if (st.st_size == 0) return;
  char last = '\n';
  const ssize_t got = ::pread(fd_, &last, 1, st.st_size - 1);
  VS_REQUIRE(got == 1, "pread of '" + path + "' failed: " + errno_text());
  if (last == '\n') return;
  // A crash tore the final line; terminate the fragment so it parses (and
  // is skipped) as its own line instead of swallowing the next append.
  write_all(fd_, "\n", 1, path_);
  VS_REQUIRE(::fsync(fd_) == 0,
             "fsync of '" + path_ + "' failed: " + errno_text());
}

void DurableAppender::append_line(const std::string& line) {
  VS_REQUIRE(fd_ >= 0, "DurableAppender: append_line on a closed file");
  // One write(2) for payload + newline: O_APPEND makes the offset atomic,
  // and a single syscall minimizes the torn-line window to the kernel's
  // own copy (which the read side tolerates on the final line).
  std::string buf;
  buf.reserve(line.size() + 1);
  buf += line;
  buf += '\n';
  write_all(fd_, buf.data(), buf.size(), path_);
  VS_REQUIRE(::fsync(fd_) == 0,
             "fsync of '" + path_ + "' failed: " + errno_text());
}

void DurableAppender::sync() {
  if (fd_ >= 0) {
    VS_REQUIRE(::fsync(fd_) == 0,
               "fsync of '" + path_ + "' failed: " + errno_text());
  }
}

void DurableAppender::close() {
  if (fd_ < 0) return;
  ::fsync(fd_);
  const int rc = ::close(fd_);
  fd_ = -1;
  VS_REQUIRE(rc == 0, "close of '" + path_ + "' failed: " + errno_text());
}

void atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  VS_REQUIRE(fd >= 0, "cannot create '" + tmp + "': " + errno_text());
  try {
    write_all(fd, content.data(), content.size(), tmp);
    VS_REQUIRE(::fsync(fd) == 0, "fsync of '" + tmp + "' failed: " +
                                     errno_text());
  } catch (...) {
    ::close(fd);
    ::unlink(tmp.c_str());
    throw;
  }
  VS_REQUIRE(::close(fd) == 0, "close of '" + tmp + "' failed: " +
                                   errno_text());
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const std::string why = errno_text();
    ::unlink(tmp.c_str());
    VS_FAIL("rename '" + tmp + "' -> '" + path + "' failed: " + why);
  }
  fsync_directory(directory_of(path));
}

bool create_exclusive_file(const std::string& path,
                           const std::string& content) {
  const int fd = ::open(path.c_str(),
                        O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC, 0644);
  if (fd < 0) {
    if (errno == EEXIST) return false;
    VS_FAIL("cannot create '" + path + "': " + errno_text());
  }
  try {
    write_all(fd, content.data(), content.size(), path);
    VS_REQUIRE(::fsync(fd) == 0,
               "fsync of '" + path + "' failed: " + errno_text());
  } catch (...) {
    ::close(fd);
    ::unlink(path.c_str());
    throw;
  }
  VS_REQUIRE(::close(fd) == 0,
             "close of '" + path + "' failed: " + errno_text());
  fsync_directory(directory_of(path));
  return true;
}

bool touch_file(const std::string& path) {
  if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) == 0) return true;
  if (errno == ENOENT) return false;
  VS_FAIL("touch of '" + path + "' failed: " + errno_text());
}

bool file_age_seconds(const std::string& path, double& age_s) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    if (errno == ENOENT) return false;
    VS_FAIL("stat of '" + path + "' failed: " + errno_text());
  }
  struct timespec now;
  VS_REQUIRE(::clock_gettime(CLOCK_REALTIME, &now) == 0,
             "clock_gettime failed: " + errno_text());
  const double age =
      (static_cast<double>(now.tv_sec) - static_cast<double>(st.st_mtim.tv_sec)) +
      (static_cast<double>(now.tv_nsec) -
       static_cast<double>(st.st_mtim.tv_nsec)) *
          1e-9;
  age_s = std::max(0.0, age);
  return true;
}

bool try_rename(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  VS_FAIL("rename '" + from + "' -> '" + to + "' failed: " + errno_text());
}

bool remove_file(const std::string& path) {
  if (::unlink(path.c_str()) == 0) return true;
  if (errno == ENOENT) return false;
  VS_FAIL("unlink of '" + path + "' failed: " + errno_text());
}

}  // namespace vstack
