// Durable file primitives for the crash-safe JSONL protocols (campaign
// manifests, service responses, health snapshots).
//
// Two guarantees a plain std::ofstream cannot give:
//
//   * DurableAppender writes each line (payload + '\n') in a SINGLE write(2)
//     call and fsyncs before returning, so a committed line survives both a
//     kill -9 and a power cut.  Only the line in flight at the instant of
//     death can be torn -- exactly the case the read side already tolerates.
//
//   * atomic_write_file publishes whole-file content via temp file + fsync +
//     rename(2) (+ directory fsync), so readers -- and a restarted process --
//     see either the complete old content or the complete new content, never
//     a torn prefix.  Campaign manifests create their HEADER this way: a
//     torn header would make resume refuse the whole manifest, which is the
//     one torn line the tolerance on scenario lines cannot absorb.
#pragma once

#include <cstddef>
#include <string>

namespace vstack {

class DurableAppender {
 public:
  DurableAppender() = default;
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;
  DurableAppender(DurableAppender&& other) noexcept;
  DurableAppender& operator=(DurableAppender&& other) noexcept;

  /// Open `path` for appending (created if absent).  Throws vstack::Error
  /// when the file cannot be opened.
  ///
  /// With `repair_torn_tail` set, a file whose last byte is not '\n' gets a
  /// newline appended (and fsynced) before the first append.  This closes a
  /// real crash window for every JSONL protocol that REOPENS a file: after
  /// a kill -9 mid-append the file ends in half a line, and a plain append
  /// would concatenate the next record onto the torn fragment -- producing
  /// one garbage line and silently losing the new record.  The repair turns
  /// the fragment into its own (unparseable, skipped-on-read) line instead.
  void open(const std::string& path, bool repair_torn_tail = false);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Append `line` + '\n' in one write(2), then fsync.  Throws on short
  /// writes or I/O errors.
  void append_line(const std::string& line);

  /// fsync without writing; no-op when closed.
  void sync();

  /// fsync + close; no-op when already closed.  Called by the destructor
  /// (which swallows errors -- call close() yourself when they matter).
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Replace `path` with `content` atomically: write to `path.tmp.<pid>` in
/// the same directory, fsync, rename over `path`, fsync the directory.
/// Throws vstack::Error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const std::string& content);

// ---------------------------------------------------------------------------
// Lease-file primitives (src/shard's worker-coordination protocol; see
// docs/distributed_campaigns.md).  All are local-filesystem operations --
// the atomicity guarantees (O_EXCL creation, rename(2)) are what POSIX
// gives on one machine; they are NOT NFS-safe.

/// Create `path` with `content` only if it does not already exist
/// (O_CREAT | O_EXCL), fsync it, and fsync the directory so the name
/// survives a power cut.  Returns false when the file already exists --
/// the single-winner "claim" primitive: of N concurrent callers exactly
/// one returns true.  Throws vstack::Error on any other I/O failure.
bool create_exclusive_file(const std::string& path, const std::string& content);

/// Refresh `path`'s mtime to now (the lease heartbeat).  Returns false when
/// the file no longer exists (the lease was reclaimed or released); throws
/// on other I/O errors.
bool touch_file(const std::string& path);

/// Seconds since `path`'s last modification (realtime clock), for lease
/// expiry checks.  Returns false when the file does not exist.  Negative
/// ages (clock steps) are clamped to 0.
bool file_age_seconds(const std::string& path, double& age_s);

/// rename(2) that reports a missing source as false instead of throwing --
/// the single-winner "reclaim" primitive: of N concurrent callers renaming
/// the same source away, exactly one succeeds.  Throws vstack::Error on
/// errors other than ENOENT.
bool try_rename(const std::string& from, const std::string& to);

/// Best-effort unlink; returns false when the file was already gone.
bool remove_file(const std::string& path);

/// Remove orphaned `*.tmp.<pid>` files left under `dir` by an
/// atomic_write_file interrupted between fsync and rename (crash, kill -9,
/// or a close/rename failure).  Returns the number of files removed;
/// unreadable entries and unremovable files are skipped silently.
///
/// Call this only from a coordinator at STARTUP (the shard supervisor
/// before spawning workers, the campaign server before accepting jobs) --
/// never from a worker, whose sibling processes may have live temp files
/// in flight with the same naming pattern.
std::size_t sweep_stale_temp_files(const std::string& dir,
                                   bool recursive = false);

}  // namespace vstack
