// Durable file primitives for the crash-safe JSONL protocols (campaign
// manifests, service responses, health snapshots).
//
// Two guarantees a plain std::ofstream cannot give:
//
//   * DurableAppender writes each line (payload + '\n') in a SINGLE write(2)
//     call and fsyncs before returning, so a committed line survives both a
//     kill -9 and a power cut.  Only the line in flight at the instant of
//     death can be torn -- exactly the case the read side already tolerates.
//
//   * atomic_write_file publishes whole-file content via temp file + fsync +
//     rename(2) (+ directory fsync), so readers -- and a restarted process --
//     see either the complete old content or the complete new content, never
//     a torn prefix.  Campaign manifests create their HEADER this way: a
//     torn header would make resume refuse the whole manifest, which is the
//     one torn line the tolerance on scenario lines cannot absorb.
#pragma once

#include <string>

namespace vstack {

class DurableAppender {
 public:
  DurableAppender() = default;
  ~DurableAppender();

  DurableAppender(const DurableAppender&) = delete;
  DurableAppender& operator=(const DurableAppender&) = delete;
  DurableAppender(DurableAppender&& other) noexcept;
  DurableAppender& operator=(DurableAppender&& other) noexcept;

  /// Open `path` for appending (created if absent).  Throws vstack::Error
  /// when the file cannot be opened.
  void open(const std::string& path);

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  /// Append `line` + '\n' in one write(2), then fsync.  Throws on short
  /// writes or I/O errors.
  void append_line(const std::string& line);

  /// fsync without writing; no-op when closed.
  void sync();

  /// fsync + close; no-op when already closed.  Called by the destructor
  /// (which swallows errors -- call close() yourself when they matter).
  void close();

 private:
  int fd_ = -1;
  std::string path_;
};

/// Replace `path` with `content` atomically: write to `path.tmp.<pid>` in
/// the same directory, fsync, rename over `path`, fsync the directory.
/// Throws vstack::Error on any I/O failure (the temp file is removed).
void atomic_write_file(const std::string& path, const std::string& content);

}  // namespace vstack
