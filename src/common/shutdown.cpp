#include "common/shutdown.h"

#include <csignal>

namespace vstack {

namespace {

std::atomic<int> g_signal{0};
bool g_installed = false;

// The token lives in a leaked heap slot so the signal handler can reach it
// through a plain pointer load at any point of process teardown (a
// function-local static could already be destroyed).
Deadline* g_token = new Deadline(Deadline::cancellable());

extern "C" void vstack_shutdown_handler(int sig) {
  g_signal.store(sig, std::memory_order_release);
  g_token->cancel();  // atomic store; async-signal-safe
}

}  // namespace

void install_shutdown_handlers() {
  if (g_installed) return;
  g_installed = true;
  std::signal(SIGINT, vstack_shutdown_handler);
  std::signal(SIGTERM, vstack_shutdown_handler);
}

Deadline shutdown_token() { return *g_token; }

bool shutdown_requested() {
  return g_signal.load(std::memory_order_acquire) != 0;
}

int shutdown_signal() { return g_signal.load(std::memory_order_acquire); }

void reset_shutdown_for_tests() {
  g_signal.store(0, std::memory_order_release);
  *g_token = Deadline::cancellable();
}

}  // namespace vstack
