#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace vstack {

namespace {

double sorted_percentile(const std::vector<double>& sorted, double q) {
  VS_REQUIRE(q >= 0.0 && q <= 100.0, "percentile q must be in [0, 100]");
  if (sorted.size() == 1) return sorted.front();
  const double pos = q / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace

double percentile(std::vector<double> samples, double q) {
  VS_REQUIRE(!samples.empty(), "percentile of empty sample");
  std::sort(samples.begin(), samples.end());
  return sorted_percentile(samples, q);
}

double mean(const std::vector<double>& samples) {
  VS_REQUIRE(!samples.empty(), "mean of empty sample");
  const double sum = std::accumulate(samples.begin(), samples.end(), 0.0);
  return sum / static_cast<double>(samples.size());
}

double stddev(const std::vector<double>& samples) {
  if (samples.size() < 2) return 0.0;
  const double m = mean(samples);
  double ss = 0.0;
  for (double x : samples) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(samples.size() - 1));
}

BoxPlotStats box_plot_stats(std::vector<double> samples) {
  VS_REQUIRE(!samples.empty(), "box_plot_stats of empty sample");
  std::sort(samples.begin(), samples.end());
  BoxPlotStats s;
  s.min = samples.front();
  s.max = samples.back();
  s.p25 = sorted_percentile(samples, 25.0);
  s.median = sorted_percentile(samples, 50.0);
  s.p75 = sorted_percentile(samples, 75.0);
  s.mean = mean(samples);
  return s;
}

double rms(const std::vector<double>& samples) {
  VS_REQUIRE(!samples.empty(), "rms of empty sample");
  double ss = 0.0;
  for (double x : samples) ss += x * x;
  return std::sqrt(ss / static_cast<double>(samples.size()));
}

}  // namespace vstack
