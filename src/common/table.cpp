#include "common/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "common/error.h"

namespace vstack {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  VS_REQUIRE(!headers_.empty(), "table needs at least one column");
}

void TextTable::add_row(std::vector<std::string> cells) {
  VS_REQUIRE(cells.size() == headers_.size(),
             "row width must match header width");
  rows_.push_back(std::move(cells));
}

std::string TextTable::num(double value, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << value;
  return oss.str();
}

std::string TextTable::percent(double fraction, int precision) {
  std::ostringstream oss;
  oss << std::fixed << std::setprecision(precision) << fraction * 100.0 << "%";
  return oss.str();
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "| " : " ") << std::left
         << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    os << "\n";
  };

  print_row(headers_);
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace vstack
