#include "common/deadline.h"

#include <chrono>
#include <limits>

namespace vstack {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

double steady_seconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

Deadline Deadline::cancellable() {
  Deadline d;
  d.state_ = std::make_shared<State>();
  d.state_->deadline_s = kInf;
  return d;
}

Deadline Deadline::after(double seconds) {
  Deadline d = cancellable();
  d.state_->deadline_s = steady_seconds() + seconds;
  return d;
}

Deadline Deadline::limited_by(const Deadline& parent, double seconds) {
  Deadline d = seconds > 0.0 ? after(seconds) : cancellable();
  d.state_->parent = parent.state_;
  return d;
}

void Deadline::cancel() const {
  if (state_) state_->cancelled.store(true, std::memory_order_release);
}

bool Deadline::cancelled() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) return true;
  }
  return false;
}

bool Deadline::state_expired(const State& s) {
  if (s.cancelled.load(std::memory_order_acquire)) return true;
  if (s.deadline_s != kInf && steady_seconds() > s.deadline_s) return true;
  return false;
}

bool Deadline::expired() const {
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (state_expired(*s)) return true;
  }
  return false;
}

double Deadline::remaining_seconds() const {
  double remaining = kInf;
  for (const State* s = state_.get(); s != nullptr; s = s->parent.get()) {
    if (s->cancelled.load(std::memory_order_acquire)) return 0.0;
    if (s->deadline_s != kInf) {
      const double r = s->deadline_s - steady_seconds();
      remaining = r < remaining ? r : remaining;
    }
  }
  return remaining < 0.0 ? 0.0 : remaining;
}

}  // namespace vstack
