#include "common/log.h"

#include <atomic>
#include <iostream>
#include <mutex>

namespace vstack {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::Warn)};
std::mutex g_sink_mutex;
thread_local int t_worker_id = -1;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) {
  g_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel log_level() {
  return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed));
}

void set_log_worker_id(int id) { t_worker_id = id; }

int log_worker_id() { return t_worker_id; }

void log_message(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  // Assemble the full line first so the sink mutex covers exactly one
  // write: concurrent workers can interleave LINES, never characters.
  std::string line;
  line.reserve(message.size() + 24);
  line += "[vstack:";
  line += level_name(level);
  if (t_worker_id >= 0) {
    line += ":w";
    line += std::to_string(t_worker_id);
  }
  line += "] ";
  line += message;
  line += '\n';
  const std::lock_guard<std::mutex> lock(g_sink_mutex);
  std::cerr << line;
}

}  // namespace vstack
