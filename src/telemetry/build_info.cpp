#include <sstream>

#include "telemetry/telemetry.h"
#include "vstack_build_info.h"  // generated into the build tree

namespace vstack::telemetry {

const BuildInfo& build_info() {
  static const BuildInfo info{
      VSTACK_BUILD_GIT_DESCRIBE,
      VSTACK_BUILD_TYPE,
      VSTACK_BUILD_SANITIZER,
      VSTACK_TELEMETRY_ENABLED != 0,
  };
  return info;
}

std::string build_summary() {
  const BuildInfo& info = build_info();
  std::ostringstream oss;
  oss << "vstack " << info.version << " (" << info.build_type
      << ", sanitizer=" << info.sanitizer << ", telemetry="
      << (info.telemetry_enabled ? "on" : "off") << ")";
  return oss.str();
}

}  // namespace vstack::telemetry
