#include "telemetry/telemetry.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <deque>
#include <limits>
#include <map>
#include <mutex>

#include "common/error.h"

namespace vstack::telemetry {

double monotonic_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch())
      .count();
}

#if VSTACK_TELEMETRY_ENABLED

enum class MetricKind { Counter, Gauge, Histogram };

namespace detail {

struct MetricDef {
  std::string name;
  MetricKind kind = MetricKind::Counter;
  std::vector<double> bounds;  // histogram upper edges
  std::size_t id = 0;
};

}  // namespace detail

namespace {

using detail::MetricDef;

constexpr std::size_t kMaxTraceEventsPerShard = 1 << 16;

/// Per-(metric, shard) storage.  Guarded by the owning shard's mutex.
struct Cell {
  double counter = 0.0;
  double gauge = 0.0;
  std::uint64_t gauge_seq = 0;  // global sequence at last set(); 0 = never
  std::vector<std::uint64_t> hist_counts;
  std::uint64_t hist_count = 0;
  double hist_sum = 0.0;
  double hist_min = std::numeric_limits<double>::infinity();
  double hist_max = -std::numeric_limits<double>::infinity();

  void reset() { *this = Cell{}; }
};

struct TraceRecord {
  const char* name = nullptr;  // string literal at every call site
  double start_s = 0.0;
  double end_s = 0.0;
};

/// One thread's private slice of the registry.  The owning thread locks the
/// mutex on every record -- uncontended in steady state; snapshot() is the
/// only other locker.
struct Shard {
  std::mutex mu;
  std::uint32_t tid = 0;
  std::vector<Cell> cells;  // indexed by MetricDef::id, grown on demand
  std::vector<TraceRecord> trace;
  std::size_t trace_dropped = 0;
};

class Registry {
 public:
  /// Leaked singleton: worker threads may outlive static destruction, so
  /// the registry is never torn down.
  static Registry& instance() {
    static Registry* r = new Registry;
    return *r;
  }

  Registry() : origin_s_(monotonic_seconds()) {}

  const MetricDef* define(const char* name, MetricKind kind,
                          std::vector<double> bounds) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = by_name_.find(name);
    if (it != by_name_.end()) {
      VS_REQUIRE(it->second->kind == kind,
                 std::string("telemetry metric '") + name +
                     "' re-registered with a different kind");
      return it->second;
    }
    for (std::size_t i = 1; i < bounds.size(); ++i) {
      VS_REQUIRE(bounds[i] > bounds[i - 1],
                 std::string("telemetry histogram '") + name +
                     "' bounds must be strictly increasing");
    }
    defs_.push_back(MetricDef{name, kind, std::move(bounds), defs_.size()});
    MetricDef* def = &defs_.back();  // deque: stable address
    by_name_.emplace(def->name, def);
    return def;
  }

  /// This thread's shard, creating or recycling one on first use.
  Shard& shard();
  void release(Shard* s) {
    const std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(s);
  }

  MetricsSnapshot take_snapshot();
  std::vector<TraceEvent> take_trace();
  std::size_t dropped_total();
  void reset();

  std::atomic<bool> tracing{false};
  std::atomic<std::uint64_t> gauge_seq{1};

  double origin_s() const { return origin_s_; }

 private:
  const double origin_s_;
  std::mutex mu_;  // guards defs_/by_name_/shards_/free_ (never a shard mu)
  std::deque<MetricDef> defs_;
  std::map<std::string, MetricDef*> by_name_;
  std::deque<Shard> shards_;  // stable addresses; never shrinks
  std::vector<Shard*> free_;  // shards whose owner thread exited
};

/// Returns this thread's shard to the free list at thread exit so pools do
/// not leak one shard per spawned worker.  Recycled shards keep their data
/// (metrics are cumulative), they just change owner.
struct ShardLease {
  Shard* shard = nullptr;
  ~ShardLease() {
    if (shard != nullptr) Registry::instance().release(shard);
  }
};

thread_local ShardLease t_lease;

Shard& Registry::shard() {
  if (t_lease.shard != nullptr) return *t_lease.shard;
  const std::lock_guard<std::mutex> lock(mu_);
  Shard* s = nullptr;
  if (!free_.empty()) {
    s = free_.back();
    free_.pop_back();
  } else {
    shards_.emplace_back();
    s = &shards_.back();
    s->tid = static_cast<std::uint32_t>(shards_.size() - 1);
  }
  t_lease.shard = s;
  return *s;
}

Cell& cell_of(Shard& s, const MetricDef* def) {
  if (s.cells.size() <= def->id) s.cells.resize(def->id + 1);
  return s.cells[def->id];
}

MetricsSnapshot Registry::take_snapshot() {
  MetricsSnapshot snap;
  const std::lock_guard<std::mutex> lock(mu_);
  for (const MetricDef& def : defs_) {
    double counter = 0.0;
    double gauge = 0.0;
    std::uint64_t best_seq = 0;
    HistogramSnapshot hist;
    hist.name = def.name;
    hist.upper_bounds = def.bounds;
    hist.counts.assign(def.bounds.size() + 1, 0);
    bool any = false;
    for (Shard& s : shards_) {
      const std::lock_guard<std::mutex> shard_lock(s.mu);
      if (s.cells.size() <= def.id) continue;
      const Cell& c = s.cells[def.id];
      counter += c.counter;
      if (c.gauge_seq > best_seq) {
        best_seq = c.gauge_seq;
        gauge = c.gauge;
      }
      if (c.hist_count > 0) {
        if (!any) {
          hist.min = c.hist_min;
          hist.max = c.hist_max;
        } else {
          hist.min = std::min(hist.min, c.hist_min);
          hist.max = std::max(hist.max, c.hist_max);
        }
        any = true;
        hist.count += c.hist_count;
        hist.sum += c.hist_sum;
        for (std::size_t b = 0;
             b < c.hist_counts.size() && b < hist.counts.size(); ++b) {
          hist.counts[b] += c.hist_counts[b];
        }
      }
    }
    switch (def.kind) {
      case MetricKind::Counter:
        snap.counters.push_back({def.name, counter});
        break;
      case MetricKind::Gauge:
        if (best_seq > 0) snap.gauges.push_back({def.name, gauge});
        break;
      case MetricKind::Histogram:
        if (!any) {
          hist.min = 0.0;
          hist.max = 0.0;
        }
        snap.histograms.push_back(std::move(hist));
        break;
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

std::vector<TraceEvent> Registry::take_trace() {
  std::vector<TraceEvent> events;
  const std::lock_guard<std::mutex> lock(mu_);
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> shard_lock(s.mu);
    for (const TraceRecord& r : s.trace) {
      TraceEvent e;
      e.name = r.name;
      e.tid = s.tid;
      e.ts_us = (r.start_s - origin_s_) * 1e6;
      e.dur_us = (r.end_s - r.start_s) * 1e6;
      events.push_back(std::move(e));
    }
  }
  std::sort(events.begin(), events.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.ts_us < b.ts_us;
            });
  return events;
}

std::size_t Registry::dropped_total() {
  std::size_t total = 0;
  const std::lock_guard<std::mutex> lock(mu_);
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> shard_lock(s.mu);
    total += s.trace_dropped;
  }
  return total;
}

void Registry::reset() {
  const std::lock_guard<std::mutex> lock(mu_);
  for (Shard& s : shards_) {
    const std::lock_guard<std::mutex> shard_lock(s.mu);
    for (Cell& c : s.cells) c.reset();
    s.trace.clear();
    s.trace_dropped = 0;
  }
  gauge_seq.store(1, std::memory_order_relaxed);
}

}  // namespace

Counter::Counter(const char* name)
    : def_(Registry::instance().define(name, MetricKind::Counter, {})) {}

void Counter::add(double delta) const {
  Shard& s = Registry::instance().shard();
  const std::lock_guard<std::mutex> lock(s.mu);
  cell_of(s, def_).counter += delta;
}

Gauge::Gauge(const char* name)
    : def_(Registry::instance().define(name, MetricKind::Gauge, {})) {}

void Gauge::set(double value) const {
  Registry& reg = Registry::instance();
  const std::uint64_t seq =
      reg.gauge_seq.fetch_add(1, std::memory_order_relaxed) + 1;
  Shard& s = reg.shard();
  const std::lock_guard<std::mutex> lock(s.mu);
  Cell& c = cell_of(s, def_);
  c.gauge = value;
  c.gauge_seq = seq;
}

Histogram::Histogram(const char* name, std::vector<double> upper_bounds)
    : def_(Registry::instance().define(name, MetricKind::Histogram,
                                       std::move(upper_bounds))) {}

void Histogram::record(double value) const {
  Shard& s = Registry::instance().shard();
  const std::lock_guard<std::mutex> lock(s.mu);
  Cell& c = cell_of(s, def_);
  if (c.hist_counts.size() != def_->bounds.size() + 1) {
    c.hist_counts.assign(def_->bounds.size() + 1, 0);
  }
  const auto it =
      std::lower_bound(def_->bounds.begin(), def_->bounds.end(), value);
  ++c.hist_counts[static_cast<std::size_t>(it - def_->bounds.begin())];
  ++c.hist_count;
  c.hist_sum += value;
  c.hist_min = std::min(c.hist_min, value);
  c.hist_max = std::max(c.hist_max, value);
}

Span::Span(const char* name) : name_(name) {
  if (!Registry::instance().tracing.load(std::memory_order_relaxed)) return;
  active_ = true;
  start_s_ = monotonic_seconds();
}

Span::~Span() {
  if (!active_) return;
  record_span(name_, start_s_, monotonic_seconds());
}

void record_span(const char* name, double start_seconds, double end_seconds) {
  Registry& reg = Registry::instance();
  if (!reg.tracing.load(std::memory_order_relaxed)) return;
  Shard& s = reg.shard();
  const std::lock_guard<std::mutex> lock(s.mu);
  if (s.trace.size() >= kMaxTraceEventsPerShard) {
    ++s.trace_dropped;
    return;
  }
  s.trace.push_back({name, start_seconds, end_seconds});
}

void set_tracing_enabled(bool on) {
  Registry::instance().tracing.store(on, std::memory_order_relaxed);
}

bool tracing_enabled() {
  return Registry::instance().tracing.load(std::memory_order_relaxed);
}

MetricsSnapshot snapshot() { return Registry::instance().take_snapshot(); }

std::vector<TraceEvent> collect_trace() {
  return Registry::instance().take_trace();
}

std::size_t trace_dropped() { return Registry::instance().dropped_total(); }

void reset_for_tests() { Registry::instance().reset(); }

#else  // !VSTACK_TELEMETRY_ENABLED -- observation API returns empties

void record_span(const char*, double, double) {}
void set_tracing_enabled(bool) {}
bool tracing_enabled() { return false; }
MetricsSnapshot snapshot() { return {}; }
std::vector<TraceEvent> collect_trace() { return {}; }
std::size_t trace_dropped() { return 0; }
void reset_for_tests() {}

#endif  // VSTACK_TELEMETRY_ENABLED

// ---------------------------------------------------------------------------
// Snapshot helpers (live in both build modes).

const CounterSnapshot* MetricsSnapshot::counter(
    const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const HistogramSnapshot* MetricsSnapshot::histogram(
    const std::string& name) const {
  for (const auto& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

double MetricsSnapshot::counter_value(const std::string& name,
                                      double fallback) const {
  const CounterSnapshot* c = counter(name);
  return c != nullptr ? c->value : fallback;
}

double HistogramSnapshot::quantile(double q) const {
  if (count == 0) return 0.0;
  q = std::min(1.0, std::max(0.0, q));
  if (q <= 0.0) return min;
  if (q >= 1.0) return max;
  const double target = q * static_cast<double>(count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < counts.size(); ++b) {
    if (counts[b] == 0) continue;
    const double next = static_cast<double>(cumulative + counts[b]);
    if (target <= next) {
      // Interpolate inside bucket b, clamped to the observed range.
      double lo = b == 0 ? min : upper_bounds[b - 1];
      double hi = b < upper_bounds.size() ? upper_bounds[b] : max;
      lo = std::max(lo, min);
      hi = std::min(std::max(hi, lo), max);
      const double frac = (target - static_cast<double>(cumulative)) /
                          static_cast<double>(counts[b]);
      return lo + frac * (hi - lo);
    }
    cumulative += counts[b];
  }
  return max;
}

}  // namespace vstack::telemetry
