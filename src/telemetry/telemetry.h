// Cross-cutting observability for the whole stack: named counters, gauges,
// and fixed-bucket histograms in a process-global Registry, plus an RAII
// span tracer that exports Chrome trace_event JSON (open in Perfetto or
// about://tracing).
//
// Design constraints (docs/telemetry.md):
//
//   * Lock-cheap recording.  Every thread records into its own shard (an
//     uncontended per-thread mutex), and shards are merged only on
//     snapshot().  core::TaskPool workers therefore record without
//     contention; when a worker thread exits its shard is recycled for the
//     next pool, so long campaigns do not grow the shard list.
//
//   * Observation only.  Nothing here feeds back into the numerics: with
//     telemetry compiled out (CMake -DVSTACK_TELEMETRY=OFF, which turns
//     every handle and VS_SPAN into a no-op) results are bit-identical to a
//     telemetry-on build, wall_seconds aside.
//
//   * Bounded memory.  Trace buffers cap at a fixed per-thread event count
//     (overflow is counted, not stored); metric cells are one slot per
//     (metric, thread).
//
// Naming convention: `layer.component.event`, lower-case, dot-separated --
// e.g. "la.solve.iterations", "pdn.step_solver.cache.hits",
// "core.task_pool.chunk_seconds".  The first segment is the owning library
// and becomes the span's trace category.
//
// Typical use:
//
//   static const telemetry::Counter c_iters("la.cg.iterations");
//   c_iters.add(report.iterations);
//
//   void hot_path() {
//     VS_SPAN("la.cg.solve");   // RAII scope; records only while tracing
//     ...
//   }
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#ifndef VSTACK_TELEMETRY_ENABLED
#define VSTACK_TELEMETRY_ENABLED 1
#endif

namespace vstack::telemetry {

/// Monotonic wall clock [s] (steady_clock).  The single source of every
/// wall_seconds in the repo -- engines must not roll their own.
double monotonic_seconds();

/// Build provenance embedded at CMake configure time, so every metrics /
/// trace / bench artifact is attributable to an exact build.
struct BuildInfo {
  std::string version;     // git describe (or the project version fallback)
  std::string build_type;  // CMAKE_BUILD_TYPE
  std::string sanitizer;   // "none", "asan+ubsan", or "tsan"
  bool telemetry_enabled = false;
};
const BuildInfo& build_info();

/// One-line human-readable digest: "vstack <version> (<type>, sanitizer=..,
/// telemetry=on|off)".
std::string build_summary();

namespace detail {
struct MetricDef;  // opaque registry entry behind every handle
}

#if VSTACK_TELEMETRY_ENABLED

/// Monotonically increasing sum.  Handles are cheap to copy and safe to
/// share across threads; construct once (function-local static) and add()
/// from anywhere.
class Counter {
 public:
  explicit Counter(const char* name);
  void add(double delta = 1.0) const;

 private:
  const detail::MetricDef* def_;
};

/// Last-written value (global last-writer-wins across threads).
class Gauge {
 public:
  explicit Gauge(const char* name);
  void set(double value) const;

 private:
  const detail::MetricDef* def_;
};

/// Fixed-bucket histogram.  `upper_bounds` are the inclusive upper edges of
/// the finite buckets (a value lands in the first bucket whose bound is
/// >= value); one implicit overflow bucket catches the rest.  Bounds must
/// be strictly increasing and are fixed by the FIRST registration of a
/// name.
class Histogram {
 public:
  Histogram(const char* name, std::vector<double> upper_bounds);
  void record(double value) const;

 private:
  const detail::MetricDef* def_;
};

/// RAII trace span: records a Chrome "complete" event (name, thread, start,
/// duration) when it goes out of scope.  No-op unless tracing_enabled();
/// nesting works naturally (inner scopes close first).
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_ = nullptr;
  double start_s_ = 0.0;
  bool active_ = false;
};

#else  // telemetry compiled out: every handle collapses to a no-op

class Counter {
 public:
  explicit Counter(const char*) {}
  void add(double = 1.0) const {}
};

class Gauge {
 public:
  explicit Gauge(const char*) {}
  void set(double) const {}
};

class Histogram {
 public:
  Histogram(const char*, std::vector<double>) {}
  void record(double) const {}
};

class Span {
 public:
  explicit Span(const char*) {}
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // VSTACK_TELEMETRY_ENABLED

/// Record a span whose lifetime does not fit an RAII scope (e.g. a
/// StepController's construction-to-finalize window).  Times are
/// monotonic_seconds() values; no-op unless tracing is enabled.
void record_span(const char* name, double start_seconds, double end_seconds);

/// Runtime master switch for the span tracer (counters are always live).
/// Off by default; the CLI enables it when --trace=PATH is given.
void set_tracing_enabled(bool on);
bool tracing_enabled();

// ---------------------------------------------------------------------------
// Snapshots (always available; empty when telemetry is compiled out).

struct CounterSnapshot {
  std::string name;
  double value = 0.0;
};

struct GaugeSnapshot {
  std::string name;
  double value = 0.0;
};

struct HistogramSnapshot {
  std::string name;
  std::vector<double> upper_bounds;    // finite bucket edges (inclusive)
  std::vector<std::uint64_t> counts;   // upper_bounds.size() + 1 (overflow)
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;

  /// Bucket-interpolated quantile estimate for q in [0, 1]: walks the
  /// cumulative counts and interpolates linearly inside the containing
  /// bucket, clamped to the observed [min, max].  Exact at q=0 / q=1.
  double quantile(double q) const;
};

/// Merged view over every shard, taken at one instant.  Entries are sorted
/// by name.
struct MetricsSnapshot {
  std::vector<CounterSnapshot> counters;
  std::vector<GaugeSnapshot> gauges;
  std::vector<HistogramSnapshot> histograms;

  const CounterSnapshot* counter(const std::string& name) const;
  const HistogramSnapshot* histogram(const std::string& name) const;
  /// Counter value by name, `fallback` when absent.
  double counter_value(const std::string& name, double fallback = 0.0) const;
};

MetricsSnapshot snapshot();

/// One finished span, merged across threads and sorted by start time.
/// Timestamps are microseconds since the process's trace origin (Chrome
/// trace_event convention).
struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;
  double ts_us = 0.0;
  double dur_us = 0.0;
};

std::vector<TraceEvent> collect_trace();

/// Spans discarded because a thread's trace buffer was full.
std::size_t trace_dropped();

/// Zero every metric cell and trace buffer (definitions and shards stay
/// registered).  Test isolation only -- not thread-safe against concurrent
/// recorders.
void reset_for_tests();

}  // namespace vstack::telemetry

// RAII span macro; the variable name is line-unique so scopes can nest in
// one function.  Collapses to nothing when telemetry is compiled out.
#if VSTACK_TELEMETRY_ENABLED
#define VS_SPAN_CONCAT_INNER(a, b) a##b
#define VS_SPAN_CONCAT(a, b) VS_SPAN_CONCAT_INNER(a, b)
#define VS_SPAN(name) \
  const ::vstack::telemetry::Span VS_SPAN_CONCAT(vs_span_, __LINE__)(name)
#else
#define VS_SPAN(name) \
  do {                \
  } while (false)
#endif
