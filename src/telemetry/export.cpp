#include "telemetry/export.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <sstream>

#include "common/error.h"

namespace vstack::telemetry {

namespace {

/// %.17g round-trips doubles exactly; non-finite values (legal histogram
/// min/max before any sample) are emitted as 0 to keep the JSON parseable.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Metric names are `layer.component.event` identifiers, but escape the
/// JSON specials anyway so a stray name cannot corrupt the artifact.
std::string quoted(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
      continue;
    }
    out += c;
  }
  out += '"';
  return out;
}

void write_build_block(std::ostream& out) {
  const BuildInfo& info = build_info();
  out << "{\"version\":" << quoted(info.version) << ",\"build_type\":"
      << quoted(info.build_type) << ",\"sanitizer\":"
      << quoted(info.sanitizer)
      << ",\"telemetry\":" << (info.telemetry_enabled ? 1 : 0) << "}";
}

}  // namespace

void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap) {
  out << "{\"kind\":\"vstack-metrics\",\"version\":1,\"build\":";
  write_build_block(out);
  out << ",\"counters\":{";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    if (i > 0) out << ",";
    out << quoted(snap.counters[i].name) << ":" << num(snap.counters[i].value);
  }
  out << "},\"gauges\":{";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    if (i > 0) out << ",";
    out << quoted(snap.gauges[i].name) << ":" << num(snap.gauges[i].value);
  }
  out << "},\"histograms\":{";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const HistogramSnapshot& h = snap.histograms[i];
    if (i > 0) out << ",";
    out << quoted(h.name) << ":{\"count\":" << h.count
        << ",\"sum\":" << num(h.sum) << ",\"min\":" << num(h.min)
        << ",\"max\":" << num(h.max) << ",\"p50\":" << num(h.quantile(0.5))
        << ",\"p95\":" << num(h.quantile(0.95)) << ",\"buckets\":[";
    for (std::size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out << ",";
      out << "{\"le\":";
      if (b < h.upper_bounds.size()) {
        out << num(h.upper_bounds[b]);
      } else {
        out << "\"inf\"";
      }
      out << ",\"count\":" << h.counts[b] << "}";
    }
    out << "]}";
  }
  out << "}}\n";
}

std::string metrics_json() {
  std::ostringstream oss;
  write_metrics_json(oss, snapshot());
  return oss.str();
}

void write_metrics_file(const std::string& path) {
  std::ofstream out(path);
  VS_REQUIRE(static_cast<bool>(out),
             "cannot open metrics file '" + path + "' for writing");
  write_metrics_json(out, snapshot());
  VS_REQUIRE(static_cast<bool>(out),
             "failed writing metrics file '" + path + "'");
}

void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::size_t dropped) {
  out << "{\"displayTimeUnit\":\"ns\",\"otherData\":{\"build\":";
  write_build_block(out);
  out << ",\"dropped_events\":" << dropped << "},\"traceEvents\":[";
  for (std::size_t i = 0; i < events.size(); ++i) {
    const TraceEvent& e = events[i];
    // Category = leading name segment ("la.cg.solve" -> "la") so Perfetto
    // can filter by subsystem.
    const auto dot = e.name.find('.');
    const std::string cat =
        dot == std::string::npos ? e.name : e.name.substr(0, dot);
    if (i > 0) out << ",";
    out << "{\"name\":" << quoted(e.name) << ",\"cat\":" << quoted(cat)
        << ",\"ph\":\"X\",\"pid\":1,\"tid\":" << e.tid
        << ",\"ts\":" << num(e.ts_us) << ",\"dur\":" << num(e.dur_us) << "}";
  }
  out << "]}\n";
}

std::string trace_json() {
  std::ostringstream oss;
  write_trace_json(oss, collect_trace(), trace_dropped());
  return oss.str();
}

void write_trace_file(const std::string& path) {
  std::ofstream out(path);
  VS_REQUIRE(static_cast<bool>(out),
             "cannot open trace file '" + path + "' for writing");
  write_trace_json(out, collect_trace(), trace_dropped());
  VS_REQUIRE(static_cast<bool>(out),
             "failed writing trace file '" + path + "'");
}

}  // namespace vstack::telemetry
