// JSON sinks for the telemetry registry: a metrics snapshot
// (`metrics.json`) and a Chrome trace_event file (`trace.json`, open in
// Perfetto or about://tracing).  Both embed the BuildInfo block so
// artifacts stay attributable to an exact build.  Wired through
// `vstack_cli --metrics=PATH --trace=PATH` and bench/bench_util.h.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "telemetry/telemetry.h"

namespace vstack::telemetry {

/// Serialize a snapshot as a single JSON object:
///   {"kind":"vstack-metrics","version":1,"build":{...},
///    "counters":{...},"gauges":{...},"histograms":{...}}
void write_metrics_json(std::ostream& out, const MetricsSnapshot& snap);

/// Snapshot the global registry now and serialize it.
std::string metrics_json();

/// Snapshot and write to `path`; throws vstack::Error when the file cannot
/// be opened.
void write_metrics_file(const std::string& path);

/// Serialize spans in Chrome trace_event format ("X" complete events with
/// microsecond timestamps):
///   {"displayTimeUnit":"ns","otherData":{...},"traceEvents":[...]}
void write_trace_json(std::ostream& out, const std::vector<TraceEvent>& events,
                      std::size_t dropped);

/// Collect the global trace buffer now and serialize it.
std::string trace_json();

/// Collect and write to `path`; throws vstack::Error when the file cannot
/// be opened.
void write_trace_file(const std::string& path);

}  // namespace vstack::telemetry
