#include "la/reorder.h"

#include <algorithm>
#include <queue>

#include "common/error.h"

namespace vstack::la {

std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& a) {
  const std::size_t n = a.size();
  std::vector<std::size_t> degree(n);
  for (std::size_t i = 0; i < n; ++i) {
    degree[i] = a.row_ptr()[i + 1] - a.row_ptr()[i];
  }

  std::vector<bool> visited(n, false);
  std::vector<std::size_t> order;
  order.reserve(n);

  for (;;) {
    // Lowest-degree unvisited node seeds the next component.
    std::size_t seed = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (!visited[i] && (seed == n || degree[i] < degree[seed])) seed = i;
    }
    if (seed == n) break;

    std::queue<std::size_t> frontier;
    frontier.push(seed);
    visited[seed] = true;
    std::vector<std::size_t> neighbours;
    while (!frontier.empty()) {
      const std::size_t u = frontier.front();
      frontier.pop();
      order.push_back(u);
      neighbours.clear();
      for (std::size_t k = a.row_ptr()[u]; k < a.row_ptr()[u + 1]; ++k) {
        const std::size_t v = a.col_idx()[k];
        if (v != u && !visited[v]) {
          visited[v] = true;
          neighbours.push_back(v);
        }
      }
      std::sort(neighbours.begin(), neighbours.end(),
                [&](std::size_t x, std::size_t y) {
                  return degree[x] < degree[y];
                });
      for (const std::size_t v : neighbours) frontier.push(v);
    }
  }

  std::reverse(order.begin(), order.end());
  return order;
}

CsrMatrix permute_symmetric(const CsrMatrix& a,
                            const std::vector<std::size_t>& perm) {
  const std::size_t n = a.size();
  VS_REQUIRE(perm.size() == n, "permutation size mismatch");
  std::vector<std::size_t> inverse(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    VS_REQUIRE(perm[i] < n && inverse[perm[i]] == n,
               "perm must be a permutation");
    inverse[perm[i]] = i;
  }

  CooBuilder builder(n);
  for (std::size_t old_row = 0; old_row < n; ++old_row) {
    const std::size_t new_row = inverse[old_row];
    for (std::size_t k = a.row_ptr()[old_row]; k < a.row_ptr()[old_row + 1];
         ++k) {
      builder.add(new_row, inverse[a.col_idx()[k]], a.values()[k]);
    }
  }
  return builder.build();
}

std::size_t half_bandwidth(const CsrMatrix& a) {
  std::size_t bw = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      bw = std::max(bw, i > j ? i - j : j - i);
    }
  }
  return bw;
}

}  // namespace vstack::la
