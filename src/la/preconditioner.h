// Preconditioners for the Krylov solvers.
#pragma once

#include <memory>

#include "la/sparse.h"
#include "la/vector_ops.h"

namespace vstack::la {

/// Approximate inverse applied as z = M^{-1} r.
class Preconditioner {
 public:
  virtual ~Preconditioner() = default;
  virtual void apply(const Vector& r, Vector& z) const = 0;
};

/// Identity (no preconditioning).
class IdentityPreconditioner final : public Preconditioner {
 public:
  void apply(const Vector& r, Vector& z) const override { z = r; }
};

/// Diagonal (Jacobi) preconditioner.  Rows with zero diagonal pass through.
class JacobiPreconditioner final : public Preconditioner {
 public:
  explicit JacobiPreconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  Vector inv_diag_;
};

/// Zero-fill incomplete LU factorization.  Works on any matrix whose
/// sparsity pattern admits the factorization (the MNA matrices here always
/// have nonzero diagonals after grounding).
class Ilu0Preconditioner final : public Preconditioner {
 public:
  explicit Ilu0Preconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  // LU factors share A's sparsity pattern: strictly-lower entries hold L
  // (unit diagonal implied), diagonal and upper hold U.
  std::size_t n_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> lu_;
  std::vector<std::size_t> diag_pos_;  // index of the diagonal entry per row
};

/// Zero-fill incomplete Cholesky factorization A ~= L L^T for symmetric
/// positive-definite matrices (the regular-PDN and thermal grids).  Stores
/// only the lower triangle, so it halves the factor memory and the
/// triangular-solve work relative to ILU(0) on the same pattern.  Throws
/// vstack::Error when a pivot goes non-positive (matrix not SPD, or too
/// indefinite after fault damage); la::Solver catches that and falls back
/// to ILU(0) -- see the preconditioner ladder in docs/linear_algebra.md.
class Ic0Preconditioner final : public Preconditioner {
 public:
  explicit Ic0Preconditioner(const CsrMatrix& a);
  void apply(const Vector& r, Vector& z) const override;

 private:
  // CSR of the lower triangle of A (diagonal included); after factorization
  // the values hold L with its non-unit diagonal at diag_pos_.
  std::size_t n_;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> val_;
  std::vector<std::size_t> diag_pos_;  // index of the diagonal entry per row
};

/// Factory helpers returning owning pointers.
std::unique_ptr<Preconditioner> make_identity();
std::unique_ptr<Preconditioner> make_jacobi(const CsrMatrix& a);
std::unique_ptr<Preconditioner> make_ilu0(const CsrMatrix& a);
std::unique_ptr<Preconditioner> make_ic0(const CsrMatrix& a);

}  // namespace vstack::la
