// Preconditioned conjugate gradient for symmetric positive-definite systems
// (the regular-PDN and thermal grids), plus the Krylov workspace/context
// plumbing shared with BiCGSTAB.
#pragma once

#include <string>
#include <vector>

#include "common/deadline.h"
#include "la/backend.h"
#include "la/preconditioner.h"
#include "la/sparse.h"

namespace vstack::la {

/// One rung of the front-door solve's escalation ladder (see la/solver.h).
struct SolveAttempt {
  std::string method;          // e.g. "cg+ilu0", "bicgstab+jacobi", "dense-lu"
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;
};

/// Convergence report shared by the Krylov solvers.  The base fields always
/// describe the final (or only) attempt; `attempts` is the full escalation
/// trail when the report comes from la::Solver::solve, so callers can see HOW
/// degraded a solve was, not just whether it succeeded.
struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  // final ||b - Ax|| / ||b||
  std::vector<SolveAttempt> attempts;
  std::string diagnostic;      // nonempty when converged == false
  /// True when the run stopped because IterativeOptions.deadline fired
  /// (cancellation or wall-clock expiry), not because of numerics.  Callers
  /// mapping failures onto TIMEOUT-vs-FAILED responses branch on this.
  bool deadline_expired = false;
};

struct IterativeOptions {
  std::size_t max_iterations = 5000;
  double relative_tolerance = 1e-10;
  /// Stagnation detection: give up when the best residual seen has not
  /// improved by at least a factor of `stagnation_factor` within the last
  /// `stagnation_window` iterations.  0 disables the check (default for
  /// direct solver calls; la::Solver enables it per escalation rung so a
  /// stalled Krylov run hands over to the next method promptly).
  std::size_t stagnation_window = 0;
  double stagnation_factor = 0.99;
  /// Cooperative cancellation / wall-clock deadline, checked every few
  /// iterations.  When it fires mid-solve the report comes back with
  /// converged == false and deadline_expired == true; x holds the iterate
  /// reached so far (la::Solver restores the caller's initial guess on top).
  /// Default: unlimited (one null check per poll).
  Deadline deadline{};
};

/// Reusable iteration scratch shared by CG and BiCGSTAB.  A solver handle
/// owns one and threads it through every solve against its matrix, so the
/// Krylov loops allocate nothing after the first call (docs/
/// linear_algebra.md).  ensure() is idempotent and cheap once sized.
struct KrylovWorkspace {
  Vector r, z, p, ap;           // CG set (ap doubles as SpMV scratch)
  Vector r_hat, v, s, t, y;     // BiCGSTAB extras
  void ensure(std::size_t n) {
    if (r.size() != n) {
      r.resize(n);
      z.resize(n);
      p.resize(n);
      ap.resize(n);
      r_hat.resize(n);
      v.resize(n);
      s.resize(n);
      t.resize(n);
      y.resize(n);
    }
  }
};

/// Optional execution context for a Krylov solve: which kernel backend to
/// run on, an already-prepared matrix form, and a reusable workspace.  Any
/// field may be null; a null backend resolves to default_backend(), and
/// null prepared/workspace fall back to per-call locals.  `prepared` must
/// have been produced by `backend->prepare()` on the same matrix.
struct KrylovContext {
  const Backend* backend = nullptr;
  const BackendMatrix* prepared = nullptr;
  KrylovWorkspace* workspace = nullptr;
};

/// Solve A x = b with preconditioned CG.  `x` is used as the initial guess
/// and receives the solution.
SolveReport conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                               const Preconditioner& precond,
                               const IterativeOptions& options = {});

/// Zero-alloc variant: runs on ctx's backend/prepared-matrix/workspace.
SolveReport conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                               const Preconditioner& precond,
                               const IterativeOptions& options,
                               const KrylovContext& ctx);

}  // namespace vstack::la
