// Preconditioned conjugate gradient for symmetric positive-definite systems
// (the regular-PDN and thermal grids).
#pragma once

#include "la/preconditioner.h"
#include "la/sparse.h"

namespace vstack::la {

/// Convergence report shared by the Krylov solvers.
struct SolveReport {
  bool converged = false;
  std::size_t iterations = 0;
  double residual_norm = 0.0;  // final ||b - Ax|| / ||b||
};

struct IterativeOptions {
  std::size_t max_iterations = 5000;
  double relative_tolerance = 1e-10;
};

/// Solve A x = b with preconditioned CG.  `x` is used as the initial guess
/// and receives the solution.
SolveReport conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                               const Preconditioner& precond,
                               const IterativeOptions& options = {});

}  // namespace vstack::la
