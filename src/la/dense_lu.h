// Dense LU with partial pivoting.
//
// The switched-capacitor transient simulator works on circuits with tens of
// nodes and refactors at every switch phase; a dense factorization is both
// simplest and fastest at that scale.  Also serves as the reference solver
// in the linear-algebra tests.
#pragma once

#include <cstddef>
#include <vector>

#include "common/deadline.h"
#include "la/sparse.h"
#include "la/vector_ops.h"

namespace vstack::la {

/// Row-major dense matrix, minimal interface for LU use.
class DenseMatrix {
 public:
  DenseMatrix() = default;
  DenseMatrix(std::size_t rows, std::size_t cols, double value = 0.0);

  static DenseMatrix from_csr(const CsrMatrix& a);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c);
  double operator()(std::size_t r, std::size_t c) const;

  Vector multiply(const Vector& x) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// LU factorization with partial pivoting; throws vstack::Error on a
/// numerically singular matrix, or when `deadline` fires mid-factorization
/// (the O(n^3) elimination is the one dense step long enough to need a
/// cooperative abort -- see la/solve.cpp's escalation ladder).
class DenseLu {
 public:
  explicit DenseLu(DenseMatrix a, const Deadline& deadline = {});

  /// Solve A x = b for one right-hand side.
  Vector solve(const Vector& b) const;

  std::size_t size() const { return lu_.rows(); }

 private:
  DenseMatrix lu_;
  std::vector<std::size_t> perm_;
};

}  // namespace vstack::la
