#include "la/cg.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::la {

SolveReport conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                               const Preconditioner& precond,
                               const IterativeOptions& options) {
  return conjugate_gradient(a, b, x, precond, options, KrylovContext{});
}

SolveReport conjugate_gradient(const CsrMatrix& a, const Vector& b, Vector& x,
                               const Preconditioner& precond,
                               const IterativeOptions& options,
                               const KrylovContext& ctx) {
  VS_SPAN("la.cg.solve");
  static const telemetry::Counter t_calls("la.cg.calls");
  static const telemetry::Counter t_iters("la.cg.iterations");
  t_calls.add();
  const std::size_t n = a.size();
  VS_REQUIRE(b.size() == n, "cg: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  const Backend& bk = ctx.backend != nullptr ? *ctx.backend
                                             : default_backend();
  std::unique_ptr<BackendMatrix> local_prepared;
  const BackendMatrix* pm = ctx.prepared;
  if (pm == nullptr) {
    local_prepared = bk.prepare(a);
    pm = local_prepared.get();
  }
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  w.ensure(n);

  SolveReport report;
  const double b_norm = bk.norm2(b);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    report.converged = true;
    return report;
  }

  bk.residual(*pm, b, x, w.r);
  const double initial_res = bk.norm2(w.r) / b_norm;
  if (initial_res < options.relative_tolerance) {
    // Warm start already inside tolerance (a re-solve of the same system):
    // iterating from a zero residual breaks down as non-positive curvature.
    report.converged = true;
    report.residual_norm = initial_res;
    return report;
  }
  precond.apply(w.r, w.z);
  w.p = w.z;
  double rz = bk.dot(w.r, w.z);

  double best_res = initial_res;
  std::size_t since_best = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Deadline poll every 8 iterations: the expired() clock read is noise
    // next to a large SpMV but not next to a tiny one.
    if ((it & 7u) == 0u && options.deadline.expired()) {
      VS_LOG_WARN("CG: deadline expired at iteration " << it);
      report.deadline_expired = true;
      break;
    }
    bk.spmv(*pm, w.p, w.ap);
    const double pap = bk.dot(w.p, w.ap);
    if (!(pap > 0.0)) {
      // Not SPD along this direction (or NaN from a broken preconditioner);
      // bail out and report the residual.
      VS_LOG_WARN("CG: non-positive curvature at iteration " << it);
      break;
    }
    const double alpha = rz / pap;
    bk.axpy(alpha, w.p, x);
    const double res = bk.axpy_norm2(-alpha, w.ap, w.r) / b_norm;
    report.iterations = it + 1;
    report.residual_norm = res;
    if (!std::isfinite(res)) {
      VS_LOG_WARN("CG: non-finite residual at iteration " << it);
      break;
    }
    if (res < options.relative_tolerance) {
      report.converged = true;
      t_iters.add(static_cast<double>(report.iterations));
      return report;
    }
    if (options.stagnation_window > 0) {
      if (res <= options.stagnation_factor * best_res) {
        best_res = res;
        since_best = 0;
      } else if (++since_best >= options.stagnation_window) {
        VS_LOG_WARN("CG: stagnated (residual " << res << ") at iteration "
                    << it);
        break;
      }
    }

    precond.apply(w.r, w.z);
    const double rz_new = bk.dot(w.r, w.z);
    const double beta = rz_new / rz;
    rz = rz_new;
    bk.xpby(w.z, beta, w.p);
  }

  bk.residual(*pm, b, x, w.r);
  report.residual_norm = bk.norm2(w.r) / b_norm;
  report.converged = report.residual_norm < options.relative_tolerance;
  t_iters.add(static_cast<double>(report.iterations));
  return report;
}

}  // namespace vstack::la
