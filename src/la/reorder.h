// Bandwidth-reducing node ordering.
//
// Reverse Cuthill-McKee on the matrix's adjacency pattern: BFS from a
// low-degree peripheral node, visiting neighbours in increasing-degree
// order, then reverse.  Shrinks the envelope the skyline Cholesky stores.
#pragma once

#include <vector>

#include "la/sparse.h"

namespace vstack::la {

/// perm[new_index] = old_index.  Works per connected component.
std::vector<std::size_t> reverse_cuthill_mckee(const CsrMatrix& a);

/// Apply a symmetric permutation: B = P A P^T with
/// B(i, j) = A(perm[i], perm[j]).
CsrMatrix permute_symmetric(const CsrMatrix& a,
                            const std::vector<std::size_t>& perm);

/// Half-bandwidth of a matrix: max |i - j| over stored entries.
std::size_t half_bandwidth(const CsrMatrix& a);

}  // namespace vstack::la
