#include "la/solver.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "common/log.h"
#include "la/dense_lu.h"
#include "telemetry/telemetry.h"

namespace vstack::la {

namespace {

// Escalation-ladder telemetry: one attempt == one rung executed, so
// attempts - calls counts how often the first rung was not enough.
const telemetry::Counter t_calls("la.solve.calls");
const telemetry::Counter t_attempts("la.solve.attempts");
const telemetry::Counter t_attempts_failed("la.solve.attempts_failed");
const telemetry::Counter t_iterations("la.solve.iterations");
const telemetry::Counter t_converged("la.solve.converged");
const telemetry::Counter t_failed("la.solve.failed");
const telemetry::Gauge t_last_residual("la.solve.last_residual");
const telemetry::Histogram t_attempt_iters(
    "la.solve.attempt_iterations",
    {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0});

// Handle-lifecycle telemetry: binds counts Solver constructions; the
// per-backend solve counters show which kernel set actually ran.
const telemetry::Counter t_binds("la.solver.binds");
const telemetry::Counter t_solves_reference("la.solver.solves.reference");
const telemetry::Counter t_solves_optimized("la.solver.solves.optimized");

bool all_finite(const Vector& v) {
  for (const double d : v) {
    if (!std::isfinite(d)) return false;
  }
  return true;
}

double relative_residual(const CsrMatrix& a, const Vector& b,
                         const Vector& x) {
  const double b_norm = norm2(b);
  if (b_norm == 0.0) return norm2(a.multiply(x));
  return norm2(subtract(b, a.multiply(x))) / b_norm;
}

/// Build the requested preconditioner tier, degrading down the ladder
/// (IC(0) -> ILU(0) -> Jacobi -> identity) when a factorization is
/// impossible -- e.g. IC(0) on an indefinite fault-damaged matrix, or
/// ILU(0) on a structurally zero diagonal.
std::unique_ptr<Preconditioner> build_precond(const CsrMatrix& a,
                                              PrecondKind kind, bool use_ilu0,
                                              bool symmetric,
                                              std::string& label) {
  if (kind == PrecondKind::Identity) {
    label = "identity";
    return make_identity();
  }
  if (kind == PrecondKind::Ic0) {
    if (symmetric) {
      try {
        label = "ic0";
        return make_ic0(a);
      } catch (const Error&) {
        VS_LOG_WARN("IC(0) factorization broke down; falling back to ILU(0)");
      }
    } else {
      VS_LOG_WARN("IC(0) requested for a non-symmetric system; using ILU(0)");
    }
  }
  const bool want_ilu0 =
      kind == PrecondKind::Ilu0 || kind == PrecondKind::Ic0 ||
      (kind == PrecondKind::Auto && use_ilu0);
  if (want_ilu0) {
    try {
      label = "ilu0";
      return make_ilu0(a);
    } catch (const Error&) {
      VS_LOG_WARN("ILU(0) factorization unavailable; using Jacobi");
    }
  }
  label = "jacobi";
  return make_jacobi(a);
}

/// Copy of `a` with `shift * max|diag|` added to every diagonal entry; used
/// only to REBUILD a better-conditioned preconditioner, never as the system.
CsrMatrix diagonally_shifted(const CsrMatrix& a, double shift) {
  const Vector diag = a.diagonal();
  double max_diag = 0.0;
  for (const double d : diag) max_diag = std::max(max_diag, std::abs(d));
  if (max_diag == 0.0) max_diag = 1.0;
  CooBuilder builder(a.size());
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      builder.add(r, a.col_idx()[k], a.values()[k]);
    }
    builder.add(r, r, shift * max_diag);
  }
  return builder.build();
}

/// Escalation state: runs one rung, records the attempt, restores the
/// initial guess between rungs so a diverged attempt never pollutes the
/// next one (or the caller's output).
class EscalationChain {
 public:
  EscalationChain(const CsrMatrix& a, const Vector& b, Vector& x,
                  const KrylovContext& ctx)
      : a_(a), b_(b), x_(x), x0_(x), ctx_(ctx) {}

  bool run_iterative(const std::string& method, SolverKind kind,
                     const Preconditioner& precond,
                     const IterativeOptions& options) {
    x_ = x0_;
    const SolveReport r =
        kind == SolverKind::Cg
            ? conjugate_gradient(a_, b_, x_, precond, options, ctx_)
            : bicgstab(a_, b_, x_, precond, options, ctx_);
    if (r.deadline_expired) report_.deadline_expired = true;
    return record(method, r.converged && all_finite(x_), r.iterations,
                  r.residual_norm);
  }

  bool run_dense(double accept_tolerance, const Deadline& deadline) {
    try {
      const DenseLu lu(DenseMatrix::from_csr(a_), deadline);
      Vector sol = lu.solve(b_);
      const double res = relative_residual(a_, b_, sol);
      const bool ok =
          all_finite(sol) && std::isfinite(res) && res < accept_tolerance;
      if (ok) x_ = std::move(sol);
      return record("dense-lu", ok, 1, res);
    } catch (const Error&) {
      // A deadline firing mid-factorization also surfaces as Error; tell the
      // two apart so TIMEOUT is never misreported as a singular system.
      const bool aborted = deadline.expired();
      if (aborted) report_.deadline_expired = true;
      return record(aborted ? "dense-lu(aborted)" : "dense-lu(singular)",
                    false, 0, std::numeric_limits<double>::infinity());
    }
  }

  SolveReport finish(const std::string& failure_diagnostic) {
    if (report_.converged) {
      t_converged.add();
    } else {
      t_failed.add();
      x_ = x0_;  // never hand back a diverged/NaN iterate
      report_.diagnostic = failure_diagnostic;
    }
    return std::move(report_);
  }

  const SolveReport& report() const { return report_; }

 private:
  bool record(const std::string& method, bool ok, std::size_t iterations,
              double residual) {
    t_attempts.add();
    if (!ok) t_attempts_failed.add();
    t_iterations.add(static_cast<double>(iterations));
    t_attempt_iters.record(static_cast<double>(iterations));
    t_last_residual.set(residual);
    report_.attempts.push_back({method, ok, iterations, residual});
    report_.iterations = iterations;
    report_.residual_norm = residual;
    if (ok) report_.converged = true;
    return ok;
  }

  const CsrMatrix& a_;
  const Vector& b_;
  Vector& x_;
  Vector x0_;
  const KrylovContext& ctx_;
  SolveReport report_;
};

}  // namespace

Solver::Solver(const CsrMatrix& a, SolveOptions options)
    : a_(&a),
      options_(options),
      backend_(&resolve_backend(options.backend)) {
  t_binds.add();
  kind_ = options_.kind;
  const bool symmetric =
      kind_ == SolverKind::Cg ||
      ((kind_ == SolverKind::Auto || options_.preconditioner ==
        PrecondKind::Ic0) && a.is_symmetric(1e-12));
  if (kind_ == SolverKind::Auto) {
    kind_ = symmetric ? SolverKind::Cg : SolverKind::BiCgStab;
  }
  prepared_ = backend_->prepare(a);
  if (kind_ != SolverKind::DenseLu) {
    precond_ = build_precond(a, options_.preconditioner, options_.use_ilu0,
                             symmetric, precond_label_);
  }
}

SolveReport Solver::solve(const Vector& b, Vector& x) {
  return solve(b, x, options_.iterative);
}

SolveReport Solver::solve(const Vector& b, Vector& x,
                          const IterativeOptions& iterative) {
  VS_SPAN("la.solve");
  t_calls.add();
  (backend_ == &optimized_backend() ? t_solves_optimized : t_solves_reference)
      .add();
  VS_REQUIRE(b.size() == a_->size(), "solve: rhs size mismatch");
  if (x.size() != a_->size()) x.assign(a_->size(), 0.0);

  // Per-attempt budget: enable stagnation detection so a hopeless Krylov run
  // hands over to the next rung instead of burning its whole budget.
  IterativeOptions per_attempt = iterative;
  if (per_attempt.stagnation_window == 0) {
    per_attempt.stagnation_window =
        std::max<std::size_t>(100, per_attempt.max_iterations / 20);
  }
  const double dense_accept =
      std::max(1e-8, 100.0 * iterative.relative_tolerance);

  const Deadline& deadline = iterative.deadline;
  const KrylovContext ctx{backend_, prepared_.get(), &workspace_};
  EscalationChain chain(*a_, b, x, ctx);

  if (kind_ == SolverKind::DenseLu) {
    chain.run_dense(dense_accept, deadline);
    return chain.finish(chain.report().deadline_expired
                            ? "dense LU aborted: deadline expired"
                            : "dense LU failed: numerically singular matrix");
  }

  bool done = false;
  if (kind_ == SolverKind::Cg) {
    done = chain.run_iterative("cg+" + precond_label_, SolverKind::Cg,
                               *precond_, per_attempt);
    if (done || !options_.escalate) {
      return chain.finish("CG did not converge");
    }
  }

  // Between rungs: an expired deadline means the caller wants out, not a
  // harder solver.  Skip the rest of the ladder and report the truncation.
  if (!done && deadline.expired()) {
    return chain.finish("solve aborted: deadline expired");
  }

  if (!done) {
    done = chain.run_iterative("bicgstab+" + precond_label_,
                               SolverKind::BiCgStab, *precond_, per_attempt);
    if (!done && !options_.escalate) {
      return chain.finish("BiCGSTAB did not converge");
    }
  }

  if (!done && deadline.expired()) {
    return chain.finish("solve aborted: deadline expired");
  }

  if (!done) {
    // Rebuilt preconditioner: ILU(0) of a diagonally shifted copy is far
    // more robust on near-singular matrices than ILU(0) of A itself.  The
    // system solved is still the bound matrix, so the prepared form and
    // workspace keep serving this rung.
    VS_LOG_WARN("iterative solve stalled; rebuilding preconditioner");
    try {
      const CsrMatrix shifted =
          diagonally_shifted(*a_, options_.ilu_rebuild_shift);
      const auto rebuilt = make_ilu0(shifted);
      done = chain.run_iterative("bicgstab+shifted-ilu0", SolverKind::BiCgStab,
                                 *rebuilt, per_attempt);
    } catch (const Error&) {
      VS_LOG_WARN("shifted ILU rebuild unavailable; skipping rung");
    }
  }

  if (!done && deadline.expired()) {
    return chain.finish("solve aborted: deadline expired");
  }

  if (!done && a_->size() <= options_.dense_fallback_max_size) {
    VS_LOG_WARN("iterative ladder exhausted; retrying with dense LU");
    done = chain.run_dense(dense_accept, deadline);
  }

  std::ostringstream diag;
  if (!done) {
    if (chain.report().deadline_expired) {
      diag << "solve aborted: deadline expired after "
           << chain.report().attempts.size() << " attempt(s)";
    } else {
      diag << "no solver converged after " << chain.report().attempts.size()
           << " attempt(s) (last residual " << chain.report().residual_norm
           << "); system is likely singular or structurally infeasible";
      if (a_->size() > options_.dense_fallback_max_size) {
        diag << " (dense fallback skipped: " << a_->size() << " unknowns)";
      }
    }
  }
  return chain.finish(diag.str());
}

std::vector<SolveReport> Solver::solve_many(const std::vector<Vector>& bs,
                                            std::vector<Vector>& xs) {
  return solve_many(bs, xs, options_.iterative);
}

std::vector<SolveReport> Solver::solve_many(const std::vector<Vector>& bs,
                                            std::vector<Vector>& xs,
                                            const IterativeOptions& iterative) {
  xs.resize(bs.size());
  std::vector<SolveReport> reports;
  reports.reserve(bs.size());
  for (std::size_t i = 0; i < bs.size(); ++i) {
    reports.push_back(solve(bs[i], xs[i], iterative));
  }
  return reports;
}

SolveReport Solver::iterate_once(const Vector& b, Vector& x,
                                 const IterativeOptions& iterative) {
  VS_REQUIRE(kind_ != SolverKind::DenseLu,
             "iterate_once: dense-LU binds have no iterative primary method");
  const KrylovContext ctx{backend_, prepared_.get(), &workspace_};
  if (kind_ == SolverKind::Cg) {
    return conjugate_gradient(*a_, b, x, *precond_, iterative, ctx);
  }
  return bicgstab(*a_, b, x, *precond_, iterative, ctx);
}

}  // namespace vstack::la
