// Sparse matrix storage.
//
// Matrices are assembled through CooBuilder (duplicate entries are summed,
// which is exactly the "stamping" discipline of modified nodal analysis) and
// then frozen into compressed-sparse-row form for the solvers.
#pragma once

#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace vstack::la {

class CsrMatrix;

/// Coordinate-format assembly buffer.  add(i, j, v) may be called any number
/// of times for the same (i, j); values accumulate, matching MNA stamping.
class CooBuilder {
 public:
  explicit CooBuilder(std::size_t n);

  /// Accumulate `value` at (row, col).  Indices must be < n.
  void add(std::size_t row, std::size_t col, double value);

  std::size_t size() const { return n_; }
  std::size_t entry_count() const { return rows_.size(); }

  /// Sort, merge duplicates, and produce the CSR matrix.
  CsrMatrix build() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> cols_;
  std::vector<double> values_;
};

/// Square compressed-sparse-row matrix with sorted, unique column indices
/// per row.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values);

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A * x
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Entry lookup (binary search within the row); 0 if not stored.
  double at(std::size_t row, std::size_t col) const;

  /// Extract the diagonal; absent diagonal entries read as 0.
  Vector diagonal() const;

  /// Structural + numerical symmetry check within `tol` (relative to the
  /// largest absolute entry).  Used to pick CG vs BiCGSTAB.
  bool is_symmetric(double tol = 1e-12) const;

 private:
  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
};

}  // namespace vstack::la
