// Sparse matrix storage.
//
// Matrices are assembled through CooBuilder (duplicate entries are summed,
// which is exactly the "stamping" discipline of modified nodal analysis) and
// then frozen into compressed-sparse-row form for the solvers.
#pragma once

#include <atomic>
#include <cstddef>
#include <vector>

#include "la/vector_ops.h"

namespace vstack::la {

class CsrMatrix;

/// Coordinate-format assembly buffer.  add(i, j, v) may be called any number
/// of times for the same (i, j); values accumulate, matching MNA stamping.
class CooBuilder {
 public:
  explicit CooBuilder(std::size_t n);

  /// Accumulate `value` at (row, col).  Indices must be < n.
  void add(std::size_t row, std::size_t col, double value);

  std::size_t size() const { return n_; }
  std::size_t entry_count() const { return rows_.size(); }

  /// Sort, merge duplicates, and produce the CSR matrix.
  CsrMatrix build() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> rows_;
  std::vector<std::size_t> cols_;
  std::vector<double> values_;
};

/// Square compressed-sparse-row matrix with sorted, unique column indices
/// per row.
class CsrMatrix {
 public:
  CsrMatrix() = default;
  CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
            std::vector<std::size_t> col_idx, std::vector<double> values);

  // The symmetry memo (an atomic) is not copyable/movable by default; carry
  // its value across copies and moves explicitly -- the answer depends only
  // on the (immutable) payload being copied.
  CsrMatrix(const CsrMatrix& other)
      : n_(other.n_),
        row_ptr_(other.row_ptr_),
        col_idx_(other.col_idx_),
        values_(other.values_),
        symmetry_memo_(other.symmetry_memo_.load(std::memory_order_relaxed)) {}
  CsrMatrix(CsrMatrix&& other) noexcept
      : n_(other.n_),
        row_ptr_(std::move(other.row_ptr_)),
        col_idx_(std::move(other.col_idx_)),
        values_(std::move(other.values_)),
        symmetry_memo_(other.symmetry_memo_.load(std::memory_order_relaxed)) {}
  CsrMatrix& operator=(const CsrMatrix& other) {
    n_ = other.n_;
    row_ptr_ = other.row_ptr_;
    col_idx_ = other.col_idx_;
    values_ = other.values_;
    symmetry_memo_.store(other.symmetry_memo_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }
  CsrMatrix& operator=(CsrMatrix&& other) noexcept {
    n_ = other.n_;
    row_ptr_ = std::move(other.row_ptr_);
    col_idx_ = std::move(other.col_idx_);
    values_ = std::move(other.values_);
    symmetry_memo_.store(other.symmetry_memo_.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
    return *this;
  }

  std::size_t size() const { return n_; }
  std::size_t nnz() const { return values_.size(); }

  const std::vector<std::size_t>& row_ptr() const { return row_ptr_; }
  const std::vector<std::size_t>& col_idx() const { return col_idx_; }
  const std::vector<double>& values() const { return values_; }

  /// y = A * x
  void multiply(const Vector& x, Vector& y) const;
  Vector multiply(const Vector& x) const;

  /// Entry lookup (binary search within the row); 0 if not stored.
  double at(std::size_t row, std::size_t col) const;

  /// Extract the diagonal; absent diagonal entries read as 0.
  Vector diagonal() const;

  /// Structural + numerical symmetry check within `tol` (relative to the
  /// largest absolute entry).  Used to pick CG vs BiCGSTAB.
  ///
  /// The answer for the default tolerance is memoized: the scan costs
  /// O(nnz log row-width) and SolverKind::Auto asks on every bind, so a
  /// cached matrix pays it once instead of per solve.  Values are frozen
  /// after construction, so the memo can never go stale.
  bool is_symmetric(double tol = 1e-12) const;

 private:
  bool symmetry_scan(double tol) const;

  std::size_t n_ = 0;
  std::vector<std::size_t> row_ptr_;
  std::vector<std::size_t> col_idx_;
  std::vector<double> values_;
  /// Memo for is_symmetric at the default tolerance: -1 unknown, 0 no,
  /// 1 yes.  Atomic so concurrent readers (campaign workers sharing a
  /// const model) race benignly on the same answer.
  mutable std::atomic<signed char> symmetry_memo_{-1};
};

}  // namespace vstack::la
