#include "la/sparse.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace vstack::la {

CooBuilder::CooBuilder(std::size_t n) : n_(n) {
  VS_REQUIRE(n > 0, "matrix dimension must be positive");
}

void CooBuilder::add(std::size_t row, std::size_t col, double value) {
  VS_REQUIRE(row < n_ && col < n_, "stamp index out of range");
  rows_.push_back(row);
  cols_.push_back(col);
  values_.push_back(value);
}

CsrMatrix CooBuilder::build() const {
  // Sort entry indices by (row, col), then merge duplicates.
  std::vector<std::size_t> order(rows_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (rows_[a] != rows_[b]) return rows_[a] < rows_[b];
    return cols_[a] < cols_[b];
  });

  // row_ptr holds per-row entry counts during the merge pass and is turned
  // into cumulative offsets afterwards.
  std::vector<std::size_t> row_ptr(n_ + 1, 0);
  std::vector<std::size_t> col_idx;
  std::vector<double> values;
  col_idx.reserve(order.size());
  values.reserve(order.size());

  std::size_t prev_row = n_;  // sentinel: no previous entry
  std::size_t prev_col = n_;
  for (const std::size_t e : order) {
    if (!values.empty() && rows_[e] == prev_row && cols_[e] == prev_col) {
      values.back() += values_[e];
      continue;
    }
    col_idx.push_back(cols_[e]);
    values.push_back(values_[e]);
    row_ptr[rows_[e] + 1]++;
    prev_row = rows_[e];
    prev_col = cols_[e];
  }
  for (std::size_t r = 0; r < n_; ++r) row_ptr[r + 1] += row_ptr[r];

  return CsrMatrix(n_, std::move(row_ptr), std::move(col_idx),
                   std::move(values));
}

CsrMatrix::CsrMatrix(std::size_t n, std::vector<std::size_t> row_ptr,
                     std::vector<std::size_t> col_idx,
                     std::vector<double> values)
    : n_(n),
      row_ptr_(std::move(row_ptr)),
      col_idx_(std::move(col_idx)),
      values_(std::move(values)) {
  VS_REQUIRE(row_ptr_.size() == n_ + 1, "row_ptr size must be n + 1");
  VS_REQUIRE(col_idx_.size() == values_.size(),
             "col_idx and values must have equal length");
  VS_REQUIRE(row_ptr_.back() == values_.size(),
             "row_ptr must end at nnz");
}

void CsrMatrix::multiply(const Vector& x, Vector& y) const {
  VS_REQUIRE(x.size() == n_, "multiply: dimension mismatch");
  y.assign(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) {
    double s = 0.0;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      s += values_[k] * x[col_idx_[k]];
    }
    y[r] = s;
  }
}

Vector CsrMatrix::multiply(const Vector& x) const {
  Vector y;
  multiply(x, y);
  return y;
}

double CsrMatrix::at(std::size_t row, std::size_t col) const {
  VS_REQUIRE(row < n_ && col < n_, "at: index out of range");
  const auto begin = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row]);
  const auto end = col_idx_.begin() + static_cast<std::ptrdiff_t>(row_ptr_[row + 1]);
  const auto it = std::lower_bound(begin, end, col);
  if (it == end || *it != col) return 0.0;
  return values_[static_cast<std::size_t>(it - col_idx_.begin())];
}

Vector CsrMatrix::diagonal() const {
  Vector d(n_, 0.0);
  for (std::size_t r = 0; r < n_; ++r) d[r] = at(r, r);
  return d;
}

bool CsrMatrix::is_symmetric(double tol) const {
  constexpr double kDefaultTol = 1e-12;
  if (tol == kDefaultTol) {
    const signed char memo = symmetry_memo_.load(std::memory_order_relaxed);
    if (memo >= 0) return memo != 0;
    const bool sym = symmetry_scan(tol);
    symmetry_memo_.store(sym ? 1 : 0, std::memory_order_relaxed);
    return sym;
  }
  return symmetry_scan(tol);
}

bool CsrMatrix::symmetry_scan(double tol) const {
  double max_abs = 0.0;
  for (double v : values_) max_abs = std::max(max_abs, std::abs(v));
  const double threshold = tol * std::max(max_abs, 1.0);
  for (std::size_t r = 0; r < n_; ++r) {
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      const std::size_t c = col_idx_[k];
      if (std::abs(values_[k] - at(c, r)) > threshold) return false;
    }
  }
  return true;
}

}  // namespace vstack::la
