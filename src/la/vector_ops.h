// Dense vector kernels shared by the iterative solvers.
#pragma once

#include <vector>

namespace vstack::la {

using Vector = std::vector<double>;

/// Dot product; vectors must have equal length.
double dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double norm2(const Vector& a);

/// Infinity norm (max absolute entry); 0 for an empty vector.
double norm_inf(const Vector& a);

/// y += alpha * x
void axpy(double alpha, const Vector& x, Vector& y);

/// y = x + beta * y  (used by CG's direction update)
void xpby(const Vector& x, double beta, Vector& y);

/// out = a - b
Vector subtract(const Vector& a, const Vector& b);

/// Fill with a constant.
void fill(Vector& v, double value);

}  // namespace vstack::la
