#include "la/vector_ops.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vstack::la {

double dot(const Vector& a, const Vector& b) {
  VS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double norm2(const Vector& a) { return std::sqrt(dot(a, a)); }

double norm_inf(const Vector& a) {
  double m = 0.0;
  for (double x : a) m = std::max(m, std::abs(x));
  return m;
}

void axpy(double alpha, const Vector& x, Vector& y) {
  VS_REQUIRE(x.size() == y.size(), "axpy: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

void xpby(const Vector& x, double beta, Vector& y) {
  VS_REQUIRE(x.size() == y.size(), "xpby: size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] = x[i] + beta * y[i];
}

Vector subtract(const Vector& a, const Vector& b) {
  VS_REQUIRE(a.size() == b.size(), "subtract: size mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] - b[i];
  return out;
}

void fill(Vector& v, double value) {
  std::fill(v.begin(), v.end(), value);
}

}  // namespace vstack::la
