// Front-door solve: picks CG for symmetric matrices and BiCGSTAB otherwise,
// with ILU(0) preconditioning, and throws if the system fails to converge.
#pragma once

#include "la/bicgstab.h"
#include "la/cg.h"

namespace vstack::la {

enum class SolverKind { Auto, Cg, BiCgStab, DenseLu };

struct SolveOptions {
  SolverKind kind = SolverKind::Auto;
  IterativeOptions iterative;
  bool use_ilu0 = true;  // fall back to Jacobi when false
};

/// Solve A x = b; x is the initial guess and receives the solution.
/// Throws vstack::Error if the selected solver does not converge.
SolveReport solve(const CsrMatrix& a, const Vector& b, Vector& x,
                  const SolveOptions& options = {});

}  // namespace vstack::la
