// DEPRECATED front door -- kept as a thin shim over la::Solver.
//
// la::solve(a, b, x, opts) constructs a temporary Solver and runs one solve
// through the full graceful-degradation ladder (see la/solver.h for the
// ladder description).  Behavior, attempt labels, telemetry, and -- on the
// reference backend -- the arithmetic are identical to the historic free
// function.
//
// Prefer la::Solver for anything that solves the same matrix more than
// once: the shim re-prepares the backend matrix, re-probes symmetry, and
// re-factorizes the preconditioner on every call, all of which the handle
// pays exactly once.  Migration guide: docs/linear_algebra.md.
#pragma once

#include "la/solver.h"

namespace vstack::la {

/// Solve A x = b; x is the initial guess and receives the solution.
///
/// NON-THROWING on solver failure: check report.converged.  On failure,
/// report.diagnostic names the reason, report.attempts holds the full trail,
/// and x is restored to the caller's initial guess -- never NaN.  (Size
/// mismatches and other precondition violations still throw vstack::Error.)
///
/// DEPRECATED: one-shot convenience only; use la::Solver to amortize
/// per-matrix setup across repeated solves.
SolveReport solve(const CsrMatrix& a, const Vector& b, Vector& x,
                  const SolveOptions& options = {});

}  // namespace vstack::la
