// Front-door solve with a graceful-degradation ladder.
//
// The primary method is CG for symmetric matrices and BiCGSTAB otherwise,
// with ILU(0) preconditioning.  When the primary method stalls (fault-damaged
// PDNs routinely produce near-singular or indefinite systems), the solve
// escalates instead of throwing:
//
//   CG -> BiCGSTAB -> BiCGSTAB with a rebuilt, diagonally-shifted ILU ->
//   dense LU (systems up to dense_fallback_max_size unknowns)
//
// Every rung restarts from the caller's initial guess, runs under a
// per-attempt iteration budget with stagnation detection, and is recorded in
// SolveReport::attempts so callers can see how degraded the solve was.
#pragma once

#include "la/bicgstab.h"
#include "la/cg.h"

namespace vstack::la {

enum class SolverKind { Auto, Cg, BiCgStab, DenseLu };

struct SolveOptions {
  SolverKind kind = SolverKind::Auto;
  IterativeOptions iterative;
  bool use_ilu0 = true;  // fall back to Jacobi when false
  /// Escalate through the fallback ladder on non-convergence.  When false,
  /// only the primary method runs (one attempt).
  bool escalate = true;
  /// Largest system the final dense-LU rung will factorize; anything bigger
  /// skips that rung (a dense factorization would not fit in memory).
  std::size_t dense_fallback_max_size = 4000;
  /// Relative diagonal shift applied to the rebuilt-preconditioner rung
  /// (stabilizes ILU on near-singular matrices; the system solved is still
  /// the original A).
  double ilu_rebuild_shift = 1e-6;
};

/// Solve A x = b; x is the initial guess and receives the solution.
///
/// NON-THROWING on solver failure: check report.converged.  On failure,
/// report.diagnostic names the reason, report.attempts holds the full trail,
/// and x is restored to the caller's initial guess -- never NaN.  (Size
/// mismatches and other precondition violations still throw vstack::Error.)
SolveReport solve(const CsrMatrix& a, const Vector& b, Vector& x,
                  const SolveOptions& options = {});

}  // namespace vstack::la
