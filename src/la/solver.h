// la::Solver -- the stateful front door of the linear-algebra layer.
//
// A Solver binds one CsrMatrix to one kernel Backend and owns everything a
// repeated solve against that matrix can reuse:
//
//   * the backend's prepared matrix form (32-bit-index CSR for the
//     optimized backend), built once at bind time;
//   * the resolved solver kind (the SolverKind::Auto symmetry probe runs
//     once, not per call);
//   * the preconditioner (IC(0) / ILU(0) / Jacobi per PrecondKind, with
//     the factorization-failure fallback chain applied at bind time);
//   * a KrylovWorkspace, so the CG/BiCGSTAB loops allocate nothing after
//     the first solve.
//
// solve() runs the same graceful-degradation ladder the free-function
// la::solve always has:
//
//   CG -> BiCGSTAB -> BiCGSTAB with a rebuilt, diagonally-shifted ILU ->
//   dense LU (systems up to dense_fallback_max_size unknowns)
//
// Every rung restarts from the caller's initial guess, runs under a
// per-attempt iteration budget with stagnation detection, and is recorded
// in SolveReport::attempts.  The bound matrix must outlive the Solver and
// must not move or change values while bound; callers that rebuild their
// matrix (topology epoch bumps) rebuild the Solver with it.
//
// The legacy free function la::solve (la/solve.h) is a thin shim over a
// temporary Solver and is DEPRECATED for repeated solves: it re-prepares
// the matrix, re-probes symmetry, and re-factorizes the preconditioner on
// every call.  See docs/linear_algebra.md for the migration guide.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "la/backend.h"
#include "la/bicgstab.h"
#include "la/cg.h"

namespace vstack::la {

enum class SolverKind { Auto, Cg, BiCgStab, DenseLu };

/// Preconditioner ladder position.  Auto preserves the historic behavior
/// (ILU(0) when use_ilu0, else Jacobi).  Ic0 sits one tier above ILU(0)
/// for symmetric systems: half the factor memory and triangular-solve work,
/// but it requires a (numerically) SPD matrix -- on breakdown, or on a
/// non-symmetric system, it degrades to ILU(0) with a warning, then to
/// Jacobi, exactly like the historic factorization-failure chain.
enum class PrecondKind { Auto, Ic0, Ilu0, Jacobi, Identity };

struct SolveOptions {
  SolverKind kind = SolverKind::Auto;
  IterativeOptions iterative;
  bool use_ilu0 = true;  // PrecondKind::Auto falls back to Jacobi when false
  /// Which preconditioner tier to start from (degrades on failure).
  PrecondKind preconditioner = PrecondKind::Auto;
  /// Kernel backend; Auto defers to default_backend() (--la-backend /
  /// $VSTACK_LA_BACKEND / reference).
  BackendChoice backend = BackendChoice::Auto;
  /// Escalate through the fallback ladder on non-convergence.  When false,
  /// only the primary method runs (one attempt).
  bool escalate = true;
  /// Largest system the final dense-LU rung will factorize; anything bigger
  /// skips that rung (a dense factorization would not fit in memory).
  std::size_t dense_fallback_max_size = 4000;
  /// Relative diagonal shift applied to the rebuilt-preconditioner rung
  /// (stabilizes ILU on near-singular matrices; the system solved is still
  /// the original A).
  double ilu_rebuild_shift = 1e-6;
};

class Solver {
 public:
  /// Bind `a` (which must outlive the Solver, at a stable address) and pay
  /// all per-matrix costs up front: backend preparation, the Auto symmetry
  /// probe, and the preconditioner factorization.
  explicit Solver(const CsrMatrix& a, SolveOptions options = {});

  Solver(Solver&&) = default;
  Solver& operator=(Solver&&) = default;
  Solver(const Solver&) = delete;
  Solver& operator=(const Solver&) = delete;

  /// Solve A x = b through the full escalation ladder; x is the initial
  /// guess and receives the solution.
  ///
  /// NON-THROWING on solver failure: check report.converged.  On failure,
  /// report.diagnostic names the reason, report.attempts holds the full
  /// trail, and x is restored to the caller's initial guess -- never NaN.
  /// (Size mismatches and other precondition violations still throw
  /// vstack::Error.)
  SolveReport solve(const Vector& b, Vector& x);

  /// Same ladder with per-call iteration limits/tolerance/deadline.
  SolveReport solve(const Vector& b, Vector& x,
                    const IterativeOptions& iterative);

  /// Batched multi-RHS solve: each xs[i] is the initial guess for bs[i]
  /// (resized to zeros when absent).  Runs the RHSs sequentially through
  /// the shared workspace / prepared matrix / preconditioner, so results
  /// are bitwise identical to looping solve() -- the win is amortization,
  /// not reordering.  Returns one report per RHS.
  std::vector<SolveReport> solve_many(const std::vector<Vector>& bs,
                                      std::vector<Vector>& xs);
  std::vector<SolveReport> solve_many(const std::vector<Vector>& bs,
                                      std::vector<Vector>& xs,
                                      const IterativeOptions& iterative);

  /// One attempt of the primary method (CG for symmetric binds, BiCGSTAB
  /// otherwise) with the bound preconditioner -- no escalation ladder, no
  /// guess restore on failure.  This is the warm-start fast path used by
  /// the PDN and transient caches; on a stall they follow up with solve()
  /// from a cold start and keep the full attempt trail.
  SolveReport iterate_once(const Vector& b, Vector& x,
                           const IterativeOptions& iterative);

  const CsrMatrix& matrix() const { return *a_; }
  const Backend& backend() const { return *backend_; }
  const SolveOptions& options() const { return options_; }
  /// Kind after Auto resolution (never SolverKind::Auto).
  SolverKind kind() const { return kind_; }
  /// Label of the preconditioner actually built after fallbacks, e.g.
  /// "ic0", "ilu0", "jacobi", "identity" -- attempt names embed it.
  const std::string& preconditioner_label() const { return precond_label_; }

 private:
  const CsrMatrix* a_;
  SolveOptions options_;
  const Backend* backend_;
  SolverKind kind_ = SolverKind::Cg;
  std::unique_ptr<BackendMatrix> prepared_;
  std::unique_ptr<Preconditioner> precond_;
  std::string precond_label_;
  KrylovWorkspace workspace_;
};

}  // namespace vstack::la
