// Preconditioned BiCGSTAB for the non-symmetric MNA systems produced by the
// voltage-stacked PDN (the push-pull converter element couples node voltages
// to a branch current asymmetrically).
#pragma once

#include "la/cg.h"

namespace vstack::la {

/// Solve A x = b with right-preconditioned BiCGSTAB.  `x` is the initial
/// guess and receives the solution.
SolveReport bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond,
                     const IterativeOptions& options = {});

/// Zero-alloc variant: runs on ctx's backend/prepared-matrix/workspace.
SolveReport bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond,
                     const IterativeOptions& options,
                     const KrylovContext& ctx);

}  // namespace vstack::la
