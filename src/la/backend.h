// Pluggable linear-algebra kernel backends.
//
// Every Krylov solve is built from a handful of kernels: CSR SpMV, dot,
// norm, axpy/xpby, and two fused update+reduce forms.  A Backend bundles
// one implementation of that kernel set:
//
//   * ReferenceBackend -- the original scalar kernels, byte-for-byte the
//     arithmetic this repo has always produced.  Always the default; every
//     bit-identity guarantee (campaign manifests, jobs=N determinism,
//     telemetry ON/OFF comparisons) is stated against it.
//
//   * OptimizedBackend -- SIMD-friendly kernels: a diagonal-band (DIA)
//     prepared form for stencil-structured matrices (contiguous gather-free
//     SpMV streams; grid-stamped PDN/thermal systems qualify), a 32-bit-
//     index CSR form otherwise (halves index bandwidth), 4-way unrolled
//     multi-accumulator reductions, and genuinely fused update+norm passes.
//     Reductions associate differently, so results agree with the
//     reference only to solver tolerance, never bitwise
//     (docs/linear_algebra.md "numerics policy").
//
// Backends are stateless singletons.  Matrix-shaped state (the prepared
// form) lives in a BackendMatrix produced by prepare(); la::Solver caches
// one per bound matrix so repeated solves pay the preparation exactly once.
// Selection: SolveOptions::backend > set_default_backend() (the CLI's
// --la-backend) > the VSTACK_LA_BACKEND environment variable > reference.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "la/sparse.h"
#include "la/vector_ops.h"

namespace vstack::la {

/// Backend-specific prepared form of a CsrMatrix.  Opaque to callers; pass
/// it back only to the backend that produced it, and only while the source
/// matrix outlives it.
class BackendMatrix {
 public:
  virtual ~BackendMatrix() = default;
};

/// One kernel-set implementation.  All vector arguments must already have
/// matching sizes except spmv/residual outputs, which are resized.
class Backend {
 public:
  virtual ~Backend() = default;

  virtual const char* name() const = 0;

  /// True when every kernel reproduces the scalar reference arithmetic
  /// bit-for-bit (same operation order).  Backends where this is false are
  /// validated to solver tolerance instead (see docs/linear_algebra.md).
  virtual bool bit_identical() const = 0;

  /// Build the backend's prepared form of `a`.  `a` must outlive the
  /// result.  Cheap for the reference backend (a wrapper); one CSR copy
  /// with narrowed indices for the optimized backend.
  virtual std::unique_ptr<BackendMatrix> prepare(const CsrMatrix& a) const = 0;

  /// y = A x
  virtual void spmv(const BackendMatrix& m, const Vector& x,
                    Vector& y) const = 0;

  virtual double dot(const Vector& a, const Vector& b) const = 0;
  virtual double norm2(const Vector& a) const = 0;
  virtual void axpy(double alpha, const Vector& x, Vector& y) const = 0;
  virtual void xpby(const Vector& x, double beta, Vector& y) const = 0;

  /// Fused: y += alpha * x, returning ||y||_2.  The reference implementation
  /// is the unfused axpy-then-norm2 pair (bit-identical to the historic
  /// two-call sequence); optimized backends fuse the passes.
  virtual double axpy_norm2(double alpha, const Vector& x, Vector& y) const;

  /// Fused: r = b - A x (the Krylov restart residual).
  virtual void residual(const BackendMatrix& m, const Vector& b,
                        const Vector& x, Vector& r) const;
};

/// The two in-tree backends (process-lifetime singletons).
const Backend& reference_backend();
const Backend& optimized_backend();

/// Lookup by name ("reference" | "optimized"); nullptr when unknown.
const Backend* backend_by_name(const std::string& name);

/// Every backend this build ships, in registry order.
std::vector<const Backend*> all_backends();

/// Process-wide default used when SolveOptions::backend is Auto: the last
/// set_default_backend() value, else $VSTACK_LA_BACKEND (unknown values log
/// a warning and fall back), else the reference backend.
const Backend& default_backend();

/// Override the process default (the CLI's --la-backend).  Throws
/// vstack::Error for an unknown name.
void set_default_backend(const std::string& name);

/// Backend selection carried by SolveOptions.
enum class BackendChoice { Auto, Reference, Optimized };

/// Resolve a choice against the process default.
const Backend& resolve_backend(BackendChoice choice);

}  // namespace vstack::la
