#include "la/solve.h"

namespace vstack::la {

SolveReport solve(const CsrMatrix& a, const Vector& b, Vector& x,
                  const SolveOptions& options) {
  Solver solver(a, options);
  return solver.solve(b, x);
}

}  // namespace vstack::la
