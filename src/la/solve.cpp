#include "la/solve.h"

#include "common/error.h"
#include "common/log.h"
#include "la/dense_lu.h"

namespace vstack::la {

SolveReport solve(const CsrMatrix& a, const Vector& b, Vector& x,
                  const SolveOptions& options) {
  SolverKind kind = options.kind;
  if (kind == SolverKind::Auto) {
    kind = a.is_symmetric(1e-12) ? SolverKind::Cg : SolverKind::BiCgStab;
  }

  if (kind == SolverKind::DenseLu) {
    DenseLu lu(DenseMatrix::from_csr(a));
    x = lu.solve(b);
    SolveReport report;
    report.converged = true;
    report.iterations = 1;
    report.residual_norm = 0.0;
    return report;
  }

  const auto precond =
      options.use_ilu0 ? make_ilu0(a) : make_jacobi(a);

  SolveReport report;
  if (kind == SolverKind::Cg) {
    report = conjugate_gradient(a, b, x, *precond, options.iterative);
  } else {
    report = bicgstab(a, b, x, *precond, options.iterative);
  }

  if (!report.converged) {
    VS_LOG_WARN("iterative solve stalled (residual="
                << report.residual_norm << " after " << report.iterations
                << " iterations); retrying with dense LU");
    // Robust fallback for small systems; a dense factorization of anything
    // much larger would not fit in memory, so refuse instead.
    VS_REQUIRE(a.size() <= 4000,
               "iterative solver failed to converge on a large system");
    DenseLu lu(DenseMatrix::from_csr(a));
    x = lu.solve(b);
    report.converged = true;
    report.residual_norm = 0.0;
  }
  return report;
}

}  // namespace vstack::la
