// Skyline (envelope) Cholesky factorization for SPD systems.
//
// Stores each row's profile from its first nonzero column to the diagonal;
// fill-in within the envelope is allowed, outside it none occurs.  Pair
// with reverse_cuthill_mckee to keep the envelope small.  Factor once,
// back-substitute per right-hand side -- the right tool for the transient
// engine's hundreds of solves against one matrix.
#pragma once

#include <memory>
#include <vector>

#include "la/reorder.h"
#include "la/sparse.h"

namespace vstack::la {

class SkylineCholesky {
 public:
  /// Factor A = L L^T.  Throws vstack::Error if A is not SPD (within
  /// numerical tolerance) or not symmetric in pattern.
  explicit SkylineCholesky(const CsrMatrix& a);

  /// Solve A x = b.
  Vector solve(const Vector& b) const;

  std::size_t size() const { return n_; }
  /// Stored envelope entries (a measure of memory/flops).
  std::size_t envelope_size() const { return values_.size(); }

 private:
  double& entry(std::size_t row, std::size_t col);
  double entry(std::size_t row, std::size_t col) const;

  std::size_t n_ = 0;
  std::vector<std::size_t> first_col_;  // per row, start of its profile
  std::vector<std::size_t> row_start_;  // offset of each row in values_
  std::vector<double> values_;          // row profiles incl. the diagonal
};

/// Convenience: RCM-permuted factorization bundled with its ordering, so
/// callers can solve in the original numbering.
class ReorderedCholesky {
 public:
  explicit ReorderedCholesky(const CsrMatrix& a);

  Vector solve(const Vector& b) const;

  std::size_t envelope_size() const { return factor_->envelope_size(); }
  std::size_t bandwidth_before() const { return bw_before_; }
  std::size_t bandwidth_after() const { return bw_after_; }

 private:
  std::vector<std::size_t> perm_;     // new -> old
  std::vector<std::size_t> inverse_;  // old -> new
  std::unique_ptr<SkylineCholesky> factor_;
  std::size_t bw_before_ = 0;
  std::size_t bw_after_ = 0;
};

}  // namespace vstack::la
