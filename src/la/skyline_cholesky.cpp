#include "la/skyline_cholesky.h"

#include <cmath>

#include "common/error.h"

namespace vstack::la {

SkylineCholesky::SkylineCholesky(const CsrMatrix& a) : n_(a.size()) {
  VS_REQUIRE(n_ > 0, "cannot factor an empty matrix");

  // Row profiles: first nonzero column at or below the diagonal.
  first_col_.assign(n_, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    std::size_t first = i;  // at least the diagonal
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      if (j < first) first = j;
    }
    first_col_[i] = first;
  }

  row_start_.assign(n_ + 1, 0);
  for (std::size_t i = 0; i < n_; ++i) {
    row_start_[i + 1] = row_start_[i] + (i - first_col_[i] + 1);
  }
  values_.assign(row_start_[n_], 0.0);

  // Scatter the lower triangle of A into the envelope.
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = a.row_ptr()[i]; k < a.row_ptr()[i + 1]; ++k) {
      const std::size_t j = a.col_idx()[k];
      if (j <= i) entry(i, j) = a.values()[k];
    }
  }

  // Row-oriented Cholesky within the envelope:
  //   L(i, j) = (A(i, j) - sum_k L(i, k) L(j, k)) / L(j, j)
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t j = first_col_[i]; j < i; ++j) {
      const std::size_t lo = std::max(first_col_[i], first_col_[j]);
      double s = entry(i, j);
      for (std::size_t k = lo; k < j; ++k) {
        s -= entry(i, k) * entry(j, k);
      }
      entry(i, j) = s / entry(j, j);
    }
    double d = entry(i, i);
    for (std::size_t k = first_col_[i]; k < i; ++k) {
      d -= entry(i, k) * entry(i, k);
    }
    VS_REQUIRE(d > 0.0, "matrix is not positive definite");
    entry(i, i) = std::sqrt(d);
  }
}

double& SkylineCholesky::entry(std::size_t row, std::size_t col) {
  return values_[row_start_[row] + (col - first_col_[row])];
}

double SkylineCholesky::entry(std::size_t row, std::size_t col) const {
  if (col < first_col_[row]) return 0.0;
  return values_[row_start_[row] + (col - first_col_[row])];
}

Vector SkylineCholesky::solve(const Vector& b) const {
  VS_REQUIRE(b.size() == n_, "rhs size mismatch");
  Vector y(n_);
  // Forward: L y = b.
  for (std::size_t i = 0; i < n_; ++i) {
    double s = b[i];
    for (std::size_t k = first_col_[i]; k < i; ++k) {
      s -= entry(i, k) * y[k];
    }
    y[i] = s / entry(i, i);
  }
  // Backward: L^T x = y, column sweep so only row profiles are touched:
  // once x[col] is final, retire its contribution L(col, k) * x[col] from
  // every earlier unknown k in row col's profile.
  for (std::size_t col = n_; col-- > 0;) {
    y[col] /= entry(col, col);
    for (std::size_t k = first_col_[col]; k < col; ++k) {
      y[k] -= entry(col, k) * y[col];
    }
  }
  return y;
}

ReorderedCholesky::ReorderedCholesky(const CsrMatrix& a) {
  bw_before_ = half_bandwidth(a);
  perm_ = reverse_cuthill_mckee(a);
  inverse_.assign(perm_.size(), 0);
  for (std::size_t i = 0; i < perm_.size(); ++i) inverse_[perm_[i]] = i;
  const CsrMatrix permuted = permute_symmetric(a, perm_);
  bw_after_ = half_bandwidth(permuted);
  factor_ = std::make_unique<SkylineCholesky>(permuted);
}

Vector ReorderedCholesky::solve(const Vector& b) const {
  VS_REQUIRE(b.size() == perm_.size(), "rhs size mismatch");
  Vector pb(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) pb[i] = b[perm_[i]];
  const Vector px = factor_->solve(pb);
  Vector x(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) x[perm_[i]] = px[i];
  return x;
}

}  // namespace vstack::la
