#include "la/dense_lu.h"

#include <cmath>

#include "common/error.h"

namespace vstack::la {

DenseMatrix::DenseMatrix(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {
  VS_REQUIRE(rows > 0 && cols > 0, "dense matrix dimensions must be positive");
}

DenseMatrix DenseMatrix::from_csr(const CsrMatrix& a) {
  DenseMatrix d(a.size(), a.size(), 0.0);
  for (std::size_t r = 0; r < a.size(); ++r) {
    for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
      d(r, a.col_idx()[k]) = a.values()[k];
    }
  }
  return d;
}

double& DenseMatrix::operator()(std::size_t r, std::size_t c) {
  VS_REQUIRE(r < rows_ && c < cols_, "dense index out of range");
  return data_[r * cols_ + c];
}

double DenseMatrix::operator()(std::size_t r, std::size_t c) const {
  VS_REQUIRE(r < rows_ && c < cols_, "dense index out of range");
  return data_[r * cols_ + c];
}

Vector DenseMatrix::multiply(const Vector& x) const {
  VS_REQUIRE(x.size() == cols_, "dense multiply: dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    double s = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) s += data_[r * cols_ + c] * x[c];
    y[r] = s;
  }
  return y;
}

DenseLu::DenseLu(DenseMatrix a, const Deadline& deadline)
    : lu_(std::move(a)), perm_(lu_.rows()) {
  VS_REQUIRE(lu_.rows() == lu_.cols(), "LU requires a square matrix");
  const std::size_t n = lu_.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // One elimination step is O((n-k)^2); poll every 16 to keep the clock
    // read off the critical path for the tiny switched-cap matrices.
    VS_REQUIRE((k & 15u) != 0u || !deadline.expired(),
               "LU: deadline expired during factorization");
    // Partial pivoting.
    std::size_t pivot_row = k;
    double pivot_val = std::abs(lu_(k, k));
    for (std::size_t r = k + 1; r < n; ++r) {
      if (std::abs(lu_(r, k)) > pivot_val) {
        pivot_val = std::abs(lu_(r, k));
        pivot_row = r;
      }
    }
    VS_REQUIRE(pivot_val > 1e-300, "LU: numerically singular matrix");
    if (pivot_row != k) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(lu_(k, c), lu_(pivot_row, c));
      }
      std::swap(perm_[k], perm_[pivot_row]);
    }
    for (std::size_t r = k + 1; r < n; ++r) {
      const double m = lu_(r, k) / lu_(k, k);
      lu_(r, k) = m;
      for (std::size_t c = k + 1; c < n; ++c) {
        lu_(r, c) -= m * lu_(k, c);
      }
    }
  }
}

Vector DenseLu::solve(const Vector& b) const {
  const std::size_t n = lu_.rows();
  VS_REQUIRE(b.size() == n, "LU solve: rhs size mismatch");
  Vector x(n);
  // Apply permutation, forward solve (unit lower).
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[perm_[i]];
    for (std::size_t j = 0; j < i; ++j) s -= lu_(i, j) * x[j];
    x[i] = s;
  }
  // Backward solve (upper).
  for (std::size_t ii = n; ii-- > 0;) {
    double s = x[ii];
    for (std::size_t j = ii + 1; j < n; ++j) s -= lu_(ii, j) * x[j];
    x[ii] = s / lu_(ii, ii);
  }
  return x;
}

}  // namespace vstack::la
