#include "la/bicgstab.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::la {

SolveReport bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond,
                     const IterativeOptions& options) {
  return bicgstab(a, b, x, precond, options, KrylovContext{});
}

SolveReport bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond,
                     const IterativeOptions& options,
                     const KrylovContext& ctx) {
  VS_SPAN("la.bicgstab.solve");
  static const telemetry::Counter t_calls("la.bicgstab.calls");
  static const telemetry::Counter t_iters("la.bicgstab.iterations");
  t_calls.add();
  const std::size_t n = a.size();
  VS_REQUIRE(b.size() == n, "bicgstab: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  const Backend& bk = ctx.backend != nullptr ? *ctx.backend
                                             : default_backend();
  std::unique_ptr<BackendMatrix> local_prepared;
  const BackendMatrix* pm = ctx.prepared;
  if (pm == nullptr) {
    local_prepared = bk.prepare(a);
    pm = local_prepared.get();
  }
  KrylovWorkspace local_ws;
  KrylovWorkspace& w = ctx.workspace != nullptr ? *ctx.workspace : local_ws;
  w.ensure(n);

  SolveReport report;
  const double b_norm = bk.norm2(b);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    report.converged = true;
    return report;
  }

  bk.residual(*pm, b, x, w.r);
  const double initial_res = bk.norm2(w.r) / b_norm;
  if (initial_res < options.relative_tolerance) {
    // Warm start already inside tolerance (a re-solve of the same system):
    // iterating from a zero residual hits the rho-breakdown guard.
    report.converged = true;
    report.residual_norm = initial_res;
    return report;
  }
  w.r_hat = w.r;  // shadow residual
  fill(w.p, 0.0);
  fill(w.v, 0.0);

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  double best_res = initial_res;
  std::size_t since_best = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Deadline poll every 8 iterations (same cadence as CG).
    if ((it & 7u) == 0u && options.deadline.expired()) {
      VS_LOG_WARN("BiCGSTAB: deadline expired at iteration " << it);
      report.deadline_expired = true;
      break;
    }
    const double rho_new = bk.dot(w.r_hat, w.r);
    if (std::abs(rho_new) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: rho breakdown at iteration " << it);
      break;
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta * (p - omega * v)
    for (std::size_t i = 0; i < n; ++i) {
      w.p[i] = w.r[i] + beta * (w.p[i] - omega * w.v[i]);
    }
    precond.apply(w.p, w.y);
    bk.spmv(*pm, w.y, w.v);
    const double rhv = bk.dot(w.r_hat, w.v);
    if (std::abs(rhv) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: alpha breakdown at iteration " << it);
      break;
    }
    alpha = rho / rhv;
    for (std::size_t i = 0; i < n; ++i) w.s[i] = w.r[i] - alpha * w.v[i];

    report.iterations = it + 1;
    if (bk.norm2(w.s) / b_norm < options.relative_tolerance) {
      bk.axpy(alpha, w.y, x);
      report.residual_norm = bk.norm2(w.s) / b_norm;
      report.converged = true;
      t_iters.add(static_cast<double>(report.iterations));
      return report;
    }

    precond.apply(w.s, w.z);
    bk.spmv(*pm, w.z, w.t);
    const double tt = bk.dot(w.t, w.t);
    if (tt == 0.0) {
      VS_LOG_WARN("BiCGSTAB: omega breakdown at iteration " << it);
      bk.axpy(alpha, w.y, x);
      break;
    }
    omega = bk.dot(w.t, w.s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * w.y[i] + omega * w.z[i];
      w.r[i] = w.s[i] - omega * w.t[i];
    }
    const double res = bk.norm2(w.r) / b_norm;
    report.residual_norm = res;
    if (!std::isfinite(res)) {
      VS_LOG_WARN("BiCGSTAB: non-finite residual at iteration " << it);
      break;
    }
    if (res < options.relative_tolerance) {
      report.converged = true;
      t_iters.add(static_cast<double>(report.iterations));
      return report;
    }
    if (std::abs(omega) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: stagnation (omega ~ 0) at iteration " << it);
      break;
    }
    if (options.stagnation_window > 0) {
      if (res <= options.stagnation_factor * best_res) {
        best_res = res;
        since_best = 0;
      } else if (++since_best >= options.stagnation_window) {
        VS_LOG_WARN("BiCGSTAB: stagnated (residual " << res
                    << ") at iteration " << it);
        break;
      }
    }
  }

  bk.residual(*pm, b, x, w.r);
  report.residual_norm = bk.norm2(w.r) / b_norm;
  report.converged = report.residual_norm < options.relative_tolerance;
  t_iters.add(static_cast<double>(report.iterations));
  return report;
}

}  // namespace vstack::la
