#include "la/bicgstab.h"

#include <cmath>

#include "common/error.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::la {

SolveReport bicgstab(const CsrMatrix& a, const Vector& b, Vector& x,
                     const Preconditioner& precond,
                     const IterativeOptions& options) {
  VS_SPAN("la.bicgstab.solve");
  static const telemetry::Counter t_calls("la.bicgstab.calls");
  static const telemetry::Counter t_iters("la.bicgstab.iterations");
  t_calls.add();
  const std::size_t n = a.size();
  VS_REQUIRE(b.size() == n, "bicgstab: rhs size mismatch");
  if (x.size() != n) x.assign(n, 0.0);

  SolveReport report;
  const double b_norm = norm2(b);
  if (b_norm == 0.0) {
    fill(x, 0.0);
    report.converged = true;
    return report;
  }

  Vector r = subtract(b, a.multiply(x));
  Vector r_hat = r;  // shadow residual
  Vector p(n, 0.0), v(n, 0.0), s(n), t(n), y(n), z(n);

  double rho = 1.0, alpha = 1.0, omega = 1.0;
  double best_res = norm2(r) / b_norm;
  std::size_t since_best = 0;

  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    // Deadline poll every 8 iterations (same cadence as CG).
    if ((it & 7u) == 0u && options.deadline.expired()) {
      VS_LOG_WARN("BiCGSTAB: deadline expired at iteration " << it);
      report.deadline_expired = true;
      break;
    }
    const double rho_new = dot(r_hat, r);
    if (std::abs(rho_new) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: rho breakdown at iteration " << it);
      break;
    }
    const double beta = (rho_new / rho) * (alpha / omega);
    rho = rho_new;
    // p = r + beta * (p - omega * v)
    for (std::size_t i = 0; i < n; ++i) {
      p[i] = r[i] + beta * (p[i] - omega * v[i]);
    }
    precond.apply(p, y);
    a.multiply(y, v);
    const double rhv = dot(r_hat, v);
    if (std::abs(rhv) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: alpha breakdown at iteration " << it);
      break;
    }
    alpha = rho / rhv;
    for (std::size_t i = 0; i < n; ++i) s[i] = r[i] - alpha * v[i];

    report.iterations = it + 1;
    if (norm2(s) / b_norm < options.relative_tolerance) {
      axpy(alpha, y, x);
      report.residual_norm = norm2(s) / b_norm;
      report.converged = true;
      t_iters.add(static_cast<double>(report.iterations));
      return report;
    }

    precond.apply(s, z);
    a.multiply(z, t);
    const double tt = dot(t, t);
    if (tt == 0.0) {
      VS_LOG_WARN("BiCGSTAB: omega breakdown at iteration " << it);
      axpy(alpha, y, x);
      break;
    }
    omega = dot(t, s) / tt;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * y[i] + omega * z[i];
      r[i] = s[i] - omega * t[i];
    }
    const double res = norm2(r) / b_norm;
    report.residual_norm = res;
    if (!std::isfinite(res)) {
      VS_LOG_WARN("BiCGSTAB: non-finite residual at iteration " << it);
      break;
    }
    if (res < options.relative_tolerance) {
      report.converged = true;
      t_iters.add(static_cast<double>(report.iterations));
      return report;
    }
    if (std::abs(omega) < 1e-300) {
      VS_LOG_WARN("BiCGSTAB: stagnation (omega ~ 0) at iteration " << it);
      break;
    }
    if (options.stagnation_window > 0) {
      if (res <= options.stagnation_factor * best_res) {
        best_res = res;
        since_best = 0;
      } else if (++since_best >= options.stagnation_window) {
        VS_LOG_WARN("BiCGSTAB: stagnated (residual " << res
                    << ") at iteration " << it);
        break;
      }
    }
  }

  report.residual_norm = norm2(subtract(b, a.multiply(x))) / b_norm;
  report.converged = report.residual_norm < options.relative_tolerance;
  t_iters.add(static_cast<double>(report.iterations));
  return report;
}

}  // namespace vstack::la
