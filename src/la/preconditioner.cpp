#include "la/preconditioner.h"

#include <cmath>
#include <string>

#include "common/error.h"

namespace vstack::la {

JacobiPreconditioner::JacobiPreconditioner(const CsrMatrix& a) {
  inv_diag_ = a.diagonal();
  for (double& d : inv_diag_) {
    d = (std::abs(d) > 0.0) ? 1.0 / d : 1.0;
  }
}

void JacobiPreconditioner::apply(const Vector& r, Vector& z) const {
  VS_REQUIRE(r.size() == inv_diag_.size(), "jacobi apply: size mismatch");
  z.resize(r.size());
  for (std::size_t i = 0; i < r.size(); ++i) z[i] = r[i] * inv_diag_[i];
}

Ilu0Preconditioner::Ilu0Preconditioner(const CsrMatrix& a)
    : n_(a.size()),
      row_ptr_(a.row_ptr()),
      col_idx_(a.col_idx()),
      lu_(a.values()),
      diag_pos_(a.size()) {
  // Locate diagonal entries.
  for (std::size_t r = 0; r < n_; ++r) {
    bool found = false;
    for (std::size_t k = row_ptr_[r]; k < row_ptr_[r + 1]; ++k) {
      if (col_idx_[k] == r) {
        diag_pos_[r] = k;
        found = true;
        break;
      }
    }
    VS_REQUIRE(found, "ILU(0) requires a structurally nonzero diagonal");
  }

  // IKJ-variant ILU(0): for each row i, eliminate using previous rows that
  // appear in row i's pattern.
  std::vector<std::ptrdiff_t> pos_in_row(n_, -1);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      pos_in_row[col_idx_[k]] = static_cast<std::ptrdiff_t>(k);
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      const std::size_t j = col_idx_[k];
      if (j >= i) break;  // columns are sorted; strictly-lower part first
      const double pivot = lu_[diag_pos_[j]];
      VS_REQUIRE(std::abs(pivot) > 0.0, "ILU(0) zero pivot");
      const double lij = lu_[k] / pivot;
      lu_[k] = lij;
      // Subtract lij * U(j, j+1:) restricted to row i's pattern.
      for (std::size_t kk = diag_pos_[j] + 1; kk < row_ptr_[j + 1]; ++kk) {
        const std::ptrdiff_t p = pos_in_row[col_idx_[kk]];
        if (p >= 0) lu_[static_cast<std::size_t>(p)] -= lij * lu_[kk];
      }
    }
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      pos_in_row[col_idx_[k]] = -1;
    }
  }
}

void Ilu0Preconditioner::apply(const Vector& r, Vector& z) const {
  VS_REQUIRE(r.size() == n_, "ilu0 apply: size mismatch");
  z.resize(n_);
  // Forward solve L y = r (unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = r[i];
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      s -= lu_[k] * z[col_idx_[k]];
    }
    z[i] = s;
  }
  // Backward solve U z = y.
  for (std::size_t ii = n_; ii-- > 0;) {
    double s = z[ii];
    for (std::size_t k = diag_pos_[ii] + 1; k < row_ptr_[ii + 1]; ++k) {
      s -= lu_[k] * z[col_idx_[k]];
    }
    z[ii] = s / lu_[diag_pos_[ii]];
  }
}

Ic0Preconditioner::Ic0Preconditioner(const CsrMatrix& a) : n_(a.size()) {
  // Extract the lower triangle (diagonal included) into a private CSR.
  const auto& arp = a.row_ptr();
  const auto& aci = a.col_idx();
  const auto& av = a.values();
  row_ptr_.assign(n_ + 1, 0);
  diag_pos_.resize(n_);
  for (std::size_t r = 0; r < n_; ++r) {
    std::size_t count = 0;
    for (std::size_t k = arp[r]; k < arp[r + 1]; ++k) {
      if (aci[k] <= r) ++count;
    }
    row_ptr_[r + 1] = row_ptr_[r] + count;
  }
  col_idx_.resize(row_ptr_[n_]);
  val_.resize(row_ptr_[n_]);
  for (std::size_t r = 0; r < n_; ++r) {
    std::size_t out = row_ptr_[r];
    bool found = false;
    for (std::size_t k = arp[r]; k < arp[r + 1]; ++k) {
      if (aci[k] > r) break;  // columns are sorted
      col_idx_[out] = aci[k];
      val_[out] = av[k];
      if (aci[k] == r) {
        diag_pos_[r] = out;
        found = true;
      }
      ++out;
    }
    VS_REQUIRE(found, "IC(0) requires a structurally nonzero diagonal");
  }

  // Row-oriented IC(0): L(i,j) = (A(i,j) - sum_m L(i,m) L(j,m)) / L(j,j)
  // with the sum restricted to the shared lower pattern, then
  // L(i,i) = sqrt(A(i,i) - sum_m L(i,m)^2).  A non-positive pivot means the
  // matrix is not (numerically) SPD on this pattern; throw so the caller's
  // ladder can fall back to ILU(0).
  std::vector<std::ptrdiff_t> pos_in_row(n_, -1);
  for (std::size_t i = 0; i < n_; ++i) {
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      pos_in_row[col_idx_[k]] = static_cast<std::ptrdiff_t>(k);
    }
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      const std::size_t j = col_idx_[k];
      double s = val_[k];
      for (std::size_t kk = row_ptr_[j]; kk < diag_pos_[j]; ++kk) {
        const std::ptrdiff_t p = pos_in_row[col_idx_[kk]];
        if (p >= 0) s -= val_[static_cast<std::size_t>(p)] * val_[kk];
      }
      val_[k] = s / val_[diag_pos_[j]];
    }
    double d = val_[diag_pos_[i]];
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      d -= val_[k] * val_[k];
    }
    VS_REQUIRE(d > 0.0, "IC(0) breakdown: non-positive pivot at row " +
                            std::to_string(i));
    val_[diag_pos_[i]] = std::sqrt(d);
    for (std::size_t k = row_ptr_[i]; k < row_ptr_[i + 1]; ++k) {
      pos_in_row[col_idx_[k]] = -1;
    }
  }
}

void Ic0Preconditioner::apply(const Vector& r, Vector& z) const {
  VS_REQUIRE(r.size() == n_, "ic0 apply: size mismatch");
  z.resize(n_);
  // Forward solve L y = r (non-unit diagonal).
  for (std::size_t i = 0; i < n_; ++i) {
    double s = r[i];
    for (std::size_t k = row_ptr_[i]; k < diag_pos_[i]; ++k) {
      s -= val_[k] * z[col_idx_[k]];
    }
    z[i] = s / val_[diag_pos_[i]];
  }
  // Backward solve L^T z = y, sweeping L's rows bottom-up and scattering
  // each solved z[i] into the rows above it.
  for (std::size_t ii = n_; ii-- > 0;) {
    const double zi = z[ii] / val_[diag_pos_[ii]];
    z[ii] = zi;
    for (std::size_t k = row_ptr_[ii]; k < diag_pos_[ii]; ++k) {
      z[col_idx_[k]] -= val_[k] * zi;
    }
  }
}

std::unique_ptr<Preconditioner> make_identity() {
  return std::make_unique<IdentityPreconditioner>();
}

std::unique_ptr<Preconditioner> make_jacobi(const CsrMatrix& a) {
  return std::make_unique<JacobiPreconditioner>(a);
}

std::unique_ptr<Preconditioner> make_ilu0(const CsrMatrix& a) {
  return std::make_unique<Ilu0Preconditioner>(a);
}

std::unique_ptr<Preconditioner> make_ic0(const CsrMatrix& a) {
  return std::make_unique<Ic0Preconditioner>(a);
}

}  // namespace vstack::la
