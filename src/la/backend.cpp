#include "la/backend.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <limits>

#include "common/error.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::la {

namespace {

// Kernel-shape telemetry: row counts of matrices entering each backend's
// prepared form.  Cheap (once per Solver bind, not per SpMV).
const telemetry::Histogram t_prepared_rows(
    "la.backend.prepared_rows",
    {64.0, 512.0, 4096.0, 32768.0, 262144.0, 2097152.0});

// ---------------------------------------------------------------------------
// Reference backend: today's scalar kernels, untouched operation order.

class ReferencePrepared final : public BackendMatrix {
 public:
  explicit ReferencePrepared(const CsrMatrix& a) : a_(&a) {}
  const CsrMatrix& matrix() const { return *a_; }

 private:
  const CsrMatrix* a_;
};

class ReferenceBackend final : public Backend {
 public:
  const char* name() const override { return "reference"; }
  bool bit_identical() const override { return true; }

  std::unique_ptr<BackendMatrix> prepare(const CsrMatrix& a) const override {
    t_prepared_rows.record(static_cast<double>(a.size()));
    return std::make_unique<ReferencePrepared>(a);
  }

  void spmv(const BackendMatrix& m, const Vector& x,
            Vector& y) const override {
    static_cast<const ReferencePrepared&>(m).matrix().multiply(x, y);
  }

  double dot(const Vector& a, const Vector& b) const override {
    return la::dot(a, b);
  }
  double norm2(const Vector& a) const override { return la::norm2(a); }
  void axpy(double alpha, const Vector& x, Vector& y) const override {
    la::axpy(alpha, x, y);
  }
  void xpby(const Vector& x, double beta, Vector& y) const override {
    la::xpby(x, beta, y);
  }
  // axpy_norm2 / residual: the base-class unfused sequences are exactly the
  // historic call pairs -- keep them.
};

// ---------------------------------------------------------------------------
// Optimized backend: 32-bit-index CSR, unrolled multi-accumulator
// reductions, fused update+reduce passes.  Elementwise kernels (axpy, xpby)
// keep the reference arithmetic -- vectorizing them cannot change results --
// so only reductions and the fused forms diverge from bitwise identity.

class OptimizedPrepared final : public BackendMatrix {
 public:
  explicit OptimizedPrepared(const CsrMatrix& a) : a_(&a) {
    const std::size_t n = a.size();
    const std::size_t nnz = a.nnz();
    narrow_ = nnz < std::numeric_limits<std::uint32_t>::max() &&
              n < std::numeric_limits<std::uint32_t>::max();
    if (!narrow_) return;  // million-billion-node guard: scalar fallback
    if (try_build_dia(a)) return;
    row_ptr_.resize(n + 1);
    col_.resize(nnz);
    for (std::size_t i = 0; i <= n; ++i) {
      row_ptr_[i] = static_cast<std::uint32_t>(a.row_ptr()[i]);
    }
    for (std::size_t k = 0; k < nnz; ++k) {
      col_[k] = static_cast<std::uint32_t>(a.col_idx()[k]);
    }
  }

  const CsrMatrix& matrix() const { return *a_; }
  bool narrow() const { return narrow_; }
  const std::uint32_t* row_ptr() const { return row_ptr_.data(); }
  const std::uint32_t* col() const { return col_.data(); }

  bool diagonal_form() const { return !offsets_.empty(); }
  const std::vector<std::ptrdiff_t>& offsets() const { return offsets_; }
  /// Band j (offset offsets()[j]) starts at dia()[j * size()]; entry i is
  /// A[i][i + offset] (zero-padded where absent or out of range).
  const double* dia() const { return dia_.data(); }

 private:
  /// DIA detection: grid-stamped PDN/thermal matrices concentrate their
  /// nonzeros on a handful of diagonals (5 for a 2D 5-point stencil).
  /// Storing those as dense bands turns SpMV's per-row gather loop into a
  /// few contiguous fused-multiply streams with no index loads at all --
  /// the autovectorizer's best case.  The zero padding is admitted only
  /// while total band storage stays within 2x the CSR value storage, so
  /// unstructured matrices keep the narrow-CSR form.
  bool try_build_dia(const CsrMatrix& a) {
    constexpr std::size_t kMaxDiagonals = 12;
    const std::size_t n = a.size();
    std::vector<std::ptrdiff_t> offsets;
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
        const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(a.col_idx()[k]) -
                                 static_cast<std::ptrdiff_t>(r);
        const auto it = std::lower_bound(offsets.begin(), offsets.end(), d);
        if (it != offsets.end() && *it == d) continue;
        if (offsets.size() >= kMaxDiagonals) return false;
        offsets.insert(it, d);
      }
    }
    if (offsets.empty() || offsets.size() * n > 2 * a.nnz()) return false;
    dia_.assign(offsets.size() * n, 0.0);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t k = a.row_ptr()[r]; k < a.row_ptr()[r + 1]; ++k) {
        const std::ptrdiff_t d = static_cast<std::ptrdiff_t>(a.col_idx()[k]) -
                                 static_cast<std::ptrdiff_t>(r);
        const std::size_t j = static_cast<std::size_t>(
            std::lower_bound(offsets.begin(), offsets.end(), d) -
            offsets.begin());
        dia_[j * n + r] = a.values()[k];
      }
    }
    offsets_ = std::move(offsets);
    return true;
  }

  const CsrMatrix* a_;
  bool narrow_ = false;
  std::vector<std::uint32_t> row_ptr_;
  std::vector<std::uint32_t> col_;
  std::vector<std::ptrdiff_t> offsets_;
  std::vector<double> dia_;
};

/// Fused DIA interior: rows where every diagonal is in range.  K is the
/// compile-time diagonal count, so the inner sum unrolls completely and
/// the autovectorizer turns the row loop into shifted contiguous FMA
/// streams -- no index loads, no gathers, one pass over the output.
/// Sub selects out = bsrc - A x (the fused residual) vs out = A x.
template <std::size_t K, bool Sub>
void dia_fused(const double* const* bands, const std::size_t* shift,
               const double* xd, const double* bsrc, double* out,
               std::size_t lo, std::size_t hi) {
  for (std::size_t i = lo; i < hi; ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < K; ++j) s += bands[j][i] * xd[i + shift[j]];
    out[i] = Sub ? bsrc[i] - s : s;
  }
}

/// out = A x (Sub = false) or out = bsrc - A x (Sub = true) over the DIA
/// bands.  Boundary rows (where some diagonal runs off the matrix) take
/// clipped per-diagonal accumulation; the interior takes the fused
/// single-pass kernel above.
template <bool Sub>
void dia_compute(const OptimizedPrepared& p, const double* xd,
                 const double* bsrc, double* out, std::size_t n) {
  const auto& offsets = p.offsets();
  const std::size_t nd = offsets.size();
  const double* bands[12];
  std::size_t shift[12];   // two's-complement offset: i + shift[j] == i + d
  std::size_t lo_j[12], hi_j[12];
  std::size_t lo_all = 0, hi_all = n;
  for (std::size_t j = 0; j < nd; ++j) {
    const std::ptrdiff_t d = offsets[j];
    bands[j] = p.dia() + j * n;
    shift[j] = static_cast<std::size_t>(d);
    lo_j[j] = d < 0 ? static_cast<std::size_t>(-d) : 0;
    hi_j[j] = d > 0 ? n - static_cast<std::size_t>(d) : n;
    lo_all = std::max(lo_all, lo_j[j]);
    hi_all = std::min(hi_all, hi_j[j]);
  }
  if (hi_all < lo_all) hi_all = lo_all;  // huge offsets: no fused interior

  // Boundary head/tail: initialize, then accumulate each diagonal over its
  // clipped range (ascending-offset order == ascending-column order).
  for (std::size_t i = 0; i < lo_all; ++i) out[i] = Sub ? bsrc[i] : 0.0;
  for (std::size_t i = hi_all; i < n; ++i) out[i] = Sub ? bsrc[i] : 0.0;
  for (std::size_t j = 0; j < nd; ++j) {
    const double* band = bands[j];
    const std::size_t d = shift[j];
    const std::size_t head_hi = std::min(hi_j[j], lo_all);
    for (std::size_t i = lo_j[j]; i < head_hi; ++i) {
      out[i] += (Sub ? -band[i] : band[i]) * xd[i + d];
    }
    const std::size_t tail_lo = std::max(lo_j[j], hi_all);
    for (std::size_t i = tail_lo; i < hi_j[j]; ++i) {
      out[i] += (Sub ? -band[i] : band[i]) * xd[i + d];
    }
  }

  switch (nd) {
    case 1: dia_fused<1, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 2: dia_fused<2, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 3: dia_fused<3, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 4: dia_fused<4, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 5: dia_fused<5, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 6: dia_fused<6, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 7: dia_fused<7, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 8: dia_fused<8, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 9: dia_fused<9, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 10: dia_fused<10, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 11: dia_fused<11, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    case 12: dia_fused<12, Sub>(bands, shift, xd, bsrc, out, lo_all, hi_all); break;
    default: break;  // try_build_dia caps nd at 12
  }
}

class OptimizedBackend final : public Backend {
 public:
  const char* name() const override { return "optimized"; }
  bool bit_identical() const override { return false; }

  std::unique_ptr<BackendMatrix> prepare(const CsrMatrix& a) const override {
    t_prepared_rows.record(static_cast<double>(a.size()));
    return std::make_unique<OptimizedPrepared>(a);
  }

  void spmv(const BackendMatrix& m, const Vector& x,
            Vector& y) const override {
    const auto& p = static_cast<const OptimizedPrepared&>(m);
    const CsrMatrix& a = p.matrix();
    const std::size_t n = a.size();
    VS_REQUIRE(x.size() == n, "spmv: dimension mismatch");
    y.resize(n);  // no zero-fill: every row is fully overwritten below
    if (!p.narrow()) {
      a.multiply(x, y);
      return;
    }
    if (p.diagonal_form()) {
      dia_compute<false>(p, x.data(), nullptr, y.data(), n);
      return;
    }
    const std::uint32_t* rp = p.row_ptr();
    const std::uint32_t* col = p.col();
    const double* val = a.values().data();
    const double* xd = x.data();
    double* yd = y.data();
    for (std::size_t r = 0; r < n; ++r) {
      const std::uint32_t begin = rp[r];
      const std::uint32_t end = rp[r + 1];
      // 4-way unrolled gather with two accumulators; PDN rows are short
      // (5-9 nnz) so the scalar tail matters as much as the unrolled body.
      double s0 = 0.0, s1 = 0.0;
      std::uint32_t k = begin;
      for (; k + 4 <= end; k += 4) {
        s0 += val[k] * xd[col[k]] + val[k + 2] * xd[col[k + 2]];
        s1 += val[k + 1] * xd[col[k + 1]] + val[k + 3] * xd[col[k + 3]];
      }
      for (; k < end; ++k) s0 += val[k] * xd[col[k]];
      yd[r] = s0 + s1;
    }
  }

  double dot(const Vector& a, const Vector& b) const override {
    VS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
    const double* ad = a.data();
    const double* bd = b.data();
    const std::size_t n = a.size();
    double s0 = 0.0, s1 = 0.0, s2 = 0.0, s3 = 0.0;
    std::size_t i = 0;
    for (; i + 4 <= n; i += 4) {
      s0 += ad[i] * bd[i];
      s1 += ad[i + 1] * bd[i + 1];
      s2 += ad[i + 2] * bd[i + 2];
      s3 += ad[i + 3] * bd[i + 3];
    }
    for (; i < n; ++i) s0 += ad[i] * bd[i];
    return (s0 + s1) + (s2 + s3);
  }

  double norm2(const Vector& a) const override {
    return std::sqrt(dot(a, a));
  }

  void axpy(double alpha, const Vector& x, Vector& y) const override {
    la::axpy(alpha, x, y);  // elementwise: vectorization-safe as-is
  }
  void xpby(const Vector& x, double beta, Vector& y) const override {
    la::xpby(x, beta, y);
  }

  double axpy_norm2(double alpha, const Vector& x, Vector& y) const override {
    VS_REQUIRE(x.size() == y.size(), "axpy_norm2: size mismatch");
    const double* xd = x.data();
    double* yd = y.data();
    const std::size_t n = x.size();
    double s0 = 0.0, s1 = 0.0;
    std::size_t i = 0;
    for (; i + 2 <= n; i += 2) {
      const double y0 = yd[i] + alpha * xd[i];
      const double y1 = yd[i + 1] + alpha * xd[i + 1];
      yd[i] = y0;
      yd[i + 1] = y1;
      s0 += y0 * y0;
      s1 += y1 * y1;
    }
    for (; i < n; ++i) {
      const double y0 = yd[i] + alpha * xd[i];
      yd[i] = y0;
      s0 += y0 * y0;
    }
    return std::sqrt(s0 + s1);
  }

  void residual(const BackendMatrix& m, const Vector& b, const Vector& x,
                Vector& r) const override {
    const auto& p = static_cast<const OptimizedPrepared&>(m);
    const CsrMatrix& a = p.matrix();
    const std::size_t n = a.size();
    VS_REQUIRE(b.size() == n && x.size() == n, "residual: size mismatch");
    if (!p.narrow()) {
      Backend::residual(m, b, x, r);
      return;
    }
    r.resize(n);
    if (p.diagonal_form()) {
      dia_compute<true>(p, x.data(), b.data(), r.data(), n);
      return;
    }
    const std::uint32_t* rp = p.row_ptr();
    const std::uint32_t* col = p.col();
    const double* val = a.values().data();
    const double* xd = x.data();
    for (std::size_t row = 0; row < n; ++row) {
      double s0 = 0.0, s1 = 0.0;
      std::uint32_t k = rp[row];
      const std::uint32_t end = rp[row + 1];
      for (; k + 4 <= end; k += 4) {
        s0 += val[k] * xd[col[k]] + val[k + 2] * xd[col[k + 2]];
        s1 += val[k + 1] * xd[col[k + 1]] + val[k + 3] * xd[col[k + 3]];
      }
      for (; k < end; ++k) s0 += val[k] * xd[col[k]];
      r[row] = b[row] - (s0 + s1);
    }
  }
};

std::atomic<const Backend*> g_default_override{nullptr};

const Backend* env_backend() {
  // Resolved once; the warning for an unknown value fires once too.
  static const Backend* resolved = [] {
    const char* env = std::getenv("VSTACK_LA_BACKEND");
    if (env == nullptr || *env == '\0') return &reference_backend();
    if (const Backend* b = backend_by_name(env)) return b;
    VS_LOG_WARN("unknown VSTACK_LA_BACKEND '" << env
                << "'; using the reference backend");
    return &reference_backend();
  }();
  return resolved;
}

}  // namespace

double Backend::axpy_norm2(double alpha, const Vector& x, Vector& y) const {
  axpy(alpha, x, y);
  return norm2(y);
}

void Backend::residual(const BackendMatrix& m, const Vector& b,
                       const Vector& x, Vector& r) const {
  // Unfused reference sequence: r = A x, then r = b - r elementwise.  The
  // subtraction order matches the historic subtract(b, a.multiply(x)).
  spmv(m, x, r);
  VS_REQUIRE(b.size() == r.size(), "residual: size mismatch");
  for (std::size_t i = 0; i < r.size(); ++i) r[i] = b[i] - r[i];
}

const Backend& reference_backend() {
  static const ReferenceBackend instance;
  return instance;
}

const Backend& optimized_backend() {
  static const OptimizedBackend instance;
  return instance;
}

const Backend* backend_by_name(const std::string& name) {
  if (name == "reference") return &reference_backend();
  if (name == "optimized") return &optimized_backend();
  return nullptr;
}

std::vector<const Backend*> all_backends() {
  return {&reference_backend(), &optimized_backend()};
}

const Backend& default_backend() {
  if (const Backend* b = g_default_override.load(std::memory_order_acquire)) {
    return *b;
  }
  return *env_backend();
}

void set_default_backend(const std::string& name) {
  const Backend* b = backend_by_name(name);
  VS_REQUIRE(b != nullptr, "unknown linear-algebra backend '" + name +
                               "' (available: reference, optimized)");
  g_default_override.store(b, std::memory_order_release);
}

const Backend& resolve_backend(BackendChoice choice) {
  switch (choice) {
    case BackendChoice::Reference: return reference_backend();
    case BackendChoice::Optimized: return optimized_backend();
    case BackendChoice::Auto: break;
  }
  return default_backend();
}

}  // namespace vstack::la
