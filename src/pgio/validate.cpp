#include "pgio/validate.h"

#include <cmath>
#include <cstdio>

#include "common/error.h"
#include "la/backend.h"
#include "telemetry/telemetry.h"

namespace vstack::pgio {

namespace {

la::BackendChoice choice_by_name(const std::string& name) {
  // Resolve through the registry so the error lists what actually exists.
  VS_REQUIRE(la::backend_by_name(name) != nullptr,
             "unknown la backend '" + name + "'");
  return name == "optimized" ? la::BackendChoice::Optimized
                             : la::BackendChoice::Reference;
}

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3e", v);
  return buf;
}

}  // namespace

bool ValidationReport::pass() const {
  if (backends.empty()) return false;
  for (const auto& b : backends) {
    if (!b.pass()) return false;
  }
  return true;
}

std::string ValidationReport::format() const {
  std::string out;
  for (const auto& b : backends) {
    out += b.backend + ": ";
    if (!b.solve_ok) {
      out += "solve FAILED (" + b.diagnostic + ")\n";
      continue;
    }
    out += "max |err| " + sci(b.max_abs_error_v) + " V, rms " +
           sci(b.rms_error_v) + " V over " + std::to_string(b.compared) +
           " nodes";
    if (!b.worst_node.empty()) out += " (worst at " + b.worst_node + ")";
    if (b.missing > 0) {
      out += ", " + std::to_string(b.missing) + " missing from golden";
    }
    if (b.skipped_floating > 0) {
      out += ", " + std::to_string(b.skipped_floating) + " floating skipped";
    }
    out += b.pass() ? " -- PASS" : " -- FAIL";
    out += " (tol " + sci(b.tolerance_v) + " V)\n";
  }
  return out;
}

ValidationReport validate(const ImportedGrid& grid,
                          const GoldenSolution& golden,
                          const ValidateOptions& options) {
  VS_SPAN("pgio.validate");
  ValidationReport report;
  const auto& nodes = grid.netlist().nodes;
  for (const auto& backend_name : options.backends) {
    BackendValidation entry;
    entry.backend = backend_name;
    entry.tolerance_v = options.tolerance_v;

    GridSolveOptions solve_options = options.solve;
    solve_options.backend = choice_by_name(backend_name);
    const GridSolution solution = grid.solve(solve_options);
    entry.solve_ok = solution.solve_ok;
    entry.diagnostic = solution.diagnostic;
    if (entry.solve_ok) {
      double sum_sq = 0.0;
      for (std::size_t id = 0; id < nodes.size(); ++id) {
        const std::string_view name = nodes.name(static_cast<std::uint32_t>(id));
        const std::size_t slot = grid.slot_of(name);
        if (slot != kNoSlot && grid.is_floating(slot)) {
          ++entry.skipped_floating;
          continue;
        }
        double golden_v = 0.0;
        if (!golden.lookup(name, &golden_v)) {
          ++entry.missing;
          continue;
        }
        double solved_v = 0.0;
        const bool found = grid.node_voltage(solution, name, &solved_v);
        VS_REQUIRE(found, "netlist node missing from its own grid");
        const double err = std::abs(solved_v - golden_v);
        sum_sq += err * err;
        ++entry.compared;
        if (err > entry.max_abs_error_v) {
          entry.max_abs_error_v = err;
          entry.worst_node = std::string(name);
        }
      }
      if (entry.compared > 0) {
        entry.rms_error_v =
            std::sqrt(sum_sq / static_cast<double>(entry.compared));
      }
    }
    report.backends.push_back(std::move(entry));
  }
  return report;
}

}  // namespace vstack::pgio
