#include "pgio/netlist.h"

#include "common/error.h"

namespace vstack::pgio {

NodeTable::NodeTable() : offsets_{0}, buckets_(64, 0) {}

std::uint64_t NodeTable::hash(std::string_view s) {
  // FNV-1a; matches the repo's other stable hashes and is deterministic
  // across platforms.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

void NodeTable::reserve(std::size_t nodes, std::size_t bytes) {
  arena_.reserve(bytes);
  offsets_.reserve(nodes + 1);
  std::size_t buckets = 64;
  while (buckets < nodes * 2) buckets *= 2;
  if (buckets > buckets_.size()) rehash(buckets);
}

void NodeTable::rehash(std::size_t buckets) {
  std::vector<std::uint32_t> next(buckets, 0);
  const std::size_t mask = buckets - 1;
  for (std::size_t id = 0; id < size(); ++id) {
    const std::string_view n = name(static_cast<std::uint32_t>(id));
    std::size_t slot = hash(n) & mask;
    while (next[slot] != 0) slot = (slot + 1) & mask;
    next[slot] = static_cast<std::uint32_t>(id) + 1;
  }
  buckets_ = std::move(next);
}

std::uint32_t NodeTable::intern(std::string_view name) {
  VS_REQUIRE(!name.empty(), "empty node name");
  // Grow at 50% occupancy; open addressing degrades sharply past that.
  if ((size() + 1) * 2 > buckets_.size()) rehash(buckets_.size() * 2);
  const std::size_t mask = buckets_.size() - 1;
  std::size_t slot = hash(name) & mask;
  while (buckets_[slot] != 0) {
    const std::uint32_t id = buckets_[slot] - 1;
    if (this->name(id) == name) return id;
    slot = (slot + 1) & mask;
  }
  VS_REQUIRE(arena_.size() + name.size() <= 0xFFFFFFFFull,
             "node-name arena exceeds 4 GiB");
  const auto id = static_cast<std::uint32_t>(size());
  arena_.insert(arena_.end(), name.begin(), name.end());
  offsets_.push_back(static_cast<std::uint32_t>(arena_.size()));
  buckets_[slot] = id + 1;
  return id;
}

std::uint32_t NodeTable::find(std::string_view name) const {
  const std::size_t mask = buckets_.size() - 1;
  std::size_t slot = hash(name) & mask;
  while (buckets_[slot] != 0) {
    const std::uint32_t id = buckets_[slot] - 1;
    if (this->name(id) == name) return id;
    slot = (slot + 1) & mask;
  }
  return kNotFound;
}

std::string_view NodeTable::name(std::uint32_t id) const {
  VS_REQUIRE(id < size(), "node id out of range");
  return std::string_view(arena_.data() + offsets_[id],
                          offsets_[id + 1] - offsets_[id]);
}

std::vector<double> PgNetlist::net_potentials() const {
  std::vector<double> nets;
  for (const auto& pad : pads) {
    bool seen = false;
    for (const double v : nets) {
      if (v == pad.value) {
        seen = true;
        break;
      }
    }
    if (!seen) nets.push_back(pad.value);
  }
  return nets;
}

int layer_of_node_name(std::string_view name) {
  if (name.size() < 2 || (name[0] != 'n' && name[0] != 'N')) return -1;
  std::size_t i = 1;
  long layer = 0;
  bool digits = false;
  while (i < name.size() && name[i] >= '0' && name[i] <= '9') {
    layer = layer * 10 + (name[i] - '0');
    if (layer > 1000) return -1;
    digits = true;
    ++i;
  }
  if (!digits || i >= name.size() || name[i] != '_') return -1;
  return static_cast<int>(layer);
}

std::vector<std::size_t> layer_histogram(const PgNetlist& netlist) {
  std::vector<std::size_t> hist(1, 0);
  for (std::size_t id = 0; id < netlist.nodes.size(); ++id) {
    const int layer =
        layer_of_node_name(netlist.nodes.name(static_cast<std::uint32_t>(id)));
    if (layer < 0) {
      ++hist[0];
      continue;
    }
    const auto slot = static_cast<std::size_t>(layer) + 1;
    if (slot >= hist.size()) hist.resize(slot + 1, 0);
    ++hist[slot];
  }
  return hist;
}

bool GoldenSolution::lookup(std::string_view name, double* voltage) const {
  if (name == "0" || name == "gnd" || name == "GND" || name == "G") {
    *voltage = 0.0;
    return true;
  }
  const std::uint32_t id = nodes.find(name);
  if (id == NodeTable::kNotFound) return false;
  *voltage = voltages[id];
  return true;
}

}  // namespace vstack::pgio
