#include "pgio/grid.h"

#include <cmath>
#include <cstdlib>
#include <unordered_map>

#include "common/error.h"
#include "la/sparse.h"
#include "telemetry/telemetry.h"

namespace vstack::pgio {

namespace {

const telemetry::Counter c_solve_calls("pgio.solve.calls");
const telemetry::Counter c_solve_failures("pgio.solve.failures");

std::string at_line(const PgNetlist& netlist, std::uint32_t line) {
  return netlist.source + ":" + std::to_string(line);
}

}  // namespace

/// Epoch-keyed solve system (pdn/solver.h's cached-system pattern): the
/// matrix is built first and the Solver bound only once its address is
/// final.  A backend/preconditioner change rebuilds just the Solver; a
/// topology-epoch bump rebuilds everything.
struct ImportedGrid::Cached {
  std::size_t epoch = 0;
  la::CsrMatrix matrix;
  la::Vector fixed_rhs;  // Dirichlet terms folded in from fixed slots
  la::Vector load_rhs;   // unit-scale load injections
  const la::Backend* backend = nullptr;
  la::PrecondKind preconditioner = la::PrecondKind::Auto;
  std::unique_ptr<la::Solver> solver;
};

ImportedGrid::ImportedGrid(const PgNetlist& netlist, const GridOptions& options)
    : netlist_(&netlist), options_(options) {
  VS_SPAN("pgio.grid.build");
  const std::size_t n = netlist.nodes.size();
  const std::size_t ground = n;  // union-find index of the ground net

  parent_.resize(n + 1);
  for (std::size_t i = 0; i <= n; ++i) {
    parent_[i] = static_cast<std::uint32_t>(i);
  }
  const auto uf_index = [&](std::uint32_t node) -> std::size_t {
    return node == kGroundNode ? ground : node;
  };
  for (const auto& s : netlist.shorts) {
    std::size_t ra = find_root(uf_index(s.a));
    std::size_t rb = find_root(uf_index(s.b));
    if (ra == rb) continue;
    // Ground dominates as representative; otherwise the smaller node id.
    if (ra == ground || (rb != ground && ra < rb)) std::swap(ra, rb);
    parent_[ra] = static_cast<std::uint32_t>(rb);
  }

  // Pad potentials per collapsed root, rejecting post-collapse conflicts
  // the reader cannot see (it checks per-name, not per-net).
  struct PadAt {
    double volts;
    std::uint32_t node;
    std::uint32_t line;
  };
  std::unordered_map<std::size_t, PadAt> pad_at;
  for (const auto& pad : netlist.pads) {
    const std::size_t root = find_root(pad.a);
    if (root == ground) {
      VS_FAIL(at_line(netlist, pad.line) + ": pad node '" +
              std::string(netlist.nodes.name(pad.a)) + "' at " +
              std::to_string(pad.value) + " V is shorted into the ground net");
    }
    const auto [it, inserted] =
        pad_at.emplace(root, PadAt{pad.value, pad.a, pad.line});
    if (!inserted && it->second.volts != pad.value) {
      VS_FAIL(at_line(netlist, pad.line) + ": pad node '" +
              std::string(netlist.nodes.name(pad.a)) + "' at " +
              std::to_string(pad.value) + " V is shorted to pad node '" +
              std::string(netlist.nodes.name(it->second.node)) + "' at " +
              std::to_string(it->second.volts) + " V (line " +
              std::to_string(it->second.line) + ")");
    }
    if (std::abs(pad.value) > reference_potential_) {
      reference_potential_ = std::abs(pad.value);
    }
  }

  // Slot numbering: unknown roots first (in root-id order, so ids are
  // deterministic), then pad roots, then the ground net last.  The union
  // rule above makes each root the smallest node id of its class, so the
  // root doubles as the slot's reporting representative.
  root_slot_.assign(n + 1, kNoSlot);
  for (std::size_t id = 0; id < n; ++id) {
    const std::size_t root = find_root(id);
    if (root == ground || root_slot_[root] != kNoSlot ||
        pad_at.count(root) != 0) {
      continue;
    }
    root_slot_[root] = unknown_count_++;
    slot_rep_.push_back(static_cast<std::uint32_t>(root));
    slot_potential_.push_back(0.0);
  }
  for (std::size_t id = 0; id < n; ++id) {
    const std::size_t root = find_root(id);
    const auto it = pad_at.find(root);
    if (it == pad_at.end() || root_slot_[root] != kNoSlot) continue;
    root_slot_[root] = slot_potential_.size();
    slot_rep_.push_back(static_cast<std::uint32_t>(root));
    slot_potential_.push_back(it->second.volts);
  }
  root_slot_[ground] = slot_potential_.size();
  slot_rep_.push_back(kGroundNode);
  slot_potential_.push_back(0.0);

  const auto slot_of_node = [&](std::uint32_t node) -> std::size_t {
    return root_slot_[find_root(uf_index(node))];
  };

  conductors_.reserve(netlist.resistors.size());
  for (const auto& r : netlist.resistors) {
    const std::size_t sa = slot_of_node(r.a);
    const std::size_t sb = slot_of_node(r.b);
    if (sa == sb) continue;  // both ends merged: a collapsed loop
    conductors_.push_back(
        {pdn::ConductorKind::GridStrap, sa, sb, r.value, 1, 1});
  }
  loads_.reserve(netlist.loads.size());
  for (const auto& l : netlist.loads) {
    const std::size_t sa = slot_of_node(l.a);
    const std::size_t sb = slot_of_node(l.b);
    if (sa == sb) continue;
    loads_.push_back({sa, sb, l.value});
  }
  // Decap: each cap contributes its value as a grounded decap at every
  // unknown terminal (the benchmarks attach decap node-to-ground, so this
  // is exact for them; see docs/benchmark_ingestion.md).
  slot_cap_.assign(slot_count(), 0.0);
  for (const auto& c : netlist.caps) {
    const std::size_t sa = slot_of_node(c.a);
    const std::size_t sb = slot_of_node(c.b);
    if (sa < unknown_count_) slot_cap_[sa] += c.value;
    if (sb != sa && sb < unknown_count_) slot_cap_[sb] += c.value;
  }

  refresh_anchoring();
}

// Component scan over the live conductor graph: nominal potentials for the
// deviation metric, and weak pins for dangling subgrids.  Re-run after
// every fault mutation -- an open can orphan a whole subgrid, and solving
// it without a weak pin would hand the solver a singular matrix instead of
// a clean "load current stranded" verdict.
void ImportedGrid::refresh_anchoring() {
  std::vector<std::size_t> comp(slot_count());
  for (std::size_t s = 0; s < comp.size(); ++s) comp[s] = s;
  const auto comp_find = [&](std::size_t s) {
    while (comp[s] != s) {
      comp[s] = comp[comp[s]];
      s = comp[s];
    }
    return s;
  };
  for (const auto& c : conductors_) {
    if (c.count == 0 || c.unit_resistance <= 0.0) continue;  // open/disabled
    const std::size_t ra = comp_find(c.node_a);
    const std::size_t rb = comp_find(c.node_b);
    if (ra != rb) comp[std::max(ra, rb)] = std::min(ra, rb);
  }
  std::vector<double> comp_nominal(slot_count(), 0.0);
  std::vector<std::uint8_t> comp_anchored(slot_count(), 0);
  for (std::size_t s = unknown_count_; s < slot_count(); ++s) {
    const std::size_t root = comp_find(s);
    comp_anchored[root] = 1;
    if (std::abs(slot_potential_[s]) >= std::abs(comp_nominal[root])) {
      comp_nominal[root] = slot_potential_[s];
    }
  }
  nominal_.assign(slot_count(), 0.0);
  floating_.assign(slot_count(), 0);
  weak_pins_.clear();
  floating_nodes_ = 0;
  floating_load_current_ = 0.0;
  std::vector<std::uint8_t> pinned(slot_count(), 0);
  for (std::size_t s = 0; s < slot_count(); ++s) {
    const std::size_t root = comp_find(s);
    if (comp_anchored[root]) {
      nominal_[s] = is_fixed(s) ? slot_potential_[s] : comp_nominal[root];
      continue;
    }
    floating_[s] = 1;
    ++floating_nodes_;
    if (!pinned[root]) {
      pinned[root] = 1;
      weak_pins_.push_back(root);
    }
  }
  for (const auto& l : loads_) {
    if (floating_[l.vdd_node] || floating_[l.gnd_node]) {
      floating_load_current_ += std::abs(l.current);
    }
  }
}

ImportedGrid::ImportedGrid(const ImportedGrid& other)
    : netlist_(other.netlist_),
      options_(other.options_),
      unknown_count_(other.unknown_count_),
      topology_epoch_(other.topology_epoch_),
      parent_(other.parent_),
      root_slot_(other.root_slot_),
      slot_rep_(other.slot_rep_),
      slot_potential_(other.slot_potential_),
      nominal_(other.nominal_),
      floating_(other.floating_),
      weak_pins_(other.weak_pins_),
      floating_nodes_(other.floating_nodes_),
      floating_load_current_(other.floating_load_current_),
      reference_potential_(other.reference_potential_),
      conductors_(other.conductors_),
      loads_(other.loads_),
      slot_cap_(other.slot_cap_),
      last_solution_(other.last_solution_) {}

ImportedGrid::~ImportedGrid() = default;

std::size_t ImportedGrid::find_root(std::size_t node) const {
  while (parent_[node] != node) {
    parent_[node] = parent_[parent_[node]];
    node = parent_[node];
  }
  return node;
}

std::size_t ImportedGrid::slot_of(std::string_view name) const {
  if (name == "0" || name == "gnd" || name == "GND" || name == "G") {
    return root_slot_[netlist_->nodes.size()];
  }
  const std::uint32_t id = netlist_->nodes.find(name);
  if (id == NodeTable::kNotFound) return kNoSlot;
  return root_slot_[find_root(id)];
}

std::string_view ImportedGrid::slot_name(std::size_t slot) const {
  VS_REQUIRE(slot < slot_count(), "slot out of range");
  if (slot_rep_[slot] == kGroundNode) return "0";
  return netlist_->nodes.name(slot_rep_[slot]);
}

void ImportedGrid::remove_conductor_units(std::size_t index,
                                          std::size_t units) {
  VS_REQUIRE(index < conductors_.size(), "conductor index out of range");
  auto& group = conductors_[index];
  group.count -= std::min(units, group.count);
  ++topology_epoch_;
  refresh_anchoring();
}

void ImportedGrid::scale_conductor_resistance(std::size_t index,
                                              double factor) {
  VS_REQUIRE(index < conductors_.size(), "conductor index out of range");
  VS_REQUIRE(factor > 0.0, "resistance factor must be positive");
  conductors_[index].unit_resistance *= factor;
  ++topology_epoch_;
  // Resistance scaling cannot orphan a subgrid (factor is finite and the
  // group stays live), but a prior mutation may have -- keep it simple and
  // always recompute.
  refresh_anchoring();
}

void ImportedGrid::add_leakage_to_ground(std::size_t slot, double resistance) {
  VS_REQUIRE(slot < slot_count(), "slot out of range");
  VS_REQUIRE(resistance > 0.0, "leakage resistance must be positive");
  conductors_.push_back({pdn::ConductorKind::Leakage, slot,
                         root_slot_[netlist_->nodes.size()], resistance, 1,
                         1});
  ++topology_epoch_;
  refresh_anchoring();
}

void ImportedGrid::stamp_conductances(la::CooBuilder& builder,
                                      la::Vector& fixed_rhs,
                                      la::Vector& load_rhs) const {
  VS_REQUIRE(builder.size() == unknown_count_,
             "builder must be sized to unknown_count()");
  fixed_rhs.assign(unknown_count_, 0.0);
  load_rhs.assign(unknown_count_, 0.0);
  for (const auto& c : conductors_) {
    if (c.count == 0 || c.unit_resistance <= 0.0) continue;
    const double g = static_cast<double>(c.count) / c.unit_resistance;
    const std::size_t a = c.node_a;
    const std::size_t b = c.node_b;
    const bool a_unknown = a < unknown_count_;
    const bool b_unknown = b < unknown_count_;
    if (a_unknown) builder.add(a, a, g);
    if (b_unknown) builder.add(b, b, g);
    if (a_unknown && b_unknown) {
      builder.add(a, b, -g);
      builder.add(b, a, -g);
    } else if (a_unknown) {
      fixed_rhs[a] += g * slot_potential_[b];
    } else if (b_unknown) {
      fixed_rhs[b] += g * slot_potential_[a];
    }
  }
  for (const std::size_t s : weak_pins_) {
    builder.add(s, s, options_.weak_pin_conductance);
  }
  for (const auto& l : loads_) {
    if (l.vdd_node < unknown_count_) load_rhs[l.vdd_node] -= l.current;
    if (l.gnd_node < unknown_count_) load_rhs[l.gnd_node] += l.current;
  }
}

void ImportedGrid::ensure_system(const GridSolveOptions& options) const {
  const la::Backend* backend = &la::resolve_backend(options.backend);
  if (cache_ && cache_->epoch == topology_epoch_) {
    if (cache_->backend == backend &&
        cache_->preconditioner == options.preconditioner) {
      return;
    }
    // Same matrix, different kernels: rebuild only the Solver binding.
    cache_->solver.reset();
    la::SolveOptions solve_options;
    solve_options.preconditioner = options.preconditioner;
    solve_options.backend = options.backend;
    cache_->solver =
        std::make_unique<la::Solver>(cache_->matrix, solve_options);
    cache_->backend = backend;
    cache_->preconditioner = options.preconditioner;
    return;
  }

  VS_SPAN("pgio.grid.assemble");
  auto next = std::make_unique<Cached>();
  next->epoch = topology_epoch_;
  la::CooBuilder builder(unknown_count_);
  stamp_conductances(builder, next->fixed_rhs, next->load_rhs);
  next->matrix = builder.build();
  // Bind the Solver only now: the matrix has reached its final address.
  la::SolveOptions solve_options;
  solve_options.preconditioner = options.preconditioner;
  solve_options.backend = options.backend;
  if (unknown_count_ > 0) {
    next->solver = std::make_unique<la::Solver>(next->matrix, solve_options);
  }
  next->backend = backend;
  next->preconditioner = options.preconditioner;
  cache_ = std::move(next);
}

GridSolution ImportedGrid::solve_scaled(double load_scale,
                                        const GridSolveOptions& options) const {
  VS_SPAN("pgio.solve");
  c_solve_calls.add();
  GridSolution out;
  out.floating_islands = weak_pins_.size();
  out.floating_nodes = floating_nodes_;
  out.floating_load_current_a = std::abs(load_scale) * floating_load_current_;
  for (const auto& l : loads_) {
    out.load_current_a += std::abs(load_scale * l.current);
  }

  const auto accumulate_supply_current = [&](const la::Vector& voltages) {
    const auto voltage_of = [&](std::size_t slot) {
      return slot < unknown_count_ ? voltages[slot] : slot_potential_[slot];
    };
    for (const auto& c : conductors_) {
      if (c.count == 0 || c.unit_resistance <= 0.0) continue;
      const double g = static_cast<double>(c.count) / c.unit_resistance;
      for (const auto& [self, other] :
           {std::pair{c.node_a, c.node_b}, std::pair{c.node_b, c.node_a}}) {
        if (is_fixed(self) && slot_potential_[self] != 0.0) {
          out.supply_current_a +=
              g * (slot_potential_[self] - voltage_of(other));
        }
      }
    }
  };

  if (unknown_count_ == 0) {
    // Every slot is fixed (pads and ground only): nothing to solve, but
    // pad-to-pad / pad-to-ground currents are still well-defined.
    out.solve_ok = true;
    accumulate_supply_current(out.voltages);
    return out;
  }

  ensure_system(options);
  la::Vector rhs(unknown_count_);
  for (std::size_t i = 0; i < unknown_count_; ++i) {
    rhs[i] = cache_->fixed_rhs[i] + load_scale * cache_->load_rhs[i];
  }
  out.voltages.assign(unknown_count_, 0.0);
  if (last_solution_.size() == unknown_count_) {
    out.voltages = last_solution_;  // warm start from the previous point
  }
  out.report = cache_->solver->solve(rhs, out.voltages, options.iterative);
  out.solve_ok = out.report.converged;
  if (!out.solve_ok) {
    c_solve_failures.add();
    out.diagnostic = out.report.diagnostic;
    return out;
  }
  last_solution_ = out.voltages;

  for (std::size_t s = 0; s < unknown_count_; ++s) {
    if (floating_[s]) continue;
    const double deviation = std::abs(out.voltages[s] - nominal_[s]);
    if (deviation > out.max_deviation_v) {
      out.max_deviation_v = deviation;
      out.worst_slot = s;
    }
  }
  if (out.worst_slot != kNoSlot) {
    out.worst_node = std::string(slot_name(out.worst_slot));
  }
  if (reference_potential_ > 0.0) {
    out.max_deviation_fraction = out.max_deviation_v / reference_potential_;
  }
  accumulate_supply_current(out.voltages);
  return out;
}

bool ImportedGrid::node_voltage(const GridSolution& solution,
                                std::string_view name,
                                double* voltage) const {
  const std::size_t slot = slot_of(name);
  if (slot == kNoSlot) return false;
  if (is_fixed(slot)) {
    *voltage = slot_potential_[slot];
    return true;
  }
  VS_REQUIRE(solution.voltages.size() == unknown_count_,
             "solution does not match this grid");
  *voltage = solution.voltages[slot];
  return true;
}

}  // namespace vstack::pgio
