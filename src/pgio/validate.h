// Golden-voltage cross-validation: solve an imported grid with the
// existing la::Solver escalation ladder under each requested kernel
// backend and compare every netlist node against the benchmark's
// published `.solution` voltages.
//
// This is the subsystem's reason to exist: the solver stack is checked
// against third-party data, not against itself.  A backend passes when
// the solve converged, every non-floating netlist node appears in the
// golden file, and the max absolute node error is within tolerance_v.
// Floating nodes (dangling subgrids held up only by the weak pin) are
// excluded from the comparison and counted separately -- their computed
// potential is an artifact of regularization, not a grid property.
#pragma once

#include <string>
#include <vector>

#include "pgio/grid.h"
#include "pgio/netlist.h"

namespace vstack::pgio {

struct ValidateOptions {
  GridSolveOptions solve;  // backend field is overridden per entry below
  /// Kernel backends to validate under (la::backend_by_name names).
  std::vector<std::string> backends{"reference", "optimized"};
  /// Max |v - golden| accepted per node [V].
  double tolerance_v = 1e-6;
};

/// One backend's comparison against the golden solution.
struct BackendValidation {
  std::string backend;
  bool solve_ok = false;
  std::string diagnostic;        // solver diagnostic when !solve_ok
  std::size_t compared = 0;      // nodes checked against the golden file
  std::size_t missing = 0;       // non-floating nodes absent from it
  std::size_t skipped_floating = 0;
  double max_abs_error_v = 0.0;
  double rms_error_v = 0.0;
  std::string worst_node;
  double tolerance_v = 0.0;

  bool pass() const {
    return solve_ok && missing == 0 && max_abs_error_v <= tolerance_v;
  }
};

struct ValidationReport {
  std::vector<BackendValidation> backends;

  bool pass() const;
  /// Human-readable multi-line summary (one line per backend).
  std::string format() const;
};

/// Solve `grid` under every options.backends entry and compare against
/// `golden`.  Throws vstack::Error for an unknown backend name; solver
/// failures are reported per backend, not thrown.
ValidationReport validate(const ImportedGrid& grid,
                          const GoldenSolution& golden,
                          const ValidateOptions& options = {});

}  // namespace vstack::pgio
