// IBM-benchmark-format writer: the inverse of pgio/reader.h, plus the
// bridge that lets a synthesized pdn::PdnModel be published in the
// benchmark format other tools read.
//
// write_netlist emits a *normalized* form -- element names regenerated
// (R1..,V1..,I1..,C1..), shorts as explicit zero-ohm R cards, values at
// %.17g (doubles round-trip exactly through strtod) -- so that
// parse -> write -> parse -> write is bit-identical from the first write
// on.  That identity is the round-trip test's oracle and makes exported
// files diff-stable.
//
// from_pdn_model flattens the synthesized network: grid nodes take the
// benchmark name grammar (vdd of layer l at cell (x, y) -> "n<2l+2>_x_y",
// gnd -> "n<2l+1>_x_y"), package nodes become "pkg_vdd"/"pkg_gnd", the
// fixed-supply sentinel becomes a "src_vdd" pad pin, and the fixed-ground
// sentinel is the ground net.  Converters stamp an active PSD block that no
// passive R card can represent, so stacks with enabled converters require a
// solved operating point: each converter is linearized into its DC terminal
// currents (out sources c, top and bottom each supply c/2).  The exported
// netlist therefore reproduces that operating point, not the closed-loop
// behavior -- see docs/benchmark_ingestion.md.
#pragma once

#include <string>

#include "pdn/solver.h"
#include "pgio/netlist.h"

namespace vstack::pgio {

/// Normalized benchmark-format text of `netlist`.
std::string write_netlist(const PgNetlist& netlist);
void write_netlist_file(const PgNetlist& netlist, const std::string& path);

/// Flatten a synthesized model (+ the loads of interest) into a PgNetlist.
/// `operating_point` may be null only when the model has no enabled
/// converters; passing a failed solve throws.
PgNetlist from_pdn_model(const pdn::PdnModel& model,
                         const std::vector<pdn::LoadInjection>& loads,
                         const pdn::PdnSolution* operating_point = nullptr);

}  // namespace vstack::pgio
