#include "pgio/export.h"

#include <cstdio>
#include <fstream>

#include "common/error.h"

namespace vstack::pgio {

namespace {

std::string g17(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

std::string node_str(const PgNetlist& netlist, std::uint32_t node) {
  if (node == kGroundNode) return "0";
  return std::string(netlist.nodes.name(node));
}

void emit(std::string& out, const char prefix, std::size_t& counter,
          const std::string& a, const std::string& b, double value) {
  out += prefix + std::to_string(++counter) + " " + a + " " + b + " " +
         g17(value) + "\n";
}

}  // namespace

std::string write_netlist(const PgNetlist& netlist) {
  std::string out;
  if (!netlist.title.empty()) out += ".title " + netlist.title + "\n";
  std::size_t r = 0, v = 0, i = 0, c = 0;
  for (const auto& e : netlist.resistors) {
    emit(out, 'R', r, node_str(netlist, e.a), node_str(netlist, e.b), e.value);
  }
  for (const auto& e : netlist.shorts) {
    emit(out, 'R', r, node_str(netlist, e.a), node_str(netlist, e.b), 0.0);
  }
  for (const auto& e : netlist.pads) {
    emit(out, 'V', v, node_str(netlist, e.a), "0", e.value);
  }
  for (const auto& e : netlist.loads) {
    emit(out, 'I', i, node_str(netlist, e.a), node_str(netlist, e.b), e.value);
  }
  for (const auto& e : netlist.caps) {
    emit(out, 'C', c, node_str(netlist, e.a), node_str(netlist, e.b), e.value);
  }
  out += ".op\n.end\n";
  return out;
}

void write_netlist_file(const PgNetlist& netlist, const std::string& path) {
  std::ofstream out(path);
  VS_REQUIRE(static_cast<bool>(out), "cannot write '" + path + "'");
  out << write_netlist(netlist);
  VS_REQUIRE(static_cast<bool>(out), "write to '" + path + "' failed");
}

PgNetlist from_pdn_model(const pdn::PdnModel& model,
                         const std::vector<pdn::LoadInjection>& loads,
                         const pdn::PdnSolution* operating_point) {
  const pdn::PdnNetwork& network = model.network();
  const auto& config = model.config();
  const std::size_t nx = config.grid_nx;
  const std::size_t cells = config.grid_nx * config.grid_ny;

  PgNetlist out;
  out.source = "<pdn-export>";
  out.title = "vstack " +
              std::string(config.is_voltage_stacked() ? "stacked" : "regular") +
              " stack, " + std::to_string(config.layer_count) + " layers";

  bool need_src_vdd = false;
  // Grid node -> benchmark name.  Gnd net of layer l is metal plane 2l+1,
  // Vdd net is 2l+2 ("n0" stays free so nothing collides with pkg names).
  const auto name_of = [&](std::size_t node) -> std::uint32_t {
    if (node == pdn::kFixedGround) return kGroundNode;
    if (node == pdn::kFixedSupply) {
      need_src_vdd = true;
      return out.nodes.intern("src_vdd");
    }
    if (node == network.package_vdd_node()) return out.nodes.intern("pkg_vdd");
    if (node == network.package_gnd_node()) return out.nodes.intern("pkg_gnd");
    const std::size_t rel = node - 2;
    const std::size_t layer = rel / (2 * cells);
    const bool is_vdd = (rel / cells) % 2 == 0;
    const std::size_t cell = rel % cells;
    const std::size_t plane = 2 * layer + (is_vdd ? 2 : 1);
    return out.nodes.intern("n" + std::to_string(plane) + "_" +
                            std::to_string(cell % nx) + "_" +
                            std::to_string(cell / nx));
  };

  for (const auto& group : network.conductors()) {
    if (group.count == 0) continue;
    const std::uint32_t a = name_of(group.node_a);
    const std::uint32_t b = name_of(group.node_b);
    // Parallel units lump into one card, matching how the network stamps.
    const double resistance =
        group.unit_resistance / static_cast<double>(group.count);
    PgElement e{a, b, 0, resistance};
    if (resistance == 0.0) {
      out.shorts.push_back(e);
    } else {
      out.resistors.push_back(e);
    }
  }
  for (const auto& load : loads) {
    out.loads.push_back(
        {name_of(load.vdd_node), name_of(load.gnd_node), 0, load.current});
  }

  std::size_t active_converters = 0;
  for (const auto& converter : network.converters()) {
    if (converter.enabled) ++active_converters;
  }
  if (active_converters > 0) {
    VS_REQUIRE(operating_point != nullptr,
               "exporting a stack with enabled converters needs a solved "
               "operating point (their PSD stamp has no passive R-card "
               "equivalent); pass the PdnSolution to linearize against");
    VS_REQUIRE(operating_point->solve_ok,
               "cannot linearize converters against a failed solve");
    VS_REQUIRE(operating_point->converter_currents.size() ==
                   network.converters().size(),
               "operating point does not match this model's converters");
    for (std::size_t k = 0; k < network.converters().size(); ++k) {
      const auto& converter = network.converters()[k];
      if (!converter.enabled) continue;
      const double current = operating_point->converter_currents[k];
      if (current == 0.0) continue;
      // Linearized DC port currents: out sources `current`, drawn half
      // from each input rail.
      const std::uint32_t top = name_of(converter.top);
      const std::uint32_t bottom = name_of(converter.bottom);
      const std::uint32_t sink = name_of(converter.out);
      out.loads.push_back({top, sink, 0, current / 2.0});
      out.loads.push_back({bottom, sink, 0, current / 2.0});
    }
  }

  // The fixed-supply sentinel is the only fixed nonzero potential; the
  // fixed-ground sentinel became the ground net directly.
  if (need_src_vdd) {
    out.pads.push_back({out.nodes.intern("src_vdd"), kGroundNode, 0,
                        network.nominal_potential(pdn::kFixedSupply)});
  }
  return out;
}

}  // namespace vstack::pgio
