// Streaming reader for IBM-power-grid-style benchmark netlists and their
// golden `.solution` voltage files.
//
// The dialect is the published benchmark subset (docs/benchmark_ingestion.md):
//
//   * comment                        ; '*' in column one, or after ';'
//   .title <anything>
//   R<name> <a> <b> <ohms>           ; 0 ohms = via short (nodes merged)
//   V<name> <n+> <n-> <volts>        ; 0 V between two internal nodes =
//                                    ;   via "ammeter" short (IBM idiom);
//                                    ;   nonzero value = pad pin, one
//                                    ;   terminal must be ground
//   I<name> <from> <to> <amps>       ; DC load current from -> to
//   C<name> <a> <b> <farads>         ; decap (load-step transient route)
//   .shorts <a> <b>                  ; explicit node merge
//   .op / .end                       ; accepted; content after .end rejected
//
// L cards (the transient benchmark variants) are rejected with a
// diagnostic naming the documented subset.  Node "0" / "gnd" / "G" is
// ground.  Values accept SPICE magnitude suffixes (f p n u m k meg g t).
//
// Hardened front-end, following circuit/spice_parser + pdn/config_io:
// every rejection reads "<source>:<line>: <what>" with the offending
// token; duplicate element names, duplicate/conflicting pad definitions,
// non-finite or out-of-range values, and memory-bomb inputs (node,
// element, name-byte and line-length budgets) all fail here with an
// actionable message instead of deep inside the solver.  The pass is
// single-scan and allocation-frugal: one reused line buffer, string_view
// tokens, and the interning NodeTable -- ingesting a million-node netlist
// stays within the documented memory bound (docs/benchmark_ingestion.md).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "pgio/netlist.h"

namespace vstack::pgio {

struct ReadOptions {
  /// Memory-bomb guards.  An input that exceeds one of these fails with a
  /// source:line diagnostic naming the budget; raise them deliberately for
  /// extreme inputs rather than removing them.
  std::size_t max_nodes = 20'000'000;
  std::size_t max_elements = 100'000'000;
  std::size_t max_name_bytes = 1ull << 30;  // interned node-name arena
  std::size_t max_line_length = 8192;

  /// Reject duplicate element names (one interned-name table over the
  /// element cards).  Costs ~name bytes of memory; leave on except for
  /// trusted machine-generated streams.
  bool check_duplicate_elements = true;
};

/// Parse a netlist from a stream in one pass.  Throws vstack::Error with a
/// "<source>:<line>: ..." message on any malformed card.
PgNetlist read_netlist(std::istream& in, const std::string& source_name,
                       const ReadOptions& options = {});

/// Convenience wrappers.
PgNetlist read_netlist_file(const std::string& path,
                            const ReadOptions& options = {});
PgNetlist read_netlist_text(const std::string& text,
                            const std::string& source_name = "<netlist>",
                            const ReadOptions& options = {});

/// Parse a golden voltage file: one "<node> <volts>" pair per line, '*' or
/// ';' comments.  Duplicate nodes and non-finite voltages are rejected
/// with source:line diagnostics.
GoldenSolution read_solution(std::istream& in, const std::string& source_name,
                             const ReadOptions& options = {});
GoldenSolution read_solution_file(const std::string& path,
                                  const ReadOptions& options = {});
GoldenSolution read_solution_text(const std::string& text,
                                  const std::string& source_name = "<solution>",
                                  const ReadOptions& options = {});

/// Parse one SPICE-suffixed numeric token ("4.7n", "1meg", "1.5e-2").
/// Throws vstack::Error on malformed, unknown-suffix or non-finite values.
double parse_grid_value(std::string_view token);

}  // namespace vstack::pgio
