// Campaign routes for imported benchmark grids: the same robustness
// machinery the synthesized stacks get -- deterministic N-1 sweeps, seeded
// Monte Carlo N-k campaigns, load-scale sweeps, and a load-step
// ride-through transient -- expressed against an ImportedGrid.
//
// The reports reuse core's structs (core::ContingencyReport,
// core::ContingencyCase, core::EmRiskEntry, pdn::FaultSet) so downstream
// consumers (CLI renderers, JSON writers) see one shape regardless of
// where the grid came from.  Differences from the synthesized engine,
// stated rather than hidden:
//
//   * Ranking is by DC current stress, not EM lifetime: imported netlists
//     carry no geometry, so EmRiskEntry::failure_probability holds each
//     candidate's share of total conductor current (a stress proxy that
//     preserves the "most-loaded first" ordering N-1 wants).
//   * Converter fields of the report stay zero -- benchmark grids have no
//     converters.
//
// Determinism contract matches core: all RNG consumption happens while
// planning (never while evaluating), each case runs on a fresh copy of the
// base grid, and cases are committed in index order through
// core::TaskPool::run_ordered -- so jobs=N output is bit-identical to
// serial for a given seed.
#pragma once

#include <cstdint>
#include <vector>

#include "core/contingency.h"
#include "core/task_pool.h"
#include "pgio/grid.h"

namespace vstack::pgio {

struct GridCampaignOptions {
  /// N-1 sweep size: top_k candidates by current stress, or every conductor
  /// when exhaustive is set.
  std::size_t top_k = 8;
  bool exhaustive = false;

  /// Cases above this deviation (|v - nominal| / max pad potential)
  /// classify as Degraded.
  double noise_budget_fraction = 0.10;

  /// Monte Carlo N-k shape (mirrors core::ContingencyOptions).
  std::size_t trials = 25;
  std::size_t faults_per_trial = 2;
  std::size_t leakage_faults_per_trial = 0;
  double leakage_resistance = 10.0;  // [Ohm]
  double degrade_factor = 8.0;       // resistance multiplier, partial faults
  std::uint64_t seed = 42;

  GridSolveOptions solve;
  core::ExecutionPolicy execution;
};

/// Rank conductors by DC current stress under `baseline` (descending).
/// failure_probability is the group's share of the summed conductor
/// current -- see the header comment.
std::vector<core::EmRiskEntry> rank_by_stress(const ImportedGrid& grid,
                                              const GridSolution& baseline,
                                              const GridCampaignOptions&
                                                  options = {});

/// Deterministic N-1: open each ranked conductor in turn.
core::ContingencyReport run_n_minus_1(const ImportedGrid& grid,
                                      const GridCampaignOptions& options = {});

/// Seeded Monte Carlo N-k: each trial samples faults_per_trial conductor
/// faults weighted by current stress (alternating full opens and
/// degrade_factor degradations) plus leakage_faults_per_trial shorts to
/// ground at stress-sampled nodes.
core::ContingencyReport run_monte_carlo(const ImportedGrid& grid,
                                        const GridCampaignOptions& options =
                                            {});

/// Evaluate one explicit fault recipe on a fresh copy of `grid` (building
/// block of both campaigns; indices refer to grid.conductors() / slots).
core::ContingencyCase evaluate_case(const ImportedGrid& grid,
                                    const pdn::FaultSet& faults,
                                    const GridCampaignOptions& options = {},
                                    const std::string& label = "");

/// Solve the grid at each load scale (fresh grid copy per scale so the
/// cases parallelize); results are in `scales` order.
std::vector<GridSolution> sweep_load_scale(const ImportedGrid& grid,
                                           const std::vector<double>& scales,
                                           const GridCampaignOptions& options =
                                               {});

// ---------------------------------------------------------------------------
// Load-step ride-through (the imported-grid transient route).

struct LoadStepOptions {
  double step_scale = 2.0;    // load multiplier after the step
  double duration_s = 1e-6;   // simulated window after the step
  double dt_s = 5e-9;         // backward-Euler step
  /// Per-node decap [F] used when the netlist carries no C cards (most IBM
  /// DC benchmarks); netlist decap wins when present.
  double default_decap_f = 1e-12;
  /// Recovered when every node is within recovery_fraction * (max pad
  /// potential) of the post-step DC solution.
  double recovery_fraction = 0.02;
  GridSolveOptions solve;
};

struct LoadStepReport {
  bool solve_ok = false;
  std::string diagnostic;
  std::size_t steps = 0;

  double pre_step_deviation_v = 0.0;   // DC deviation before the step
  double post_step_deviation_v = 0.0;  // DC deviation of the settled target
  double worst_deviation_v = 0.0;      // worst instantaneous |v - nominal|
  double worst_droop_v = 0.0;          // worst |v(t) - v_pre| excursion

  bool recovered = false;
  double recovery_time_s = -1.0;  // first time inside the recovery band
  double final_error_v = 0.0;     // max |v(end) - v_target|
};

/// Backward-Euler transient of a load step at t = 0: capacitors stamp the
/// standard companion model (G + C/h, history current (C/h) v_old), the
/// pre-step DC point is the initial condition, and the post-step DC point
/// is the recovery target.  Non-throwing on solver failure (check
/// solve_ok).
LoadStepReport simulate_load_step(const ImportedGrid& grid,
                                  const LoadStepOptions& options = {});

}  // namespace vstack::pgio
