// In-memory model of an external power-grid benchmark netlist (the IBM
// power-grid benchmark family and its SRAM-PG successor, arXiv:2404.05260).
//
// Unlike circuit::Netlist (built for converter testbenches with tens of
// nodes), this model is sized for million-node inputs: node names live in
// one string-interning arena (NodeTable) instead of per-string heap
// allocations, and every element card is a 24-byte POD carrying its source
// line for late diagnostics.  The reader (pgio/reader.h) fills a PgNetlist
// in a single streaming pass; ImportedGrid (pgio/grid.h) collapses it into
// a solvable system.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace vstack::pgio {

/// Sentinel node id for the ground net ("0" / "gnd" / "G"); ground is never
/// interned into a NodeTable.
inline constexpr std::uint32_t kGroundNode = 0xFFFFFFFFu;

/// String-interning node table: one append-only character arena plus an
/// open-addressing hash index.  Ids are dense (0..size) in first-seen
/// order, so parallel arrays indexed by node id need no map.  Memory per
/// node: the name bytes + 4 B offset + ~8 B of hash slots -- roughly 25 B
/// for typical "n1_12345_67890" names, which is what keeps a million-node
/// netlist within the documented ingestion memory bound.
class NodeTable {
 public:
  static constexpr std::uint32_t kNotFound = 0xFFFFFFFEu;

  NodeTable();

  /// Id of `name`, inserting it on first sight.
  std::uint32_t intern(std::string_view name);

  /// Id of `name`, or kNotFound.
  std::uint32_t find(std::string_view name) const;

  std::size_t size() const { return offsets_.size() - 1; }
  std::string_view name(std::uint32_t id) const;

  /// Total interned name bytes (arena occupancy, for the memory guards).
  std::size_t name_bytes() const { return arena_.size(); }

  void reserve(std::size_t nodes, std::size_t bytes);

 private:
  void rehash(std::size_t buckets);
  static std::uint64_t hash(std::string_view s);

  std::vector<char> arena_;
  std::vector<std::uint32_t> offsets_;  // size()+1 prefix offsets into arena_
  std::vector<std::uint32_t> buckets_;  // open addressing; id+1, 0 = empty
};

/// One parsed element card.  `a`/`b` are NodeTable ids or kGroundNode;
/// `line` is the 1-based source line of the card (diagnostics that fire
/// long after parsing -- conflicting pads after short collapse, say -- can
/// still name their origin).
struct PgElement {
  std::uint32_t a = kGroundNode;
  std::uint32_t b = kGroundNode;
  std::uint32_t line = 0;
  double value = 0.0;
};

/// A parsed benchmark netlist.  Elements are bucketed by role:
///
///   resistors  R cards with value > 0 [Ohm]
///   shorts     zero-ohm R cards, zero-volt V "ammeters" (the IBM via
///              idiom), and .shorts directives; collapsed by ImportedGrid
///   pads       nonzero V cards (one terminal must be ground): `a` is the
///              pad node, `value` its fixed potential [V]
///   loads      I cards: `value` amps flow a -> b through the source
///   caps       C cards [F]; used by the load-step transient route
struct PgNetlist {
  std::string source;  // source name used in diagnostics ("file.spice")
  std::string title;
  NodeTable nodes;
  std::vector<PgElement> resistors;
  std::vector<PgElement> shorts;
  std::vector<PgElement> pads;
  std::vector<PgElement> loads;
  std::vector<PgElement> caps;
  std::size_t line_count = 0;

  std::size_t node_count() const { return nodes.size(); }
  std::size_t element_count() const {
    return resistors.size() + shorts.size() + pads.size() + loads.size() +
           caps.size();
  }

  /// Distinct pad potentials in first-seen order (the netlist's VDD/GND
  /// nets; an IBM-format file carries several).
  std::vector<double> net_potentials() const;
};

/// Best-effort metal-layer index from the benchmark node-name grammar
/// `n<layer>_<x>_<y>` (e.g. "n3_140_8126"); -1 when the name does not
/// follow it.  Summary statistics only -- never load-bearing.
int layer_of_node_name(std::string_view name);

/// Per-layer node histogram over the `n<layer>_<x>_<y>` names; index 0
/// counts non-conforming names, index l+1 counts layer l.
std::vector<std::size_t> layer_histogram(const PgNetlist& netlist);

/// A parsed golden `.solution` voltage file: node name -> voltage, with its
/// own interning table (solution files usually cover every non-ground node
/// of the companion netlist).
struct GoldenSolution {
  std::string source;
  NodeTable nodes;
  std::vector<double> voltages;  // indexed by NodeTable id

  std::size_t size() const { return voltages.size(); }

  /// Voltage of `name`; false when the solution does not list it.  Ground
  /// aliases ("0", "gnd", "G") report 0 V.
  bool lookup(std::string_view name, double* voltage) const;
};

}  // namespace vstack::pgio
