#include "pgio/reader.h"

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <istream>
#include <sstream>
#include <unordered_map>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace vstack::pgio {

namespace {

const telemetry::Counter c_lines("pgio.parse.lines");
const telemetry::Counter c_cards("pgio.parse.cards");
const telemetry::Counter c_nodes("pgio.parse.nodes");
const telemetry::Counter c_bytes("pgio.parse.bytes");

bool is_ground(std::string_view token) {
  return token == "0" || token == "gnd" || token == "GND" || token == "G" ||
         token == "Gnd";
}

/// Strip '\r', a trailing ';' comment, leading/trailing blanks; a line whose
/// first payload character is '*' is a comment.
std::string_view clean_line(std::string_view line) {
  const auto semi = line.find(';');
  if (semi != std::string_view::npos) line = line.substr(0, semi);
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string_view::npos) return {};
  const auto last = line.find_last_not_of(" \t\r");
  line = line.substr(first, last - first + 1);
  if (line.front() == '*') return {};
  return line;
}

/// Split on blanks into at most `max` views; returns the token count, or
/// max+1 when there were more (callers turn that into a card-arity error).
std::size_t split(std::string_view line, std::string_view* out,
                  std::size_t max) {
  std::size_t count = 0;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
    if (i >= line.size()) break;
    const std::size_t start = i;
    while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
    if (count == max) return max + 1;
    out[count++] = line.substr(start, i - start);
  }
  return count;
}

char lower_ascii(char c) {
  return (c >= 'A' && c <= 'Z') ? static_cast<char>(c - 'A' + 'a') : c;
}

/// Shared per-stream parse state: source location for diagnostics plus the
/// netlist budgets (pgio's equivalent of spice_parser's ParseContext).
struct ParseContext {
  const std::string& source_name;
  const ReadOptions& options;
  std::size_t line_no = 0;

  [[noreturn]] void fail(const std::string& message) const {
    VS_FAIL(source_name + ":" + std::to_string(line_no) + ": " + message);
  }

  double value(std::string_view token, const char* what) const {
    try {
      return parse_grid_value(token);
    } catch (const Error& e) {
      fail(std::string(what) + ": " + e.what());
    }
  }
};

}  // namespace

double parse_grid_value(std::string_view token) {
  VS_REQUIRE(!token.empty(), "empty numeric token");
  VS_REQUIRE(token.size() < 64,
             "numeric token longer than 63 characters: '" +
                 std::string(token.substr(0, 16)) + "...'");
  char buf[64];
  std::memcpy(buf, token.data(), token.size());
  buf[token.size()] = '\0';
  char* end = nullptr;
  const double value = std::strtod(buf, &end);
  VS_REQUIRE(end != buf,
             "malformed numeric value '" + std::string(token) + "'");
  VS_REQUIRE(std::isfinite(value),
             "non-finite numeric value '" + std::string(token) + "'");
  std::string suffix;
  for (const char* p = end; *p != '\0'; ++p) suffix += lower_ascii(*p);
  if (suffix.empty()) return value;
  if (suffix == "meg") return value * 1e6;
  if (suffix.size() == 1) {
    switch (suffix.front()) {
      case 'f': return value * 1e-15;
      case 'p': return value * 1e-12;
      case 'n': return value * 1e-9;
      case 'u': return value * 1e-6;
      case 'm': return value * 1e-3;
      case 'k': return value * 1e3;
      case 'g': return value * 1e9;
      case 't': return value * 1e12;
      default: break;
    }
  }
  VS_FAIL("unknown value suffix '" + suffix + "' in '" + std::string(token) +
          "'");
}

PgNetlist read_netlist(std::istream& in, const std::string& source_name,
                       const ReadOptions& options) {
  VS_SPAN("pgio.parse");
  PgNetlist out;
  out.source = source_name;
  ParseContext ctx{source_name, options};

  // Duplicate-element rejection via a second interning table: intern the
  // card name and require the table to have grown.
  NodeTable element_names;

  // Pad bookkeeping for duplicate/conflict rejection: node -> (volts, line).
  std::unordered_map<std::uint32_t, std::pair<double, std::uint32_t>> pad_at;

  const auto node_of = [&](std::string_view token) -> std::uint32_t {
    if (is_ground(token)) return kGroundNode;
    const std::uint32_t id = out.nodes.intern(token);
    if (out.nodes.size() > options.max_nodes) {
      ctx.fail("node budget exceeded (" + std::to_string(options.max_nodes) +
               " nodes; raise ReadOptions::max_nodes for larger inputs)");
    }
    if (out.nodes.name_bytes() > options.max_name_bytes) {
      ctx.fail("node-name budget exceeded (" +
               std::to_string(options.max_name_bytes) +
               " bytes; raise ReadOptions::max_name_bytes)");
    }
    return id;
  };

  const auto claim_name = [&](std::string_view name) {
    if (!options.check_duplicate_elements) return;
    const std::size_t before = element_names.size();
    element_names.intern(name);
    if (element_names.size() == before) {
      ctx.fail("duplicate element name '" + std::string(name) + "'");
    }
  };

  const auto guard_elements = [&] {
    if (out.element_count() + 1 > options.max_elements) {
      ctx.fail("element budget exceeded (" +
               std::to_string(options.max_elements) +
               " cards; raise ReadOptions::max_elements)");
    }
  };

  std::string raw;
  std::string_view tok[6];
  bool ended = false;
  std::size_t lines = 0;
  std::size_t bytes = 0;
  while (std::getline(in, raw)) {
    ++ctx.line_no;
    ++lines;
    bytes += raw.size() + 1;
    if (raw.size() > options.max_line_length) {
      ctx.fail("line longer than " + std::to_string(options.max_line_length) +
               " characters");
    }
    const std::string_view line = clean_line(raw);
    if (line.empty()) continue;
    if (ended) ctx.fail("content after .end");
    const std::size_t n = split(line, tok, 6);

    const char head = lower_ascii(tok[0].front());
    if (head == '.') {
      std::string directive;
      for (const char c : tok[0]) directive += lower_ascii(c);
      if (directive == ".title") {
        const auto pos = line.find_first_of(" \t");
        out.title = (pos == std::string_view::npos)
                        ? ""
                        : std::string(line.substr(
                              line.find_first_not_of(" \t", pos)));
      } else if (directive == ".op") {
        // DC operating-point request: the only analysis we run anyway.
      } else if (directive == ".end") {
        if (n != 1) ctx.fail(".end takes no arguments");
        ended = true;
      } else if (directive == ".shorts") {
        if (n != 3) ctx.fail(".shorts needs two node names");
        const std::uint32_t a = node_of(tok[1]);
        const std::uint32_t b = node_of(tok[2]);
        if (a == b) {
          ctx.fail(".shorts connects '" + std::string(tok[1]) +
                   "' to itself");
        }
        guard_elements();
        out.shorts.push_back(
            {a, b, static_cast<std::uint32_t>(ctx.line_no), 0.0});
      } else {
        ctx.fail("unknown directive '" + std::string(tok[0]) + "'");
      }
      continue;
    }

    c_cards.add();
    switch (head) {
      case 'r': {
        if (n != 4) ctx.fail("R card: R<name> a b ohms");
        claim_name(tok[0]);
        const std::uint32_t a = node_of(tok[1]);
        const std::uint32_t b = node_of(tok[2]);
        if (a == b) {
          ctx.fail("R card '" + std::string(tok[0]) +
                   "' connects a node to itself");
        }
        const double r = ctx.value(tok[3], "resistance");
        if (r < 0.0) {
          ctx.fail("resistance must be >= 0, got '" + std::string(tok[3]) +
                   "'");
        }
        guard_elements();
        const PgElement e{a, b, static_cast<std::uint32_t>(ctx.line_no), r};
        if (r == 0.0) {
          out.shorts.push_back(e);  // via short (the IBM zero-ohm idiom)
        } else {
          out.resistors.push_back(e);
        }
        break;
      }
      case 'v': {
        if (n != 4) ctx.fail("V card: V<name> n+ n- volts");
        claim_name(tok[0]);
        const std::uint32_t a = node_of(tok[1]);
        const std::uint32_t b = node_of(tok[2]);
        if (a == b) {
          ctx.fail("V card '" + std::string(tok[0]) +
                   "' connects a node to itself");
        }
        const double v = ctx.value(tok[3], "voltage");
        guard_elements();
        if (v == 0.0) {
          // Zero-volt source: the benchmarks' via "ammeter" -- a short.
          // Between an internal node and ground it pins that node at 0 V,
          // which the grid layer models as a merge with the ground net.
          out.shorts.push_back(
              {a, b, static_cast<std::uint32_t>(ctx.line_no), 0.0});
          break;
        }
        std::uint32_t pad = a;
        double volts = v;
        if (a == kGroundNode) {
          pad = b;
          volts = -v;
        } else if (b != kGroundNode) {
          ctx.fail("pad source '" + std::string(tok[0]) +
                   "' must reference ground on one terminal (got '" +
                   std::string(tok[1]) + "' / '" + std::string(tok[2]) +
                   "')");
        }
        const auto [it, inserted] = pad_at.emplace(
            pad, std::make_pair(volts,
                                static_cast<std::uint32_t>(ctx.line_no)));
        if (!inserted) {
          const char* what = (it->second.first == volts)
                                 ? "duplicate pad definition for node '"
                                 : "conflicting pad definition for node '";
          ctx.fail(std::string(what) + std::string(tok[pad == a ? 1 : 2]) +
                   "' (first defined at line " +
                   std::to_string(it->second.second) + ")");
        }
        out.pads.push_back(
            {pad, kGroundNode, static_cast<std::uint32_t>(ctx.line_no),
             volts});
        break;
      }
      case 'i': {
        if (n != 4) ctx.fail("I card: I<name> from to amps");
        claim_name(tok[0]);
        const std::uint32_t a = node_of(tok[1]);
        const std::uint32_t b = node_of(tok[2]);
        if (a == b) {
          ctx.fail("I card '" + std::string(tok[0]) +
                   "' connects a node to itself");
        }
        const double amps = ctx.value(tok[3], "current");
        guard_elements();
        out.loads.push_back(
            {a, b, static_cast<std::uint32_t>(ctx.line_no), amps});
        break;
      }
      case 'c': {
        if (n != 4) ctx.fail("C card: C<name> a b farads");
        claim_name(tok[0]);
        const std::uint32_t a = node_of(tok[1]);
        const std::uint32_t b = node_of(tok[2]);
        if (a == b) {
          ctx.fail("C card '" + std::string(tok[0]) +
                   "' connects a node to itself");
        }
        const double f = ctx.value(tok[3], "capacitance");
        if (f <= 0.0) {
          ctx.fail("capacitance must be positive, got '" +
                   std::string(tok[3]) + "'");
        }
        guard_elements();
        out.caps.push_back(
            {a, b, static_cast<std::uint32_t>(ctx.line_no), f});
        break;
      }
      case 'l':
        ctx.fail("L card '" + std::string(tok[0]) +
                 "' is outside the supported subset (DC + decap transient "
                 "only; see docs/benchmark_ingestion.md)");
      default:
        ctx.fail("unknown element card '" + std::string(tok[0]) + "'");
    }
  }
  out.line_count = lines;
  c_lines.add(static_cast<double>(lines));
  c_bytes.add(static_cast<double>(bytes));
  c_nodes.add(static_cast<double>(out.nodes.size()));
  return out;
}

PgNetlist read_netlist_file(const std::string& path,
                            const ReadOptions& options) {
  std::ifstream in(path);
  VS_REQUIRE(static_cast<bool>(in), "cannot open '" + path + "'");
  return read_netlist(in, path, options);
}

PgNetlist read_netlist_text(const std::string& text,
                            const std::string& source_name,
                            const ReadOptions& options) {
  std::istringstream in(text);
  return read_netlist(in, source_name, options);
}

GoldenSolution read_solution(std::istream& in, const std::string& source_name,
                             const ReadOptions& options) {
  VS_SPAN("pgio.parse");
  GoldenSolution out;
  out.source = source_name;
  ParseContext ctx{source_name, options};
  std::string raw;
  std::string_view tok[3];
  while (std::getline(in, raw)) {
    ++ctx.line_no;
    if (raw.size() > options.max_line_length) {
      ctx.fail("line longer than " + std::to_string(options.max_line_length) +
               " characters");
    }
    const std::string_view line = clean_line(raw);
    if (line.empty()) continue;
    const std::size_t n = split(line, tok, 3);
    if (n != 2) ctx.fail("expected '<node> <volts>'");
    if (is_ground(tok[0])) {
      const double v = ctx.value(tok[1], "voltage");
      if (v != 0.0) {
        ctx.fail("ground listed at " + std::string(tok[1]) + " V");
      }
      continue;
    }
    const std::uint32_t id = out.nodes.intern(tok[0]);
    if (out.nodes.size() > options.max_nodes) {
      ctx.fail("node budget exceeded (" + std::to_string(options.max_nodes) +
               " nodes; raise ReadOptions::max_nodes)");
    }
    if (id < out.voltages.size()) {
      ctx.fail("duplicate solution entry for node '" + std::string(tok[0]) +
               "'");
    }
    out.voltages.push_back(ctx.value(tok[1], "voltage"));
  }
  return out;
}

GoldenSolution read_solution_file(const std::string& path,
                                  const ReadOptions& options) {
  std::ifstream in(path);
  VS_REQUIRE(static_cast<bool>(in), "cannot open '" + path + "'");
  return read_solution(in, path, options);
}

GoldenSolution read_solution_text(const std::string& text,
                                  const std::string& source_name,
                                  const ReadOptions& options) {
  std::istringstream in(text);
  return read_solution(in, source_name, options);
}

}  // namespace vstack::pgio
