// ImportedGrid -- a parsed benchmark netlist (pgio/netlist.h) collapsed
// into a solvable PdnModel-compatible system.
//
// Construction performs the whole topology normalization pass once:
//
//   * Shorts (zero-ohm R cards, zero-volt V "ammeters", .shorts) are
//     collapsed by union-find; every netlist node maps to one *slot*.
//   * Slots are numbered unknowns-first: [0, unknown_count) are solved for,
//     [unknown_count, slot_count) are fixed (pad pins and the ground net)
//     with a per-slot potential -- the imported-grid generalization of
//     pdn::kFixedSupply/kFixedGround, which carry only two voltages.
//   * Elements are re-expressed against slots using the same structs the
//     synthesized PDN uses -- pdn::ConductorGroup and pdn::LoadInjection --
//     so the contingency/campaign machinery (pgio/campaign.h) can treat
//     imported and synthesized grids uniformly.
//   * Connected components with no fixed slot (dangling subgrids) are
//     weak-pinned to ground through GridOptions::weak_pin_conductance so
//     the system stays nonsingular; their slots, and any load current they
//     carry, are reported as floating rather than silently solved.
//
// DC solves stamp the slot conductance Laplacian with Dirichlet
// elimination (fixed-slot terms folded into the RHS), bind one la::Solver
// per topology epoch (pdn/solver.h's cached-system pattern: matrix first,
// solver after its address is final), and warm-start from the previous
// solution.  Fault mutators mirror PdnNetwork's and bump the epoch.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "la/solver.h"
#include "pdn/network.h"
#include "pgio/netlist.h"

namespace vstack::pgio {

/// No-slot sentinel (lookup misses).
inline constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

struct GridOptions {
  /// Conductance [S] pinning one node of each floating component to ground.
  /// Small enough not to perturb anchored nets, large enough to keep the
  /// matrix invertible.
  double weak_pin_conductance = 1e-6;
};

struct GridSolveOptions {
  la::IterativeOptions iterative{.max_iterations = 20000,
                                 .relative_tolerance = 1e-9};
  la::PrecondKind preconditioner = la::PrecondKind::Auto;
  la::BackendChoice backend = la::BackendChoice::Auto;
};

/// One DC operating point.  `voltages` is indexed by unknown slot; use
/// ImportedGrid::node_voltage for name-based lookup (it resolves shorts and
/// fixed slots).  Deviation metrics skip floating slots -- their potential
/// is an artifact of the weak pin, not a grid property.
struct GridSolution {
  la::Vector voltages;
  bool solve_ok = false;
  std::string diagnostic;      // nonempty when solve_ok == false
  la::SolveReport report;

  double max_deviation_v = 0.0;        // max |v - nominal| over anchored slots
  double max_deviation_fraction = 0.0; // / max |pad potential| of the netlist
  std::size_t worst_slot = kNoSlot;
  std::string worst_node;              // representative netlist name

  double supply_current_a = 0.0;  // total current sourced by nonzero pads
  double load_current_a = 0.0;    // total |I| drawn by (scaled) loads

  std::size_t floating_islands = 0;
  std::size_t floating_nodes = 0;
  double floating_load_current_a = 0.0;
};

class ImportedGrid {
 public:
  /// Collapse `netlist` (which must outlive this grid; element lists and
  /// node names are referenced, not copied).  Throws vstack::Error with
  /// source:line context on post-collapse conflicts -- two pads at
  /// different potentials shorted together, or a nonzero pad shorted into
  /// the ground net.
  explicit ImportedGrid(const PgNetlist& netlist,
                        const GridOptions& options = {});

  /// Copies share the netlist but drop the cached system; campaign workers
  /// copy the base grid, mutate faults, and solve independently.
  ImportedGrid(const ImportedGrid& other);
  ImportedGrid& operator=(const ImportedGrid&) = delete;
  ~ImportedGrid();  // out of line: Cached is incomplete here

  const PgNetlist& netlist() const { return *netlist_; }

  std::size_t slot_count() const { return slot_potential_.size(); }
  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t fixed_count() const { return slot_count() - unknown_count_; }

  bool is_fixed(std::size_t slot) const { return slot >= unknown_count_; }
  /// Fixed potential of slot (0 for unknown slots -- callers gate on
  /// is_fixed).
  double fixed_potential(std::size_t slot) const {
    return slot_potential_[slot];
  }
  /// Nominal potential: the pad value anchoring the slot's component (the
  /// one with the largest magnitude when a fault merges nets); 0 for
  /// floating components.
  double nominal_potential(std::size_t slot) const {
    return nominal_[slot];
  }
  bool is_floating(std::size_t slot) const { return floating_[slot] != 0; }

  /// Slot of a netlist node name (shorts resolved); kNoSlot when unknown.
  std::size_t slot_of(std::string_view name) const;
  /// Representative netlist node name of a slot (first-merged member; the
  /// ground net reports "0").
  std::string_view slot_name(std::size_t slot) const;

  /// Slot-indexed elements, in pdn's structs.  Imported conductors are
  /// ConductorKind::GridStrap with count 1 (the benchmarks enumerate every
  /// segment); injected leakage is ConductorKind::Leakage.
  const std::vector<pdn::ConductorGroup>& conductors() const {
    return conductors_;
  }
  const std::vector<pdn::LoadInjection>& loads() const { return loads_; }
  /// Decap value [F] per slot (summed; the load-step transient route).
  const std::vector<double>& slot_capacitance() const { return slot_cap_; }

  /// Monotone counter bumped by every mutator; derived caches key on it
  /// (same contract as PdnNetwork::topology_epoch).
  std::size_t topology_epoch() const { return topology_epoch_; }

  // --- Fault mutators (mirror PdnNetwork's; all bump the epoch) ----------

  /// Remove `units` parallel conductors from conductors()[index]; a group
  /// at count 0 stays as an inert placeholder so indices remain stable.
  void remove_conductor_units(std::size_t index, std::size_t units);

  /// Multiply conductors()[index]'s unit resistance by `factor` (> 0).
  void scale_conductor_resistance(std::size_t index, double factor);

  /// Resistive defect short from `slot` to the ground net.
  void add_leakage_to_ground(std::size_t slot, double resistance);

  /// Stamp the unknown-slot conductance Laplacian (conductors + weak pins)
  /// into `builder` and the RHS components (Dirichlet terms from fixed
  /// slots, unit-scale load injections) into the two vectors, which are
  /// reset to unknown_count() zeros first.  The DC cache is built from
  /// this; the load-step transient route (pgio/campaign.h) calls it
  /// directly to add capacitor companion terms before freezing the matrix.
  void stamp_conductances(la::CooBuilder& builder, la::Vector& fixed_rhs,
                          la::Vector& load_rhs) const;

  /// Solve the DC operating point, scaling every load by `load_scale`.
  /// Non-throwing on solver failure: check solution.solve_ok.
  GridSolution solve(const GridSolveOptions& options = {}) const {
    return solve_scaled(1.0, options);
  }
  GridSolution solve_scaled(double load_scale,
                            const GridSolveOptions& options = {}) const;

  /// Voltage of netlist node `name` under `solution`; false when the name
  /// is unknown.  Resolves ground aliases, shorts, and fixed slots.
  bool node_voltage(const GridSolution& solution, std::string_view name,
                    double* voltage) const;

 private:
  struct Cached;

  std::size_t find_root(std::size_t node) const;
  /// Recompute nominal potentials, floating flags, weak pins, and the
  /// stranded-load accounting from the live conductor graph (disabled
  /// groups excluded).  Runs at import and after every fault mutation: a
  /// fault can orphan a subgrid, which must be weak-pinned before the next
  /// stamp or the matrix goes singular.
  void refresh_anchoring();
  void ensure_system(const GridSolveOptions& options) const;

  const PgNetlist* netlist_;
  GridOptions options_;
  std::size_t unknown_count_ = 0;
  std::size_t topology_epoch_ = 0;

  mutable std::vector<std::uint32_t> parent_;  // union-find; [n] = ground
  std::vector<std::size_t> root_slot_;         // root node -> slot (kNoSlot)
  std::vector<std::uint32_t> slot_rep_;        // slot -> representative node
  std::vector<double> slot_potential_;         // fixed slots; 0 for unknowns
  std::vector<double> nominal_;                // per slot (see above)
  std::vector<std::uint8_t> floating_;         // per slot
  std::vector<std::size_t> weak_pins_;         // one slot per floating island
  std::size_t floating_nodes_ = 0;
  double floating_load_current_ = 0.0;
  double reference_potential_ = 0.0;  // max |pad|, deviation denominator

  std::vector<pdn::ConductorGroup> conductors_;
  std::vector<pdn::LoadInjection> loads_;
  std::vector<double> slot_cap_;

  mutable std::unique_ptr<Cached> cache_;
  mutable la::Vector last_solution_;
};

}  // namespace vstack::pgio
