#include "pgio/campaign.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace vstack::pgio {

namespace {

const telemetry::Counter c_cases("pgio.campaign.cases");

void apply_faults(ImportedGrid& grid, const pdn::FaultSet& faults) {
  for (const auto& fault : faults.faults()) {
    switch (fault.kind) {
      case pdn::FaultKind::OpenConductor:
        grid.remove_conductor_units(fault.index, fault.units);
        break;
      case pdn::FaultKind::DegradeConductor:
        grid.scale_conductor_resistance(fault.index, fault.severity);
        break;
      case pdn::FaultKind::LeakageToGround:
        grid.add_leakage_to_ground(fault.index, fault.severity);
        break;
      case pdn::FaultKind::ConverterStuckOff:
        VS_FAIL("imported benchmark grids have no converters");
    }
  }
}

double slot_voltage(const ImportedGrid& grid, const GridSolution& solution,
                    std::size_t slot) {
  return grid.is_fixed(slot) ? grid.fixed_potential(slot)
                             : solution.voltages[slot];
}

/// Max |pad potential| -- the denominator every fraction in this file uses.
double reference_potential(const ImportedGrid& grid) {
  double ref = 0.0;
  for (std::size_t s = grid.unknown_count(); s < grid.slot_count(); ++s) {
    ref = std::max(ref, std::abs(grid.fixed_potential(s)));
  }
  return ref;
}

/// Baseline fields + ranking; returns false when the fault-free grid does
/// not solve (the report then carries zero planned cases -- there is no
/// meaningful baseline to compare damaged variants against).
bool make_baseline(const ImportedGrid& grid, const GridCampaignOptions& options,
                   core::ContingencyReport& report, GridSolution& baseline) {
  ImportedGrid base(grid);
  baseline = base.solve(options.solve);
  if (!baseline.solve_ok) return false;
  report.base_max_node_deviation_fraction = baseline.max_deviation_fraction;
  report.base_max_ir_drop_fraction = baseline.max_deviation_fraction;
  report.base_supply_current = baseline.supply_current_a;
  return true;
}

void classify_and_append(core::ContingencyReport& report,
                         core::ContingencyCase one) {
  switch (one.outcome) {
    case core::CaseOutcome::Survivable: ++report.survivable; break;
    case core::CaseOutcome::Degraded: ++report.degraded; break;
    case core::CaseOutcome::Infeasible: ++report.infeasible; break;
  }
  if (one.solved) {
    report.worst_post_fault_deviation = std::max(
        report.worst_post_fault_deviation, one.max_node_deviation_fraction);
  }
  report.cases.push_back(std::move(one));
}

core::ContingencyReport run_cases(const ImportedGrid& grid,
                                  const GridCampaignOptions& options,
                                  core::ContingencyReport report,
                                  std::vector<pdn::FaultSet> plans,
                                  std::vector<std::string> labels) {
  report.planned = plans.size();
  std::vector<core::ContingencyCase> slots(plans.size());
  const core::TaskPool pool(options.execution);
  const std::size_t committed = pool.run_ordered(
      plans.size(),
      [&](std::size_t i) {
        slots[i] = evaluate_case(grid, plans[i], options, labels[i]);
      },
      [&](std::size_t i) { classify_and_append(report, std::move(slots[i])); });
  report.cancelled = committed < report.planned;
  return report;
}

}  // namespace

std::vector<core::EmRiskEntry> rank_by_stress(
    const ImportedGrid& grid, const GridSolution& baseline,
    const GridCampaignOptions& options) {
  VS_REQUIRE(baseline.solve_ok, "stress ranking needs a solved baseline");
  VS_REQUIRE(baseline.voltages.size() == grid.unknown_count(),
             "baseline does not match this grid");
  std::vector<core::EmRiskEntry> entries;
  double total_current = 0.0;
  const auto& conductors = grid.conductors();
  for (std::size_t index = 0; index < conductors.size(); ++index) {
    const auto& c = conductors[index];
    if (c.count == 0 || c.unit_resistance <= 0.0) continue;
    const double g = static_cast<double>(c.count) / c.unit_resistance;
    const double current =
        std::abs(g * (slot_voltage(grid, baseline, c.node_a) -
                      slot_voltage(grid, baseline, c.node_b)));
    core::EmRiskEntry entry;
    entry.conductor_index = index;
    entry.kind = c.kind;
    entry.count = c.count;
    entry.unit_current = current / static_cast<double>(c.count);
    entry.failure_probability = current;  // normalized to a share below
    entries.push_back(entry);
    total_current += current;
  }
  if (total_current > 0.0) {
    for (auto& entry : entries) entry.failure_probability /= total_current;
  }
  std::stable_sort(entries.begin(), entries.end(),
                   [](const core::EmRiskEntry& a, const core::EmRiskEntry& b) {
                     return a.failure_probability > b.failure_probability;
                   });
  if (!options.exhaustive && entries.size() > options.top_k) {
    entries.resize(options.top_k);
  }
  return entries;
}

core::ContingencyCase evaluate_case(const ImportedGrid& grid,
                                    const pdn::FaultSet& faults,
                                    const GridCampaignOptions& options,
                                    const std::string& label) {
  c_cases.add();
  core::ContingencyCase one;
  one.label = label;
  one.faults = faults;
  one.converter_limit_ok = true;

  ImportedGrid damaged(grid);
  apply_faults(damaged, faults);
  const GridSolution solution = damaged.solve(options.solve);
  one.solved = solution.solve_ok;
  one.solve_attempts = std::max<std::size_t>(1, solution.report.attempts.size());
  one.floating_islands = solution.floating_islands;
  one.deadline_truncated = solution.report.deadline_expired;
  if (!solution.solve_ok) {
    one.outcome = core::CaseOutcome::Infeasible;
    one.diagnostic = solution.diagnostic;
    return one;
  }
  one.max_node_deviation_fraction = solution.max_deviation_fraction;
  one.max_ir_drop_fraction = solution.max_deviation_fraction;
  one.supply_current = solution.supply_current_a;
  if (solution.floating_load_current_a > 0.0) {
    one.outcome = core::CaseOutcome::Infeasible;
    one.diagnostic = "load current stranded on a floating island";
  } else if (solution.max_deviation_fraction > options.noise_budget_fraction) {
    one.outcome = core::CaseOutcome::Degraded;
  } else {
    one.outcome = core::CaseOutcome::Survivable;
  }
  return one;
}

core::ContingencyReport run_n_minus_1(const ImportedGrid& grid,
                                      const GridCampaignOptions& options) {
  VS_SPAN("pgio.campaign.n_minus_1");
  core::ContingencyReport report;
  GridSolution baseline;
  if (!make_baseline(grid, options, report, baseline)) return report;
  report.ranking = rank_by_stress(grid, baseline, options);

  std::vector<pdn::FaultSet> plans;
  std::vector<std::string> labels;
  for (std::size_t i = 0; i < report.ranking.size(); ++i) {
    const std::size_t index = report.ranking[i].conductor_index;
    plans.push_back(pdn::FaultSet().open_conductor(index));
    labels.push_back("N-1#" + std::to_string(i) + " open[" +
                     std::to_string(index) + "]");
  }
  return run_cases(grid, options, std::move(report), std::move(plans),
                   std::move(labels));
}

core::ContingencyReport run_monte_carlo(const ImportedGrid& grid,
                                        const GridCampaignOptions& options) {
  VS_SPAN("pgio.campaign.monte_carlo");
  core::ContingencyReport report;
  GridSolution baseline;
  if (!make_baseline(grid, options, report, baseline)) return report;

  // Rank EVERY conductor: the sampler draws from the full stress
  // distribution even when the reported ranking is truncated.
  GridCampaignOptions full = options;
  full.exhaustive = true;
  std::vector<core::EmRiskEntry> ranking = rank_by_stress(grid, baseline, full);
  report.ranking = ranking;
  if (!options.exhaustive && report.ranking.size() > options.top_k) {
    report.ranking.resize(options.top_k);
  }
  if (ranking.empty()) return report;

  std::vector<double> cumulative(ranking.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    acc += ranking[i].failure_probability;
    cumulative[i] = acc;
  }

  // Plan every trial up front; evaluation consumes no randomness, so a
  // given seed reproduces the same fault sets at any jobs count.
  Rng rng(options.seed);
  const auto sample_index = [&]() -> std::size_t {
    if (acc <= 0.0) return rng.uniform_index(ranking.size());
    const double u = rng.uniform() * acc;
    const auto it = std::lower_bound(cumulative.begin(), cumulative.end(), u);
    return std::min<std::size_t>(it - cumulative.begin(), ranking.size() - 1);
  };
  std::vector<pdn::FaultSet> plans;
  std::vector<std::string> labels;
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    pdn::FaultSet faults;
    for (std::size_t f = 0; f < options.faults_per_trial; ++f) {
      const std::size_t index = ranking[sample_index()].conductor_index;
      if (f % 2 == 0) {
        faults.open_conductor(index);
      } else {
        faults.degrade_conductor(index, options.degrade_factor);
      }
    }
    for (std::size_t f = 0; f < options.leakage_faults_per_trial; ++f) {
      if (grid.unknown_count() == 0) break;
      faults.leakage_to_ground(rng.uniform_index(grid.unknown_count()),
                               options.leakage_resistance);
    }
    plans.push_back(std::move(faults));
    labels.push_back("MC#" + std::to_string(trial));
  }
  return run_cases(grid, options, std::move(report), std::move(plans),
                   std::move(labels));
}

std::vector<GridSolution> sweep_load_scale(const ImportedGrid& grid,
                                           const std::vector<double>& scales,
                                           const GridCampaignOptions& options) {
  VS_SPAN("pgio.campaign.sweep");
  std::vector<GridSolution> results(scales.size());
  const core::TaskPool pool(options.execution);
  const std::size_t committed = pool.run_ordered(
      scales.size(),
      [&](std::size_t i) {
        ImportedGrid copy(grid);
        results[i] = copy.solve_scaled(scales[i], options.solve);
      },
      [](std::size_t) {});
  results.resize(committed);
  return results;
}

LoadStepReport simulate_load_step(const ImportedGrid& grid,
                                  const LoadStepOptions& options) {
  VS_SPAN("pgio.campaign.load_step");
  VS_REQUIRE(options.dt_s > 0.0, "dt must be positive");
  VS_REQUIRE(options.duration_s >= options.dt_s,
             "duration must cover at least one step");
  LoadStepReport report;

  ImportedGrid work(grid);
  const GridSolution pre = work.solve(options.solve);
  if (!pre.solve_ok) {
    report.diagnostic = "pre-step DC solve failed: " + pre.diagnostic;
    return report;
  }
  const GridSolution target =
      work.solve_scaled(options.step_scale, options.solve);
  if (!target.solve_ok) {
    report.diagnostic = "post-step DC solve failed: " + target.diagnostic;
    return report;
  }
  report.pre_step_deviation_v = pre.max_deviation_v;
  report.post_step_deviation_v = target.max_deviation_v;

  const std::size_t n = work.unknown_count();
  if (n == 0) {
    report.solve_ok = true;
    report.recovered = true;
    report.recovery_time_s = 0.0;
    return report;
  }

  // Per-slot decap: the netlist's C cards when it has any, else the
  // uniform default (the IBM DC benchmarks carry no caps).
  std::vector<double> cap(work.slot_capacitance().begin(),
                          work.slot_capacitance().begin() +
                              static_cast<std::ptrdiff_t>(n));
  bool has_netlist_caps = false;
  for (const double c : cap) has_netlist_caps |= c > 0.0;
  if (!has_netlist_caps) cap.assign(n, options.default_decap_f);

  // Backward-Euler companion system: (G + C/h) v_new = b + (C/h) v_old.
  const double h = options.dt_s;
  la::CooBuilder builder(n);
  la::Vector fixed_rhs, load_rhs;
  work.stamp_conductances(builder, fixed_rhs, load_rhs);
  for (std::size_t s = 0; s < n; ++s) builder.add(s, s, cap[s] / h);
  const la::CsrMatrix matrix = builder.build();
  la::SolveOptions solver_options;
  solver_options.preconditioner = options.solve.preconditioner;
  solver_options.backend = options.solve.backend;
  la::Solver solver(matrix, solver_options);

  const double ref = reference_potential(work);
  const double band =
      ref > 0.0 ? options.recovery_fraction * ref : options.recovery_fraction;
  const auto steps =
      static_cast<std::size_t>(std::ceil(options.duration_s / h));
  la::Vector v = pre.voltages;
  la::Vector rhs(n);
  double error_inf = 0.0;
  for (std::size_t k = 0; k < steps; ++k) {
    for (std::size_t s = 0; s < n; ++s) {
      rhs[s] = fixed_rhs[s] + options.step_scale * load_rhs[s] +
               (cap[s] / h) * v[s];
    }
    const la::SolveReport step =
        solver.solve(rhs, v, options.solve.iterative);
    if (!step.converged) {
      report.steps = k;
      report.diagnostic = "transient step " + std::to_string(k) +
                          " failed: " + step.diagnostic;
      return report;
    }
    error_inf = 0.0;
    for (std::size_t s = 0; s < n; ++s) {
      if (work.is_floating(s)) continue;
      report.worst_deviation_v = std::max(
          report.worst_deviation_v, std::abs(v[s] - work.nominal_potential(s)));
      report.worst_droop_v =
          std::max(report.worst_droop_v, std::abs(v[s] - pre.voltages[s]));
      error_inf = std::max(error_inf, std::abs(v[s] - target.voltages[s]));
    }
    if (!report.recovered && error_inf <= band) {
      report.recovered = true;
      report.recovery_time_s = static_cast<double>(k + 1) * h;
    }
  }
  report.steps = steps;
  report.final_error_v = error_inf;
  report.solve_ok = true;
  return report;
}

}  // namespace vstack::pgio
