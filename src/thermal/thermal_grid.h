// Steady-state 3D thermal model (the paper's HotSpot substitute, Sec. 4.1).
//
// Each silicon layer is discretised into an nx x ny grid of cells; heat
// conducts laterally through silicon, vertically through silicon plus the
// inter-layer bonding/TIM film, leaves the stack through a heat sink above
// the top layer and (weakly) through the package below the bottom layer.
// The resulting SPD system is solved with the shared CG solver.
//
// The paper uses this only for the feasibility claim that an 8-layer stack
// of 7.6 W layers stays below 100 C with conventional air cooling; the
// default configuration is calibrated to make that claim reproducible.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/power_map.h"

namespace vstack::thermal {

struct ThermalConfig {
  double ambient_celsius = 45.0;      // HotSpot's customary ambient
  double si_thickness = 100e-6;       // [m] thinned stacked die
  double tim_thickness = 20e-6;       // [m] inter-layer bond / TIM
  double k_silicon = 120.0;           // [W/(m K)]
  double k_tim = 4.0;                 // [W/(m K)]
  double sink_resistance = 0.42;      // [K/W] heat sink + spreader (air)
  double board_resistance = 20.0;     // [K/W] secondary path through package
  std::size_t nx = 16;
  std::size_t ny = 16;

  void validate() const;
};

struct ThermalResult {
  /// Per-layer temperature maps [Celsius]; same grid as the power maps.
  std::vector<floorplan::GridMap> layer_temperature;
  double max_celsius = 0.0;
  double mean_celsius = 0.0;

  /// Index (layer, ix, iy) of the hotspot.
  std::size_t hottest_layer = 0;
};

/// Solve the stack's steady-state temperature field.
///   die_width/die_height: lateral dimensions [m].
///   layer_power: one power map per layer, all on the config's grid, layer 0
///   nearest the package (C4 side), last layer under the heat sink.
ThermalResult solve_stack_temperature(
    const ThermalConfig& config, double die_width, double die_height,
    const std::vector<floorplan::GridMap>& layer_power);

/// Convenience: maximum layer count (1..limit) for which a uniform stack of
/// identical layers stays below `max_celsius`; returns 0 if even one layer
/// exceeds it.
std::size_t max_feasible_layers(const ThermalConfig& config, double die_width,
                                double die_height,
                                const floorplan::GridMap& layer_power,
                                double max_celsius, std::size_t limit);

}  // namespace vstack::thermal
