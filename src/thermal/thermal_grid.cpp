#include "thermal/thermal_grid.h"

#include <cmath>

#include "common/error.h"
#include "la/solver.h"

namespace vstack::thermal {

void ThermalConfig::validate() const {
  VS_REQUIRE(si_thickness > 0.0 && tim_thickness > 0.0,
             "layer thicknesses must be positive");
  VS_REQUIRE(k_silicon > 0.0 && k_tim > 0.0,
             "thermal conductivities must be positive");
  VS_REQUIRE(sink_resistance > 0.0 && board_resistance > 0.0,
             "boundary resistances must be positive");
  VS_REQUIRE(nx >= 2 && ny >= 2, "grid must be at least 2x2");
}

ThermalResult solve_stack_temperature(
    const ThermalConfig& config, double die_width, double die_height,
    const std::vector<floorplan::GridMap>& layer_power) {
  config.validate();
  VS_REQUIRE(die_width > 0.0 && die_height > 0.0,
             "die dimensions must be positive");
  VS_REQUIRE(!layer_power.empty(), "need at least one layer");
  for (const auto& map : layer_power) {
    VS_REQUIRE(map.nx == config.nx && map.ny == config.ny,
               "power map grid must match the thermal grid");
  }

  const std::size_t layers = layer_power.size();
  const std::size_t nx = config.nx, ny = config.ny;
  const std::size_t per_layer = nx * ny;
  const std::size_t n = layers * per_layer;

  const double cell_w = die_width / static_cast<double>(nx);
  const double cell_h = die_height / static_cast<double>(ny);
  const double cell_area = cell_w * cell_h;
  const double die_area = die_width * die_height;

  // Lateral conductances through the silicon slab.
  const double g_x = config.k_silicon * config.si_thickness * cell_h / cell_w;
  const double g_y = config.k_silicon * config.si_thickness * cell_w / cell_h;
  // Vertical: half-silicon + TIM + half-silicon in series, per cell.
  const double r_vert =
      (config.si_thickness / config.k_silicon +
       config.tim_thickness / config.k_tim) /
      cell_area;
  const double g_vert = 1.0 / r_vert;
  // Boundary conductances distributed per cell by area share.
  const double g_sink = (1.0 / config.sink_resistance) * cell_area / die_area;
  const double g_board =
      (1.0 / config.board_resistance) * cell_area / die_area;

  const auto index = [per_layer, nx](std::size_t layer, std::size_t ix,
                                     std::size_t iy) {
    return layer * per_layer + iy * nx + ix;
  };

  la::CooBuilder builder(n);
  la::Vector rhs(n, 0.0);

  for (std::size_t l = 0; l < layers; ++l) {
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const std::size_t i = index(l, ix, iy);
        rhs[i] += layer_power[l].at(ix, iy);

        if (ix + 1 < nx) {
          const std::size_t j = index(l, ix + 1, iy);
          builder.add(i, i, g_x);
          builder.add(j, j, g_x);
          builder.add(i, j, -g_x);
          builder.add(j, i, -g_x);
        }
        if (iy + 1 < ny) {
          const std::size_t j = index(l, ix, iy + 1);
          builder.add(i, i, g_y);
          builder.add(j, j, g_y);
          builder.add(i, j, -g_y);
          builder.add(j, i, -g_y);
        }
        if (l + 1 < layers) {
          const std::size_t j = index(l + 1, ix, iy);
          builder.add(i, i, g_vert);
          builder.add(j, j, g_vert);
          builder.add(i, j, -g_vert);
          builder.add(j, i, -g_vert);
        }
        if (l == layers - 1) builder.add(i, i, g_sink);   // heat-sink side
        if (l == 0) builder.add(i, i, g_board);           // package side
      }
    }
  }

  la::Vector theta;  // temperature rise over ambient
  const la::CsrMatrix conductance = builder.build();
  la::Solver solver(conductance);
  const auto report = solver.solve(rhs, theta);
  VS_REQUIRE(report.converged, "thermal solve failed to converge");

  ThermalResult result;
  result.layer_temperature.resize(layers);
  result.max_celsius = -1e300;
  double sum = 0.0;
  for (std::size_t l = 0; l < layers; ++l) {
    auto& map = result.layer_temperature[l];
    map.nx = nx;
    map.ny = ny;
    map.values.assign(per_layer, 0.0);
    for (std::size_t iy = 0; iy < ny; ++iy) {
      for (std::size_t ix = 0; ix < nx; ++ix) {
        const double t = config.ambient_celsius + theta[index(l, ix, iy)];
        map.at(ix, iy) = t;
        sum += t;
        if (t > result.max_celsius) {
          result.max_celsius = t;
          result.hottest_layer = l;
        }
      }
    }
  }
  result.mean_celsius = sum / static_cast<double>(n);
  return result;
}

std::size_t max_feasible_layers(const ThermalConfig& config, double die_width,
                                double die_height,
                                const floorplan::GridMap& layer_power,
                                double max_celsius, std::size_t limit) {
  VS_REQUIRE(limit >= 1, "limit must be at least 1");
  std::size_t feasible = 0;
  std::vector<floorplan::GridMap> stack;
  for (std::size_t layers = 1; layers <= limit; ++layers) {
    stack.push_back(layer_power);
    const auto result =
        solve_stack_temperature(config, die_width, die_height, stack);
    if (result.max_celsius > max_celsius) break;
    feasible = layers;
  }
  return feasible;
}

}  // namespace vstack::thermal
