// The cross-layer exploration API -- the paper's primary contribution.
//
// A StudyContext bundles the processor model (floorplan + power), the EM
// model, and the converter design, and evaluates complete design scenarios:
// EM-damage-free lifetime of the C4/TSV arrays, supply voltage noise, and
// system power efficiency, for both regular and voltage-stacked PDNs.
#pragma once

#include <cstddef>
#include <vector>

#include "em/array_mttf.h"
#include "floorplan/floorplan.h"
#include "pdn/solver.h"
#include "power/core_power_model.h"
#include "sc/area.h"
#include "sc/ladder.h"
#include "thermal/thermal_grid.h"

namespace vstack::core {

struct StudyContext {
  floorplan::Floorplan layer_floorplan;
  power::CorePowerModel core_model;
  em::BlackModel black;
  em::ArrayMttfOptions mttf_options;
  pdn::StackupConfig base;  // shared parameters; topology etc. overridden
  sc::CapacitorTechnology capacitor_technology;

  /// The paper's study configuration: 16-core A9 layer, Few-TSV default,
  /// 32 Vdd pads/core for V-S, push-pull converter, high-density caps.
  ///
  /// EM model: Black exponent 1.1 (typical Cu interconnect) with lognormal
  /// sigma 0.5 and the TSV current-crowding model; together these reproduce
  /// the paper's EM relationships (the ~84% regular-TSV degradation from 2
  /// to 8 layers, the >3x TSV and >=5x C4 gaps at 8 layers, and the
  /// marginal benefit of denser TSV allocations); see EXPERIMENTS.md.
  static StudyContext paper_defaults();

  /// Area overhead of a V-S design: converters (converters_per_core of them
  /// in every core on every layer) plus the TSV keep-out zones, as a
  /// fraction of core area.
  double vs_area_overhead(std::size_t converters_per_core,
                          const pdn::TsvConfig& tsv) const;

  /// Area overhead of a regular design: TSV keep-out zones only.
  double regular_area_overhead(const pdn::TsvConfig& tsv) const;
};

/// Outcome of one PDN scenario evaluation.
struct ScenarioResult {
  pdn::PdnSolution solution;
  double tsv_mttf = 0.0;  // expected EM-damage-free lifetime of the TSV array
  double c4_mttf = 0.0;   // same for the C4 pad array
};

/// Build, solve, and post-process one scenario at the given per-layer
/// activities (both MTTF metrics computed from the solved currents).
ScenarioResult evaluate_scenario(const StudyContext& ctx,
                                 const pdn::StackupConfig& config,
                                 const std::vector<double>& layer_activities);

/// Convenience builders for the two topologies, starting from ctx.base.
pdn::StackupConfig make_regular(const StudyContext& ctx, std::size_t layers,
                                const pdn::TsvConfig& tsv,
                                double power_c4_fraction);
pdn::StackupConfig make_stacked(const StudyContext& ctx, std::size_t layers,
                                const pdn::TsvConfig& tsv,
                                std::size_t converters_per_core);

/// Thermal-EM coupled evaluation (extension beyond the paper): solve the
/// stack's temperature field for the same workload, then recompute the EM
/// lifetimes with per-conductor temperatures (TSVs at the mean temperature
/// of their interface, C4 pads at the bottom layer's).
struct ThermalAwareResult {
  ScenarioResult isothermal;  // reference evaluation at the Black default T
  thermal::ThermalResult thermal;
  std::vector<double> layer_mean_celsius;
  double tsv_mttf_thermal = 0.0;
  double c4_mttf_thermal = 0.0;
};

ThermalAwareResult evaluate_scenario_with_thermal(
    const StudyContext& ctx, const pdn::StackupConfig& config,
    const std::vector<double>& layer_activities,
    const thermal::ThermalConfig& thermal_config = {});

/// System power efficiency of a voltage-stacked design under the
/// interleaved high-low pattern (Fig. 8 machinery).
struct EfficiencyResult {
  double efficiency = 0.0;
  double max_converter_current = 0.0;
  bool feasible = true;  // within the per-converter current limit
};

EfficiencyResult stacked_efficiency(const StudyContext& ctx,
                                    std::size_t layers,
                                    std::size_t converters_per_core,
                                    double imbalance);

/// Baseline: regular PDN where SC converters provide ALL the power (every
/// layer's full current passes through a 2:1 conversion).
EfficiencyResult regular_sc_efficiency(const StudyContext& ctx,
                                       std::size_t layers,
                                       std::size_t converters_per_core,
                                       double imbalance);

}  // namespace vstack::core
