// Crash-safe transient fault-ride-through campaigns.
//
// The DC contingency engine (core/contingency.h) answers "does the damaged
// stack still balance at steady state?".  This runner replays each sampled
// N-k scenario as a LIVE transient: the faults strike mid-run
// (pdn::TimedFaultEvent) and the sc::StackSupervisor fights back, so every
// scenario ends as Recovered / Degraded / Lost instead of a static
// feasibility verdict.
//
// Campaigns are long and individual scenarios can be pathological, so the
// runner is hardened:
//
//   * Per-scenario wall-clock timeout (mapped onto the step controller's
//     wall_clock_budget_s) -- a near-singular post-fault system truncates
//     that ONE scenario instead of hanging the campaign.
//   * Bounded retry with relaxed LTE tolerances: a truncated or collapsed
//     scenario is re-run with rel/abs tolerances scaled by
//     retry_tolerance_relax, up to max_retries times.
//   * Checkpoint/resume: with manifest_path set, a JSONL manifest records a
//     header (seed, trial count, config hash) plus one line per finished
//     scenario (keyed by trial index + FNV-1a scenario hash), flushed as
//     each scenario completes.  Killing the process mid-campaign loses at
//     most the in-flight scenario; re-running with the same manifest skips
//     every finished one and reproduces bit-identical aggregates (results
//     are round-tripped through %.17g).
//
// Scenario sampling reuses ContingencyEngine::plan_monte_carlo, which
// consumes the seeded RNG entirely up front -- the trial fault sets match
// run_monte_carlo's for the same seed, so the DC and transient views of a
// campaign are directly comparable.
//
// Scenarios are independent (fresh PdnModel each), so campaigns run on the
// shared worker pool (core/task_pool.h) when options.execution asks for
// jobs > 1.  The pool's ordered reduction commits results in trial-index
// order on the calling thread: aggregates and the manifest are
// bit-identical to a serial run, and the manifest keeps its prefix
// property (entries are exactly trials [0, k)), so serial and parallel
// runs resume each other's manifests freely.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/contingency.h"
#include "core/task_pool.h"
#include "pdn/ride_through.h"

namespace vstack::core {

struct CampaignOptions {
  /// Monte Carlo shape: seed, trials, faults per trial, converter/leakage
  /// extras, and the EM ranking knobs (mission_time, solve options).
  ContingencyOptions contingency;

  /// Transient replay configuration: engine options (duration, decap,
  /// tolerances), supervisor policy, and action-translation knobs.  Any
  /// fault_events already present are ignored -- the runner installs each
  /// scenario's sampled fault set itself.
  pdn::RideThroughOptions ride_through;

  /// When the sampled faults strike within each scenario's run [s].
  double fault_time = 50e-9;

  /// Per-scenario wall-clock timeout [s]; 0 disables.  Applied per attempt
  /// through the step controller's wall_clock_budget_s.
  double scenario_timeout_s = 30.0;

  /// Extra attempts after a truncated first run, each relaxing the LTE
  /// tolerances (rel_tol, abs_tol) by retry_tolerance_relax.
  std::size_t max_retries = 1;
  double retry_tolerance_relax = 10.0;

  /// JSONL checkpoint manifest path; empty disables checkpointing.  An
  /// existing manifest must match this campaign's seed/trials/config hash
  /// (else the runner refuses rather than silently mixing campaigns).
  std::string manifest_path;

  /// Scenario scheduling (core/task_pool.h).  Defaults to serial; with
  /// jobs > 1 scenarios evaluate concurrently but results commit in
  /// trial-index order, so aggregates, summary(), and the manifest bytes
  /// are identical to a serial run (wall_seconds aside, which measures
  /// real time).  Manifests are interchangeable between serial and
  /// parallel runs in both directions.  Caveat: scenario_timeout_s
  /// couples results to machine speed -- an oversubscribed run can trip a
  /// timeout serial would not; set it to 0 when bit-reproducibility
  /// matters more than a hang guard.
  ExecutionPolicy execution;

  void validate() const;
};

/// Outcome of one scenario, as recorded in (and restored from) the manifest.
struct CampaignScenarioResult {
  std::size_t index = 0;        // trial number
  std::string label;            // "MC#<trial>"
  std::uint64_t scenario_hash = 0;  // FNV-1a over the fault recipe + strike time

  pdn::RideThroughOutcome outcome = pdn::RideThroughOutcome::Lost;
  bool completed = false;   // transient engine reached the full horizon
  bool timed_out = false;   // final attempt died on a budget (wall or steps)
  std::size_t attempts = 1; // 1 + retries actually used

  double detected_at = -1.0;
  double recovered_at = -1.0;
  double worst_droop = 0.0;
  double final_droop = 0.0;
  std::size_t action_count = 0;
  std::size_t shutdown_count = 0;
  double wall_seconds = 0.0;  // summed over attempts

  bool from_checkpoint = false;  // restored from the manifest, not re-run

  /// The final attempt was cut short by options.execution.deadline, not by
  /// physics or numerics.  Never serialized: the commit path discards the
  /// result -- and everything after it, keeping the committed prefix
  /// contiguous -- so manifests only ever hold trials that ran to a real
  /// verdict, and a resume re-runs the trial instead of inheriting a
  /// truncated waveform.
  bool deadline_truncated = false;
};

struct CampaignReport {
  std::vector<CampaignScenarioResult> scenarios;

  std::size_t recovered = 0;
  std::size_t degraded = 0;
  std::size_t lost = 0;
  std::size_t timed_out = 0;      // scenarios whose final attempt hit a budget
  double worst_droop = 0.0;       // over completed scenarios

  std::size_t resumed = 0;    // restored from the manifest
  std::size_t evaluated = 0;  // actually simulated this run
  std::uint64_t config_hash = 0;

  /// Trials the plan called for; scenarios.size() < planned only when the
  /// run was cancelled.
  std::size_t planned = 0;
  /// True when options.execution.deadline fired before every trial
  /// committed.  `scenarios` (and the manifest, when enabled) hold a
  /// contiguous trial prefix; re-running with the same manifest and an
  /// unexpired deadline finishes the campaign with identical aggregates.
  bool cancelled = false;

  /// Multi-line human-readable digest (counts + worst droop).
  std::string summary() const;
};

class CampaignRunner {
 public:
  CampaignRunner(const StudyContext& ctx, pdn::StackupConfig config);

  const pdn::StackupConfig& config() const { return config_; }

  /// Plan (seeded), resume from the manifest if one exists, evaluate the
  /// remaining scenarios, and aggregate.  Throws only on precondition
  /// violations (bad options, mismatched manifest); scenario-level trouble
  /// is classified, never thrown.
  CampaignReport run(const std::vector<double>& layer_activities,
                     const CampaignOptions& options = {}) const;

  // Decomposed hooks for external schedulers (src/shard's worker fleet):
  // plan() reproduces run()'s deterministic scenario list, run_scenario()
  // evaluates exactly one of them.  A worker that executes an arbitrary
  // subset of plan() through run_scenario() produces results byte-identical
  // to the serial run's manifest lines for those trials -- the property the
  // deterministic shard merge depends on.

  /// The seeded Monte Carlo scenario list run() would evaluate, in trial
  /// order.  Pure function of (config, activities, options.contingency).
  std::vector<PlannedScenario> plan(
      const std::vector<double>& layer_activities,
      const CampaignOptions& options) const;

  /// Evaluate one planned scenario (fresh PdnModel, timeout + bounded
  /// retry, deadline plumbing) exactly as run() would.
  CampaignScenarioResult run_scenario(
      const PlannedScenario& scenario,
      const std::vector<double>& layer_activities,
      const CampaignOptions& options) const;

 private:
  CampaignScenarioResult evaluate_scenario(
      const PlannedScenario& scenario,
      const std::vector<double>& layer_activities,
      const CampaignOptions& options) const;

  const StudyContext& ctx_;
  pdn::StackupConfig config_;
};

/// Stacked vs regular-3D survivability under the same campaign shape: one
/// row per topology (each campaign samples its own network's candidates).
/// With options.manifest_path set, per-topology manifests get "-stacked" /
/// "-regular" inserted before the extension.
struct SurvivabilityRow {
  std::string label;
  std::size_t recovered = 0;
  std::size_t degraded = 0;
  std::size_t lost = 0;
  std::size_t timed_out = 0;
  double worst_droop = 0.0;
};

struct SurvivabilityTable {
  std::vector<SurvivabilityRow> rows;
  /// Fixed-width text table for CLI / bench output.
  std::string format() const;
};

SurvivabilityTable compare_survivability(
    const StudyContext& ctx, const pdn::StackupConfig& stacked,
    const pdn::StackupConfig& regular,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options = {});

}  // namespace vstack::core
