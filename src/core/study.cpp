#include "core/study.h"

#include <cmath>

#include "common/error.h"
#include "common/units.h"
#include "power/workload.h"

namespace vstack::core {

StudyContext StudyContext::paper_defaults() {
  StudyContext ctx{
      floorplan::paper_layer_floorplan(),
      power::CorePowerModel::cortex_a9_like(),
      em::BlackModel{},
      em::ArrayMttfOptions{},
      pdn::StackupConfig{},
      sc::ferroelectric_capacitor(),  // the "high-density capacitors" case
  };
  // Standard Cu-interconnect Black exponent; with the TSV current-crowding
  // model this reproduces the paper's EM trends (see EXPERIMENTS.md).
  ctx.black.current_exponent = 1.1;
  ctx.base.tsv = pdn::TsvConfig::few();
  ctx.base.vdd_pads_per_core = 32;
  return ctx;
}

double StudyContext::vs_area_overhead(std::size_t converters_per_core,
                                      const pdn::TsvConfig& tsv) const {
  const double conv_area =
      sc::converter_area(base.converter, capacitor_technology);
  const double core_area = core_model.area();
  return static_cast<double>(converters_per_core) * conv_area / core_area +
         tsv.area_overhead(base.params, core_area);
}

double StudyContext::regular_area_overhead(const pdn::TsvConfig& tsv) const {
  return tsv.area_overhead(base.params, core_model.area());
}

pdn::StackupConfig make_regular(const StudyContext& ctx, std::size_t layers,
                                const pdn::TsvConfig& tsv,
                                double power_c4_fraction) {
  pdn::StackupConfig cfg = ctx.base;
  cfg.topology = pdn::PdnTopology::Regular3d;
  cfg.layer_count = layers;
  cfg.tsv = tsv;
  cfg.power_c4_fraction = power_c4_fraction;
  return cfg;
}

pdn::StackupConfig make_stacked(const StudyContext& ctx, std::size_t layers,
                                const pdn::TsvConfig& tsv,
                                std::size_t converters_per_core) {
  pdn::StackupConfig cfg = ctx.base;
  cfg.topology = pdn::PdnTopology::VoltageStacked;
  cfg.layer_count = layers;
  cfg.tsv = tsv;
  cfg.converters_per_core = converters_per_core;
  return cfg;
}

ScenarioResult evaluate_scenario(const StudyContext& ctx,
                                 const pdn::StackupConfig& config,
                                 const std::vector<double>& layer_activities) {
  pdn::PdnModel model(config, ctx.layer_floorplan);
  ScenarioResult result;
  result.solution = model.solve_activities(ctx.core_model, layer_activities);
  // The study pipeline only evaluates healthy (fault-free) networks, where
  // a failed solve indicates a modeling bug, not expected degradation --
  // fault campaigns go through core/contingency.h, which inspects the
  // report instead.
  VS_REQUIRE(result.solution.solve_ok,
             "PDN solve failed: " + result.solution.diagnostic);
  result.tsv_mttf = em::array_mttf(result.solution.tsv_currents, ctx.black,
                                   ctx.mttf_options);
  result.c4_mttf = em::array_mttf(result.solution.c4_pad_currents, ctx.black,
                                  ctx.mttf_options);
  return result;
}

ThermalAwareResult evaluate_scenario_with_thermal(
    const StudyContext& ctx, const pdn::StackupConfig& config,
    const std::vector<double>& layer_activities,
    const thermal::ThermalConfig& thermal_config) {
  ThermalAwareResult out;
  out.isothermal = evaluate_scenario(ctx, config, layer_activities);

  // Temperature field for the same workload.
  std::vector<floorplan::GridMap> power_maps;
  power_maps.reserve(config.layer_count);
  for (std::size_t l = 0; l < config.layer_count; ++l) {
    power_maps.push_back(floorplan::layer_power_map(
        ctx.layer_floorplan, ctx.core_model,
        std::vector<double>(ctx.layer_floorplan.core_count(),
                            layer_activities[l]),
        thermal_config.nx, thermal_config.ny));
  }
  out.thermal = thermal::solve_stack_temperature(
      thermal_config, ctx.layer_floorplan.width, ctx.layer_floorplan.height,
      power_maps);

  out.layer_mean_celsius.resize(config.layer_count);
  for (std::size_t l = 0; l < config.layer_count; ++l) {
    const auto& map = out.thermal.layer_temperature[l];
    double sum = 0.0;
    for (const double t : map.values) sum += t;
    out.layer_mean_celsius[l] = sum / static_cast<double>(map.values.size());
  }

  // Per-conductor temperatures: TSVs at their interface's mean, pads at the
  // bottom layer's.
  const auto& sol = out.isothermal.solution;
  const auto kelvin = [](double celsius) {
    return celsius + constants::kCelsiusOffset;
  };
  std::vector<double> tsv_temps(sol.tsv_currents.size());
  for (std::size_t k = 0; k < sol.tsv_currents.size(); ++k) {
    const unsigned i = sol.tsv_interface_of[k];
    const double t_low = out.layer_mean_celsius[i];
    const double t_high =
        out.layer_mean_celsius[std::min<std::size_t>(i + 1,
                                                     config.layer_count - 1)];
    tsv_temps[k] = kelvin(0.5 * (t_low + t_high));
  }
  out.tsv_mttf_thermal = em::array_mttf_at_temperatures(
      sol.tsv_currents, tsv_temps, ctx.black, ctx.mttf_options);

  const std::vector<double> pad_temps(sol.c4_pad_currents.size(),
                                      kelvin(out.layer_mean_celsius.front()));
  out.c4_mttf_thermal = em::array_mttf_at_temperatures(
      sol.c4_pad_currents, pad_temps, ctx.black, ctx.mttf_options);
  return out;
}

EfficiencyResult stacked_efficiency(const StudyContext& ctx,
                                    std::size_t layers,
                                    std::size_t converters_per_core,
                                    double imbalance) {
  const auto activities =
      power::interleaved_layer_activities(layers, imbalance);
  std::vector<double> layer_currents(layers);
  const double cores = static_cast<double>(ctx.layer_floorplan.core_count());
  for (std::size_t l = 0; l < layers; ++l) {
    layer_currents[l] = cores * ctx.core_model.total_power(activities[l]) /
                        ctx.base.vdd;
  }

  sc::LadderStackDesign design;
  design.layer_count = layers;
  design.converters_per_level =
      converters_per_core * ctx.layer_floorplan.core_count();
  design.converter = ctx.base.converter;
  const auto breakdown =
      sc::evaluate_ladder_power(design, layer_currents, ctx.base.vdd);

  return EfficiencyResult{breakdown.efficiency,
                          breakdown.max_converter_current,
                          breakdown.within_current_limits};
}

EfficiencyResult regular_sc_efficiency(const StudyContext& ctx,
                                       std::size_t layers,
                                       std::size_t converters_per_core,
                                       double imbalance) {
  const auto activities =
      power::interleaved_layer_activities(layers, imbalance);
  const sc::ScCompactModel model(ctx.base.converter);
  const double cores = static_cast<double>(ctx.layer_floorplan.core_count());
  const double n_conv_per_layer =
      static_cast<double>(converters_per_core) * cores;

  EfficiencyResult out;
  double load_power = 0.0, losses = 0.0;
  for (std::size_t l = 0; l < layers; ++l) {
    const double layer_power =
        cores * ctx.core_model.total_power(activities[l]);
    const double layer_current = layer_power / ctx.base.vdd;
    const double per_converter = layer_current / n_conv_per_layer;
    out.max_converter_current =
        std::max(out.max_converter_current, per_converter);
    if (per_converter > ctx.base.converter.max_load_current) {
      out.feasible = false;
    }
    // Each converter halves a 2 Vdd rail down to Vdd.
    const auto op = model.evaluate(2.0 * ctx.base.vdd, 0.0, per_converter);
    load_power += layer_power;
    losses += n_conv_per_layer * (op.conduction_loss + op.parasitic_loss);
  }
  out.efficiency = load_power / (load_power + losses);
  return out;
}

}  // namespace vstack::core
