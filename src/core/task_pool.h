// Shared worker-pool engine for the embarrassingly parallel scenario layers
// (campaigns, contingency sweeps, figure drivers).
//
// Every multi-scenario API in core takes an ExecutionPolicy (defaulted to
// serial) and runs its scenarios through TaskPool::run_ordered, which
// splits the work across `jobs` threads but commits results strictly in
// index order on the CALLING thread.  That ordered reduction is what makes
// parallel runs bit-identical to serial ones: aggregates accumulate in the
// same order, and JSONL checkpoint manifests receive the same byte
// sequence (entries keyed by trial index, committed as a contiguous
// prefix, never out of order) -- so a manifest written at jobs=8 resumes
// under jobs=1 and vice versa.  See docs/parallel_execution.md.
//
// Scheduling: workers claim chunks of `chunk` consecutive indices from an
// atomic cursor.  A work exception marks its slot failed; with
// cancel_on_error (the default) no further chunks are claimed, the
// committed prefix stays intact, and the lowest-index error is rethrown on
// the caller.  Commit callbacks run only on the caller's thread, so
// committers that write files or mutate aggregates need no locking of
// their own.
#pragma once

#include <cstddef>
#include <functional>

#include "common/deadline.h"

namespace vstack::core {

/// How a multi-scenario run is executed.  The default is serial (jobs = 1),
/// which runs work and commit inline on the caller's thread -- exactly the
/// historical single-threaded behavior.
struct ExecutionPolicy {
  /// Worker threads.  1 = serial (no threads spawned); 0 = auto, resolved
  /// through default_jobs() (VSTACK_JOBS env override, else hardware
  /// concurrency).
  std::size_t jobs = 1;

  /// Consecutive indices a worker claims per grab.  1 (default) balances
  /// best when per-scenario cost varies wildly (post-fault transients);
  /// larger chunks amortize scheduling for many cheap tasks.
  std::size_t chunk = 1;

  /// Stop claiming new work after the first work/commit exception (the
  /// error is rethrown either way, after in-flight scenarios drain).
  bool cancel_on_error = true;

  /// Cooperative cancellation / wall-clock deadline.  Checked at every
  /// chunk-claim boundary (and before each serial task): once it fires no
  /// new work starts, in-flight scenarios drain, and run_ordered returns
  /// the contiguous committed prefix.  Expiry is NOT an error -- nothing is
  /// thrown; callers compare the returned count against `count` and consult
  /// deadline.expired() to label the truncation.  Default: unlimited.
  Deadline deadline{};

  void validate() const;

  /// `jobs`, with 0 resolved to default_jobs().
  std::size_t resolved_jobs() const;

  /// VSTACK_JOBS environment override (positive integer), else
  /// std::thread::hardware_concurrency(), else 1.
  static std::size_t default_jobs();

  static ExecutionPolicy serial() { return {}; }
  static ExecutionPolicy parallel(std::size_t jobs = 0) {
    ExecutionPolicy p;
    p.jobs = jobs;
    return p;
  }
};

class TaskPool {
 public:
  /// Evaluate task `index`; runs on a worker thread (or inline when
  /// serial).  Results go into caller-owned per-index storage; the pool's
  /// internal handshake makes each slot's write visible to its commit.
  using Work = std::function<void(std::size_t index)>;

  /// Reduce task `index`; always runs on the calling thread, invoked in
  /// strictly increasing index order.
  using Commit = std::function<void(std::size_t index)>;

  explicit TaskPool(ExecutionPolicy policy = {});

  const ExecutionPolicy& policy() const { return policy_; }

  /// Run `work` over [0, count) on the policy's workers and `commit` each
  /// index in order on this thread.  Throws the lowest-index work error
  /// once workers drain (cancelling per policy); a commit error cancels
  /// and rethrows.  Workers are tagged for logging (set_log_worker_id).
  ///
  /// Returns the number of indices committed -- always a contiguous prefix
  /// [0, returned).  Less than `count` only when the policy deadline fired
  /// (see ExecutionPolicy::deadline); all other early exits throw.
  std::size_t run_ordered(std::size_t count, const Work& work,
                          const Commit& commit) const;

 private:
  ExecutionPolicy policy_;
};

}  // namespace vstack::core
