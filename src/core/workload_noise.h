// Average-case voltage noise under realistic workloads -- the machinery
// behind the paper's abstract-level claim that V-S costs "only marginally
// increased average-case voltage noise (e.g., 0.75% Vdd IR drop)".
//
// Per sample, every core of every layer draws an activity window from a
// PARSEC application (per the scheduling policy), the PDN is solved, and
// the noise metric recorded; the result is a noise DISTRIBUTION rather
// than the interleaved worst case of Fig. 6.
#pragma once

#include "common/stats.h"
#include "core/study.h"

namespace vstack::core {

enum class SchedulingPolicy {
  SameAppPerStack,  // each vertical core stack runs one application
  RandomMix         // every (layer, core) slot draws independently
};

struct NoiseDistributionResult {
  BoxPlotStats noise;             // distribution of the per-sample noise
  double mean_noise = 0.0;
  std::size_t samples = 0;
  std::size_t limit_violations = 0;  // samples exceeding the converter limit
};

/// Sample the noise distribution of a PDN design under PARSEC workloads.
NoiseDistributionResult sample_noise_distribution(
    const StudyContext& ctx, const pdn::StackupConfig& config,
    SchedulingPolicy policy, std::size_t samples, std::uint64_t seed);

}  // namespace vstack::core
