#include "core/pad_optimizer.h"

#include <cmath>

#include "common/error.h"

namespace vstack::core {

std::size_t total_pad_sites(const StudyContext& ctx) {
  const double pitch = ctx.base.params.c4_pitch;
  const auto nx =
      static_cast<std::size_t>(ctx.layer_floorplan.width / pitch);
  const auto ny =
      static_cast<std::size_t>(ctx.layer_floorplan.height / pitch);
  return nx * ny;
}

PadBudgetResult minimize_regular_power_pads(const StudyContext& ctx,
                                            std::size_t layers,
                                            const PadRequirement& req) {
  VS_REQUIRE(req.max_noise_fraction > 0.0, "noise budget must be positive");
  const std::size_t sites = total_pad_sites(ctx);
  const std::vector<double> full(layers, 1.0);

  PadBudgetResult best;
  // Ascending ladder: the first fraction that meets both targets is the
  // cheapest (both metrics improve monotonically with more power pads).
  for (const double fraction :
       {0.05, 0.10, 0.15, 0.20, 0.25, 0.375, 0.50, 0.625, 0.75, 0.875,
        1.0}) {
    const auto cfg = make_regular(ctx, layers, ctx.base.tsv, fraction);
    const auto r = evaluate_scenario(ctx, cfg, full);
    if (r.c4_mttf >= req.min_c4_mttf &&
        r.solution.max_node_deviation_fraction <= req.max_noise_fraction) {
      best.feasible = true;
      best.knob = fraction;
      best.power_pads = static_cast<std::size_t>(
          std::llround(fraction * static_cast<double>(sites)));
      best.io_pads = sites - best.power_pads;
      best.achieved_c4_mttf = r.c4_mttf;
      best.achieved_noise = r.solution.max_node_deviation_fraction;
      return best;
    }
  }
  return best;  // infeasible even with every pad devoted to power
}

PadBudgetResult minimize_stacked_power_pads(const StudyContext& ctx,
                                            std::size_t layers,
                                            const PadRequirement& req) {
  VS_REQUIRE(req.max_noise_fraction > 0.0, "noise budget must be positive");
  const std::size_t sites = total_pad_sites(ctx);
  const std::vector<double> full(layers, 1.0);
  const std::size_t cores = ctx.layer_floorplan.core_count();

  PadBudgetResult best;
  for (const std::size_t vdd_per_core : {2u, 4u, 8u, 12u, 16u, 24u, 32u}) {
    auto local = ctx;
    local.base.vdd_pads_per_core = vdd_per_core;
    const auto cfg = make_stacked(local, layers, ctx.base.tsv,
                                  ctx.base.converters_per_core);
    const auto r = evaluate_scenario(local, cfg, full);
    if (r.c4_mttf >= req.min_c4_mttf &&
        r.solution.max_node_deviation_fraction <= req.max_noise_fraction) {
      best.feasible = true;
      best.knob = static_cast<double>(vdd_per_core);
      best.power_pads = 2 * vdd_per_core * cores;  // Vdd + ground pads
      best.io_pads = sites - best.power_pads;
      best.achieved_c4_mttf = r.c4_mttf;
      best.achieved_noise = r.solution.max_node_deviation_fraction;
      return best;
    }
  }
  return best;
}

}  // namespace vstack::core
