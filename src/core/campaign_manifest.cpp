#include "core/campaign_manifest.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/error.h"
#include "pdn/config_io.h"

namespace vstack::core {

void Fnv1a::bytes(const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
}

void Fnv1a::u64(std::uint64_t v) { bytes(&v, 8); }

void Fnv1a::f64(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  u64(bits);
}

void Fnv1a::str(const std::string& s) {
  u64(s.size());
  bytes(s.data(), s.size());
}

std::uint64_t campaign_scenario_hash(const PlannedScenario& scenario,
                                     double fault_time) {
  Fnv1a f;
  f.u64(scenario.index);
  f.str(scenario.label);
  f.f64(fault_time);
  for (const pdn::Fault& fault : scenario.faults.faults()) {
    f.u64(static_cast<std::uint64_t>(fault.kind));
    f.u64(fault.index);
    f.u64(fault.units);
    f.f64(fault.severity);
  }
  return f.h;
}

std::uint64_t campaign_config_hash(const pdn::StackupConfig& config,
                                   const std::vector<double>& activities,
                                   const CampaignOptions& options) {
  Fnv1a f;
  // write_stackup_config is round-trip capable, so it covers every knob of
  // the network topology.
  f.str(pdn::write_stackup_config(config));
  f.u64(activities.size());
  for (const double a : activities) f.f64(a);

  const ContingencyOptions& c = options.contingency;
  f.u64(c.seed);
  f.u64(c.trials);
  f.u64(c.faults_per_trial);
  f.u64(c.converter_faults_per_trial);
  f.u64(c.leakage_faults_per_trial);
  f.f64(c.leakage_resistance);
  f.f64(c.degrade_factor);
  f.f64(c.mission_time);

  const pdn::RideThroughOptions& rt = options.ride_through;
  f.f64(rt.transient.decap_density);
  f.f64(rt.transient.package_inductance);
  f.f64(rt.transient.time_step);
  f.f64(rt.transient.duration);
  f.f64(rt.transient.control.rel_tol);
  f.f64(rt.transient.control.abs_tol);
  f.f64(rt.supervisor.trip_fraction);
  f.f64(rt.supervisor.recovery_fraction);
  f.f64(rt.supervisor.detection_latency);
  f.f64(rt.supervisor.sense_interval);
  f.f64(rt.supervisor.action_dwell);
  f.f64(rt.supervisor.watchdog_timeout);
  f.f64(rt.supervisor.frequency_boost);
  f.u64(rt.supervisor.max_actions);
  f.f64(rt.bypass_resistance);
  f.f64(rt.max_rebalance_boost);

  f.f64(options.fault_time);
  f.u64(options.max_retries);
  f.f64(options.retry_tolerance_relax);
  // options.execution is deliberately NOT hashed: scheduling does not
  // change results, so a manifest written at jobs=1 must resume at jobs=8
  // and vice versa (and a shard fleet must merge into the serial bytes).
  return f.h;
}

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double_17g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

bool json_field(const std::string& line, const std::string& key,
                std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    const auto end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  auto end = line.find_first_of(",}", begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

bool json_u64(const std::string& line, const std::string& key,
              std::uint64_t& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end && *end == '\0';
}

bool json_hex64(const std::string& line, const std::string& key,
                std::uint64_t& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 16);
  return end && *end == '\0';
}

bool json_double(const std::string& line, const std::string& key,
                 double& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

std::string campaign_manifest_header(std::uint64_t seed, std::size_t trials,
                                     std::uint64_t config_hash) {
  std::ostringstream oss;
  oss << "{\"kind\":\"vstack-campaign\",\"version\":1,\"seed\":" << seed
      << ",\"trials\":" << trials << ",\"config_hash\":\""
      << hex64(config_hash) << "\"}";
  return oss.str();
}

bool parse_campaign_manifest_header(const std::string& line,
                                    CampaignManifestHeader& out) {
  std::string kind;
  return json_field(line, "kind", kind) && kind == "vstack-campaign" &&
         json_u64(line, "seed", out.seed) &&
         json_u64(line, "trials", out.trials) &&
         json_hex64(line, "config_hash", out.config_hash);
}

std::string campaign_scenario_line(const CampaignScenarioResult& r) {
  std::ostringstream oss;
  oss << "{\"index\":" << r.index << ",\"hash\":\"" << hex64(r.scenario_hash)
      << "\",\"label\":\"" << r.label << "\",\"outcome\":\""
      << pdn::to_string(r.outcome) << "\",\"completed\":" << (r.completed ? 1 : 0)
      << ",\"timed_out\":" << (r.timed_out ? 1 : 0)
      << ",\"attempts\":" << r.attempts
      << ",\"detected_at\":" << fmt_double_17g(r.detected_at)
      << ",\"recovered_at\":" << fmt_double_17g(r.recovered_at)
      << ",\"worst_droop\":" << fmt_double_17g(r.worst_droop)
      << ",\"final_droop\":" << fmt_double_17g(r.final_droop)
      << ",\"actions\":" << r.action_count
      << ",\"shutdowns\":" << r.shutdown_count
      << ",\"wall_seconds\":" << fmt_double_17g(r.wall_seconds) << "}";
  return oss.str();
}

namespace {

bool parse_outcome(const std::string& s, pdn::RideThroughOutcome& out) {
  if (s == "recovered") out = pdn::RideThroughOutcome::Recovered;
  else if (s == "degraded") out = pdn::RideThroughOutcome::Degraded;
  else if (s == "lost") out = pdn::RideThroughOutcome::Lost;
  else return false;
  return true;
}

}  // namespace

bool parse_campaign_scenario_line(const std::string& line,
                                  CampaignScenarioResult& r) {
  std::uint64_t index = 0, completed = 0, timed_out = 0, attempts = 0;
  std::uint64_t actions = 0, shutdowns = 0;
  std::string outcome;
  if (!json_u64(line, "index", index)) return false;
  if (!json_hex64(line, "hash", r.scenario_hash)) return false;
  if (!json_field(line, "label", r.label)) return false;
  if (!json_field(line, "outcome", outcome) ||
      !parse_outcome(outcome, r.outcome)) {
    return false;
  }
  if (!json_u64(line, "completed", completed)) return false;
  if (!json_u64(line, "timed_out", timed_out)) return false;
  if (!json_u64(line, "attempts", attempts)) return false;
  if (!json_double(line, "detected_at", r.detected_at)) return false;
  if (!json_double(line, "recovered_at", r.recovered_at)) return false;
  if (!json_double(line, "worst_droop", r.worst_droop)) return false;
  if (!json_double(line, "final_droop", r.final_droop)) return false;
  if (!json_u64(line, "actions", actions)) return false;
  if (!json_u64(line, "shutdowns", shutdowns)) return false;
  if (!json_double(line, "wall_seconds", r.wall_seconds)) return false;
  r.index = index;
  r.completed = completed != 0;
  r.timed_out = timed_out != 0;
  r.attempts = attempts;
  r.action_count = actions;
  r.shutdown_count = shutdowns;
  r.from_checkpoint = true;
  return true;
}

bool load_campaign_manifest(
    const std::string& path, std::uint64_t seed, std::size_t trials,
    std::uint64_t config_hash,
    std::map<std::size_t, CampaignScenarioResult>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line.empty()) return false;

  CampaignManifestHeader header;
  VS_REQUIRE(parse_campaign_manifest_header(line, header),
             "campaign manifest '" + path + "' has an unrecognized header");
  VS_REQUIRE(header.seed == seed && header.trials == trials &&
                 header.config_hash == config_hash,
             "campaign manifest '" + path +
                 "' belongs to a different campaign (seed/trials/config "
                 "mismatch); move it aside or change manifest_path");

  while (std::getline(in, line)) {
    CampaignScenarioResult r;
    if (!parse_campaign_scenario_line(line, r)) continue;  // torn tail
    out[r.index] = std::move(r);
  }
  return true;
}

void accumulate_campaign_result(CampaignReport& report,
                                const CampaignScenarioResult& result) {
  switch (result.outcome) {
    case pdn::RideThroughOutcome::Recovered: ++report.recovered; break;
    case pdn::RideThroughOutcome::Degraded:  ++report.degraded;  break;
    case pdn::RideThroughOutcome::Lost:      ++report.lost;      break;
  }
  if (result.timed_out) ++report.timed_out;
  if (result.completed) {
    report.worst_droop = std::max(report.worst_droop, result.worst_droop);
  }
  report.scenarios.push_back(result);
}

}  // namespace vstack::core
