// Design-space exploration -- the workflow the paper's introduction
// promises its model enables: "evaluate the benefits and costs of design
// scenarios with different number of regulators and different TSV/C4 pad
// allocations".
//
// Enumerate candidate PDN designs for a stack, evaluate each on the four
// axes the paper trades (voltage noise, EM lifetime, area overhead, system
// efficiency), and extract the Pareto-optimal set.
#pragma once

#include <string>
#include <vector>

#include "core/study.h"
#include "core/task_pool.h"

namespace vstack::core {

/// One evaluated candidate.
struct DesignPoint {
  std::string label;
  pdn::StackupConfig config;

  // Objectives (noise/area minimized; lifetime/efficiency maximized).
  double noise = 0.0;          // worst node deviation at the ref. imbalance
  double tsv_mttf = 0.0;       // normalized to the context's 2-layer V-S
  double c4_mttf = 0.0;
  double area_overhead = 0.0;  // fraction of core area (TSV KoZ + converters)
  double efficiency = 0.0;     // system efficiency at the ref. imbalance

  bool feasible = true;  // converter current limits respected
};

struct DesignSpaceOptions {
  std::size_t layers = 8;
  /// Reference workload imbalance for noise/efficiency (paper: the 65%
  /// application mean).
  double reference_imbalance = 0.65;
  std::vector<double> regular_c4_fractions{0.25, 0.5, 1.0};
  std::vector<std::size_t> stacked_converter_counts{2, 4, 6, 8};

  /// Candidate scheduling (core/task_pool.h): each design point solves its
  /// own models, so the grid fans out on the worker pool; points land in
  /// enumeration order regardless of jobs.
  ExecutionPolicy execution;
};

/// Evaluate the full candidate grid: every TSV topology for both PDN
/// styles, crossed with pad fractions (regular) or converter counts (V-S).
std::vector<DesignPoint> enumerate_designs(const StudyContext& ctx,
                                           const DesignSpaceOptions& options);

/// Indices of the Pareto-optimal points: no other feasible point is at
/// least as good on all four objectives and strictly better on one.
/// Infeasible points are never Pareto-optimal.
std::vector<std::size_t> pareto_front(const std::vector<DesignPoint>& points);

/// True if `a` dominates `b` (>= on every objective, > on at least one,
/// with noise/area compared inverted).
bool dominates(const DesignPoint& a, const DesignPoint& b);

}  // namespace vstack::core
