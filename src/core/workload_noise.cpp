#include "core/workload_noise.h"

#include "common/error.h"
#include "common/rng.h"
#include "power/workload.h"

namespace vstack::core {

NoiseDistributionResult sample_noise_distribution(
    const StudyContext& ctx, const pdn::StackupConfig& config,
    SchedulingPolicy policy, std::size_t samples, std::uint64_t seed) {
  VS_REQUIRE(samples > 0, "need at least one sample");

  pdn::PdnModel model(config, ctx.layer_floorplan);
  const auto profiles = power::parsec_profiles();
  const std::size_t layers = config.layer_count;
  const std::size_t cores = ctx.layer_floorplan.core_count();
  Rng rng(seed);

  std::vector<double> noise_samples;
  noise_samples.reserve(samples);
  NoiseDistributionResult out;

  std::vector<std::vector<double>> acts(layers,
                                        std::vector<double>(cores, 0.0));
  for (std::size_t s = 0; s < samples; ++s) {
    if (policy == SchedulingPolicy::SameAppPerStack) {
      for (std::size_t core = 0; core < cores; ++core) {
        const auto& app = profiles[rng.uniform_index(profiles.size())];
        for (std::size_t l = 0; l < layers; ++l) {
          acts[l][core] = power::sample_activity(app, rng);
        }
      }
    } else {
      for (std::size_t l = 0; l < layers; ++l) {
        for (std::size_t core = 0; core < cores; ++core) {
          const auto& app = profiles[rng.uniform_index(profiles.size())];
          acts[l][core] = power::sample_activity(app, rng);
        }
      }
    }
    const auto sol = model.solve(
        model.network().build_loads_per_core(ctx.core_model, acts));
    noise_samples.push_back(sol.max_node_deviation_fraction);
    if (!sol.converter_limit_ok) ++out.limit_violations;
  }

  out.noise = box_plot_stats(noise_samples);
  out.mean_noise = mean(noise_samples);
  out.samples = samples;
  return out;
}

}  // namespace vstack::core
