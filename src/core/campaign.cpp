#include "core/campaign.h"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>

#include "common/durable_file.h"
#include "common/error.h"
#include "pdn/config_io.h"
#include "telemetry/telemetry.h"

namespace vstack::core {

namespace {

// ---------------------------------------------------------------------------
// FNV-1a hashing (64-bit).  Doubles are hashed by bit pattern so the hash is
// exact, not formatting-dependent.

constexpr std::uint64_t kFnvOffset = 1469598103934665603ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

void fnv_bytes(std::uint64_t& h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
}

void fnv_u64(std::uint64_t& h, std::uint64_t v) { fnv_bytes(h, &v, 8); }

void fnv_double(std::uint64_t& h, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  fnv_u64(h, bits);
}

void fnv_string(std::uint64_t& h, const std::string& s) {
  fnv_u64(h, s.size());
  fnv_bytes(h, s.data(), s.size());
}

std::uint64_t scenario_hash(const PlannedScenario& scenario,
                            double fault_time) {
  std::uint64_t h = kFnvOffset;
  fnv_u64(h, scenario.index);
  fnv_string(h, scenario.label);
  fnv_double(h, fault_time);
  for (const pdn::Fault& f : scenario.faults.faults()) {
    fnv_u64(h, static_cast<std::uint64_t>(f.kind));
    fnv_u64(h, f.index);
    fnv_u64(h, f.units);
    fnv_double(h, f.severity);
  }
  return h;
}

std::uint64_t campaign_config_hash(const pdn::StackupConfig& config,
                                   const std::vector<double>& activities,
                                   const CampaignOptions& options) {
  std::uint64_t h = kFnvOffset;
  // write_stackup_config is round-trip capable, so it covers every knob of
  // the network topology.
  fnv_string(h, pdn::write_stackup_config(config));
  fnv_u64(h, activities.size());
  for (const double a : activities) fnv_double(h, a);

  const ContingencyOptions& c = options.contingency;
  fnv_u64(h, c.seed);
  fnv_u64(h, c.trials);
  fnv_u64(h, c.faults_per_trial);
  fnv_u64(h, c.converter_faults_per_trial);
  fnv_u64(h, c.leakage_faults_per_trial);
  fnv_double(h, c.leakage_resistance);
  fnv_double(h, c.degrade_factor);
  fnv_double(h, c.mission_time);

  const pdn::RideThroughOptions& rt = options.ride_through;
  fnv_double(h, rt.transient.decap_density);
  fnv_double(h, rt.transient.package_inductance);
  fnv_double(h, rt.transient.time_step);
  fnv_double(h, rt.transient.duration);
  fnv_double(h, rt.transient.control.rel_tol);
  fnv_double(h, rt.transient.control.abs_tol);
  fnv_double(h, rt.supervisor.trip_fraction);
  fnv_double(h, rt.supervisor.recovery_fraction);
  fnv_double(h, rt.supervisor.detection_latency);
  fnv_double(h, rt.supervisor.sense_interval);
  fnv_double(h, rt.supervisor.action_dwell);
  fnv_double(h, rt.supervisor.watchdog_timeout);
  fnv_double(h, rt.supervisor.frequency_boost);
  fnv_u64(h, rt.supervisor.max_actions);
  fnv_double(h, rt.bypass_resistance);
  fnv_double(h, rt.max_rebalance_boost);

  fnv_double(h, options.fault_time);
  fnv_u64(h, options.max_retries);
  fnv_double(h, options.retry_tolerance_relax);
  // options.execution is deliberately NOT hashed: scheduling does not
  // change results, so a manifest written at jobs=1 must resume at jobs=8
  // and vice versa.
  return h;
}

// ---------------------------------------------------------------------------
// Manifest JSONL (docs/fault_model.md documents the format).  Flat objects,
// known keys, no escapes needed: labels are "MC#<n>", outcomes are enum
// names.  Doubles round-trip through %.17g so resumed aggregates are
// bit-identical to a straight-through run.

std::string hex64(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return buf;
}

std::string fmt_double(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

/// Extract `"key":<value>` from a flat single-line JSON object.  Returns
/// false when the key is absent.  Values are numbers or quoted strings
/// without escapes -- all this format ever emits.
bool json_field(const std::string& line, const std::string& key,
                std::string& out) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = line.find(needle);
  if (pos == std::string::npos) return false;
  std::size_t begin = pos + needle.size();
  if (begin >= line.size()) return false;
  if (line[begin] == '"') {
    const auto end = line.find('"', begin + 1);
    if (end == std::string::npos) return false;
    out = line.substr(begin + 1, end - begin - 1);
    return true;
  }
  auto end = line.find_first_of(",}", begin);
  if (end == std::string::npos) return false;
  out = line.substr(begin, end - begin);
  return true;
}

bool json_u64(const std::string& line, const std::string& key,
              std::uint64_t& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 10);
  return end && *end == '\0';
}

bool json_hex64(const std::string& line, const std::string& key,
                std::uint64_t& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtoull(s.c_str(), &end, 16);
  return end && *end == '\0';
}

bool json_double(const std::string& line, const std::string& key,
                 double& out) {
  std::string s;
  if (!json_field(line, key, s)) return false;
  char* end = nullptr;
  out = std::strtod(s.c_str(), &end);
  return end && *end == '\0';
}

std::string header_line(std::uint64_t seed, std::size_t trials,
                        std::uint64_t config_hash) {
  std::ostringstream oss;
  oss << "{\"kind\":\"vstack-campaign\",\"version\":1,\"seed\":" << seed
      << ",\"trials\":" << trials << ",\"config_hash\":\""
      << hex64(config_hash) << "\"}";
  return oss.str();
}

std::string scenario_line(const CampaignScenarioResult& r) {
  std::ostringstream oss;
  oss << "{\"index\":" << r.index << ",\"hash\":\"" << hex64(r.scenario_hash)
      << "\",\"label\":\"" << r.label << "\",\"outcome\":\""
      << pdn::to_string(r.outcome) << "\",\"completed\":" << (r.completed ? 1 : 0)
      << ",\"timed_out\":" << (r.timed_out ? 1 : 0)
      << ",\"attempts\":" << r.attempts
      << ",\"detected_at\":" << fmt_double(r.detected_at)
      << ",\"recovered_at\":" << fmt_double(r.recovered_at)
      << ",\"worst_droop\":" << fmt_double(r.worst_droop)
      << ",\"final_droop\":" << fmt_double(r.final_droop)
      << ",\"actions\":" << r.action_count
      << ",\"shutdowns\":" << r.shutdown_count
      << ",\"wall_seconds\":" << fmt_double(r.wall_seconds) << "}";
  return oss.str();
}

bool parse_outcome(const std::string& s, pdn::RideThroughOutcome& out) {
  if (s == "recovered") out = pdn::RideThroughOutcome::Recovered;
  else if (s == "degraded") out = pdn::RideThroughOutcome::Degraded;
  else if (s == "lost") out = pdn::RideThroughOutcome::Lost;
  else return false;
  return true;
}

/// Parse one scenario line; false on any malformed field (a partly written
/// trailing line after a crash is skipped, not fatal).
bool parse_scenario_line(const std::string& line, CampaignScenarioResult& r) {
  std::uint64_t index = 0, completed = 0, timed_out = 0, attempts = 0;
  std::uint64_t actions = 0, shutdowns = 0;
  std::string outcome;
  if (!json_u64(line, "index", index)) return false;
  if (!json_hex64(line, "hash", r.scenario_hash)) return false;
  if (!json_field(line, "label", r.label)) return false;
  if (!json_field(line, "outcome", outcome) ||
      !parse_outcome(outcome, r.outcome)) {
    return false;
  }
  if (!json_u64(line, "completed", completed)) return false;
  if (!json_u64(line, "timed_out", timed_out)) return false;
  if (!json_u64(line, "attempts", attempts)) return false;
  if (!json_double(line, "detected_at", r.detected_at)) return false;
  if (!json_double(line, "recovered_at", r.recovered_at)) return false;
  if (!json_double(line, "worst_droop", r.worst_droop)) return false;
  if (!json_double(line, "final_droop", r.final_droop)) return false;
  if (!json_u64(line, "actions", actions)) return false;
  if (!json_u64(line, "shutdowns", shutdowns)) return false;
  if (!json_double(line, "wall_seconds", r.wall_seconds)) return false;
  r.index = index;
  r.completed = completed != 0;
  r.timed_out = timed_out != 0;
  r.attempts = attempts;
  r.action_count = actions;
  r.shutdown_count = shutdowns;
  r.from_checkpoint = true;
  return true;
}

/// Finished scenarios from an existing manifest, keyed by trial index.
/// Returns false when the file does not exist or is empty (fresh start);
/// throws when the header belongs to a DIFFERENT campaign.
bool load_manifest(const std::string& path, std::uint64_t seed,
                   std::size_t trials, std::uint64_t config_hash,
                   std::map<std::size_t, CampaignScenarioResult>& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  if (!std::getline(in, line) || line.empty()) return false;

  std::string kind;
  std::uint64_t got_seed = 0, got_trials = 0, got_hash = 0;
  VS_REQUIRE(json_field(line, "kind", kind) && kind == "vstack-campaign" &&
                 json_u64(line, "seed", got_seed) &&
                 json_u64(line, "trials", got_trials) &&
                 json_hex64(line, "config_hash", got_hash),
             "campaign manifest '" + path + "' has an unrecognized header");
  VS_REQUIRE(got_seed == seed && got_trials == trials &&
                 got_hash == config_hash,
             "campaign manifest '" + path +
                 "' belongs to a different campaign (seed/trials/config "
                 "mismatch); move it aside or change manifest_path");

  while (std::getline(in, line)) {
    CampaignScenarioResult r;
    if (!parse_scenario_line(line, r)) continue;  // torn tail after a crash
    out[r.index] = std::move(r);
  }
  return true;
}

std::string manifest_with_suffix(const std::string& path,
                                 const std::string& suffix) {
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace

void CampaignOptions::validate() const {
  ride_through.validate();
  VS_REQUIRE(contingency.trials > 0, "campaign needs at least one trial");
  VS_REQUIRE(std::isfinite(fault_time) && fault_time >= 0.0 &&
                 fault_time < ride_through.transient.duration,
             "fault_time must lie inside the transient horizon");
  VS_REQUIRE(std::isfinite(scenario_timeout_s) && scenario_timeout_s >= 0.0,
             "scenario_timeout_s must be >= 0");
  VS_REQUIRE(max_retries <= 8, "max_retries is bounded (<= 8)");
  VS_REQUIRE(retry_tolerance_relax >= 1.0,
             "retry_tolerance_relax must be >= 1");
}

std::string CampaignReport::summary() const {
  std::ostringstream oss;
  oss << scenarios.size() << " scenarios: " << recovered << " recovered, "
      << degraded << " degraded, " << lost << " lost";
  if (timed_out > 0) oss << " (" << timed_out << " timed out)";
  oss << "; worst droop " << worst_droop * 100.0 << "%";
  if (resumed > 0) {
    oss << "; resumed " << resumed << ", evaluated " << evaluated;
  }
  if (cancelled) {
    oss << "; CANCELLED after " << scenarios.size() << "/" << planned
        << " trials (deadline)";
  }
  return oss.str();
}

CampaignRunner::CampaignRunner(const StudyContext& ctx,
                               pdn::StackupConfig config)
    : ctx_(ctx), config_(std::move(config)) {
  config_.validate();
}

CampaignScenarioResult CampaignRunner::evaluate_scenario(
    const PlannedScenario& scenario,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  VS_SPAN("core.campaign.scenario");
  static const telemetry::Counter t_scenarios("core.campaign.scenarios");
  static const telemetry::Counter t_retries("core.campaign.retries");
  t_scenarios.add();
  // Fresh model per scenario (same idiom as ContingencyEngine::evaluate_case):
  // PdnModel keeps a warm-start cache across solves, so sharing one model
  // would make each scenario's DC init depend on evaluation ORDER -- fatal
  // for bit-identical checkpoint/resume.
  const pdn::PdnModel model(config_, ctx_.layer_floorplan);
  CampaignScenarioResult result;
  result.index = scenario.index;
  result.label = scenario.label;
  result.scenario_hash = scenario_hash(scenario, options.fault_time);

  pdn::RideThroughOptions rt = options.ride_through;
  rt.transient.fault_events.clear();
  pdn::TimedFaultEvent ev;
  ev.time = options.fault_time;
  ev.faults = scenario.faults;
  ev.label = scenario.label;
  rt.transient.fault_events.push_back(std::move(ev));
  if (options.scenario_timeout_s > 0.0) {
    rt.transient.control.wall_clock_budget_s = options.scenario_timeout_s;
  }
  // Cancellation reaches INSIDE a scenario: the step controller aborts at
  // the next step boundary and the linear solver at the next iteration
  // poll, so a stuck post-fault solve cannot outlive the deadline.
  rt.transient.control.deadline = options.execution.deadline;
  rt.transient.iterative.deadline = options.execution.deadline;

  pdn::RideThroughResult run;
  std::size_t attempt = 0;
  for (;;) {
    ++attempt;
    run = pdn::simulate_ride_through(model, ctx_.core_model, layer_activities,
                                     rt);
    result.wall_seconds += run.report.transient.wall_seconds;
    if (run.report.ok() || attempt > options.max_retries) break;
    // A deadline truncation is not a numerical failure; retrying with
    // relaxed tolerances would just burn the drain window.
    if (options.execution.deadline.expired()) break;
    // Bounded retry: relax the LTE tolerances and go again.  The wall-clock
    // budget is per attempt, so a timeout cannot compound past
    // (1 + max_retries) * scenario_timeout_s.
    rt.transient.control.rel_tol *= options.retry_tolerance_relax;
    rt.transient.control.abs_tol *= options.retry_tolerance_relax;
  }

  if (attempt > 1) t_retries.add(static_cast<double>(attempt - 1));
  // An incomplete run with the deadline expired is a truncation artifact,
  // not a verdict; a concurrent genuine failure is indistinguishable here,
  // and dropping it is still sound -- the trial just re-runs on resume.
  result.deadline_truncated =
      !run.report.ok() && options.execution.deadline.expired();
  result.attempts = attempt;
  result.completed = run.report.ok();
  result.timed_out =
      run.report.transient.status == sim::TransientStatus::BudgetExhausted;
  result.outcome = run.report.outcome;
  result.detected_at = run.report.detected_at;
  result.recovered_at = run.report.recovered_at;
  result.worst_droop = run.report.worst_droop;
  result.final_droop = run.report.final_droop;
  result.action_count = run.report.actions.size();
  result.shutdown_count = run.report.shutdown_layers.size();
  return result;
}

CampaignReport CampaignRunner::run(
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  VS_SPAN("core.campaign.run");
  options.validate();

  const ContingencyEngine engine(ctx_, config_);
  const auto plan =
      engine.plan_monte_carlo(layer_activities, options.contingency);

  CampaignReport report;
  report.config_hash =
      campaign_config_hash(config_, layer_activities, options);

  std::map<std::size_t, CampaignScenarioResult> finished;
  DurableAppender manifest;
  if (!options.manifest_path.empty()) {
    const bool resumed = load_manifest(
        options.manifest_path, options.contingency.seed,
        options.contingency.trials, report.config_hash, finished);
    if (!resumed) {
      // Publish the header atomically (temp + rename): a torn header is the
      // one torn line resume cannot tolerate -- load_manifest refuses the
      // whole manifest -- so the file must never exist with half of one.
      atomic_write_file(options.manifest_path,
                        header_line(options.contingency.seed,
                                    options.contingency.trials,
                                    report.config_hash) +
                            "\n");
    }
    manifest.open(options.manifest_path);
  }

  // Evaluate on the worker pool, commit in trial-index order.  Workers
  // only fill their own results slot (restored scenarios are copied, the
  // rest simulated on a fresh PdnModel); everything order-sensitive --
  // manifest appends, aggregate accumulation, mismatch checks -- happens
  // in the commit callback on this thread, serialized by the pool.
  std::vector<CampaignScenarioResult> results(plan.size());
  report.planned = plan.size();
  bool truncated = false;
  const TaskPool pool(options.execution);
  pool.run_ordered(
      plan.size(),
      [&](std::size_t i) {
        const auto it = finished.find(plan[i].index);
        if (it != finished.end()) {
          results[i] = it->second;  // hash-verified at commit
        } else {
          results[i] = evaluate_scenario(plan[i], layer_activities, options);
        }
      },
      [&](std::size_t i) {
        CampaignScenarioResult& result = results[i];
        // Once one trial is dropped, everything after it drops too:
        // committing trial k+1 without k would break the contiguous-prefix
        // contract the manifest (and resume) depend on.
        if (truncated || result.deadline_truncated) {
          truncated = true;
          return;
        }
        const PlannedScenario& scenario = plan[i];
        const std::uint64_t expect =
            scenario_hash(scenario, options.fault_time);
        if (result.from_checkpoint) {
          VS_REQUIRE(result.scenario_hash == expect,
                     "campaign manifest entry for " + scenario.label +
                         " does not match the planned scenario (corrupt "
                         "manifest?)");
          ++report.resumed;
        } else {
          ++report.evaluated;
          if (manifest.is_open()) {
            // One write(2) + fsync per committed scenario: kill -9 loses at
            // most the in-flight line (which the read side skips), and the
            // manifest stays a contiguous trial prefix even when workers
            // finish out of order.
            manifest.append_line(scenario_line(result));
          }
        }

        switch (result.outcome) {
          case pdn::RideThroughOutcome::Recovered: ++report.recovered; break;
          case pdn::RideThroughOutcome::Degraded:  ++report.degraded;  break;
          case pdn::RideThroughOutcome::Lost:      ++report.lost;      break;
        }
        if (result.timed_out) ++report.timed_out;
        if (result.completed) {
          report.worst_droop =
              std::max(report.worst_droop, result.worst_droop);
        }
        report.scenarios.push_back(std::move(result));
      });
  report.cancelled = report.scenarios.size() < plan.size();
  return report;
}

std::string SurvivabilityTable::format() const {
  std::ostringstream oss;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %9s %9s %6s %9s %12s\n",
                "topology", "recovered", "degraded", "lost", "timed-out",
                "worst-droop");
  oss << buf;
  for (const SurvivabilityRow& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-12s %9zu %9zu %6zu %9zu %11.2f%%\n",
                  row.label.c_str(), row.recovered, row.degraded, row.lost,
                  row.timed_out, row.worst_droop * 100.0);
    oss << buf;
  }
  return oss.str();
}

SurvivabilityTable compare_survivability(
    const StudyContext& ctx, const pdn::StackupConfig& stacked,
    const pdn::StackupConfig& regular,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) {
  SurvivabilityTable table;
  const struct {
    const char* label;
    const pdn::StackupConfig* config;
    const char* suffix;
  } entries[] = {{"stacked", &stacked, "-stacked"},
                 {"regular", &regular, "-regular"}};
  for (const auto& entry : entries) {
    CampaignOptions per_topology = options;
    if (!options.manifest_path.empty()) {
      per_topology.manifest_path =
          manifest_with_suffix(options.manifest_path, entry.suffix);
    }
    const CampaignRunner runner(ctx, *entry.config);
    const CampaignReport report =
        runner.run(layer_activities, per_topology);
    SurvivabilityRow row;
    row.label = entry.label;
    row.recovered = report.recovered;
    row.degraded = report.degraded;
    row.lost = report.lost;
    row.timed_out = report.timed_out;
    row.worst_droop = report.worst_droop;
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace vstack::core
