#include "core/campaign.h"

#include <cmath>
#include <map>
#include <sstream>

#include "common/durable_file.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "core/campaign_manifest.h"
#include "telemetry/telemetry.h"

namespace vstack::core {

namespace {

std::string manifest_with_suffix(const std::string& path,
                                 const std::string& suffix) {
  const auto dot = path.rfind('.');
  const auto slash = path.rfind('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return path + suffix;
  }
  return path.substr(0, dot) + suffix + path.substr(dot);
}

}  // namespace

void CampaignOptions::validate() const {
  ride_through.validate();
  VS_REQUIRE(contingency.trials > 0, "campaign needs at least one trial");
  VS_REQUIRE(std::isfinite(fault_time) && fault_time >= 0.0 &&
                 fault_time < ride_through.transient.duration,
             "fault_time must lie inside the transient horizon");
  VS_REQUIRE(std::isfinite(scenario_timeout_s) && scenario_timeout_s >= 0.0,
             "scenario_timeout_s must be >= 0");
  VS_REQUIRE(max_retries <= 8, "max_retries is bounded (<= 8)");
  VS_REQUIRE(retry_tolerance_relax >= 1.0,
             "retry_tolerance_relax must be >= 1");
}

std::string CampaignReport::summary() const {
  std::ostringstream oss;
  oss << scenarios.size() << " scenarios: " << recovered << " recovered, "
      << degraded << " degraded, " << lost << " lost";
  if (timed_out > 0) oss << " (" << timed_out << " timed out)";
  oss << "; worst droop " << worst_droop * 100.0 << "%";
  if (resumed > 0) {
    oss << "; resumed " << resumed << ", evaluated " << evaluated;
  }
  if (cancelled) {
    oss << "; CANCELLED after " << scenarios.size() << "/" << planned
        << " trials (deadline)";
  }
  return oss.str();
}

CampaignRunner::CampaignRunner(const StudyContext& ctx,
                               pdn::StackupConfig config)
    : ctx_(ctx), config_(std::move(config)) {
  config_.validate();
}

CampaignScenarioResult CampaignRunner::evaluate_scenario(
    const PlannedScenario& scenario,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  VS_SPAN("core.campaign.scenario");
  static const telemetry::Counter t_scenarios("core.campaign.scenarios");
  static const telemetry::Counter t_retries("core.campaign.retries");
  t_scenarios.add();
  // Fresh model per scenario (same idiom as ContingencyEngine::evaluate_case):
  // PdnModel keeps a warm-start cache across solves, so sharing one model
  // would make each scenario's DC init depend on evaluation ORDER -- fatal
  // for bit-identical checkpoint/resume.
  const pdn::PdnModel model(config_, ctx_.layer_floorplan);
  CampaignScenarioResult result;
  result.index = scenario.index;
  result.label = scenario.label;
  result.scenario_hash = campaign_scenario_hash(scenario, options.fault_time);

  pdn::RideThroughOptions rt = options.ride_through;
  rt.transient.fault_events.clear();
  pdn::TimedFaultEvent ev;
  ev.time = options.fault_time;
  ev.faults = scenario.faults;
  ev.label = scenario.label;
  rt.transient.fault_events.push_back(std::move(ev));
  if (options.scenario_timeout_s > 0.0) {
    rt.transient.control.wall_clock_budget_s = options.scenario_timeout_s;
  }
  // Cancellation reaches INSIDE a scenario: the step controller aborts at
  // the next step boundary and the linear solver at the next iteration
  // poll, so a stuck post-fault solve cannot outlive the deadline.
  rt.transient.control.deadline = options.execution.deadline;
  rt.transient.iterative.deadline = options.execution.deadline;

  pdn::RideThroughResult run;
  std::size_t attempt = 0;
  for (;;) {
    ++attempt;
    run = pdn::simulate_ride_through(model, ctx_.core_model, layer_activities,
                                     rt);
    result.wall_seconds += run.report.transient.wall_seconds;
    if (run.report.ok() || attempt > options.max_retries) break;
    // A deadline truncation is not a numerical failure; retrying with
    // relaxed tolerances would just burn the drain window.
    if (options.execution.deadline.expired()) break;
    // Bounded retry: relax the LTE tolerances and go again.  The wall-clock
    // budget is per attempt, so a timeout cannot compound past
    // (1 + max_retries) * scenario_timeout_s.
    rt.transient.control.rel_tol *= options.retry_tolerance_relax;
    rt.transient.control.abs_tol *= options.retry_tolerance_relax;
  }

  if (attempt > 1) t_retries.add(static_cast<double>(attempt - 1));
  // An incomplete run with the deadline expired is a truncation artifact,
  // not a verdict; a concurrent genuine failure is indistinguishable here,
  // and dropping it is still sound -- the trial just re-runs on resume.
  result.deadline_truncated =
      !run.report.ok() && options.execution.deadline.expired();
  result.attempts = attempt;
  result.completed = run.report.ok();
  result.timed_out =
      run.report.transient.status == sim::TransientStatus::BudgetExhausted;
  result.outcome = run.report.outcome;
  result.detected_at = run.report.detected_at;
  result.recovered_at = run.report.recovered_at;
  result.worst_droop = run.report.worst_droop;
  result.final_droop = run.report.final_droop;
  result.action_count = run.report.actions.size();
  result.shutdown_count = run.report.shutdown_layers.size();
  return result;
}

std::vector<PlannedScenario> CampaignRunner::plan(
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  options.validate();
  const ContingencyEngine engine(ctx_, config_);
  return engine.plan_monte_carlo(layer_activities, options.contingency);
}

CampaignScenarioResult CampaignRunner::run_scenario(
    const PlannedScenario& scenario,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  return evaluate_scenario(scenario, layer_activities, options);
}

CampaignReport CampaignRunner::run(
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) const {
  VS_SPAN("core.campaign.run");
  options.validate();

  const ContingencyEngine engine(ctx_, config_);
  const auto plan =
      engine.plan_monte_carlo(layer_activities, options.contingency);

  CampaignReport report;
  report.config_hash =
      campaign_config_hash(config_, layer_activities, options);

  std::map<std::size_t, CampaignScenarioResult> finished;
  DurableAppender manifest;
  if (!options.manifest_path.empty()) {
    const bool resumed = load_campaign_manifest(
        options.manifest_path, options.contingency.seed,
        options.contingency.trials, report.config_hash, finished);
    if (!resumed) {
      // Publish the header atomically (temp + rename): a torn header is the
      // one torn line resume cannot tolerate -- load_campaign_manifest
      // refuses the whole manifest -- so it must never exist half-written.
      atomic_write_file(options.manifest_path,
                        campaign_manifest_header(options.contingency.seed,
                                                 options.contingency.trials,
                                                 report.config_hash) +
                            "\n");
      // Crash here: a durable header with zero scenario lines -- the next
      // run must resume with 0 finished trials, not refuse the manifest.
      VS_FAILPOINT("manifest.header.after_write");
    }
    // repair_torn_tail: a kill -9 mid-append leaves half a line; without the
    // repair the first resumed append would concatenate onto the fragment,
    // producing garbage AND losing that scenario's record.
    manifest.open(options.manifest_path, /*repair_torn_tail=*/true);
  }

  // Evaluate on the worker pool, commit in trial-index order.  Workers
  // only fill their own results slot (restored scenarios are copied, the
  // rest simulated on a fresh PdnModel); everything order-sensitive --
  // manifest appends, aggregate accumulation, mismatch checks -- happens
  // in the commit callback on this thread, serialized by the pool.
  std::vector<CampaignScenarioResult> results(plan.size());
  report.planned = plan.size();
  bool truncated = false;
  const TaskPool pool(options.execution);
  pool.run_ordered(
      plan.size(),
      [&](std::size_t i) {
        const auto it = finished.find(plan[i].index);
        if (it != finished.end()) {
          results[i] = it->second;  // hash-verified at commit
        } else {
          results[i] = evaluate_scenario(plan[i], layer_activities, options);
        }
      },
      [&](std::size_t i) {
        CampaignScenarioResult& result = results[i];
        // Once one trial is dropped, everything after it drops too:
        // committing trial k+1 without k would break the contiguous-prefix
        // contract the manifest (and resume) depend on.
        if (truncated || result.deadline_truncated) {
          truncated = true;
          return;
        }
        const PlannedScenario& scenario = plan[i];
        const std::uint64_t expect =
            campaign_scenario_hash(scenario, options.fault_time);
        if (result.from_checkpoint) {
          VS_REQUIRE(result.scenario_hash == expect,
                     "campaign manifest entry for " + scenario.label +
                         " does not match the planned scenario (corrupt "
                         "manifest?)");
          ++report.resumed;
        } else {
          ++report.evaluated;
          if (manifest.is_open()) {
            // One write(2) + fsync per committed scenario: kill -9 loses at
            // most the in-flight line (which the read side skips), and the
            // manifest stays a contiguous trial prefix even when workers
            // finish out of order.
            manifest.append_line(campaign_scenario_line(result));
            // Crash here: this trial is committed, its successors are not
            // -- resume must restore exactly the committed prefix.
            VS_FAILPOINT("manifest.commit.after_append");
          }
        }

        // Shared with the shard merge path: fleet aggregates must fold
        // results exactly the way the serial commit path does.
        accumulate_campaign_result(report, result);
      });
  report.cancelled = report.scenarios.size() < plan.size();
  return report;
}

std::string SurvivabilityTable::format() const {
  std::ostringstream oss;
  char buf[160];
  std::snprintf(buf, sizeof(buf), "%-12s %9s %9s %6s %9s %12s\n",
                "topology", "recovered", "degraded", "lost", "timed-out",
                "worst-droop");
  oss << buf;
  for (const SurvivabilityRow& row : rows) {
    std::snprintf(buf, sizeof(buf), "%-12s %9zu %9zu %6zu %9zu %11.2f%%\n",
                  row.label.c_str(), row.recovered, row.degraded, row.lost,
                  row.timed_out, row.worst_droop * 100.0);
    oss << buf;
  }
  return oss.str();
}

SurvivabilityTable compare_survivability(
    const StudyContext& ctx, const pdn::StackupConfig& stacked,
    const pdn::StackupConfig& regular,
    const std::vector<double>& layer_activities,
    const CampaignOptions& options) {
  SurvivabilityTable table;
  const struct {
    const char* label;
    const pdn::StackupConfig* config;
    const char* suffix;
  } entries[] = {{"stacked", &stacked, "-stacked"},
                 {"regular", &regular, "-regular"}};
  for (const auto& entry : entries) {
    CampaignOptions per_topology = options;
    if (!options.manifest_path.empty()) {
      per_topology.manifest_path =
          manifest_with_suffix(options.manifest_path, entry.suffix);
    }
    const CampaignRunner runner(ctx, *entry.config);
    const CampaignReport report =
        runner.run(layer_activities, per_topology);
    SurvivabilityRow row;
    row.label = entry.label;
    row.recovered = report.recovered;
    row.degraded = report.degraded;
    row.lost = report.lost;
    row.timed_out = report.timed_out;
    row.worst_droop = report.worst_droop;
    table.rows.push_back(std::move(row));
  }
  return table;
}

}  // namespace vstack::core
