#include "core/contingency.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace vstack::core {

namespace {

bool is_em_candidate(pdn::ConductorKind kind) {
  switch (kind) {
    case pdn::ConductorKind::C4Vdd:
    case pdn::ConductorKind::C4Gnd:
    case pdn::ConductorKind::TsvVdd:
    case pdn::ConductorKind::TsvGnd:
    case pdn::ConductorKind::RecyclingTsv:
    case pdn::ConductorKind::ThroughVia:
      return true;
    case pdn::ConductorKind::GridStrap:
    case pdn::ConductorKind::PackageVdd:
    case pdn::ConductorKind::PackageGnd:
    case pdn::ConductorKind::Leakage:
      return false;
  }
  return false;
}

bool is_tsv_kind(pdn::ConductorKind kind) {
  return kind == pdn::ConductorKind::TsvVdd ||
         kind == pdn::ConductorKind::TsvGnd ||
         kind == pdn::ConductorKind::RecyclingTsv;
}

double node_voltage(const pdn::PdnSolution& sol, std::size_t node,
                    double supply_voltage) {
  if (node == pdn::kFixedSupply) return supply_voltage;
  if (node == pdn::kFixedGround) return 0.0;
  return sol.node_voltages[node];
}

double sum(const std::vector<double>& v) {
  double s = 0.0;
  for (const double x : v) s += x;
  return s;
}

}  // namespace

ContingencyEngine::ContingencyEngine(const StudyContext& ctx,
                                     pdn::StackupConfig config)
    : ctx_(ctx), config_(std::move(config)) {
  config_.validate();
}

std::vector<EmRiskEntry> ContingencyEngine::rank_by_em_risk(
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options) const {
  const pdn::PdnModel model(config_, ctx_.layer_floorplan);
  const auto solution =
      model.solve_activities(ctx_.core_model, layer_activities, options.solve);
  VS_REQUIRE(solution.solve_ok,
             "baseline solve failed: " + solution.diagnostic);

  // Ranking horizon: the baseline TSV array's expected damage-free lifetime
  // unless the caller pinned a mission time.
  double horizon = options.mission_time;
  if (horizon <= 0.0) {
    horizon = em::array_mttf(solution.tsv_currents, ctx_.black,
                             ctx_.mttf_options);
    if (!std::isfinite(horizon)) horizon = 0.0;  // unstressed: rank by current
  }

  const auto& net = model.network();
  std::vector<EmRiskEntry> ranking;
  for (std::size_t i = 0; i < net.conductors().size(); ++i) {
    const auto& group = net.conductors()[i];
    if (group.count == 0 || !is_em_candidate(group.kind)) continue;
    const double per_unit =
        std::abs(node_voltage(solution, group.node_a, solution.supply_voltage) -
                 node_voltage(solution, group.node_b,
                              solution.supply_voltage)) /
        group.unit_resistance;
    // Current crowding: the same model the EM arrays use (solver.cpp).
    double hot = per_unit;
    if (is_tsv_kind(group.kind)) {
      const std::size_t sharing =
          std::min(group.count, config_.params.tsv_crowding_share);
      hot = per_unit * static_cast<double>(group.count) /
            static_cast<double>(sharing);
    }
    EmRiskEntry entry;
    entry.conductor_index = i;
    entry.kind = group.kind;
    entry.count = group.count;
    entry.unit_current = hot;
    entry.failure_probability =
        horizon > 0.0 ? em::lognormal_failure_cdf(
                            horizon, ctx_.black.median_ttf(hot),
                            ctx_.mttf_options.sigma)
                      : 0.0;
    ranking.push_back(entry);
  }

  std::sort(ranking.begin(), ranking.end(),
            [](const EmRiskEntry& a, const EmRiskEntry& b) {
              if (a.failure_probability != b.failure_probability) {
                return a.failure_probability > b.failure_probability;
              }
              if (a.unit_current != b.unit_current) {
                return a.unit_current > b.unit_current;
              }
              return a.conductor_index < b.conductor_index;
            });
  return ranking;
}

ContingencyCase ContingencyEngine::evaluate_case(
    const pdn::FaultSet& faults,
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options, const std::string& label) const {
  VS_SPAN("core.contingency.case");
  static const telemetry::Counter t_cases("core.contingency.cases");
  t_cases.add();
  pdn::PdnModel model(config_, ctx_.layer_floorplan);
  ContingencyCase result;
  result.faults = faults;
  result.label =
      label.empty() ? faults.describe(model.network()) : label;

  faults.apply_to(model.network_mutable());
  // The deadline rides the solve options so an ill-conditioned post-fault
  // system aborts at the next Krylov iteration poll instead of stalling the
  // whole sweep.
  pdn::PdnSolveOptions solve = options.solve;
  solve.iterative.deadline = options.execution.deadline;
  const auto sol =
      model.solve_activities(ctx_.core_model, layer_activities, solve);

  result.solved = sol.solve_ok;
  // A concurrent genuine failure is indistinguishable from a timeout here;
  // dropping it is still sound -- the case re-runs on the next submission.
  result.deadline_truncated =
      !sol.solve_ok && options.execution.deadline.expired();
  result.solve_attempts = std::max<std::size_t>(1, sol.report.attempts.size());
  result.floating_islands = sol.floating_island_count;
  result.diagnostic = sol.diagnostic;

  if (!sol.solve_ok) {
    result.outcome = CaseOutcome::Infeasible;
    return result;
  }

  result.max_node_deviation_fraction = sol.max_node_deviation_fraction;
  result.max_ir_drop_fraction = sol.max_ir_drop_fraction;
  result.max_converter_current = sol.max_converter_current;
  result.converter_limit_ok = sol.converter_limit_ok;
  result.supply_current = sol.supply_current;
  result.tsv_current_sum = sum(sol.tsv_currents);

  if (sol.floating_load_current > 1e-12) {
    result.outcome = CaseOutcome::Infeasible;  // stranded load current
  } else if (!sol.converter_limit_ok ||
             sol.max_node_deviation_fraction >
                 options.noise_budget_fraction) {
    result.outcome = CaseOutcome::Degraded;
  } else {
    result.outcome = CaseOutcome::Survivable;
  }
  return result;
}

ContingencyReport ContingencyEngine::make_baseline_report(
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options) const {
  const pdn::PdnModel model(config_, ctx_.layer_floorplan);
  const auto sol =
      model.solve_activities(ctx_.core_model, layer_activities, options.solve);
  VS_REQUIRE(sol.solve_ok, "baseline solve failed: " + sol.diagnostic);

  ContingencyReport report;
  report.base_max_node_deviation_fraction = sol.max_node_deviation_fraction;
  report.base_max_ir_drop_fraction = sol.max_ir_drop_fraction;
  report.base_max_converter_current = sol.max_converter_current;
  report.base_tsv_current_sum = sum(sol.tsv_currents);
  report.base_supply_current = sol.supply_current;
  return report;
}

void ContingencyEngine::classify_and_append(ContingencyReport& report,
                                            ContingencyCase one) const {
  switch (one.outcome) {
    case CaseOutcome::Survivable: ++report.survivable; break;
    case CaseOutcome::Degraded:   ++report.degraded;   break;
    case CaseOutcome::Infeasible: ++report.infeasible; break;
  }
  if (one.solved) {
    report.worst_post_fault_deviation = std::max(
        report.worst_post_fault_deviation, one.max_node_deviation_fraction);
  }
  report.cases.push_back(std::move(one));
}

ContingencyReport ContingencyEngine::run_n_minus_1(
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options) const {
  VS_SPAN("core.contingency.n_minus_1");
  ContingencyReport report =
      make_baseline_report(layer_activities, options);
  report.ranking = rank_by_em_risk(layer_activities, options);

  const std::size_t cases =
      options.exhaustive ? report.ranking.size()
                         : std::min(options.top_k, report.ranking.size());
  // Each case solves its own freshly built, freshly damaged model, so the
  // sweep fans out on the worker pool; the ordered commit keeps the report
  // identical to a serial sweep.
  std::vector<ContingencyCase> evaluated(cases);
  report.planned = cases;
  bool truncated = false;
  const TaskPool pool(options.execution);
  pool.run_ordered(
      cases,
      [&](std::size_t k) {
        const EmRiskEntry& entry = report.ranking[k];
        pdn::FaultSet faults;
        faults.open_conductor(entry.conductor_index);
        std::ostringstream label;
        label << "N-1 open[" << pdn::conductor_kind_name(entry.kind) << "#"
              << entry.conductor_index << " x" << entry.count << "]";
        evaluated[k] =
            evaluate_case(faults, layer_activities, options, label.str());
      },
      [&](std::size_t k) {
        // Drop deadline-truncated cases and everything after them: the
        // committed cases stay a contiguous prefix of real verdicts.
        if (truncated || evaluated[k].deadline_truncated) {
          truncated = true;
          return;
        }
        classify_and_append(report, std::move(evaluated[k]));
      });
  report.cancelled = report.cases.size() < cases;
  return report;
}

namespace {

// The Monte Carlo sampler, shared verbatim by run_monte_carlo and
// plan_monte_carlo.  ALL RNG consumption lives here -- evaluation draws
// nothing -- so planning the whole campaign up front yields the same fault
// sets as the historical sample-then-evaluate interleaving.
std::vector<PlannedScenario> sample_trials(
    const std::vector<EmRiskEntry>& ranking, std::size_t converter_count,
    std::size_t grid_nodes, const ContingencyOptions& options) {
  // Sampling weights: failure probability with a floor so every candidate
  // stays reachable even when the EM model calls it unstressed.
  std::vector<double> cumulative(ranking.size());
  double total = 0.0;
  for (std::size_t i = 0; i < ranking.size(); ++i) {
    total += ranking[i].failure_probability + 1e-9;
    cumulative[i] = total;
  }

  Rng rng(options.seed);
  std::vector<PlannedScenario> plan;
  plan.reserve(options.trials);
  for (std::size_t trial = 0; trial < options.trials; ++trial) {
    pdn::FaultSet faults;
    std::vector<std::size_t> chosen;
    std::size_t guard = 0;
    while (chosen.size() <
               std::min(options.faults_per_trial, ranking.size()) &&
           ++guard < 64 * options.faults_per_trial) {
      const double u = rng.uniform(0.0, total);
      const std::size_t pick = static_cast<std::size_t>(
          std::lower_bound(cumulative.begin(), cumulative.end(), u) -
          cumulative.begin());
      if (std::find(chosen.begin(), chosen.end(), pick) != chosen.end()) {
        continue;
      }
      chosen.push_back(pick);
      const EmRiskEntry& entry = ranking[pick];
      if (rng.uniform() < 0.5) {
        faults.open_conductor(entry.conductor_index);
      } else {
        faults.degrade_conductor(entry.conductor_index,
                                 options.degrade_factor);
      }
    }
    for (std::size_t c = 0;
         c < options.converter_faults_per_trial && converter_count > 0; ++c) {
      faults.converter_stuck_off(rng.uniform_index(converter_count));
    }
    for (std::size_t c = 0; c < options.leakage_faults_per_trial; ++c) {
      faults.leakage_to_ground(rng.uniform_index(grid_nodes),
                               options.leakage_resistance);
    }

    std::ostringstream label;
    label << "MC#" << trial;
    plan.push_back(PlannedScenario{trial, label.str(), std::move(faults)});
  }
  return plan;
}

}  // namespace

std::vector<PlannedScenario> ContingencyEngine::plan_monte_carlo(
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options) const {
  const auto ranking = rank_by_em_risk(layer_activities, options);
  VS_REQUIRE(!ranking.empty(), "no fault candidates in this network");
  const pdn::PdnModel probe(config_, ctx_.layer_floorplan);
  return sample_trials(ranking, probe.network().converters().size(),
                       probe.network().node_count(), options);
}

ContingencyReport ContingencyEngine::run_monte_carlo(
    const std::vector<double>& layer_activities,
    const ContingencyOptions& options) const {
  VS_SPAN("core.contingency.monte_carlo");
  ContingencyReport report =
      make_baseline_report(layer_activities, options);
  report.ranking = rank_by_em_risk(layer_activities, options);
  VS_REQUIRE(!report.ranking.empty(), "no fault candidates in this network");

  const pdn::PdnModel probe(config_, ctx_.layer_floorplan);
  const auto plan =
      sample_trials(report.ranking, probe.network().converters().size(),
                    probe.network().node_count(), options);
  // All RNG consumption happened in sample_trials; evaluation is pure, so
  // trials fan out on the worker pool and commit in trial order.
  std::vector<ContingencyCase> evaluated(plan.size());
  report.planned = plan.size();
  bool truncated = false;
  const TaskPool pool(options.execution);
  pool.run_ordered(
      plan.size(),
      [&](std::size_t i) {
        evaluated[i] = evaluate_case(plan[i].faults, layer_activities,
                                     options, plan[i].label);
      },
      [&](std::size_t i) {
        if (truncated || evaluated[i].deadline_truncated) {
          truncated = true;
          return;
        }
        classify_and_append(report, std::move(evaluated[i]));
      });
  report.cancelled = report.cases.size() < plan.size();
  return report;
}

}  // namespace vstack::core
