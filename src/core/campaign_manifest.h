// The campaign checkpoint-manifest format, factored out of the runner so
// every producer and consumer shares one serialization:
//
//   * core::CampaignRunner -- the single-process writer/resumer,
//   * shard workers (src/shard) -- per-shard manifests with the SAME line
//     format, so a deterministic merge can reproduce the serial manifest
//     byte for byte,
//   * vstack_cli merge / the shard supervisor -- fold shard manifests back
//     into one manifest + aggregate report.
//
// Format (JSONL; docs/fault_model.md documents it for users): one header
// line identifying the campaign (seed, trial count, FNV-1a config hash)
// followed by one flat JSON object per finished scenario.  Flat objects,
// known keys, no escapes needed; doubles round-trip through %.17g so
// restored aggregates are bit-identical to a straight-through run.  A
// partly written (torn) trailing line fails parsing and is skipped, never
// fatal -- except the header, which producers therefore publish atomically.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/campaign.h"

namespace vstack::core {

// ---------------------------------------------------------------------------
// FNV-1a (64-bit) running hash.  Doubles are hashed by bit pattern so the
// hash is exact, not formatting-dependent.  Shared by the campaign config /
// scenario hashes and the shard plan hash.

struct Fnv1a {
  std::uint64_t h = 1469598103934665603ull;

  void bytes(const void* data, std::size_t n);
  void u64(std::uint64_t v);
  void f64(double v);
  /// Length-prefixed (u64 size, then the bytes).
  void str(const std::string& s);
};

/// FNV-1a over the fault recipe + strike time: the per-trial identity that
/// resume and shard-merge dedup key on (alongside the trial index).
std::uint64_t campaign_scenario_hash(const PlannedScenario& scenario,
                                     double fault_time);

/// FNV-1a over everything that changes results: the full stackup config
/// (via its round-trip serialization), the activity vector, and every
/// physics/retry knob of the options.  Scheduling (options.execution) is
/// deliberately excluded -- a manifest written at jobs=1 must resume at
/// jobs=8, and a shard fleet must merge into the serial bytes.
std::uint64_t campaign_config_hash(const pdn::StackupConfig& config,
                                   const std::vector<double>& activities,
                                   const CampaignOptions& options);

// ---------------------------------------------------------------------------
// Flat single-line JSON helpers.  Values are numbers or quoted strings
// without escapes -- all these formats ever emit.  Reused by the service
// response protocol and the shard plan/lease/quarantine records.

/// Extract `"key":<value>`; false when the key is absent or malformed.
bool json_field(const std::string& line, const std::string& key,
                std::string& out);
bool json_u64(const std::string& line, const std::string& key,
              std::uint64_t& out);
bool json_hex64(const std::string& line, const std::string& key,
                std::uint64_t& out);
bool json_double(const std::string& line, const std::string& key,
                 double& out);

/// 16-digit zero-padded lowercase hex (config/scenario hash rendering).
std::string hex64(std::uint64_t v);

/// %.17g -- doubles survive a serialize/parse round trip bit-exactly.
std::string fmt_double_17g(double v);

// ---------------------------------------------------------------------------
// Manifest lines.

/// {"kind":"vstack-campaign","version":1,"seed":...,"trials":...,
///  "config_hash":"..."}
std::string campaign_manifest_header(std::uint64_t seed, std::size_t trials,
                                     std::uint64_t config_hash);

struct CampaignManifestHeader {
  std::uint64_t seed = 0;
  std::uint64_t trials = 0;
  std::uint64_t config_hash = 0;
};

/// Parse a header line; false when it is not a vstack-campaign header.
bool parse_campaign_manifest_header(const std::string& line,
                                    CampaignManifestHeader& out);

/// One finished scenario as a manifest line.
std::string campaign_scenario_line(const CampaignScenarioResult& r);

/// Parse one scenario line; false on any malformed field (a partly written
/// trailing line after a crash is skipped by callers, not fatal).  Sets
/// from_checkpoint on the result.
bool parse_campaign_scenario_line(const std::string& line,
                                  CampaignScenarioResult& r);

/// Finished scenarios from an existing manifest, keyed by trial index.
/// Returns false when the file does not exist or is empty (fresh start);
/// throws when the header belongs to a DIFFERENT campaign (seed/trials/
/// config mismatch) or is unrecognizable.
bool load_campaign_manifest(const std::string& path, std::uint64_t seed,
                            std::size_t trials, std::uint64_t config_hash,
                            std::map<std::size_t, CampaignScenarioResult>& out);

/// Fold one restored/committed scenario into the report aggregates exactly
/// the way CampaignRunner::run's commit path does -- merge uses this so
/// fleet aggregates equal the serial run's.
void accumulate_campaign_result(CampaignReport& report,
                                const CampaignScenarioResult& result);

}  // namespace vstack::core
