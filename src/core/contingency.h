// Contingency analysis: close the reliability loop (paper Sec. 3.3).
//
// The EM study predicts which C4 pads and TSVs wear out first; this engine
// actually REMOVES them from the network and reports whether charge
// recycling still balances -- post-fault IR drop, converter current-limit
// violations, redistributed per-conductor currents, and floating-island
// infeasibility.  Two campaign styles:
//
//   * Deterministic N-1: open each candidate conductor group in turn (the
//     top-k by EM failure probability, or every candidate).
//   * Seeded Monte Carlo N-k: each trial samples k conductor faults weighted
//     by failure probability (half opens, half resistance degradations),
//     optionally plus stuck-off converter phases and leakage shorts.
//
// Damaged networks may be near-singular; all solves run through the
// la::Solver degradation ladder and NEVER throw -- every case ends as
// Survivable, Degraded, or Infeasible with a structured diagnostic.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/study.h"
#include "core/task_pool.h"
#include "pdn/fault.h"

namespace vstack::core {

/// Per-conductor-group EM risk: the crowding-adjusted hot current and the
/// lognormal failure probability at the ranking horizon.
struct EmRiskEntry {
  std::size_t conductor_index = 0;  // into network.conductors()
  pdn::ConductorKind kind = pdn::ConductorKind::GridStrap;
  std::size_t count = 0;            // parallel conductors in the group
  double unit_current = 0.0;        // hot-conductor current [A]
  double failure_probability = 0.0;
};

struct ContingencyOptions {
  /// Horizon for the failure-probability ranking [lifetime units];
  /// 0 = auto (the baseline TSV array's P = 0.5 crossing).
  double mission_time = 0.0;

  /// N-1 sweep size: top_k candidates by EM risk, or every candidate group
  /// when exhaustive is set.
  std::size_t top_k = 8;
  bool exhaustive = false;

  /// Post-fault budget: max node deviation as a fraction of vdd.  Cases
  /// above it (or over the converter current limit) classify as Degraded.
  double noise_budget_fraction = 0.10;

  /// Monte Carlo N-k campaign shape.
  std::size_t trials = 25;
  std::size_t faults_per_trial = 2;
  std::size_t converter_faults_per_trial = 0;  // stuck-off phases per trial
  std::size_t leakage_faults_per_trial = 0;    // shorts to ground per trial
  double leakage_resistance = 10.0;            // [Ohm]
  double degrade_factor = 8.0;  // resistance multiplier for partial faults
  std::uint64_t seed = 42;

  pdn::PdnSolveOptions solve;

  /// Case scheduling (core/task_pool.h).  Defaults to serial; with
  /// jobs > 1 the independent cases (each on a fresh PdnModel) evaluate
  /// concurrently while the report is reduced in case order, so the
  /// outcome counts, case list, and worst-deviation aggregate are
  /// bit-identical to a serial run.  Planning (RNG sampling, EM ranking,
  /// baseline solve) always stays serial so seeds reproduce exactly.
  ExecutionPolicy execution;
};

/// One sampled Monte Carlo scenario, fully determined before any evaluation.
/// All RNG consumption happens while PLANNING, never while evaluating, so a
/// campaign can be replayed (or resumed from a checkpoint) scenario-by-
/// scenario and still reproduce run_monte_carlo's exact fault sets.
struct PlannedScenario {
  std::size_t index = 0;  // trial number within the campaign
  std::string label;      // "MC#<trial>"
  pdn::FaultSet faults;
};

enum class CaseOutcome {
  Survivable,  // converged, within noise budget and converter limits
  Degraded,    // converged, but a budget or converter limit is violated
  Infeasible   // no converged solution, or loads stranded on an island
};

struct ContingencyCase {
  std::string label;
  pdn::FaultSet faults;
  CaseOutcome outcome = CaseOutcome::Infeasible;
  bool solved = false;
  std::size_t solve_attempts = 1;  // escalation-ladder rungs used
  std::size_t floating_islands = 0;
  double max_node_deviation_fraction = 0.0;
  double max_ir_drop_fraction = 0.0;
  double max_converter_current = 0.0;
  bool converter_limit_ok = true;
  double supply_current = 0.0;
  /// Sum of all TSV-array currents: conservation check that the faulted
  /// conductor's current actually redistributed to survivors.
  double tsv_current_sum = 0.0;
  std::string diagnostic;

  /// The solve was cut short by options.execution.deadline.  Not evidence
  /// of infeasibility: the commit path discards the case (and everything
  /// after it) instead of counting a timeout artifact as Infeasible.
  bool deadline_truncated = false;
};

struct ContingencyReport {
  // Fault-free baseline.
  double base_max_node_deviation_fraction = 0.0;
  double base_max_ir_drop_fraction = 0.0;
  double base_max_converter_current = 0.0;
  double base_tsv_current_sum = 0.0;
  double base_supply_current = 0.0;

  std::vector<EmRiskEntry> ranking;  // descending failure probability
  std::vector<ContingencyCase> cases;

  std::size_t survivable = 0;
  std::size_t degraded = 0;
  std::size_t infeasible = 0;
  double worst_post_fault_deviation = 0.0;  // over solved cases

  /// Cases the sweep/campaign planned to evaluate; cases.size() < planned
  /// only when `cancelled` (options.execution.deadline fired mid-run --
  /// `cases` hold the contiguous committed prefix).
  std::size_t planned = 0;
  bool cancelled = false;
};

class ContingencyEngine {
 public:
  ContingencyEngine(const StudyContext& ctx, pdn::StackupConfig config);

  const pdn::StackupConfig& config() const { return config_; }

  /// Rank every candidate conductor group (C4 pads, TSVs, through-vias) by
  /// EM failure probability under the given per-layer activities.
  std::vector<EmRiskEntry> rank_by_em_risk(
      const std::vector<double>& layer_activities,
      const ContingencyOptions& options = {}) const;

  /// Deterministic N-1 sweep: open each candidate group in turn.
  ContingencyReport run_n_minus_1(
      const std::vector<double>& layer_activities,
      const ContingencyOptions& options = {}) const;

  /// Seeded Monte Carlo N-k campaign (reproducible from options.seed).
  ContingencyReport run_monte_carlo(
      const std::vector<double>& layer_activities,
      const ContingencyOptions& options = {}) const;

  /// Sample the full Monte Carlo trial list WITHOUT evaluating anything.
  /// run_monte_carlo is exactly: plan, then evaluate_case over the plan --
  /// the trial fault sets here are bit-identical to what it would build for
  /// the same seed and options.  The transient campaign runner
  /// (core/campaign.h) uses this to checkpoint/resume mid-campaign.
  std::vector<PlannedScenario> plan_monte_carlo(
      const std::vector<double>& layer_activities,
      const ContingencyOptions& options = {}) const;

  /// Evaluate one explicit fault set (building block of both campaigns).
  ContingencyCase evaluate_case(const pdn::FaultSet& faults,
                                const std::vector<double>& layer_activities,
                                const ContingencyOptions& options = {},
                                const std::string& label = "") const;

 private:
  ContingencyReport make_baseline_report(
      const std::vector<double>& layer_activities,
      const ContingencyOptions& options) const;
  void classify_and_append(ContingencyReport& report,
                           ContingencyCase one) const;

  const StudyContext& ctx_;
  pdn::StackupConfig config_;
};

}  // namespace vstack::core
