// Sweep drivers that regenerate each of the paper's result figures.
// The bench binaries print these rows; the integration tests assert the
// paper's qualitative claims on them.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/study.h"
#include "power/workload.h"

namespace vstack::core {

/// Fig. 5a: normalized TSV EM-free MTTF vs layer count.
struct Fig5aRow {
  std::size_t layers = 0;
  double reg_dense = 0.0;
  double reg_sparse = 0.0;
  double reg_few = 0.0;
  double vs_few = 0.0;  // all normalized to the 2-layer V-S PDN
};
std::vector<Fig5aRow> run_fig5a(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts);

/// Fig. 5b: normalized C4 EM-free MTTF vs layer count.
struct Fig5bRow {
  std::size_t layers = 0;
  double reg_25 = 0.0;
  double reg_50 = 0.0;
  double reg_75 = 0.0;
  double reg_100 = 0.0;
  double vs = 0.0;  // normalized to the 2-layer V-S PDN
};
std::vector<Fig5bRow> run_fig5b(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts);

/// Fig. 6: maximum on-chip voltage noise vs workload imbalance, 8-layer
/// stack.  Entries where the converter current limit is violated are
/// reported as std::nullopt (the paper skips those points).
struct Fig6Row {
  double imbalance = 0.0;
  std::vector<std::optional<double>> vs_noise;  // one per converter count
};
struct Fig6Result {
  std::vector<std::size_t> converter_counts;
  std::vector<Fig6Row> rows;
  // Regular-PDN reference lines (worst case: all layers active).
  double reg_dense = 0.0;
  double reg_sparse = 0.0;
  double reg_few = 0.0;
};
Fig6Result run_fig6(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances);

/// Fig. 7: per-application power distributions (PARSEC campaign).
std::vector<power::ApplicationPowerSummary> run_fig7(const StudyContext& ctx,
                                                     std::size_t samples,
                                                     std::uint64_t seed);

/// Fig. 8: system power efficiency vs imbalance.
struct Fig8Row {
  double imbalance = 0.0;
  std::vector<std::optional<double>> vs_efficiency;  // per converter count
  double regular_sc = 0.0;  // converters provide all power
};
struct Fig8Result {
  std::vector<std::size_t> converter_counts;
  std::vector<Fig8Row> rows;
};
Fig8Result run_fig8(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances);

}  // namespace vstack::core
