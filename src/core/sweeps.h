// Sweep drivers that regenerate each of the paper's result figures.
// The bench binaries print these rows; the integration tests assert the
// paper's qualitative claims on them.
//
// Every driver whose points are independent (5a, 5b, 6, 8) takes an
// ExecutionPolicy (default serial) and fans its rows out on the shared
// worker pool (core/task_pool.h); rows land in sweep order either way, so
// parallel output is bit-identical to serial.  Fig. 7 is a single seeded
// sampling campaign and always runs serially.  SweepRunner bundles the
// context + policy so callers (CLI, bench drivers) stop re-plumbing
// StudyContext into every figure call; its defaults are the paper's sweep
// shapes.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/study.h"
#include "core/task_pool.h"
#include "power/workload.h"

namespace vstack::core {

/// Fig. 5a: normalized TSV EM-free MTTF vs layer count.
struct Fig5aRow {
  std::size_t layers = 0;
  double reg_dense = 0.0;
  double reg_sparse = 0.0;
  double reg_few = 0.0;
  double vs_few = 0.0;  // all normalized to the 2-layer V-S PDN
};
std::vector<Fig5aRow> run_fig5a(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts,
                                const ExecutionPolicy& execution = {});

/// Fig. 5b: normalized C4 EM-free MTTF vs layer count.
struct Fig5bRow {
  std::size_t layers = 0;
  double reg_25 = 0.0;
  double reg_50 = 0.0;
  double reg_75 = 0.0;
  double reg_100 = 0.0;
  double vs = 0.0;  // normalized to the 2-layer V-S PDN
};
std::vector<Fig5bRow> run_fig5b(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts,
                                const ExecutionPolicy& execution = {});

/// Fig. 6: maximum on-chip voltage noise vs workload imbalance, 8-layer
/// stack.  Entries where the converter current limit is violated are
/// reported as std::nullopt (the paper skips those points).
struct Fig6Row {
  double imbalance = 0.0;
  std::vector<std::optional<double>> vs_noise;  // one per converter count
};
struct Fig6Result {
  std::vector<std::size_t> converter_counts;
  std::vector<Fig6Row> rows;
  // Regular-PDN reference lines (worst case: all layers active).
  double reg_dense = 0.0;
  double reg_sparse = 0.0;
  double reg_few = 0.0;
};
Fig6Result run_fig6(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances,
                    const ExecutionPolicy& execution = {});

/// Fig. 7: per-application power distributions (PARSEC campaign).
std::vector<power::ApplicationPowerSummary> run_fig7(const StudyContext& ctx,
                                                     std::size_t samples,
                                                     std::uint64_t seed);

/// Fig. 8: system power efficiency vs imbalance.
struct Fig8Row {
  double imbalance = 0.0;
  std::vector<std::optional<double>> vs_efficiency;  // per converter count
  double regular_sc = 0.0;  // converters provide all power
};
struct Fig8Result {
  std::vector<std::size_t> converter_counts;
  std::vector<Fig8Row> rows;
};
Fig8Result run_fig8(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances,
                    const ExecutionPolicy& execution = {});

/// Shared configuration for a SweepRunner; mirrors the ctx+config shape of
/// CampaignRunner / ContingencyEngine.
struct SweepOptions {
  /// Scheduling for every figure driver (see the drivers above for the
  /// determinism guarantee).
  ExecutionPolicy execution;

  /// Layer axis for the Fig. 5 lifetime plots.
  std::vector<std::size_t> layer_counts{2, 4, 6, 8};

  /// Stack height and converter axis for the Fig. 6/8 noise + efficiency
  /// maps.
  std::size_t layers = 8;
  std::vector<std::size_t> converter_counts{2, 4, 6, 8};

  /// Fig. 7 sampling shape.
  std::size_t fig7_samples = 1000;
  std::uint64_t fig7_seed = 2015;
};

/// Facade over the figure drivers: bind the study context and execution
/// policy once, then call each figure without re-plumbing either.  The
/// context must outlive the runner (same borrowing rule as
/// CampaignRunner).
class SweepRunner {
 public:
  explicit SweepRunner(const StudyContext& ctx, SweepOptions options = {});

  const SweepOptions& options() const { return options_; }

  std::vector<Fig5aRow> fig5a() const;
  std::vector<Fig5bRow> fig5b() const;
  Fig6Result fig6(const std::vector<double>& imbalances) const;
  std::vector<power::ApplicationPowerSummary> fig7() const;
  Fig8Result fig8(const std::vector<double>& imbalances) const;

 private:
  const StudyContext& ctx_;
  SweepOptions options_;
};

}  // namespace vstack::core
