#include "core/sweeps.h"

#include "common/error.h"
#include "common/rng.h"
#include "telemetry/telemetry.h"

namespace vstack::core {

namespace {

std::vector<double> full_activity(std::size_t layers) {
  return std::vector<double>(layers, 1.0);
}

/// The 2-layer V-S design both Fig. 5 plots normalize to.
ScenarioResult vs_baseline(const StudyContext& ctx) {
  const auto cfg = make_stacked(ctx, 2, ctx.base.tsv,
                                ctx.base.converters_per_core);
  return evaluate_scenario(ctx, cfg, full_activity(2));
}

}  // namespace

std::vector<Fig5aRow> run_fig5a(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts,
                                const ExecutionPolicy& execution) {
  VS_SPAN("core.sweep.fig5a");
  const ScenarioResult baseline = vs_baseline(ctx);
  VS_REQUIRE(baseline.tsv_mttf > 0.0, "baseline TSV MTTF must be positive");

  // One row per layer count, each evaluating four independent scenarios on
  // its own models: rows fan out on the pool and land in sweep order.
  std::vector<Fig5aRow> rows(layer_counts.size());
  const TaskPool pool(execution);
  pool.run_ordered(
      layer_counts.size(),
      [&](std::size_t r) {
        const std::size_t layers = layer_counts[r];
        Fig5aRow row;
        row.layers = layers;
        const auto acts = full_activity(layers);
        row.reg_dense =
            evaluate_scenario(
                ctx, make_regular(ctx, layers, pdn::TsvConfig::dense(),
                                  ctx.base.power_c4_fraction),
                acts)
                .tsv_mttf /
            baseline.tsv_mttf;
        row.reg_sparse =
            evaluate_scenario(ctx,
                              make_regular(ctx, layers,
                                           pdn::TsvConfig::sparse(),
                                           ctx.base.power_c4_fraction),
                              acts)
                .tsv_mttf /
            baseline.tsv_mttf;
        row.reg_few = evaluate_scenario(
                          ctx, make_regular(ctx, layers, pdn::TsvConfig::few(),
                                            ctx.base.power_c4_fraction),
                          acts)
                          .tsv_mttf /
                      baseline.tsv_mttf;
        row.vs_few = evaluate_scenario(
                         ctx, make_stacked(ctx, layers, pdn::TsvConfig::few(),
                                           ctx.base.converters_per_core),
                         acts)
                         .tsv_mttf /
                     baseline.tsv_mttf;
        rows[r] = row;
      },
      [](std::size_t) {});
  return rows;
}

std::vector<Fig5bRow> run_fig5b(const StudyContext& ctx,
                                const std::vector<std::size_t>& layer_counts,
                                const ExecutionPolicy& execution) {
  VS_SPAN("core.sweep.fig5b");
  const ScenarioResult baseline = vs_baseline(ctx);
  VS_REQUIRE(baseline.c4_mttf > 0.0, "baseline C4 MTTF must be positive");

  std::vector<Fig5bRow> rows(layer_counts.size());
  const TaskPool pool(execution);
  pool.run_ordered(
      layer_counts.size(),
      [&](std::size_t r) {
        const std::size_t layers = layer_counts[r];
        Fig5bRow row;
        row.layers = layers;
        const auto acts = full_activity(layers);
        const auto reg_at = [&](double fraction) {
          return evaluate_scenario(
                     ctx, make_regular(ctx, layers, ctx.base.tsv, fraction),
                     acts)
                     .c4_mttf /
                 baseline.c4_mttf;
        };
        row.reg_25 = reg_at(0.25);
        row.reg_50 = reg_at(0.50);
        row.reg_75 = reg_at(0.75);
        row.reg_100 = reg_at(1.00);
        row.vs = evaluate_scenario(ctx,
                                   make_stacked(ctx, layers, ctx.base.tsv,
                                                ctx.base.converters_per_core),
                                   acts)
                     .c4_mttf /
                 baseline.c4_mttf;
        rows[r] = row;
      },
      [](std::size_t) {});
  return rows;
}

Fig6Result run_fig6(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances,
                    const ExecutionPolicy& execution) {
  VS_SPAN("core.sweep.fig6");
  Fig6Result result;
  result.converter_counts = converter_counts;

  // Regular-PDN references: worst case is all layers fully active, so the
  // imbalance assumption does not affect these lines (paper Fig. 6 caption).
  const auto acts_full = full_activity(layers);
  const auto reg_noise = [&](const pdn::TsvConfig& tsv) {
    return evaluate_scenario(
               ctx,
               make_regular(ctx, layers, tsv, ctx.base.power_c4_fraction),
               acts_full)
        .solution.max_node_deviation_fraction;
  };
  result.reg_dense = reg_noise(pdn::TsvConfig::dense());
  result.reg_sparse = reg_noise(pdn::TsvConfig::sparse());
  result.reg_few = reg_noise(pdn::TsvConfig::few());

  // One PdnModel per (imbalance, converter count) point, each owned by the
  // row that builds it; rows fan out on the pool.
  result.rows.resize(imbalances.size());
  const TaskPool pool(execution);
  pool.run_ordered(
      imbalances.size(),
      [&](std::size_t r) {
        Fig6Row row;
        row.imbalance = imbalances[r];
        for (const std::size_t conv : converter_counts) {
          const auto cfg = make_stacked(ctx, layers, ctx.base.tsv, conv);
          pdn::PdnModel model(cfg, ctx.layer_floorplan);
          const auto sol = model.solve_activities(
              ctx.core_model,
              power::interleaved_layer_activities(layers, imbalances[r]));
          if (sol.converter_limit_ok) {
            row.vs_noise.emplace_back(sol.max_node_deviation_fraction);
          } else {
            row.vs_noise.emplace_back(std::nullopt);  // paper skips these
          }
        }
        result.rows[r] = std::move(row);
      },
      [](std::size_t) {});
  return result;
}

std::vector<power::ApplicationPowerSummary> run_fig7(const StudyContext& ctx,
                                                     std::size_t samples,
                                                     std::uint64_t seed) {
  VS_SPAN("core.sweep.fig7");
  // One shared Rng drives the whole campaign: inherently serial.
  Rng rng(seed);
  return power::run_sampling_campaign(ctx.core_model, samples, rng);
}

Fig8Result run_fig8(const StudyContext& ctx, std::size_t layers,
                    const std::vector<std::size_t>& converter_counts,
                    const std::vector<double>& imbalances,
                    const ExecutionPolicy& execution) {
  VS_SPAN("core.sweep.fig8");
  Fig8Result result;
  result.converter_counts = converter_counts;
  result.rows.resize(imbalances.size());
  const TaskPool pool(execution);
  pool.run_ordered(
      imbalances.size(),
      [&](std::size_t r) {
        const double imbalance = imbalances[r];
        Fig8Row row;
        row.imbalance = imbalance;
        for (const std::size_t conv : converter_counts) {
          const auto eff = stacked_efficiency(ctx, layers, conv, imbalance);
          if (eff.feasible) {
            row.vs_efficiency.emplace_back(eff.efficiency);
          } else {
            row.vs_efficiency.emplace_back(std::nullopt);
          }
        }
        // Baseline sized to keep every converter within its limit.
        row.regular_sc =
            regular_sc_efficiency(ctx, layers, 8, imbalance).efficiency;
        result.rows[r] = std::move(row);
      },
      [](std::size_t) {});
  return result;
}

SweepRunner::SweepRunner(const StudyContext& ctx, SweepOptions options)
    : ctx_(ctx), options_(std::move(options)) {
  options_.execution.validate();
  VS_REQUIRE(!options_.layer_counts.empty(),
             "SweepOptions.layer_counts must not be empty");
  VS_REQUIRE(!options_.converter_counts.empty(),
             "SweepOptions.converter_counts must not be empty");
}

std::vector<Fig5aRow> SweepRunner::fig5a() const {
  return run_fig5a(ctx_, options_.layer_counts, options_.execution);
}

std::vector<Fig5bRow> SweepRunner::fig5b() const {
  return run_fig5b(ctx_, options_.layer_counts, options_.execution);
}

Fig6Result SweepRunner::fig6(const std::vector<double>& imbalances) const {
  return run_fig6(ctx_, options_.layers, options_.converter_counts,
                  imbalances, options_.execution);
}

std::vector<power::ApplicationPowerSummary> SweepRunner::fig7() const {
  return run_fig7(ctx_, options_.fig7_samples, options_.fig7_seed);
}

Fig8Result SweepRunner::fig8(const std::vector<double>& imbalances) const {
  return run_fig8(ctx_, options_.layers, options_.converter_counts,
                  imbalances, options_.execution);
}

}  // namespace vstack::core
