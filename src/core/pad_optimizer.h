// Power-pad budget optimization -- quantifies the paper's Sec. 5.1 claim
// that "because V-S extends the pad array's EM lifetime, it reduces the
// requirement for power supply pads and allows more pads to be used for
// I/O".
//
// Given lifetime and noise targets, find the smallest power-pad allocation
// (for the regular topology) or the smallest per-core Vdd-pad count (for
// the stack) that meets both, and report how many pad sites are left for
// I/O.
#pragma once

#include "core/study.h"

namespace vstack::core {

struct PadRequirement {
  /// Minimum acceptable EM-damage-free lifetime of the C4 array, in the
  /// same normalized units as a reference scenario's c4_mttf.
  double min_c4_mttf = 0.0;
  /// Maximum acceptable voltage noise (fraction of Vdd).
  double max_noise_fraction = 0.05;
};

struct PadBudgetResult {
  bool feasible = false;
  std::size_t power_pads = 0;  // total pad sites spent on power delivery
  std::size_t io_pads = 0;     // sites left over for I/O
  double achieved_c4_mttf = 0.0;
  double achieved_noise = 0.0;
  /// The configuration knob that realised the budget: the power fraction
  /// for regular, the per-core Vdd pad count for the stack.
  double knob = 0.0;
};

/// Total C4 sites available on the die at the configured pad pitch.
std::size_t total_pad_sites(const StudyContext& ctx);

/// Smallest power-C4 fraction meeting the requirement for a regular PDN
/// (searched over a fixed candidate ladder of fractions).
PadBudgetResult minimize_regular_power_pads(const StudyContext& ctx,
                                            std::size_t layers,
                                            const PadRequirement& req);

/// Smallest per-core Vdd pad count meeting the requirement for a V-S PDN.
PadBudgetResult minimize_stacked_power_pads(const StudyContext& ctx,
                                            std::size_t layers,
                                            const PadRequirement& req);

}  // namespace vstack::core
