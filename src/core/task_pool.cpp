#include "core/task_pool.h"

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "common/error.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::core {

std::size_t ExecutionPolicy::default_jobs() {
  // VSTACK_JOBS handling is explicit about every malformed shape instead of
  // silently falling through strtoul's wrap-around behavior:
  //   zero / negative  -> warn, ignore (hardware concurrency)
  //   non-numeric junk -> warn, ignore
  //   huge / overflow  -> warn, clamp to the 4096 policy bound
  if (const char* env = std::getenv("VSTACK_JOBS")) {
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(env, &end, 10);
    const bool parsed = end != env && end != nullptr && *end == '\0';
    if (!parsed) {
      VS_LOG_WARN("ignoring non-numeric VSTACK_JOBS='" << env
                                                       << "' (want 1..4096)");
    } else if (v <= 0) {
      VS_LOG_WARN("ignoring VSTACK_JOBS=" << env
                                          << " (must be positive, 1..4096)");
    } else if (errno == ERANGE || v > 4096) {
      VS_LOG_WARN("clamping VSTACK_JOBS=" << env << " to the 4096 bound");
      return 4096;
    } else {
      return static_cast<std::size_t>(v);
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? hw : 1;
}

std::size_t ExecutionPolicy::resolved_jobs() const {
  return jobs == 0 ? default_jobs() : jobs;
}

void ExecutionPolicy::validate() const {
  VS_REQUIRE(chunk >= 1, "ExecutionPolicy.chunk must be >= 1");
  VS_REQUIRE(jobs <= 4096, "ExecutionPolicy.jobs is bounded (<= 4096)");
}

TaskPool::TaskPool(ExecutionPolicy policy) : policy_(policy) {
  policy_.validate();
}

namespace {

/// Per-index lifecycle, guarded by the pool mutex.  Skipped marks indices a
/// worker claimed but abandoned after cancellation; indices never claimed
/// stay Pending and are recognized once every worker has exited.
enum class Slot : unsigned char { Pending, Done, Failed, Skipped };

// Pool telemetry (observation only; the scheduling and the ordered
// reduction are untouched, so parallel/serial bit-identity holds).
const telemetry::Counter t_tasks("core.task_pool.tasks");
const telemetry::Counter t_runs("core.task_pool.runs");
const telemetry::Gauge t_jobs("core.task_pool.jobs");
const telemetry::Histogram t_chunk_seconds(
    "core.task_pool.chunk_seconds",
    {1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 2.0, 10.0});
const telemetry::Histogram t_commit_wait_seconds(
    "core.task_pool.commit_wait_seconds",
    {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0});

}  // namespace

std::size_t TaskPool::run_ordered(std::size_t count, const Work& work,
                                  const Commit& commit) const {
  if (count == 0) return 0;
  VS_SPAN("core.task_pool.run");
  t_runs.add();
  t_tasks.add(static_cast<double>(count));
  const Deadline& deadline = policy_.deadline;
  const std::size_t jobs = std::min(policy_.resolved_jobs(), count);
  t_jobs.set(static_cast<double>(jobs));
  if (jobs <= 1) {
    // Serial fast path: caller's thread, no synchronization -- the exact
    // historical behavior of every scenario loop.
    for (std::size_t i = 0; i < count; ++i) {
      if (deadline.expired()) return i;
      work(i);
      commit(i);
    }
    return count;
  }

  const std::size_t chunk = policy_.chunk;
  std::mutex mu;
  std::condition_variable ready_cv;
  std::vector<Slot> slots(count, Slot::Pending);
  std::vector<std::exception_ptr> errors(count);
  std::atomic<std::size_t> cursor{0};
  std::atomic<bool> cancelled{false};
  std::size_t live_workers = jobs;  // guarded by mu

  auto worker_main = [&](std::size_t wid) {
    set_log_worker_id(static_cast<int>(wid));
    for (;;) {
      // Deadline check only at chunk boundaries: in-flight scenarios drain
      // (their inner loops poll the same token), new ones never start.
      if (cancelled.load(std::memory_order_acquire) || deadline.expired()) {
        break;
      }
      const std::size_t begin =
          cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(count, begin + chunk);
      VS_SPAN("core.task_pool.chunk");
      const double chunk_start = telemetry::monotonic_seconds();
      for (std::size_t i = begin; i < end; ++i) {
        Slot outcome = Slot::Skipped;
        std::exception_ptr error;
        if (!cancelled.load(std::memory_order_acquire) &&
            !deadline.expired()) {
          try {
            work(i);
            outcome = Slot::Done;
          } catch (...) {
            outcome = Slot::Failed;
            error = std::current_exception();
            if (policy_.cancel_on_error) {
              cancelled.store(true, std::memory_order_release);
            }
          }
        }
        {
          const std::lock_guard<std::mutex> lock(mu);
          slots[i] = outcome;
          errors[i] = std::move(error);
        }
        ready_cv.notify_all();
      }
      t_chunk_seconds.record(telemetry::monotonic_seconds() - chunk_start);
    }
    {
      const std::lock_guard<std::mutex> lock(mu);
      --live_workers;
    }
    ready_cv.notify_all();
  };

  std::vector<std::thread> workers;
  workers.reserve(jobs);
  for (std::size_t w = 0; w < jobs; ++w) workers.emplace_back(worker_main, w);

  // Ordered reduction on the calling thread: commit strictly by index, so
  // aggregates and checkpoint manifests are bit-identical to a serial run
  // no matter in what order the workers finish.  `committed` stays a
  // contiguous prefix: the scan halts at the first slot that is not Done.
  std::exception_ptr first_error;
  std::size_t committed = 0;
  {
    std::unique_lock<std::mutex> lock(mu);
    for (std::size_t i = 0; i < count; ++i) {
      const double wait_start = telemetry::monotonic_seconds();
      ready_cv.wait(lock, [&] {
        return slots[i] != Slot::Pending || live_workers == 0;
      });
      t_commit_wait_seconds.record(telemetry::monotonic_seconds() -
                                   wait_start);
      if (slots[i] == Slot::Pending || slots[i] == Slot::Skipped) break;
      if (slots[i] == Slot::Failed) {
        if (!first_error) first_error = errors[i];
        if (policy_.cancel_on_error) break;
        continue;  // keep committing survivors; rethrow at the end
      }
      lock.unlock();
      try {
        commit(i);
        ++committed;
      } catch (...) {
        first_error = std::current_exception();
        cancelled.store(true, std::memory_order_release);
        lock.lock();
        break;
      }
      lock.lock();
    }
  }
  if (first_error) cancelled.store(true, std::memory_order_release);
  for (std::thread& t : workers) t.join();
  if (!first_error) {
    // Cancellation can skip an index BELOW the failing one (claimed but not
    // yet started when the flag went up), stopping the commit scan before
    // it reaches the failure.  Recover the lowest-index error here; the
    // workers are joined, so the error array is stable.
    for (std::size_t i = 0; i < count && !first_error; ++i) {
      if (errors[i]) first_error = errors[i];
    }
  }
  if (first_error) std::rethrow_exception(first_error);
  return committed;
}

}  // namespace vstack::core
