#include "core/design_space.h"

#include "common/error.h"
#include "power/workload.h"

namespace vstack::core {

namespace {

DesignPoint evaluate_point(const StudyContext& ctx,
                           const DesignSpaceOptions& options,
                           const pdn::StackupConfig& cfg,
                           const std::string& label,
                           const ScenarioResult& baseline) {
  DesignPoint p;
  p.label = label;
  p.config = cfg;

  // EM at full activity (the paper's Fig. 5 condition).
  const auto em = evaluate_scenario(
      ctx, cfg, std::vector<double>(options.layers, 1.0));
  p.tsv_mttf = em.tsv_mttf / baseline.tsv_mttf;
  p.c4_mttf = em.c4_mttf / baseline.c4_mttf;

  // Noise at the reference imbalance.  Regular PDNs are imbalance
  // insensitive (worst case is all-active, already solved above).
  if (cfg.is_voltage_stacked()) {
    pdn::PdnModel model(cfg, ctx.layer_floorplan);
    const auto sol = model.solve_activities(
        ctx.core_model, power::interleaved_layer_activities(
                            options.layers, options.reference_imbalance));
    p.noise = sol.max_node_deviation_fraction;
    p.feasible = sol.converter_limit_ok;
    const auto eff =
        stacked_efficiency(ctx, options.layers, cfg.converters_per_core,
                           options.reference_imbalance);
    p.efficiency = eff.efficiency;
    p.feasible = p.feasible && eff.feasible;
    p.area_overhead =
        ctx.vs_area_overhead(cfg.converters_per_core, cfg.tsv);
  } else {
    p.noise = em.solution.max_node_deviation_fraction;
    // No regulation stage: only the grid's resistive loss.
    p.efficiency = em.solution.resistive_efficiency;
    p.area_overhead = ctx.regular_area_overhead(cfg.tsv);
  }
  return p;
}

}  // namespace

std::vector<DesignPoint> enumerate_designs(const StudyContext& ctx,
                                           const DesignSpaceOptions& options) {
  VS_REQUIRE(options.layers >= 2, "exploration needs at least two layers");

  const ScenarioResult baseline = evaluate_scenario(
      ctx, make_stacked(ctx, 2, ctx.base.tsv, ctx.base.converters_per_core),
      std::vector<double>(2, 1.0));

  // Enumerate the candidate grid first (cheap), then evaluate each point's
  // models on the worker pool; points keep their enumeration order.
  std::vector<std::pair<pdn::StackupConfig, std::string>> candidates;
  for (const auto& tsv : pdn::TsvConfig::paper_configs()) {
    for (const double fraction : options.regular_c4_fractions) {
      candidates.emplace_back(
          make_regular(ctx, options.layers, tsv, fraction),
          "Reg/" + tsv.name + "/" +
              std::to_string(static_cast<int>(fraction * 100)) + "%C4");
    }
    for (const std::size_t conv : options.stacked_converter_counts) {
      candidates.emplace_back(
          make_stacked(ctx, options.layers, tsv, conv),
          "V-S/" + tsv.name + "/" + std::to_string(conv) + "conv");
    }
  }

  std::vector<DesignPoint> points(candidates.size());
  const TaskPool pool(options.execution);
  pool.run_ordered(
      candidates.size(),
      [&](std::size_t i) {
        points[i] = evaluate_point(ctx, options, candidates[i].first,
                                   candidates[i].second, baseline);
      },
      [](std::size_t) {});
  return points;
}

bool dominates(const DesignPoint& a, const DesignPoint& b) {
  const bool geq = a.noise <= b.noise && a.area_overhead <= b.area_overhead &&
                   a.tsv_mttf >= b.tsv_mttf && a.c4_mttf >= b.c4_mttf &&
                   a.efficiency >= b.efficiency;
  const bool strict = a.noise < b.noise || a.area_overhead < b.area_overhead ||
                      a.tsv_mttf > b.tsv_mttf || a.c4_mttf > b.c4_mttf ||
                      a.efficiency > b.efficiency;
  return geq && strict;
}

std::vector<std::size_t> pareto_front(
    const std::vector<DesignPoint>& points) {
  std::vector<std::size_t> front;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (!points[i].feasible) continue;
    bool dominated = false;
    for (std::size_t j = 0; j < points.size() && !dominated; ++j) {
      if (i != j && points[j].feasible && dominates(points[j], points[i])) {
        dominated = true;
      }
    }
    if (!dominated) front.push_back(i);
  }
  return front;
}

}  // namespace vstack::core
