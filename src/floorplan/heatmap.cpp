#include "floorplan/heatmap.h"

#include <algorithm>
#include <iomanip>

#include "common/error.h"

namespace vstack::floorplan {

char shade_of(double value, double lo, double hi, const std::string& ramp) {
  VS_REQUIRE(!ramp.empty(), "shade ramp must not be empty");
  if (hi <= lo) return ramp.front();
  const double t = std::clamp((value - lo) / (hi - lo), 0.0, 1.0);
  const auto idx = std::min(
      static_cast<std::size_t>(t * static_cast<double>(ramp.size())),
      ramp.size() - 1);
  return ramp[idx];
}

void render_heatmap(const GridMap& map, std::ostream& os,
                    const HeatmapOptions& options) {
  VS_REQUIRE(map.nx > 0 && map.ny > 0 && !map.values.empty(),
             "cannot render an empty map");
  double lo = options.min_value, hi = options.max_value;
  if (lo == hi) {
    lo = *std::min_element(map.values.begin(), map.values.end());
    hi = *std::max_element(map.values.begin(), map.values.end());
  }

  // Top row printed first so (0, 0) lands at the lower left.
  for (std::size_t row = map.ny; row-- > 0;) {
    os << "  ";
    for (std::size_t col = 0; col < map.nx; ++col) {
      os << shade_of(map.at(col, row), lo, hi, options.ramp);
    }
    os << "\n";
  }
  if (options.legend) {
    os << "  [" << std::setprecision(3) << lo * options.legend_scale << " '"
       << options.ramp.front() << "' .. " << hi * options.legend_scale
       << " '" << options.ramp.back() << "'";
    if (!options.legend_unit.empty()) os << " " << options.legend_unit;
    os << "]\n";
  }
}

}  // namespace vstack::floorplan
