#include "floorplan/power_map.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"

namespace vstack::floorplan {

double& GridMap::at(std::size_t ix, std::size_t iy) {
  VS_REQUIRE(ix < nx && iy < ny, "grid index out of range");
  return values[iy * nx + ix];
}

double GridMap::at(std::size_t ix, std::size_t iy) const {
  VS_REQUIRE(ix < nx && iy < ny, "grid index out of range");
  return values[iy * nx + ix];
}

double GridMap::total() const {
  double s = 0.0;
  for (double v : values) s += v;
  return s;
}

double GridMap::max_value() const {
  double m = 0.0;
  for (double v : values) m = std::max(m, v);
  return m;
}

GridMap rasterize_power(const Floorplan& floorplan,
                        const std::vector<double>& block_powers,
                        std::size_t nx, std::size_t ny) {
  VS_REQUIRE(nx >= 1 && ny >= 1, "grid must have at least one cell");
  VS_REQUIRE(block_powers.size() == floorplan.blocks.size(),
             "block power vector must match floorplan blocks");

  GridMap map;
  map.nx = nx;
  map.ny = ny;
  map.values.assign(nx * ny, 0.0);

  const double cell_w = floorplan.width / static_cast<double>(nx);
  const double cell_h = floorplan.height / static_cast<double>(ny);

  for (std::size_t b = 0; b < floorplan.blocks.size(); ++b) {
    const Rect& r = floorplan.blocks[b].rect;
    const double power = block_powers[b];
    if (power == 0.0) continue;
    VS_REQUIRE(r.area() > 0.0, "placed block must have positive area");

    const auto ix_lo = static_cast<std::size_t>(
        std::clamp(std::floor(r.x / cell_w), 0.0, static_cast<double>(nx - 1)));
    const auto ix_hi = static_cast<std::size_t>(std::clamp(
        std::ceil(r.right() / cell_w), 1.0, static_cast<double>(nx)));
    const auto iy_lo = static_cast<std::size_t>(
        std::clamp(std::floor(r.y / cell_h), 0.0, static_cast<double>(ny - 1)));
    const auto iy_hi = static_cast<std::size_t>(std::clamp(
        std::ceil(r.top() / cell_h), 1.0, static_cast<double>(ny)));

    for (std::size_t iy = iy_lo; iy < iy_hi; ++iy) {
      for (std::size_t ix = ix_lo; ix < ix_hi; ++ix) {
        const Rect cell{static_cast<double>(ix) * cell_w,
                        static_cast<double>(iy) * cell_h, cell_w, cell_h};
        const double overlap = r.intersection_area(cell);
        if (overlap > 0.0) {
          map.at(ix, iy) += power * overlap / r.area();
        }
      }
    }
  }
  return map;
}

GridMap layer_power_map(const Floorplan& floorplan,
                        const power::CorePowerModel& model,
                        const std::vector<double>& core_activities,
                        std::size_t nx, std::size_t ny) {
  VS_REQUIRE(core_activities.size() == floorplan.core_count(),
             "activity vector must match core count");
  std::vector<double> block_powers(floorplan.blocks.size(), 0.0);
  // Cache per-activity block power: cores often share activity levels.
  for (std::size_t b = 0; b < floorplan.blocks.size(); ++b) {
    const auto& placed = floorplan.blocks[b];
    const double activity = core_activities[placed.core_index];
    const auto& blk = model.blocks()[placed.block_index];
    block_powers[b] = blk.peak_dynamic * activity + blk.leakage;
  }
  return rasterize_power(floorplan, block_powers, nx, ny);
}

std::size_t cell_of(const Floorplan& floorplan, std::size_t nx, std::size_t ny,
                    double x, double y) {
  VS_REQUIRE(x >= 0.0 && x <= floorplan.width && y >= 0.0 &&
                 y <= floorplan.height,
             "point outside the die");
  const double cell_w = floorplan.width / static_cast<double>(nx);
  const double cell_h = floorplan.height / static_cast<double>(ny);
  const std::size_t ix = std::min(
      static_cast<std::size_t>(x / cell_w), nx - 1);
  const std::size_t iy = std::min(
      static_cast<std::size_t>(y / cell_h), ny - 1);
  return iy * nx + ix;
}

}  // namespace vstack::floorplan
