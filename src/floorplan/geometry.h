// Axis-aligned rectangle geometry for floorplanning.
#pragma once

namespace vstack::floorplan {

struct Rect {
  double x = 0.0;  // lower-left corner
  double y = 0.0;
  double width = 0.0;
  double height = 0.0;

  double area() const { return width * height; }
  double right() const { return x + width; }
  double top() const { return y + height; }
  double center_x() const { return x + 0.5 * width; }
  double center_y() const { return y + 0.5 * height; }

  bool contains(double px, double py) const;

  /// Area of the intersection with another rectangle (0 if disjoint).
  double intersection_area(const Rect& other) const;
};

}  // namespace vstack::floorplan
