// Rasterisation of block power onto a regular grid.
//
// The PDN and thermal grids consume power per grid cell; this helper
// distributes each placed block's power over the cells it overlaps,
// area-weighted.
#pragma once

#include <cstddef>
#include <vector>

#include "floorplan/floorplan.h"

namespace vstack::floorplan {

/// Dense nx x ny scalar field (row-major, [iy * nx + ix]).
struct GridMap {
  std::size_t nx = 0;
  std::size_t ny = 0;
  std::vector<double> values;

  double& at(std::size_t ix, std::size_t iy);
  double at(std::size_t ix, std::size_t iy) const;
  double total() const;
  double max_value() const;
};

/// Rasterise arbitrary per-block powers (same order as floorplan.blocks).
GridMap rasterize_power(const Floorplan& floorplan,
                        const std::vector<double>& block_powers,
                        std::size_t nx, std::size_t ny);

/// Rasterise a layer at per-core activity factors: block power comes from
/// the core model at each core's activity.
GridMap layer_power_map(const Floorplan& floorplan,
                        const power::CorePowerModel& model,
                        const std::vector<double>& core_activities,
                        std::size_t nx, std::size_t ny);

/// Cell index of the grid cell containing a point.
std::size_t cell_of(const Floorplan& floorplan, std::size_t nx, std::size_t ny,
                    double x, double y);

}  // namespace vstack::floorplan
