#include "floorplan/floorplan.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/error.h"

namespace vstack::floorplan {

Rect Floorplan::core_rect(std::size_t core_index) const {
  VS_REQUIRE(core_index < core_count(), "core index out of range");
  const double tile_w = width / static_cast<double>(cores_x);
  const double tile_h = height / static_cast<double>(cores_y);
  const std::size_t cx = core_index % cores_x;
  const std::size_t cy = core_index / cores_x;
  return Rect{static_cast<double>(cx) * tile_w,
              static_cast<double>(cy) * tile_h, tile_w, tile_h};
}

double Floorplan::placed_area() const {
  double a = 0.0;
  for (const auto& b : blocks) a += b.rect.area();
  return a;
}

namespace {

/// Recursive area bisection of `indices` (into `areas`) within `rect`.
void bisect(const std::vector<double>& areas, std::vector<std::size_t> indices,
            const Rect& rect, std::vector<Rect>& out) {
  if (indices.size() == 1) {
    out[indices.front()] = rect;
    return;
  }
  // Greedy balanced partition: largest-first into the lighter half.
  std::sort(indices.begin(), indices.end(), [&](std::size_t a, std::size_t b) {
    return areas[a] > areas[b];
  });
  std::vector<std::size_t> left, right;
  double left_area = 0.0, right_area = 0.0;
  for (const std::size_t i : indices) {
    // Keep each side non-empty even if areas are extremely skewed.
    if (right.empty() && left.size() + 1 == indices.size()) {
      right.push_back(i);
      right_area += areas[i];
    } else if (left_area <= right_area) {
      left.push_back(i);
      left_area += areas[i];
    } else {
      right.push_back(i);
      right_area += areas[i];
    }
  }
  const double frac = left_area / (left_area + right_area);

  Rect r_left = rect, r_right = rect;
  if (rect.width >= rect.height) {
    r_left.width = rect.width * frac;
    r_right.x = rect.x + r_left.width;
    r_right.width = rect.width - r_left.width;
  } else {
    r_left.height = rect.height * frac;
    r_right.y = rect.y + r_left.height;
    r_right.height = rect.height - r_left.height;
  }
  bisect(areas, std::move(left), r_left, out);
  bisect(areas, std::move(right), r_right, out);
}

}  // namespace

std::vector<Rect> place_core_blocks(const power::CorePowerModel& model,
                                    const Rect& tile) {
  VS_REQUIRE(tile.area() > 0.0, "tile must have positive area");
  const auto& blocks = model.blocks();

  std::vector<double> areas;
  areas.reserve(blocks.size());
  for (const auto& b : blocks) areas.push_back(b.area);

  // Scale block areas to fill the tile exactly (whitespace is distributed
  // proportionally, matching how ArchFP pads slicing plans).
  const double total = std::accumulate(areas.begin(), areas.end(), 0.0);
  for (auto& a : areas) a *= tile.area() / total;

  std::vector<std::size_t> indices(blocks.size());
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<Rect> out(blocks.size());
  bisect(areas, std::move(indices), tile, out);
  return out;
}

Floorplan make_layer_floorplan(const power::CorePowerModel& model,
                               std::size_t cores_x, std::size_t cores_y) {
  VS_REQUIRE(cores_x >= 1 && cores_y >= 1, "need at least one core");
  Floorplan fp;
  fp.cores_x = cores_x;
  fp.cores_y = cores_y;
  const double total_area =
      model.area() * static_cast<double>(cores_x * cores_y);
  // Square die with the aspect ratio of the core grid.
  const double aspect =
      static_cast<double>(cores_x) / static_cast<double>(cores_y);
  fp.height = std::sqrt(total_area / aspect);
  fp.width = total_area / fp.height;

  for (std::size_t c = 0; c < fp.core_count(); ++c) {
    const Rect tile = fp.core_rect(c);
    const auto rects = place_core_blocks(model, tile);
    for (std::size_t b = 0; b < rects.size(); ++b) {
      fp.blocks.push_back(PlacedBlock{
          "core" + std::to_string(c) + "." + model.blocks()[b].name, c, b,
          rects[b]});
    }
  }
  return fp;
}

Floorplan paper_layer_floorplan() {
  return make_layer_floorplan(power::CorePowerModel::cortex_a9_like(), 4, 4);
}

}  // namespace vstack::floorplan
