// Rapid pre-RTL floorplanning (the paper's ArchFP substitute).
//
// A layer floorplan is a grid of identical core tiles; within a tile the
// architectural blocks are placed by recursive area bisection (a guillotine
// slicing plan, the same family of plans ArchFP prototypes).  Only block
// rectangles and their power reach the PDN model, so a deterministic slicing
// plan is a faithful substitute.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "floorplan/geometry.h"
#include "power/core_power_model.h"

namespace vstack::floorplan {

struct PlacedBlock {
  std::string name;        // e.g. "core5.fp_neon"
  std::size_t core_index;  // which core tile the block belongs to
  std::size_t block_index; // index into CorePowerModel::blocks()
  Rect rect;
};

struct Floorplan {
  double width = 0.0;   // [m]
  double height = 0.0;  // [m]
  std::size_t cores_x = 0;
  std::size_t cores_y = 0;
  std::vector<PlacedBlock> blocks;

  std::size_t core_count() const { return cores_x * cores_y; }

  /// Bounding rectangle of one core tile.
  Rect core_rect(std::size_t core_index) const;

  /// Total placed area (must equal width * height up to rounding).
  double placed_area() const;
};

/// Place one core's blocks inside `tile` by recursive area bisection.
/// Returns rectangles in the same order as model.blocks().
std::vector<Rect> place_core_blocks(const power::CorePowerModel& model,
                                    const Rect& tile);

/// Build a full square-ish layer: cores_x x cores_y tiles of the given core
/// model.  The die is sized so tile area matches the model's core area.
Floorplan make_layer_floorplan(const power::CorePowerModel& model,
                               std::size_t cores_x, std::size_t cores_y);

/// The paper's layer: 16 Cortex-A9-like cores in a 4 x 4 grid (44.12 mm^2).
Floorplan paper_layer_floorplan();

}  // namespace vstack::floorplan
