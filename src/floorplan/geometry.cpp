#include "floorplan/geometry.h"

#include <algorithm>

namespace vstack::floorplan {

bool Rect::contains(double px, double py) const {
  return px >= x && px < right() && py >= y && py < top();
}

double Rect::intersection_area(const Rect& other) const {
  const double ix = std::max(0.0, std::min(right(), other.right()) -
                                      std::max(x, other.x));
  const double iy = std::max(0.0, std::min(top(), other.top()) -
                                      std::max(y, other.y));
  return ix * iy;
}

}  // namespace vstack::floorplan
