// ASCII heatmap rendering of GridMap fields (droop maps, temperature maps,
// power maps) for terminal inspection -- the library has no GUI, but a
// designer still wants to SEE where the hotspot or the worst droop sits.
#pragma once

#include <ostream>
#include <string>

#include "floorplan/power_map.h"

namespace vstack::floorplan {

struct HeatmapOptions {
  /// Shade ramp from low to high; one character per level.
  std::string ramp = " .:-=+*#%@";
  /// Scale anchors; if min == max the map's own extrema are used.
  double min_value = 0.0;
  double max_value = 0.0;
  /// Print a numeric legend under the map.
  bool legend = true;
  /// Optional multiplier applied to legend values (e.g. 100 for percent).
  double legend_scale = 1.0;
  std::string legend_unit;
};

/// Render the map with (0,0) at the lower left, one character per cell.
void render_heatmap(const GridMap& map, std::ostream& os,
                    const HeatmapOptions& options = {});

/// Character the given value maps to (exposed for tests).
char shade_of(double value, double lo, double hi, const std::string& ramp);

}  // namespace vstack::floorplan
