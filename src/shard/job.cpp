#include "shard/job.h"

#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/durable_file.h"
#include "common/error.h"
#include "core/campaign_manifest.h"
#include "power/workload.h"

namespace vstack::shard {

namespace fs = std::filesystem;

void JobSpec::validate() const {
  VS_REQUIRE(trials > 0, "shard job needs at least one trial");
  VS_REQUIRE(layers >= 1, "shard job needs at least one layer");
  VS_REQUIRE(chunk > 0, "chunk must be >= 1");
  VS_REQUIRE(max_attempts > 0, "max_attempts must be >= 1");
  VS_REQUIRE(std::isfinite(lease_expiry_s) && lease_expiry_s > 0.0,
             "lease_expiry_s must be > 0");
  VS_REQUIRE(std::isfinite(heartbeat_s) && heartbeat_s > 0.0 &&
                 heartbeat_s < lease_expiry_s,
             "heartbeat_s must be > 0 and shorter than lease_expiry_s");
}

std::size_t JobSpec::chunk_count() const {
  return (trials + chunk - 1) / chunk;
}

std::size_t JobSpec::chunk_end(std::size_t c) const {
  const std::size_t end = (c + 1) * chunk;
  return end < trials ? end : trials;
}

CampaignSetup make_campaign(const core::StudyContext& ctx,
                            const JobSpec& spec) {
  spec.validate();
  CampaignSetup setup;
  setup.config = ctx.base;
  setup.config.topology = spec.stacked ? pdn::PdnTopology::VoltageStacked
                                       : pdn::PdnTopology::Regular3d;
  setup.config.layer_count = spec.layers;
  setup.config.grid_nx = setup.config.grid_ny = spec.grid;
  setup.config.validate();
  setup.activities = power::interleaved_layer_activities(spec.layers,
                                                         spec.imbalance);

  core::CampaignOptions& opt = setup.options;
  opt.contingency.trials = spec.trials;
  opt.contingency.faults_per_trial = spec.faults_per_trial;
  opt.contingency.converter_faults_per_trial =
      spec.converter_faults_per_trial;
  opt.contingency.seed = spec.seed;
  opt.ride_through.transient.duration = spec.duration_s;
  // Same calibrated policy as `vstack_cli campaign` / the service (see
  // docs/fault_model.md): byte-identical merge vs the serial command
  // depends on every one of these matching.
  opt.ride_through.supervisor.trip_fraction = 0.10;
  opt.ride_through.supervisor.recovery_fraction = 0.08;
  opt.ride_through.supervisor.sense_interval = 5e-9;
  opt.ride_through.supervisor.detection_latency = 20e-9;
  opt.ride_through.supervisor.action_dwell = 60e-9;
  opt.ride_through.supervisor.watchdog_timeout = 300e-9;
  opt.fault_time = spec.fault_time_s;
  opt.scenario_timeout_s = spec.scenario_timeout_s;
  opt.max_retries = spec.max_retries;
  opt.retry_tolerance_relax = spec.retry_relax;
  return setup;
}

std::uint64_t job_config_hash(const core::StudyContext& ctx,
                              const JobSpec& spec) {
  const CampaignSetup setup = make_campaign(ctx, spec);
  return core::campaign_config_hash(setup.config, setup.activities,
                                    setup.options);
}

void JobPaths::create_dirs() const {
  fs::create_directories(root);
  fs::create_directories(shards_dir());
  fs::create_directories(leases_dir());
  fs::create_directories(attempts_dir());
  fs::create_directories(done_dir());
  fs::create_directories(quarantine_dir());
}

std::string plan_line(const JobSpec& spec, std::uint64_t config_hash) {
  std::ostringstream oss;
  oss << "{\"kind\":\"vstack-shard-plan\",\"version\":1"
      << ",\"stacked\":" << (spec.stacked ? 1 : 0)
      << ",\"layers\":" << spec.layers << ",\"grid\":" << spec.grid
      << ",\"imbalance\":" << core::fmt_double_17g(spec.imbalance)
      << ",\"trials\":" << spec.trials
      << ",\"faults\":" << spec.faults_per_trial
      << ",\"conv_faults\":" << spec.converter_faults_per_trial
      << ",\"seed\":" << spec.seed
      << ",\"duration\":" << core::fmt_double_17g(spec.duration_s)
      << ",\"fault_time\":" << core::fmt_double_17g(spec.fault_time_s)
      << ",\"timeout\":" << core::fmt_double_17g(spec.scenario_timeout_s)
      << ",\"retries\":" << spec.max_retries
      << ",\"retry_relax\":" << core::fmt_double_17g(spec.retry_relax)
      << ",\"chunk\":" << spec.chunk
      << ",\"max_attempts\":" << spec.max_attempts
      << ",\"lease_expiry\":" << core::fmt_double_17g(spec.lease_expiry_s)
      << ",\"heartbeat\":" << core::fmt_double_17g(spec.heartbeat_s)
      << ",\"config_hash\":\"" << core::hex64(config_hash) << "\"}";
  return oss.str();
}

bool parse_plan_line(const std::string& line, JobSpec& spec,
                     std::uint64_t& config_hash) {
  std::string kind;
  if (!core::json_field(line, "kind", kind) || kind != "vstack-shard-plan") {
    return false;
  }
  std::uint64_t stacked = 0, layers = 0, grid = 0, trials = 0, faults = 0;
  std::uint64_t conv = 0, seed = 0, retries = 0, chunk = 0, attempts = 0;
  if (!core::json_u64(line, "stacked", stacked)) return false;
  if (!core::json_u64(line, "layers", layers)) return false;
  if (!core::json_u64(line, "grid", grid)) return false;
  if (!core::json_double(line, "imbalance", spec.imbalance)) return false;
  if (!core::json_u64(line, "trials", trials)) return false;
  if (!core::json_u64(line, "faults", faults)) return false;
  if (!core::json_u64(line, "conv_faults", conv)) return false;
  if (!core::json_u64(line, "seed", seed)) return false;
  if (!core::json_double(line, "duration", spec.duration_s)) return false;
  if (!core::json_double(line, "fault_time", spec.fault_time_s)) return false;
  if (!core::json_double(line, "timeout", spec.scenario_timeout_s)) {
    return false;
  }
  if (!core::json_u64(line, "retries", retries)) return false;
  if (!core::json_double(line, "retry_relax", spec.retry_relax)) return false;
  if (!core::json_u64(line, "chunk", chunk)) return false;
  if (!core::json_u64(line, "max_attempts", attempts)) return false;
  if (!core::json_double(line, "lease_expiry", spec.lease_expiry_s)) {
    return false;
  }
  if (!core::json_double(line, "heartbeat", spec.heartbeat_s)) return false;
  if (!core::json_hex64(line, "config_hash", config_hash)) return false;
  spec.stacked = stacked != 0;
  spec.layers = layers;
  spec.grid = grid;
  spec.trials = trials;
  spec.faults_per_trial = faults;
  spec.converter_faults_per_trial = conv;
  spec.seed = seed;
  spec.max_retries = retries;
  spec.chunk = chunk;
  spec.max_attempts = attempts;
  return true;
}

void publish_plan(const JobPaths& paths, const JobSpec& spec,
                  std::uint64_t config_hash) {
  paths.create_dirs();
  const std::string want = plan_line(spec, config_hash);
  std::ifstream in(paths.plan());
  if (in) {
    std::string have;
    std::getline(in, have);
    VS_REQUIRE(have == want,
               "job directory '" + paths.root +
                   "' already holds a DIFFERENT job's plan.json; use a "
                   "fresh --job-dir or remove the stale one");
    return;  // resuming the same job
  }
  atomic_write_file(paths.plan(), want + "\n");
}

JobSpec load_plan(const JobPaths& paths, std::uint64_t& config_hash) {
  std::ifstream in(paths.plan());
  VS_REQUIRE(static_cast<bool>(in),
             "no plan.json in job directory '" + paths.root +
                 "' (start the job via the supervisor, or write the plan "
                 "first)");
  std::string line;
  std::getline(in, line);
  JobSpec spec;
  VS_REQUIRE(parse_plan_line(line, spec, config_hash),
             "plan.json in '" + paths.root + "' is not a shard plan");
  spec.validate();
  return spec;
}

}  // namespace vstack::shard
