#include "shard/merge.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>

#include "common/durable_file.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "core/campaign_manifest.h"

namespace vstack::shard {

namespace fs = std::filesystem;

namespace {

/// A scenario line with its timing field removed: wall_seconds is the one
/// field that measures real time instead of simulated physics, and it is
/// (deliberately) serialized last.
std::string mask_wall_seconds(const std::string& line) {
  const auto pos = line.find(",\"wall_seconds\":");
  return pos == std::string::npos ? line : line.substr(0, pos);
}

}  // namespace

std::string MergeReport::summary() const {
  std::ostringstream oss;
  oss << committed << "/" << report.planned << " trials merged from "
      << shard_files << " shard manifests";
  if (duplicates > 0) oss << "; " << duplicates << " duplicate commits deduped";
  if (torn_lines > 0) oss << "; " << torn_lines << " torn lines skipped";
  if (!quarantined_trials.empty()) {
    oss << "; QUARANTINED trials:";
    for (const std::size_t t : quarantined_trials) oss << " " << t;
  }
  if (!missing_trials.empty()) {
    oss << "; MISSING trials:";
    for (const std::size_t t : missing_trials) oss << " " << t;
  }
  oss << "\n" << report.summary();
  return oss.str();
}

MergeReport merge_job(const core::StudyContext& ctx,
                      const std::string& job_dir,
                      const std::string& out_path) {
  const JobPaths paths(job_dir);
  std::uint64_t plan_hash = 0;
  const JobSpec spec = load_plan(paths, plan_hash);
  VS_REQUIRE(job_config_hash(ctx, spec) == plan_hash,
             "merge reconstructs a different campaign than plan.json "
             "describes (config hash mismatch) -- mixed binary versions?");
  // Strict duplicate verification needs bit-reproducible scenarios, which
  // per-scenario wall timeouts break (attempt counts couple to machine
  // speed -- the caveat CampaignOptions::execution documents).
  const bool verify_duplicates = spec.scenario_timeout_s == 0.0;

  MergeReport merge;
  merge.report.planned = spec.trials;
  merge.report.config_hash = plan_hash;

  // Original line bytes + parsed form, keyed by trial index.
  std::map<std::size_t, std::pair<std::string, core::CampaignScenarioResult>>
      trials;

  std::vector<std::string> shard_files;
  if (fs::is_directory(paths.shards_dir())) {
    for (const auto& entry : fs::directory_iterator(paths.shards_dir())) {
      if (entry.path().extension() == ".jsonl") {
        shard_files.push_back(entry.path().string());
      }
    }
  }
  // Sorted name order makes first-occurrence-wins dedup deterministic
  // regardless of directory enumeration order.
  std::sort(shard_files.begin(), shard_files.end());

  for (const std::string& file : shard_files) {
    std::ifstream in(file);
    VS_REQUIRE(static_cast<bool>(in), "cannot read shard manifest '" + file +
                                          "'");
    std::string line;
    if (!std::getline(in, line) || line.empty()) continue;  // stillborn shard
    core::CampaignManifestHeader header;
    VS_REQUIRE(core::parse_campaign_manifest_header(line, header),
               "shard manifest '" + file + "' has an unrecognized header");
    VS_REQUIRE(header.seed == spec.seed && header.trials == spec.trials &&
                   header.config_hash == plan_hash,
               "shard manifest '" + file +
                   "' belongs to a different campaign than plan.json");
    ++merge.shard_files;

    while (std::getline(in, line)) {
      core::CampaignScenarioResult r;
      if (!core::parse_campaign_scenario_line(line, r) ||
          r.index >= spec.trials) {
        ++merge.torn_lines;
        continue;
      }
      const auto [it, inserted] = trials.try_emplace(r.index, line, r);
      if (inserted) continue;
      ++merge.duplicates;
      if (verify_duplicates) {
        // At-least-once execution means duplicates are EXPECTED; divergent
        // duplicates are not -- they mean the same trial produced two
        // different answers, and shipping either one silently would be a
        // correctness lie.
        VS_REQUIRE(mask_wall_seconds(it->second.first) ==
                       mask_wall_seconds(line),
                   "trial " + std::to_string(r.index) +
                       " was committed twice with DIFFERENT results "
                       "(nondeterministic scenario?); refusing to merge");
      }
    }
  }

  // Quarantined chunks contribute their UNCOMMITTED trials (a crash mid-
  // chunk may have committed a prefix before the poison trial struck).
  for (std::size_t c = 0; c < spec.chunk_count(); ++c) {
    if (!fs::exists(paths.quarantine(c))) continue;
    for (std::size_t t = spec.chunk_begin(c); t < spec.chunk_end(c); ++t) {
      if (!trials.count(t)) merge.quarantined_trials.push_back(t);
    }
  }
  for (std::size_t t = 0; t < spec.trials; ++t) {
    if (!trials.count(t) &&
        !std::count(merge.quarantined_trials.begin(),
                    merge.quarantined_trials.end(), t)) {
      merge.missing_trials.push_back(t);
    }
  }

  // Emit: header + original line bytes in trial order, atomically.
  std::ostringstream out;
  out << core::campaign_manifest_header(spec.seed, spec.trials, plan_hash)
      << "\n";
  for (const auto& [index, entry] : trials) {
    out << entry.first << "\n";
    core::accumulate_campaign_result(merge.report, entry.second);
    ++merge.committed;
  }
  merge.report.evaluated = merge.committed;
  // Quarantine is a terminal verdict, not a truncation; only trials nobody
  // resolved at all leave the job "cancelled" in the serial-report sense.
  merge.report.cancelled = !merge.missing_trials.empty();
  // Crash here: the merge is fully computed but never published -- shard
  // manifests are intact, so re-running the merge rebuilds it identically.
  VS_FAILPOINT("merge.before_write");
  atomic_write_file(out_path.empty() ? paths.merged() : out_path, out.str());
  return merge;
}

}  // namespace vstack::shard
