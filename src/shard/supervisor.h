// The shard supervisor: publish a plan, fork/exec a local worker fleet,
// restart crashed workers with per-slot exponential backoff, and merge
// when the fleet drains.
//
// The supervisor is an OPTIONAL convenience -- the protocol is carried
// entirely by the job directory, so workers started by hand (or on other
// machines sharing the filesystem) compose with supervised ones.  The
// supervisor never touches leases or chunks itself; its whole job is
// process lifecycle:
//
//   * A worker that exits 0 finished the job (every chunk resolved) --
//     the slot is retired.
//   * A worker killed by a signal or exiting nonzero crashed -- the slot
//     restarts after a backoff that doubles per consecutive crash (poison
//     chunks crash workers in a tight loop until quarantine kicks in; the
//     backoff keeps that loop from burning CPU).
//   * max_restarts per slot bounds the blast radius of a systematically
//     crashing binary; a slot that exhausts it is abandoned (the rest of
//     the fleet -- and lease expiry -- still drives the job forward).
//
// On stop (SIGINT/SIGTERM mapped through the Deadline token), workers get
// SIGTERM, stop at their next trial boundary, and the supervisor still
// merges the partial job -- same contract as the serial campaign's
// interrupted-with-prefix-intact exit.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/study.h"
#include "shard/job.h"
#include "shard/merge.h"

namespace vstack::shard {

struct SupervisorOptions {
  std::string job_dir;
  std::size_t shards = 2;  // worker process count
  /// argv prefix for workers; "worker --job-dir=... --worker-id=wN
  /// --jobs=N" is appended.  Typically {"/proc/self/exe" resolved}.
  std::vector<std::string> worker_command;
  std::size_t worker_jobs = 1;   // intra-worker parallelism
  double poll_s = 0.2;           // reap/health poll period
  double backoff_s = 0.5;        // initial restart backoff (doubles, cap 16x)
  std::size_t max_restarts = 20; // per slot
  double health_interval_s = 2.0;  // job health.json period; 0 disables
  Deadline stop;

  void validate() const;
};

struct SupervisorReport {
  std::size_t workers_started = 0;    // initial fleet
  std::size_t workers_restarted = 0;  // crash restarts across all slots
  std::size_t failed_slots = 0;       // slots that exhausted max_restarts
  bool interrupted = false;           // stop token fired
  MergeReport merge;
};

/// Publish `spec` into opts.job_dir (or verify a resumed job matches), run
/// the fleet to completion, and merge.  Throws on setup errors; worker
/// crashes are handled, not thrown.
SupervisorReport run_supervised_job(const core::StudyContext& ctx,
                                    const JobSpec& spec,
                                    const SupervisorOptions& opts);

}  // namespace vstack::shard
