#include "shard/supervisor.h"

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <filesystem>
#include <sstream>
#include <thread>
#include <vector>

#include "common/durable_file.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace vstack::shard {

namespace fs = std::filesystem;

namespace {

const telemetry::Counter t_started("shard.workers.started");
const telemetry::Counter t_restarted("shard.workers.restarted");

struct Slot {
  pid_t pid = -1;
  std::string worker_id;
  std::size_t restarts = 0;
  std::size_t consecutive_crashes = 0;
  double next_start_s = 0.0;  // monotonic_seconds gate for backoff
  bool done = false;
  bool failed = false;  // exhausted max_restarts
};

pid_t spawn_worker(const SupervisorOptions& opts, const std::string& id) {
  std::vector<std::string> argv_s = opts.worker_command;
  argv_s.push_back("worker");
  argv_s.push_back("--job-dir=" + opts.job_dir);
  argv_s.push_back("--worker-id=" + id);
  argv_s.push_back("--jobs=" + std::to_string(opts.worker_jobs));
  std::vector<char*> argv;
  argv.reserve(argv_s.size() + 1);
  for (std::string& s : argv_s) argv.push_back(s.data());
  argv.push_back(nullptr);

  const pid_t pid = ::fork();
  VS_REQUIRE(pid >= 0, std::string("fork failed: ") + std::strerror(errno));
  if (pid == 0) {
    ::execv(argv[0], argv.data());
    // execv only returns on failure; stderr is shared with the parent.
    ::perror("shard supervisor: execv");
    ::_exit(127);
  }
  return pid;
}

}  // namespace

void SupervisorOptions::validate() const {
  VS_REQUIRE(!job_dir.empty(), "supervisor needs a job_dir");
  VS_REQUIRE(shards >= 1, "supervisor needs at least one shard");
  VS_REQUIRE(!worker_command.empty() && !worker_command.front().empty(),
             "supervisor needs a worker command");
  VS_REQUIRE(std::isfinite(poll_s) && poll_s > 0.0, "poll_s must be > 0");
  VS_REQUIRE(std::isfinite(backoff_s) && backoff_s > 0.0,
             "backoff_s must be > 0");
}

SupervisorReport run_supervised_job(const core::StudyContext& ctx,
                                    const JobSpec& spec,
                                    const SupervisorOptions& opts) {
  opts.validate();
  const JobPaths paths(opts.job_dir);
  publish_plan(paths, spec, job_config_hash(ctx, spec));

  // A previous fleet killed mid-atomic_write_file leaves orphan
  // `*.tmp.<pid>` files (health, done markers, quarantine records).  Sweep
  // them now, before any worker exists -- with workers live this would race
  // against their in-flight temp files.
  const std::size_t swept = sweep_stale_temp_files(opts.job_dir,
                                                   /*recursive=*/true);
  if (swept > 0) {
    VS_LOG_WARN("shard: swept " << swept
                                << " stale temp file(s) from " << opts.job_dir);
  }

  const std::size_t chunks = spec.chunk_count();
  const auto resolved_chunks = [&] {
    std::size_t done = 0, quarantined = 0;
    for (std::size_t c = 0; c < chunks; ++c) {
      if (fs::exists(paths.done(c))) ++done;
      else if (fs::exists(paths.quarantine(c))) ++quarantined;
    }
    return std::make_pair(done, quarantined);
  };

  SupervisorReport report;
  std::vector<Slot> slots(opts.shards);
  for (std::size_t i = 0; i < slots.size(); ++i) {
    slots[i].worker_id = "w" + std::to_string(i);
    slots[i].pid = spawn_worker(opts, slots[i].worker_id);
    ++report.workers_started;
    t_started.add();
  }

  const auto write_health = [&] {
    const auto [done, quarantined] = resolved_chunks();
    std::size_t live = 0;
    for (const Slot& s : slots) live += s.pid >= 0 ? 1 : 0;
    std::ostringstream oss;
    oss << "{\"kind\":\"vstack-shard-health\",\"chunks\":" << chunks
        << ",\"done\":" << done << ",\"quarantined\":" << quarantined
        << ",\"workers_live\":" << live
        << ",\"workers_restarted\":" << report.workers_restarted
        << ",\"metrics\":" << telemetry::metrics_json() << "}\n";
    // Health snapshots are advisory observability: a full disk or flaky
    // filesystem must not take down a supervisor mid-campaign.  Log and
    // carry on; the next interval retries.
    try {
      VS_FAILPOINT("supervisor.health.write");
      atomic_write_file(paths.health(), oss.str());
    } catch (const std::exception& e) {
      VS_LOG_WARN("shard: health write failed (continuing): " << e.what());
    }
  };

  bool terminated = false;  // SIGTERM already forwarded to the fleet
  double last_health = telemetry::monotonic_seconds();
  write_health();
  for (;;) {
    const double now = telemetry::monotonic_seconds();
    if (opts.stop.expired() && !terminated) {
      report.interrupted = true;
      terminated = true;
      for (const Slot& s : slots) {
        if (s.pid >= 0) ::kill(s.pid, SIGTERM);
      }
    }

    // Reap every exited child.
    for (;;) {
      int status = 0;
      const pid_t pid = ::waitpid(-1, &status, WNOHANG);
      if (pid <= 0) break;
      Slot* slot = nullptr;
      for (Slot& s : slots) {
        if (s.pid == pid) slot = &s;
      }
      if (!slot) continue;  // not ours (shouldn't happen)
      slot->pid = -1;
      const bool clean_exit = WIFEXITED(status) && WEXITSTATUS(status) == 0;
      // Exit 4 is the repo-wide "interrupted by signal" code; after WE sent
      // SIGTERM it is the expected way for a worker to finish.
      const bool stopped =
          terminated && WIFEXITED(status) && WEXITSTATUS(status) == 4;
      if (clean_exit || stopped) {
        slot->done = true;
        slot->consecutive_crashes = 0;
        continue;
      }
      // Crash (signal, _exit(86) poison hook, nonzero): restart with
      // exponential backoff unless the slot is exhausted.
      ++slot->consecutive_crashes;
      if (slot->restarts >= opts.max_restarts) {
        slot->failed = true;
        ++report.failed_slots;
        VS_LOG_ERROR("shard: worker "
                     << slot->worker_id << " exhausted " << opts.max_restarts
                     << " restarts; abandoning the slot");
        continue;
      }
      const double factor =
          static_cast<double>(1u << (slot->consecutive_crashes > 4
                                         ? 4
                                         : slot->consecutive_crashes - 1));
      slot->next_start_s = now + opts.backoff_s * factor;
      VS_LOG_WARN("shard: worker " << slot->worker_id << " died ("
                                   << (WIFSIGNALED(status)
                                           ? "signal " +
                                                 std::to_string(WTERMSIG(status))
                                           : "exit " + std::to_string(
                                                           WEXITSTATUS(status)))
                                   << "); restart in "
                                   << opts.backoff_s * factor << " s");
    }

    // Restart due slots (never after stop: the fleet is draining).
    if (!terminated) {
      for (Slot& s : slots) {
        if (s.pid < 0 && !s.done && !s.failed && now >= s.next_start_s) {
          s.pid = spawn_worker(opts, s.worker_id);
          ++s.restarts;
          ++report.workers_restarted;
          t_restarted.add();
        }
      }
    }

    if (opts.health_interval_s > 0.0 &&
        now - last_health >= opts.health_interval_s) {
      write_health();
      last_health = now;
    }

    // Fleet drained?  (A failed slot's chunks are still reachable by the
    // other slots via lease expiry, so "drained" is purely about pids.)
    bool any_live = false;
    bool any_pending = false;
    for (const Slot& s : slots) {
      any_live = any_live || s.pid >= 0;
      any_pending = any_pending || (!s.done && !s.failed);
    }
    if (!any_live && (terminated || !any_pending)) break;
    if (!any_live && any_pending) {
      // Everything is waiting on backoff; sleep until the earliest gate.
      std::this_thread::sleep_for(std::chrono::duration<double>(opts.poll_s));
      continue;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(opts.poll_s));
  }

  write_health();
  // Crash here: every chunk is resolved but merged.jsonl was never
  // produced -- re-running the supervisor (or `vstack_cli merge`) must
  // complete the job from the shard manifests alone.
  VS_FAILPOINT("supervisor.before_merge");
  report.merge = merge_job(ctx, opts.job_dir);
  return report;
}

}  // namespace vstack::shard
