// Chunk leases: crash-tolerant mutual exclusion between worker processes,
// built on three filesystem atomics (common/durable_file.h):
//
//   claim    = O_EXCL create of leases/chunk-N.lease -- of N racing
//              workers exactly one wins.
//   heartbeat= mtime refresh of every held lease from a background thread;
//              a lease whose mtime is older than lease_expiry_s belongs to
//              a dead (or wedged) worker.
//   reclaim  = rename the expired lease AWAY to a per-claimant unique name
//              (single winner: rename of a missing source fails with
//              ENOENT), unlink it, then re-race the O_EXCL create.  The
//              rename step is what makes reclamation safe when several
//              survivors notice the same expiry at once -- two unlinks
//              could otherwise both "succeed" around a third claim.
//
// The guarantee is intentionally AT-LEAST-ONCE: a worker paused past
// expiry (SIGSTOP, scheduler stall) may keep executing a chunk another
// worker reclaimed.  That is fine -- chunk execution is idempotent and the
// merge dedups committed trials -- so the protocol never needs fencing,
// only single-winner claims.  NOT NFS-safe (O_EXCL + rename atomicity are
// local-filesystem guarantees).
#pragma once

#include <cstddef>
#include <mutex>
#include <set>
#include <string>
#include <thread>

#include "shard/job.h"

namespace vstack::shard {

class LeaseManager {
 public:
  /// `expiry_s` / `heartbeat_s` from the job spec.  The heartbeat thread
  /// starts on first claim and stops in the destructor.
  LeaseManager(JobPaths paths, std::string worker_id, double expiry_s,
               double heartbeat_s);
  ~LeaseManager();

  LeaseManager(const LeaseManager&) = delete;
  LeaseManager& operator=(const LeaseManager&) = delete;

  /// Try to acquire chunk `c`: O_EXCL create, falling back to reclaiming
  /// an expired lease.  Returns false when another worker holds a live
  /// lease (or won the race).
  bool try_claim(std::size_t c);

  /// Drop chunk `c`'s lease.  Only removes the file when it still carries
  /// this worker's claim line (a reclaimed-and-reissued lease belongs to
  /// someone else and is left alone).
  void release(std::size_t c);

  /// Leases currently held by this manager.
  std::size_t held() const;

 private:
  void heartbeat_loop();
  void release_path(std::size_t c);
  std::string claim_content() const;

  JobPaths paths_;
  std::string worker_id_;
  double expiry_s_;
  double heartbeat_s_;

  mutable std::mutex mu_;
  std::set<std::size_t> held_;
  std::thread heartbeat_;
  bool stop_ = false;  // guarded by mu_
};

}  // namespace vstack::shard
