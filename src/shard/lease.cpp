#include "shard/lease.h"

#include <unistd.h>

#include <chrono>
#include <condition_variable>
#include <fstream>
#include <sstream>

#include "common/durable_file.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "telemetry/telemetry.h"

namespace vstack::shard {

namespace {

const telemetry::Counter t_acquired("shard.leases.acquired");
const telemetry::Counter t_reclaimed("shard.leases.reclaimed");
const telemetry::Counter t_heartbeats("shard.heartbeats");

// The heartbeat thread sleeps on this so the destructor can wake it
// immediately instead of waiting out a full period.
std::condition_variable_any g_wake;

}  // namespace

LeaseManager::LeaseManager(JobPaths paths, std::string worker_id,
                           double expiry_s, double heartbeat_s)
    : paths_(std::move(paths)),
      worker_id_(std::move(worker_id)),
      expiry_s_(expiry_s),
      heartbeat_s_(heartbeat_s) {}

LeaseManager::~LeaseManager() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  g_wake.notify_all();
  if (heartbeat_.joinable()) heartbeat_.join();
  // Leases for chunks the caller never released (early exit) are dropped
  // here so survivors need not wait out the expiry.
  std::set<std::size_t> held;
  {
    std::lock_guard<std::mutex> lock(mu_);
    held.swap(held_);
  }
  for (const std::size_t c : held) {
    try {
      release_path(c);
    } catch (...) {
      // Destructor: leave the lease for expiry-based reclamation.
    }
  }
}

std::string LeaseManager::claim_content() const {
  std::ostringstream oss;
  oss << "{\"worker\":\"" << worker_id_ << "\",\"pid\":" << ::getpid()
      << "}\n";
  return oss.str();
}

bool LeaseManager::try_claim(std::size_t c) {
  const std::string path = paths_.lease(c);
  VS_FAILPOINT("lease.claim.before_create");
  if (!create_exclusive_file(path, claim_content())) {
    // Held by someone -- alive, or dead past expiry?
    double age = 0.0;
    if (!file_age_seconds(path, age)) {
      // Released between our create and stat; re-race once.
      if (!create_exclusive_file(path, claim_content())) return false;
    } else if (age <= expiry_s_) {
      return false;  // live lease
    } else {
      // Expired: rename it away (single winner among reclaimers), drop it,
      // then re-race the create -- a THIRD worker may slip in, which is
      // fine, the claim stays single-winner.
      const std::string tomb = path + ".reclaim." + worker_id_ + "." +
                               std::to_string(::getpid());
      // Crash here: the expired lease is still in place, any worker can
      // still reclaim it.
      VS_FAILPOINT("lease.claim.before_rename");
      if (!try_rename(path, tomb)) return false;  // someone beat us to it
      // Crash here: the tombstone exists but was never removed -- it must
      // not block the chunk (it has a different name than the lease).
      VS_FAILPOINT("lease.claim.after_rename");
      remove_file(tomb);
      t_reclaimed.add();
      VS_LOG_WARN("shard: " << worker_id_ << " reclaimed expired lease for "
                            << "chunk " << c << " (age " << age << " s)");
      if (!create_exclusive_file(path, claim_content())) return false;
    }
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    held_.insert(c);
    if (!heartbeat_.joinable()) {
      heartbeat_ = std::thread([this] { heartbeat_loop(); });
    }
  }
  // Crash here: the lease is ours on disk but the worker dies before doing
  // any work -- survivors must reclaim it after expiry.
  VS_FAILPOINT("lease.claim.after_claim");
  t_acquired.add();
  return true;
}

void LeaseManager::release(std::size_t c) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    held_.erase(c);
  }
  release_path(c);
}

void LeaseManager::release_path(std::size_t c) {
  // Only unlink a lease that still carries OUR claim line: after a pause
  // past expiry it may have been reclaimed and reissued to another worker.
  // The read-then-unlink window is benign -- worst case we delete a lease
  // reissued in between, which just re-opens the chunk for claiming, and
  // the merge dedups any double execution.
  const std::string path = paths_.lease(c);
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  std::getline(in, line);
  in.close();
  if (line + "\n" != claim_content()) return;
  // Crash here: chunk committed but lease never released -- survivors wait
  // out the expiry, reclaim, and the merge dedups the re-execution.
  VS_FAILPOINT("lease.release.before_unlink");
  remove_file(path);
}

std::size_t LeaseManager::held() const {
  std::lock_guard<std::mutex> lock(mu_);
  return held_.size();
}

void LeaseManager::heartbeat_loop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    g_wake.wait_for(lock, std::chrono::duration<double>(heartbeat_s_),
                    [this] { return stop_; });
    if (stop_) break;
    const std::set<std::size_t> held = held_;
    lock.unlock();
    for (const std::size_t c : held) {
      // false (vanished) means the lease was reclaimed out from under a
      // stalled heartbeat; the executor keeps going regardless -- dedup at
      // merge absorbs the duplicate commit.  A transient I/O error is the
      // same story with worse luck -- and an exception escaping this thread
      // would std::terminate the whole worker, so log and carry on; a
      // persistently un-touchable lease just expires and gets reclaimed.
      try {
        if (touch_file(paths_.lease(c))) t_heartbeats.add();
      } catch (const std::exception& e) {
        VS_LOG_WARN("shard: " << worker_id_ << " heartbeat for chunk " << c
                              << " failed (continuing): " << e.what());
      }
    }
    lock.lock();
  }
}

}  // namespace vstack::shard
