// One shard worker: claim chunks, execute their trials, commit results to
// a private per-worker manifest, and mark chunks done -- repeatedly, until
// every chunk in the job is resolved (done or quarantined) or the stop
// token fires.
//
// Crash-tolerance contract (the reason this loop is shaped the way it is):
//
//   * An ATTEMPT record is durably appended BEFORE a chunk executes, so a
//     worker that dies mid-chunk leaves evidence.  A chunk whose attempt
//     trail reaches max_attempts without a done marker is POISON -- some
//     scenario in it keeps killing workers -- and is quarantined with a
//     diagnostic instead of executed, so one bad trial cannot crash-loop
//     the fleet forever.
//   * Scenario results append to shards/<worker>.jsonl through the same
//     durable, torn-tail-repairing appender the serial campaign uses: a
//     kill -9 loses at most the in-flight line, and a RESTARTED worker
//     reusing the id keeps appending safely after the fragment.
//   * The done marker is written atomically AFTER every trial of the chunk
//     committed; execution is therefore at-least-once, and the merge's
//     per-trial dedup makes commits exactly-once.
#pragma once

#include <cstddef>
#include <string>

#include "common/deadline.h"
#include "core/study.h"
#include "shard/job.h"

namespace vstack::shard {

struct WorkerOptions {
  std::string job_dir;
  std::string worker_id;  // e.g. "w0"; also the shard manifest name
  std::size_t jobs = 1;   // intra-chunk parallelism (core::TaskPool)
  Deadline stop;          // graceful stop at the next trial boundary
};

struct WorkerReport {
  std::size_t chunks_completed = 0;
  std::size_t chunks_quarantined = 0;  // quarantined BY this worker
  std::size_t trials_evaluated = 0;
  bool stopped_early = false;  // stop token fired before the job resolved
};

/// Run the worker loop against an existing job directory (plan.json must
/// be present; the config hash is re-derived and must match).  Returns
/// when every chunk is resolved or `stop` fires.  Test hook: when the
/// environment variable VSTACK_SHARD_CRASH_TRIAL names a trial index, the
/// worker _exit(86)s upon reaching it -- AFTER recording the attempt --
/// which is how the chaos suite manufactures poison scenarios.
WorkerReport run_worker(const core::StudyContext& ctx,
                        const WorkerOptions& opts);

}  // namespace vstack::shard
