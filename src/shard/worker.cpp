#include "shard/worker.h"

#include <sys/resource.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/durable_file.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "core/campaign_manifest.h"
#include "core/task_pool.h"
#include "shard/lease.h"
#include "telemetry/telemetry.h"

namespace vstack::shard {

namespace fs = std::filesystem;

namespace {

const telemetry::Counter t_chunks_done("shard.chunks.completed");
const telemetry::Counter t_chunks_quarantined("shard.chunks.quarantined");
const telemetry::Counter t_trials("shard.trials.evaluated");

/// Trial index that kills the process (test hook for the chaos suite);
/// SIZE_MAX when unset.
std::size_t crash_trial_from_env() {
  const char* env = std::getenv("VSTACK_SHARD_CRASH_TRIAL");
  if (!env || !*env) return static_cast<std::size_t>(-1);
  return static_cast<std::size_t>(std::strtoull(env, nullptr, 10));
}

/// Numeric suffix of "w<id>" for log tagging; -1 when unparseable.
int numeric_worker_id(const std::string& worker_id) {
  const auto digits = worker_id.find_first_of("0123456789");
  if (digits == std::string::npos) return -1;
  return static_cast<int>(std::strtol(worker_id.c_str() + digits, nullptr, 10));
}

void sleep_interruptible(double seconds, const Deadline& stop) {
  const double slice = 0.05;
  double remaining = seconds;
  while (remaining > 0.0 && !stop.expired()) {
    std::this_thread::sleep_for(
        std::chrono::duration<double>(remaining < slice ? remaining : slice));
    remaining -= slice;
  }
}

/// Completed attempt records for a chunk (torn lines skipped, like every
/// JSONL reader here).
std::vector<std::string> read_attempts(const std::string& path) {
  std::vector<std::string> out;
  std::ifstream in(path);
  if (!in) return out;
  std::string line;
  while (std::getline(in, line)) {
    std::string worker;
    if (core::json_field(line, "worker", worker)) out.push_back(line);
  }
  return out;
}

std::string attempt_line(const std::string& worker_id, std::size_t seq) {
  std::ostringstream oss;
  oss << "{\"worker\":\"" << worker_id << "\",\"pid\":" << ::getpid()
      << ",\"seq\":" << seq << "}";
  return oss.str();
}

/// Quarantine diagnostic: who gave up, after how many attempts, with the
/// full attempt trail inlined so a postmortem needs only this one file.
std::string quarantine_record(const JobSpec& spec, std::size_t c,
                              const std::string& worker_id,
                              const std::vector<std::string>& trail) {
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  std::ostringstream oss;
  oss << "{\"chunk\":" << c << ",\"trial_begin\":" << spec.chunk_begin(c)
      << ",\"trial_end\":" << spec.chunk_end(c)
      << ",\"attempts\":" << trail.size() << ",\"quarantined_by\":\""
      << worker_id << "\",\"pid\":" << ::getpid()
      << ",\"max_rss_kb\":" << ru.ru_maxrss << ",\"trail\":[";
  for (std::size_t i = 0; i < trail.size(); ++i) {
    if (i > 0) oss << ",";
    oss << trail[i];
  }
  oss << "]}";
  return oss.str();
}

}  // namespace

WorkerReport run_worker(const core::StudyContext& ctx,
                        const WorkerOptions& opts) {
  VS_REQUIRE(!opts.worker_id.empty(), "worker needs a --worker-id");
  const JobPaths paths(opts.job_dir);
  std::uint64_t plan_hash = 0;
  const JobSpec spec = load_plan(paths, plan_hash);
  const CampaignSetup setup = make_campaign(ctx, spec);
  const std::uint64_t local_hash = core::campaign_config_hash(
      setup.config, setup.activities, setup.options);
  // Drift guard: a worker binary that reconstructs a different campaign
  // from the same spec (changed defaults, changed policy constants) would
  // silently poison the merge; refuse instead.
  VS_REQUIRE(local_hash == plan_hash,
             "this worker reconstructs a different campaign than plan.json "
             "describes (config hash mismatch) -- mixed binary versions?");

  set_log_worker_id(numeric_worker_id(opts.worker_id));
  const std::size_t crash_trial = crash_trial_from_env();

  const core::CampaignRunner runner(ctx, setup.config);
  const auto scenario_plan = runner.plan(setup.activities, setup.options);
  VS_REQUIRE(scenario_plan.size() == spec.trials,
             "scenario plan size does not match the job's trial count");

  core::CampaignOptions exec_options = setup.options;
  exec_options.execution.deadline = opts.stop;

  // Per-worker shard manifest: same header + line format as the serial
  // manifest.  The header is published atomically (exactly like the serial
  // runner's) and appends repair a torn tail from a previous incarnation
  // of this worker id.
  const std::string manifest_path = paths.shard_manifest(opts.worker_id);
  if (!fs::exists(manifest_path) || fs::file_size(manifest_path) == 0) {
    atomic_write_file(manifest_path,
                      core::campaign_manifest_header(
                          spec.seed, spec.trials, plan_hash) +
                          "\n");
    // Crash here: the header is durable but no scenario line follows --
    // the next incarnation must reopen and append, not rewrite.
    VS_FAILPOINT("worker.manifest.after_header");
  }
  DurableAppender manifest;
  manifest.open(manifest_path, /*repair_torn_tail=*/true);

  LeaseManager leases(paths, opts.worker_id, spec.lease_expiry_s,
                      spec.heartbeat_s);

  WorkerReport report;
  const std::size_t chunks = spec.chunk_count();
  for (;;) {
    if (opts.stop.expired()) {
      report.stopped_early = true;
      break;
    }
    bool all_resolved = true;
    bool progress = false;
    for (std::size_t c = 0; c < chunks && !opts.stop.expired(); ++c) {
      if (fs::exists(paths.done(c)) || fs::exists(paths.quarantine(c))) {
        continue;
      }
      all_resolved = false;
      if (!leases.try_claim(c)) continue;

      // Re-check under the lease: another worker may have finished the
      // chunk between our existence check and the claim.
      if (fs::exists(paths.done(c)) || fs::exists(paths.quarantine(c))) {
        leases.release(c);
        progress = true;
        continue;
      }

      std::vector<std::string> trail = read_attempts(paths.attempts(c));
      if (trail.size() >= spec.max_attempts) {
        // Poison: this chunk has eaten max_attempts workers without a
        // done marker.  Quarantine it (atomically -- partial diagnostics
        // help nobody) instead of becoming victim N+1.
        atomic_write_file(paths.quarantine(c),
                          quarantine_record(spec, c, opts.worker_id, trail) +
                              "\n");
        leases.release(c);
        ++report.chunks_quarantined;
        t_chunks_quarantined.add();
        VS_LOG_WARN("shard: quarantined chunk "
                    << c << " (trials [" << spec.chunk_begin(c) << ","
                    << spec.chunk_end(c) << ")) after " << trail.size()
                    << " attempts");
        progress = true;
        continue;
      }

      // Record the attempt BEFORE executing: a crash mid-chunk must leave
      // evidence, or the poison count never grows and the fleet loops.
      {
        DurableAppender attempts;
        attempts.open(paths.attempts(c), /*repair_torn_tail=*/true);
        attempts.append_line(attempt_line(opts.worker_id, trail.size() + 1));
      }
      // Crash here: the attempt record exists but no work happened -- the
      // poison count must still grow toward quarantine.
      VS_FAILPOINT("worker.attempt.after_append");

      const std::size_t begin = spec.chunk_begin(c);
      const std::size_t end = spec.chunk_end(c);
      std::vector<core::CampaignScenarioResult> results(end - begin);
      core::ExecutionPolicy policy;
      policy.jobs = opts.jobs;
      policy.deadline = opts.stop;
      const core::TaskPool pool(policy);
      bool truncated = false;
      pool.run_ordered(
          end - begin,
          [&](std::size_t i) {
            const std::size_t trial = begin + i;
            if (trial == crash_trial) ::_exit(86);  // chaos-test hook
            results[i] = runner.run_scenario(scenario_plan[trial],
                                             setup.activities, exec_options);
          },
          [&](std::size_t i) {
            // Same contiguous-commit rule as the serial runner: a
            // deadline-truncated result (and everything after it) is
            // dropped, never serialized, so shard manifests only hold
            // trials that ran to a real verdict.
            if (truncated || results[i].deadline_truncated) {
              truncated = true;
              return;
            }
            manifest.append_line(core::campaign_scenario_line(results[i]));
            ++report.trials_evaluated;
            t_trials.add();
          });

      if (truncated || opts.stop.expired()) {
        // Stop fired mid-chunk: no done marker -- the chunk stays claimable
        // and a survivor (or our next incarnation) re-runs it.
        leases.release(c);
        report.stopped_early = true;
        break;
      }

      // Crash here: every trial of the chunk is committed in the shard
      // manifest but there is no done marker -- the chunk gets re-executed
      // and the merge dedups the identical duplicate lines.
      VS_FAILPOINT("worker.chunk.before_done");
      std::ostringstream done;
      done << "{\"chunk\":" << c << ",\"worker\":\"" << opts.worker_id
           << "\",\"trials\":" << (end - begin) << "}\n";
      atomic_write_file(paths.done(c), done.str());
      // Crash here: done marker durable, lease still held -- survivors skip
      // the chunk, the stale lease just expires.
      VS_FAILPOINT("worker.chunk.after_done");
      leases.release(c);
      ++report.chunks_completed;
      t_chunks_done.add();
      progress = true;
    }
    if (report.stopped_early || all_resolved) break;
    if (!progress) {
      // Every unresolved chunk is leased by someone else: wait for them to
      // finish or for their leases to expire.
      sleep_interruptible(spec.heartbeat_s, opts.stop);
    }
  }
  if (opts.stop.expired()) report.stopped_early = true;
  manifest.close();
  set_log_worker_id(-1);
  return report;
}

}  // namespace vstack::shard
