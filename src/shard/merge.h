// Deterministic shard merge: fold shards/*.jsonl back into ONE campaign
// manifest plus the same aggregate report a serial run would produce.
//
// Determinism argument, piece by piece:
//
//   * Every shard line was serialized by core::campaign_scenario_line, the
//     exact serializer the serial runner uses, and the merge re-emits the
//     ORIGINAL line bytes -- no reformat, no reparse-then-print.
//   * Lines are keyed by trial index and emitted in index order, which is
//     the serial manifest's order by construction.
//   * Duplicate commits of a trial (at-least-once execution) are resolved
//     first-occurrence-wins with shard files visited in sorted name order;
//     when the job ran without per-scenario timeouts the duplicates are
//     also VERIFIED byte-identical modulo wall_seconds -- a mismatch means
//     real nondeterminism and aborts the merge rather than shipping a
//     silently arbitrary answer.  (With timeouts enabled, attempt counts
//     are machine-speed-coupled, so duplicates are resolved without the
//     strict check -- the same caveat the serial runner documents.)
//
// Hence: merged.jsonl == the serial run's manifest, byte for byte, except
// each line's wall_seconds (real time) and any quarantined/missing trials.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/study.h"
#include "shard/job.h"

namespace vstack::shard {

struct MergeReport {
  core::CampaignReport report;  // aggregates over committed trials

  std::size_t shard_files = 0;
  std::size_t committed = 0;     // unique trials merged
  std::size_t duplicates = 0;    // extra commits dropped by dedup
  std::size_t torn_lines = 0;    // unparseable lines skipped
  std::vector<std::size_t> quarantined_trials;
  std::vector<std::size_t> missing_trials;  // neither committed nor quarantined

  /// Every trial accounted for (committed or quarantined) and none poisoned.
  bool clean() const {
    return missing_trials.empty() && quarantined_trials.empty();
  }

  std::string summary() const;
};

/// Merge a job directory's shard manifests into `out_path` (default
/// <job_dir>/merged.jsonl, written atomically).  Throws on header/config
/// mismatches and on verified-duplicate divergence; missing or quarantined
/// trials are REPORTED, not thrown -- the caller decides the exit code.
MergeReport merge_job(const core::StudyContext& ctx,
                      const std::string& job_dir,
                      const std::string& out_path = "");

}  // namespace vstack::shard
