// Shard job descriptions: the shared contract between the supervisor, the
// worker fleet, and the merge step.
//
// A "job" is one campaign split into fixed chunks of trial indices, run by
// N independent worker PROCESSES against a shared job directory:
//
//   <job_dir>/plan.json            the job spec + config hash (atomic file)
//   <job_dir>/shards/<w>.jsonl     per-worker campaign manifests (the exact
//                                  line format of core/campaign_manifest.h)
//   <job_dir>/leases/chunk-N.lease exclusive claim files (mtime = heartbeat)
//   <job_dir>/attempts/chunk-N.jsonl  durable attempt trail per chunk
//   <job_dir>/done/chunk-N.json    commit markers (atomic)
//   <job_dir>/quarantine/chunk-N.json  poison-chunk diagnostics (atomic)
//   <job_dir>/merged.jsonl         merge output (atomic)
//   <job_dir>/health.json          supervisor heartbeat snapshot
//
// The spec is deliberately FLAT (no nested config files): every field a
// worker needs to reconstruct the campaign bit-identically travels in
// plan.json, and the config hash (core::campaign_config_hash over the
// reconstructed campaign) guards against drift -- a worker whose binary
// reconstructs a different campaign refuses to run rather than silently
// polluting the shard manifests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/campaign.h"
#include "core/study.h"

namespace vstack::shard {

struct JobSpec {
  // Network shape (mirrors the service's resolve_config).
  bool stacked = true;
  std::size_t layers = 8;
  std::size_t grid = 16;
  double imbalance = 0.8;

  // Monte Carlo shape (mirrors `vstack_cli campaign`).
  std::size_t trials = 8;
  std::size_t faults_per_trial = 2;
  std::size_t converter_faults_per_trial = 32;  // stacked ? 32 : 0 upstream
  std::uint64_t seed = 42;

  // Transient replay knobs.
  double duration_s = 400e-9;
  double fault_time_s = 50e-9;
  double scenario_timeout_s = 0.0;  // 0 keeps shards bit-reproducible
  std::size_t max_retries = 1;
  double retry_relax = 10.0;

  // Sharding knobs.
  std::size_t chunk = 1;          // trials per lease; 1 = finest quarantine
  std::size_t max_attempts = 3;   // attempts before a chunk is quarantined
  double lease_expiry_s = 30.0;   // heartbeat silence before reclamation
  double heartbeat_s = 1.0;       // lease mtime refresh period

  void validate() const;

  std::size_t chunk_count() const;
  /// Chunk c covers trials [chunk_begin(c), chunk_end(c)).
  std::size_t chunk_begin(std::size_t c) const { return c * chunk; }
  std::size_t chunk_end(std::size_t c) const;
  /// The chunk owning trial t.
  std::size_t chunk_of(std::size_t trial) const { return trial / chunk; }
};

/// Everything CampaignRunner needs, reconstructed from the spec exactly the
/// way `vstack_cli campaign` builds it -- same supervisor policy, same
/// defaults -- so a shard fleet's merged manifest is byte-identical to the
/// serial command's.
struct CampaignSetup {
  pdn::StackupConfig config;
  std::vector<double> activities;
  core::CampaignOptions options;
};

CampaignSetup make_campaign(const core::StudyContext& ctx,
                            const JobSpec& spec);

/// core::campaign_config_hash of the reconstructed campaign: the identity
/// stored in plan.json and verified by every worker and the merge.
std::uint64_t job_config_hash(const core::StudyContext& ctx,
                              const JobSpec& spec);

// ---------------------------------------------------------------------------
// Job directory layout.

struct JobPaths {
  std::string root;

  explicit JobPaths(std::string root_dir) : root(std::move(root_dir)) {}

  std::string plan() const { return root + "/plan.json"; }
  std::string shards_dir() const { return root + "/shards"; }
  std::string leases_dir() const { return root + "/leases"; }
  std::string attempts_dir() const { return root + "/attempts"; }
  std::string done_dir() const { return root + "/done"; }
  std::string quarantine_dir() const { return root + "/quarantine"; }

  std::string shard_manifest(const std::string& worker_id) const {
    return shards_dir() + "/" + worker_id + ".jsonl";
  }
  std::string lease(std::size_t c) const {
    return leases_dir() + "/chunk-" + std::to_string(c) + ".lease";
  }
  std::string attempts(std::size_t c) const {
    return attempts_dir() + "/chunk-" + std::to_string(c) + ".jsonl";
  }
  std::string done(std::size_t c) const {
    return done_dir() + "/chunk-" + std::to_string(c) + ".json";
  }
  std::string quarantine(std::size_t c) const {
    return quarantine_dir() + "/chunk-" + std::to_string(c) + ".json";
  }
  std::string merged() const { return root + "/merged.jsonl"; }
  std::string health() const { return root + "/health.json"; }

  /// mkdir -p the whole layout (idempotent).
  void create_dirs() const;
};

// ---------------------------------------------------------------------------
// plan.json: one flat JSON line, written atomically.

std::string plan_line(const JobSpec& spec, std::uint64_t config_hash);
bool parse_plan_line(const std::string& line, JobSpec& spec,
                     std::uint64_t& config_hash);

/// Write plan.json if absent; when one already exists (a resumed job), it
/// must describe the SAME job (field-for-field + config hash) or this
/// throws -- reusing a job directory across different campaigns is the
/// unrecoverable operator error this guards.
void publish_plan(const JobPaths& paths, const JobSpec& spec,
                  std::uint64_t config_hash);

/// Load + parse plan.json; throws when missing or malformed.
JobSpec load_plan(const JobPaths& paths, std::uint64_t& config_hash);

}  // namespace vstack::shard
