#include "circuit/spice_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.h"

namespace vstack::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Strip comments (anything after ';' or a leading '*') and whitespace.
std::string clean_line(const std::string& raw) {
  std::string line = raw;
  const auto semi = line.find(';');
  if (semi != std::string::npos) line.erase(semi);
  // Trim.
  const auto first = line.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = line.find_last_not_of(" \t\r");
  line = line.substr(first, last - first + 1);
  if (!line.empty() && line.front() == '*') return "";
  return line;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream iss(line);
  std::string tok;
  while (iss >> tok) tokens.push_back(tok);
  return tokens;
}

/// Parse-state shared by the card handlers: source location for messages,
/// plus the already-seen element names for duplicate rejection.
struct ParseContext {
  const std::string& source_name;
  std::size_t line_no = 0;
  std::set<std::string> element_names;

  [[noreturn]] void fail(const std::string& message) const {
    VS_FAIL(source_name + ":" + std::to_string(line_no) + ": " + message);
  }

  double value(const std::string& token, const char* what) const {
    try {
      return parse_spice_value(token);
    } catch (const Error& e) {
      fail(std::string(what) + ": " + e.what());
    }
  }

  double positive(const std::string& token, const char* what) const {
    const double v = value(token, what);
    if (v <= 0.0) {
      fail(std::string(what) + " must be positive, got '" + token + "'");
    }
    return v;
  }

  void claim_name(const std::string& name) {
    if (!element_names.insert(lower(name)).second) {
      fail("duplicate element name '" + name + "'");
    }
  }
};

/// KEY=VALUE parameter, case-insensitive key.
bool parse_param(const ParseContext& ctx, const std::string& token,
                 const std::string& key, double* out) {
  const auto eq = token.find('=');
  if (eq == std::string::npos) return false;
  if (lower(token.substr(0, eq)) != key) return false;
  *out = ctx.value(token.substr(eq + 1), key.c_str());
  return true;
}

}  // namespace

double parse_spice_value(const std::string& token) {
  VS_REQUIRE(!token.empty(), "empty numeric token");
  std::size_t consumed = 0;
  double value = 0.0;
  try {
    value = std::stod(token, &consumed);
  } catch (const std::exception&) {
    VS_FAIL("malformed numeric value '" + token + "'");
  }
  VS_REQUIRE(std::isfinite(value),
             "non-finite numeric value '" + token + "'");
  const std::string suffix = lower(token.substr(consumed));
  if (suffix.empty()) return value;
  if (suffix.rfind("meg", 0) == 0) return value * 1e6;
  switch (suffix.front()) {
    case 'f': return value * 1e-15;
    case 'p': return value * 1e-12;
    case 'n': return value * 1e-9;
    case 'u': return value * 1e-6;
    case 'm': return value * 1e-3;
    case 'k': return value * 1e3;
    case 'g': return value * 1e9;
    case 't': return value * 1e12;
    default:
      VS_FAIL("unknown value suffix '" + suffix + "' in '" + token + "'");
  }
}

ParsedCircuit parse_spice(const std::string& text,
                          const std::string& source_name) {
  ParsedCircuit out;
  ParseContext ctx{source_name};

  const auto node_of = [&out](const std::string& name) -> NodeId {
    const std::string key = lower(name);
    if (key == "0" || key == "gnd") return kGround;
    const auto it = out.node_by_name.find(key);
    if (it != out.node_by_name.end()) return it->second;
    const NodeId id = out.netlist.create_node(key);
    out.node_by_name.emplace(key, id);
    return id;
  };

  std::istringstream stream(text);
  std::string raw;
  bool ended = false;
  bool have_clock = false;
  while (std::getline(stream, raw)) {
    ++ctx.line_no;
    const std::string line = clean_line(raw);
    if (line.empty()) continue;
    if (ended) ctx.fail("content after .end");
    const auto tokens = tokenize(line);
    const std::string head = lower(tokens.front());

    if (head.front() == '.') {
      if (head == ".title") {
        const auto pos = line.find_first_of(" \t");
        out.title = (pos == std::string::npos)
                        ? ""
                        : line.substr(line.find_first_not_of(" \t", pos));
      } else if (head == ".clock") {
        if (have_clock) ctx.fail("duplicate .clock directive");
        if (tokens.size() != 2) ctx.fail(".clock needs one value");
        out.clock_period = ctx.positive(tokens[1], ".clock period");
        have_clock = true;
      } else if (head == ".tran") {
        if (out.has_tran) ctx.fail("duplicate .tran directive");
        if (tokens.size() < 3) ctx.fail(".tran needs step and stop");
        out.has_tran = true;
        out.tran.time_step = ctx.positive(tokens[1], ".tran step");
        out.tran.stop_time = ctx.positive(tokens[2], ".tran stop");
        if (out.tran.stop_time <= out.tran.time_step) {
          ctx.fail(".tran stop '" + tokens[2] +
                   "' must exceed the step '" + tokens[1] + "'");
        }
        for (std::size_t k = 3; k < tokens.size(); ++k) {
          const std::string flag = lower(tokens[k]);
          if (flag == "dc") {
            out.tran.start_from_dc = true;
          } else if (flag == "adaptive") {
            out.tran.mode = SteppingMode::Adaptive;
          } else {
            ctx.fail("unknown .tran flag '" + tokens[k] +
                     "' (expected DC or ADAPTIVE)");
          }
        }
      } else if (head == ".end") {
        ended = true;
      } else {
        ctx.fail("unknown directive '" + head + "'");
      }
      continue;
    }

    ctx.claim_name(tokens.front());
    switch (head.front()) {
      case 'r': {
        if (tokens.size() != 4) ctx.fail("R card: R<name> a b value");
        out.netlist.add_resistor(node_of(tokens[1]), node_of(tokens[2]),
                                 ctx.positive(tokens[3], "resistance"));
        break;
      }
      case 'c': {
        if (tokens.size() < 4 || tokens.size() > 5) {
          ctx.fail("C card: C<name> a b value [IC=v0]");
        }
        double ic = 0.0;
        if (tokens.size() == 5 && !parse_param(ctx, tokens[4], "ic", &ic)) {
          ctx.fail("expected IC=<v0>, got '" + tokens[4] + "'");
        }
        out.netlist.add_capacitor(node_of(tokens[1]), node_of(tokens[2]),
                                  ctx.positive(tokens[3], "capacitance"),
                                  ic);
        break;
      }
      case 'v': {
        if (tokens.size() != 4) ctx.fail("V card: V<name> n+ n- value");
        out.netlist.add_voltage_source(node_of(tokens[1]),
                                       node_of(tokens[2]),
                                       ctx.value(tokens[3], "voltage"));
        break;
      }
      case 'i': {
        if (tokens.size() != 4) {
          ctx.fail("I card: I<name> from to value");
        }
        out.netlist.add_current_source(node_of(tokens[1]),
                                       node_of(tokens[2]),
                                       ctx.value(tokens[3], "current"));
        break;
      }
      case 's': {
        if (tokens.size() != 7) {
          ctx.fail("S card: S<name> a b Ron Roff PHASE=<off> DUTY=<duty>");
        }
        const double ron = ctx.positive(tokens[3], "on resistance");
        const double roff = ctx.positive(tokens[4], "off resistance");
        if (roff < ron) {
          ctx.fail("off resistance '" + tokens[4] +
                   "' must be >= on resistance '" + tokens[3] + "'");
        }
        double phase = 0.0, duty = 0.5;
        if (!parse_param(ctx, tokens[5], "phase", &phase)) {
          ctx.fail("expected PHASE=<offset>, got '" + tokens[5] + "'");
        }
        if (!parse_param(ctx, tokens[6], "duty", &duty)) {
          ctx.fail("expected DUTY=<duty>, got '" + tokens[6] + "'");
        }
        if (phase < 0.0 || phase >= 1.0) {
          ctx.fail("PHASE offset '" + tokens[5] +
                   "' must lie in [0, 1) (fraction of the clock period)");
        }
        if (duty < 0.0 || duty > 1.0) {
          ctx.fail("DUTY '" + tokens[6] + "' must lie in [0, 1]");
        }
        out.netlist.add_switch(node_of(tokens[1]), node_of(tokens[2]), ron,
                               roff, ClockPhase{phase, duty});
        break;
      }
      default:
        ctx.fail("unknown element card '" + tokens.front() + "'");
    }
  }
  return out;
}

std::string write_spice(const ParsedCircuit& circuit) {
  std::ostringstream oss;
  if (!circuit.title.empty()) oss << ".title " << circuit.title << "\n";

  const auto& net = circuit.netlist;
  const auto name = [&net](NodeId node) -> std::string {
    return node == kGround ? "0" : net.node_name(node);
  };

  std::size_t idx = 0;
  for (const auto& v : net.voltage_sources()) {
    oss << "V" << ++idx << " " << name(v.positive) << " " << name(v.negative)
        << " " << v.voltage << "\n";
  }
  idx = 0;
  for (const auto& r : net.resistors()) {
    oss << "R" << ++idx << " " << name(r.a) << " " << name(r.b) << " "
        << r.resistance << "\n";
  }
  idx = 0;
  for (const auto& c : net.capacitors()) {
    oss << "C" << ++idx << " " << name(c.a) << " " << name(c.b) << " "
        << c.capacitance << " IC=" << c.initial_voltage << "\n";
  }
  idx = 0;
  for (const auto& s : net.switches()) {
    oss << "S" << ++idx << " " << name(s.a) << " " << name(s.b) << " "
        << s.on_resistance << " " << s.off_resistance
        << " PHASE=" << s.phase.phase_offset << " DUTY=" << s.phase.duty
        << "\n";
  }
  idx = 0;
  for (const auto& i : net.current_sources()) {
    oss << "I" << ++idx << " " << name(i.from_node) << " " << name(i.to_node)
        << " " << i.current << "\n";
  }

  oss << ".clock " << circuit.clock_period << "\n";
  if (circuit.has_tran) {
    oss << ".tran " << circuit.tran.time_step << " "
        << circuit.tran.stop_time;
    if (circuit.tran.start_from_dc) oss << " DC";
    if (circuit.tran.mode == SteppingMode::Adaptive) oss << " ADAPTIVE";
    oss << "\n";
  }
  oss << ".end\n";
  return oss.str();
}

}  // namespace vstack::circuit
