// Circuit netlist for the switch-level simulator.
//
// This module is the repository's stand-in for the transistor-level Spectre
// simulation the paper uses to validate its switched-capacitor compact model
// (Fig. 3).  It supports exactly the element set an idealised SC converter
// needs: resistors, capacitors, independent sources, and two-phase clocked
// switches modeled as Ron/Roff resistors so the matrix pattern is constant.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/error.h"

namespace vstack::circuit {

/// Node handle.  Node 0 is always ground.
using NodeId = std::size_t;
inline constexpr NodeId kGround = 0;

/// Periodic switch-control window.  A switch is ON while
/// frac(t / period + phase_offset) < duty.
struct ClockPhase {
  double phase_offset = 0.0;  // fraction of a period, in [0, 1)
  double duty = 0.5;          // fraction of a period the switch is closed
};

struct Resistor {
  NodeId a = 0;
  NodeId b = 0;
  double resistance = 0.0;
};

struct Capacitor {
  NodeId a = 0;
  NodeId b = 0;
  double capacitance = 0.0;
  double initial_voltage = 0.0;  // v(a) - v(b) at t = 0
};

/// Ideal clocked switch realised as a two-valued resistor.
struct Switch {
  NodeId a = 0;
  NodeId b = 0;
  double on_resistance = 0.0;
  double off_resistance = 0.0;
  ClockPhase phase;
};

/// Independent voltage source; contributes a branch-current unknown.
struct VoltageSource {
  NodeId positive = 0;
  NodeId negative = 0;
  double voltage = 0.0;
};

/// Independent current source pushing `current` from `from_node` through
/// itself into `to_node` (SPICE convention: a load sink has from=supply).
struct CurrentSource {
  NodeId from_node = 0;
  NodeId to_node = 0;
  double current = 0.0;
};

/// Flat netlist container.  Build once, then hand to an analysis.
class Netlist {
 public:
  Netlist();

  /// Create a new node and return its id.  `name` is for diagnostics only.
  NodeId create_node(std::string name);

  std::size_t node_count() const { return node_names_.size(); }
  const std::string& node_name(NodeId node) const;

  std::size_t add_resistor(NodeId a, NodeId b, double resistance);
  std::size_t add_capacitor(NodeId a, NodeId b, double capacitance,
                            double initial_voltage = 0.0);
  std::size_t add_switch(NodeId a, NodeId b, double on_resistance,
                         double off_resistance, ClockPhase phase);
  std::size_t add_voltage_source(NodeId positive, NodeId negative,
                                 double voltage);
  std::size_t add_current_source(NodeId from_node, NodeId to_node,
                                 double current);

  const std::vector<Resistor>& resistors() const { return resistors_; }
  const std::vector<Capacitor>& capacitors() const { return capacitors_; }
  const std::vector<Switch>& switches() const { return switches_; }
  const std::vector<VoltageSource>& voltage_sources() const {
    return voltage_sources_;
  }
  const std::vector<CurrentSource>& current_sources() const {
    return current_sources_;
  }

  /// Mutable access used by sweeps (e.g. stepping a load current).
  void set_current_source_value(std::size_t index, double current);
  void set_voltage_source_value(std::size_t index, double voltage);

 private:
  void check_node(NodeId node) const;

  std::vector<std::string> node_names_;
  std::vector<Resistor> resistors_;
  std::vector<Capacitor> capacitors_;
  std::vector<Switch> switches_;
  std::vector<VoltageSource> voltage_sources_;
  std::vector<CurrentSource> current_sources_;
};

}  // namespace vstack::circuit
