// SPICE-subset netlist parser.
//
// Lets converter testbenches be written as plain text instead of C++.  The
// dialect covers exactly what the transient engine supports:
//
//   * comment                       ; trailing comments too
//   .title <anything>
//   V<name> <n+> <n-> <value>
//   I<name> <from> <to> <value>
//   R<name> <a> <b> <value>
//   C<name> <a> <b> <value> [IC=<v0>]
//   S<name> <a> <b> <Ron> <Roff> PHASE=<offset> DUTY=<duty>
//   .clock <period>                 ; switch phases are fractions of this
//   .tran <step> <stop> [DC] [ADAPTIVE]
//   .end
//
// Values accept SPICE suffixes (f p n u m k meg g t).  Node "0" or "gnd"
// is ground; all other node names are created on first use.
//
// The parser is a hardened front-end: every rejection names the source, the
// line, and the offending token ("netlist.sp:7: ..."), duplicate element
// names and duplicate .clock/.tran cards are rejected, and all element
// values are range-checked (positive R/C, Roff >= Ron, duty in [0, 1],
// phase offset in [0, 1), finite everywhere) so malformed input fails here
// with an actionable message instead of deep inside the solver.
#pragma once

#include <map>
#include <string>

#include "circuit/netlist.h"
#include "circuit/transient.h"

namespace vstack::circuit {

struct ParsedCircuit {
  Netlist netlist;
  std::string title;
  double clock_period = 1.0;  // [s]; defaults to 1 s if no .clock card
  bool has_tran = false;
  TransientOptions tran;

  /// Node id by source-text name (excluding ground aliases).
  std::map<std::string, NodeId> node_by_name;
};

/// Parse a netlist from text.  Throws vstack::Error on any malformed card;
/// the message is "<source_name>:<line>: <what>" with the offending token.
ParsedCircuit parse_spice(const std::string& text,
                          const std::string& source_name = "<netlist>");

/// Parse a single SPICE value with magnitude suffix ("4.7n", "1meg", "10").
/// Throws vstack::Error on malformed, unknown-suffix, or non-finite values.
double parse_spice_value(const std::string& token);

/// Serialize a netlist back to the dialect (round-trip support).
std::string write_spice(const ParsedCircuit& circuit);

}  // namespace vstack::circuit
