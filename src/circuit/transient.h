// Transient analysis with clocked switches: adaptive (default for the SC
// testbench) or legacy fixed-step integration.
//
// Capacitors use trapezoidal companion models, falling back to backward
// Euler for a couple of steps after every switching event to suppress the
// ringing trapezoidal integration exhibits across discontinuities.  Matrix
// factorizations are cached per (switch pattern, scheme, dt), so a periodic
// steady-state run factors each distinct clock phase a handful of times.
//
// Adaptive mode drives the shared sim::StepController: local-truncation-
// error controlled step selection with rejection/halving/exponential
// grow-back, and steps clamped so every clocked-switch edge is hit exactly
// -- the time step no longer needs to divide the clock period.  Fixed mode
// keeps the historical uniform grid (and now DIAGNOSES a step that does not
// divide the period instead of silently skewing switch timing).
//
// Robustness: numerical failures do not throw.  DC initialization runs
// through the gmin/source-stepping ladder (dc_solve_robust), singular step
// matrices are retried with a gmin shift, every candidate solution passes a
// NaN/overflow guard before being committed, and hard step / wall-clock
// budgets truncate runaway runs.  Callers check TransientResult::report
// (a sim::TransientReport) instead of catching exceptions; returned
// waveforms never contain NaN.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"
#include "sim/step_control.h"

namespace vstack::circuit {

enum class SteppingMode {
  Fixed,     // uniform grid at `time_step` (legacy behavior)
  Adaptive,  // LTE-controlled steps, switch edges hit exactly
};

/// A switch fault striking DURING a transient run: from `time` onward the
/// switch's clocked drive is overridden and it is forced permanently on or
/// off (gate-driver failure / stuck SC phase).  Adaptive mode snaps a step
/// boundary exactly onto `time`; fixed mode applies the override under the
/// same midpoint rule as clocked edges (a fault landing exactly on a grid
/// point takes effect in the step that follows it).  The factorization
/// cache keys on the full switch pattern, so pre-fault factorizations are
/// never reused for the post-fault pattern.  DC initialization always uses
/// the HEALTHY switch states, even for faults at time <= 0: the run starts
/// from the nominal operating point and shows the response from t = 0+.
struct TimedSwitchFault {
  double time = 0.0;          // [s] when the drive fails
  std::size_t switch_index = 0;
  bool stuck_on = false;      // false = stuck open
  std::string label;          // recorded in the report's event trail
};

struct TransientOptions {
  double stop_time = 0.0;  // seconds; must be > 0
  /// Fixed mode: the uniform step; must divide the clock period evenly when
  /// the netlist contains switches (checked -- a non-divisible step fails
  /// with a diagnostic instead of skewing switch timing).
  /// Adaptive mode: the LARGEST step the controller may take; 0 derives a
  /// default from the clock period (period / 64) or stop_time / 1000 for
  /// switchless netlists.
  double time_step = 0.0;
  bool start_from_dc = false;  // solve a DC point (phase at t=0) for initial
                               // capacitor voltages instead of using v0
  SteppingMode mode = SteppingMode::Fixed;
  /// Switch faults striking mid-run (see TimedSwitchFault).
  std::vector<TimedSwitchFault> switch_faults;
  /// Tolerances, budgets and guard thresholds for the shared controller.
  /// Budgets and guards apply in BOTH modes.
  sim::StepControlOptions control;
};

/// Recorded waveforms.  Index k corresponds to time[k]; spacing is uniform
/// in fixed mode and variable in adaptive mode (averages are time-weighted
/// so both modes measure identically).
class TransientResult {
 public:
  std::vector<double> time;
  std::vector<la::Vector> node_voltages;      // per step, size = node_count
  std::vector<la::Vector> vsource_currents;   // delivered current per source

  /// Structured outcome: step statistics, recovery events, and a status
  /// labeling truncated results.  Check ok() before trusting the waveforms
  /// to cover the full requested span.
  sim::TransientReport report;
  bool ok() const { return report.ok(); }

  /// Time-average of a node voltage over [from_time, end] (trapezoidal
  /// weights, exact for non-uniform adaptive sampling).
  double average_node_voltage(NodeId node, double from_time) const;

  /// Time-average of the current delivered by a voltage source.
  double average_vsource_current(std::size_t source, double from_time) const;

  /// Min / max of a node voltage over [from_time, end].
  double min_node_voltage(NodeId node, double from_time) const;
  double max_node_voltage(NodeId node, double from_time) const;
};

class TransientSimulator {
 public:
  /// `clock_period` scales every switch's ClockPhase description.
  TransientSimulator(const Netlist& netlist, double clock_period);

  /// Integrate to options.stop_time.  Throws only on precondition
  /// violations (bad options); numerical trouble is reported through
  /// TransientResult::report with the waveform truncated at the last good
  /// step.
  TransientResult run(const TransientOptions& options);

  /// Switch states at absolute time t (exposed for tests).
  std::vector<bool> switch_states(double t) const;

  /// Schedule of switch on/off edges (exposed for tests).
  sim::PeriodicEvents switch_edges() const;

 private:
  TransientResult run_fixed(const TransientOptions& options);
  TransientResult run_adaptive(const TransientOptions& options);

  const Netlist& netlist_;
  double clock_period_;
};

}  // namespace vstack::circuit
