// Fixed-step transient analysis with clocked switches.
//
// Capacitors use trapezoidal companion models, falling back to backward
// Euler for a couple of steps after every switching event to suppress the
// ringing trapezoidal integration exhibits across discontinuities.  Matrix
// factorizations are cached per switch-state pattern, so a periodic
// steady-state run factors each distinct clock phase exactly once.
#pragma once

#include <map>
#include <memory>
#include <vector>

#include "circuit/mna.h"
#include "circuit/netlist.h"

namespace vstack::circuit {

struct TransientOptions {
  double stop_time = 0.0;       // seconds; must be > 0
  double time_step = 0.0;       // seconds; must divide the clock period evenly
                                // for events to land on step boundaries
  bool start_from_dc = false;   // solve a DC point (phase at t=0) for initial
                                // capacitor voltages instead of using v0
};

/// Recorded waveforms.  Index k corresponds to time[k].
class TransientResult {
 public:
  std::vector<double> time;
  std::vector<la::Vector> node_voltages;      // per step, size = node_count
  std::vector<la::Vector> vsource_currents;   // delivered current per source

  /// Time-average of a node voltage over [from_time, end].
  double average_node_voltage(NodeId node, double from_time) const;

  /// Time-average of the current delivered by a voltage source.
  double average_vsource_current(std::size_t source, double from_time) const;

  /// Min / max of a node voltage over [from_time, end].
  double min_node_voltage(NodeId node, double from_time) const;
  double max_node_voltage(NodeId node, double from_time) const;
};

class TransientSimulator {
 public:
  /// `clock_period` scales every switch's ClockPhase description.
  TransientSimulator(const Netlist& netlist, double clock_period);

  TransientResult run(const TransientOptions& options);

  /// Switch states at absolute time t (exposed for tests).
  std::vector<bool> switch_states(double t) const;

 private:
  const Netlist& netlist_;
  double clock_period_;
};

}  // namespace vstack::circuit
