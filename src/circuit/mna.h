// Modified nodal analysis assembly for the circuit module.
//
// Unknown ordering: node voltages for nodes 1..n-1 (ground eliminated),
// followed by one branch current per voltage source.  Capacitors are stamped
// through companion models supplied by the caller (DC analysis passes a zero
// conductance scale, leaving them open).
#pragma once

#include <vector>

#include "circuit/netlist.h"
#include "la/dense_lu.h"

namespace vstack::circuit {

class MnaSystem {
 public:
  explicit MnaSystem(const Netlist& netlist);

  /// Total unknowns: (node_count - 1) voltages + voltage-source currents.
  std::size_t unknown_count() const;

  /// Row/column of a node voltage unknown; node must not be ground.
  std::size_t voltage_index(NodeId node) const;

  /// Row/column of a voltage source's branch-current unknown.
  std::size_t source_current_index(std::size_t vsource_index) const;

  /// Assemble the MNA matrix.
  ///   switch_on:        per-switch on/off state (size = switches().size()).
  ///   cap_conductance:  per-capacitor companion conductance Geq (size =
  ///                     capacitors().size()); pass an empty vector for DC.
  la::DenseMatrix assemble_matrix(const std::vector<bool>& switch_on,
                                  const std::vector<double>& cap_conductance)
      const;

  /// Assemble the right-hand side.
  ///   cap_history_current: per-capacitor companion source Ieq entering the
  ///                        capacitor's `a` terminal; empty for DC.
  la::Vector assemble_rhs(const std::vector<double>& cap_history_current)
      const;

  /// Voltage of `node` given a solution vector (0 for ground).
  double node_voltage(const la::Vector& solution, NodeId node) const;

  const Netlist& netlist() const { return netlist_; }

 private:
  void stamp_conductance(la::DenseMatrix& m, NodeId a, NodeId b,
                         double conductance) const;

  const Netlist& netlist_;
};

/// DC operating point (capacitors open, switches forced to a given state).
struct DcSolution {
  la::Vector node_voltages;     // indexed by NodeId, [0] = 0
  la::Vector vsource_currents;  // current out of the + terminal, per source
};

DcSolution dc_solve(const Netlist& netlist, const std::vector<bool>& switch_on);

/// How a robust DC solve succeeded (or why it did not).
struct DcSolveReport {
  bool ok = false;
  std::string method;      // "direct", "gmin(1e-09)", "source-stepping"
  std::string diagnostic;  // nonempty when !ok
};

/// Non-throwing DC operating point with a recovery ladder: direct LU, then
/// gmin regularization (a small conductance from every node to ground,
/// tried from 1e-12 up), then source stepping (ramping every independent
/// source under the strongest gmin).  On total failure returns an all-zero
/// solution with report->ok == false instead of throwing -- transient
/// engines fall back to the netlist's stated initial conditions.
DcSolution dc_solve_robust(const Netlist& netlist,
                           const std::vector<bool>& switch_on,
                           DcSolveReport* report = nullptr);

}  // namespace vstack::circuit
