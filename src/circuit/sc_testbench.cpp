#include "circuit/sc_testbench.h"

#include <string>

#include "common/error.h"

namespace vstack::circuit {

ScTestbenchCircuit build_push_pull_sc(const ScTestbenchConfig& config) {
  VS_REQUIRE(config.interleave_ways >= 1, "need at least one interleave way");
  VS_REQUIRE(config.total_fly_capacitance > 0.0,
             "fly capacitance must be positive");
  VS_REQUIRE(config.switching_frequency > 0.0,
             "switching frequency must be positive");
  VS_REQUIRE(config.v_top > config.v_bottom,
             "top rail must be above bottom rail");
  VS_REQUIRE(config.v_bottom == 0.0,
             "testbench references the bottom rail as ground");

  ScTestbenchCircuit tb;
  Netlist& net = tb.netlist;

  tb.top_node = net.create_node("vtop");
  tb.output_node = net.create_node("vout");
  net.add_voltage_source(tb.top_node, kGround, config.v_top);

  const double v_mid = 0.5 * (config.v_top + config.v_bottom);
  net.add_capacitor(tb.output_node, kGround, config.output_decap, v_mid);

  const int ways = config.interleave_ways;
  // Two fly caps per way (push-pull); each alternates between the upper
  // (top..out) and lower (out..bottom) position.
  const double c_fly = config.total_fly_capacitance / (2.0 * ways);
  const double c_bp = config.bottom_plate_ratio * c_fly;

  for (int w = 0; w < ways; ++w) {
    const std::string suffix = "_w" + std::to_string(w);
    const NodeId c1t = net.create_node("c1t" + suffix);
    const NodeId c1b = net.create_node("c1b" + suffix);
    const NodeId c2t = net.create_node("c2t" + suffix);
    const NodeId c2b = net.create_node("c2b" + suffix);

    // Steady-state bias of each fly cap is ~Vdd = v_mid - v_bottom.
    net.add_capacitor(c1t, c1b, c_fly, v_mid - config.v_bottom);
    net.add_capacitor(c2t, c2b, c_fly, v_mid - config.v_bottom);
    // Bottom-plate parasitics to the local substrate (testbench ground).
    net.add_capacitor(c1b, kGround, c_bp, 0.0);
    net.add_capacitor(c2b, kGround, c_bp, 0.0);

    // Interleaved ways are staggered uniformly across a half period; the
    // complementary phase of each way is a half period later.
    const double offset_a = static_cast<double>(w) / (2.0 * ways);
    double offset_b = offset_a + 0.5;
    if (offset_b >= 1.0) offset_b -= 1.0;
    const ClockPhase phase_a{offset_a, config.duty};
    const ClockPhase phase_b{offset_b, config.duty};

    const double ron = config.switch_on_resistance;
    const double roff = config.switch_off_resistance;

    // Phase A: C1 upper (top..out), C2 lower (out..bottom).
    net.add_switch(c1t, tb.top_node, ron, roff, phase_a);
    net.add_switch(c1b, tb.output_node, ron, roff, phase_a);
    net.add_switch(c2t, tb.output_node, ron, roff, phase_a);
    net.add_switch(c2b, kGround, ron, roff, phase_a);
    // Phase B: positions interchange.
    net.add_switch(c1t, tb.output_node, ron, roff, phase_b);
    net.add_switch(c1b, kGround, ron, roff, phase_b);
    net.add_switch(c2t, tb.top_node, ron, roff, phase_b);
    net.add_switch(c2b, tb.output_node, ron, roff, phase_b);
  }

  tb.load_source_index =
      net.add_current_source(tb.output_node, kGround, config.load_current);
  return tb;
}

ScMeasurement simulate_push_pull_sc(const ScTestbenchConfig& config,
                                    const ScSimulationOptions& options) {
  VS_REQUIRE(options.steps_per_period > 0,
             "steps_per_period must be positive");
  if (!options.adaptive) {
    // Legacy fixed grid: switch edges only land on step boundaries when the
    // per-period step count is a multiple of twice the interleave count.
    VS_REQUIRE(options.steps_per_period % (2 * config.interleave_ways) == 0,
               "fixed-step mode: steps_per_period must be a multiple of "
               "2 * interleave_ways (adaptive mode has no such restriction)");
  }
  VS_REQUIRE(options.settle_periods > 0 && options.measure_periods > 0,
             "period counts must be positive");

  ScTestbenchCircuit tb = build_push_pull_sc(config);

  const double period = 1.0 / config.switching_frequency;
  TransientSimulator sim(tb.netlist, period);

  TransientOptions topts;
  topts.mode = options.adaptive ? SteppingMode::Adaptive : SteppingMode::Fixed;
  topts.time_step = period / options.steps_per_period;
  topts.stop_time =
      period * (options.settle_periods + options.measure_periods);

  const TransientResult result = sim.run(topts);
  const double t_measure = period * options.settle_periods;

  ScMeasurement m;
  m.transient = result.report;
  if (!result.ok()) return m;  // truncated run: report carries the reason
  m.average_output_voltage =
      result.average_node_voltage(tb.output_node, t_measure);
  m.output_ripple = result.max_node_voltage(tb.output_node, t_measure) -
                    result.min_node_voltage(tb.output_node, t_measure);

  const double i_top = result.average_vsource_current(0, t_measure);
  // Each of the 8 switches per way draws Cg*Vg^2 from the driver supply once
  // per period.
  const double gate_power = 8.0 * config.interleave_ways *
                            config.gate_capacitance_per_switch *
                            config.gate_drive_voltage *
                            config.gate_drive_voltage *
                            config.switching_frequency;
  // Gate drivers are not part of the switch-level network (their supply is
  // the local rail); account for their CV^2f draw analytically, exactly as a
  // transistor-level simulation would see it on the driver supply.
  m.input_power = config.v_top * i_top + gate_power;
  m.output_power = m.average_output_voltage * config.load_current;
  m.efficiency = (m.input_power > 0.0) ? m.output_power / m.input_power : 0.0;
  m.voltage_drop =
      0.5 * (config.v_top + config.v_bottom) - m.average_output_voltage;
  return m;
}

}  // namespace vstack::circuit
