#include "circuit/transient.h"

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <sstream>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace vstack::circuit {

namespace {

using telemetry::monotonic_seconds;

/// Fractional part in [0, 1).
double frac(double x) { return x - std::floor(x); }

/// Windowed trapezoidal integral of samples[k] over time[k] >= from_time,
/// divided by the window span (exact time-average for non-uniform steps).
template <typename Sample>
double windowed_average(const std::vector<double>& time, double from_time,
                        const Sample& sample) {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  std::size_t k0 = 0;
  while (k0 < time.size() && time[k0] < from_time) ++k0;
  VS_REQUIRE(k0 < time.size(), "averaging window contains no samples");
  if (k0 + 1 == time.size()) return sample(k0);
  double integral = 0.0;
  for (std::size_t k = k0; k + 1 < time.size(); ++k) {
    integral += 0.5 * (sample(k) + sample(k + 1)) * (time[k + 1] - time[k]);
  }
  return integral / (time.back() - time[k0]);
}

/// Per-(switch pattern, scheme, step) factorization cache key.
struct FactorKey {
  std::vector<bool> pattern;
  bool backward_euler = false;
  std::uint64_t dt_bits = 0;
  bool operator<(const FactorKey& o) const {
    if (backward_euler != o.backward_euler) {
      return backward_euler < o.backward_euler;
    }
    if (dt_bits != o.dt_bits) return dt_bits < o.dt_bits;
    return pattern < o.pattern;
  }
};

std::uint64_t bits_of(double x) {
  std::uint64_t b = 0;
  static_assert(sizeof(b) == sizeof(x));
  std::memcpy(&b, &x, sizeof(b));
  return b;
}

struct Factorization {
  std::unique_ptr<la::DenseLu> lu;
  double gmin_used = 0.0;  // 0 = clean factorization
};

/// Factor the step matrix, escalating through a gmin diagonal shift when the
/// direct factorization reports a singular matrix (a floating subcircuit
/// behind open switches, for example).  Returns lu == nullptr on total
/// failure.
Factorization robust_factor(const MnaSystem& mna,
                            const std::vector<bool>& state,
                            const std::vector<double>& geq,
                            const Netlist& netlist) {
  Factorization out;
  const la::DenseMatrix base = mna.assemble_matrix(state, geq);
  try {
    out.lu = std::make_unique<la::DenseLu>(base);
    return out;
  } catch (const Error&) {
  }
  for (const double gmin : {1e-12, 1e-9, 1e-6}) {
    la::DenseMatrix shifted = base;
    for (NodeId node = 1; node < netlist.node_count(); ++node) {
      const std::size_t i = mna.voltage_index(node);
      shifted(i, i) += gmin;
    }
    try {
      out.lu = std::make_unique<la::DenseLu>(std::move(shifted));
      out.gmin_used = gmin;
      return out;
    } catch (const Error&) {
    }
  }
  return out;
}

/// Clocked states with every switch fault active at `t_eval` overriding its
/// switch.  The first time a fault takes effect it is recorded into the
/// report's event trail (at `t_report`, the step's reporting time).
std::vector<bool> apply_switch_faults(std::vector<bool> state,
                                      const TransientOptions& options,
                                      double t_eval, double t_report,
                                      std::vector<bool>& applied,
                                      sim::TransientReport& report) {
  for (std::size_t i = 0; i < options.switch_faults.size(); ++i) {
    const auto& f = options.switch_faults[i];
    if (t_eval < f.time) continue;
    state[f.switch_index] = f.stuck_on;
    if (!applied[i]) {
      applied[i] = true;
      const std::string label =
          f.label.empty() ? "switch " + std::to_string(f.switch_index)
                          : f.label;
      report.record_event(t_report, "switch fault '" + label + "': drive " +
                                        std::string(f.stuck_on
                                                        ? "stuck on"
                                                        : "stuck off"));
    }
  }
  return state;
}

/// Shared per-run integrator state and sample recording.
struct Engine {
  const Netlist& netlist;
  const MnaSystem mna;
  std::vector<double> cap_voltage;
  std::vector<double> cap_current;
  std::map<FactorKey, Factorization> cache;
  TransientResult result;

  explicit Engine(const Netlist& net) : netlist(net), mna(net) {
    const auto& caps = net.capacitors();
    cap_voltage.resize(caps.size());
    cap_current.assign(caps.size(), 0.0);
    for (std::size_t c = 0; c < caps.size(); ++c) {
      cap_voltage[c] = caps[c].initial_voltage;
    }
  }

  void init_from_dc(const std::vector<bool>& state0) {
    DcSolveReport dc_report;
    const DcSolution dc = dc_solve_robust(netlist, state0, &dc_report);
    if (dc_report.ok) {
      for (std::size_t c = 0; c < netlist.capacitors().size(); ++c) {
        const auto& cap = netlist.capacitors()[c];
        cap_voltage[c] = dc.node_voltages[cap.a] - dc.node_voltages[cap.b];
      }
      if (dc_report.method != "direct") {
        result.report.record_event(
            0.0, "DC initialization recovered via " + dc_report.method);
      }
    } else {
      result.report.record_event(
          0.0, dc_report.diagnostic + "; using netlist initial conditions");
    }
  }

  void companions(bool backward_euler, double h, std::vector<double>& geq,
                  std::vector<double>& ieq) const {
    const auto& caps = netlist.capacitors();
    for (std::size_t c = 0; c < caps.size(); ++c) {
      if (backward_euler) {
        geq[c] = caps[c].capacitance / h;
        ieq[c] = geq[c] * cap_voltage[c];
      } else {
        geq[c] = 2.0 * caps[c].capacitance / h;
        ieq[c] = geq[c] * cap_voltage[c] + cap_current[c];
      }
    }
  }

  /// Factor (through the cache + gmin ladder) and solve one step.  Returns
  /// false when the matrix is unfactorizable even with the ladder.
  bool solve_step(const std::vector<bool>& state, bool backward_euler,
                  double h, const std::vector<double>& geq,
                  const std::vector<double>& ieq, double t, la::Vector& x) {
    if (cache.size() > 256) cache.clear();  // bound adaptive-dt growth
    FactorKey key{state, backward_euler, bits_of(h)};
    auto it = cache.find(key);
    if (it == cache.end()) {
      Factorization f = robust_factor(mna, state, geq, netlist);
      if (f.gmin_used > 0.0) {
        std::ostringstream oss;
        oss << "singular step matrix; factored with gmin shift "
            << f.gmin_used;
        result.report.record_event(t, oss.str());
      }
      it = cache.emplace(std::move(key), std::move(f)).first;
    }
    if (!it->second.lu) return false;
    x = it->second.lu->solve(mna.assemble_rhs(ieq));
    return true;
  }

  void record_sample(double t, const la::Vector& x) {
    result.time.push_back(t);
    la::Vector volts(netlist.node_count(), 0.0);
    for (NodeId nd = 1; nd < netlist.node_count(); ++nd) {
      volts[nd] = mna.node_voltage(x, nd);
    }
    result.node_voltages.push_back(std::move(volts));
    la::Vector src(netlist.voltage_sources().size(), 0.0);
    for (std::size_t v = 0; v < src.size(); ++v) {
      src[v] = -x[mna.source_current_index(v)];
    }
    result.vsource_currents.push_back(std::move(src));
  }

  void commit_caps(const la::Vector& x, const std::vector<double>& geq,
                   const std::vector<double>& ieq) {
    const auto& caps = netlist.capacitors();
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const double v_new =
          mna.node_voltage(x, caps[c].a) - mna.node_voltage(x, caps[c].b);
      cap_current[c] = geq[c] * v_new - ieq[c];
      cap_voltage[c] = v_new;
    }
  }
};

}  // namespace

double TransientResult::average_node_voltage(NodeId node,
                                             double from_time) const {
  return windowed_average(time, from_time, [&](std::size_t k) {
    return node == kGround ? 0.0 : node_voltages[k][node];
  });
}

double TransientResult::average_vsource_current(std::size_t source,
                                                double from_time) const {
  return windowed_average(time, from_time, [&](std::size_t k) {
    VS_REQUIRE(source < vsource_currents[k].size(),
               "voltage source index out of range");
    return vsource_currents[k][source];
  });
}

double TransientResult::min_node_voltage(NodeId node, double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double m = 1e300;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    m = std::min(m, node == kGround ? 0.0 : node_voltages[k][node]);
  }
  return m;
}

double TransientResult::max_node_voltage(NodeId node, double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double m = -1e300;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    m = std::max(m, node == kGround ? 0.0 : node_voltages[k][node]);
  }
  return m;
}

TransientSimulator::TransientSimulator(const Netlist& netlist,
                                       double clock_period)
    : netlist_(netlist), clock_period_(clock_period) {
  VS_REQUIRE(clock_period > 0.0, "clock period must be positive");
}

std::vector<bool> TransientSimulator::switch_states(double t) const {
  std::vector<bool> on(netlist_.switches().size());
  for (std::size_t s = 0; s < on.size(); ++s) {
    const auto& phase = netlist_.switches()[s].phase;
    on[s] = frac(t / clock_period_ + phase.phase_offset) < phase.duty;
  }
  return on;
}

sim::PeriodicEvents TransientSimulator::switch_edges() const {
  if (netlist_.switches().empty()) return {};
  std::vector<double> fractions;
  fractions.reserve(2 * netlist_.switches().size());
  for (const auto& sw : netlist_.switches()) {
    // ON while frac(t/T + offset) < duty: edges where the shifted phase
    // crosses 0 (turn-on) and duty (turn-off).
    fractions.push_back(frac(1.0 - sw.phase.phase_offset));
    fractions.push_back(frac(sw.phase.duty - sw.phase.phase_offset + 1.0));
  }
  return sim::PeriodicEvents(clock_period_, std::move(fractions));
}

TransientResult TransientSimulator::run(const TransientOptions& options) {
  VS_REQUIRE(options.stop_time > 0.0, "stop_time must be positive");
  for (const auto& f : options.switch_faults) {
    VS_REQUIRE(f.switch_index < netlist_.switches().size(),
               "switch-fault index out of range");
    VS_REQUIRE(std::isfinite(f.time), "switch-fault time must be finite");
  }
  options.control.validate();
  if (options.mode == SteppingMode::Fixed) {
    return run_fixed(options);
  }
  return run_adaptive(options);
}

TransientResult TransientSimulator::run_fixed(const TransientOptions& options) {
  VS_REQUIRE(options.time_step > 0.0, "time_step must be positive");
  VS_REQUIRE(options.time_step < options.stop_time,
             "time_step must be smaller than stop_time");
  const double h = options.time_step;

  // The historical footgun, now diagnosed: with a fixed grid, switch events
  // only land on step boundaries when the step divides the clock period.
  if (!netlist_.switches().empty()) {
    const double ratio = clock_period_ / h;
    const double remainder = std::abs(ratio - std::llround(ratio));
    if (remainder > 1e-6 * std::max(1.0, ratio)) {
      std::ostringstream oss;
      oss << "fixed time_step " << h
          << " s does not divide the clock period " << clock_period_
          << " s evenly (period/step = " << ratio
          << "); switch edges would skew -- use period/N, or "
             "SteppingMode::Adaptive which snaps onto edges";
      VS_FAIL(oss.str());
    }
  }

  Engine eng(netlist_);
  if (options.start_from_dc) eng.init_from_dc(switch_states(0.0));

  const auto n_steps = static_cast<std::size_t>(
      std::llround(options.stop_time / h));
  eng.result.time.reserve(n_steps);
  eng.result.node_voltages.reserve(n_steps);
  eng.result.vsource_currents.reserve(n_steps);

  sim::TransientReport& report = eng.result.report;
  const double wall_start = monotonic_seconds();
  std::vector<bool> prev_state = switch_states(0.5 * h);
  std::vector<bool> faults_applied(options.switch_faults.size(), false);
  int backward_euler_steps = 2;  // start conservatively

  std::vector<double> geq(netlist_.capacitors().size());
  std::vector<double> ieq(netlist_.capacitors().size());
  la::Vector x;

  for (std::size_t step = 0; step < n_steps; ++step) {
    const double t_new = static_cast<double>(step + 1) * h;
    if (options.control.max_steps > 0 &&
        report.accepted_steps >= options.control.max_steps) {
      report.status = sim::TransientStatus::BudgetExhausted;
      report.diagnostic = "step budget of " +
                          std::to_string(options.control.max_steps) +
                          " exhausted at t = " + std::to_string(t_new) +
                          " s; result truncated";
      break;
    }
    if (options.control.wall_clock_budget_s > 0.0 &&
        monotonic_seconds() - wall_start >
            options.control.wall_clock_budget_s) {
      report.status = sim::TransientStatus::BudgetExhausted;
      report.diagnostic = "wall-clock budget exhausted at t = " +
                          std::to_string(t_new) + " s; result truncated";
      break;
    }
    // Evaluate switch state at the midpoint of the step so events that land
    // exactly on a boundary take effect in the step that follows them.
    const std::vector<bool> state =
        apply_switch_faults(switch_states(t_new - 0.5 * h), options,
                            t_new - 0.5 * h, t_new, faults_applied, report);
    if (state != prev_state) {
      backward_euler_steps = 2;
      prev_state = state;
    }
    const bool be = backward_euler_steps > 0;
    if (backward_euler_steps > 0) --backward_euler_steps;

    eng.companions(be, h, geq, ieq);
    if (!eng.solve_step(state, be, h, geq, ieq, t_new, x)) {
      report.status = sim::TransientStatus::SolverFailure;
      report.diagnostic = "step matrix singular beyond the gmin ladder at "
                          "t = " + std::to_string(t_new) + " s";
      break;
    }
    if (!sim::finite_and_bounded(x, options.control.overflow_limit)) {
      report.status = sim::TransientStatus::SolverFailure;
      report.diagnostic =
          "NaN/overflow guard fired at t = " + std::to_string(t_new) +
          " s (fixed step cannot be refined; rerun with a smaller step or "
          "SteppingMode::Adaptive)";
      ++report.rejected_steps;
      ++report.guard_rejections;
      break;
    }

    eng.commit_caps(x, geq, ieq);
    eng.record_sample(t_new, x);
    ++report.accepted_steps;
    report.end_time = t_new;
  }

  report.min_dt = eng.result.time.empty() ? 0.0 : h;
  report.max_dt = report.min_dt;
  report.last_dt = report.min_dt;
  report.wall_seconds = monotonic_seconds() - wall_start;
  sim::record_transient_telemetry(report, wall_start);
  return eng.result;
}

TransientResult TransientSimulator::run_adaptive(
    const TransientOptions& options) {
  VS_REQUIRE(options.time_step >= 0.0, "time_step must be non-negative");

  double dt_max = options.time_step;
  if (dt_max <= 0.0) {
    dt_max = netlist_.switches().empty() ? options.stop_time / 1000.0
                                         : clock_period_ / 64.0;
  }
  dt_max = std::min(dt_max, options.stop_time);
  const double dt_init = dt_max / 8.0;
  const double dt_edge_restart = dt_max / 256.0;
  constexpr int kBeStartupSteps = 2;

  Engine eng(netlist_);
  if (options.start_from_dc) eng.init_from_dc(switch_states(0.0));

  // Unified timeline: clocked switch edges plus every switch-fault instant,
  // so the controller lands a step boundary exactly on each.
  sim::EventSchedule schedule(options.stop_time);
  schedule.add_periodic(switch_edges());
  for (const auto& f : options.switch_faults) schedule.add_time(f.time);
  sim::StepController ctl(options.control, 0.0, options.stop_time, dt_init,
                          dt_max);
  std::vector<bool> faults_applied(options.switch_faults.size(), false);

  std::vector<double> geq(netlist_.capacitors().size());
  std::vector<double> ieq(netlist_.capacitors().size());
  la::Vector x;
  // Last accepted solution and its per-unknown slope, for the LTE predictor.
  // The norm runs over the FULL MNA vector (node voltages and source branch
  // currents), not just capacitor states: the post-edge current spikes decay
  // with the switch RC constant, and resolving them is what makes the
  // time-weighted average input current (and hence efficiency) accurate.
  la::Vector x_prev, x_slope, x_pred;
  bool have_slope = false;

  int be_left = kBeStartupSteps;  // startup; reset after every switch edge

  while (!ctl.done() && !ctl.failed()) {
    const double t = ctl.time();
    const double dt = ctl.begin_step(schedule.next_after(t));
    if (ctl.failed()) break;
    const bool be = be_left > 0;

    const std::vector<bool> state =
        apply_switch_faults(switch_states(t + 0.5 * dt), options, t + 0.5 * dt,
                            t, faults_applied, ctl.report());
    eng.companions(be, dt, geq, ieq);
    if (!eng.solve_step(state, be, dt, geq, ieq, t, x)) {
      ctl.reject_step("unfactorizable step matrix");
      continue;
    }
    if (!sim::finite_and_bounded(x, options.control.overflow_limit)) {
      ctl.reject_step("NaN/overflow guard");
      continue;
    }

    // LTE estimate: linear predictor from the last accepted step's slope.
    // Skipped during BE startup (the slope across a switching discontinuity
    // is meaningless); the reduced step after reset_dt covers accuracy.
    double err = 0.0;
    if (!be && have_slope) {
      x_pred.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_pred[i] = x_prev[i] + x_slope[i] * dt;
      }
      err = sim::error_norm(x, x_pred, options.control.rel_tol,
                            options.control.abs_tol);
    }

    const bool on_edge = ctl.ends_on_event();
    if (!ctl.finish_step(err, be ? 1 : 2)) continue;

    if (x_prev.size() == x.size()) {
      x_slope.resize(x.size());
      for (std::size_t i = 0; i < x.size(); ++i) {
        x_slope[i] = (x[i] - x_prev[i]) / dt;
      }
      have_slope = true;
    }
    x_prev = x;
    eng.commit_caps(x, geq, ieq);
    eng.record_sample(ctl.time(), x);

    if (on_edge) {
      be_left = kBeStartupSteps;
      ctl.reset_dt(dt_edge_restart);
    } else if (be_left > 0) {
      --be_left;
    }
  }

  ctl.finalize();
  eng.result.report = ctl.report();
  return eng.result;
}

}  // namespace vstack::circuit
