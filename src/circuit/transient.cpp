#include "circuit/transient.h"

#include <cmath>

#include "common/error.h"

namespace vstack::circuit {

namespace {

/// Fractional part in [0, 1).
double frac(double x) { return x - std::floor(x); }

}  // namespace

double TransientResult::average_node_voltage(NodeId node,
                                             double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    sum += (node == kGround) ? 0.0 : node_voltages[k][node];
    ++count;
  }
  VS_REQUIRE(count > 0, "averaging window contains no samples");
  return sum / static_cast<double>(count);
}

double TransientResult::average_vsource_current(std::size_t source,
                                                double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double sum = 0.0;
  std::size_t count = 0;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    VS_REQUIRE(source < vsource_currents[k].size(),
               "voltage source index out of range");
    sum += vsource_currents[k][source];
    ++count;
  }
  VS_REQUIRE(count > 0, "averaging window contains no samples");
  return sum / static_cast<double>(count);
}

double TransientResult::min_node_voltage(NodeId node, double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double m = 1e300;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    m = std::min(m, node == kGround ? 0.0 : node_voltages[k][node]);
  }
  return m;
}

double TransientResult::max_node_voltage(NodeId node, double from_time) const {
  VS_REQUIRE(!time.empty(), "no samples recorded");
  double m = -1e300;
  for (std::size_t k = 0; k < time.size(); ++k) {
    if (time[k] < from_time) continue;
    m = std::max(m, node == kGround ? 0.0 : node_voltages[k][node]);
  }
  return m;
}

TransientSimulator::TransientSimulator(const Netlist& netlist,
                                       double clock_period)
    : netlist_(netlist), clock_period_(clock_period) {
  VS_REQUIRE(clock_period > 0.0, "clock period must be positive");
}

std::vector<bool> TransientSimulator::switch_states(double t) const {
  std::vector<bool> on(netlist_.switches().size());
  for (std::size_t s = 0; s < on.size(); ++s) {
    const auto& phase = netlist_.switches()[s].phase;
    on[s] = frac(t / clock_period_ + phase.phase_offset) < phase.duty;
  }
  return on;
}

TransientResult TransientSimulator::run(const TransientOptions& options) {
  VS_REQUIRE(options.stop_time > 0.0, "stop_time must be positive");
  VS_REQUIRE(options.time_step > 0.0, "time_step must be positive");
  VS_REQUIRE(options.time_step < options.stop_time,
             "time_step must be smaller than stop_time");

  const MnaSystem mna(netlist_);
  const auto& caps = netlist_.capacitors();
  const std::size_t n_steps =
      static_cast<std::size_t>(std::llround(options.stop_time /
                                            options.time_step));
  const double h = options.time_step;

  // Per-capacitor state.
  std::vector<double> cap_voltage(caps.size());
  std::vector<double> cap_current(caps.size(), 0.0);
  for (std::size_t c = 0; c < caps.size(); ++c) {
    cap_voltage[c] = caps[c].initial_voltage;
  }
  if (options.start_from_dc) {
    const DcSolution dc = dc_solve(netlist_, switch_states(0.0));
    for (std::size_t c = 0; c < caps.size(); ++c) {
      cap_voltage[c] =
          dc.node_voltages[caps[c].a] - dc.node_voltages[caps[c].b];
    }
  }

  // Factor cache keyed by (switch pattern, integration scheme).
  struct CacheKey {
    std::vector<bool> pattern;
    bool backward_euler;
    bool operator<(const CacheKey& o) const {
      if (backward_euler != o.backward_euler) {
        return backward_euler < o.backward_euler;
      }
      return pattern < o.pattern;
    }
  };
  std::map<CacheKey, std::unique_ptr<la::DenseLu>> factor_cache;

  TransientResult result;
  result.time.reserve(n_steps);
  result.node_voltages.reserve(n_steps);
  result.vsource_currents.reserve(n_steps);

  std::vector<bool> prev_state = switch_states(0.5 * h);
  int backward_euler_steps = 2;  // start conservatively

  std::vector<double> geq(caps.size());
  std::vector<double> ieq(caps.size());

  for (std::size_t step = 0; step < n_steps; ++step) {
    const double t_new = static_cast<double>(step + 1) * h;
    // Evaluate switch state at the midpoint of the step so events that land
    // exactly on a boundary take effect in the step that follows them.
    const std::vector<bool> state = switch_states(t_new - 0.5 * h);
    if (state != prev_state) {
      backward_euler_steps = 2;
      prev_state = state;
    }
    const bool be = backward_euler_steps > 0;
    if (backward_euler_steps > 0) --backward_euler_steps;

    for (std::size_t c = 0; c < caps.size(); ++c) {
      if (be) {
        geq[c] = caps[c].capacitance / h;
        ieq[c] = geq[c] * cap_voltage[c];
      } else {
        geq[c] = 2.0 * caps[c].capacitance / h;
        ieq[c] = geq[c] * cap_voltage[c] + cap_current[c];
      }
    }

    CacheKey key{state, be};
    auto it = factor_cache.find(key);
    if (it == factor_cache.end()) {
      auto lu = std::make_unique<la::DenseLu>(mna.assemble_matrix(state, geq));
      it = factor_cache.emplace(std::move(key), std::move(lu)).first;
    }

    const la::Vector x = it->second->solve(mna.assemble_rhs(ieq));

    // Update capacitor companions.
    for (std::size_t c = 0; c < caps.size(); ++c) {
      const double va = mna.node_voltage(x, caps[c].a);
      const double vb = mna.node_voltage(x, caps[c].b);
      const double v_new = va - vb;
      cap_current[c] = geq[c] * v_new - ieq[c];
      cap_voltage[c] = v_new;
    }

    // Record.
    result.time.push_back(t_new);
    la::Vector volts(netlist_.node_count(), 0.0);
    for (NodeId nd = 1; nd < netlist_.node_count(); ++nd) {
      volts[nd] = mna.node_voltage(x, nd);
    }
    result.node_voltages.push_back(std::move(volts));
    la::Vector src(netlist_.voltage_sources().size(), 0.0);
    for (std::size_t v = 0; v < src.size(); ++v) {
      src[v] = -x[mna.source_current_index(v)];
    }
    result.vsource_currents.push_back(std::move(src));
  }

  return result;
}

}  // namespace vstack::circuit
