// Switch-level testbench for the 2:1 push-pull switched-capacitor converter
// of the paper's Fig. 1.
//
// This is the repository's substitute for the authors' 28 nm Spectre
// simulation: it builds the full interleaved switch/fly-capacitor network,
// integrates it to periodic steady state, and measures efficiency and output
// voltage drop.  The compact model in src/sc is validated against these
// measurements, reproducing the paper's Fig. 3.
#pragma once

#include "circuit/netlist.h"
#include "circuit/transient.h"

namespace vstack::circuit {

struct ScTestbenchConfig {
  double v_top = 2.0;     // stack-top supply [V]; 2x Vdd for a 2-layer stack
  double v_bottom = 0.0;  // stack-bottom rail [V] (testbench ground)

  double total_fly_capacitance = 8e-9;  // [F] across all interleaved ways
  double switching_frequency = 50e6;    // [Hz]
  int interleave_ways = 4;
  double duty = 0.48;  // per-phase duty; < 0.5 leaves a non-overlap gap

  double switch_on_resistance = 0.45;   // [Ohm] per switch
  double switch_off_resistance = 1e9;   // [Ohm]
  double bottom_plate_ratio = 0.015;    // parasitic / fly capacitance
  double gate_capacitance_per_switch = 2e-12;  // [F] for gate-drive loss
  double gate_drive_voltage = 1.0;             // [V]

  double output_decap = 1e-9;  // [F] local decoupling at the output rail
  double load_current = 50e-3;  // [A] drawn from the output rail
};

struct ScMeasurement {
  double average_output_voltage = 0.0;  // [V]
  double output_ripple = 0.0;           // max - min over the window [V]
  double input_power = 0.0;   // from the top source + gate drive [W]
  double output_power = 0.0;  // delivered to the load sink [W]
  double efficiency = 0.0;    // output_power / input_power
  double voltage_drop = 0.0;  // ideal midpoint minus average output [V]

  /// Transient-engine outcome for the underlying run; measurements above
  /// are only trustworthy when ok() holds.
  sim::TransientReport transient;
  bool ok() const { return transient.ok(); }
};

struct ScSimulationOptions {
  int settle_periods = 60;   // discarded transient
  int measure_periods = 20;  // averaging window
  /// Upper bound on steps per clock period (adaptive: dt_max =
  /// period / steps_per_period; fixed: the exact uniform step, and then it
  /// must be a multiple of 2 * interleave_ways so edges land on the grid).
  int steps_per_period = 64;
  /// Adaptive LTE-controlled stepping with exact switch-edge snapping
  /// (default).  Disable for the legacy uniform grid.
  bool adaptive = true;
};

/// Build the interleaved push-pull converter netlist.  Returns the netlist
/// and the ids of its external nodes / elements through out-parameters.
struct ScTestbenchCircuit {
  Netlist netlist;
  NodeId top_node = 0;
  NodeId output_node = 0;
  std::size_t load_source_index = 0;  // current-source index for the load
};

ScTestbenchCircuit build_push_pull_sc(const ScTestbenchConfig& config);

/// Simulate to periodic steady state and measure converter metrics.
ScMeasurement simulate_push_pull_sc(const ScTestbenchConfig& config,
                                    const ScSimulationOptions& options = {});

}  // namespace vstack::circuit
