#include "circuit/netlist.h"

namespace vstack::circuit {

Netlist::Netlist() {
  node_names_.push_back("gnd");  // node 0
}

NodeId Netlist::create_node(std::string name) {
  node_names_.push_back(std::move(name));
  return node_names_.size() - 1;
}

const std::string& Netlist::node_name(NodeId node) const {
  check_node(node);
  return node_names_[node];
}

void Netlist::check_node(NodeId node) const {
  VS_REQUIRE(node < node_names_.size(), "netlist node id out of range");
}

std::size_t Netlist::add_resistor(NodeId a, NodeId b, double resistance) {
  check_node(a);
  check_node(b);
  VS_REQUIRE(a != b, "resistor terminals must differ");
  VS_REQUIRE(resistance > 0.0, "resistance must be positive");
  resistors_.push_back({a, b, resistance});
  return resistors_.size() - 1;
}

std::size_t Netlist::add_capacitor(NodeId a, NodeId b, double capacitance,
                                   double initial_voltage) {
  check_node(a);
  check_node(b);
  VS_REQUIRE(a != b, "capacitor terminals must differ");
  VS_REQUIRE(capacitance > 0.0, "capacitance must be positive");
  capacitors_.push_back({a, b, capacitance, initial_voltage});
  return capacitors_.size() - 1;
}

std::size_t Netlist::add_switch(NodeId a, NodeId b, double on_resistance,
                                double off_resistance, ClockPhase phase) {
  check_node(a);
  check_node(b);
  VS_REQUIRE(a != b, "switch terminals must differ");
  VS_REQUIRE(on_resistance > 0.0, "switch on-resistance must be positive");
  VS_REQUIRE(off_resistance > on_resistance,
             "switch off-resistance must exceed on-resistance");
  VS_REQUIRE(phase.phase_offset >= 0.0 && phase.phase_offset < 1.0,
             "phase offset must be in [0, 1)");
  VS_REQUIRE(phase.duty > 0.0 && phase.duty < 1.0,
             "switch duty must be in (0, 1)");
  switches_.push_back({a, b, on_resistance, off_resistance, phase});
  return switches_.size() - 1;
}

std::size_t Netlist::add_voltage_source(NodeId positive, NodeId negative,
                                        double voltage) {
  check_node(positive);
  check_node(negative);
  VS_REQUIRE(positive != negative, "voltage source terminals must differ");
  voltage_sources_.push_back({positive, negative, voltage});
  return voltage_sources_.size() - 1;
}

std::size_t Netlist::add_current_source(NodeId from_node, NodeId to_node,
                                        double current) {
  check_node(from_node);
  check_node(to_node);
  VS_REQUIRE(from_node != to_node, "current source terminals must differ");
  current_sources_.push_back({from_node, to_node, current});
  return current_sources_.size() - 1;
}

void Netlist::set_current_source_value(std::size_t index, double current) {
  VS_REQUIRE(index < current_sources_.size(), "current source index invalid");
  current_sources_[index].current = current;
}

void Netlist::set_voltage_source_value(std::size_t index, double voltage) {
  VS_REQUIRE(index < voltage_sources_.size(), "voltage source index invalid");
  voltage_sources_[index].voltage = voltage;
}

}  // namespace vstack::circuit
