#include "circuit/mna.h"

#include <cmath>
#include <sstream>

namespace vstack::circuit {

MnaSystem::MnaSystem(const Netlist& netlist) : netlist_(netlist) {}

std::size_t MnaSystem::unknown_count() const {
  return (netlist_.node_count() - 1) + netlist_.voltage_sources().size();
}

std::size_t MnaSystem::voltage_index(NodeId node) const {
  VS_REQUIRE(node != kGround, "ground has no voltage unknown");
  VS_REQUIRE(node < netlist_.node_count(), "node out of range");
  return node - 1;
}

std::size_t MnaSystem::source_current_index(std::size_t vsource_index) const {
  VS_REQUIRE(vsource_index < netlist_.voltage_sources().size(),
             "voltage source index out of range");
  return (netlist_.node_count() - 1) + vsource_index;
}

void MnaSystem::stamp_conductance(la::DenseMatrix& m, NodeId a, NodeId b,
                                  double conductance) const {
  if (a != kGround) {
    m(voltage_index(a), voltage_index(a)) += conductance;
  }
  if (b != kGround) {
    m(voltage_index(b), voltage_index(b)) += conductance;
  }
  if (a != kGround && b != kGround) {
    m(voltage_index(a), voltage_index(b)) -= conductance;
    m(voltage_index(b), voltage_index(a)) -= conductance;
  }
}

la::DenseMatrix MnaSystem::assemble_matrix(
    const std::vector<bool>& switch_on,
    const std::vector<double>& cap_conductance) const {
  VS_REQUIRE(switch_on.size() == netlist_.switches().size(),
             "switch state vector size mismatch");
  VS_REQUIRE(cap_conductance.empty() ||
                 cap_conductance.size() == netlist_.capacitors().size(),
             "capacitor conductance vector size mismatch");

  la::DenseMatrix m(unknown_count(), unknown_count(), 0.0);

  for (const auto& r : netlist_.resistors()) {
    stamp_conductance(m, r.a, r.b, 1.0 / r.resistance);
  }
  for (std::size_t s = 0; s < netlist_.switches().size(); ++s) {
    const auto& sw = netlist_.switches()[s];
    const double res = switch_on[s] ? sw.on_resistance : sw.off_resistance;
    stamp_conductance(m, sw.a, sw.b, 1.0 / res);
  }
  if (!cap_conductance.empty()) {
    for (std::size_t c = 0; c < netlist_.capacitors().size(); ++c) {
      if (cap_conductance[c] > 0.0) {
        stamp_conductance(m, netlist_.capacitors()[c].a,
                          netlist_.capacitors()[c].b, cap_conductance[c]);
      }
    }
  }
  for (std::size_t v = 0; v < netlist_.voltage_sources().size(); ++v) {
    const auto& src = netlist_.voltage_sources()[v];
    const std::size_t branch = source_current_index(v);
    // Branch current unknown is defined as flowing INTO the + terminal.
    if (src.positive != kGround) {
      m(voltage_index(src.positive), branch) += 1.0;
      m(branch, voltage_index(src.positive)) += 1.0;
    }
    if (src.negative != kGround) {
      m(voltage_index(src.negative), branch) -= 1.0;
      m(branch, voltage_index(src.negative)) -= 1.0;
    }
  }
  return m;
}

la::Vector MnaSystem::assemble_rhs(
    const std::vector<double>& cap_history_current) const {
  VS_REQUIRE(cap_history_current.empty() ||
                 cap_history_current.size() == netlist_.capacitors().size(),
             "capacitor history vector size mismatch");

  la::Vector rhs(unknown_count(), 0.0);

  for (const auto& src : netlist_.current_sources()) {
    // `current` flows from_node -> to_node through the source: it leaves
    // from_node (negative injection) and enters to_node.
    if (src.from_node != kGround) {
      rhs[voltage_index(src.from_node)] -= src.current;
    }
    if (src.to_node != kGround) {
      rhs[voltage_index(src.to_node)] += src.current;
    }
  }
  if (!cap_history_current.empty()) {
    for (std::size_t c = 0; c < netlist_.capacitors().size(); ++c) {
      const auto& cap = netlist_.capacitors()[c];
      const double ieq = cap_history_current[c];  // enters terminal a
      if (cap.a != kGround) rhs[voltage_index(cap.a)] += ieq;
      if (cap.b != kGround) rhs[voltage_index(cap.b)] -= ieq;
    }
  }
  for (std::size_t v = 0; v < netlist_.voltage_sources().size(); ++v) {
    rhs[source_current_index(v)] = netlist_.voltage_sources()[v].voltage;
  }
  return rhs;
}

double MnaSystem::node_voltage(const la::Vector& solution, NodeId node) const {
  if (node == kGround) return 0.0;
  return solution[voltage_index(node)];
}

DcSolution dc_solve(const Netlist& netlist,
                    const std::vector<bool>& switch_on) {
  MnaSystem mna(netlist);
  const la::DenseMatrix m = mna.assemble_matrix(switch_on, {});
  const la::Vector rhs = mna.assemble_rhs({});
  const la::Vector x = la::DenseLu(m).solve(rhs);

  DcSolution sol;
  sol.node_voltages.assign(netlist.node_count(), 0.0);
  for (NodeId n = 1; n < netlist.node_count(); ++n) {
    sol.node_voltages[n] = mna.node_voltage(x, n);
  }
  sol.vsource_currents.assign(netlist.voltage_sources().size(), 0.0);
  for (std::size_t v = 0; v < netlist.voltage_sources().size(); ++v) {
    // Report current DELIVERED by the source (out of the + terminal): the
    // negative of the MNA branch unknown.
    sol.vsource_currents[v] = -x[mna.source_current_index(v)];
  }
  return sol;
}

namespace {

bool all_finite(const la::Vector& x) {
  for (const double v : x) {
    if (!std::isfinite(v)) return false;
  }
  return true;
}

/// Solve the MNA system with an extra `gmin` conductance on every node
/// diagonal and independent sources scaled by `source_scale`.  Returns an
/// empty vector on factorization failure or a non-finite solution.
la::Vector regularized_solve(const MnaSystem& mna, const Netlist& netlist,
                             const std::vector<bool>& switch_on, double gmin,
                             double source_scale) {
  la::DenseMatrix m = mna.assemble_matrix(switch_on, {});
  if (gmin > 0.0) {
    for (NodeId node = 1; node < netlist.node_count(); ++node) {
      const std::size_t i = mna.voltage_index(node);
      m(i, i) += gmin;
    }
  }
  la::Vector rhs = mna.assemble_rhs({});
  if (source_scale != 1.0) {
    for (double& v : rhs) v *= source_scale;
  }
  try {
    la::Vector x = la::DenseLu(std::move(m)).solve(rhs);
    if (!all_finite(x)) return {};
    return x;
  } catch (const Error&) {
    return {};
  }
}

DcSolution solution_from(const MnaSystem& mna, const Netlist& netlist,
                         const la::Vector& x) {
  DcSolution sol;
  sol.node_voltages.assign(netlist.node_count(), 0.0);
  for (NodeId n = 1; n < netlist.node_count(); ++n) {
    sol.node_voltages[n] = mna.node_voltage(x, n);
  }
  sol.vsource_currents.assign(netlist.voltage_sources().size(), 0.0);
  for (std::size_t v = 0; v < netlist.voltage_sources().size(); ++v) {
    sol.vsource_currents[v] = -x[mna.source_current_index(v)];
  }
  return sol;
}

}  // namespace

DcSolution dc_solve_robust(const Netlist& netlist,
                           const std::vector<bool>& switch_on,
                           DcSolveReport* report) {
  const MnaSystem mna(netlist);
  DcSolveReport local;
  DcSolveReport& rep = report ? *report : local;

  // Rung 1: direct solve of the untouched system.
  la::Vector x = regularized_solve(mna, netlist, switch_on, 0.0, 1.0);
  if (!x.empty()) {
    rep.ok = true;
    rep.method = "direct";
    return solution_from(mna, netlist, x);
  }

  // Rung 2: gmin regularization -- a weak conductance from every node to
  // ground makes floating subcircuits (nodes isolated behind open switches
  // or DC-open capacitors) well-posed while perturbing driven nodes by
  // O(gmin * R).  Try the weakest shunt first.
  for (const double gmin : {1e-12, 1e-9, 1e-6}) {
    x = regularized_solve(mna, netlist, switch_on, gmin, 1.0);
    if (!x.empty()) {
      rep.ok = true;
      std::ostringstream oss;
      oss << "gmin(" << gmin << ")";
      rep.method = oss.str();
      return solution_from(mna, netlist, x);
    }
  }

  // Rung 3: source stepping under the strongest gmin shunt -- ramp every
  // independent source from 10% to 100% and keep the last finite solution.
  // (For a linear network each rung solve is independent; the ramp guards
  // against overflow in extremely ill-conditioned systems.)
  la::Vector best;
  for (const double scale : {0.1, 0.25, 0.5, 0.75, 1.0}) {
    x = regularized_solve(mna, netlist, switch_on, 1e-6, scale);
    if (!x.empty()) best = x;
  }
  if (!best.empty()) {
    rep.ok = true;
    rep.method = "source-stepping";
    return solution_from(mna, netlist, best);
  }

  rep.ok = false;
  rep.method = "none";
  rep.diagnostic =
      "DC operating point unsolvable: direct LU, gmin regularization "
      "(1e-12..1e-6) and source stepping all failed";
  DcSolution sol;
  sol.node_voltages.assign(netlist.node_count(), 0.0);
  sol.vsource_currents.assign(netlist.voltage_sources().size(), 0.0);
  return sol;
}

}  // namespace vstack::circuit
