#include "service/retry.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/log.h"

namespace vstack::service {

namespace {

/// splitmix64: one multiply-xor-shift round turns (salt, attempt) into well
/// mixed bits; good enough for jitter, fully deterministic.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

void RetryPolicy::validate() const {
  VS_REQUIRE(max_attempts >= 1 && max_attempts <= 16,
             "RetryPolicy.max_attempts must lie in [1, 16]");
  VS_REQUIRE(std::isfinite(initial_backoff_s) && initial_backoff_s >= 0.0,
             "RetryPolicy.initial_backoff_s must be >= 0");
  VS_REQUIRE(backoff_multiplier >= 1.0,
             "RetryPolicy.backoff_multiplier must be >= 1");
  VS_REQUIRE(max_backoff_s >= initial_backoff_s,
             "RetryPolicy.max_backoff_s must be >= initial_backoff_s");
  VS_REQUIRE(jitter_fraction >= 0.0 && jitter_fraction < 1.0,
             "RetryPolicy.jitter_fraction must lie in [0, 1)");
}

double RetryPolicy::backoff_before(std::size_t next_attempt,
                                   std::uint64_t salt) const {
  if (next_attempt <= 1) return 0.0;
  const auto exponent = static_cast<double>(next_attempt - 2);
  double backoff = initial_backoff_s * std::pow(backoff_multiplier, exponent);
  backoff = std::min(backoff, max_backoff_s);
  if (jitter_fraction > 0.0) {
    // Uniform in [1 - j, 1 + j] from the top 53 bits of the hash.
    const std::uint64_t bits = mix64(salt ^ (0x517cc1b7ull * next_attempt));
    const double unit =
        static_cast<double>(bits >> 11) * (1.0 / 9007199254740992.0);
    backoff *= 1.0 - jitter_fraction + 2.0 * jitter_fraction * unit;
  }
  return backoff;
}

RetryRun run_with_retry(const RetryPolicy& policy, const Deadline& stop,
                        std::uint64_t salt,
                        const std::function<void(std::size_t)>& attempt,
                        const SleepFn& sleep) {
  policy.validate();
  RetryRun run;
  for (std::size_t k = 1; k <= policy.max_attempts; ++k) {
    if (stop.expired()) break;  // shutting down: report what happened so far
    if (k > 1) {
      const double backoff = policy.backoff_before(k, salt);
      run.backoff_total_s += backoff;
      sleep(backoff);
      if (stop.expired()) break;  // the sleep was interrupted
    }
    ++run.attempts;
    try {
      attempt(k);
      run.ok = true;
      return run;
    } catch (const std::exception& e) {
      run.last_error = e.what();
      VS_LOG_WARN("retry: attempt " << k << "/" << policy.max_attempts
                                    << " failed: " << e.what());
    }
  }
  return run;
}

std::uint64_t retry_salt(const std::string& s) {
  std::uint64_t h = 1469598103934665603ull;
  for (const unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace vstack::service
