// Resilient campaign service: a spool-directory daemon that runs analysis
// requests (campaign / contingency / sweep / ride-through) on the existing
// runners, hardened end to end:
//
//   * Per-request wall-clock deadlines: a core::Deadline token rides the
//     ExecutionPolicy into TaskPool chunk boundaries, the step controller,
//     and the la::Solver iteration loops, so a stuck solve aborts instead of
//     wedging the server.  An expired request answers TIMEOUT with the
//     committed prefix aggregated.
//   * Bounded retry with exponential backoff + deterministic jitter
//     (service/retry.h); campaign retries resume from the per-request
//     manifest, so work is never repeated.
//   * Admission control and graceful degradation (service/admission.h):
//     queue overflow answers REJECTED_OVERLOAD, pressure short of overflow
//     runs with reduced Monte-Carlo trial counts and `degraded: 1`.
//   * Crash safety: responses append to results/responses.jsonl via
//     single-write + fsync (common/durable_file.h) BEFORE the request file
//     moves out of active/, so a kill -9 at any instant leaves each request
//     either unanswered-and-active (re-run on restart, resuming from its
//     manifest) or answered-and-terminal -- never both, never neither.
//   * Health snapshots: health.json (atomic rename) with queue/served/
//     degraded gauges and the full telemetry registry dump.
//
// Spool layout under ServerOptions.root:
//   incoming/<id>.req   -- submitted requests (write elsewhere, rename in)
//   active/<id>.req     -- claimed, being executed
//   done/<id>.req       -- answered terminally (ok / timeout)
//   failed/<id>.req     -- answered as failed / invalid / rejected
//   results/responses.jsonl
//   manifests/<id>.jsonl
//   health.json
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/study.h"
#include "core/task_pool.h"
#include "service/admission.h"
#include "service/retry.h"

namespace vstack::service {

struct ServerOptions {
  /// Spool root; created (with the sub-directories) if absent.
  std::string root;

  /// Idle poll interval [s]; sleeps are interruptible by `stop`.
  double poll_interval_s = 0.2;

  /// Health snapshot cadence [s]; 0 writes only at startup/shutdown.
  double health_interval_s = 2.0;

  /// Stop after this many terminal responses; 0 = run until `stop` fires.
  std::size_t max_requests = 0;

  /// Exit after the spool has been empty this long [s]; 0 = never.  Lets
  /// batch drivers (CI chaos harness) run the server to quiescence.
  double idle_exit_s = 0.0;

  /// Default per-request deadline [s] for requests that set none; 0 keeps
  /// them unlimited.
  double default_deadline_s = 0.0;

  RetryPolicy retry;
  AdmissionOptions admission;

  /// Campaign requests dispatch to a multi-process shard fleet of this
  /// many workers instead of in-process threads; 0 keeps the in-process
  /// path.  Each request gets its own job directory under root/jobs/<id>,
  /// so a worker crash (or poison scenario) is isolated from the server
  /// process -- the quarantine + merge machinery of src/shard applies per
  /// request.  Requires worker_command.
  std::size_t shard_workers = 0;

  /// argv prefix for shard worker processes (typically the server's own
  /// binary); see shard::SupervisorOptions::worker_command.
  std::vector<std::string> worker_command;

  /// Default scheduling for requests with jobs = 0.
  core::ExecutionPolicy execution;

  /// Server stop token.  vstack_cli serve passes the SIGINT/SIGTERM
  /// shutdown token; when it fires the in-flight request is cancelled at
  /// the next chunk/iteration boundary and left in active/ WITHOUT a
  /// response, so the next start resumes it from its manifest.
  Deadline stop;

  void validate() const;
};

struct ServerStats {
  std::size_t served = 0;       // terminal responses written
  std::size_t ok = 0;
  std::size_t failed = 0;
  std::size_t timeout = 0;
  std::size_t invalid = 0;
  std::size_t rejected = 0;     // REJECTED_OVERLOAD
  std::size_t degraded = 0;     // ran with reduced trials
  std::size_t retries = 0;      // extra attempts across all requests
  std::size_t recovered = 0;    // active/ requests adopted at startup
  bool interrupted = false;     // stop token fired

  std::string summary() const;
};

class SpoolServer {
 public:
  SpoolServer(const core::StudyContext& ctx, ServerOptions options);

  const ServerOptions& options() const { return options_; }

  /// Create the spool layout, recover active/ requests, then poll until
  /// the stop token fires (or max_requests / idle_exit_s is hit).
  ServerStats run();

 private:
  const core::StudyContext& ctx_;
  ServerOptions options_;
};

}  // namespace vstack::service
