// Bounded retry with capped exponential backoff and deterministic jitter.
//
// The service retries a failed request a few times before declaring it
// failed; backoff spaces the attempts out so a transiently overloaded box
// (or a flaky filesystem) gets room to recover, and jitter decorrelates
// retries across requests so a burst of failures does not re-collide.
//
// Everything here is deterministic and clock-free by design: the jitter
// comes from a hash of (salt, attempt), not a live RNG, and the sleep is a
// caller-injected function -- tests drive the schedule with a fake sleeper
// and assert the exact sequence of delays.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

#include "common/deadline.h"

namespace vstack::service {

struct RetryPolicy {
  /// Total tries, including the first (1 = no retry).
  std::size_t max_attempts = 3;

  /// Backoff before retry k (k = 2..max_attempts):
  ///   initial_backoff_s * multiplier^(k-2), capped at max_backoff_s,
  /// then scaled by a jitter factor in [1 - jitter, 1 + jitter].
  double initial_backoff_s = 0.25;
  double backoff_multiplier = 2.0;
  double max_backoff_s = 10.0;
  double jitter_fraction = 0.2;

  void validate() const;

  /// Backoff to sleep before attempt `next_attempt` (2-based; attempt 1
  /// never waits).  `salt` decorrelates concurrent requests -- the service
  /// hashes the request id.  Pure function of its arguments.
  double backoff_before(std::size_t next_attempt, std::uint64_t salt) const;
};

/// Outcome of a retried operation.
struct RetryRun {
  bool ok = false;
  std::size_t attempts = 0;       // tries actually made
  double backoff_total_s = 0.0;   // requested sleep, summed
  std::string last_error;         // from the final failed attempt
};

/// Sleep hook: called with the jittered backoff before each retry.  The
/// server passes an interruptible sleep bound to its stop token; tests pass
/// a recorder.
using SleepFn = std::function<void(double seconds)>;

/// Run `attempt` (1-based try index) until it returns without throwing, up
/// to policy.max_attempts tries.  Between tries, sleeps the jittered
/// backoff via `sleep`.  Gives up immediately -- no further tries, no
/// sleep -- once `stop` expires.  std::exception from the body is caught
/// and recorded; anything else propagates.
RetryRun run_with_retry(const RetryPolicy& policy, const Deadline& stop,
                        std::uint64_t salt,
                        const std::function<void(std::size_t)>& attempt,
                        const SleepFn& sleep);

/// FNV-1a of a string -- the salt the server feeds run_with_retry.
std::uint64_t retry_salt(const std::string& s);

}  // namespace vstack::service
