// Admission control and graceful degradation for the campaign service.
//
// Two bounded resources: spool queue depth (files waiting in incoming/) and
// the estimated peak working set of a single request.  The controller maps
// the current pressure onto one of three decisions:
//
//   Accept  -- run as requested.
//   Degrade -- run with a reduced Monte-Carlo trial count (trials divided
//              by degrade_trial_divisor, floor 1) and `degraded: 1` in the
//              response; keeps latency bounded when the queue backs up.
//   Reject  -- answer REJECTED_OVERLOAD without running; the client must
//              resubmit.  Applied to queue overflow and to requests whose
//              own working set exceeds the memory bound.
//
// The decision is a pure function of (queue depth, estimated bytes), so it
// unit-tests without a server and behaves identically on every poll.
#pragma once

#include <cstddef>
#include <string>

namespace vstack::service {

struct AdmissionOptions {
  /// Waiting requests beyond this are rejected (newest first; the oldest
  /// max_queue_depth keep their place).
  std::size_t max_queue_depth = 16;

  /// Reject any single request whose estimated working set exceeds this.
  std::size_t max_request_bytes = 512ull << 20;  // 512 MiB

  /// Degrade when the queue is at least this full (fraction of
  /// max_queue_depth); 1.0 disables degradation short of rejection.
  double degrade_depth_fraction = 0.5;

  /// Trial divisor applied to degraded campaign/contingency requests.
  std::size_t degrade_trial_divisor = 4;

  void validate() const;

  /// Queue depth at which Degrade starts (ceil of the fraction, >= 1).
  std::size_t degrade_threshold() const;
};

enum class AdmissionDecision { Accept, Degrade, Reject };

const char* to_string(AdmissionDecision decision);

struct AdmissionVerdict {
  AdmissionDecision decision = AdmissionDecision::Accept;
  std::string reason;  // nonempty for Degrade / Reject
};

class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options);

  const AdmissionOptions& options() const { return options_; }

  /// Decide for a request at the FRONT of the queue: `queue_depth` counts
  /// every waiting request including this one; `estimated_bytes` is the
  /// request's own working-set estimate.
  AdmissionVerdict decide(std::size_t queue_depth,
                          std::size_t estimated_bytes) const;

  /// True when a request at queue position `position` (0-based, oldest
  /// first) should be shed outright: position >= max_queue_depth.
  bool overflows(std::size_t position) const {
    return position >= options_.max_queue_depth;
  }

  /// Degraded trial count: trials / degrade_trial_divisor, floor 1.
  std::size_t degraded_trials(std::size_t trials) const;

 private:
  AdmissionOptions options_;
};

}  // namespace vstack::service
