#include "service/request.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <set>
#include <sstream>

#include "common/error.h"

namespace vstack::service {

namespace {

std::string trim(const std::string& s) {
  const auto first = s.find_first_not_of(" \t\r");
  if (first == std::string::npos) return "";
  const auto last = s.find_last_not_of(" \t\r");
  return s.substr(first, last - first + 1);
}

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// Same reporting shape as pdn/config_io.cpp: every rejection names the
/// source and line so a bad spool file is a one-look fix.
struct LineContext {
  const std::string* source = nullptr;
  std::size_t line_no = 0;

  [[noreturn]] void fail(const std::string& message) const {
    VS_FAIL("service request " + *source + " line " +
            std::to_string(line_no) + ": " + message);
  }

  double number(const std::string& key, const std::string& value) const {
    double v = 0.0;
    try {
      std::size_t used = 0;
      v = std::stod(value, &used);
      if (used != value.size()) throw Error("trailing characters");
    } catch (const std::exception&) {
      fail("key '" + key + "' expects a number, got '" + value + "'");
    }
    if (!std::isfinite(v)) {
      fail("key '" + key + "' must be finite, got '" + value + "'");
    }
    return v;
  }

  std::size_t integer(const std::string& key, const std::string& value,
                      std::size_t min, std::size_t max) const {
    const double v = number(key, value);
    if (v < 0.0 || v != std::floor(v)) {
      fail("key '" + key + "' expects a non-negative integer, got '" + value +
           "'");
    }
    const auto n = static_cast<std::size_t>(v);
    if (n < min || n > max) {
      fail("key '" + key + "' must lie in [" + std::to_string(min) + ", " +
           std::to_string(max) + "], got '" + value + "'");
    }
    return n;
  }
};

}  // namespace

const char* to_string(RequestKind kind) {
  switch (kind) {
    case RequestKind::Campaign: return "campaign";
    case RequestKind::Contingency: return "contingency";
    case RequestKind::Sweep: return "sweep";
    case RequestKind::RideThrough: return "ride-through";
  }
  return "?";
}

std::size_t RequestSpec::estimated_bytes(std::size_t resolved_jobs) const {
  // Grid nodes per layer plus converter/rail bookkeeping; ~1 KiB per node
  // covers the CSR matrix (~5 nnz/row), the ILU factor, and the handful of
  // solver vectors with headroom.  Sweeps build a model per sweep point but
  // only `jobs` of them live at once, same bound.
  const std::size_t nodes = grid * grid * layers + 64 * layers;
  return nodes * 1024 * std::max<std::size_t>(1, resolved_jobs);
}

void RequestSpec::validate() const {
  VS_REQUIRE(!id.empty(), "request id must not be empty");
  VS_REQUIRE(layers >= 1 && layers <= 64, "layers must lie in [1, 64]");
  VS_REQUIRE(grid >= 2 && grid <= 512, "grid must lie in [2, 512]");
  VS_REQUIRE(std::isfinite(imbalance) && imbalance >= 0.0 && imbalance <= 1.0,
             "imbalance must lie in [0, 1]");
  VS_REQUIRE(trials >= 1 && trials <= 100000,
             "trials must lie in [1, 100000]");
  VS_REQUIRE(duration_s > 0.0, "duration_s must be positive");
  VS_REQUIRE(deadline_s >= 0.0, "deadline_s must be >= 0");
  VS_REQUIRE(jobs <= 4096, "jobs is bounded (<= 4096)");
  if (kind == RequestKind::Sweep) {
    VS_REQUIRE(figure == "5a" || figure == "5b" || figure == "6" ||
                   figure == "7" || figure == "8",
               "figure must be one of 5a|5b|6|7|8");
  }
  if (kind == RequestKind::RideThrough || kind == RequestKind::Campaign) {
    VS_REQUIRE(fault_time_s >= 0.0 && fault_time_s < duration_s,
               "fault_time_s must lie inside the transient horizon");
  }
}

RequestSpec parse_request(const std::string& text, const std::string& id,
                          const std::string& source_name) {
  RequestSpec spec;
  spec.id = id;
  bool have_kind = false;
  std::set<std::string> seen;

  LineContext ctx;
  ctx.source = &source_name;
  std::istringstream in(text);
  std::string raw;
  while (std::getline(in, raw)) {
    ++ctx.line_no;
    // Strip comments ('#' or ';' to end of line), then blank-skip.
    const auto hash = raw.find_first_of("#;");
    if (hash != std::string::npos) raw.erase(hash);
    const std::string line = trim(raw);
    if (line.empty()) continue;

    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      ctx.fail("expected 'key = value', got '" + line + "'");
    }
    const std::string key = lower(trim(line.substr(0, eq)));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) ctx.fail("empty key");
    if (value.empty()) ctx.fail("key '" + key + "' has an empty value");
    if (!seen.insert(key).second) ctx.fail("duplicate key '" + key + "'");

    if (key == "id") {
      if (value != id) {
        ctx.fail("id '" + value + "' does not match the spool name '" + id +
                 "'");
      }
    } else if (key == "kind") {
      const std::string v = lower(value);
      if (v == "campaign") spec.kind = RequestKind::Campaign;
      else if (v == "contingency") spec.kind = RequestKind::Contingency;
      else if (v == "sweep") spec.kind = RequestKind::Sweep;
      else if (v == "ride-through") spec.kind = RequestKind::RideThrough;
      else ctx.fail("unknown kind '" + value +
                    "' (campaign|contingency|sweep|ride-through)");
      have_kind = true;
    } else if (key == "topology") {
      const std::string v = lower(value);
      if (v == "stacked") spec.stacked = true;
      else if (v == "regular") spec.stacked = false;
      else ctx.fail("unknown topology '" + value + "' (stacked|regular)");
    } else if (key == "layers") {
      spec.layers = ctx.integer(key, value, 1, 64);
    } else if (key == "grid") {
      spec.grid = ctx.integer(key, value, 2, 512);
    } else if (key == "imbalance") {
      spec.imbalance = ctx.number(key, value);
    } else if (key == "trials") {
      spec.trials = ctx.integer(key, value, 1, 100000);
    } else if (key == "faults") {
      spec.faults_per_trial = ctx.integer(key, value, 0, 1024);
    } else if (key == "seed") {
      spec.seed = ctx.integer(key, value, 0, 1ull << 62);
    } else if (key == "duration_s") {
      spec.duration_s = ctx.number(key, value);
      if (spec.duration_s <= 0.0) {
        ctx.fail("key 'duration_s' must be positive");
      }
    } else if (key == "mode") {
      const std::string v = lower(value);
      if (v == "mc" || v == "monte-carlo") spec.monte_carlo = true;
      else if (v == "n-1") spec.monte_carlo = false;
      else ctx.fail("unknown mode '" + value + "' (mc|n-1)");
    } else if (key == "figure") {
      spec.figure = lower(value);
    } else if (key == "fault_level") {
      spec.fault_level = ctx.integer(key, value, 0, 63);
    } else if (key == "keep") {
      spec.keep = ctx.integer(key, value, 0, 100000);
    } else if (key == "fault_time_s") {
      spec.fault_time_s = ctx.number(key, value);
    } else if (key == "deadline_s") {
      spec.deadline_s = ctx.number(key, value);
      if (spec.deadline_s < 0.0) ctx.fail("key 'deadline_s' must be >= 0");
    } else if (key == "jobs") {
      spec.jobs = ctx.integer(key, value, 0, 4096);
    } else {
      ctx.fail("unknown key '" + key + "'");
    }
  }

  ctx.line_no += 1;  // report end-of-file complaints past the last line
  if (!have_kind) ctx.fail("missing required key 'kind'");
  try {
    spec.validate();
  } catch (const Error& e) {
    VS_FAIL("service request " + source_name + ": " + e.what());
  }
  return spec;
}

std::string write_request(const RequestSpec& spec) {
  std::ostringstream oss;
  oss << "id = " << spec.id << "\n"
      << "kind = " << to_string(spec.kind) << "\n"
      << "topology = " << (spec.stacked ? "stacked" : "regular") << "\n"
      << "layers = " << spec.layers << "\n"
      << "grid = " << spec.grid << "\n"
      << "imbalance = " << spec.imbalance << "\n"
      << "trials = " << spec.trials << "\n"
      << "faults = " << spec.faults_per_trial << "\n"
      << "seed = " << spec.seed << "\n"
      << "duration_s = " << spec.duration_s << "\n"
      << "mode = " << (spec.monte_carlo ? "mc" : "n-1") << "\n"
      << "figure = " << spec.figure << "\n"
      << "fault_level = " << spec.fault_level << "\n"
      << "keep = " << spec.keep << "\n"
      << "fault_time_s = " << spec.fault_time_s << "\n"
      << "deadline_s = " << spec.deadline_s << "\n"
      << "jobs = " << spec.jobs << "\n";
  return oss.str();
}

}  // namespace vstack::service
