#include "service/server.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>
#include <vector>

#include "common/durable_file.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "core/campaign.h"
#include "core/campaign_manifest.h"
#include "core/contingency.h"
#include "core/sweeps.h"
#include "pdn/ride_through.h"
#include "power/workload.h"
#include "service/request.h"
#include "shard/job.h"
#include "shard/supervisor.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"

namespace fs = std::filesystem;

namespace vstack::service {

namespace {

// Service telemetry: the health snapshot dumps the whole registry, so
// these double as the service's live gauges.
const telemetry::Counter t_requests("service.requests");
const telemetry::Counter t_ok("service.requests_ok");
const telemetry::Counter t_failed("service.requests_failed");
const telemetry::Counter t_timeout("service.requests_timeout");
const telemetry::Counter t_invalid("service.requests_invalid");
const telemetry::Counter t_rejected("service.rejected_overload");
const telemetry::Counter t_degraded("service.degraded");
const telemetry::Counter t_retries("service.retries");
const telemetry::Gauge g_queue_depth("service.queue_depth");
const telemetry::Gauge g_active("service.active");

// Serialization helpers shared with the campaign manifest format
// (core/campaign_manifest.h); thin aliases keep the call sites short.
std::string fmt_double(double v) { return core::fmt_double_17g(v); }

/// JSON string payload sanitizer: the response format is flat JSON without
/// escape support (same contract as the campaign manifest), so quotes and
/// control characters in diagnostics are rewritten, not escaped.
std::string sanitize(std::string s) {
  for (char& c : s) {
    if (c == '"') c = '\'';
    else if (c == '\n' || c == '\r' || c == '\t') c = ' ';
  }
  return s;
}

bool json_field(const std::string& line, const std::string& key,
                std::string& out) {
  return core::json_field(line, key, out);
}

void fnv_double(std::uint64_t& h, double v) {
  core::Fnv1a f;
  f.h = h;
  f.f64(v);
  h = f.h;
}

std::string hex64(std::uint64_t v) { return core::hex64(v); }

/// One terminal answer; rendered as a single JSONL line.
struct Response {
  std::string id;
  std::string kind;           // request kind, or "?" for unparseable files
  std::string status;         // ok|timeout|failed|invalid|rejected-overload
  bool degraded = false;
  std::size_t attempts = 1;
  double wall_seconds = 0.0;
  std::string aggregates;     // ",\"key\":value,..." fragment, may be empty
  std::string detail;         // human-readable reason; sanitized
};

std::string response_line(const Response& r) {
  std::ostringstream oss;
  oss << "{\"kind\":\"vstack-response\",\"id\":\"" << sanitize(r.id)
      << "\",\"request\":\"" << r.kind << "\",\"status\":\"" << r.status
      << "\",\"degraded\":" << (r.degraded ? 1 : 0)
      << ",\"attempts\":" << r.attempts
      << ",\"wall_seconds\":" << fmt_double(r.wall_seconds) << r.aggregates;
  if (!r.detail.empty()) oss << ",\"detail\":\"" << sanitize(r.detail) << "\"";
  oss << "}";
  return oss.str();
}

/// The CLI's transient-fault supervisor policy (tools/vstack_cli.cpp keeps
/// an identical copy for its interactive commands; docs/fault_model.md
/// explains the calibration).
sc::SupervisorConfig service_supervisor_policy() {
  sc::SupervisorConfig sup;
  sup.trip_fraction = 0.10;
  sup.recovery_fraction = 0.08;
  sup.sense_interval = 5e-9;
  sup.detection_latency = 20e-9;
  sup.action_dwell = 60e-9;
  sup.watchdog_timeout = 300e-9;
  return sup;
}

/// Outcome of one execution attempt that ran to a verdict (vs throwing).
struct RunOutcome {
  bool cancelled = false;   // the deadline/stop token truncated the run
  std::string aggregates;
  std::string detail;
};

std::vector<fs::path> sorted_requests(const fs::path& dir) {
  std::vector<fs::path> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    if (entry.path().extension() != ".req") continue;
    out.push_back(entry.path());
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::string read_file(const fs::path& path) {
  std::ifstream file(path);
  VS_REQUIRE(static_cast<bool>(file),
             "cannot open '" + path.string() + "'");
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

void interruptible_sleep(double seconds, const Deadline& stop) {
  const double slice = 0.05;
  double remaining = seconds;
  while (remaining > 0.0 && !stop.expired()) {
    const double nap = std::min(slice, remaining);
    std::this_thread::sleep_for(std::chrono::duration<double>(nap));
    remaining -= nap;
  }
}

}  // namespace

void ServerOptions::validate() const {
  VS_REQUIRE(!root.empty(), "serve: spool root must not be empty");
  VS_REQUIRE(poll_interval_s > 0.0 && poll_interval_s <= 60.0,
             "poll_interval_s must lie in (0, 60]");
  VS_REQUIRE(health_interval_s >= 0.0, "health_interval_s must be >= 0");
  VS_REQUIRE(idle_exit_s >= 0.0, "idle_exit_s must be >= 0");
  VS_REQUIRE(default_deadline_s >= 0.0, "default_deadline_s must be >= 0");
  retry.validate();
  admission.validate();
  execution.validate();
  VS_REQUIRE(shard_workers == 0 || !worker_command.empty(),
             "shard_workers needs a worker_command to exec");
}

std::string ServerStats::summary() const {
  std::ostringstream oss;
  oss << served << " served (" << ok << " ok, " << timeout << " timeout, "
      << failed << " failed, " << invalid << " invalid, " << rejected
      << " rejected-overload); " << degraded << " degraded, " << retries
      << " retries, " << recovered << " recovered";
  if (interrupted) oss << "; INTERRUPTED (in-flight request kept in active/)";
  return oss.str();
}

SpoolServer::SpoolServer(const core::StudyContext& ctx, ServerOptions options)
    : ctx_(ctx), options_(std::move(options)) {
  options_.validate();
}

namespace {

/// All the per-run state the poll loop threads through; keeps SpoolServer's
/// public surface small.
class ServerRun {
 public:
  ServerRun(const core::StudyContext& ctx, const ServerOptions& options)
      : ctx_(ctx),
        opts_(options),
        admission_(options.admission),
        root_(options.root),
        incoming_(root_ / "incoming"),
        active_(root_ / "active"),
        done_(root_ / "done"),
        failed_(root_ / "failed") {}

  ServerStats run() {
    ensure_layout();
    // repair_torn_tail: a kill -9 mid-response-append must not let the next
    // incarnation concatenate its first response onto the torn fragment --
    // that would lose the answer AND corrupt duplicate-id recovery.
    responses_.open((root_ / "results" / "responses.jsonl").string(),
                    /*repair_torn_tail=*/true);
    const std::set<std::string> answered = load_answered_ids();
    recover_active(answered);
    write_health();

    double idle_since = telemetry::monotonic_seconds();
    double last_health = telemetry::monotonic_seconds();
    for (;;) {
      if (opts_.stop.expired()) {
        stats_.interrupted = true;
        break;
      }
      if (opts_.max_requests > 0 && stats_.served >= opts_.max_requests) {
        break;
      }
      if (opts_.health_interval_s > 0.0 &&
          telemetry::monotonic_seconds() - last_health >=
              opts_.health_interval_s) {
        write_health();
        last_health = telemetry::monotonic_seconds();
      }

      shed_overflow();

      // Oldest recovered request first, then the head of incoming/.
      fs::path request = oldest_active();
      if (request.empty()) {
        const auto incoming = sorted_requests(incoming_);
        if (!incoming.empty()) {
          request = active_ / incoming.front().filename();
          fs::rename(incoming.front(), request);  // claim
          // Crash here: the request sits in active/ unanswered -- startup
          // recovery must re-run it, not lose it.
          VS_FAILPOINT("server.claim.after_rename");
        }
      }
      g_queue_depth.set(static_cast<double>(queue_depth()));

      if (request.empty()) {
        if (opts_.idle_exit_s > 0.0 &&
            telemetry::monotonic_seconds() - idle_since >= opts_.idle_exit_s) {
          VS_LOG_INFO("serve: spool idle for " << opts_.idle_exit_s
                                               << " s; exiting");
          break;
        }
        interruptible_sleep(opts_.poll_interval_s, opts_.stop);
        continue;
      }

      idle_since = telemetry::monotonic_seconds();
      const bool interrupted = process(request);
      if (interrupted) {
        stats_.interrupted = true;
        break;
      }
    }
    write_health();
    responses_.close();
    return stats_;
  }

 private:
  void ensure_layout() {
    for (const fs::path& dir :
         {incoming_, active_, done_, failed_, root_ / "results",
          root_ / "manifests"}) {
      fs::create_directories(dir);
    }
    // Orphan temp files from a previous incarnation killed mid-
    // atomic_write_file (health snapshots, quarantine records under
    // jobs/).  Startup is the one moment no sibling can have a temp file
    // in flight here.
    const std::size_t swept =
        sweep_stale_temp_files(root_.string(), /*recursive=*/true);
    if (swept > 0) {
      VS_LOG_WARN("serve: swept " << swept << " stale temp file(s) from "
                                  << root_);
    }
  }

  std::set<std::string> load_answered_ids() const {
    std::set<std::string> ids;
    std::ifstream in(root_ / "results" / "responses.jsonl");
    if (!in) return ids;
    std::string line;
    while (std::getline(in, line)) {
      std::string kind, id;
      // A torn final line (kill -9 mid-append) simply fails the field
      // check and is ignored; its request is still in active/ and re-runs.
      if (!json_field(line, "kind", kind) || kind != "vstack-response") {
        continue;
      }
      if (json_field(line, "id", id)) ids.insert(id);
    }
    return ids;
  }

  /// Startup recovery: a request in active/ either already has a response
  /// (the crash hit between append and rename -- finish the move) or it
  /// does not (re-run it; its manifest resumes finished scenarios).
  void recover_active(const std::set<std::string>& answered) {
    for (const fs::path& path : sorted_requests(active_)) {
      const std::string id = path.stem().string();
      if (answered.count(id) > 0) {
        fs::rename(path, done_ / path.filename());
        VS_LOG_INFO("serve: " << id << " already answered; moved to done/");
      } else {
        ++stats_.recovered;
        VS_LOG_INFO("serve: recovering in-flight request " << id);
      }
    }
  }

  std::size_t queue_depth() const {
    return sorted_requests(incoming_).size();
  }

  fs::path oldest_active() const {
    const auto active = sorted_requests(active_);
    return active.empty() ? fs::path() : active.front();
  }

  /// Queue-overflow shedding: everything past the depth bound answers
  /// REJECTED_OVERLOAD immediately, oldest requests keep their place.
  void shed_overflow() {
    const auto incoming = sorted_requests(incoming_);
    for (std::size_t i = 0; i < incoming.size(); ++i) {
      if (!admission_.overflows(i)) continue;
      Response r;
      r.id = incoming[i].stem().string();
      r.kind = "?";
      r.status = "rejected-overload";
      r.detail = "queue depth " + std::to_string(incoming.size()) +
                 " exceeds the bound of " +
                 std::to_string(admission_.options().max_queue_depth);
      finish(incoming[i], r, failed_);
      ++stats_.rejected;
      t_rejected.add();
    }
  }

  /// Durable terminal answer: the response line is fsynced BEFORE the
  /// request file leaves the spool stage, so a crash between the two
  /// re-runs recovery (which sees the answer and just finishes the move)
  /// instead of losing or double-answering the request.
  void finish(const fs::path& request, const Response& r,
              const fs::path& stage) {
    // Crash here: the request is fully executed but unanswered -- recovery
    // re-runs it from active/ (the campaign manifest resumes the trials).
    VS_FAILPOINT("server.response.before_append");
    responses_.append_line(response_line(r));
    // Crash here: the answer is durable but the request file still sits in
    // active/ -- recovery must finish the move, not answer twice.
    VS_FAILPOINT("server.response.after_append");
    fs::rename(request, stage / request.filename());
    VS_FAILPOINT("server.response.after_rename");
    ++stats_.served;
    t_requests.add();
  }

  /// Execute one claimed request.  Returns true when the server stop token
  /// interrupted it (request stays in active/, unanswered).
  bool process(const fs::path& path) {
    const std::string id = path.stem().string();
    VS_LOG_INFO("serve: processing " << id);
    g_active.set(1.0);
    const bool interrupted = process_inner(path, id);
    g_active.set(0.0);
    return interrupted;
  }

  bool process_inner(const fs::path& path, const std::string& id) {
    Response r;
    r.id = id;
    r.kind = "?";

    RequestSpec spec;
    try {
      spec = parse_request(read_file(path), id, path.filename().string());
    } catch (const std::exception& e) {
      r.status = "invalid";
      r.detail = e.what();
      finish(path, r, failed_);
      ++stats_.invalid;
      t_invalid.add();
      return false;
    }
    r.kind = to_string(spec.kind);

    // Admission: depth counts the waiting queue plus this request.
    const std::size_t jobs =
        spec.jobs > 0 ? spec.jobs : opts_.execution.resolved_jobs();
    const AdmissionVerdict verdict =
        admission_.decide(queue_depth() + 1, spec.estimated_bytes(jobs));
    if (verdict.decision == AdmissionDecision::Reject) {
      r.status = "rejected-overload";
      r.detail = verdict.reason;
      finish(path, r, failed_);
      ++stats_.rejected;
      t_rejected.add();
      return false;
    }
    const bool degraded = verdict.decision == AdmissionDecision::Degrade;
    if (degraded) {
      VS_LOG_WARN("serve: " << id << " degraded: " << verdict.reason);
      ++stats_.degraded;
      t_degraded.add();
    }
    r.degraded = degraded;

    const double deadline_s =
        spec.deadline_s > 0.0 ? spec.deadline_s : opts_.default_deadline_s;
    const Deadline request_deadline =
        Deadline::limited_by(opts_.stop, deadline_s);
    const double start = telemetry::monotonic_seconds();
    const auto own_deadline_elapsed = [&] {
      return deadline_s > 0.0 &&
             telemetry::monotonic_seconds() - start >= deadline_s;
    };

    RunOutcome outcome;
    const RetryRun retry = run_with_retry(
        opts_.retry, opts_.stop, retry_salt(id),
        [&](std::size_t) {
          outcome = execute(spec, degraded, jobs, request_deadline);
        },
        [&](double seconds) { interruptible_sleep(seconds, opts_.stop); });
    if (retry.attempts > 1) {
      stats_.retries += retry.attempts - 1;
      t_retries.add(static_cast<double>(retry.attempts - 1));
    }
    r.attempts = std::max<std::size_t>(1, retry.attempts);
    r.wall_seconds = telemetry::monotonic_seconds() - start;

    // Stop-token interruption dominates everything EXCEPT a request whose
    // own deadline had already elapsed (that one is terminal either way).
    if (opts_.stop.expired() && !own_deadline_elapsed()) {
      VS_LOG_INFO("serve: interrupted while running " << id
                                                      << "; kept in active/");
      return true;
    }

    if (!retry.ok) {
      if (request_deadline.expired() && own_deadline_elapsed()) {
        r.status = "timeout";
        ++stats_.timeout;
        t_timeout.add();
      } else {
        r.status = "failed";
        ++stats_.failed;
        t_failed.add();
      }
      r.detail = retry.last_error;
      r.aggregates = outcome.aggregates;  // last successful partials, if any
      finish(path, r, failed_);
      return false;
    }

    if (outcome.cancelled) {
      r.status = "timeout";
      ++stats_.timeout;
      t_timeout.add();
    } else {
      r.status = "ok";
      ++stats_.ok;
      t_ok.add();
    }
    r.aggregates = outcome.aggregates;
    r.detail = outcome.detail;
    finish(path, r, done_);
    return false;
  }

  // -- request execution ----------------------------------------------------

  pdn::StackupConfig resolve_config(const RequestSpec& spec) const {
    pdn::StackupConfig cfg = ctx_.base;
    cfg.topology = spec.stacked ? pdn::PdnTopology::VoltageStacked
                                : pdn::PdnTopology::Regular3d;
    cfg.layer_count = spec.layers;
    cfg.grid_nx = cfg.grid_ny = spec.grid;
    cfg.validate();
    return cfg;
  }

  core::ExecutionPolicy execution_for(std::size_t jobs,
                                      const Deadline& deadline) const {
    core::ExecutionPolicy policy = opts_.execution;
    policy.jobs = jobs;
    policy.deadline = deadline;
    return policy;
  }

  RunOutcome execute(const RequestSpec& spec, bool degraded,
                     std::size_t jobs, const Deadline& deadline) const {
    switch (spec.kind) {
      case RequestKind::Campaign:
        return execute_campaign(spec, degraded, jobs, deadline);
      case RequestKind::Contingency:
        return execute_contingency(spec, degraded, jobs, deadline);
      case RequestKind::Sweep:
        return execute_sweep(spec, jobs, deadline);
      case RequestKind::RideThrough:
        return execute_ride_through(spec, deadline);
    }
    VS_FAIL("unreachable request kind");
  }

  std::size_t effective_trials(const RequestSpec& spec, bool degraded) const {
    return degraded ? admission_.degraded_trials(spec.trials) : spec.trials;
  }

  RunOutcome execute_campaign(const RequestSpec& spec, bool degraded,
                              std::size_t jobs,
                              const Deadline& deadline) const {
    const auto cfg = resolve_config(spec);
    const auto acts = power::interleaved_layer_activities(cfg.layer_count,
                                                          spec.imbalance);
    core::CampaignOptions opt;
    opt.contingency.trials = effective_trials(spec, degraded);
    opt.contingency.faults_per_trial = spec.faults_per_trial;
    opt.contingency.converter_faults_per_trial =
        cfg.is_voltage_stacked() ? 32 : 0;
    opt.contingency.seed = spec.seed;
    opt.ride_through.transient.duration = spec.duration_s;
    opt.ride_through.supervisor = service_supervisor_policy();
    opt.fault_time =
        spec.fault_time_s > 0.0 ? spec.fault_time_s : spec.duration_s / 8.0;
    // Per-scenario wall timeouts couple results to machine speed; the
    // request deadline is the service's hang guard, so scenarios run
    // untimed and responses stay bit-reproducible.
    opt.scenario_timeout_s = 0.0;
    opt.manifest_path =
        (root_ / "manifests" / (spec.id + ".jsonl")).string();
    opt.execution = execution_for(jobs, deadline);

    if (opts_.shard_workers > 0) {
      return execute_campaign_sharded(spec, opt, cfg, jobs, deadline);
    }

    const core::CampaignRunner runner(ctx_, cfg);
    const core::CampaignReport report = runner.run(acts, opt);

    std::ostringstream agg;
    agg << ",\"trials\":" << report.planned
        << ",\"completed\":" << report.scenarios.size()
        << ",\"recovered\":" << report.recovered
        << ",\"degraded_outcomes\":" << report.degraded
        << ",\"lost\":" << report.lost
        << ",\"timed_out_scenarios\":" << report.timed_out
        << ",\"worst_droop\":" << fmt_double(report.worst_droop)
        << ",\"resumed\":" << report.resumed
        << ",\"evaluated\":" << report.evaluated;
    RunOutcome out;
    out.cancelled = report.cancelled;
    out.aggregates = agg.str();
    out.detail = report.summary();
    return out;
  }

  /// Campaign on a multi-process worker fleet: one job directory per
  /// request under root/jobs/<id>, supervised locally, merged back into
  /// the same aggregate shape the in-process path answers with.  Worker
  /// crashes and poison scenarios are isolated from the server process;
  /// quarantined trials surface in the aggregates instead of wedging the
  /// request in a crash loop.
  RunOutcome execute_campaign_sharded(const RequestSpec& spec,
                                      const core::CampaignOptions& opt,
                                      const pdn::StackupConfig& cfg,
                                      std::size_t jobs,
                                      const Deadline& deadline) const {
    shard::JobSpec jspec;
    jspec.stacked = cfg.is_voltage_stacked();
    jspec.layers = cfg.layer_count;
    jspec.grid = cfg.grid_nx;
    jspec.imbalance = spec.imbalance;
    jspec.trials = opt.contingency.trials;
    jspec.faults_per_trial = opt.contingency.faults_per_trial;
    jspec.converter_faults_per_trial =
        opt.contingency.converter_faults_per_trial;
    jspec.seed = opt.contingency.seed;
    jspec.duration_s = opt.ride_through.transient.duration;
    jspec.fault_time_s = opt.fault_time;
    jspec.scenario_timeout_s = opt.scenario_timeout_s;
    jspec.max_retries = opt.max_retries;
    jspec.retry_relax = opt.retry_tolerance_relax;

    shard::SupervisorOptions sup;
    sup.job_dir = (root_ / "jobs" / spec.id).string();
    sup.shards = opts_.shard_workers;
    sup.worker_command = opts_.worker_command;
    sup.worker_jobs = jobs > 0 ? jobs : 1;
    sup.stop = deadline;

    const shard::SupervisorReport result =
        shard::run_supervised_job(ctx_, jspec, sup);
    const core::CampaignReport& report = result.merge.report;

    std::ostringstream agg;
    agg << ",\"trials\":" << report.planned
        << ",\"completed\":" << report.scenarios.size()
        << ",\"recovered\":" << report.recovered
        << ",\"degraded_outcomes\":" << report.degraded
        << ",\"lost\":" << report.lost
        << ",\"timed_out_scenarios\":" << report.timed_out
        << ",\"worst_droop\":" << fmt_double(report.worst_droop)
        << ",\"resumed\":0,\"evaluated\":" << report.evaluated
        << ",\"shard_workers\":" << sup.shards
        << ",\"worker_restarts\":" << result.workers_restarted
        << ",\"quarantined\":" << result.merge.quarantined_trials.size();
    RunOutcome out;
    // Quarantine is a terminal verdict for those trials, not a truncation:
    // only a fired deadline (or trials nobody could finish) re-queues work.
    out.cancelled =
        result.interrupted || !result.merge.missing_trials.empty();
    out.aggregates = agg.str();
    out.detail = result.merge.summary();
    return out;
  }

  RunOutcome execute_contingency(const RequestSpec& spec, bool degraded,
                                 std::size_t jobs,
                                 const Deadline& deadline) const {
    const auto cfg = resolve_config(spec);
    const auto acts = power::interleaved_layer_activities(cfg.layer_count,
                                                          spec.imbalance);
    core::ContingencyOptions opt;
    opt.trials = effective_trials(spec, degraded);
    opt.faults_per_trial = spec.faults_per_trial;
    opt.seed = spec.seed;
    opt.execution = execution_for(jobs, deadline);

    const core::ContingencyEngine engine(ctx_, cfg);
    const core::ContingencyReport report =
        spec.monte_carlo ? engine.run_monte_carlo(acts, opt)
                         : engine.run_n_minus_1(acts, opt);

    std::ostringstream agg;
    agg << ",\"cases\":" << report.planned
        << ",\"completed\":" << report.cases.size()
        << ",\"survivable\":" << report.survivable
        << ",\"degraded_cases\":" << report.degraded
        << ",\"infeasible\":" << report.infeasible
        << ",\"worst_deviation\":"
        << fmt_double(report.worst_post_fault_deviation);
    RunOutcome out;
    out.cancelled = report.cancelled;
    out.aggregates = agg.str();
    return out;
  }

  RunOutcome execute_sweep(const RequestSpec& spec, std::size_t jobs,
                           const Deadline& deadline) const {
    // Sweeps reproduce the paper's figure shapes from ctx directly; the
    // request's stack-shape keys do not apply (documented in
    // docs/service_mode.md).
    core::SweepOptions so;
    so.execution = execution_for(jobs, deadline);
    const core::SweepRunner sweeps(ctx_, so);

    std::uint64_t hash = 1469598103934665603ull;
    std::size_t rows = 0;
    if (spec.figure == "5a") {
      for (const auto& r : sweeps.fig5a()) {
        ++rows;
        fnv_double(hash, static_cast<double>(r.layers));
        fnv_double(hash, r.reg_dense);
        fnv_double(hash, r.reg_sparse);
        fnv_double(hash, r.reg_few);
        fnv_double(hash, r.vs_few);
      }
    } else if (spec.figure == "5b") {
      for (const auto& r : sweeps.fig5b()) {
        ++rows;
        fnv_double(hash, static_cast<double>(r.layers));
        fnv_double(hash, r.reg_25);
        fnv_double(hash, r.reg_50);
        fnv_double(hash, r.reg_75);
        fnv_double(hash, r.reg_100);
        fnv_double(hash, r.vs);
      }
    } else if (spec.figure == "6") {
      const auto result = sweeps.fig6({0.0, 0.25, 0.5, 0.75, 1.0});
      for (const auto& row : result.rows) {
        ++rows;
        fnv_double(hash, row.imbalance);
        for (const auto& v : row.vs_noise) fnv_double(hash, v ? *v : -1.0);
      }
    } else if (spec.figure == "7") {
      for (const auto& app : sweeps.fig7()) {
        ++rows;
        fnv_double(hash, app.power.median);
        fnv_double(hash, app.max_imbalance);
      }
    } else {
      const auto result = sweeps.fig8({0.1, 0.3, 0.5, 0.7, 0.9});
      for (const auto& row : result.rows) {
        ++rows;
        fnv_double(hash, row.imbalance);
        for (const auto& v : row.vs_efficiency) {
          fnv_double(hash, v ? *v : -1.0);
        }
        fnv_double(hash, row.regular_sc);
      }
    }

    std::ostringstream agg;
    agg << ",\"figure\":\"" << spec.figure << "\",\"rows\":" << rows
        << ",\"data_hash\":\"" << hex64(hash) << "\"";
    RunOutcome out;
    // The figure drivers have no committed-count channel; an expired
    // deadline means the tail rows were skipped, so label it truncated.
    out.cancelled = deadline.expired();
    out.aggregates = agg.str();
    return out;
  }

  RunOutcome execute_ride_through(const RequestSpec& spec,
                                  const Deadline& deadline) const {
    const auto cfg = resolve_config(spec);
    const auto acts = power::interleaved_layer_activities(cfg.layer_count,
                                                          spec.imbalance);
    const pdn::PdnModel model(cfg, ctx_.layer_floorplan);

    pdn::RideThroughOptions opt;
    opt.transient.duration = spec.duration_s;
    opt.supervisor = service_supervisor_policy();
    opt.transient.control.deadline = deadline;
    opt.transient.iterative.deadline = deadline;

    const std::size_t fault_level =
        spec.fault_level > 0
            ? spec.fault_level
            : std::min<std::size_t>(3, cfg.layer_count - 1);
    VS_REQUIRE(fault_level >= 1 && fault_level < cfg.layer_count,
               "fault_level must name an intermediate rail (1..layers-1)");
    pdn::TimedFaultEvent ev;
    ev.time = spec.fault_time_s > 0.0 ? spec.fault_time_s
                                      : spec.duration_s / 2.0;
    ev.label = "converter bank stuck-off";
    std::size_t seen = 0;
    const auto& converters = model.network().converters();
    for (std::size_t i = 0; i < converters.size(); ++i) {
      if (converters[i].level != fault_level) continue;
      if (seen++ >= spec.keep) ev.faults.converter_stuck_off(i);
    }
    VS_REQUIRE(seen > 0, "no converters at level " +
                             std::to_string(fault_level) +
                             " (regular topology?)");
    opt.transient.fault_events.push_back(std::move(ev));

    const auto result =
        pdn::simulate_ride_through(model, ctx_.core_model, acts, opt);
    const auto& rep = result.report;

    std::ostringstream agg;
    agg << ",\"outcome\":\"" << pdn::to_string(rep.outcome)
        << "\",\"completed\":" << (rep.ok() ? 1 : 0)
        << ",\"worst_droop\":" << fmt_double(rep.worst_droop)
        << ",\"final_droop\":" << fmt_double(rep.final_droop)
        << ",\"actions\":" << rep.actions.size();
    RunOutcome out;
    out.cancelled = !rep.ok() && deadline.expired();
    out.aggregates = agg.str();
    out.detail = rep.transient.summary();
    return out;
  }

  // -- health ---------------------------------------------------------------

  void write_health() {
    std::ostringstream oss;
    oss << "{\"kind\":\"vstack-health\",\"queue_depth\":" << queue_depth()
        << ",\"active\":" << sorted_requests(active_).size()
        << ",\"served\":" << stats_.served << ",\"ok\":" << stats_.ok
        << ",\"failed\":" << stats_.failed
        << ",\"timeout\":" << stats_.timeout
        << ",\"invalid\":" << stats_.invalid
        << ",\"rejected_overload\":" << stats_.rejected
        << ",\"degraded\":" << stats_.degraded
        << ",\"retries\":" << stats_.retries
        << ",\"recovered\":" << stats_.recovered
        << ",\"stopping\":" << (opts_.stop.expired() ? 1 : 0)
        << ",\"metrics\":" << telemetry::metrics_json() << "}\n";
    try {
      VS_FAILPOINT("server.health.write");
      atomic_write_file((root_ / "health.json").string(), oss.str());
    } catch (const std::exception& e) {
      // Health is advisory; never let a snapshot failure kill the server.
      VS_LOG_WARN("serve: health snapshot failed: " << e.what());
    }
  }

  const core::StudyContext& ctx_;
  const ServerOptions& opts_;
  AdmissionController admission_;
  fs::path root_;
  fs::path incoming_;
  fs::path active_;
  fs::path done_;
  fs::path failed_;
  DurableAppender responses_;
  ServerStats stats_;
};

}  // namespace

ServerStats SpoolServer::run() {
  VS_SPAN("service.server.run");
  ServerRun run(ctx_, options_);
  return run.run();
}

}  // namespace vstack::service
