// Analysis-request descriptions for the campaign service (vstack_cli serve).
//
// A request is a plain-text key = value file (the stackup-config grammar of
// pdn/config_io.h: '#'/';' comments, unknown keys are errors, every
// rejection carries its line number) describing ONE analysis to run:
//
//   # transient N-k campaign on a 4-layer stack
//   kind = campaign            ; campaign | contingency | sweep | ride-through
//   topology = stacked         ; stacked | regular
//   layers = 4
//   grid = 8
//   imbalance = 0.8
//   trials = 8
//   seed = 2015
//   deadline_s = 30            ; per-request wall clock; 0 = unlimited
//   jobs = 1                   ; worker threads; 0 = server default
//
// The request id is the file's basename (without the .req extension); an
// optional `id` key must agree with it, so a misdirected copy of a spool
// file fails loudly instead of answering under the wrong name.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace vstack::service {

enum class RequestKind { Campaign, Contingency, Sweep, RideThrough };

const char* to_string(RequestKind kind);

struct RequestSpec {
  std::string id;
  RequestKind kind = RequestKind::Campaign;

  // Stack shape (all kinds).
  bool stacked = true;
  std::size_t layers = 4;
  std::size_t grid = 8;
  double imbalance = 0.8;

  // Monte Carlo shape (campaign, contingency).
  std::size_t trials = 8;
  std::size_t faults_per_trial = 2;
  std::uint64_t seed = 2015;

  // Campaign / ride-through transient horizon [s].
  double duration_s = 400e-9;

  // Contingency mode: seeded Monte Carlo N-k (default) or deterministic N-1.
  bool monte_carlo = true;

  // Sweep figure: 5a | 5b | 6 | 7 | 8.
  std::string figure = "5a";

  // Ride-through demo fault: surviving phases on the struck rail and when
  // the bank sticks off.  fault_level 0 = auto (min(3, layers - 1)).
  std::size_t fault_level = 0;
  std::size_t keep = 32;
  double fault_time_s = 0.0;  // 0 = auto (half the horizon)

  // Execution shape.
  double deadline_s = 0.0;  // per-request wall clock; 0 = unlimited
  std::size_t jobs = 0;     // 0 = server default

  /// Rough peak working-set estimate [bytes] for admission control: model
  /// storage scales with node count, and parallel scenario evaluation
  /// keeps one model per worker.
  std::size_t estimated_bytes(std::size_t resolved_jobs) const;

  void validate() const;
};

/// Parse a request file.  `id` is the spool-derived request id (file
/// basename); `source_name` labels error messages.  Throws vstack::Error
/// with "service request <source> line N: ..." on any malformed or unknown
/// key, and when an explicit `id` key disagrees with `id`.
RequestSpec parse_request(const std::string& text, const std::string& id,
                          const std::string& source_name);

/// Serialize back to the same format (round-trip capable; test aid and
/// template generator for `vstack_cli serve --example`).
std::string write_request(const RequestSpec& spec);

}  // namespace vstack::service
