#include "service/admission.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"

namespace vstack::service {

void AdmissionOptions::validate() const {
  VS_REQUIRE(max_queue_depth >= 1, "max_queue_depth must be >= 1");
  VS_REQUIRE(max_request_bytes >= 1 << 20,
             "max_request_bytes must be at least 1 MiB");
  VS_REQUIRE(degrade_depth_fraction > 0.0 && degrade_depth_fraction <= 1.0,
             "degrade_depth_fraction must lie in (0, 1]");
  VS_REQUIRE(degrade_trial_divisor >= 1,
             "degrade_trial_divisor must be >= 1");
}

std::size_t AdmissionOptions::degrade_threshold() const {
  const double raw =
      std::ceil(degrade_depth_fraction * static_cast<double>(max_queue_depth));
  return std::max<std::size_t>(1, static_cast<std::size_t>(raw));
}

const char* to_string(AdmissionDecision decision) {
  switch (decision) {
    case AdmissionDecision::Accept: return "accept";
    case AdmissionDecision::Degrade: return "degrade";
    case AdmissionDecision::Reject: return "reject";
  }
  return "?";
}

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(options) {
  options_.validate();
}

AdmissionVerdict AdmissionController::decide(
    std::size_t queue_depth, std::size_t estimated_bytes) const {
  AdmissionVerdict verdict;
  if (estimated_bytes > options_.max_request_bytes) {
    std::ostringstream oss;
    oss << "estimated working set " << (estimated_bytes >> 20)
        << " MiB exceeds the " << (options_.max_request_bytes >> 20)
        << " MiB admission bound";
    verdict.decision = AdmissionDecision::Reject;
    verdict.reason = oss.str();
    return verdict;
  }
  if (queue_depth > options_.max_queue_depth) {
    std::ostringstream oss;
    oss << "queue depth " << queue_depth << " exceeds the bound of "
        << options_.max_queue_depth;
    verdict.decision = AdmissionDecision::Reject;
    verdict.reason = oss.str();
    return verdict;
  }
  if (queue_depth >= options_.degrade_threshold() &&
      options_.degrade_trial_divisor > 1) {
    std::ostringstream oss;
    oss << "queue depth " << queue_depth << " at or beyond the degrade "
        << "threshold of " << options_.degrade_threshold()
        << "; Monte-Carlo trials reduced by " << options_.degrade_trial_divisor
        << "x";
    verdict.decision = AdmissionDecision::Degrade;
    verdict.reason = oss.str();
  }
  return verdict;
}

std::size_t AdmissionController::degraded_trials(std::size_t trials) const {
  return std::max<std::size_t>(1, trials / options_.degrade_trial_divisor);
}

}  // namespace vstack::service
