// Shared adaptive-transient core used by the switch-level circuit engine
// (circuit/transient.h) and the PDN transient solver (pdn/transient.h).
//
// Three pieces live here:
//
//  * StepController -- local-truncation-error driven timestep selection with
//    step rejection, halving, exponential grow-back, exact clamping onto
//    event times (clocked-switch edges, load steps, the stop time), and hard
//    step / wall-clock budgets.  Fixed-step engines reuse the same
//    controller with dt_min == dt_max so guards, budgets and reporting are
//    identical in both modes.
//
//  * TransientReport -- the structured outcome callers check INSTEAD of
//    catching exceptions: accepted/rejected step counts, dt range, LTE
//    statistics, every recovery/fallback event, and a status that labels
//    truncated results (budget exhaustion, step collapse, solver failure)
//    rather than hanging or propagating NaN.
//
//  * PeriodicEvents + guard helpers -- switch-edge schedules and the
//    NaN/overflow checks every engine runs before committing a step.
#pragma once

#include <cstddef>
#include <limits>
#include <string>
#include <vector>

#include "common/deadline.h"

namespace vstack::sim {

enum class TransientStatus {
  Completed,        // integrated to the requested stop time
  BudgetExhausted,  // step or wall-clock budget hit; result truncated
  StepCollapse,     // dt driven below dt_min without an acceptable step
  SolverFailure,    // linear solve unrecoverable after every fallback
};

const char* to_string(TransientStatus status);

/// One recovery-ladder action (gmin fallback, solver escalation, guard
/// rejection...) recorded so a degraded run is visible after the fact.
struct RecoveryEvent {
  double time = 0.0;  // simulation time when it happened [s]
  std::string what;
};

/// Structured outcome of a transient run.  `ok()` is the one-stop check;
/// everything else explains HOW the run went (or how degraded it was).
struct TransientReport {
  TransientStatus status = TransientStatus::Completed;

  std::size_t accepted_steps = 0;
  std::size_t rejected_steps = 0;   // lte + guard + solver rejections
  std::size_t lte_rejections = 0;   // error estimate above tolerance
  std::size_t guard_rejections = 0;  // NaN / overflow guards fired
  std::size_t solver_rejections = 0;  // linear-solve failures retried

  double min_dt = std::numeric_limits<double>::infinity();  // accepted only
  double max_dt = 0.0;
  double last_dt = 0.0;
  double max_accepted_error = 0.0;  // worst normalized LTE that passed
  double end_time = 0.0;            // last accepted time point [s]
  double wall_seconds = 0.0;

  /// Recovery-ladder trail, capped at kMaxEvents (events_dropped counts the
  /// overflow) so a pathological run cannot balloon the report.
  static constexpr std::size_t kMaxEvents = 32;
  std::vector<RecoveryEvent> events;
  std::size_t events_dropped = 0;

  std::string diagnostic;  // nonempty when !ok()

  bool ok() const { return status == TransientStatus::Completed; }
  void record_event(double time, std::string what);

  /// One-line human-readable digest for logs and bench footers.
  std::string summary() const;
};

/// Record a finished transient run into the telemetry registry: step and
/// rejection counters, recovery events, and a "sim.transient.run" span from
/// `wall_start_seconds` (a telemetry::monotonic_seconds() stamp) to now.
/// StepController::finalize() calls this; fixed-loop engines that fill a
/// TransientReport by hand call it themselves so both modes report
/// identically.
void record_transient_telemetry(const TransientReport& report,
                                double wall_start_seconds);

struct StepControlOptions {
  /// LTE acceptance: a step passes when the predictor-corrector error,
  /// normalized per state entry by (abs_tol + rel_tol * |value|), is <= 1.
  double rel_tol = 1e-4;
  double abs_tol = 1e-6;

  double dt_min = 0.0;      // 0 = derived as dt_max * 1e-7
  double dt_grow = 2.0;     // max growth factor per accepted step
  double dt_shrink = 0.1;   // max shrink factor per rejected step
  double safety = 0.8;

  int max_rejections_per_step = 16;  // consecutive, then StepCollapse

  /// Hard budgets: 0 disables.  `max_steps` counts attempted (accepted +
  /// rejected) steps; on exhaustion the run returns a truncated result with
  /// status BudgetExhausted instead of running away.
  std::size_t max_steps = 2'000'000;
  double wall_clock_budget_s = 0.0;

  /// Guard threshold: any |entry| beyond this (or any non-finite entry) in a
  /// candidate solution rejects the step.
  double overflow_limit = 1e12;

  /// External cancellation / wall-clock deadline (service requests, Ctrl-C).
  /// Checked at every begin_step alongside the budgets; when it fires the
  /// run truncates with BudgetExhausted exactly like a wall-clock budget,
  /// so existing callers need no new status handling.  Default: unlimited.
  Deadline deadline{};

  void validate() const;
};

/// Timestep state machine.  Usage per step:
///
///   double dt = ctl.begin_step(next_event_time);
///   if (ctl.failed()) break;            // budget / collapse -- truncated
///   ... assemble, solve with dt ...
///   if (guard fails)  { ctl.reject_step(t, "why"); continue; }
///   if (ctl.finish_step(err_norm, order)) { commit state; }
///
/// Rejected steps leave time unchanged, so callers simply do not commit.
class StepController {
 public:
  /// `dt_init`/`dt_max` bound the adaptive step; passing dt_init == dt_max
  /// with rel_tol control disabled (finish_step(0.0, ...)) reproduces a
  /// fixed-step run under the same guards and budgets.
  StepController(const StepControlOptions& options, double t_start,
                 double t_end, double dt_init, double dt_max);

  double time() const { return t_; }
  double dt() const { return dt_; }
  bool done() const { return done_; }
  bool failed() const { return failed_; }

  /// Propose the next step, clamped so `next_event` (if inside the step or
  /// within 10% of dt past its end) and t_end are hit exactly.  Pass
  /// infinity when no event is pending.  Checks budgets; on exhaustion sets
  /// failed() and returns 0.
  double begin_step(double next_event);

  /// True when the step proposed by the last begin_step ends on next_event.
  bool ends_on_event() const { return ends_on_event_; }

  /// Accept (err_norm <= 1) or reject the step; `order` is the local order
  /// of the integration method (1 = BE, 2 = trapezoidal) used to scale the
  /// dt update.  Returns whether the step was accepted (time advanced).
  bool finish_step(double err_norm, int order);

  /// Reject for a non-LTE reason (NaN guard, solver failure): halves dt and
  /// counts toward the consecutive-rejection collapse limit.  `kind` is
  /// recorded in the report's event trail.
  void reject_step(const char* kind);

  /// Force the next proposal down to at most `dt` (used after switching
  /// edges where history-based prediction is invalid).
  void reset_dt(double dt);

  TransientReport& report() { return report_; }
  const TransientReport& report() const { return report_; }

  /// Stamp wall_seconds and, if the run ended early without a recorded
  /// failure, finalize the status/diagnostic fields.
  void finalize();

 private:
  void fail(TransientStatus status, const std::string& diagnostic);

  StepControlOptions opts_;
  double t_ = 0.0;
  double t_end_ = 0.0;
  double dt_ = 0.0;
  double dt_max_ = 0.0;
  bool done_ = false;
  bool failed_ = false;
  bool ends_on_event_ = false;
  int consecutive_rejections_ = 0;
  std::size_t attempted_steps_ = 0;
  double wall_start_s_ = 0.0;  // monotonic clock at construction
  TransientReport report_;
};

/// Max-norm LTE estimate: |value - predicted| normalized per entry by
/// (abs_tol + rel_tol * |value|).  Sizes must match.
double error_norm(const std::vector<double>& value,
                  const std::vector<double>& predicted, double rel_tol,
                  double abs_tol);

/// True when every entry is finite and |entry| <= limit.
bool finite_and_bounded(const std::vector<double>& x, double limit);

/// Event schedule of clocked-switch edges: `fractions` are edge positions
/// within one period (in [0, 1)); next_after(t) returns the first edge
/// strictly after t (with a relative snap tolerance so a step that just
/// landed on an edge is not matched again).
class PeriodicEvents {
 public:
  PeriodicEvents() = default;
  PeriodicEvents(double period, std::vector<double> fractions);

  bool empty() const { return fractions_.empty(); }
  double next_after(double t) const;

 private:
  double period_ = 0.0;
  std::vector<double> fractions_;  // sorted, deduped, in [0, 1)
};

/// Unified event timeline for a transient run: any number of periodic edge
/// schedules (clocked switches, supervisor sensing ticks) merged with sorted
/// one-shot instants (load steps, injected fault events).  next_after(t)
/// returns the earliest pending event strictly after t so the step
/// controller can clamp a step boundary exactly onto it; one-shot times use
/// the same relative snap tolerance as PeriodicEvents, scaled by
/// `horizon` (the stop time passed at construction).
class EventSchedule {
 public:
  EventSchedule() = default;
  /// `horizon` scales the snap tolerance for one-shot times (pass the run's
  /// stop time); must be positive.
  explicit EventSchedule(double horizon);

  void add_periodic(PeriodicEvents events);
  /// One-shot event.  Times at or before 0 are accepted but never returned
  /// (they are "already in the past" at the start of the run).
  void add_time(double t);

  bool empty() const { return periodic_.empty() && times_.empty(); }
  double next_after(double t) const;

 private:
  double horizon_ = 1.0;
  std::vector<PeriodicEvents> periodic_;
  std::vector<double> times_;  // sorted
};

}  // namespace vstack::sim
