#include "sim/step_control.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/error.h"
#include "telemetry/telemetry.h"

namespace vstack::sim {

using telemetry::monotonic_seconds;

const char* to_string(TransientStatus status) {
  switch (status) {
    case TransientStatus::Completed: return "completed";
    case TransientStatus::BudgetExhausted: return "budget-exhausted";
    case TransientStatus::StepCollapse: return "step-collapse";
    case TransientStatus::SolverFailure: return "solver-failure";
  }
  return "unknown";
}

void TransientReport::record_event(double time, std::string what) {
  if (events.size() >= kMaxEvents) {
    ++events_dropped;
    return;
  }
  events.push_back(RecoveryEvent{time, std::move(what)});
}

std::string TransientReport::summary() const {
  std::ostringstream oss;
  oss << to_string(status) << ": " << accepted_steps << " steps";
  if (rejected_steps > 0) {
    oss << " (+" << rejected_steps << " rejected: " << lte_rejections
        << " lte, " << guard_rejections << " guard, " << solver_rejections
        << " solver)";
  }
  if (accepted_steps > 0) {
    oss << ", dt " << min_dt << ".." << max_dt << " s";
  }
  oss << ", t_end " << end_time << " s";
  if (!events.empty()) {
    oss << ", " << events.size() + events_dropped << " recovery events";
  }
  if (!diagnostic.empty()) oss << " -- " << diagnostic;
  return oss.str();
}

void StepControlOptions::validate() const {
  VS_REQUIRE(rel_tol > 0.0 && abs_tol > 0.0, "LTE tolerances must be positive");
  VS_REQUIRE(dt_min >= 0.0, "dt_min must be non-negative");
  VS_REQUIRE(dt_grow > 1.0, "dt_grow must exceed 1");
  VS_REQUIRE(dt_shrink > 0.0 && dt_shrink < 1.0, "dt_shrink must be in (0,1)");
  VS_REQUIRE(safety > 0.0 && safety <= 1.0, "safety must be in (0,1]");
  VS_REQUIRE(max_rejections_per_step >= 1,
             "need at least one rejection before collapse");
  VS_REQUIRE(overflow_limit > 0.0, "overflow limit must be positive");
}

StepController::StepController(const StepControlOptions& options,
                               double t_start, double t_end, double dt_init,
                               double dt_max)
    : opts_(options), t_(t_start), t_end_(t_end), dt_max_(dt_max) {
  opts_.validate();
  VS_REQUIRE(t_end > t_start, "t_end must exceed t_start");
  VS_REQUIRE(dt_init > 0.0 && dt_max > 0.0, "timesteps must be positive");
  VS_REQUIRE(dt_init <= dt_max, "dt_init must not exceed dt_max");
  if (opts_.dt_min <= 0.0) opts_.dt_min = dt_max * 1e-7;
  dt_ = std::max(dt_init, opts_.dt_min);
  wall_start_s_ = monotonic_seconds();
}

void StepController::fail(TransientStatus status,
                          const std::string& diagnostic) {
  failed_ = true;
  report_.status = status;
  report_.diagnostic = diagnostic;
}

double StepController::begin_step(double next_event) {
  if (done_ || failed_) return 0.0;

  if (opts_.max_steps > 0 && attempted_steps_ >= opts_.max_steps) {
    fail(TransientStatus::BudgetExhausted,
         "step budget of " + std::to_string(opts_.max_steps) +
             " attempted steps exhausted at t = " + std::to_string(t_) +
             " s; result truncated");
    return 0.0;
  }
  if (opts_.wall_clock_budget_s > 0.0 &&
      monotonic_seconds() - wall_start_s_ > opts_.wall_clock_budget_s) {
    fail(TransientStatus::BudgetExhausted,
         "wall-clock budget of " + std::to_string(opts_.wall_clock_budget_s) +
             " s exhausted at t = " + std::to_string(t_) +
             " s; result truncated");
    return 0.0;
  }
  if (opts_.deadline.expired()) {
    fail(TransientStatus::BudgetExhausted,
         "deadline expired (cancelled) at t = " + std::to_string(t_) +
             " s; result truncated");
    return 0.0;
  }
  ++attempted_steps_;

  double dt = std::min(dt_, dt_max_);
  ends_on_event_ = false;
  // Clamp onto the stop time and any pending event: land exactly when the
  // step would cross it, and stretch/truncate when the step would end within
  // 10% of dt before it (avoids a follow-up sliver step).
  double target = t_end_;
  bool target_is_event = false;
  if (next_event < target) {
    target = next_event;
    target_is_event = true;
  }
  if (t_ + dt * 1.1 >= target) {
    dt = target - t_;
    ends_on_event_ = target_is_event;
  }
  dt_ = std::max(dt, 0.0);
  return dt_;
}

bool StepController::finish_step(double err_norm, int order) {
  VS_REQUIRE(order >= 1, "integration order must be >= 1");
  const double exponent = 1.0 / (order + 1);
  if (std::isfinite(err_norm) && err_norm <= 1.0) {
    t_ += dt_;
    ++report_.accepted_steps;
    report_.min_dt = std::min(report_.min_dt, dt_);
    report_.max_dt = std::max(report_.max_dt, dt_);
    report_.last_dt = dt_;
    report_.max_accepted_error = std::max(report_.max_accepted_error,
                                          err_norm);
    report_.end_time = t_;
    consecutive_rejections_ = 0;
    if (t_ >= t_end_ - 1e-12 * t_end_) done_ = true;
    // Exponential grow-back; a borderline accept (err near 1) shrinks the
    // next step slightly instead of oscillating between accept and reject.
    double grow = opts_.dt_grow;
    if (err_norm > 0.0) {
      grow = std::min(grow, opts_.safety * std::pow(err_norm, -exponent));
      grow = std::max(grow, opts_.dt_shrink);
    }
    dt_ = std::min(dt_ * grow, dt_max_);
    return true;
  }

  ++report_.rejected_steps;
  ++report_.lte_rejections;
  ++consecutive_rejections_;
  double shrink = opts_.dt_shrink;
  if (std::isfinite(err_norm) && err_norm > 1.0) {
    shrink = std::max(shrink,
                      std::min(0.5, opts_.safety * std::pow(err_norm,
                                                            -exponent)));
  }
  dt_ *= shrink;
  if (dt_ < opts_.dt_min ||
      consecutive_rejections_ > opts_.max_rejections_per_step) {
    fail(TransientStatus::StepCollapse,
         "timestep collapsed below " + std::to_string(opts_.dt_min) +
             " s at t = " + std::to_string(t_) +
             " s after " + std::to_string(consecutive_rejections_) +
             " consecutive rejections");
  }
  return false;
}

void StepController::reject_step(const char* kind) {
  ++report_.rejected_steps;
  if (std::string(kind).find("guard") != std::string::npos) {
    ++report_.guard_rejections;
  } else {
    ++report_.solver_rejections;
  }
  ++consecutive_rejections_;
  report_.record_event(t_, std::string(kind) + " at dt = " +
                               std::to_string(dt_) + " s; step rejected");
  dt_ *= 0.5;
  if (dt_ < opts_.dt_min ||
      consecutive_rejections_ > opts_.max_rejections_per_step) {
    fail(TransientStatus::SolverFailure,
         std::string(kind) + " persisted down to dt = " +
             std::to_string(dt_) + " s at t = " + std::to_string(t_) +
             " s; giving up");
  }
}

void StepController::reset_dt(double dt) {
  dt_ = std::min(dt_, std::max(dt, opts_.dt_min));
}

void StepController::finalize() {
  report_.wall_seconds = monotonic_seconds() - wall_start_s_;
  if (report_.accepted_steps == 0) {
    report_.min_dt = 0.0;
  }
  if (!done_ && !failed_ && report_.status == TransientStatus::Completed) {
    // Loop exited early without recording why (defensive; engines normally
    // run until done() or failed()).
    report_.status = TransientStatus::SolverFailure;
    report_.diagnostic = "run ended before the stop time";
  }
  record_transient_telemetry(report_, wall_start_s_);
}

void record_transient_telemetry(const TransientReport& report,
                                double wall_start_seconds) {
  static const telemetry::Counter t_runs("sim.transient.runs");
  static const telemetry::Counter t_truncated("sim.transient.runs_truncated");
  static const telemetry::Counter t_accepted("sim.transient.accepted_steps");
  static const telemetry::Counter t_rejected("sim.transient.rejected_steps");
  static const telemetry::Counter t_lte("sim.transient.lte_rejections");
  static const telemetry::Counter t_guard("sim.transient.guard_rejections");
  static const telemetry::Counter t_solver("sim.transient.solver_rejections");
  static const telemetry::Counter t_recovery("sim.transient.recovery_events");
  static const telemetry::Histogram t_wall(
      "sim.transient.run_seconds",
      {1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0, 120.0});

  t_runs.add();
  if (!report.ok()) t_truncated.add();
  t_accepted.add(static_cast<double>(report.accepted_steps));
  t_rejected.add(static_cast<double>(report.rejected_steps));
  t_lte.add(static_cast<double>(report.lte_rejections));
  t_guard.add(static_cast<double>(report.guard_rejections));
  t_solver.add(static_cast<double>(report.solver_rejections));
  t_recovery.add(static_cast<double>(report.events.size() +
                                     report.events_dropped));
  t_wall.record(report.wall_seconds);
  telemetry::record_span("sim.transient.run", wall_start_seconds,
                         wall_start_seconds + report.wall_seconds);
}

double error_norm(const std::vector<double>& value,
                  const std::vector<double>& predicted, double rel_tol,
                  double abs_tol) {
  VS_REQUIRE(value.size() == predicted.size(),
             "error_norm size mismatch");
  double worst = 0.0;
  for (std::size_t i = 0; i < value.size(); ++i) {
    const double scale = abs_tol + rel_tol * std::abs(value[i]);
    const double err = std::abs(value[i] - predicted[i]) / scale;
    if (!std::isfinite(err)) return std::numeric_limits<double>::infinity();
    worst = std::max(worst, err);
  }
  return worst;
}

bool finite_and_bounded(const std::vector<double>& x, double limit) {
  for (const double v : x) {
    if (!std::isfinite(v) || std::abs(v) > limit) return false;
  }
  return true;
}

PeriodicEvents::PeriodicEvents(double period, std::vector<double> fractions)
    : period_(period) {
  VS_REQUIRE(period > 0.0, "event period must be positive");
  for (double& f : fractions) {
    f = f - std::floor(f);  // wrap into [0, 1)
  }
  std::sort(fractions.begin(), fractions.end());
  // Dedupe edges closer than 1e-12 of a period (coincident switch edges).
  for (const double f : fractions) {
    if (fractions_.empty() || f - fractions_.back() > 1e-12) {
      fractions_.push_back(f);
    }
  }
  period_ = period;
}

double PeriodicEvents::next_after(double t) const {
  if (fractions_.empty()) return std::numeric_limits<double>::infinity();
  const double tol = 1e-9 * period_;
  const double base = std::floor(t / period_) * period_;
  for (int cycle = 0; cycle < 3; ++cycle) {
    const double offset = base + static_cast<double>(cycle) * period_;
    for (const double f : fractions_) {
      const double candidate = offset + f * period_;
      if (candidate > t + tol) return candidate;
    }
  }
  VS_FAIL("periodic event search failed to advance");
}

EventSchedule::EventSchedule(double horizon) : horizon_(horizon) {
  VS_REQUIRE(horizon > 0.0, "event-schedule horizon must be positive");
}

void EventSchedule::add_periodic(PeriodicEvents events) {
  if (!events.empty()) periodic_.push_back(std::move(events));
}

void EventSchedule::add_time(double t) {
  VS_REQUIRE(std::isfinite(t), "event time must be finite");
  const auto it = std::lower_bound(times_.begin(), times_.end(), t);
  times_.insert(it, t);
}

double EventSchedule::next_after(double t) const {
  double next = std::numeric_limits<double>::infinity();
  for (const auto& p : periodic_) {
    next = std::min(next, p.next_after(t));
  }
  const double tol = 1e-12 * horizon_;
  const auto it = std::upper_bound(times_.begin(), times_.end(), t + tol);
  if (it != times_.end()) next = std::min(next, *it);
  return next;
}

}  // namespace vstack::sim
