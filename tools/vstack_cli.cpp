// vstack command-line tool: run individual analyses or whole paper sweeps
// from the shell.
//
//   vstack_cli noise      [--config=FILE] [--layers=8] [--topology=stacked]
//                         [--imbalance=0.5] [--converters=8] [--map]
//   vstack_cli em         [--config=FILE] [--layers=8] [--topology=...]
//   vstack_cli efficiency [--layers=8] [--converters=8] [--imbalance=0.5]
//   vstack_cli thermal    [--layers=8] [--sink=0.42]
//   vstack_cli sweep --figure=5a|5b|6|7|8
//   vstack_cli spice FILE [--verbose]
//   vstack_cli import FILE [--solve] [--dump=OUT] [--verbose]
//   vstack_cli validate FILE [--solution=F] [--tol=1e-6]
//   vstack_cli ride-through [--layers=8] [--fault-level=3] [--keep=32]
//                         [--fault-time=2e-6] [--duration=4e-6] [--verbose]
//   vstack_cli campaign   [--trials=8] [--seed=42] [--manifest=FILE]
//                         [--compare] [--timeout=30] [--verbose]
//   vstack_cli config     [--config=FILE]   ; echo the resolved config
//
// Exit codes: 0 success, 1 usage/precondition error, 2 truncated or
// incomplete result (spice / ride-through / campaign / validate solver
// failure), 3 outcome failure (ride-through Lost, contingency with
// Infeasible cases, validate over tolerance).
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>

#include "chaos/explorer.h"
#include "circuit/spice_parser.h"
#include "common/cli.h"
#include "common/error.h"
#include "common/failpoint.h"
#include "common/shutdown.h"
#include "common/table.h"
#include "la/backend.h"
#include "core/campaign.h"
#include "core/contingency.h"
#include "core/sweeps.h"
#include "floorplan/heatmap.h"
#include "pdn/config_io.h"
#include "pdn/ride_through.h"
#include "pgio/campaign.h"
#include "pgio/export.h"
#include "pgio/grid.h"
#include "pgio/reader.h"
#include "pgio/validate.h"
#include "power/workload.h"
#include "service/server.h"
#include "shard/job.h"
#include "shard/merge.h"
#include "shard/supervisor.h"
#include "shard/worker.h"
#include "telemetry/export.h"
#include "telemetry/telemetry.h"
#include "thermal/thermal_grid.h"

namespace {

using namespace vstack;

std::string read_file(const std::string& path) {
  std::ifstream file(path);
  VS_REQUIRE(static_cast<bool>(file), "cannot open '" + path + "'");
  std::ostringstream oss;
  oss << file.rdbuf();
  return oss.str();
}

/// Scenario scheduling from --jobs: N worker threads, or auto (VSTACK_JOBS
/// env override, else hardware concurrency) when the flag is absent.
/// Results are reduced in scenario order, so output and manifests do not
/// depend on the job count (docs/parallel_execution.md).
core::ExecutionPolicy resolve_execution(const CliArgs& args) {
  core::ExecutionPolicy policy;
  policy.jobs = args.get_size("jobs", 0);  // 0 = auto
  // SIGINT/SIGTERM cancel the shutdown token; runners then stop at the
  // next chunk boundary with the committed prefix intact and main() maps
  // the interruption onto kInterruptExitCode.  Commands that never install
  // the handlers carry a token that simply never fires.
  policy.deadline = shutdown_token();
  return policy;
}

/// Resolve a StackupConfig from --config plus individual flag overrides.
pdn::StackupConfig resolve_config(const core::StudyContext& ctx,
                                  const CliArgs& args) {
  pdn::StackupConfig cfg = ctx.base;
  if (args.has("config")) {
    cfg = pdn::parse_stackup_config(read_file(args.get_string("config", "")),
                                    cfg);
  }
  if (args.has("topology")) {
    const std::string t = args.get_string("topology", "");
    VS_REQUIRE(t == "regular" || t == "stacked",
               "--topology expects regular|stacked");
    cfg.topology = (t == "stacked") ? pdn::PdnTopology::VoltageStacked
                                    : pdn::PdnTopology::Regular3d;
  } else if (!args.has("config")) {
    cfg.topology = pdn::PdnTopology::VoltageStacked;  // tool default
  }
  cfg.layer_count = args.get_size("layers", cfg.layer_count);
  if (cfg.topology == pdn::PdnTopology::VoltageStacked &&
      cfg.layer_count < 2) {
    cfg.layer_count = 8;
  }
  cfg.converters_per_core =
      args.get_size("converters", cfg.converters_per_core);
  const std::size_t grid = args.get_size("grid", cfg.grid_nx);
  cfg.grid_nx = cfg.grid_ny = grid;
  cfg.validate();
  return cfg;
}

int cmd_noise(const core::StudyContext& ctx, const CliArgs& args) {
  const auto cfg = resolve_config(ctx, args);
  pdn::PdnModel model(cfg, ctx.layer_floorplan);
  const double imbalance = args.get_double("imbalance", 0.5);
  const auto acts =
      power::interleaved_layer_activities(cfg.layer_count, imbalance);
  const auto sol = model.solve_activities(ctx.core_model, acts);

  TextTable t({"Metric", "Value"});
  t.add_row({"max node deviation",
             TextTable::percent(sol.max_node_deviation_fraction, 3)});
  t.add_row({"max load-span droop",
             TextTable::percent(sol.max_ir_drop_fraction, 3)});
  t.add_row({"supply", TextTable::num(sol.supply_voltage, 1) + " V / " +
                           TextTable::num(sol.supply_current, 2) + " A"});
  if (cfg.is_voltage_stacked()) {
    t.add_row({"max converter current",
               TextTable::num(sol.max_converter_current * 1e3, 1) + " mA" +
                   (sol.converter_limit_ok ? "" : "  (LIMIT EXCEEDED)")});
  }
  t.print(std::cout);

  if (args.get_bool("map")) {
    std::cout << "\nWorst-layer droop map:\n";
    std::size_t worst = 0;
    double best = -1.0;
    for (std::size_t l = 0; l < cfg.layer_count; ++l) {
      const double m = *std::max_element(sol.layer_droop[l].values.begin(),
                                         sol.layer_droop[l].values.end());
      if (m > best) {
        best = m;
        worst = l;
      }
    }
    floorplan::HeatmapOptions opts;
    opts.legend_scale = 1e3;
    opts.legend_unit = "mV";
    floorplan::render_heatmap(sol.layer_droop[worst], std::cout, opts);
  }
  return 0;
}

int cmd_em(const core::StudyContext& ctx, const CliArgs& args) {
  const auto cfg = resolve_config(ctx, args);
  const auto r = core::evaluate_scenario(
      ctx, cfg, std::vector<double>(cfg.layer_count, 1.0));
  // Normalize to the paper's 2-layer V-S reference.
  const auto baseline = core::evaluate_scenario(
      ctx, core::make_stacked(ctx, 2, ctx.base.tsv, 8),
      std::vector<double>(2, 1.0));
  TextTable t({"Array", "MTTF (normalized to 2-layer V-S)"});
  t.add_row({"TSV", TextTable::num(r.tsv_mttf / baseline.tsv_mttf, 3)});
  t.add_row({"C4", TextTable::num(r.c4_mttf / baseline.c4_mttf, 3)});
  t.print(std::cout);
  return 0;
}

int cmd_efficiency(const core::StudyContext& ctx, const CliArgs& args) {
  const std::size_t layers = args.get_size("layers", 8);
  const std::size_t conv = args.get_size("converters", 8);
  const double imbalance = args.get_double("imbalance", 0.5);
  const auto r = core::stacked_efficiency(ctx, layers, conv, imbalance);
  TextTable t({"Metric", "Value"});
  t.add_row({"system efficiency", TextTable::percent(r.efficiency, 2)});
  t.add_row({"max converter current",
             TextTable::num(r.max_converter_current * 1e3, 1) + " mA"});
  t.add_row({"within limits", r.feasible ? "yes" : "NO"});
  t.print(std::cout);
  return 0;
}

int cmd_thermal(const core::StudyContext& ctx, const CliArgs& args) {
  const std::size_t layers = args.get_size("layers", 8);
  thermal::ThermalConfig tcfg;
  tcfg.sink_resistance = args.get_double("sink", tcfg.sink_resistance);
  const auto map = floorplan::layer_power_map(
      ctx.layer_floorplan, ctx.core_model, std::vector<double>(16, 1.0),
      tcfg.nx, tcfg.ny);
  std::vector<floorplan::GridMap> stack(layers, map);
  const auto r = thermal::solve_stack_temperature(
      tcfg, ctx.layer_floorplan.width, ctx.layer_floorplan.height, stack);
  TextTable t({"Metric", "Value"});
  t.add_row({"hotspot", TextTable::num(r.max_celsius, 1) + " C (layer " +
                            std::to_string(r.hottest_layer) + ")"});
  t.add_row({"mean", TextTable::num(r.mean_celsius, 1) + " C"});
  t.print(std::cout);
  return 0;
}

int cmd_sweep(const core::StudyContext& ctx, const CliArgs& args) {
  const std::string figure = args.get_string("figure", "");
  VS_REQUIRE(!figure.empty(), "sweep requires --figure=5a|5b|6|7|8");
  core::SweepOptions sweep_options;
  sweep_options.execution = resolve_execution(args);
  const core::SweepRunner sweeps(ctx, sweep_options);
  if (figure == "5a") {
    TextTable t({"Layers", "Reg Dense", "Reg Sparse", "Reg Few", "V-S Few"});
    for (const auto& r : sweeps.fig5a()) {
      t.add_row({std::to_string(r.layers), TextTable::num(r.reg_dense, 3),
                 TextTable::num(r.reg_sparse, 3),
                 TextTable::num(r.reg_few, 3), TextTable::num(r.vs_few, 3)});
    }
    t.print(std::cout);
  } else if (figure == "5b") {
    TextTable t({"Layers", "25%", "50%", "75%", "100%", "V-S"});
    for (const auto& r : sweeps.fig5b()) {
      t.add_row({std::to_string(r.layers), TextTable::num(r.reg_25, 3),
                 TextTable::num(r.reg_50, 3), TextTable::num(r.reg_75, 3),
                 TextTable::num(r.reg_100, 3), TextTable::num(r.vs, 3)});
    }
    t.print(std::cout);
  } else if (figure == "6") {
    const auto result = sweeps.fig6({0.0, 0.25, 0.5, 0.75, 1.0});
    TextTable t({"Imbalance", "2/core", "4/core", "6/core", "8/core"});
    for (const auto& row : result.rows) {
      std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
      for (const auto& v : row.vs_noise) {
        cells.push_back(v ? TextTable::percent(*v, 2) : "-");
      }
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
  } else if (figure == "7") {
    TextTable t({"Application", "Median (W)", "Max Imbalance"});
    for (const auto& app : sweeps.fig7()) {
      t.add_row({app.name, TextTable::num(app.power.median, 3),
                 TextTable::percent(app.max_imbalance, 1)});
    }
    t.print(std::cout);
  } else if (figure == "8") {
    const auto result = sweeps.fig8({0.1, 0.3, 0.5, 0.7, 0.9});
    TextTable t({"Imbalance", "2/core", "4/core", "6/core", "8/core",
                 "Reg+SC"});
    for (const auto& row : result.rows) {
      std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
      for (const auto& v : row.vs_efficiency) {
        cells.push_back(v ? TextTable::percent(*v, 1) : "-");
      }
      cells.push_back(TextTable::percent(row.regular_sc, 1));
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
  } else {
    VS_FAIL("unknown figure '" + figure + "' (5a|5b|6|7|8)");
  }
  return 0;
}

int cmd_report(const core::StudyContext& ctx, const CliArgs& args) {
  // One-command reproduction: all figure sweeps back to back.
  core::SweepOptions sweep_options;
  sweep_options.execution = resolve_execution(args);
  const core::SweepRunner sweeps(ctx, sweep_options);
  std::cout << "# vstack reproduction report\n";
  std::cout << "\n## Fig 5a -- TSV EM lifetime (normalized to 2-layer V-S)\n";
  {
    TextTable t({"Layers", "Reg Dense", "Reg Sparse", "Reg Few", "V-S Few"});
    for (const auto& r : sweeps.fig5a()) {
      t.add_row({std::to_string(r.layers), TextTable::num(r.reg_dense, 3),
                 TextTable::num(r.reg_sparse, 3),
                 TextTable::num(r.reg_few, 3), TextTable::num(r.vs_few, 3)});
    }
    t.print(std::cout);
  }
  std::cout << "\n## Fig 5b -- C4 EM lifetime\n";
  {
    TextTable t({"Layers", "25%", "50%", "75%", "100%", "V-S"});
    for (const auto& r : sweeps.fig5b()) {
      t.add_row({std::to_string(r.layers), TextTable::num(r.reg_25, 3),
                 TextTable::num(r.reg_50, 3), TextTable::num(r.reg_75, 3),
                 TextTable::num(r.reg_100, 3), TextTable::num(r.vs, 3)});
    }
    t.print(std::cout);
  }
  std::cout << "\n## Fig 6 -- voltage noise vs imbalance (8 layers)\n";
  {
    std::vector<double> imbalances;
    for (int x = 0; x <= 100; x += 10) imbalances.push_back(x / 100.0);
    const auto result = sweeps.fig6(imbalances);
    TextTable t({"Imbalance", "2/core", "4/core", "6/core", "8/core"});
    for (const auto& row : result.rows) {
      std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
      for (const auto& v : row.vs_noise) {
        cells.push_back(v ? TextTable::percent(*v, 2) : "-");
      }
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
    std::cout << "regular refs: Dense " << TextTable::percent(result.reg_dense, 2)
              << ", Sparse " << TextTable::percent(result.reg_sparse, 2)
              << ", Few " << TextTable::percent(result.reg_few, 2) << "\n";
  }
  std::cout << "\n## Fig 7 -- PARSEC workload imbalance\n";
  {
    const auto campaign = sweeps.fig7();
    TextTable t({"Application", "Median (W)", "Max Imbalance"});
    for (const auto& app : campaign) {
      t.add_row({app.name, TextTable::num(app.power.median, 3),
                 TextTable::percent(app.max_imbalance, 1)});
    }
    t.print(std::cout);
    std::cout << "mean max-imbalance: "
              << TextTable::percent(power::mean_max_imbalance(campaign), 1)
              << " (paper: 65%)\n";
  }
  std::cout << "\n## Fig 8 -- system power efficiency (8 layers)\n";
  {
    std::vector<double> imbalances;
    for (int x = 10; x <= 100; x += 10) imbalances.push_back(x / 100.0);
    const auto result = sweeps.fig8(imbalances);
    TextTable t({"Imbalance", "2/core", "4/core", "6/core", "8/core",
                 "Reg+SC"});
    for (const auto& row : result.rows) {
      std::vector<std::string> cells{TextTable::percent(row.imbalance, 0)};
      for (const auto& v : row.vs_efficiency) {
        cells.push_back(v ? TextTable::percent(*v, 1) : "-");
      }
      cells.push_back(TextTable::percent(row.regular_sc, 1));
      t.add_row(std::move(cells));
    }
    t.print(std::cout);
  }
  std::cout << "\nSee EXPERIMENTS.md for paper-vs-measured commentary.\n";
  return 0;
}

/// --verbose: dump a TransientReport's recovery/event trail (supervisor
/// actions, fault applications, solver fallbacks) with timestamps.
void print_trail(const sim::TransientReport& report) {
  for (const auto& e : report.events) {
    std::cout << "  [" << TextTable::num(e.time * 1e9, 3) << " ns] " << e.what
              << "\n";
  }
  if (report.events_dropped > 0) {
    std::cout << "  (+" << report.events_dropped << " more events dropped)\n";
  }
}

/// Shared supervisor policy for the CLI's transient fault commands; the
/// recovery band is calibrated so phase rebalance + frequency retarget can
/// actually re-enter it on a partially-lost converter bank (see
/// docs/fault_model.md).
sc::SupervisorConfig cli_supervisor_policy() {
  sc::SupervisorConfig sup;
  sup.trip_fraction = 0.10;
  sup.recovery_fraction = 0.08;
  sup.sense_interval = 5e-9;
  sup.detection_latency = 20e-9;
  sup.action_dwell = 60e-9;
  sup.watchdog_timeout = 1e-6;
  return sup;
}

// Imported-benchmark routes; defined with the other pgio commands below.
int cmd_contingency_netlist(const CliArgs& args);
int cmd_ride_through_netlist(const CliArgs& args);

int cmd_ride_through(const core::StudyContext& ctx, const CliArgs& args) {
  if (args.has("netlist")) return cmd_ride_through_netlist(args);
  auto cfg = resolve_config(ctx, args);
  if (!args.has("layers") && !args.has("config")) {
    cfg.layer_count = 8;  // demo default: 8-layer stack, fault on rail 3
    cfg.validate();
  }
  const double imbalance = args.get_double("imbalance", 0.8);
  const auto acts =
      power::interleaved_layer_activities(cfg.layer_count, imbalance);
  const pdn::PdnModel model(cfg, ctx.layer_floorplan);

  pdn::RideThroughOptions opt;
  opt.transient.duration = args.get_double("duration", 4e-6);
  opt.supervisor = cli_supervisor_policy();

  // Demo scenario: most of one intermediate rail's converter bank sticks
  // off mid-run, leaving `keep` surviving phases.
  const std::size_t fault_level = args.get_size(
      "fault-level", std::min<std::size_t>(3, cfg.layer_count - 1));
  const std::size_t keep = args.get_size("keep", 32);
  VS_REQUIRE(fault_level >= 1 && fault_level < cfg.layer_count,
             "--fault-level must name an intermediate rail (1..layers-1)");
  pdn::TimedFaultEvent ev;
  ev.time = args.get_double("fault-time", 2e-6);
  ev.label = "converter bank stuck-off";
  std::size_t seen = 0;
  const auto& converters = model.network().converters();
  for (std::size_t i = 0; i < converters.size(); ++i) {
    if (converters[i].level != fault_level) continue;
    if (seen++ >= keep) ev.faults.converter_stuck_off(i);
  }
  VS_REQUIRE(seen > 0, "no converters at level " +
                           std::to_string(fault_level) +
                           " (regular topology? try --topology=stacked)");
  std::cout << "fault: " << ev.faults.size() << " of " << seen
            << " converters at level " << fault_level << " stuck off at "
            << TextTable::num(ev.time * 1e9, 1) << " ns\n";
  opt.transient.fault_events.push_back(std::move(ev));

  if (args.get_size("jobs", 1) > 1) {
    std::cout << "note: ride-through is a single scenario; --jobs only "
                 "affects multi-scenario commands (campaign, contingency, "
                 "sweep, report)\n";
  }
  const auto r = pdn::simulate_ride_through(model, ctx.core_model, acts, opt);
  const auto& rep = r.report;

  TextTable t({"Metric", "Value"});
  t.add_row({"outcome", pdn::to_string(rep.outcome)});
  t.add_row({"detected",
             rep.detected_at >= 0.0
                 ? TextTable::num(rep.detected_at * 1e9, 1) + " ns"
                 : "never tripped"});
  t.add_row({"recovered",
             rep.recovered_at >= 0.0
                 ? TextTable::num(rep.recovered_at * 1e9, 1) + " ns"
                 : "-"});
  t.add_row({"worst droop", TextTable::percent(rep.worst_droop, 2)});
  t.add_row({"final droop", TextTable::percent(rep.final_droop, 2)});
  t.add_row({"actions", std::to_string(rep.actions.size())});
  t.print(std::cout);

  if (!rep.actions.empty()) {
    std::cout << "\nsupervisor actions:\n";
    for (const auto& a : rep.actions) std::cout << "  " << a.describe() << "\n";
  }
  std::cout << "\nengine: " << rep.transient.summary() << "\n";
  if (args.get_bool("verbose")) print_trail(rep.transient);

  if (!rep.ok()) {
    std::cout << "warning: waveform truncated (" << rep.transient.diagnostic
              << ")\n";
    return 2;
  }
  return rep.outcome == pdn::RideThroughOutcome::Lost ? 3 : 0;
}

/// The running binary's own path, for re-exec'ing as shard workers;
/// falls back to the bare name (PATH lookup) off-Linux.
std::string self_exe_path() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  if (n <= 0) return "vstack_cli";
  buf[n] = '\0';
  return buf;
}

int cmd_campaign(const core::StudyContext& ctx, const CliArgs& args) {
  const auto cfg = resolve_config(ctx, args);
  const double imbalance = args.get_double("imbalance", 0.8);
  const auto acts =
      power::interleaved_layer_activities(cfg.layer_count, imbalance);

  core::CampaignOptions opt;
  opt.contingency.trials = args.get_size("trials", 8);
  opt.contingency.faults_per_trial = args.get_size("faults", 2);
  opt.contingency.converter_faults_per_trial =
      args.get_size("conv-faults", cfg.is_voltage_stacked() ? 32 : 0);
  opt.contingency.seed = args.get_size("seed", opt.contingency.seed);
  opt.ride_through.transient.duration = args.get_double("duration", 400e-9);
  opt.ride_through.supervisor = cli_supervisor_policy();
  opt.ride_through.supervisor.watchdog_timeout = 300e-9;
  opt.fault_time = args.get_double("fault-time", 50e-9);
  opt.scenario_timeout_s = args.get_double("timeout", opt.scenario_timeout_s);
  opt.max_retries = args.get_size("retries", opt.max_retries);
  opt.manifest_path = args.get_string("manifest", "");
  opt.execution = resolve_execution(args);

  if (args.has("shards")) {
    // Multi-process fleet: supervisor + N worker processes against a
    // shared --job-dir, merged back to one manifest (docs/
    // distributed_campaigns.md).  The job plan carries only flag-shaped
    // configs, so file-based overrides cannot ride along.
    VS_REQUIRE(!args.has("config") && !args.has("converters"),
               "--shards carries the config in the job plan; use --layers/"
               "--grid/--topology/--imbalance instead of --config/"
               "--converters");
    VS_REQUIRE(!args.get_bool("compare"),
               "--shards and --compare are mutually exclusive");
    shard::JobSpec spec;
    spec.stacked = cfg.topology == pdn::PdnTopology::VoltageStacked;
    spec.layers = cfg.layer_count;
    spec.grid = cfg.grid_nx;
    spec.imbalance = imbalance;
    spec.trials = opt.contingency.trials;
    spec.faults_per_trial = opt.contingency.faults_per_trial;
    spec.converter_faults_per_trial =
        opt.contingency.converter_faults_per_trial;
    spec.seed = opt.contingency.seed;
    spec.duration_s = opt.ride_through.transient.duration;
    spec.fault_time_s = opt.fault_time;
    spec.scenario_timeout_s = opt.scenario_timeout_s;
    spec.max_retries = opt.max_retries;
    spec.retry_relax = opt.retry_tolerance_relax;
    spec.chunk = args.get_size("chunk", spec.chunk);
    spec.max_attempts = args.get_size("max-attempts", spec.max_attempts);
    spec.lease_expiry_s = args.get_double("lease-expiry", spec.lease_expiry_s);
    spec.heartbeat_s = args.get_double("heartbeat", spec.heartbeat_s);

    shard::SupervisorOptions sup;
    sup.job_dir = args.get_string("job-dir", "");
    VS_REQUIRE(!sup.job_dir.empty(), "--shards requires --job-dir=DIR");
    sup.shards = args.get_size("shards", 2);
    sup.worker_command = {self_exe_path()};
    sup.worker_jobs = args.get_size("jobs", 1);
    sup.max_restarts = args.get_size("max-restarts", sup.max_restarts);
    sup.stop = shutdown_token();

    const auto result = shard::run_supervised_job(ctx, spec, sup);
    std::cout << "fleet: " << result.workers_started << " workers, "
              << result.workers_restarted << " restarts, "
              << result.failed_slots << " abandoned slots\n"
              << "merge: " << result.merge.summary() << "\n";
    if (args.get_bool("verbose")) {
      std::cout << "job dir: " << sup.job_dir << " (config hash " << std::hex
                << result.merge.report.config_hash << std::dec << ")\n";
    }
    return result.merge.clean() ? 0 : 2;
  }

  if (args.get_bool("compare")) {
    pdn::StackupConfig stacked = cfg;
    stacked.topology = pdn::PdnTopology::VoltageStacked;
    pdn::StackupConfig regular = cfg;
    regular.topology = pdn::PdnTopology::Regular3d;
    const auto table = core::compare_survivability(ctx, stacked, regular,
                                                   acts, opt);
    std::cout << "stacked vs regular-3D transient survivability ("
              << opt.contingency.trials << " trials, seed "
              << opt.contingency.seed << "):\n"
              << table.format();
    return 0;
  }

  const core::CampaignRunner runner(ctx, cfg);
  const auto report = runner.run(acts, opt);

  TextTable t({"Scenario", "Outcome", "Detected", "Worst", "Final",
               "Attempts", "Source"});
  for (const auto& s : report.scenarios) {
    t.add_row({s.label, pdn::to_string(s.outcome),
               s.detected_at >= 0.0
                   ? TextTable::num(s.detected_at * 1e9, 1) + " ns"
                   : "-",
               TextTable::percent(s.worst_droop, 2),
               TextTable::percent(s.final_droop, 2),
               std::to_string(s.attempts),
               s.from_checkpoint ? "manifest" : "run"});
  }
  t.print(std::cout);
  std::cout << "\nsummary: " << report.summary() << "\n";
  if (args.get_bool("verbose") && !opt.manifest_path.empty()) {
    std::cout << "manifest: " << opt.manifest_path << " (config hash "
              << std::hex << report.config_hash << std::dec << ")\n";
  }

  for (const auto& s : report.scenarios) {
    if (!s.completed) return 2;  // a scenario truncated / timed out
  }
  return 0;
}

const char* outcome_name(core::CaseOutcome outcome) {
  switch (outcome) {
    case core::CaseOutcome::Survivable: return "survivable";
    case core::CaseOutcome::Degraded:   return "DEGRADED";
    case core::CaseOutcome::Infeasible: return "INFEASIBLE";
  }
  return "?";
}

int cmd_contingency(const core::StudyContext& ctx, const CliArgs& args) {
  if (args.has("netlist")) return cmd_contingency_netlist(args);
  const auto cfg = resolve_config(ctx, args);
  const double imbalance = args.get_double("imbalance", 0.5);
  const auto acts =
      power::interleaved_layer_activities(cfg.layer_count, imbalance);

  core::ContingencyOptions opts;
  opts.top_k = args.get_size("top", opts.top_k);
  opts.exhaustive = args.get_bool("exhaustive");
  opts.noise_budget_fraction = args.get_double("budget",
                                               opts.noise_budget_fraction);
  opts.trials = args.get_size("trials", opts.trials);
  opts.faults_per_trial = args.get_size("faults", opts.faults_per_trial);
  opts.seed = args.get_size("seed", opts.seed);
  opts.execution = resolve_execution(args);

  const core::ContingencyEngine engine(ctx, cfg);
  const bool monte_carlo = args.get_bool("mc");
  const auto report = monte_carlo ? engine.run_monte_carlo(acts, opts)
                                  : engine.run_n_minus_1(acts, opts);

  std::cout << "EM risk ranking (top "
            << std::min<std::size_t>(opts.top_k, report.ranking.size())
            << " of " << report.ranking.size() << " candidate groups):\n";
  TextTable rank({"Group", "Count", "Hot I (mA)", "P(fail)"});
  for (std::size_t k = 0;
       k < std::min<std::size_t>(opts.top_k, report.ranking.size()); ++k) {
    const auto& e = report.ranking[k];
    rank.add_row({std::string(pdn::conductor_kind_name(e.kind)) + "#" +
                      std::to_string(e.conductor_index),
                  std::to_string(e.count),
                  TextTable::num(e.unit_current * 1e3, 2),
                  TextTable::num(e.failure_probability, 4)});
  }
  rank.print(std::cout);

  std::cout << "\n" << (monte_carlo ? "Monte Carlo N-k" : "N-1") << " campaign ("
            << report.cases.size() << " cases, baseline deviation "
            << TextTable::percent(report.base_max_node_deviation_fraction, 2)
            << "):\n";
  TextTable cases({"Case", "Outcome", "Deviation", "Conv I (mA)", "Attempts"});
  for (const auto& c : report.cases) {
    cases.add_row({c.label, outcome_name(c.outcome),
                   c.solved
                       ? TextTable::percent(c.max_node_deviation_fraction, 2)
                       : "-",
                   c.solved ? TextTable::num(c.max_converter_current * 1e3, 1)
                            : "-",
                   std::to_string(c.solve_attempts)});
  }
  cases.print(std::cout);

  std::cout << "\nsummary: " << report.survivable << " survivable, "
            << report.degraded << " degraded, " << report.infeasible
            << " infeasible; worst post-fault deviation "
            << TextTable::percent(report.worst_post_fault_deviation, 2)
            << " (budget "
            << TextTable::percent(opts.noise_budget_fraction, 0) << ")\n";
  for (const auto& c : report.cases) {
    if (!c.diagnostic.empty()) {
      std::cout << "  " << c.label << ": " << c.diagnostic << "\n";
    }
  }
  return report.infeasible > 0 ? 3 : 0;
}

int cmd_serve(const core::StudyContext& ctx, const CliArgs& args) {
  service::ServerOptions opt;
  opt.root = args.get_string("spool", "");
  VS_REQUIRE(!opt.root.empty(), "serve requires --spool=DIR");
  opt.poll_interval_s = args.get_double("poll", opt.poll_interval_s);
  opt.health_interval_s =
      args.get_double("health-interval", opt.health_interval_s);
  opt.max_requests = args.get_size("max-requests", 0);
  opt.idle_exit_s = args.get_double("idle-exit", 0.0);
  opt.default_deadline_s = args.get_double("deadline", 0.0);
  opt.retry.max_attempts = args.get_size("retries", opt.retry.max_attempts);
  opt.retry.initial_backoff_s =
      args.get_double("backoff", opt.retry.initial_backoff_s);
  opt.admission.max_queue_depth =
      args.get_size("queue", opt.admission.max_queue_depth);
  opt.admission.degrade_trial_divisor =
      args.get_size("degrade-divisor", opt.admission.degrade_trial_divisor);
  opt.execution = resolve_execution(args);
  opt.stop = shutdown_token();
  opt.shard_workers = args.get_size("shard-workers", 0);
  if (opt.shard_workers > 0) opt.worker_command = {self_exe_path()};

  std::cout << "serving spool " << opt.root << " (queue bound "
            << opt.admission.max_queue_depth << ", "
            << opt.retry.max_attempts << " attempts/request";
  if (opt.default_deadline_s > 0.0) {
    std::cout << ", default deadline " << opt.default_deadline_s << " s";
  }
  if (opt.shard_workers > 0) {
    std::cout << ", campaigns on a " << opt.shard_workers
              << "-process shard fleet";
  }
  std::cout << ")\n";

  service::SpoolServer server(ctx, opt);
  const service::ServerStats stats = server.run();
  std::cout << "serve: " << stats.summary() << "\n";
  return 0;  // main() maps a pending shutdown signal onto exit code 4
}

int cmd_worker(const core::StudyContext& ctx, const CliArgs& args) {
  shard::WorkerOptions opt;
  opt.job_dir = args.get_string("job-dir", "");
  VS_REQUIRE(!opt.job_dir.empty(), "worker requires --job-dir=DIR");
  opt.worker_id = args.get_string("worker-id", "");
  VS_REQUIRE(!opt.worker_id.empty(), "worker requires --worker-id=ID");
  opt.jobs = args.get_size("jobs", 1);
  opt.stop = shutdown_token();

  const shard::WorkerReport report = shard::run_worker(ctx, opt);
  std::cout << "worker " << opt.worker_id << ": " << report.chunks_completed
            << " chunks completed (" << report.trials_evaluated
            << " trials), " << report.chunks_quarantined << " quarantined"
            << (report.stopped_early ? "; stopped early" : "") << "\n";
  return 0;  // main() maps a pending shutdown signal onto exit code 4
}

int cmd_chaos_explore(const CliArgs& args) {
  chaos::ExplorerOptions opt;
  opt.work_dir = args.get_string("work-dir", "");
  VS_REQUIRE(!opt.work_dir.empty(), "chaos-explore requires --work-dir=DIR");
  opt.cli_path = args.get_string("cli", self_exe_path());
  opt.workload = args.get_string("workload", opt.workload);
  opt.mode = args.get_string("mode", opt.mode);
  opt.max_hits = args.get_size("max-hits", opt.max_hits);
  opt.max_schedules = args.get_size("max-schedules", opt.max_schedules);
  if (args.has("errnos")) {
    opt.errnos.clear();
    std::istringstream iss(args.get_string("errnos", ""));
    std::string e;
    while (std::getline(iss, e, ',')) {
      if (!e.empty()) opt.errnos.push_back(e);
    }
    VS_REQUIRE(!opt.errnos.empty(), "--errnos needs a comma-separated list");
  }
  opt.out = &std::cout;
  VS_REQUIRE(failpoint::compiled_in(),
             "this binary was built with -DVSTACK_FAILPOINTS=OFF; the "
             "explorer has nothing to inject");

  const chaos::ExplorerReport report = chaos::run_explorer(opt);
  std::cout << "chaos-explore: " << report.summary() << "\n";
  for (const auto& s : report.schedules) {
    if (!s.passed) {
      std::cout << "  FAILED: " << s.workload << " " << s.point << "@"
                << s.hit << " " << s.action << ": " << s.detail << "\n";
    }
  }
  // --min-schedules guards against silent coverage collapse (a refactor
  // that de-instruments a protocol would otherwise pass with 0 schedules).
  const std::size_t min_fired = args.get_size("min-schedules", 0);
  if (report.fired() < min_fired) {
    std::cout << "chaos-explore: only " << report.fired()
              << " schedules fired (--min-schedules=" << min_fired << ")\n";
    return 2;
  }
  return report.ok() ? 0 : 2;
}

int cmd_merge(const core::StudyContext& ctx, const CliArgs& args) {
  const std::string job_dir = args.get_string("job-dir", "");
  VS_REQUIRE(!job_dir.empty(), "merge requires --job-dir=DIR");
  const shard::MergeReport merge =
      shard::merge_job(ctx, job_dir, args.get_string("out", ""));
  std::cout << "merge: " << merge.summary() << "\n";
  return merge.clean() ? 0 : 2;
}

int cmd_spice(const CliArgs& args) {
  VS_REQUIRE(args.positionals().size() >= 2,
             "usage: vstack_cli spice FILE");
  const auto circuit = circuit::parse_spice(
      read_file(args.positionals()[1]), args.positionals()[1]);
  VS_REQUIRE(circuit.has_tran, "netlist needs a .tran card");
  circuit::TransientSimulator sim(circuit.netlist, circuit.clock_period);
  const auto result = sim.run(circuit.tran);
  std::cout << "transient: " << result.report.summary() << "\n";
  if (args.get_bool("verbose")) print_trail(result.report);
  if (!result.ok()) {
    std::cout << "warning: waveform truncated; statistics cover the "
                 "simulated prefix only\n";
  }
  const double settle =
      0.75 * (result.ok() ? circuit.tran.stop_time : result.report.end_time);
  TextTable t({"Node", "Avg (V)"});
  for (const auto& [name, node] : circuit.node_by_name) {
    t.add_row({name,
               TextTable::num(result.average_node_voltage(node, settle), 4)});
  }
  t.print(std::cout);
  return result.ok() ? 0 : 2;
}

/// Companion `.solution` path of a netlist: extension swapped (or
/// appended) -- the benchmarks ship `ibmpg1.spice` + `ibmpg1.solution`.
std::string default_solution_path(const std::string& netlist_path) {
  const std::size_t slash = netlist_path.find_last_of('/');
  const std::size_t dot = netlist_path.find_last_of('.');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash)) {
    return netlist_path + ".solution";
  }
  return netlist_path.substr(0, dot) + ".solution";
}

pgio::GridSolveOptions pgio_solve_options(const CliArgs& args) {
  pgio::GridSolveOptions solve;
  solve.iterative.deadline = shutdown_token();
  solve.iterative.relative_tolerance =
      args.get_double("rel-tol", solve.iterative.relative_tolerance);
  return solve;
}

int cmd_import(const CliArgs& args) {
  VS_REQUIRE(args.positionals().size() >= 2,
             "usage: vstack_cli import FILE [--solve] [--dump=OUT]");
  const std::string path = args.positionals()[1];
  const pgio::PgNetlist netlist = pgio::read_netlist_file(path);

  TextTable t({"Metric", "Value"});
  if (!netlist.title.empty()) t.add_row({"title", netlist.title});
  t.add_row({"lines", std::to_string(netlist.line_count)});
  t.add_row({"nodes", std::to_string(netlist.node_count())});
  t.add_row({"resistors", std::to_string(netlist.resistors.size())});
  t.add_row({"shorts/vias", std::to_string(netlist.shorts.size())});
  t.add_row({"pads", std::to_string(netlist.pads.size())});
  t.add_row({"loads", std::to_string(netlist.loads.size())});
  t.add_row({"decaps", std::to_string(netlist.caps.size())});
  const auto nets = netlist.net_potentials();
  std::string net_desc;
  for (const double v : nets) {
    if (!net_desc.empty()) net_desc += ", ";
    net_desc += TextTable::num(v, 3) + " V";
  }
  t.add_row({"nets", nets.empty() ? "(none)" : net_desc});
  const auto hist = pgio::layer_histogram(netlist);
  std::size_t named_layers = 0;
  for (std::size_t l = 1; l < hist.size(); ++l) named_layers += hist[l] > 0;
  t.add_row({"metal layers", std::to_string(named_layers) +
                                 (hist[0] > 0 ? " (+" + std::to_string(hist[0]) +
                                                    " unnamed nodes)"
                                              : "")});

  const pgio::ImportedGrid grid(netlist);
  t.add_row({"slots", std::to_string(grid.slot_count()) + " (" +
                          std::to_string(grid.unknown_count()) + " unknown, " +
                          std::to_string(grid.fixed_count()) + " fixed)"});
  t.print(std::cout);

  int code = 0;
  if (args.get_bool("solve")) {
    const pgio::GridSolution sol = grid.solve(pgio_solve_options(args));
    std::cout << "\nDC operating point:\n";
    TextTable s({"Metric", "Value"});
    if (sol.solve_ok) {
      s.add_row({"max deviation",
                 TextTable::num(sol.max_deviation_v * 1e3, 3) + " mV (" +
                     TextTable::percent(sol.max_deviation_fraction, 2) +
                     (sol.worst_node.empty() ? ")"
                                             : ") at " + sol.worst_node)});
      s.add_row({"supply current",
                 TextTable::num(sol.supply_current_a, 3) + " A"});
      s.add_row({"load current", TextTable::num(sol.load_current_a, 3) + " A"});
      if (sol.floating_islands > 0) {
        s.add_row({"floating", std::to_string(sol.floating_islands) +
                                   " islands / " +
                                   std::to_string(sol.floating_nodes) +
                                   " nodes"});
      }
    } else {
      s.add_row({"solve", "FAILED: " + sol.diagnostic});
      code = 2;
    }
    s.print(std::cout);
    if (args.get_bool("verbose")) {
      for (const auto& a : sol.report.attempts) {
        std::cout << "  attempt " << a.method << ": "
                  << (a.converged ? "converged" : "failed") << " after "
                  << a.iterations << " iterations\n";
      }
    }
  }
  if (args.has("dump")) {
    const std::string out = args.get_string("dump", "");
    pgio::write_netlist_file(netlist, out);
    std::cout << "\nnormalized netlist written to " << out << "\n";
  }
  return code;
}

int cmd_validate(const CliArgs& args) {
  VS_REQUIRE(args.positionals().size() >= 2,
             "usage: vstack_cli validate FILE [--solution=F] [--tol=V]");
  const std::string path = args.positionals()[1];
  const std::string solution_path =
      args.get_string("solution", default_solution_path(path));

  const pgio::PgNetlist netlist = pgio::read_netlist_file(path);
  const pgio::GoldenSolution golden = pgio::read_solution_file(solution_path);
  const pgio::ImportedGrid grid(netlist);

  pgio::ValidateOptions options;
  options.solve = pgio_solve_options(args);
  options.tolerance_v = args.get_double("tol", options.tolerance_v);

  const pgio::ValidationReport report = pgio::validate(grid, golden, options);
  std::cout << "validate " << path << " vs " << solution_path << " ("
            << golden.size() << " golden nodes):\n"
            << report.format();
  for (const auto& b : report.backends) {
    if (!b.solve_ok) return 2;  // numerics never converged: no verdict
  }
  return report.pass() ? 0 : 3;
}

/// `contingency --netlist=FILE`: the imported-grid campaign route.
int cmd_contingency_netlist(const CliArgs& args) {
  const std::string path = args.get_string("netlist", "");
  const pgio::PgNetlist netlist = pgio::read_netlist_file(path);
  const pgio::ImportedGrid grid(netlist);

  pgio::GridCampaignOptions opts;
  opts.top_k = args.get_size("top", opts.top_k);
  opts.exhaustive = args.get_bool("exhaustive");
  opts.noise_budget_fraction =
      args.get_double("budget", opts.noise_budget_fraction);
  opts.trials = args.get_size("trials", opts.trials);
  opts.faults_per_trial = args.get_size("faults", opts.faults_per_trial);
  opts.leakage_faults_per_trial =
      args.get_size("leakage", opts.leakage_faults_per_trial);
  opts.seed = args.get_size("seed", opts.seed);
  opts.solve = pgio_solve_options(args);
  opts.execution = resolve_execution(args);

  const bool monte_carlo = args.get_bool("mc");
  const auto report = monte_carlo ? pgio::run_monte_carlo(grid, opts)
                                  : pgio::run_n_minus_1(grid, opts);
  if (report.planned == 0 && report.cases.empty()) {
    std::cout << "baseline DC solve failed; no campaign to run\n";
    return 2;
  }

  std::cout << "current-stress ranking (top "
            << std::min<std::size_t>(opts.top_k, report.ranking.size())
            << " of " << grid.conductors().size() << " conductors):\n";
  TextTable rank({"Conductor", "Nodes", "I (mA)", "Share"});
  for (std::size_t k = 0;
       k < std::min<std::size_t>(opts.top_k, report.ranking.size()); ++k) {
    const auto& e = report.ranking[k];
    const auto& c = grid.conductors()[e.conductor_index];
    rank.add_row({"R#" + std::to_string(e.conductor_index),
                  std::string(grid.slot_name(c.node_a)) + " - " +
                      std::string(grid.slot_name(c.node_b)),
                  TextTable::num(e.unit_current * 1e3, 2),
                  TextTable::percent(e.failure_probability, 2)});
  }
  rank.print(std::cout);

  std::cout << "\n" << (monte_carlo ? "Monte Carlo N-k" : "N-1")
            << " campaign (" << report.cases.size()
            << " cases, baseline deviation "
            << TextTable::percent(report.base_max_node_deviation_fraction, 2)
            << "):\n";
  TextTable cases({"Case", "Outcome", "Deviation", "Attempts"});
  for (const auto& c : report.cases) {
    cases.add_row({c.label, outcome_name(c.outcome),
                   c.solved
                       ? TextTable::percent(c.max_node_deviation_fraction, 2)
                       : "-",
                   std::to_string(c.solve_attempts)});
  }
  cases.print(std::cout);

  std::cout << "\nsummary: " << report.survivable << " survivable, "
            << report.degraded << " degraded, " << report.infeasible
            << " infeasible; worst post-fault deviation "
            << TextTable::percent(report.worst_post_fault_deviation, 2)
            << " (budget "
            << TextTable::percent(opts.noise_budget_fraction, 0) << ")\n";
  for (const auto& c : report.cases) {
    if (!c.diagnostic.empty()) {
      std::cout << "  " << c.label << ": " << c.diagnostic << "\n";
    }
  }
  return report.infeasible > 0 ? 3 : 0;
}

/// `ride-through --netlist=FILE`: load-step transient on an imported grid.
int cmd_ride_through_netlist(const CliArgs& args) {
  const std::string path = args.get_string("netlist", "");
  const pgio::PgNetlist netlist = pgio::read_netlist_file(path);
  const pgio::ImportedGrid grid(netlist);

  pgio::LoadStepOptions opt;
  opt.step_scale = args.get_double("step-scale", opt.step_scale);
  opt.duration_s = args.get_double("duration", opt.duration_s);
  opt.dt_s = args.get_double("dt", opt.dt_s);
  opt.solve = pgio_solve_options(args);

  std::cout << "load step: x" << TextTable::num(opt.step_scale, 2) << " at t=0, "
            << TextTable::num(opt.duration_s * 1e9, 1) << " ns window, dt "
            << TextTable::num(opt.dt_s * 1e9, 2) << " ns\n";
  const pgio::LoadStepReport r = pgio::simulate_load_step(grid, opt);
  if (!r.solve_ok) {
    std::cout << "transient FAILED: " << r.diagnostic << "\n";
    return 2;
  }
  TextTable t({"Metric", "Value"});
  t.add_row({"steps", std::to_string(r.steps)});
  t.add_row({"pre-step deviation",
             TextTable::num(r.pre_step_deviation_v * 1e3, 3) + " mV"});
  t.add_row({"post-step deviation",
             TextTable::num(r.post_step_deviation_v * 1e3, 3) + " mV"});
  t.add_row({"worst transient deviation",
             TextTable::num(r.worst_deviation_v * 1e3, 3) + " mV"});
  t.add_row({"worst droop vs pre-step",
             TextTable::num(r.worst_droop_v * 1e3, 3) + " mV"});
  t.add_row({"recovered",
             r.recovered
                 ? TextTable::num(r.recovery_time_s * 1e9, 1) + " ns"
                 : "NO (final error " +
                       TextTable::num(r.final_error_v * 1e3, 3) + " mV)"});
  t.print(std::cout);
  return r.recovered ? 0 : 3;
}

int cmd_version() {
  const auto& info = telemetry::build_info();
  std::string backends;
  for (const la::Backend* b : la::all_backends()) {
    if (!backends.empty()) backends += ", ";
    backends += b->name();
  }
  std::cout << telemetry::build_summary() << "\n"
            << "  version:    " << info.version << "\n"
            << "  build type: " << info.build_type << "\n"
            << "  sanitizer:  " << info.sanitizer << "\n"
            << "  telemetry:  " << (info.telemetry_enabled ? "on" : "off")
            << "\n"
            << "  failpoints: " << (failpoint::compiled_in() ? "on" : "off")
            << "\n"
            << "  la backends: " << backends
            << " (default: " << la::default_backend().name() << ")\n";
  return 0;
}

void usage() {
  std::cout <<
      "usage: vstack_cli <command> [options]\n"
      "  noise       voltage-noise analysis   (--layers --topology "
      "--imbalance --converters --config --map --grid)\n"
      "  em          EM lifetime analysis     (--layers --topology --config)\n"
      "  efficiency  system power efficiency  (--layers --converters "
      "--imbalance)\n"
      "  thermal     stack temperature        (--layers --sink)\n"
      "  contingency fault-injection campaign (--top --exhaustive --mc "
      "--trials --faults --seed --budget --layers --grid --config --jobs)\n"
      "  ride-through live fault ride-through  (--fault-level --fault-time "
      "--keep --duration --imbalance --layers --grid --verbose)\n"
      "  campaign    transient N-k campaign   (--trials --faults "
      "--conv-faults --seed --manifest --compare --timeout --retries "
      "--duration --fault-time --verbose --jobs); add --shards=N "
      "--job-dir=DIR for a crash-tolerant multi-process fleet (--chunk "
      "--max-attempts --lease-expiry --heartbeat --max-restarts); see "
      "docs/distributed_campaigns.md\n"
      "  sweep       paper figure sweeps      (--figure=5a|5b|6|7|8 --jobs)\n"
      "  report      one-command reproduction of every figure (--jobs)\n"
      "  serve       resilient campaign service (--spool=DIR --poll "
      "--health-interval --max-requests --idle-exit --deadline --retries "
      "--backoff --queue --degrade-divisor --jobs --shard-workers=N); see "
      "docs/service_mode.md\n"
      "  worker      shard worker process     (--job-dir --worker-id "
      "--jobs); normally spawned by campaign --shards or serve\n"
      "  merge       fold shard manifests     (--job-dir --out); exit 2 "
      "when trials are quarantined or missing\n"
      "  chaos-explore  exhaustive crash-schedule explorer (--work-dir=DIR "
      "--workload=shard|serve|both --mode=crash|err|both --max-hits "
      "--max-schedules --errnos=EIO,ENOSPC --min-schedules --cli=PATH); "
      "see docs/chaos_testing.md\n"
      "  spice FILE  run a SPICE-subset netlist (--verbose)\n"
      "  import FILE ingest an IBM-power-grid benchmark netlist (--solve "
      "--dump=OUT --rel-tol --verbose); see docs/benchmark_ingestion.md\n"
      "  validate FILE  cross-check a benchmark netlist against its golden "
      "voltages (--solution=F --tol=V --rel-tol); runs every linear-algebra "
      "backend; exit 3 over tolerance, 2 on solver failure\n"
      "  contingency --netlist=FILE  run the fault campaign on an imported "
      "benchmark grid (--top --exhaustive --mc --trials --faults --leakage "
      "--seed --budget --jobs)\n"
      "  ride-through --netlist=FILE  load-step transient on an imported "
      "grid (--step-scale --duration --dt)\n"
      "  config      echo the resolved configuration (--config ...)\n"
      "  version     print build provenance (git describe, build type, "
      "sanitizer, telemetry)\n"
      "exit codes: 0 ok; 1 usage error; 2 truncated/incomplete result; "
      "3 Lost/Infeasible outcome; 4 interrupted by SIGINT/SIGTERM (partial "
      "results committed)\n"
      "--jobs=N sets worker threads for multi-scenario commands (default: "
      "auto via VSTACK_JOBS env or hardware concurrency; results are "
      "independent of N)\n"
      "--metrics=PATH writes a telemetry metrics snapshot (counters, "
      "histograms) after the command; --trace=PATH writes Chrome "
      "trace_event JSON (open in Perfetto).  See docs/telemetry.md\n"
      "--la-backend=reference|optimized selects the linear-algebra kernel "
      "backend for every solve in this process (and spawned shard workers); "
      "default: reference (bit-identical baseline), or VSTACK_LA_BACKEND.  "
      "See docs/linear_algebra.md\n";
}

/// Write --metrics / --trace artifacts after the command ran.  Failures
/// here must not rewrite a successful analysis into exit code 1.
void write_telemetry_sinks(const CliArgs& args) {
  try {
    if (args.has("metrics")) {
      telemetry::write_metrics_file(args.get_string("metrics", ""));
    }
    if (args.has("trace")) {
      telemetry::write_trace_file(args.get_string("trace", ""));
    }
  } catch (const std::exception& e) {
    std::cerr << "warning: telemetry export failed: " << e.what() << "\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  try {
    const CliArgs args(argc, argv,
                       {"config", "layers", "topology", "imbalance",
                        "converters", "map", "grid", "figure", "sink", "top",
                        "exhaustive", "mc", "trials", "faults", "seed",
                        "budget", "verbose", "duration", "fault-time",
                        "fault-level", "keep", "manifest", "compare",
                        "timeout", "retries", "conv-faults", "jobs",
                        "metrics", "trace", "version", "spool", "poll",
                        "health-interval", "max-requests", "idle-exit",
                        "deadline", "backoff", "queue", "degrade-divisor",
                        "shards", "job-dir", "worker-id", "chunk",
                        "max-attempts", "lease-expiry", "heartbeat",
                        "max-restarts", "out", "shard-workers", "work-dir",
                        "cli", "workload", "mode", "max-hits",
                        "max-schedules", "errnos", "min-schedules",
                        "la-backend", "netlist", "solution", "dump", "tol",
                        "rel-tol", "solve", "step-scale", "dt", "leakage"});
    // Backend selection must precede any solve (and cmd_version's default
    // report).  The env var is set too, so shard worker processes spawned
    // by campaign --shards / serve inherit the choice.
    if (args.has("la-backend")) {
      const std::string backend = args.get_string("la-backend", "reference");
      la::set_default_backend(backend);  // throws on unknown names
      setenv("VSTACK_LA_BACKEND", backend.c_str(), 1);
    }
    const auto ctx = core::StudyContext::paper_defaults();
    const std::string cmd = args.subcommand();
    if (cmd == "version" || args.get_bool("version")) return cmd_version();
    // Span recording costs a little per scope, so the tracer only runs when
    // a trace sink was requested; counters are always on.
    if (args.has("trace")) telemetry::set_tracing_enabled(true);
    // Long-running multi-scenario commands get graceful SIGINT/SIGTERM:
    // the handler cancels shutdown_token(), the runners stop at the next
    // chunk boundary with the committed prefix (and manifest) intact, and
    // the command exits with code 4.  Short analyses keep the default
    // die-on-signal behavior.
    const bool cancellable = cmd == "campaign" || cmd == "contingency" ||
                             cmd == "sweep" || cmd == "report" ||
                             cmd == "serve" || cmd == "worker" ||
                             cmd == "merge";
    if (cancellable) install_shutdown_handlers();
    int code = 1;
    if (cmd == "noise") code = cmd_noise(ctx, args);
    else if (cmd == "contingency") code = cmd_contingency(ctx, args);
    else if (cmd == "ride-through") code = cmd_ride_through(ctx, args);
    else if (cmd == "campaign") code = cmd_campaign(ctx, args);
    else if (cmd == "em") code = cmd_em(ctx, args);
    else if (cmd == "efficiency") code = cmd_efficiency(ctx, args);
    else if (cmd == "thermal") code = cmd_thermal(ctx, args);
    else if (cmd == "sweep") code = cmd_sweep(ctx, args);
    else if (cmd == "report") code = cmd_report(ctx, args);
    else if (cmd == "serve") code = cmd_serve(ctx, args);
    else if (cmd == "worker") code = cmd_worker(ctx, args);
    else if (cmd == "merge") code = cmd_merge(ctx, args);
    else if (cmd == "chaos-explore") code = cmd_chaos_explore(args);
    else if (cmd == "spice") code = cmd_spice(args);
    else if (cmd == "import") code = cmd_import(args);
    else if (cmd == "validate") code = cmd_validate(args);
    else if (cmd == "config") {
      std::cout << pdn::write_stackup_config(resolve_config(ctx, args));
      code = 0;
    } else {
      usage();
      return cmd.empty() ? 0 : 1;
    }
    write_telemetry_sinks(args);
    if (shutdown_requested()) {
      std::cerr << "interrupted by signal " << shutdown_signal()
                << "; partial results committed\n";
      return kInterruptExitCode;
    }
    return code;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
