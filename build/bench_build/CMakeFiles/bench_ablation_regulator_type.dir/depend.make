# Empty dependencies file for bench_ablation_regulator_type.
# This may be replaced when dependencies are built.
