file(REMOVE_RECURSE
  "../bench/bench_ablation_regulator_type"
  "../bench/bench_ablation_regulator_type.pdb"
  "CMakeFiles/bench_ablation_regulator_type.dir/ablation_regulator_type.cpp.o"
  "CMakeFiles/bench_ablation_regulator_type.dir/ablation_regulator_type.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_regulator_type.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
