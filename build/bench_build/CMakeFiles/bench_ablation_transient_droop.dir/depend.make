# Empty dependencies file for bench_ablation_transient_droop.
# This may be replaced when dependencies are built.
