file(REMOVE_RECURSE
  "../bench/bench_ablation_transient_droop"
  "../bench/bench_ablation_transient_droop.pdb"
  "CMakeFiles/bench_ablation_transient_droop.dir/ablation_transient_droop.cpp.o"
  "CMakeFiles/bench_ablation_transient_droop.dir/ablation_transient_droop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_transient_droop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
