file(REMOVE_RECURSE
  "../bench/bench_fig7_workload_imbalance"
  "../bench/bench_fig7_workload_imbalance.pdb"
  "CMakeFiles/bench_fig7_workload_imbalance.dir/fig7_workload_imbalance.cpp.o"
  "CMakeFiles/bench_fig7_workload_imbalance.dir/fig7_workload_imbalance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_workload_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
