# Empty compiler generated dependencies file for bench_ablation_vs_pad_allocation.
# This may be replaced when dependencies are built.
