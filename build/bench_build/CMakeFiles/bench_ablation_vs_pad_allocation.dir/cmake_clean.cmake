file(REMOVE_RECURSE
  "../bench/bench_ablation_vs_pad_allocation"
  "../bench/bench_ablation_vs_pad_allocation.pdb"
  "CMakeFiles/bench_ablation_vs_pad_allocation.dir/ablation_vs_pad_allocation.cpp.o"
  "CMakeFiles/bench_ablation_vs_pad_allocation.dir/ablation_vs_pad_allocation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vs_pad_allocation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
