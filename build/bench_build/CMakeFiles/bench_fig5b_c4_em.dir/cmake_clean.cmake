file(REMOVE_RECURSE
  "../bench/bench_fig5b_c4_em"
  "../bench/bench_fig5b_c4_em.pdb"
  "CMakeFiles/bench_fig5b_c4_em.dir/fig5b_c4_em.cpp.o"
  "CMakeFiles/bench_fig5b_c4_em.dir/fig5b_c4_em.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5b_c4_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
