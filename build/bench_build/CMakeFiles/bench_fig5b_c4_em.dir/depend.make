# Empty dependencies file for bench_fig5b_c4_em.
# This may be replaced when dependencies are built.
