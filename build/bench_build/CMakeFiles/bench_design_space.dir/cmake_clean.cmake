file(REMOVE_RECURSE
  "../bench/bench_design_space"
  "../bench/bench_design_space.pdb"
  "CMakeFiles/bench_design_space.dir/design_space.cpp.o"
  "CMakeFiles/bench_design_space.dir/design_space.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_design_space.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
