file(REMOVE_RECURSE
  "../bench/bench_fig6_ir_drop"
  "../bench/bench_fig6_ir_drop.pdb"
  "CMakeFiles/bench_fig6_ir_drop.dir/fig6_ir_drop.cpp.o"
  "CMakeFiles/bench_fig6_ir_drop.dir/fig6_ir_drop.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ir_drop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
