file(REMOVE_RECURSE
  "../bench/bench_fig8_power_efficiency"
  "../bench/bench_fig8_power_efficiency.pdb"
  "CMakeFiles/bench_fig8_power_efficiency.dir/fig8_power_efficiency.cpp.o"
  "CMakeFiles/bench_fig8_power_efficiency.dir/fig8_power_efficiency.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_power_efficiency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
