file(REMOVE_RECURSE
  "../bench/bench_table2_tsv_configs"
  "../bench/bench_table2_tsv_configs.pdb"
  "CMakeFiles/bench_table2_tsv_configs.dir/table2_tsv_configs.cpp.o"
  "CMakeFiles/bench_table2_tsv_configs.dir/table2_tsv_configs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_tsv_configs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
