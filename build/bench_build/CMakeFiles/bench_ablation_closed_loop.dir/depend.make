# Empty dependencies file for bench_ablation_closed_loop.
# This may be replaced when dependencies are built.
