# Empty dependencies file for bench_ablation_converter_reference.
# This may be replaced when dependencies are built.
