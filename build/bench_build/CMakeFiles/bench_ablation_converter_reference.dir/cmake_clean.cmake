file(REMOVE_RECURSE
  "../bench/bench_ablation_converter_reference"
  "../bench/bench_ablation_converter_reference.pdb"
  "CMakeFiles/bench_ablation_converter_reference.dir/ablation_converter_reference.cpp.o"
  "CMakeFiles/bench_ablation_converter_reference.dir/ablation_converter_reference.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_converter_reference.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
