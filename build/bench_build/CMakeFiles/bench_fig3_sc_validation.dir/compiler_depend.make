# Empty compiler generated dependencies file for bench_fig3_sc_validation.
# This may be replaced when dependencies are built.
