file(REMOVE_RECURSE
  "../bench/bench_fig3_sc_validation"
  "../bench/bench_fig3_sc_validation.pdb"
  "CMakeFiles/bench_fig3_sc_validation.dir/fig3_sc_validation.cpp.o"
  "CMakeFiles/bench_fig3_sc_validation.dir/fig3_sc_validation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_sc_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
