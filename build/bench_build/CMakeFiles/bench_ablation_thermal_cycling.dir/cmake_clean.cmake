file(REMOVE_RECURSE
  "../bench/bench_ablation_thermal_cycling"
  "../bench/bench_ablation_thermal_cycling.pdb"
  "CMakeFiles/bench_ablation_thermal_cycling.dir/ablation_thermal_cycling.cpp.o"
  "CMakeFiles/bench_ablation_thermal_cycling.dir/ablation_thermal_cycling.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thermal_cycling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
