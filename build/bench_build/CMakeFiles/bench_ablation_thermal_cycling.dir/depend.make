# Empty dependencies file for bench_ablation_thermal_cycling.
# This may be replaced when dependencies are built.
