file(REMOVE_RECURSE
  "../bench/bench_ablation_pad_budget"
  "../bench/bench_ablation_pad_budget.pdb"
  "CMakeFiles/bench_ablation_pad_budget.dir/ablation_pad_budget.cpp.o"
  "CMakeFiles/bench_ablation_pad_budget.dir/ablation_pad_budget.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_pad_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
