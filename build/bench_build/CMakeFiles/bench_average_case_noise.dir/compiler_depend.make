# Empty compiler generated dependencies file for bench_average_case_noise.
# This may be replaced when dependencies are built.
