file(REMOVE_RECURSE
  "../bench/bench_average_case_noise"
  "../bench/bench_average_case_noise.pdb"
  "CMakeFiles/bench_average_case_noise.dir/average_case_noise.cpp.o"
  "CMakeFiles/bench_average_case_noise.dir/average_case_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_average_case_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
