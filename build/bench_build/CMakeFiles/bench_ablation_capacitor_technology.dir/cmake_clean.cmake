file(REMOVE_RECURSE
  "../bench/bench_ablation_capacitor_technology"
  "../bench/bench_ablation_capacitor_technology.pdb"
  "CMakeFiles/bench_ablation_capacitor_technology.dir/ablation_capacitor_technology.cpp.o"
  "CMakeFiles/bench_ablation_capacitor_technology.dir/ablation_capacitor_technology.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_capacitor_technology.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
