file(REMOVE_RECURSE
  "../bench/bench_fig5a_tsv_em"
  "../bench/bench_fig5a_tsv_em.pdb"
  "CMakeFiles/bench_fig5a_tsv_em.dir/fig5a_tsv_em.cpp.o"
  "CMakeFiles/bench_fig5a_tsv_em.dir/fig5a_tsv_em.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5a_tsv_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
