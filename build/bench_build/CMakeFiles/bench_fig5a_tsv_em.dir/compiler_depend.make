# Empty compiler generated dependencies file for bench_fig5a_tsv_em.
# This may be replaced when dependencies are built.
