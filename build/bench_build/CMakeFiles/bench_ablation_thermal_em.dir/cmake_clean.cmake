file(REMOVE_RECURSE
  "../bench/bench_ablation_thermal_em"
  "../bench/bench_ablation_thermal_em.pdb"
  "CMakeFiles/bench_ablation_thermal_em.dir/ablation_thermal_em.cpp.o"
  "CMakeFiles/bench_ablation_thermal_em.dir/ablation_thermal_em.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_thermal_em.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
