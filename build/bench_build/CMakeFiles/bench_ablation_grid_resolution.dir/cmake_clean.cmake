file(REMOVE_RECURSE
  "../bench/bench_ablation_grid_resolution"
  "../bench/bench_ablation_grid_resolution.pdb"
  "CMakeFiles/bench_ablation_grid_resolution.dir/ablation_grid_resolution.cpp.o"
  "CMakeFiles/bench_ablation_grid_resolution.dir/ablation_grid_resolution.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_grid_resolution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
