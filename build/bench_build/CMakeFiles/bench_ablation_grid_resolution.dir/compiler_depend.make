# Empty compiler generated dependencies file for bench_ablation_grid_resolution.
# This may be replaced when dependencies are built.
